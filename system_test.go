// System test: the whole pipeline of the paper and its future-work vision,
// end to end — translate conventional schemas into ECR, plan the n-ary
// integration order by schema resemblance, integrate pairwise with
// dictionary-suggested equivalences, and run requests through the generated
// mappings against live instances.
package repro_test

import (
	"strings"
	"testing"

	"repro/internal/assertion"
	"repro/internal/core"
	"repro/internal/ecr"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/plan"
	"repro/internal/translate"
)

const sysPersonnelSQL = `
CREATE TABLE Department (
    Dname VARCHAR(40) PRIMARY KEY,
    Budget INT
);
CREATE TABLE Employee (
    Eno INT PRIMARY KEY,
    Name VARCHAR(40) NOT NULL,
    Salary INT,
    Dept VARCHAR(40) NOT NULL,
    FOREIGN KEY (Dept) REFERENCES Department (Dname)
);
`

const sysProjectsHier = `
hierarchy projects
segment Division {
    field Dname char key
    field Location char
    segment Project {
        field Pname char key
        field Budget int
    }
}
`

const sysSalesECR = `
schema sales
entity Customer {
    attr Name: char key
    attr Region: char
}
`

func TestFullPipeline(t *testing.T) {
	// Phase 0 (substrate): translate the conventional schemas.
	db, err := translate.ParseSQL("personnel", sysPersonnelSQL)
	if err != nil {
		t.Fatal(err)
	}
	relRes, err := translate.FromRelational(db)
	if err != nil {
		t.Fatal(err)
	}
	h, err := translate.ParseHierarchy(sysProjectsHier)
	if err != nil {
		t.Fatal(err)
	}
	hierRes, err := translate.FromHierarchical(h)
	if err != nil {
		t.Fatal(err)
	}
	sales, err := ecr.ParseSchema(sysSalesECR)
	if err != nil {
		t.Fatal(err)
	}
	schemas := []*ecr.Schema{relRes.Schema, hierRes.Schema, sales}

	// Plan the order: personnel and projects share the department/
	// division concept and should pair before sales joins.
	p, err := plan.Order(schemas, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 2 {
		t.Fatalf("plan = %+v", p.Steps)
	}
	firstPair := p.Steps[0].Left + "+" + p.Steps[0].Right
	if !strings.Contains(firstPair, "personnel") || !strings.Contains(firstPair, "projects") {
		t.Errorf("plan ordered %q first; want personnel+projects", firstPair)
	}

	// Step 1: integrate personnel + projects.
	it1, err := core.New(relRes.Schema, hierRes.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := it1.DeclareEquivalent("Department.Dname", "Division.Dname"); err != nil {
		t.Fatal(err)
	}
	if err := it1.Assert("Department", assertion.Equals, "Division"); err != nil {
		t.Fatal(err)
	}
	step1, err := it1.Integrate("g1")
	if err != nil {
		t.Fatal(err)
	}

	// Step 2: fold in sales.
	it2, err := core.New(step1.Schema, sales)
	if err != nil {
		t.Fatal(err)
	}
	if err := it2.Assert("Employee", assertion.DisjointIntegrable, "Customer"); err != nil {
		t.Fatal(err)
	}
	global, err := it2.Integrate("global")
	if err != nil {
		t.Fatal(err)
	}
	if err := global.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	// The merged department concept and the derived partner concept.
	if global.Schema.Object("E_Depa_Divi") == nil {
		t.Errorf("merged department missing: %v", objectNames(global.Schema))
	}
	if global.Schema.Object("D_Empl_Cust") == nil {
		t.Errorf("derived employee/customer concept missing: %v", objectNames(global.Schema))
	}

	// Operational check: instances in the two original databases answer
	// a step-1 global query.
	st1, err := instance.NewStore(relRes.Schema)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := instance.NewStore(hierRes.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.Insert("Department", instance.Row{"Dname": "CS", "Budget": "100"}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Insert("Division", instance.Row{"Dname": "CS", "Location": "hall-1"}); err != nil {
		t.Fatal(err)
	}
	if err := st2.Insert("Division", instance.Row{"Dname": "EE", "Location": "hall-2"}); err != nil {
		t.Fatal(err)
	}
	fed, err := instance.NewFederation(step1.Schema, step1.Mappings,
		map[string]*instance.Store{"personnel": st1, "projects": st2})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := fed.Query(mapping.Query{
		Schema:  "g1",
		Object:  "E_Depa_Divi",
		Project: []string{"D_Dname"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // CS merged across the two databases, plus EE
		t.Errorf("federated rows = %v", rows)
	}
}

func objectNames(s *ecr.Schema) []string {
	var out []string
	for _, o := range s.Objects {
		out = append(out, o.Name)
	}
	return out
}

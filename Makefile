# Schema Integration Tool — build and verification targets.
#
# VERSION is stamped into every binary via internal/version; override it
# on the command line: make build VERSION=1.2.3

VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS  = -X repro/internal/version.Version=$(VERSION)
BINDIR   = bin

.PHONY: all build check vet test race clean

all: check

# Full verification: everything compiles, vet is clean, tests pass under
# the race detector.
check:
	go build ./...
	go vet ./...
	go test -race ./...

build:
	go build -ldflags '$(LDFLAGS)' -o $(BINDIR)/ ./cmd/...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

clean:
	rm -rf $(BINDIR)

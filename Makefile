# Schema Integration Tool — build and verification targets.
#
# VERSION is stamped into every binary via internal/version; override it
# on the command line: make build VERSION=1.2.3

VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS  = -X repro/internal/version.Version=$(VERSION)
BINDIR   = bin

.PHONY: all build check vet sit-vet test race loadgen bench-assertions bench-translate clean

all: check

# Full verification: everything compiles, vet (standard and project
# analyzers) is clean, tests pass under the race detector.
check:
	go build ./...
	go vet ./...
	$(MAKE) sit-vet
	go test -race ./...

build:
	go build -ldflags '$(LDFLAGS)' -o $(BINDIR)/ ./cmd/...

vet:
	go vet ./...
	$(MAKE) sit-vet

# sit-vet runs the project-specific analyzers (lock discipline, error
# classification, journal ordering, metric cardinality, I/O under locks,
# lock-order deadlock detection, durability completeness, hot-path
# allocations, directive hygiene) twice: once through the go vet driver
# (rides go's build cache) and once in standalone module mode, which also
# analyzes _test.go files — go vet never hands test variants to a vettool.
sit-vet:
	go build -o $(BINDIR)/sit-vet ./cmd/sit-vet
	go vet -vettool=$(BINDIR)/sit-vet ./...
	$(BINDIR)/sit-vet -mod -cache $(BINDIR)/sit-vet.factcache ./...

test:
	go test ./...

race:
	go test -race ./...

# loadgen runs the CI-scale admission-control load harness: 100 open-loop
# tenants, three phases, ~30 seconds. See cmd/sit-loadgen.
loadgen:
	go run ./cmd/sit-loadgen -smoke -v

# bench-assertions sweeps the incremental closure engine against the dense
# re-closure at 10^3..10^6 assertions and rewrites BENCH_assertions.json.
bench-assertions:
	go test -run=TestWriteAssertionBenchReport -assertion-bench-report .

# bench-translate sweeps whole-source parse throughput per schema frontend
# at 10^2..10^4 entity sets and rewrites BENCH_translate.json.
bench-translate:
	go test -run=TestWriteTranslateBenchReport -translate-bench-report .

clean:
	rm -rf $(BINDIR)

-- A small relational personnel database.
CREATE TABLE Department (
    Dname VARCHAR(40) PRIMARY KEY,
    Budget INT
);
CREATE TABLE Employee (
    Eno INT PRIMARY KEY,
    Name VARCHAR(40) NOT NULL,
    Salary INT,
    Dept VARCHAR(40) NOT NULL,
    FOREIGN KEY (Dept) REFERENCES Department (Dname)
);
CREATE TABLE Engineer (
    Eno INT PRIMARY KEY,
    Discipline VARCHAR(40),
    FOREIGN KEY (Eno) REFERENCES Employee (Eno)
);
CREATE TABLE Assigned (
    Eno INT,
    Dname VARCHAR(40),
    Percent INT,
    PRIMARY KEY (Eno, Dname),
    FOREIGN KEY (Eno) REFERENCES Employee (Eno),
    FOREIGN KEY (Dname) REFERENCES Department (Dname)
);

// The benchmark harness regenerates every figure and screen of the paper
// (it has no numeric tables — it is an interactive-tool paper, so its
// reproducible artifacts are the worked figures and the twelve screens) and
// adds the scalability and ablation experiments catalogued in DESIGN.md
// (X1-X9). EXPERIMENTS.md records paper-vs-measured for each identifier.
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/assertion"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/ecr"
	"repro/internal/equivalence"
	"repro/internal/instance"
	"repro/internal/integrate"
	"repro/internal/mapping"
	"repro/internal/paperex"
	"repro/internal/plan"
	"repro/internal/resemblance"
	"repro/internal/session"
	"repro/internal/translate"
	"repro/internal/workload"
)

// paperIntegration assembles the full inputs of the running example: the
// equivalences of Screen 7 and the assertions of Screen 8.
func paperIntegration(b testing.TB) *core.Integration {
	it, err := core.New(paperex.Sc1(), paperex.Sc2())
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range [][2]string{
		{"Student.Name", "Grad_student.Name"},
		{"Student.Name", "Faculty.Name"},
		{"Student.GPA", "Grad_student.GPA"},
		{"Department.Dname", "Department.Dname"},
		{"Majors.Since", "Stud_major.Since"},
	} {
		if err := it.DeclareEquivalent(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
	if err := it.Assert("Department", assertion.Equals, "Department"); err != nil {
		b.Fatal(err)
	}
	if err := it.Assert("Student", assertion.Contains, "Grad_student"); err != nil {
		b.Fatal(err)
	}
	if err := it.Assert("Student", assertion.DisjointIntegrable, "Faculty"); err != nil {
		b.Fatal(err)
	}
	if err := it.AssertRelationship("Majors", assertion.Equals, "Stud_major"); err != nil {
		b.Fatal(err)
	}
	return it
}

// --- F1: Figure 1, the four-phase pipeline end to end ---

func BenchmarkFigure1Pipeline(b *testing.B) {
	script := session.PaperScript()
	for i := 0; i < b.N; i++ {
		io := session.NewScriptIO(script...)
		ws := session.NewWorkspace()
		if err := session.New(ws, io).Run(); err != nil {
			b.Fatal(err)
		}
		if _, err := ws.Integrate("sc1", "sc2"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F2a-F2e: the five object-integration outcomes of Figure 2 ---

func benchFigure2(b *testing.B, mk func() (*ecr.Schema, *ecr.Schema), kind assertion.Kind, equiv [2]string, wantObject string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s1, s2 := mk()
		it, err := core.New(s1, s2)
		if err != nil {
			b.Fatal(err)
		}
		if err := it.DeclareEquivalent(equiv[0], equiv[1]); err != nil {
			b.Fatal(err)
		}
		if err := it.Assert(s1.Objects[0].Name, kind, s2.Objects[0].Name); err != nil {
			b.Fatal(err)
		}
		res, err := it.Integrate("")
		if err != nil {
			b.Fatal(err)
		}
		if wantObject != "" && res.Schema.Object(wantObject) == nil {
			b.Fatalf("expected %s in result", wantObject)
		}
	}
}

func BenchmarkFigure2aEquals(b *testing.B) {
	benchFigure2(b, paperex.Fig2aSchemas, assertion.Equals,
		[2]string{"Department.Dname", "Department.Dname"}, "E_Department")
}

func BenchmarkFigure2bContains(b *testing.B) {
	benchFigure2(b, paperex.Fig2bSchemas, assertion.Contains,
		[2]string{"Student.Name", "Grad_student.Name"}, "Student")
}

func BenchmarkFigure2cOverlap(b *testing.B) {
	benchFigure2(b, paperex.Fig2cSchemas, assertion.MayBe,
		[2]string{"Grad_student.Name", "Instructor.Name"}, "D_Grad_Inst")
}

func BenchmarkFigure2dDisjointIntegrable(b *testing.B) {
	benchFigure2(b, paperex.Fig2dSchemas, assertion.DisjointIntegrable,
		[2]string{"Secretary.Name", "Engineer.Name"}, "D_Secr_Engi")
}

func BenchmarkFigure2eDisjointNonintegrable(b *testing.B) {
	benchFigure2(b, paperex.Fig2eSchemas, assertion.DisjointNonintegrable,
		[2]string{"Under_Grad_Student.Name", "Full_Professor.Name"}, "Under_Grad_Student")
}

// --- F3/F4: the component schemas, constructed, validated and
// round-tripped through the DDL ---

func benchSchemaRoundTrip(b *testing.B, mk func() *ecr.Schema) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := mk()
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
		text := ecr.FormatSchema(s)
		if _, err := ecr.ParseSchema(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3SchemaSc1(b *testing.B) { benchSchemaRoundTrip(b, paperex.Sc1) }
func BenchmarkFigure4SchemaSc2(b *testing.B) { benchSchemaRoundTrip(b, paperex.Sc2) }

// --- F5: the integrated schema of Figure 5 ---

func BenchmarkFigure5Integration(b *testing.B) {
	it := paperIntegration(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := it.Integrate("")
		if err != nil {
			b.Fatal(err)
		}
		if res.Schema.Object("D_Stud_Facu") == nil || res.Schema.Object("E_Department") == nil {
			b.Fatal("figure 5 shape missing")
		}
	}
}

// --- F6: the result-viewing screen control flow of Figure 6 ---

func BenchmarkFigure6ScreenFlow(b *testing.B) {
	// Drive only task 6 over a prepared workspace: Object Class Screen ->
	// Category Screen -> Attribute Screen -> Component Attribute Screens
	// -> Equivalent Screen -> Relationship Screen -> Participating
	// Objects Screen, the arcs of Figure 6.
	ws := preparedWorkspace(b)
	browse := []string{
		"6", "sc1", "sc2",
		"Student c", "a", "1", "", "", "e", "q", "", "x",
		"E_Stud_Majo r", "p", "", "x",
		"x", "e",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		io := session.NewScriptIO(browse...)
		if err := session.New(ws, io).Run(); err != nil {
			b.Fatal(err)
		}
		if len(io.ScreensContaining("Component Attribute Screen")) != 2 {
			b.Fatal("figure 6 flow incomplete")
		}
	}
}

// preparedWorkspace loads the paper example into a workspace via the
// scripted phases 1-5 (without task 6).
func preparedWorkspace(b testing.TB) *session.Workspace {
	full := session.PaperScript()
	// Cut before the "--- Task 6 ---" section: find the "6" input that
	// follows the relationship assertions.
	cut := len(full)
	for i := range full {
		if full[i] == "6" && i > 40 {
			cut = i
			break
		}
	}
	io := session.NewScriptIO(append(append([]string{}, full[:cut]...), "e")...)
	ws := session.NewWorkspace()
	if err := session.New(ws, io).Run(); err != nil {
		b.Fatal(err)
	}
	return ws
}

// --- S1-S12: the tool's screens ---

func BenchmarkScreen1MainMenu(b *testing.B) {
	for i := 0; i < b.N; i++ {
		io := session.NewScriptIO("e")
		if err := session.New(session.NewWorkspace(), io).Run(); err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(io.LastScreen(), "Main Menu") {
			b.Fatal("main menu missing")
		}
	}
}

func BenchmarkScreens2to5Collection(b *testing.B) {
	full := session.PaperScript()
	// The schema-collection prefix ends at the first task-2 selection.
	cut := 0
	for i, in := range full {
		if in == "2" && i > 10 {
			cut = i
			break
		}
	}
	script := append(append([]string{}, full[:cut]...), "e")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		io := session.NewScriptIO(script...)
		ws := session.NewWorkspace()
		if err := session.New(ws, io).Run(); err != nil {
			b.Fatal(err)
		}
		if ws.Schema("sc1") == nil || ws.Schema("sc2") == nil {
			b.Fatal("collection incomplete")
		}
	}
}

func BenchmarkScreens6to7Equivalence(b *testing.B) {
	base := sessionWithSchemas(b)
	script := []string{
		"2", "sc1", "sc2",
		"1 1", "a 1 1", "a 2 2", "e",
		"1 2", "a 1 1", "e",
		"2 3", "a 1 1", "e",
		"e", "e",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := cloneWorkspaceSchemas(b, base)
		io := session.NewScriptIO(script...)
		if err := session.New(ws, io).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScreen8AssertionCollection(b *testing.B) {
	it := paperIntegration(b)
	s1, s2 := it.Schemas()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs := resemblance.RankObjects(s1, s2, it.Registry())
		if len(pairs) == 0 || pairs[0].Ratio != 0.5 {
			b.Fatal("ranking wrong")
		}
	}
}

func BenchmarkScreen9ConflictResolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := assertion.NewSet()
		instructor := assertion.ObjKey{Schema: "sc3", Object: "Instructor"}
		grad := assertion.ObjKey{Schema: "sc4", Object: "Grad_student"}
		student := assertion.ObjKey{Schema: "sc4", Object: "Student"}
		if err := set.Assert(instructor, grad, assertion.ContainedIn); err != nil {
			b.Fatal(err)
		}
		if err := set.Assert(grad, student, assertion.ContainedIn); err != nil {
			b.Fatal(err)
		}
		if res := set.Close(); !res.Consistent() {
			b.Fatal("unexpected conflict")
		}
		err := set.Assert(instructor, student, assertion.DisjointNonintegrable)
		if _, ok := err.(*assertion.Conflict); !ok {
			b.Fatal("expected the Screen 9 conflict")
		}
	}
}

func BenchmarkScreens10to12ResultViews(b *testing.B) {
	ws := preparedWorkspace(b)
	if _, err := ws.Integrate("sc1", "sc2"); err != nil {
		b.Fatal(err)
	}
	script := []string{
		"6", "sc1", "sc2",
		"Student c", "a", "1", "", "", "e", "x",
		"x", "e",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		io := session.NewScriptIO(script...)
		if err := session.New(ws, io).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func sessionWithSchemas(b testing.TB) *session.Workspace {
	ws := session.NewWorkspace()
	if err := ws.AddSchema(paperex.Sc1()); err != nil {
		b.Fatal(err)
	}
	if err := ws.AddSchema(paperex.Sc2()); err != nil {
		b.Fatal(err)
	}
	return ws
}

func cloneWorkspaceSchemas(b testing.TB, src *session.Workspace) *session.Workspace {
	ws := session.NewWorkspace()
	for _, s := range src.Schemas() {
		if err := ws.AddSchema(s.Clone()); err != nil {
			b.Fatal(err)
		}
	}
	return ws
}

// --- X1: resemblance-ranking scalability sweep ---

func BenchmarkRankingSweep(b *testing.B) {
	for _, n := range []int{10, 20, 50, 100, 200} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			w := genWorkload(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pairs := resemblance.RankObjects(w.S1, w.S2, w.Registry)
				if len(pairs) != n*n {
					b.Fatal("pair count wrong")
				}
			}
		})
	}
}

// --- X2: assertion closure and consistency sweep ---

func BenchmarkClosureSweep(b *testing.B) {
	for _, n := range []int{10, 20, 50, 100} {
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set := assertion.NewSet()
				for j := 0; j+1 < n; j++ {
					s1, s2 := "a", "b"
					if j%2 == 1 {
						s1, s2 = "b", "a"
					}
					err := set.Assert(
						assertion.ObjKey{Schema: s1, Object: fmt.Sprintf("O%03d", j)},
						assertion.ObjKey{Schema: s2, Object: fmt.Sprintf("O%03d", j+1)},
						assertion.ContainedIn)
					if err != nil {
						b.Fatal(err)
					}
				}
				res := set.Close()
				if !res.Consistent() {
					b.Fatal("inconsistent")
				}
				want := n*(n-1)/2 - (n - 1)
				if len(res.Derived) != want {
					b.Fatalf("derived %d, want %d", len(res.Derived), want)
				}
			}
		})
	}
}

// --- X3: full-integration scalability sweep ---

func BenchmarkIntegrationSweep(b *testing.B) {
	for _, n := range []int{10, 20, 50, 100} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			w := genWorkload(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := integrate.Integrate(integrate.Input{
					S1: w.S1, S2: w.S2,
					Registry:      w.Registry,
					Objects:       w.Objects,
					Relationships: w.Relationships,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Schema.Objects) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

func genWorkload(b testing.TB, n int) *workload.Workload {
	cfg := workload.DefaultConfig(int64(n))
	cfg.Objects = n
	cfg.Relationships = n / 3
	w, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// --- X4: n-ary integration by repeated binary integration ---

func BenchmarkNaryIntegration(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("schemas=%d", k), func(b *testing.B) {
			// k schemas, each with a Department to merge into the
			// accumulated schema.
			mk := func(i int) *ecr.Schema {
				s := ecr.NewSchema(fmt.Sprintf("db%02d", i))
				if err := s.AddObject(&ecr.ObjectClass{
					Name: "Department", Kind: ecr.KindEntity,
					Attributes: []ecr.Attribute{
						{Name: "Dname", Domain: "char", Key: true},
						{Name: fmt.Sprintf("Extra%02d", i), Domain: "int"},
					},
				}); err != nil {
					b.Fatal(err)
				}
				return s
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				steps := make([]integrate.NAryStep, 0, k-1)
				for j := 1; j < k; j++ {
					next := mk(j)
					steps = append(steps, integrate.NAryStep{
						Next: next,
						Prepare: func(acc *ecr.Schema) (*equivalence.Registry, *assertion.Set, *assertion.Set, error) {
							// The accumulated schema holds exactly one
							// (possibly re-merged) department class.
							target := acc.Objects[0].Name
							set := assertion.NewSet()
							err := set.Assert(
								assertion.ObjKey{Schema: acc.Name, Object: target},
								assertion.ObjKey{Schema: next.Name, Object: "Department"},
								assertion.Equals)
							return nil, set, nil, err
						},
					})
				}
				final, _, err := integrate.NAry(mk(0), steps, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(final.Objects) != 1 {
					b.Fatalf("final objects = %d", len(final.Objects))
				}
			}
		})
	}
}

// --- X5: resemblance-function ablation against the workload oracle ---

func BenchmarkResemblanceAblation(b *testing.B) {
	cfg := workload.DefaultConfig(99)
	cfg.Objects = 40
	cfg.NamingNoise = 0.4
	w, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	truth := map[string]bool{}
	for _, tp := range w.TruePairs {
		truth[tp.A.Object+"|"+tp.B.Object] = true
	}
	k := len(w.TruePairs)

	variants := []struct {
		name string
		reg  func() *equivalence.Registry
	}{
		{"oracle-equivalences", func() *equivalence.Registry { return w.Registry }},
		{"suggested-name-only", func() *equivalence.Registry {
			reg := equivalence.NewRegistry()
			reg.RegisterSchema(w.S1)
			reg.RegisterSchema(w.S2)
			cands := resemblance.SuggestEquivalences(w.S1, w.S2,
				resemblance.Weights{Name: 1}, nil, 0.85)
			resemblance.ApplySuggestions(reg, cands)
			return reg
		}},
		{"suggested-weighted-dict", func() *equivalence.Registry {
			reg := equivalence.NewRegistry()
			reg.RegisterSchema(w.S1)
			reg.RegisterSchema(w.S2)
			cands := resemblance.SuggestEquivalences(w.S1, w.S2,
				resemblance.DefaultWeights(), dictionary.Builtin(), 0.85)
			resemblance.ApplySuggestions(reg, cands)
			return reg
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var precision float64
			for i := 0; i < b.N; i++ {
				reg := v.reg()
				pairs := resemblance.RankObjects(w.S1, w.S2, reg)
				hits := 0
				for j := 0; j < k && j < len(pairs); j++ {
					if truth[pairs[j].Object1+"|"+pairs[j].Object2] {
						hits++
					}
				}
				precision = float64(hits) / float64(k)
			}
			b.ReportMetric(precision, "precision@k")
		})
	}
}

// --- X6: schema translation sweep ---

func BenchmarkTranslationSweep(b *testing.B) {
	for _, n := range []int{5, 20, 50} {
		b.Run(fmt.Sprintf("tables=%d", n), func(b *testing.B) {
			db := syntheticDatabase(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := translate.FromRelational(db)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Schema.Objects) == 0 {
					b.Fatal("empty translation")
				}
			}
		})
	}
	b.Run("hierarchy=depth4", func(b *testing.B) {
		h := syntheticHierarchy(4, 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := translate.FromHierarchical(h); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func syntheticDatabase(n int) *translate.Database {
	db := &translate.Database{Name: "bench"}
	for i := 0; i < n; i++ {
		t := &translate.Table{
			Name: fmt.Sprintf("T%02d", i),
			Columns: []translate.Column{
				{Name: "Id", Type: "INT", NotNull: true},
				{Name: "Name", Type: "VARCHAR(40)"},
			},
			PrimaryKey: []string{"Id"},
		}
		if i > 0 {
			t.Columns = append(t.Columns, translate.Column{Name: "Ref", Type: "INT", NotNull: true})
			t.ForeignKeys = []translate.ForeignKey{{
				Columns: []string{"Ref"}, RefTable: fmt.Sprintf("T%02d", i-1), RefColumns: []string{"Id"},
			}}
		}
		db.Tables = append(db.Tables, t)
	}
	return db
}

func syntheticHierarchy(depth, fanout int) *translate.Hierarchy {
	var build func(level, idx int) *translate.Segment
	n := 0
	build = func(level, idx int) *translate.Segment {
		n++
		seg := &translate.Segment{
			Name: fmt.Sprintf("S%d_%d_%d", level, idx, n),
			Fields: []translate.Field{
				{Name: "Key", Type: "char", Key: true},
				{Name: "Val", Type: "int"},
			},
		}
		if level < depth {
			for c := 0; c < fanout; c++ {
				seg.Children = append(seg.Children, build(level+1, c))
			}
		}
		return seg
	}
	return &translate.Hierarchy{Name: "bench", Roots: []*translate.Segment{build(1, 0)}}
}

// --- X7: query translation through the generated mappings ---

func BenchmarkQueryMappingSweep(b *testing.B) {
	it := paperIntegration(b)
	res, err := it.Integrate("")
	if err != nil {
		b.Fatal(err)
	}
	view := mapping.Query{
		Schema: "sc2", Object: "Grad_student",
		Project: []string{"Name", "Support_type"},
		Where:   []mapping.Predicate{{Attr: "GPA", Op: ">", Value: "3.5"}},
	}
	global := mapping.Query{
		Schema: res.Schema.Name, Object: "Student",
		Project: []string{"D_Name"},
	}
	b.Run("view-to-integrated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mapping.ViewToIntegrated(view, res.Mappings); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("integrated-to-components", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subs, _, err := mapping.IntegratedToComponents(global, res.Mappings, res.Schema)
			if err != nil {
				b.Fatal(err)
			}
			if len(subs) < 2 {
				b.Fatal("fan-out wrong")
			}
		}
	})
}

// --- sanity: the batch path regenerates Figure 5 too ---

func BenchmarkBatchPaperSpec(b *testing.B) {
	spec, err := batch.ParseSpec(`
schemas sc1 sc2
equiv Student.Name = Grad_student.Name
equiv Student.Name = Faculty.Name
equiv Student.GPA = Grad_student.GPA
equiv Department.Dname = Department.Dname
equiv Majors.Since = Stud_major.Since
assert Department 1 Department
assert Student 3 Grad_student
assert Student 4 Faculty
rel-assert Majors 1 Stud_major
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := batch.Run([]*ecr.Schema{paperex.Sc1(), paperex.Sc2()}, spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Schema.Object("D_Stud_Facu") == nil {
			b.Fatal("figure 5 shape missing")
		}
	}
}

// --- X8: operational mappings — federated instance queries ---

func BenchmarkFederationQuerySweep(b *testing.B) {
	it := paperIntegration(b)
	res, err := it.Integrate("")
	if err != nil {
		b.Fatal(err)
	}
	s1, s2 := it.Schemas()
	for _, rows := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			st1, err := instance.NewStore(s1)
			if err != nil {
				b.Fatal(err)
			}
			st2, err := instance.NewStore(s2)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < rows; i++ {
				if err := st1.Insert("Student", instance.Row{
					"Name": fmt.Sprintf("s1-%06d", i),
					"GPA":  fmt.Sprintf("%.2f", float64(i%40)/10),
				}); err != nil {
					b.Fatal(err)
				}
				if err := st2.Insert("Grad_student", instance.Row{
					"Name":         fmt.Sprintf("s2-%06d", i),
					"GPA":          fmt.Sprintf("%.2f", float64(i%40)/10),
					"Support_type": "RA",
				}); err != nil {
					b.Fatal(err)
				}
			}
			fed, err := instance.NewFederation(res.Schema, res.Mappings,
				map[string]*instance.Store{"sc1": st1, "sc2": st2})
			if err != nil {
				b.Fatal(err)
			}
			q := mapping.Query{
				Schema:  res.Schema.Name,
				Object:  "Student",
				Project: []string{"D_Name"},
				Where:   []mapping.Predicate{{Attr: "D_GPA", Op: ">", Value: "3.5"}},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, _, err := fed.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) == 0 {
					b.Fatal("no rows")
				}
			}
		})
	}
}

// --- X9: attribute-matching ablation — binary domain match vs the full
// Larson et al. theory ---

func BenchmarkAttributeTheoryAblation(b *testing.B) {
	s1, s2 := paperex.Sc1(), paperex.Sc2()
	b.Run("binary-domain-match", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cands := resemblance.SuggestEquivalences(s1, s2,
				resemblance.DefaultWeights(), dictionary.Builtin(), 0.8)
			if len(cands) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
	b.Run("full-theory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cands := resemblance.SuggestEquivalencesTheory(s1, s2,
				resemblance.DefaultWeights(), dictionary.Builtin(), 0.8)
			if len(cands) == 0 {
				b.Fatal("no candidates")
			}
		}
	})
}

// --- X10: n-ary planning by schema resemblance ---

func BenchmarkPlanOrderSweep(b *testing.B) {
	for _, k := range []int{3, 6, 12} {
		b.Run(fmt.Sprintf("schemas=%d", k), func(b *testing.B) {
			var schemas []*ecr.Schema
			for i := 0; i < k; i++ {
				w := genWorkload(b, 8+i)
				s := w.S1.Clone()
				s.Name = fmt.Sprintf("p%02d", i)
				schemas = append(schemas, s)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := plan.Order(schemas, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(p.Steps) != k-1 {
					b.Fatal("plan incomplete")
				}
			}
		})
	}
}

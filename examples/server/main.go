// Server walkthrough: the paper's running example over the HTTP API.
//
// The program starts sit-server in-process on an ephemeral port, then
// plays the DDA's session as an HTTP client — inside its own workspace, as
// a tenant of a multi-tenant server: create the "registrar" workspace,
// upload the Figure 3/4 component schemas (sc1, sc2), declare the
// attribute equivalences of Screen 7, state the running example's
// assertions, submit the integration as an async job, poll it to
// completion, and print the integrated schema plus the server's metrics.
// A second workspace comes and goes along the way to show that tenants
// are fully isolated. Finally the server is shut down gracefully.
//
// Run with: go run ./examples/server
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/server"
)

const schemasDDL = `
schema sc1

entity Student {
    attr Name: char key
    attr GPA: real
}

entity Department {
    attr Dname: char key
}

relationship Majors (Student (0,1), Department (1,n)) {
    attr Since: date
}

schema sc2

entity Grad_student {
    attr Name: char key
    attr GPA: real
    attr Support_type: char
}

entity Faculty {
    attr Name: char key
    attr Rank: char
}

entity Department {
    attr Dname: char key
    attr Location: char
}

relationship Stud_major (Grad_student (0,1), Department (0,n)) {
    attr Since: date
}

relationship Works (Faculty (1,1), Department (1,n)) {
    attr Percent_time: int
}
`

func main() {
	// 1. Start the service in-process on an ephemeral port.
	srv := server.New(server.Config{Workers: 2})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr
	fmt.Println("sit-server listening on", addr)

	// 2. Create a workspace for this integration session and upload the
	// component schemas as ECR DDL into it. (The unprefixed /v1/... routes
	// would address the built-in "default" workspace instead.)
	post(base+"/v1/workspaces", map[string]string{"name": "registrar"}, nil)
	ws := base + "/v1/workspaces/registrar"
	fmt.Println("created workspace registrar")
	post(ws+"/schemas", map[string]string{"ddl": schemasDDL}, nil)
	fmt.Println("uploaded schemas sc1 and sc2")

	// Another tenant's workspace is fully independent: it can hold its own
	// schema named sc1 without touching ours, and deleting it later removes
	// only its data.
	post(base+"/v1/workspaces", map[string]string{"name": "library"}, nil)
	post(base+"/v1/workspaces/library/schemas", map[string]string{
		"ddl": "schema sc1\nentity Book {\n attr Isbn: char key\n}\n",
	}, nil)
	fmt.Println("created workspace library with its own, unrelated sc1")

	// 3. Declare the attribute equivalences of Screen 7.
	for _, pair := range [][2]string{
		{"Student.Name", "Grad_student.Name"},
		{"Student.Name", "Faculty.Name"},
		{"Student.GPA", "Grad_student.GPA"},
		{"Department.Dname", "Department.Dname"},
		{"Majors.Since", "Stud_major.Since"},
	} {
		post(ws+"/equivalences", map[string]string{
			"schema1": "sc1", "attr1": pair[0],
			"schema2": "sc2", "attr2": pair[1],
		}, nil)
	}
	fmt.Println("declared 5 attribute equivalences")

	// 4. The ranked pairs the Assertion Collection screen would show.
	var ranked struct {
		Pairs []struct {
			Object1, Object2 string
			Ratio            float64
		} `json:"pairs"`
	}
	get(ws+"/resemblance?schema1=sc1&schema2=sc2", &ranked)
	fmt.Println("\nresemblance-ranked object pairs:")
	for _, p := range ranked.Pairs {
		fmt.Printf("  %-12s %-14s %.4f\n", p.Object1, p.Object2, p.Ratio)
	}

	// 5. State the running example's assertions (codes: 1 equals, 3
	// contains, 4 disjoint-integrable).
	type assertReq struct {
		Schema1      string `json:"schema1"`
		Object1      string `json:"object1"`
		Code         int    `json:"code"`
		Schema2      string `json:"schema2"`
		Object2      string `json:"object2"`
		Relationship bool   `json:"relationship,omitempty"`
	}
	for _, a := range []assertReq{
		{"sc1", "Department", 1, "sc2", "Department", false},
		{"sc1", "Student", 3, "sc2", "Grad_student", false},
		{"sc1", "Student", 4, "sc2", "Faculty", false},
		{"sc1", "Majors", 1, "sc2", "Stud_major", true},
	} {
		post(ws+"/assertions", a, nil)
	}
	fmt.Println("\nstated 4 assertions")

	// 6. Submit the integration as an async job and poll it.
	var job server.Job
	post(ws+"/jobs", server.JobRequest{
		Type: "integrate", Schema1: "sc1", Schema2: "sc2",
	}, &job)
	fmt.Println("submitted", job.ID)
	for !job.State.Terminal() {
		time.Sleep(10 * time.Millisecond)
		get(ws+"/jobs/"+job.ID, &job)
	}
	if job.State != server.JobDone {
		log.Fatalf("job ended %s: %s", job.State, job.Error)
	}

	// 7. Print the integrated schema and the integration report.
	fmt.Println("\nintegrated schema:")
	fmt.Println(job.Result.DDL)
	fmt.Println("integration report:")
	for _, line := range job.Result.Report {
		fmt.Println(" ", line)
	}

	// 8. The other tenant is done: delete its workspace. Ours — and the
	// default — are untouched.
	del(base + "/v1/workspaces/library")
	fmt.Println("\ndeleted workspace library")

	// 9. Peek at the server's metrics before shutting down.
	var metrics server.MetricsSnapshot
	get(base+"/metrics", &metrics)
	fmt.Printf("\nmetrics: %d integration(s), queue depth %d, %d workspace(s) active\n",
		metrics.IntegrationLatency.Count, metrics.QueueDepth, metrics.WorkspacesActive)
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server shut down cleanly")
}

// post sends v as JSON and decodes the response into out when non-nil.
func post(url string, v, out any) {
	data, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

// del issues a DELETE and checks it succeeded.
func del(url string) {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		log.Fatalf("DELETE %s: %d", url, resp.StatusCode)
	}
}

// get fetches URL and decodes the JSON response into out.
func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		log.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

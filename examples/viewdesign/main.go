// Viewdesign: logical database design from user views.
//
// This example exercises the paper's first integration context: several
// user views are merged into one logical schema, and the transactions
// specified against each view are mapped to the logical schema. Here a
// registrar's view and a housing office's view of a campus database are
// integrated; the registrar's and housing queries are then rewritten
// against the logical schema through the generated mappings.
//
// Run with: go run ./examples/viewdesign
package main

import (
	"fmt"
	"log"

	"repro/internal/assertion"
	"repro/internal/core"
	"repro/internal/ecr"
	"repro/internal/mapping"
)

const registrarView = `
schema registrar
entity Student {
    attr Sid: int key
    attr Name: char
    attr GPA: real
}
entity Course {
    attr Cno: char key
    attr Title: char
}
relationship Takes (Student (0,n), Course (0,n)) {
    attr Grade: char
}
`

const housingView = `
schema housing
entity Resident {
    attr Sid: int key
    attr Name: char
    attr Meal_plan: char
}
entity Dorm {
    attr Dname: char key
    attr Capacity: int
}
relationship Lives_in (Resident (1,1), Dorm (0,n)) {}
`

func main() {
	reg, err := ecr.ParseSchema(registrarView)
	check(err)
	hou, err := ecr.ParseSchema(housingView)
	check(err)

	it, err := core.New(reg, hou)
	check(err)
	// Schema analysis: student ids and names correspond.
	check(it.DeclareEquivalent("Student.Sid", "Resident.Sid"))
	check(it.DeclareEquivalent("Student.Name", "Resident.Name"))
	// Every resident is a student, but not every student lives on
	// campus: Resident is contained in Student.
	check(it.Assert("Student", assertion.Contains, "Resident"))

	res, err := it.Integrate("campus")
	check(err)

	fmt.Println("--- logical schema from the two views ---")
	fmt.Print(ecr.Diagram(res.Schema))
	fmt.Println()
	fmt.Println("--- integration report ---")
	for _, line := range res.Report {
		fmt.Println("  ", line)
	}
	fmt.Println()

	// Both offices keep their own transactions; the mappings rewrite
	// them against the logical schema.
	queries := []mapping.Query{
		{
			Schema: "registrar", Object: "Student",
			Project: []string{"Name", "GPA"},
			Where:   []mapping.Predicate{{Attr: "GPA", Op: ">", Value: "3.5"}},
		},
		{
			Schema: "housing", Object: "Resident",
			Project: []string{"Name", "Meal_plan"},
		},
		{
			Schema: "registrar", Object: "Takes",
			Project: []string{"Grade"},
		},
	}
	fmt.Println("--- view transactions rewritten against the logical schema ---")
	for _, q := range queries {
		up, err := mapping.ViewToIntegrated(q, res.Mappings)
		check(err)
		fmt.Println("view:   ", q.String())
		fmt.Println("logical:", up.String())
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

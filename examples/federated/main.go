// Federated: global schema design over pre-existing databases, driven
// entirely over the server's HTTP API.
//
// This example exercises the paper's second integration context: several
// databases already exist — here a relational personnel database and a
// hierarchical projects database, plus a native ECR sales schema — and a
// single global schema is designed over them. Each conventional schema is
// uploaded through POST /schemas in its own definition language (the
// frontend registry translates it into ECR), the integration is run and
// persisted through POST /integrations, instance rows are loaded through
// POST /rows, and finally a global query is translated and executed through
// POST /query: the server fans it out to per-database subqueries via the
// saved mapping table and merges the answers.
//
// Run with: go run ./examples/federated
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"repro/internal/server"
)

const personnelSQL = `
CREATE TABLE Department (
    Dname VARCHAR(40) PRIMARY KEY,
    Budget INT
);
CREATE TABLE Employee (
    Eno INT PRIMARY KEY,
    Name VARCHAR(40) NOT NULL,
    Salary INT,
    Dept VARCHAR(40) NOT NULL,
    FOREIGN KEY (Dept) REFERENCES Department (Dname)
);
`

const projectsHier = `
hierarchy projects
segment Division {
    field Dname char key
    field Location char
    segment Project {
        field Pname char key
        field Budget int
    }
}
`

const salesECR = `
schema sales
entity Customer {
    attr Name: char key
    attr Region: char
}
`

func main() {
	srv := server.New(server.Config{Workers: 1, QueueCapacity: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	base := ts.URL + "/v1"

	// Step 1: upload each database's schema in its native language. The
	// format field routes through the frontend registry; sales is sniffed.
	var up struct {
		Added  []string `json:"added"`
		Format string   `json:"format"`
		Notes  []string `json:"notes"`
	}
	post(base+"/schemas", map[string]string{
		"source": personnelSQL, "format": "sql", "name": "personnel",
	}, &up)
	fmt.Println("--- personnel (relational -> ECR) ---")
	for _, n := range up.Notes {
		fmt.Println("  ", n)
	}
	post(base+"/schemas", map[string]string{"source": projectsHier}, &up)
	fmt.Printf("--- projects uploaded (sniffed as %s) ---\n", up.Format)
	post(base+"/schemas", map[string]string{"source": salesECR}, &up)
	fmt.Printf("--- sales uploaded (sniffed as %s) ---\n", up.Format)

	// Step 2: the relational Department and the hierarchical Division
	// describe the same real-world units; integrate and persist the result
	// with its mapping table.
	post(base+"/equivalences", map[string]string{
		"schema1": "personnel", "attr1": "Department.Dname",
		"schema2": "projects", "attr2": "Division.Dname",
	}, nil)
	post(base+"/assertions", map[string]any{
		"schema1": "personnel", "object1": "Department", "code": 1,
		"schema2": "projects", "object2": "Division",
	}, nil)
	var info struct {
		Schema     string   `json:"schema"`
		Components []string `json:"components"`
	}
	post(base+"/integrations", map[string]string{
		"name": "global", "schema1": "personnel", "schema2": "projects",
	}, &info)
	fmt.Printf("--- integration saved: %s over %v ---\n", info.Schema, info.Components)

	// Step 3: load rows into the component databases.
	post(base+"/rows", map[string]any{
		"schema": "personnel", "structure": "Department",
		"rows": []map[string]string{
			{"Dname": "R&D", "Budget": "900"},
			{"Dname": "Sales", "Budget": "400"},
		},
	}, nil)
	post(base+"/rows", map[string]any{
		"schema": "projects", "structure": "Division",
		"rows": []map[string]string{
			{"Dname": "R&D", "Location": "Lausanne"},
			{"Dname": "Ops", "Location": "Geneva"},
		},
	}, nil)

	// Step 4: fetch the saved integration and find the merged class — the
	// department/division concept carrying a source in each database.
	var saved struct {
		Schema struct {
			Objects []struct {
				Name    string `json:"name"`
				Sources []any  `json:"sources"`
			} `json:"objects"`
		} `json:"schema"`
	}
	get(base+"/integrations/global", &saved)
	merged := ""
	for _, o := range saved.Schema.Objects {
		if len(o.Sources) == 2 {
			merged = o.Name
			break
		}
	}
	fmt.Println("merged class:", merged)

	// Step 5: one global query fans out to both databases; the R&D unit is
	// known to both and comes back merged.
	var res struct {
		Direction string              `json:"direction"`
		Rendered  []string            `json:"rendered"`
		Executed  bool                `json:"executed"`
		Rows      []map[string]string `json:"rows"`
	}
	post(base+"/query", map[string]any{
		"integration": "global",
		"query":       map[string]any{"schema": info.Schema, "object": merged},
	}, &res)
	fmt.Println("--- global query fan-out ---")
	fmt.Println("direction:", res.Direction)
	for _, r := range res.Rendered {
		fmt.Println("  component: ", r)
	}
	fmt.Println("executed:", res.Executed)
	for _, row := range res.Rows {
		fmt.Println("  row:", row)
	}
}

// get fetches url and decodes the JSON response into out.
func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// post sends v as JSON and decodes the response into out (when non-nil).
func post(url string, v any, out any) {
	data, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

// Federated: global schema design over three pre-existing databases.
//
// This example exercises the paper's second integration context: several
// databases already exist — here a relational personnel database, a
// hierarchical projects database, and a native ECR sales schema — and a
// single global schema is designed over them. The conventional schemas are
// first translated into the ECR model (the Navathe & Awong step), then
// folded together by repeated binary integration, and finally a query
// against the global schema is mapped into per-database subqueries.
//
// Run with: go run ./examples/federated
package main

import (
	"fmt"
	"log"

	"repro/internal/assertion"
	"repro/internal/core"
	"repro/internal/ecr"
	"repro/internal/mapping"
	"repro/internal/translate"
)

const personnelSQL = `
CREATE TABLE Department (
    Dname VARCHAR(40) PRIMARY KEY,
    Budget INT
);
CREATE TABLE Employee (
    Eno INT PRIMARY KEY,
    Name VARCHAR(40) NOT NULL,
    Salary INT,
    Dept VARCHAR(40) NOT NULL,
    FOREIGN KEY (Dept) REFERENCES Department (Dname)
);
CREATE TABLE Engineer (
    Eno INT PRIMARY KEY,
    Discipline VARCHAR(40),
    FOREIGN KEY (Eno) REFERENCES Employee (Eno)
);
`

const projectsHier = `
hierarchy projects
segment Division {
    field Dname char key
    field Location char
    segment Project {
        field Pname char key
        field Budget int
        segment Task {
            field Tname char key
            field Hours int
        }
    }
}
`

const salesECR = `
schema sales
entity Customer {
    attr Name: char key
    attr Region: char
}
entity Product {
    attr Pname: char key
    attr Price: real
}
relationship Buys (Customer (0,n), Product (0,n)) {
    attr Quantity: int
}
`

func main() {
	// Step 1: translate the conventional schemas into ECR.
	db, err := translate.ParseSQL("personnel", personnelSQL)
	check(err)
	rel, err := translate.FromRelational(db)
	check(err)
	fmt.Println("--- personnel (relational -> ECR) ---")
	for _, n := range rel.Notes {
		fmt.Println("  ", n)
	}
	fmt.Print(ecr.Diagram(rel.Schema))
	fmt.Println()

	h, err := translate.ParseHierarchy(projectsHier)
	check(err)
	hier, err := translate.FromHierarchical(h)
	check(err)
	fmt.Println("--- projects (hierarchical -> ECR) ---")
	fmt.Print(ecr.Diagram(hier.Schema))
	fmt.Println()

	sales, err := ecr.ParseSchema(salesECR)
	check(err)

	// Step 2: integrate personnel with projects. The relational
	// Department and the hierarchical Division describe the same
	// real-world units.
	it1, err := core.New(rel.Schema, hier.Schema)
	check(err)
	check(it1.DeclareEquivalent("Department.Dname", "Division.Dname"))
	check(it1.Assert("Department", assertion.Equals, "Division"))
	step1, err := it1.Integrate("global1")
	check(err)

	// Step 3: fold in the sales schema. Customers and employees are
	// disjoint but both are business partners worth a common concept.
	it2, err := core.New(step1.Schema, sales)
	check(err)
	check(it2.Assert("Employee", assertion.DisjointIntegrable, "Customer"))
	global, err := it2.Integrate("global")
	check(err)

	fmt.Println("--- global schema ---")
	fmt.Print(ecr.Diagram(global.Schema))
	fmt.Println()

	// Step 4: translate a global request into per-database requests.
	// The merged department/division class of step 1 carries two
	// sources; querying it fans out to both databases.
	merged := ""
	for _, o := range step1.Schema.Objects {
		if len(o.Sources) == 2 {
			merged = o.Name
			break
		}
	}
	q := mapping.Query{Schema: "global1", Object: merged, Project: []string{"D_Dname"}}
	subs, skipped, err := mapping.IntegratedToComponents(q, step1.Mappings, step1.Schema)
	check(err)
	fmt.Println("--- global query fan-out ---")
	fmt.Println("global object:", merged)
	fmt.Println("query:        ", q.String())
	for _, sub := range subs {
		fmt.Println("  component: ", sub.String())
	}
	for _, sk := range skipped {
		fmt.Println("  skipped:   ", sk)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

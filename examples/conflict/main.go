// Conflict: the assertion consistency machinery of Screen 9.
//
// This example replays the paper's conflict scenario programmatically:
// sc3.Instructor 'contained in' sc4.Grad_student and sc4.Grad_student
// 'contained in' sc4.Student let the tool derive sc3.Instructor 'contained
// in' sc4.Student by transitive composition; when the DDA then states that
// Instructor and Student are disjoint, the tool raises the conflict with
// the derivation that contradicts it, exactly as the Assertion Conflict
// Resolution screen shows. The Entity Assertion matrix is printed before
// and after resolution.
//
// Run with: go run ./examples/conflict
package main

import (
	"fmt"

	"repro/internal/assertion"
)

func main() {
	set := assertion.NewSet()
	instructor := assertion.ObjKey{Schema: "sc3", Object: "Instructor"}
	grad := assertion.ObjKey{Schema: "sc4", Object: "Grad_student"}
	student := assertion.ObjKey{Schema: "sc4", Object: "Student"}

	fmt.Println("DDA asserts:")
	fmt.Println("  sc3.Instructor 'contained in' sc4.Grad_student   (code 2)")
	fmt.Println("  sc4.Grad_student 'contained in' sc4.Student      (code 2)")
	check(set.Assert(instructor, grad, assertion.ContainedIn))
	check(set.Assert(grad, student, assertion.ContainedIn))

	res := set.Close()
	fmt.Println("\nderived by transitive composition:")
	for _, d := range res.Derived {
		fmt.Printf("  %s   <derived from:", d.Statement)
		for _, tr := range d.Trace {
			fmt.Printf(" [%s]", tr)
		}
		fmt.Println(">")
	}

	fmt.Println("\nEntity Assertion matrix (derived entries marked *):")
	fmt.Print(set.Matrix(nil))

	fmt.Println("\nDDA now asserts: sc3.Instructor and sc4.Student are disjoint (code 0)")
	err := set.Assert(instructor, student, assertion.DisjointNonintegrable)
	if conflict, ok := err.(*assertion.Conflict); ok {
		fmt.Println("CONFLICT detected (Screen 9):")
		fmt.Println(" ", conflict.Error())
	} else {
		fmt.Println("unexpected:", err)
	}

	fmt.Println("\nresolution per the paper: change the earlier assertion in line 3")
	fmt.Println("to '0' — realizing that all instructors are not grad students.")
	check(set.Override(instructor, grad, assertion.DisjointNonintegrable))
	if res := set.Close(); res.Consistent() {
		fmt.Println("matrix is consistent again; the DDA's statement now holds:")
	}
	check(set.Assert(instructor, student, assertion.DisjointNonintegrable))
	fmt.Print(set.Matrix(nil))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

// University: the complete running example of the paper, end to end.
//
// Schemas sc1 (Figure 3) and sc2 (Figure 4) are integrated with the
// equivalences of Screen 7 and the assertions of Screen 8, reproducing the
// integrated schema of Figure 5 — E_Department, D_Stud_Facu with Student
// and Faculty as categories, Grad_student under Student, E_Stud_Majo and
// Works — and the component-attribute provenance shown in Screens 12a/12b.
//
// Run with: go run ./examples/university
package main

import (
	"fmt"
	"log"

	"repro/internal/assertion"
	"repro/internal/core"
	"repro/internal/ecr"
	"repro/internal/mapping"
	"repro/internal/paperex"
)

func main() {
	s1, s2 := paperex.Sc1(), paperex.Sc2()
	fmt.Println("--- component schema sc1 (Figure 3) ---")
	fmt.Print(ecr.Diagram(s1))
	fmt.Println()
	fmt.Println("--- component schema sc2 (Figure 4) ---")
	fmt.Print(ecr.Diagram(s2))
	fmt.Println()

	it, err := core.New(s1, s2)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 2 — schema analysis: the equivalence classes of Screen 7.
	for _, pair := range [][2]string{
		{"Student.Name", "Grad_student.Name"},
		{"Student.Name", "Faculty.Name"},
		{"Student.GPA", "Grad_student.GPA"},
		{"Department.Dname", "Department.Dname"},
		{"Majors.Since", "Stud_major.Since"},
	} {
		if err := it.DeclareEquivalent(pair[0], pair[1]); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 3 — assertion specification: the ranked pairs of Screen 8.
	fmt.Println("--- ranked object pairs (Screen 8) ---")
	for _, p := range it.RankedObjectPairs() {
		if p.Equivalent == 0 {
			continue
		}
		fmt.Printf("%-18s %-22s ratio %.4f\n",
			p.Schema1+"."+p.Object1, p.Schema2+"."+p.Object2, p.Ratio)
	}
	fmt.Println()

	asserts := []struct {
		o1   string
		kind assertion.Kind
		o2   string
	}{
		{"Department", assertion.Equals, "Department"},
		{"Student", assertion.Contains, "Grad_student"},
		{"Student", assertion.DisjointIntegrable, "Faculty"},
	}
	for _, a := range asserts {
		if err := it.Assert(a.o1, a.kind, a.o2); err != nil {
			log.Fatal(err)
		}
	}
	if err := it.AssertRelationship("Majors", assertion.Equals, "Stud_major"); err != nil {
		log.Fatal(err)
	}

	// Phase 4 — integration: Figure 5.
	res, err := it.Integrate("")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- integrated schema (Figure 5) ---")
	fmt.Print(ecr.Diagram(res.Schema))
	fmt.Println()

	// The component attributes behind the derived D_Name (Screens
	// 12a/12b).
	student := res.Schema.Object("Student")
	dname, _ := student.Attribute("D_Name")
	fmt.Println("--- component attributes of Student.D_Name (Screens 12a/12b) ---")
	for _, c := range dname.Components {
		fmt.Printf("%s (original type %s)\n", c, c.Kind)
	}
	fmt.Println()

	// Mappings in the logical-database-design direction: a view query
	// against sc2 rewritten against the integrated schema.
	q := mapping.Query{
		Schema:  "sc2",
		Object:  "Grad_student",
		Project: []string{"Name", "Support_type"},
		Where:   []mapping.Predicate{{Attr: "GPA", Op: ">", Value: "3.5"}},
	}
	up, err := mapping.ViewToIntegrated(q, res.Mappings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- view query translation ---")
	fmt.Println("view:      ", q.String())
	fmt.Println("integrated:", up.String())
}

// Operational: the generated mappings driving a running system.
//
// The paper notes that after integration the mappings "are used to
// translate requests in an operational system". This example makes that
// concrete with the in-memory instance level: the paper's sc1 and sc2 are
// populated with rows, the integrated schema of Figure 5 is built, and then
//
//   - a global query against the integrated Student class is answered by
//     federating sc1.Student and sc2.Grad_student, merging the person known
//     to both databases (the global schema design context), and
//   - a view query phrased against sc2 executes against an integrated
//     store through the mappings (the logical database design context).
//
// Run with: go run ./examples/operational
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/assertion"
	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/mapping"
	"repro/internal/paperex"
)

func main() {
	it, err := core.New(paperex.Sc1(), paperex.Sc2())
	check(err)
	for _, p := range [][2]string{
		{"Student.Name", "Grad_student.Name"},
		{"Student.Name", "Faculty.Name"},
		{"Student.GPA", "Grad_student.GPA"},
		{"Department.Dname", "Department.Dname"},
		{"Majors.Since", "Stud_major.Since"},
	} {
		check(it.DeclareEquivalent(p[0], p[1]))
	}
	check(it.Assert("Department", assertion.Equals, "Department"))
	check(it.Assert("Student", assertion.Contains, "Grad_student"))
	check(it.Assert("Student", assertion.DisjointIntegrable, "Faculty"))
	check(it.AssertRelationship("Majors", assertion.Equals, "Stud_major"))
	res, err := it.Integrate("")
	check(err)

	// Populate the two component databases.
	s1, s2 := it.Schemas()
	st1, err := instance.NewStore(s1)
	check(err)
	st2, err := instance.NewStore(s2)
	check(err)
	check(st1.Insert("Student", instance.Row{"Name": "ann", "GPA": "3.9"}))
	check(st1.Insert("Student", instance.Row{"Name": "bob", "GPA": "2.1"}))
	check(st2.Insert("Grad_student", instance.Row{"Name": "ann", "GPA": "3.9", "Support_type": "TA"}))
	check(st2.Insert("Grad_student", instance.Row{"Name": "carol", "GPA": "3.7", "Support_type": "RA"}))
	check(st2.Insert("Faculty", instance.Row{"Name": "dan", "Rank": "full"}))

	// Global schema design: one query, two databases, merged answer.
	fed, err := instance.NewFederation(res.Schema, res.Mappings,
		map[string]*instance.Store{"sc1": st1, "sc2": st2})
	check(err)
	rows, skipped, err := fed.Query(mapping.Query{
		Schema:  res.Schema.Name,
		Object:  "Student",
		Project: []string{"D_Name", "D_GPA"},
	})
	check(err)
	instance.SortRows(rows, "D_Name")
	fmt.Println("--- global query: all students across both databases ---")
	fmt.Println("select D_Name, D_GPA from", res.Schema.Name+".Student")
	for _, r := range rows {
		fmt.Printf("  %-6s %s\n", r["D_Name"], r["D_GPA"])
	}
	for _, s := range skipped {
		fmt.Println("  skipped:", s)
	}
	fmt.Println("  (ann appears once although both databases know her)")
	fmt.Println()

	// Logical database design: a materialized integrated store serving
	// the old view's transactions.
	intStore, err := instance.NewStore(res.Schema)
	check(err)
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r["D_Name"]] {
			seen[r["D_Name"]] = true
			check(intStore.Insert("Student", instance.Row{"D_Name": r["D_Name"], "D_GPA": r["D_GPA"]}))
		}
	}
	ve, err := instance.NewViewExecutor(intStore, res.Mappings)
	check(err)
	viewQ := mapping.Query{
		Schema:  "sc1",
		Object:  "Student",
		Project: []string{"Name"},
		Where:   []mapping.Predicate{{Attr: "GPA", Op: ">", Value: "3.0"}},
	}
	viewRows, err := ve.Query(viewQ)
	check(err)
	var names []string
	for _, r := range viewRows {
		names = append(names, r["Name"])
	}
	sort.Strings(names)
	fmt.Println("--- view transaction against the logical schema ---")
	fmt.Println(viewQ.String())
	fmt.Println("  ->", names)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Quickstart: integrate two small ECR schemas in a dozen lines.
//
// Two departmental views of the same mini-world are parsed from the ECR
// DDL, one attribute equivalence and one assertion are declared, and the
// integrated schema plus the generated mappings are printed.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/assertion"
	"repro/internal/core"
	"repro/internal/ecr"
)

const view1 = `
schema payroll
entity Employee {
    attr Name: char key
    attr Salary: int
}
`

const view2 = `
schema directory
entity Person {
    attr Name: char key
    attr Phone: char
}
`

func main() {
	s1, err := ecr.ParseSchema(view1)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := ecr.ParseSchema(view2)
	if err != nil {
		log.Fatal(err)
	}

	it, err := core.New(s1, s2)
	if err != nil {
		log.Fatal(err)
	}
	// Schema analysis: Employee.Name and Person.Name mean the same thing.
	if err := it.DeclareEquivalent("Employee.Name", "Person.Name"); err != nil {
		log.Fatal(err)
	}
	// Assertion: every employee is a person (Employee contained in
	// Person), so Employee becomes a category of Person.
	if err := it.Assert("Employee", assertion.ContainedIn, "Person"); err != nil {
		log.Fatal(err)
	}

	res, err := it.Integrate("company")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- integrated schema (ECR DDL) ---")
	fmt.Print(ecr.FormatSchema(res.Schema))
	fmt.Println()
	fmt.Println("--- diagram ---")
	fmt.Print(ecr.Diagram(res.Schema))
	fmt.Println()
	fmt.Println("--- mappings ---")
	fmt.Print(res.Mappings.String())
}

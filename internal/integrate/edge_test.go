package integrate_test

import (
	"testing"

	"repro/internal/assertion"
	"repro/internal/ecr"
	"repro/internal/equivalence"
	"repro/internal/errtest"
	"repro/internal/integrate"
)

func entity(name string, attrs ...string) *ecr.ObjectClass {
	o := &ecr.ObjectClass{Name: name, Kind: ecr.KindEntity}
	for i, a := range attrs {
		o.Attributes = append(o.Attributes, ecr.Attribute{Name: a, Domain: "char", Key: i == 0})
	}
	return o
}

func schemaWith(name string, objects ...*ecr.ObjectClass) *ecr.Schema {
	s := ecr.NewSchema(name)
	for _, o := range objects {
		if err := s.AddObject(o); err != nil {
			panic(err)
		}
	}
	return s
}

func TestDerivedNameCollisionGetsSuffix(t *testing.T) {
	// Two disjoint-integrable pairs whose 4-char truncations collide:
	// (Alpha1, Beta1) and (Alph_x, Beta_y) both yield D_Alph_Beta.
	s1 := schemaWith("a", entity("Alphonse", "k1"), entity("Alphard", "k2"))
	s2 := schemaWith("b", entity("Betamax", "k3"), entity("Betatron", "k4"))
	set := assertion.NewSet()
	if err := set.Assert(okey("a", "Alphonse"), okey("b", "Betamax"), assertion.DisjointIntegrable); err != nil {
		t.Fatal(err)
	}
	if err := set.Assert(okey("a", "Alphard"), okey("b", "Betatron"), assertion.DisjointIntegrable); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: s1, S2: s2, Objects: set})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Object("D_Alph_Beta") == nil || res.Schema.Object("D_Alph_Beta_2") == nil {
		t.Errorf("collision suffix missing: %v", names(res.Schema))
	}
	if err := res.Schema.Validate(); err != nil {
		t.Error(err)
	}
}

func TestObjectInTwoDerivedPairs(t *testing.T) {
	// X may-be Y and X may-be Z: X ends up under two derived parents (a
	// lattice, not a tree).
	s1 := schemaWith("a", entity("X", "k"))
	s2 := schemaWith("b", entity("Y", "k"), entity("Z", "k2"))
	set := assertion.NewSet()
	if err := set.Assert(okey("a", "X"), okey("b", "Y"), assertion.MayBe); err != nil {
		t.Fatal(err)
	}
	if err := set.Assert(okey("a", "X"), okey("b", "Z"), assertion.MayBe); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: s1, S2: s2, Objects: set})
	if err != nil {
		t.Fatal(err)
	}
	x := res.Schema.Object("X")
	if len(x.Parents) != 2 {
		t.Errorf("X parents = %v, want two derived parents", x.Parents)
	}
	if err := res.Schema.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEqualsMergeOfThreeViaCluster(t *testing.T) {
	// a.P = b.P and the merged node then contains b.Q.
	s1 := schemaWith("a", entity("P", "k"))
	s2 := schemaWith("b", entity("P", "k"), entity("Q", "k2"))
	set := assertion.NewSet()
	if err := set.Assert(okey("a", "P"), okey("b", "P"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	if err := set.Assert(okey("a", "P"), okey("b", "Q"), assertion.Contains); err != nil {
		t.Fatal(err)
	}
	reg := equivalence.NewRegistry()
	if err := reg.Declare(
		ecr.AttrRef{Schema: "a", Object: "P", Attr: "k"},
		ecr.AttrRef{Schema: "b", Object: "P", Attr: "k"},
	); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: s1, S2: s2, Registry: reg, Objects: set})
	if err != nil {
		t.Fatal(err)
	}
	ep := res.Schema.Object("E_P")
	if ep == nil {
		t.Fatalf("merged E_P missing: %v", names(res.Schema))
	}
	q := res.Schema.Object("Q")
	if q == nil || len(q.Parents) != 1 || q.Parents[0] != "E_P" {
		t.Errorf("Q = %+v", q)
	}
	if _, ok := ep.Attribute("D_k"); !ok {
		t.Errorf("merged attribute missing: %+v", ep.Attributes)
	}
}

func TestRelationshipCardinalityWidening(t *testing.T) {
	mk := func(schema string, min1, max1 int) *ecr.Schema {
		s := schemaWith(schema, entity("P", "k"), entity("Q", "k2"))
		if err := s.AddRelationship(&ecr.RelationshipSet{
			Name: "R",
			Participants: []ecr.Participation{
				{Object: "P", Card: ecr.Cardinality{Min: min1, Max: max1}},
				{Object: "Q", Card: ecr.Cardinality{Min: 0, Max: ecr.N}},
			},
		}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := mk("a", 1, 1)
	s2 := mk("b", 0, ecr.N)
	objs := assertion.NewSet()
	for _, n := range []string{"P", "Q"} {
		if err := objs.Assert(okey("a", n), okey("b", n), assertion.Equals); err != nil {
			t.Fatal(err)
		}
	}
	rels := assertion.NewSet()
	if err := rels.Assert(okey("a", "R"), okey("b", "R"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: s1, S2: s2, Objects: objs, Relationships: rels})
	if err != nil {
		t.Fatal(err)
	}
	er := res.Schema.Relationship("E_R")
	if er == nil {
		t.Fatalf("merged relationship missing: %v", names(res.Schema))
	}
	p, ok := er.Participant("E_P")
	if !ok || p.Card != (ecr.Cardinality{Min: 0, Max: ecr.N}) {
		t.Errorf("widened participation = %+v", p)
	}
}

func TestAttributeNameCollisionInMergedClass(t *testing.T) {
	// Both sides carry an attribute literally named "D_k" plus an
	// equivalent pair named "k": the derived attribute would collide with
	// the existing name and must get a suffix.
	o1 := &ecr.ObjectClass{Name: "P", Kind: ecr.KindEntity, Attributes: []ecr.Attribute{
		{Name: "k", Domain: "char", Key: true},
		{Name: "D_k", Domain: "char"},
	}}
	o2 := &ecr.ObjectClass{Name: "P", Kind: ecr.KindEntity, Attributes: []ecr.Attribute{
		{Name: "k", Domain: "char", Key: true},
	}}
	s1 := schemaWith("a", o1)
	s2 := schemaWith("b", o2)
	reg := equivalence.NewRegistry()
	if err := reg.Declare(
		ecr.AttrRef{Schema: "a", Object: "P", Attr: "k"},
		ecr.AttrRef{Schema: "b", Object: "P", Attr: "k"},
	); err != nil {
		t.Fatal(err)
	}
	set := assertion.NewSet()
	if err := set.Assert(okey("a", "P"), okey("b", "P"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: s1, S2: s2, Registry: reg, Objects: set})
	if err != nil {
		t.Fatal(err)
	}
	ep := res.Schema.Object("E_P")
	seen := map[string]int{}
	for _, a := range ep.Attributes {
		seen[a.Name]++
	}
	for name, n := range seen {
		if n > 1 {
			t.Errorf("attribute name %q appears %d times: %+v", name, n, ep.Attributes)
		}
	}
	if err := res.Schema.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCategoryEqualsEntity(t *testing.T) {
	// A category of one schema asserted equal to an entity set of the
	// other: the merged class keeps the category's parent edge.
	s1 := ecr.NewSchema("a")
	if err := s1.AddObject(entity("Person", "Name")); err != nil {
		t.Fatal(err)
	}
	if err := s1.AddObject(&ecr.ObjectClass{
		Name: "Student", Kind: ecr.KindCategory, Parents: []string{"Person"},
		Attributes: []ecr.Attribute{{Name: "GPA", Domain: "real"}},
	}); err != nil {
		t.Fatal(err)
	}
	s2 := schemaWith("b", entity("Pupil", "Name", "Year"))
	set := assertion.NewSet()
	if err := set.Assert(okey("a", "Student"), okey("b", "Pupil"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: s1, S2: s2, Objects: set})
	if err != nil {
		t.Fatal(err)
	}
	merged := res.Schema.Object("E_Stud_Pupi")
	if merged == nil {
		t.Fatalf("merged class missing: %v", names(res.Schema))
	}
	if merged.Kind != ecr.KindCategory || len(merged.Parents) != 1 || merged.Parents[0] != "Person" {
		t.Errorf("merged = %+v", merged)
	}
	if err := res.Schema.Validate(); err != nil {
		t.Error(err)
	}
}

func TestContainmentCycleRejected(t *testing.T) {
	// a.P = b.Q via equals, then P contains b.R and b.R contains a.P2
	// where a.P2 = b.Q... construct a true cycle at the group level:
	// A ⊃ B and B ⊃ A is caught at Assert; a cycle through merging needs
	// three parties. Build it with raw sets to bypass incremental
	// checks, then expect Integrate's closure to reject it.
	s1 := schemaWith("a", entity("A", "k"), entity("C", "k3"))
	s2 := schemaWith("b", entity("B", "k2"))
	set := assertion.NewSet()
	if err := set.Assert(okey("a", "A"), okey("b", "B"), assertion.Contains); err != nil {
		t.Fatal(err)
	}
	if err := set.Assert(okey("b", "B"), okey("a", "C"), assertion.Contains); err != nil {
		t.Fatal(err)
	}
	if err := set.Assert(okey("a", "C"), okey("b", "B"), assertion.Contains); err == nil {
		t.Fatal("direct contradiction should fail at Assert")
	}
	// C ⊃ A closes the cycle A ⊃ B ⊃ C ⊃ A.
	if err := set.Assert(okey("a", "C"), okey("a", "A"), assertion.Contains); err != nil {
		t.Fatal(err)
	}
	_, err := integrate.Integrate(integrate.Input{S1: s1, S2: s2, Objects: set})
	if err == nil {
		t.Fatal("cyclic containment must be rejected")
	}
	if !errtest.Contains(err, "inconsistent") && !errtest.Contains(err, "cycle") &&
		!errtest.Contains(err, "within one schema") {
		t.Errorf("unexpected error: %v", err)
	}
}

// Package integrate implements the fourth phase of the tool's methodology:
// given two component schemas, the attribute equivalence classes and a
// consistent set of assertions, it produces the integrated schema and the
// mappings between each component schema and the integrated schema.
//
// Object classes connected by any assertion except disjoint-nonintegrable
// form clusters. Within a cluster:
//
//   - classes asserted "equals" merge into a single class carrying the "E_"
//     prefix;
//   - a class asserted "contained in" another becomes a category of it;
//   - classes asserted "may be" or "disjoint integrable" are placed under a
//     new derived class carrying the "D_" prefix, of which they become
//     categories.
//
// Equivalent attributes of merged classes, and of a category and its
// containing class, are combined into derived attributes (prefix "D_")
// whose component attributes are recorded for the Component Attribute
// screens. Derived superclasses created for "may be" and
// "disjoint integrable" pairs carry no attributes of their own: the paper's
// own result screens show the category Student keeping its derived D_Name
// even though D_Stud_Facu is above it, so attributes are not lifted into
// derived superclasses (see DESIGN.md).
//
// Relationship sets are integrated the same way after object classes, their
// participants remapped onto the integrated object classes; lattice edges
// between relationship sets are recorded in RelationshipSet.Parents.
// Finally the mappings from every component structure and attribute to its
// integrated counterpart are emitted.
package integrate

import (
	"fmt"
	"sort"

	"repro/internal/assertion"
	"repro/internal/ecr"
	"repro/internal/equivalence"
	"repro/internal/mapping"
)

// Input collects everything the integration phase consumes.
type Input struct {
	// S1, S2 are the component schemas; they are treated as immutable.
	S1, S2 *ecr.Schema
	// Registry holds the attribute equivalence classes from the schema
	// analysis phase. A nil registry means no equivalent attributes.
	Registry *equivalence.Registry
	// Objects is the Entity Assertion matrix for object classes; nil
	// means no assertions (everything copies through).
	Objects *assertion.Set
	// Relationships is the assertion matrix for relationship sets.
	Relationships *assertion.Set
	// Name optionally names the integrated schema; the default is
	// "INT_<s1>_<s2>".
	Name string
}

// Result is the outcome of an integration.
type Result struct {
	// Schema is the integrated schema.
	Schema *ecr.Schema
	// Mappings relate every component structure and attribute to its
	// integrated counterpart.
	Mappings *mapping.Table
	// Clusters lists the groups of related objects that were integrated
	// together (each sorted), largest first. Singleton clusters
	// (copy-through objects) are omitted.
	Clusters [][]assertion.ObjKey
	// Report logs the integration decisions in order, for display by the
	// result-viewing screens.
	Report []string
}

// Error describes why an integration could not proceed.
type Error struct {
	Stage string
	Msg   string
	// Conflicts carries assertion conflicts when Stage is "closure".
	Conflicts []*assertion.Conflict
}

// Error renders the failure.
func (e *Error) Error() string {
	s := fmt.Sprintf("integrate: %s: %s", e.Stage, e.Msg)
	for _, c := range e.Conflicts {
		s += "\n  " + c.Error()
	}
	return s
}

// Integrate runs the integration phase. The assertion matrices are closed
// (transitively completed) first; any conflict aborts with an *Error whose
// Conflicts field carries the contradictions for the DDA to resolve.
func Integrate(in Input) (*Result, error) {
	if in.S1 == nil || in.S2 == nil {
		return nil, &Error{Stage: "input", Msg: "both component schemas are required"}
	}
	if in.S1.Name == in.S2.Name {
		return nil, &Error{Stage: "input", Msg: fmt.Sprintf("component schemas share the name %q", in.S1.Name)}
	}
	for _, s := range []*ecr.Schema{in.S1, in.S2} {
		if err := s.Validate(); err != nil {
			return nil, &Error{Stage: "input", Msg: err.Error()}
		}
	}
	reg := in.Registry
	if reg == nil {
		reg = equivalence.NewRegistry()
	}
	objAsserts := cloneOrEmpty(in.Objects)
	relAsserts := cloneOrEmpty(in.Relationships)

	if err := checkAssertionTargets(objAsserts, in.S1, in.S2, false); err != nil {
		return nil, err
	}
	if err := checkAssertionTargets(relAsserts, in.S1, in.S2, true); err != nil {
		return nil, err
	}

	if res := objAsserts.Close(); !res.Consistent() {
		return nil, &Error{Stage: "closure", Msg: "object assertions are inconsistent", Conflicts: res.Conflicts}
	}
	if res := relAsserts.Close(); !res.Consistent() {
		return nil, &Error{Stage: "closure", Msg: "relationship assertions are inconsistent", Conflicts: res.Conflicts}
	}

	name := in.Name
	if name == "" {
		name = "INT_" + in.S1.Name + "_" + in.S2.Name
	}

	b := &builder{
		s1:   in.S1.Clone(),
		s2:   in.S2.Clone(),
		reg:  reg,
		out:  ecr.NewSchema(name),
		tab:  &mapping.Table{Components: []string{in.S1.Name, in.S2.Name}, Integrated: name},
		used: map[string]bool{},
	}
	if err := b.buildObjects(objAsserts); err != nil {
		return nil, err
	}
	if err := b.buildRelationships(relAsserts); err != nil {
		return nil, err
	}
	if err := b.out.Validate(); err != nil {
		return nil, &Error{Stage: "assemble", Msg: "integrated schema failed validation: " + err.Error()}
	}

	return &Result{
		Schema:   b.out,
		Mappings: b.tab,
		Clusters: b.clusters,
		Report:   b.report,
	}, nil
}

// NAry integrates several schemas by repeated binary integration, the
// paper's stated way of handling more than two schemas ("a result of
// integration of two schemas can be integrated with another schema").
// Assertions and equivalences must be phrased against the accumulated
// intermediate schema names, which the steps callback receives; most
// callers use the workload package or the session, which handle this.
type NAryStep struct {
	// Next is the schema to fold in.
	Next *ecr.Schema
	// Prepare receives the accumulated schema and must return the inputs
	// for integrating it with Next.
	Prepare func(accumulated *ecr.Schema) (reg *equivalence.Registry, objects, relationships *assertion.Set, err error)
}

// NAry folds the steps into base, returning the final result and the
// per-step mapping tables.
func NAry(base *ecr.Schema, steps []NAryStep, nameOf func(step int) string) (*ecr.Schema, []*mapping.Table, error) {
	acc := base
	var tables []*mapping.Table
	for i, st := range steps {
		reg, objs, rels, err := st.Prepare(acc)
		if err != nil {
			return nil, nil, fmt.Errorf("integrate: n-ary step %d: %w", i+1, err)
		}
		name := ""
		if nameOf != nil {
			name = nameOf(i)
		}
		res, err := Integrate(Input{
			S1: acc, S2: st.Next,
			Registry: reg, Objects: objs, Relationships: rels,
			Name: name,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("integrate: n-ary step %d: %w", i+1, err)
		}
		acc = res.Schema
		tables = append(tables, res.Mappings)
	}
	return acc, tables, nil
}

func cloneOrEmpty(s *assertion.Set) *assertion.Set {
	if s == nil {
		return assertion.NewSet()
	}
	return s.Clone()
}

func checkAssertionTargets(set *assertion.Set, s1, s2 *ecr.Schema, rel bool) error {
	what := "object class"
	if rel {
		what = "relationship set"
	}
	for _, e := range set.Entries() {
		for _, k := range []assertion.ObjKey{e.A, e.B} {
			var s *ecr.Schema
			switch k.Schema {
			case s1.Name:
				s = s1
			case s2.Name:
				s = s2
			default:
				return &Error{Stage: "input", Msg: fmt.Sprintf("assertion references unknown schema %q", k.Schema)}
			}
			if rel {
				if s.Relationship(k.Object) == nil {
					return &Error{Stage: "input", Msg: fmt.Sprintf("assertion references unknown %s %s", what, k)}
				}
			} else if s.Object(k.Object) == nil {
				return &Error{Stage: "input", Msg: fmt.Sprintf("assertion references unknown %s %s", what, k)}
			}
		}
		// DDA-specified assertions relate structures of different
		// schemas; derived ones may legitimately fall within one
		// schema (for example, a disjointness derived through a class
		// of the other schema).
		if !e.Derived && e.A.Schema == e.B.Schema {
			return &Error{Stage: "input", Msg: fmt.Sprintf("assertion between %s and %s is within one schema; assertions relate structures of different schemas", e.A, e.B)}
		}
	}
	return nil
}

// sortKeys orders object keys deterministically.
func sortKeys(keys []assertion.ObjKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Schema != keys[j].Schema {
			return keys[i].Schema < keys[j].Schema
		}
		return keys[i].Object < keys[j].Object
	})
}

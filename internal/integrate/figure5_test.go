package integrate_test

import (
	"strings"
	"testing"

	"repro/internal/assertion"
	"repro/internal/core"
	"repro/internal/ecr"
	"repro/internal/integrate"
	"repro/internal/paperex"
)

// figure5 runs the paper's running example: integrating sc1 (Figure 3) and
// sc2 (Figure 4) with the equivalences of Screen 7 and the assertions of
// Screen 8, which must produce the integrated schema of Figure 5.
func figure5(t testing.TB) *integrate.Result {
	t.Helper()
	it, err := core.New(paperex.Sc1(), paperex.Sc2())
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	// Screen 7: the equivalence classes. sc1.Student.Name,
	// sc2.Grad_student.Name and sc2.Faculty.Name form one class; the
	// GPAs form another; the Dnames a third; the relationship Since
	// attributes a fourth.
	for _, pair := range [][2]string{
		{"Student.Name", "Grad_student.Name"},
		{"Student.Name", "Faculty.Name"},
		{"Student.GPA", "Grad_student.GPA"},
		{"Department.Dname", "Department.Dname"},
		{"Majors.Since", "Stud_major.Since"},
	} {
		if err := it.DeclareEquivalent(pair[0], pair[1]); err != nil {
			t.Fatalf("DeclareEquivalent(%s, %s): %v", pair[0], pair[1], err)
		}
	}
	// Screen 8: the assertions. Department equals Department (1),
	// Student contains Grad_student (3), Student and Faculty disjoint
	// but integrable (4).
	if err := it.Assert("Department", assertion.Equals, "Department"); err != nil {
		t.Fatalf("assert equals: %v", err)
	}
	if err := it.Assert("Student", assertion.Contains, "Grad_student"); err != nil {
		t.Fatalf("assert contains: %v", err)
	}
	if err := it.Assert("Student", assertion.DisjointIntegrable, "Faculty"); err != nil {
		t.Fatalf("assert disjoint-integrable: %v", err)
	}
	// The relationship subphase: Majors equals Stud_major.
	if err := it.AssertRelationship("Majors", assertion.Equals, "Stud_major"); err != nil {
		t.Fatalf("assert relationship equals: %v", err)
	}
	res, err := it.Integrate("")
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	return res
}

func TestFigure5IntegratedSchema(t *testing.T) {
	res := figure5(t)
	s := res.Schema

	// Figure 5 / Screen 10: Entities(2) E_Department and D_Stud_Facu;
	// Categories(3) Student, Grad_student, Faculty; Relationships(2)
	// E_Stud_Majo and Works.
	var entities, categories []string
	for _, o := range s.Objects {
		if o.Kind == ecr.KindEntity {
			entities = append(entities, o.Name)
		} else {
			categories = append(categories, o.Name)
		}
	}
	wantEntities := map[string]bool{"E_Department": true, "D_Stud_Facu": true}
	if len(entities) != 2 || !wantEntities[entities[0]] || !wantEntities[entities[1]] {
		t.Errorf("entities = %v, want E_Department and D_Stud_Facu", entities)
	}
	wantCategories := map[string]bool{"Student": true, "Grad_student": true, "Faculty": true}
	if len(categories) != 3 {
		t.Errorf("categories = %v, want Student, Grad_student, Faculty", categories)
	}
	for _, c := range categories {
		if !wantCategories[c] {
			t.Errorf("unexpected category %q", c)
		}
	}
	var rels []string
	for _, r := range s.Relationships {
		rels = append(rels, r.Name)
	}
	wantRels := map[string]bool{"E_Stud_Majo": true, "Works": true}
	if len(rels) != 2 || !wantRels[rels[0]] || !wantRels[rels[1]] {
		t.Errorf("relationships = %v, want E_Stud_Majo and Works", rels)
	}

	// Screen 11: Student's parent is D_Stud_Facu, its child Grad_student.
	student := s.Object("Student")
	if student == nil {
		t.Fatal("integrated schema has no Student")
	}
	if len(student.Parents) != 1 || student.Parents[0] != "D_Stud_Facu" {
		t.Errorf("Student.Parents = %v, want [D_Stud_Facu]", student.Parents)
	}
	if kids := s.Children("Student"); len(kids) != 1 || kids[0] != "Grad_student" {
		t.Errorf("Children(Student) = %v, want [Grad_student]", kids)
	}
	if faculty := s.Object("Faculty"); faculty == nil || len(faculty.Parents) != 1 || faculty.Parents[0] != "D_Stud_Facu" {
		t.Errorf("Faculty parents wrong: %+v", faculty)
	}

	// Screens 12a/12b: Student carries the derived attribute D_Name with
	// component attributes sc1.Student.Name and sc2.Grad_student.Name.
	dname, ok := student.Attribute("D_Name")
	if !ok {
		t.Fatalf("Student has no D_Name; attrs = %+v", student.Attributes)
	}
	if len(dname.Components) != 2 {
		t.Fatalf("D_Name components = %v, want 2", dname.Components)
	}
	comps := map[string]bool{}
	for _, c := range dname.Components {
		comps[c.String()] = true
	}
	if !comps["sc1.Student.Name"] || !comps["sc2.Grad_student.Name"] {
		t.Errorf("D_Name components = %v, want sc1.Student.Name and sc2.Grad_student.Name", dname.Components)
	}
	if dname.Domain != "char" || !dname.Key {
		t.Errorf("D_Name domain/key = %s/%v, want char/true", dname.Domain, dname.Key)
	}
	if _, ok := student.Attribute("D_GPA"); !ok {
		t.Errorf("Student should carry derived D_GPA; attrs = %+v", student.Attributes)
	}

	// Grad_student keeps only its extra attribute.
	grad := s.Object("Grad_student")
	if len(grad.Attributes) != 1 || grad.Attributes[0].Name != "Support_type" {
		t.Errorf("Grad_student attrs = %+v, want only Support_type", grad.Attributes)
	}

	// Faculty keeps Name and Rank: attributes are not lifted into the
	// derived superclass D_Stud_Facu (see DESIGN.md), matching the
	// paper's Screen 12 where Student retains D_Name.
	faculty := s.Object("Faculty")
	if _, ok := faculty.Attribute("Name"); !ok {
		t.Errorf("Faculty lost Name: %+v", faculty.Attributes)
	}
	dsf := s.Object("D_Stud_Facu")
	if len(dsf.Attributes) != 0 {
		t.Errorf("D_Stud_Facu should carry no attributes, has %+v", dsf.Attributes)
	}

	// E_Department merges the Dnames into a derived attribute and keeps
	// sc2's Location.
	dept := s.Object("E_Department")
	if _, ok := dept.Attribute("D_Dname"); !ok {
		t.Errorf("E_Department should carry D_Dname; attrs = %+v", dept.Attributes)
	}
	if _, ok := dept.Attribute("Location"); !ok {
		t.Errorf("E_Department should keep Location; attrs = %+v", dept.Attributes)
	}

	// E_Stud_Majo relates the general Student class to E_Department.
	majo := s.Relationship("E_Stud_Majo")
	if majo == nil {
		t.Fatal("no E_Stud_Majo")
	}
	var partNames []string
	for _, p := range majo.Participants {
		partNames = append(partNames, p.Object)
	}
	if len(partNames) != 2 || partNames[0] != "Student" || partNames[1] != "E_Department" {
		t.Errorf("E_Stud_Majo participants = %v, want [Student E_Department]", partNames)
	}
	if _, ok := majo.Attribute("D_Since"); !ok {
		t.Errorf("E_Stud_Majo should carry derived D_Since; attrs = %+v", majo.Attributes)
	}

	// Works copies through against the integrated classes.
	works := s.Relationship("Works")
	if works == nil {
		t.Fatal("no Works")
	}
	for _, p := range works.Participants {
		if p.Object != "Faculty" && p.Object != "E_Department" {
			t.Errorf("Works participant %q, want Faculty or E_Department", p.Object)
		}
	}

	if err := s.Validate(); err != nil {
		t.Errorf("integrated schema invalid: %v", err)
	}
}

func TestFigure5Mappings(t *testing.T) {
	res := figure5(t)
	tab := res.Mappings

	cases := []struct {
		schema, object, want string
	}{
		{"sc1", "Student", "Student"},
		{"sc1", "Department", "E_Department"},
		{"sc2", "Department", "E_Department"},
		{"sc2", "Grad_student", "Grad_student"},
		{"sc2", "Faculty", "Faculty"},
		{"sc1", "Majors", "E_Stud_Majo"},
		{"sc2", "Stud_major", "E_Stud_Majo"},
		{"sc2", "Works", "Works"},
	}
	for _, c := range cases {
		got, ok := tab.TargetObject(ecr.ObjectRef{Schema: c.schema, Object: c.object})
		if !ok || got != c.want {
			t.Errorf("TargetObject(%s.%s) = %q, %v; want %q", c.schema, c.object, got, ok, c.want)
		}
	}

	// Attribute of a category that was lifted into its containing class.
	obj, attr, ok := tab.TargetAttr(ecr.AttrRef{Schema: "sc2", Object: "Grad_student", Attr: "Name"})
	if !ok || obj != "Student" || attr != "D_Name" {
		t.Errorf("TargetAttr(sc2.Grad_student.Name) = %s.%s, %v; want Student.D_Name", obj, attr, ok)
	}
	obj, attr, ok = tab.TargetAttr(ecr.AttrRef{Schema: "sc2", Object: "Grad_student", Attr: "Support_type"})
	if !ok || obj != "Grad_student" || attr != "Support_type" {
		t.Errorf("TargetAttr(sc2.Grad_student.Support_type) = %s.%s, %v", obj, attr, ok)
	}
}

func TestFigure5Clusters(t *testing.T) {
	res := figure5(t)
	// One cluster: {sc1.Student, sc2.Grad_student, sc2.Faculty} plus the
	// Department pair — Departments form their own cluster since they
	// are only related to each other.
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v, want 2", res.Clusters)
	}
	joined := make([]string, len(res.Clusters))
	for i, c := range res.Clusters {
		var parts []string
		for _, k := range c {
			parts = append(parts, k.String())
		}
		joined[i] = strings.Join(parts, ",")
	}
	if joined[0] != "sc1.Student,sc2.Faculty,sc2.Grad_student" {
		t.Errorf("cluster[0] = %s", joined[0])
	}
	if joined[1] != "sc1.Department,sc2.Department" {
		t.Errorf("cluster[1] = %s", joined[1])
	}
}

func TestFigure5Stats(t *testing.T) {
	res := figure5(t)
	st := res.Stats()
	if st.Objects != 5 || st.Relationships != 2 {
		t.Errorf("structure counts = %+v", st)
	}
	// E_Department and E_Stud_Majo.
	if st.EqualsMerged != 2 {
		t.Errorf("EqualsMerged = %d", st.EqualsMerged)
	}
	// D_Stud_Facu.
	if st.DerivedClasses != 1 {
		t.Errorf("DerivedClasses = %d", st.DerivedClasses)
	}
	// Student, Grad_student, Faculty.
	if st.Categories != 3 {
		t.Errorf("Categories = %d", st.Categories)
	}
	// D_Name, D_GPA on Student; D_Dname on E_Department; D_Since on
	// E_Stud_Majo.
	if st.DerivedAttributes != 4 {
		t.Errorf("DerivedAttributes = %d", st.DerivedAttributes)
	}
	if !strings.Contains(st.String(), "derived attributes") {
		t.Errorf("String() = %q", st.String())
	}
}

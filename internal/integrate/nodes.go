package integrate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/assertion"
	"repro/internal/ecr"
	"repro/internal/equivalence"
	"repro/internal/mapping"
)

// builder carries the working state of one integration.
type builder struct {
	s1, s2 *ecr.Schema
	reg    *equivalence.Registry
	out    *ecr.Schema
	tab    *mapping.Table

	used     map[string]bool // names taken in the output schema
	clusters [][]assertion.ObjKey
	report   []string

	// objNode maps every component object class to its integrated node.
	objNode map[assertion.ObjKey]*node
}

func (b *builder) logf(format string, args ...any) {
	b.report = append(b.report, fmt.Sprintf(format, args...))
}

// node is one object class of the integrated schema under construction.
type node struct {
	name    string
	members []member // component classes merged into this node (empty for derived nodes)
	derived bool     // created for a may-be or disjoint-integrable pair
	parents []*node
	attrs   []battr
	// order is the emission position: members keep their first
	// component's declaration position, derived nodes come after.
	order int
}

// member is one component object class inside a node.
type member struct {
	key assertion.ObjKey
	obj *ecr.ObjectClass
}

// battr is an attribute being assembled, with provenance.
type battr struct {
	name       string
	domain     string
	key        bool
	components []ecr.AttrRef
	classes    map[int]bool // equivalence class ids of the components
}

func (a *battr) sharesClass(other *battr) bool {
	for id := range a.classes {
		if other.classes[id] {
			return true
		}
	}
	return false
}

// buildObjects performs object-class integration.
func (b *builder) buildObjects(asserts *assertion.Set) error {
	// One node per component object class, merged below.
	b.objNode = make(map[assertion.ObjKey]*node)
	var keys []assertion.ObjKey
	order := 0
	for _, s := range []*ecr.Schema{b.s1, b.s2} {
		for _, o := range s.Objects {
			key := assertion.ObjKey{Schema: s.Name, Object: o.Name}
			b.objNode[key] = &node{members: []member{{key: key, obj: o}}, order: order}
			keys = append(keys, key)
			order++
		}
	}

	// Merge "equals" groups with a union-find over nodes.
	find := newNodeFinder(b.objNode)
	for _, e := range asserts.Entries() {
		if e.Kind.Rel() == assertion.RelEqual {
			find.union(e.A, e.B)
		}
	}
	groups := find.groups(keys)

	// Group-level relations from the closed assertion matrix.
	type groupPair struct{ child, parent *node }
	var subsetEdges []groupPair
	type dPair struct {
		a, b *node
		kind assertion.Kind
	}
	var dPairs []dPair
	seenPair := map[[2]*node]bool{}
	clusterUF := newClusterFinder(groups.nodes())

	for _, e := range asserts.Entries() {
		ga, gb := find.node(e.A), find.node(e.B)
		if ga == gb {
			continue
		}
		pk := orderedNodePair(ga, gb)
		switch e.Kind.Rel() {
		case assertion.RelSubset:
			if !seenPair[pk] {
				seenPair[pk] = true
				subsetEdges = append(subsetEdges, groupPair{child: ga, parent: gb})
				b.logf("contained in: %s becomes a category of %s", b.nodeLabel(ga), b.nodeLabel(gb))
			}
			clusterUF.union(ga, gb)
		case assertion.RelSuperset:
			if !seenPair[pk] {
				seenPair[pk] = true
				subsetEdges = append(subsetEdges, groupPair{child: gb, parent: ga})
				b.logf("contains: %s becomes a category of %s", b.nodeLabel(gb), b.nodeLabel(ga))
			}
			clusterUF.union(ga, gb)
		case assertion.RelOverlap:
			if !seenPair[pk] {
				seenPair[pk] = true
				dPairs = append(dPairs, dPair{a: ga, b: gb, kind: e.Kind})
			}
			clusterUF.union(ga, gb)
		case assertion.RelDisjoint:
			if e.Kind == assertion.DisjointIntegrable {
				if !seenPair[pk] {
					seenPair[pk] = true
					dPairs = append(dPairs, dPair{a: ga, b: gb, kind: e.Kind})
				}
				clusterUF.union(ga, gb)
			}
		case assertion.RelEqual:
			// handled by merging
		}
	}
	// Equals pairs also belong to clusters.
	for _, e := range asserts.Entries() {
		if e.Kind.Rel() == assertion.RelEqual {
			clusterUF.union(find.node(e.A), find.node(e.B))
		}
	}
	b.clusters = clusterUF.clusters()

	// Intra-schema IS-A edges (original categories) become subset edges
	// between the merged nodes.
	for _, s := range []*ecr.Schema{b.s1, b.s2} {
		for _, o := range s.Objects {
			child := find.node(assertion.ObjKey{Schema: s.Name, Object: o.Name})
			for _, p := range o.Parents {
				parent := find.node(assertion.ObjKey{Schema: s.Name, Object: p})
				if parent == nil || parent == child {
					continue
				}
				pk := orderedNodePair(child, parent)
				if !seenPair[pk] {
					seenPair[pk] = true
					subsetEdges = append(subsetEdges, groupPair{child: child, parent: parent})
				}
			}
		}
	}

	// Wire subset edges and reject cycles.
	for _, e := range subsetEdges {
		e.child.parents = append(e.child.parents, e.parent)
	}
	if cyc := findNodeCycle(groups.nodes()); len(cyc) > 0 {
		return &Error{Stage: "objects", Msg: "containment assertions form a cycle: " + strings.Join(cyc, " -> ")}
	}

	// Derived superclasses for may-be / disjoint-integrable pairs. A
	// pair already related through the subset lattice needs no derived
	// parent (its relation is expressed structurally), but a consistent
	// closure never produces that situation; the guard is defensive.
	dOrder := order
	allNodes := groups.nodes()
	for _, dp := range dPairs {
		if nodeReaches(dp.a, dp.b) || nodeReaches(dp.b, dp.a) {
			continue
		}
		dn := &node{derived: true, order: dOrder}
		dOrder++
		dp.a.parents = append(dp.a.parents, dn)
		dp.b.parents = append(dp.b.parents, dn)
		dn.name = b.claimName(derivedName("D_", b.nodeBaseName(dp.a), b.nodeBaseName(dp.b)))
		b.logf("%s: derived class %s over %s and %s",
			dp.kind, dn.name, b.nodeLabel(dp.a), b.nodeLabel(dp.b))
		allNodes = append(allNodes, dn)
	}

	// Transitive reduction of the parent edges keeps the lattice minimal
	// (if a<b<c, a lists only b).
	reduceParents(allNodes)

	// Names for member-backed nodes.
	sort.SliceStable(allNodes, func(i, j int) bool { return allNodes[i].order < allNodes[j].order })
	for _, n := range allNodes {
		if n.derived {
			continue
		}
		n.name = b.claimName(b.mergedName(n))
		if len(n.members) > 1 {
			b.logf("equals: %s becomes %s", joinKeys(nodeMemberKeys(n)), n.name)
		}
	}

	// Attribute assembly, then lifting along subset edges.
	for _, n := range allNodes {
		b.assembleAttrs(n)
	}
	b.liftAttrs(allNodes)

	// Emit object classes.
	for _, n := range allNodes {
		oc := &ecr.ObjectClass{Name: n.name}
		if len(n.parents) > 0 {
			oc.Kind = ecr.KindCategory
			var ps []string
			for _, p := range n.parents {
				ps = append(ps, p.name)
			}
			sort.Strings(ps)
			oc.Parents = ps
		} else {
			oc.Kind = ecr.KindEntity
		}
		for _, m := range n.members {
			oc.Sources = append(oc.Sources, ecr.ObjectRef{Schema: m.key.Schema, Object: m.key.Object, Kind: m.obj.Kind})
		}
		for _, a := range n.attrs {
			attr := ecr.Attribute{Name: a.name, Domain: a.domain, Key: a.key}
			if len(a.components) > 1 {
				attr.Components = append([]ecr.AttrRef(nil), a.components...)
			}
			oc.Attributes = append(oc.Attributes, attr)
		}
		if err := b.out.AddObject(oc); err != nil {
			return &Error{Stage: "objects", Msg: err.Error()}
		}
	}

	// Mappings: each component class maps to its node; each component
	// attribute maps to wherever its battr ended up (possibly an
	// ancestor after lifting).
	attrHome := map[ecr.AttrRef]struct{ object, attr string }{}
	for _, n := range allNodes {
		for _, a := range n.attrs {
			for _, c := range a.components {
				attrHome[c] = struct{ object, attr string }{n.name, a.name}
			}
		}
	}
	for _, key := range keys {
		n := find.node(key)
		via := "copy"
		switch {
		case len(n.members) > 1:
			via = "equals-merge"
		case len(n.parents) > 0:
			via = "category"
		case n.name != key.Object:
			via = "renamed"
		}
		m := nodeMemberFor(n, key)
		b.tab.AddObject(ecr.ObjectRef{Schema: key.Schema, Object: key.Object, Kind: m.obj.Kind}, n.name, via)
		for _, a := range m.obj.Attributes {
			ref := ecr.AttrRef{Schema: key.Schema, Object: key.Object, Kind: m.obj.Kind, Attr: a.Name}
			if home, ok := attrHome[ref]; ok {
				b.tab.AddAttr(ref, home.object, home.attr)
			}
		}
	}
	return nil
}

// assembleAttrs builds the attribute list of a node from its members,
// merging attributes that share an equivalence class across members into a
// single derived attribute.
func (b *builder) assembleAttrs(n *node) {
	if n.derived {
		return // derived superclasses carry no attributes
	}
	for _, m := range n.members {
		for _, a := range m.obj.Attributes {
			ref := ecr.AttrRef{Schema: m.key.Schema, Object: m.key.Object, Kind: m.obj.Kind, Attr: a.Name}
			classes := map[int]bool{}
			if id, ok := b.reg.ClassID(ref); ok {
				classes[id] = true
			}
			candidate := &battr{
				name:       a.Name,
				domain:     a.Domain,
				key:        a.Key,
				components: []ecr.AttrRef{ref},
				classes:    classes,
			}
			merged := false
			for i := range n.attrs {
				if n.attrs[i].sharesClass(candidate) {
					mergeBattr(&n.attrs[i], candidate)
					merged = true
					break
				}
			}
			if !merged {
				n.attrs = append(n.attrs, *candidate)
			}
		}
	}
	b.finishAttrNames(n)
}

// liftAttrs merges, for every node, each attribute that has an equivalent
// attribute on a (transitive) non-derived ancestor into that ancestor's
// attribute — the containing class then carries the derived attribute and
// the category inherits it, as in the paper's Student/Grad_student example.
func (b *builder) liftAttrs(nodes []*node) {
	// Parents before children: process in topological order.
	ordered := topoOrder(nodes)
	for _, n := range ordered {
		if len(n.parents) == 0 {
			continue
		}
		var kept []battr
		for _, a := range n.attrs {
			target := findAncestorAttr(n, &a)
			if target == nil {
				kept = append(kept, a)
				continue
			}
			mergeBattr(target, &a)
		}
		n.attrs = kept
	}
	for _, n := range ordered {
		b.finishAttrNames(n)
	}
}

// findAncestorAttr searches the node's ancestors (nearest first, skipping
// derived superclasses, which hold no attributes) for an attribute sharing
// an equivalence class with a.
func findAncestorAttr(n *node, a *battr) *battr {
	queue := append([]*node(nil), n.parents...)
	seen := map[*node]bool{n: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for i := range cur.attrs {
			if cur.attrs[i].sharesClass(a) {
				return &cur.attrs[i]
			}
		}
		queue = append(queue, cur.parents...)
	}
	return nil
}

func mergeBattr(dst, src *battr) {
	dst.components = append(dst.components, src.components...)
	for id := range src.classes {
		dst.classes[id] = true
	}
	// The merged attribute is a key only if every component is.
	dst.key = dst.key && src.key
	// Domains are expected to agree for equivalent attributes; the
	// first component's domain wins otherwise.
}

// finishAttrNames renames multi-component attributes with the "D_" prefix
// and guarantees name uniqueness within the node.
func (b *builder) finishAttrNames(n *node) {
	taken := map[string]bool{}
	for i := range n.attrs {
		a := &n.attrs[i]
		name := a.components[0].Attr
		if len(a.components) > 1 {
			name = "D_" + name
		}
		base := name
		for k := 2; taken[name]; k++ {
			name = fmt.Sprintf("%s_%d", base, k)
		}
		taken[name] = true
		a.name = name
	}
}

// mergedName computes the name of a member-backed node: a single member
// keeps its own name (qualified with its schema on collision, handled by
// claimName); merged members use the "E_" convention — the common name if
// all members agree, otherwise "E_" plus the truncated member names in
// declaration order.
func (b *builder) mergedName(n *node) string {
	if len(n.members) == 1 {
		return n.members[0].key.Object
	}
	common := n.members[0].key.Object
	allSame := true
	for _, m := range n.members[1:] {
		if m.key.Object != common {
			allSame = false
			break
		}
	}
	if allSame {
		return "E_" + common
	}
	var parts []string
	for _, m := range n.members {
		parts = append(parts, trunc4(m.key.Object))
	}
	return "E_" + strings.Join(parts, "_")
}

// nodeBaseName is the name used when composing derived-class names.
func (b *builder) nodeBaseName(n *node) string {
	if n.name != "" {
		return strings.TrimPrefix(strings.TrimPrefix(n.name, "E_"), "D_")
	}
	return n.members[0].key.Object
}

func (b *builder) nodeLabel(n *node) string {
	if n.name != "" {
		return n.name
	}
	return joinKeys(nodeMemberKeys(n))
}

// claimName reserves a unique name in the output schema, appending a
// numeric suffix when taken.
func (b *builder) claimName(name string) string {
	if !b.used[name] {
		b.used[name] = true
		return name
	}
	for k := 2; ; k++ {
		cand := fmt.Sprintf("%s_%d", name, k)
		if !b.used[cand] {
			b.used[cand] = true
			return cand
		}
	}
}

func nodeMemberKeys(n *node) []assertion.ObjKey {
	var keys []assertion.ObjKey
	for _, m := range n.members {
		keys = append(keys, m.key)
	}
	return keys
}

func nodeMemberFor(n *node, key assertion.ObjKey) member {
	for _, m := range n.members {
		if m.key == key {
			return m
		}
	}
	return n.members[0]
}

func joinKeys(keys []assertion.ObjKey) string {
	var parts []string
	for _, k := range keys {
		parts = append(parts, k.String())
	}
	return strings.Join(parts, " + ")
}

package integrate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/assertion"
	"repro/internal/ecr"
)

// rnode is one relationship set of the integrated schema under
// construction.
type rnode struct {
	name    string
	members []rmember
	derived bool
	parents []*rnode
	attrs   []battr
	parts   []ecr.Participation // assembled, phrased in integrated object names
	order   int
}

type rmember struct {
	key assertion.ObjKey
	rel *ecr.RelationshipSet
}

// buildRelationships performs relationship-set integration. It requires
// buildObjects to have run (participants are remapped onto the integrated
// object classes).
func (b *builder) buildRelationships(asserts *assertion.Set) error {
	// Integrated object node lookup by final name.
	intNode := map[string]*node{}
	for _, n := range b.objNode {
		intNode[n.name] = n
	}

	rnodes := map[assertion.ObjKey]*rnode{}
	var keys []assertion.ObjKey
	order := 0
	for _, s := range []*ecr.Schema{b.s1, b.s2} {
		for _, r := range s.Relationships {
			key := assertion.ObjKey{Schema: s.Name, Object: r.Name}
			rnodes[key] = &rnode{members: []rmember{{key: key, rel: r}}, order: order}
			keys = append(keys, key)
			order++
		}
	}

	// Merge "equals" groups.
	for _, e := range asserts.Entries() {
		if e.Kind.Rel() != assertion.RelEqual {
			continue
		}
		na, nb := rnodes[e.A], rnodes[e.B]
		if na == nil || nb == nil || na == nb {
			continue
		}
		keep, drop := na, nb
		if nb.order < na.order {
			keep, drop = nb, na
		}
		keep.members = append(keep.members, drop.members...)
		for _, m := range drop.members {
			rnodes[m.key] = keep
		}
	}

	distinct := func() []*rnode {
		seen := map[*rnode]bool{}
		var out []*rnode
		for _, k := range keys {
			n := rnodes[k]
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].order < out[j].order })
		return out
	}
	groups := distinct()

	// Assemble participants and attributes of member-backed nodes.
	for _, n := range groups {
		b.assembleRelParts(n, intNode)
		b.assembleRelAttrs(n)
	}

	// Subset edges and derived parents from the remaining assertions.
	type dPair struct {
		a, b *rnode
		kind assertion.Kind
	}
	var dPairs []dPair
	seenPair := map[[2]*rnode]bool{}
	pairKeyOf := func(x, y *rnode) [2]*rnode {
		if y.order < x.order {
			return [2]*rnode{y, x}
		}
		return [2]*rnode{x, y}
	}
	for _, e := range asserts.Entries() {
		na, nb := rnodes[e.A], rnodes[e.B]
		if na == nil || nb == nil || na == nb {
			continue
		}
		pk := pairKeyOf(na, nb)
		if seenPair[pk] {
			continue
		}
		switch e.Kind.Rel() {
		case assertion.RelSubset:
			seenPair[pk] = true
			na.parents = append(na.parents, nb)
		case assertion.RelSuperset:
			seenPair[pk] = true
			nb.parents = append(nb.parents, na)
		case assertion.RelOverlap:
			seenPair[pk] = true
			dPairs = append(dPairs, dPair{a: na, b: nb, kind: e.Kind})
		case assertion.RelDisjoint:
			if e.Kind == assertion.DisjointIntegrable {
				seenPair[pk] = true
				dPairs = append(dPairs, dPair{a: na, b: nb, kind: e.Kind})
			}
		}
	}
	if cyc := findRnodeCycle(groups); len(cyc) > 0 {
		return &Error{Stage: "relationships", Msg: "containment assertions form a cycle: " + strings.Join(cyc, " -> ")}
	}

	// Names for member-backed nodes.
	for _, n := range groups {
		n.name = b.claimName(b.relMergedName(n))
		if len(n.members) > 1 {
			b.logf("equals: %s becomes %s", joinKeys(rnodeMemberKeys(n)), n.name)
		}
	}

	// Derived parent relationship sets.
	all := groups
	dOrder := order
	for _, dp := range dPairs {
		if rnodeReaches(dp.a, dp.b) || rnodeReaches(dp.b, dp.a) {
			continue
		}
		dn := &rnode{derived: true, order: dOrder}
		dOrder++
		dn.name = b.claimName(derivedName("D_", relBase(dp.a), relBase(dp.b)))
		dn.parts = b.generalizeParts(dp.a.parts, dp.b.parts, intNode)
		dp.a.parents = append(dp.a.parents, dn)
		dp.b.parents = append(dp.b.parents, dn)
		b.logf("%s: derived relationship %s over %s and %s", dp.kind, dn.name, dp.a.name, dp.b.name)
		all = append(all, dn)
	}

	// Emit.
	sort.SliceStable(all, func(i, j int) bool { return all[i].order < all[j].order })
	for _, n := range all {
		rs := &ecr.RelationshipSet{Name: n.name}
		for _, p := range n.parents {
			rs.Parents = append(rs.Parents, p.name)
		}
		sort.Strings(rs.Parents)
		for _, m := range n.members {
			rs.Sources = append(rs.Sources, ecr.ObjectRef{Schema: m.key.Schema, Object: m.key.Object, Kind: ecr.KindRelationship})
		}
		rs.Participants = append(rs.Participants, n.parts...)
		for _, a := range n.attrs {
			attr := ecr.Attribute{Name: a.name, Domain: a.domain, Key: a.key}
			if len(a.components) > 1 {
				attr.Components = append([]ecr.AttrRef(nil), a.components...)
			}
			rs.Attributes = append(rs.Attributes, attr)
		}
		if err := b.out.AddRelationship(rs); err != nil {
			return &Error{Stage: "relationships", Msg: err.Error()}
		}
	}

	// Mappings.
	attrHome := map[ecr.AttrRef]struct{ object, attr string }{}
	for _, n := range all {
		for _, a := range n.attrs {
			for _, c := range a.components {
				attrHome[c] = struct{ object, attr string }{n.name, a.name}
			}
		}
	}
	for _, key := range keys {
		n := rnodes[key]
		via := "copy"
		switch {
		case len(n.members) > 1:
			via = "equals-merge"
		case n.name != key.Object:
			via = "renamed"
		}
		b.tab.AddObject(ecr.ObjectRef{Schema: key.Schema, Object: key.Object, Kind: ecr.KindRelationship}, n.name, via)
		m := rnodeMemberFor(n, key)
		for _, a := range m.rel.Attributes {
			ref := ecr.AttrRef{Schema: key.Schema, Object: key.Object, Kind: ecr.KindRelationship, Attr: a.Name}
			if home, ok := attrHome[ref]; ok {
				b.tab.AddAttr(ref, home.object, home.attr)
			}
		}
	}
	return nil
}

// assembleRelParts maps every member's participants onto the integrated
// object classes and unifies them: a participant of a later member matching
// (same integrated class, or an ancestor/descendant of) a participant of an
// earlier member merges into it, taking the more general class and the
// widened cardinality; unmatched participants are appended.
func (b *builder) assembleRelParts(n *rnode, intNode map[string]*node) {
	for mi, m := range n.members {
		for _, p := range m.rel.Participants {
			key := assertion.ObjKey{Schema: m.key.Schema, Object: p.Object}
			on := b.objNode[key]
			if on == nil {
				// Validation guarantees participants exist; keep
				// the raw name defensively.
				n.parts = append(n.parts, p)
				continue
			}
			mapped := ecr.Participation{Object: on.name, Card: p.Card, Role: p.Role}
			if mi == 0 {
				// A member's own participants never merge with
				// each other (a recursive relationship keeps
				// both roles).
				n.parts = append(n.parts, mapped)
				continue
			}
			merged := false
			for i := range n.parts {
				exist := intNode[n.parts[i].Object]
				if exist == nil {
					continue
				}
				switch {
				case exist == on:
					n.parts[i].Card = n.parts[i].Card.Widen(mapped.Card)
					merged = true
				case nodeReaches(on, exist):
					// Existing participant is more general.
					n.parts[i].Card = n.parts[i].Card.Widen(mapped.Card)
					merged = true
				case nodeReaches(exist, on):
					// New participant is more general; replace.
					n.parts[i].Object = on.name
					n.parts[i].Card = n.parts[i].Card.Widen(mapped.Card)
					merged = true
				}
				if merged {
					break
				}
			}
			if !merged {
				n.parts = append(n.parts, mapped)
			}
		}
	}
}

// generalizeParts builds the participant list of a derived parent
// relationship set from its two children: matched participants (same class
// or related in the lattice) generalize to the common ancestor side with
// widened cardinalities and minimum participation relaxed to 0 (a member of
// the general relationship need not appear in either child); unmatched
// participants from both sides are included.
func (b *builder) generalizeParts(a, c []ecr.Participation, intNode map[string]*node) []ecr.Participation {
	out := make([]ecr.Participation, len(a))
	copy(out, a)
	for _, q := range c {
		qn := intNode[q.Object]
		merged := false
		for i := range out {
			en := intNode[out[i].Object]
			if en == nil || qn == nil {
				if out[i].Object == q.Object {
					out[i].Card = out[i].Card.Widen(q.Card)
					merged = true
				}
			} else {
				switch {
				case en == qn, nodeReaches(qn, en):
					out[i].Card = out[i].Card.Widen(q.Card)
					merged = true
				case nodeReaches(en, qn):
					out[i].Object = q.Object
					out[i].Card = out[i].Card.Widen(q.Card)
					merged = true
				}
			}
			if merged {
				break
			}
		}
		if !merged {
			out = append(out, q)
		}
	}
	for i := range out {
		out[i].Card.Min = 0
		out[i].Role = ""
	}
	return out
}

// assembleRelAttrs merges member attributes by equivalence class, exactly
// like object classes.
func (b *builder) assembleRelAttrs(n *rnode) {
	for _, m := range n.members {
		for _, a := range m.rel.Attributes {
			ref := ecr.AttrRef{Schema: m.key.Schema, Object: m.key.Object, Kind: ecr.KindRelationship, Attr: a.Name}
			classes := map[int]bool{}
			if id, ok := b.reg.ClassID(ref); ok {
				classes[id] = true
			}
			candidate := &battr{
				name: a.Name, domain: a.Domain, key: a.Key,
				components: []ecr.AttrRef{ref}, classes: classes,
			}
			merged := false
			for i := range n.attrs {
				if n.attrs[i].sharesClass(candidate) {
					mergeBattr(&n.attrs[i], candidate)
					merged = true
					break
				}
			}
			if !merged {
				n.attrs = append(n.attrs, *candidate)
			}
		}
	}
	b.finishRelAttrNames(n)
}

func (b *builder) finishRelAttrNames(n *rnode) {
	taken := map[string]bool{}
	for i := range n.attrs {
		a := &n.attrs[i]
		name := a.components[0].Attr
		if len(a.components) > 1 {
			name = "D_" + name
		}
		base := name
		for k := 2; taken[name]; k++ {
			name = fmt.Sprintf("%s_%d", base, k)
		}
		taken[name] = true
		a.name = name
	}
}

// relMergedName names a member-backed relationship node. A single member
// keeps its name. Merged members whose names all agree take "E_" plus the
// name; otherwise the paper's convention combines the first participant of
// the first member with the first member's name, both truncated — sc1.Majors
// (first participant Student) merged with sc2.Stud_major yields E_Stud_Majo,
// as in Figure 5.
func (b *builder) relMergedName(n *rnode) string {
	if len(n.members) == 1 {
		return n.members[0].key.Object
	}
	common := n.members[0].key.Object
	allSame := true
	for _, m := range n.members[1:] {
		if m.key.Object != common {
			allSame = false
			break
		}
	}
	if allSame {
		return "E_" + common
	}
	first := n.members[0]
	participant := ""
	if len(first.rel.Participants) > 0 {
		participant = first.rel.Participants[0].Object
	}
	if participant == "" {
		var parts []string
		for _, m := range n.members {
			parts = append(parts, trunc4(m.key.Object))
		}
		return "E_" + strings.Join(parts, "_")
	}
	return "E_" + trunc4(participant) + "_" + trunc4(first.key.Object)
}

func relBase(n *rnode) string {
	if n.name != "" {
		return strings.TrimPrefix(strings.TrimPrefix(n.name, "E_"), "D_")
	}
	return n.members[0].key.Object
}

func rnodeMemberKeys(n *rnode) []assertion.ObjKey {
	var keys []assertion.ObjKey
	for _, m := range n.members {
		keys = append(keys, m.key)
	}
	return keys
}

func rnodeMemberFor(n *rnode, key assertion.ObjKey) rmember {
	for _, m := range n.members {
		if m.key == key {
			return m
		}
	}
	return n.members[0]
}

func rnodeReaches(child, parent *rnode) bool {
	seen := map[*rnode]bool{}
	queue := []*rnode{child}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == parent {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		queue = append(queue, cur.parents...)
	}
	return false
}

func findRnodeCycle(nodes []*rnode) []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*rnode]int{}
	var stack []*rnode
	var cycle []string
	label := func(n *rnode) string {
		if n.name != "" {
			return n.name
		}
		if len(n.members) > 0 {
			return n.members[0].key.String()
		}
		return "?"
	}
	var visit func(n *rnode) bool
	visit = func(n *rnode) bool {
		color[n] = gray
		stack = append(stack, n)
		for _, p := range n.parents {
			switch color[p] {
			case gray:
				for i, sn := range stack {
					if sn == p {
						for _, cn := range stack[i:] {
							cycle = append(cycle, label(cn))
						}
						cycle = append(cycle, label(p))
						return true
					}
				}
				cycle = []string{label(p), label(n), label(p)}
				return true
			case white:
				if visit(p) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white {
			if visit(n) {
				return cycle
			}
		}
	}
	return nil
}

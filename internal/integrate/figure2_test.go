package integrate_test

import (
	"testing"

	"repro/internal/assertion"
	"repro/internal/core"
	"repro/internal/ecr"
	"repro/internal/integrate"
	"repro/internal/paperex"
)

// integratePair runs a single-pair integration with a Name equivalence (and
// any further pairs given) and one assertion between the sole object of each
// schema.
func integratePair(t testing.TB, s1, s2 *ecr.Schema, kind assertion.Kind, equivPairs ...[2]string) *integrate.Result {
	t.Helper()
	it, err := core.New(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range equivPairs {
		if err := it.DeclareEquivalent(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	o1, o2 := s1.Objects[0].Name, s2.Objects[0].Name
	if err := it.Assert(o1, kind, o2); err != nil {
		t.Fatal(err)
	}
	res, err := it.Integrate("")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFigure2aEquals: identical domains merge into E_Department.
func TestFigure2aEquals(t *testing.T) {
	s1, s2 := paperex.Fig2aSchemas()
	res := integratePair(t, s1, s2, assertion.Equals,
		[2]string{"Department.Dname", "Department.Dname"})
	s := res.Schema
	dept := s.Object("E_Department")
	if dept == nil {
		t.Fatalf("no E_Department; objects: %v", names(s))
	}
	if dept.Kind != ecr.KindEntity || len(dept.Parents) != 0 {
		t.Errorf("E_Department = %+v", dept)
	}
	if len(s.Objects) != 1 {
		t.Errorf("objects = %v, want only E_Department", names(s))
	}
	if _, ok := dept.Attribute("D_Dname"); !ok {
		t.Errorf("merged key attribute missing: %+v", dept.Attributes)
	}
	if _, ok := dept.Attribute("Budget"); !ok {
		t.Error("Budget lost")
	}
	if _, ok := dept.Attribute("Chair"); !ok {
		t.Error("Chair lost")
	}
	if len(dept.Sources) != 2 {
		t.Errorf("sources = %v", dept.Sources)
	}
}

// TestFigure2bContains: Student contains Grad_student; the contained class
// becomes a category of the containing class.
func TestFigure2bContains(t *testing.T) {
	s1, s2 := paperex.Fig2bSchemas()
	res := integratePair(t, s1, s2, assertion.Contains,
		[2]string{"Student.Name", "Grad_student.Name"})
	s := res.Schema
	student := s.Object("Student")
	grad := s.Object("Grad_student")
	if student == nil || grad == nil {
		t.Fatalf("objects = %v", names(s))
	}
	if student.Kind != ecr.KindEntity {
		t.Errorf("Student kind = %v", student.Kind)
	}
	if grad.Kind != ecr.KindCategory || len(grad.Parents) != 1 || grad.Parents[0] != "Student" {
		t.Errorf("Grad_student = %+v", grad)
	}
	// Shared Name lifted into Student as a derived attribute.
	if _, ok := student.Attribute("D_Name"); !ok {
		t.Errorf("Student attrs = %+v", student.Attributes)
	}
	if _, ok := grad.Attribute("Support_type"); !ok {
		t.Errorf("Grad_student attrs = %+v", grad.Attributes)
	}
	if len(grad.Attributes) != 1 {
		t.Errorf("Grad_student should keep only Support_type: %+v", grad.Attributes)
	}
}

// TestFigure2cOverlap: overlapping domains derive D_Grad_Inst with both
// classes as its categories.
func TestFigure2cOverlap(t *testing.T) {
	s1, s2 := paperex.Fig2cSchemas()
	res := integratePair(t, s1, s2, assertion.MayBe,
		[2]string{"Grad_student.Name", "Instructor.Name"})
	s := res.Schema
	d := s.Object("D_Grad_Inst")
	if d == nil {
		t.Fatalf("no D_Grad_Inst; objects = %v", names(s))
	}
	if d.Kind != ecr.KindEntity || len(d.Attributes) != 0 {
		t.Errorf("derived class = %+v", d)
	}
	for _, name := range []string{"Grad_student", "Instructor"} {
		o := s.Object(name)
		if o == nil || o.Kind != ecr.KindCategory || len(o.Parents) != 1 || o.Parents[0] != "D_Grad_Inst" {
			t.Errorf("%s = %+v", name, o)
		}
		// Children keep their attributes (no lifting into derived
		// superclasses).
		if _, ok := o.Attribute("Name"); !ok {
			t.Errorf("%s lost Name: %+v", name, o.Attributes)
		}
	}
}

// TestFigure2dDisjointIntegrable: Secretary and Engineer derive D_Secr_Engi
// (the concept of employee).
func TestFigure2dDisjointIntegrable(t *testing.T) {
	s1, s2 := paperex.Fig2dSchemas()
	res := integratePair(t, s1, s2, assertion.DisjointIntegrable,
		[2]string{"Secretary.Name", "Engineer.Name"})
	s := res.Schema
	d := s.Object("D_Secr_Engi")
	if d == nil {
		t.Fatalf("no D_Secr_Engi; objects = %v", names(s))
	}
	for _, name := range []string{"Secretary", "Engineer"} {
		o := s.Object(name)
		if o == nil || len(o.Parents) != 1 || o.Parents[0] != "D_Secr_Engi" {
			t.Errorf("%s = %+v", name, o)
		}
	}
	if len(res.Clusters) != 1 {
		t.Errorf("clusters = %v", res.Clusters)
	}
}

// TestFigure2eDisjointNonintegrable: the classes stay separate entity sets.
func TestFigure2eDisjointNonintegrable(t *testing.T) {
	s1, s2 := paperex.Fig2eSchemas()
	res := integratePair(t, s1, s2, assertion.DisjointNonintegrable,
		[2]string{"Under_Grad_Student.Name", "Full_Professor.Name"})
	s := res.Schema
	if len(s.Objects) != 2 {
		t.Fatalf("objects = %v", names(s))
	}
	for _, name := range []string{"Under_Grad_Student", "Full_Professor"} {
		o := s.Object(name)
		if o == nil || o.Kind != ecr.KindEntity || len(o.Parents) != 0 {
			t.Errorf("%s = %+v", name, o)
		}
	}
	// Disjoint-nonintegrable pairs form no cluster.
	if len(res.Clusters) != 0 {
		t.Errorf("clusters = %v", res.Clusters)
	}
}

func names(s *ecr.Schema) []string {
	var out []string
	for _, o := range s.Objects {
		out = append(out, o.Name)
	}
	for _, r := range s.Relationships {
		out = append(out, r.Name)
	}
	return out
}

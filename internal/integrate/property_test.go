package integrate_test

import (
	"testing"

	"repro/internal/ecr"
	"repro/internal/integrate"
	"repro/internal/workload"
)

// TestIntegrationInvariants checks, over a spread of generated workloads,
// the invariants every integration result must satisfy:
//
//  1. the integrated schema validates;
//  2. every component object class and relationship set has a mapping to a
//     structure that exists in the integrated schema;
//  3. every component attribute maps to an attribute that exists (possibly
//     via inheritance) on its target structure;
//  4. every multi-source structure carries provenance (Sources) matching
//     the mapping table;
//  5. derived attributes record at least two component attributes, each of
//     which maps back to them;
//  6. the result is deterministic: integrating twice yields identical DDL.
func TestIntegrationInvariants(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		cfg := workload.DefaultConfig(seed)
		cfg.Objects = 12 + int(seed)
		cfg.Overlap = 0.3 + float64(seed%5)*0.15
		cfg.NamingNoise = float64(seed%3) * 0.25
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		in := integrate.Input{
			S1: w.S1, S2: w.S2,
			Registry:      w.Registry,
			Objects:       w.Objects,
			Relationships: w.Relationships,
		}
		res, err := integrate.Integrate(in)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := res.Schema

		// (1) validity.
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: invalid result: %v", seed, err)
		}

		// (2) total object mapping.
		checkObjects := func(src *ecr.Schema) {
			for _, o := range src.Objects {
				target, ok := res.Mappings.TargetObject(ecr.ObjectRef{Schema: src.Name, Object: o.Name})
				if !ok {
					t.Fatalf("seed %d: no mapping for %s.%s", seed, src.Name, o.Name)
				}
				if s.Object(target) == nil {
					t.Fatalf("seed %d: mapping target %q missing from result", seed, target)
				}
				// (3) total attribute mapping.
				for _, a := range o.Attributes {
					obj, attr, ok := res.Mappings.TargetAttr(ecr.AttrRef{Schema: src.Name, Object: o.Name, Attr: a.Name})
					if !ok {
						t.Fatalf("seed %d: no mapping for %s.%s.%s", seed, src.Name, o.Name, a.Name)
					}
					holder := s.Object(obj)
					if holder == nil {
						t.Fatalf("seed %d: attr mapping names unknown object %q", seed, obj)
					}
					if _, ok := holder.Attribute(attr); !ok {
						t.Fatalf("seed %d: attr mapping names missing attribute %s.%s", seed, obj, attr)
					}
				}
			}
			for _, r := range src.Relationships {
				target, ok := res.Mappings.TargetObject(ecr.ObjectRef{Schema: src.Name, Object: r.Name})
				if !ok || s.Relationship(target) == nil {
					t.Fatalf("seed %d: relationship mapping broken for %s.%s -> %q", seed, src.Name, r.Name, target)
				}
			}
		}
		checkObjects(w.S1)
		checkObjects(w.S2)

		// (4) provenance of merged structures.
		for _, o := range s.Objects {
			if len(o.Sources) >= 2 {
				srcs := res.Mappings.SourcesOf(o.Name)
				if len(srcs) != len(o.Sources) {
					t.Fatalf("seed %d: %s sources %d != mapping sources %d", seed, o.Name, len(o.Sources), len(srcs))
				}
			}
			// (5) derived attributes.
			for _, a := range o.Attributes {
				if a.Derived() && len(a.Components) < 2 {
					t.Fatalf("seed %d: derived attribute %s.%s has %d components", seed, o.Name, a.Name, len(a.Components))
				}
				for _, c := range a.Components {
					obj, attr, ok := res.Mappings.TargetAttr(c)
					if !ok || obj != o.Name || attr != a.Name {
						t.Fatalf("seed %d: component %s does not map back to %s.%s (got %s.%s ok=%v)",
							seed, c, o.Name, a.Name, obj, attr, ok)
					}
				}
			}
		}

		// (6) determinism.
		res2, err := integrate.Integrate(in)
		if err != nil {
			t.Fatalf("seed %d: second run: %v", seed, err)
		}
		if ecr.FormatSchema(res.Schema) != ecr.FormatSchema(res2.Schema) {
			t.Fatalf("seed %d: integration not deterministic", seed)
		}
	}
}

// TestIntegrationAttributeConservation: every component attribute of every
// structure appears in the mapping exactly once, and no integrated
// attribute exists without a component source or a copy origin.
func TestIntegrationAttributeConservation(t *testing.T) {
	w, err := workload.Generate(workload.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{
		S1: w.S1, S2: w.S2,
		Registry:      w.Registry,
		Objects:       w.Objects,
		Relationships: w.Relationships,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Count component attributes.
	count := func(s *ecr.Schema) int {
		n := 0
		for _, o := range s.Objects {
			n += len(o.Attributes)
		}
		for _, r := range s.Relationships {
			n += len(r.Attributes)
		}
		return n
	}
	want := count(w.S1) + count(w.S2)
	if got := len(res.Mappings.Attrs); got != want {
		t.Errorf("attribute mappings = %d, component attributes = %d", got, want)
	}
	// No duplicate sources in the mapping.
	seen := map[string]bool{}
	for _, m := range res.Mappings.Attrs {
		k := m.Source.String()
		if seen[k] {
			t.Errorf("attribute %s mapped twice", k)
		}
		seen[k] = true
	}
}

package integrate_test

import (
	"strings"
	"testing"

	"repro/internal/assertion"
	"repro/internal/ecr"
	"repro/internal/equivalence"
	"repro/internal/errtest"
	"repro/internal/integrate"
	"repro/internal/paperex"
)

func okey(schema, object string) assertion.ObjKey {
	return assertion.ObjKey{Schema: schema, Object: object}
}

func TestIntegrateInputValidation(t *testing.T) {
	s1 := paperex.Sc1()
	if _, err := integrate.Integrate(integrate.Input{S1: s1}); err == nil {
		t.Error("missing schema should fail")
	}
	if _, err := integrate.Integrate(integrate.Input{S1: s1, S2: paperex.Sc1()}); err == nil {
		t.Error("same-named schemas should fail")
	}
	bad := ecr.NewSchema("bad")
	bad.Objects = []*ecr.ObjectClass{{Name: "C", Kind: ecr.KindCategory}}
	if _, err := integrate.Integrate(integrate.Input{S1: s1, S2: bad}); err == nil {
		t.Error("invalid schema should fail")
	}
}

func TestIntegrateUnknownAssertionTarget(t *testing.T) {
	set := assertion.NewSet()
	if err := set.Assert(okey("sc1", "Nope"), okey("sc2", "Faculty"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	_, err := integrate.Integrate(integrate.Input{S1: paperex.Sc1(), S2: paperex.Sc2(), Objects: set})
	if !errtest.Contains(err, "unknown object class") {
		t.Errorf("err = %v", err)
	}
	set2 := assertion.NewSet()
	if err := set2.Assert(okey("zz", "X"), okey("sc2", "Faculty"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	_, err = integrate.Integrate(integrate.Input{S1: paperex.Sc1(), S2: paperex.Sc2(), Objects: set2})
	if !errtest.Contains(err, "unknown schema") {
		t.Errorf("err = %v", err)
	}
}

func TestIntegrateRejectsIntraSchemaUserAssertion(t *testing.T) {
	set := assertion.NewSet()
	if err := set.Assert(okey("sc2", "Faculty"), okey("sc2", "Grad_student"), assertion.DisjointIntegrable); err != nil {
		t.Fatal(err)
	}
	_, err := integrate.Integrate(integrate.Input{S1: paperex.Sc1(), S2: paperex.Sc2(), Objects: set})
	if !errtest.Contains(err, "within one schema") {
		t.Errorf("err = %v", err)
	}
}

func TestIntegrateConflictAborts(t *testing.T) {
	set := assertion.NewSet()
	// A = B, A ⊂ C, B disjoint C is inconsistent: A=B and A⊂C derive
	// B⊂C, which contradicts disjointness.
	if err := set.Assert(okey("sc1", "Student"), okey("sc2", "Grad_student"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	if err := set.Assert(okey("sc1", "Student"), okey("sc2", "Faculty"), assertion.ContainedIn); err != nil {
		t.Fatal(err)
	}
	if err := set.Assert(okey("sc1", "Department"), okey("sc2", "Faculty"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	// Make it inconsistent directly: Grad_student disjoint Faculty
	// contradicts Grad_student ⊂ Faculty derived via Student.
	if err := set.Assert(okey("sc1", "Department"), okey("sc2", "Grad_student"), assertion.DisjointNonintegrable); err != nil {
		t.Fatal(err)
	}
	_, err := integrate.Integrate(integrate.Input{S1: paperex.Sc1(), S2: paperex.Sc2(), Objects: set})
	ie, ok := err.(*integrate.Error)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if ie.Stage != "closure" || len(ie.Conflicts) == 0 {
		t.Errorf("error = %+v", ie)
	}
}

func TestIntegrateNoAssertionsCopiesEverything(t *testing.T) {
	res, err := integrate.Integrate(integrate.Input{S1: paperex.Sc1(), S2: paperex.Sc2()})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schema
	// All objects copied; the duplicate Department names get qualified.
	if len(s.Objects) != 5 {
		t.Errorf("objects = %v", names(s))
	}
	if len(s.Relationships) != 3 {
		t.Errorf("relationships = %v", names(s))
	}
	if s.Object("Department") == nil || s.Object("Department_2") == nil {
		t.Errorf("name collision handling: %v", names(s))
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	// Mapping still records where each copy went.
	tgt, ok := res.Mappings.TargetObject(ecr.ObjectRef{Schema: "sc2", Object: "Department"})
	if !ok || tgt != "Department_2" {
		t.Errorf("sc2.Department -> %q", tgt)
	}
}

func TestIntegrateDefaultName(t *testing.T) {
	res, err := integrate.Integrate(integrate.Input{S1: paperex.Sc1(), S2: paperex.Sc2()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Name != "INT_sc1_sc2" {
		t.Errorf("name = %q", res.Schema.Name)
	}
	res2, err := integrate.Integrate(integrate.Input{S1: paperex.Sc1(), S2: paperex.Sc2(), Name: "global"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Schema.Name != "global" {
		t.Errorf("name = %q", res2.Schema.Name)
	}
}

func TestIntegrateInputsImmutable(t *testing.T) {
	s1, s2 := paperex.Sc1(), paperex.Sc2()
	before1, before2 := ecr.FormatSchema(s1), ecr.FormatSchema(s2)
	set := assertion.NewSet()
	if err := set.Assert(okey("sc1", "Student"), okey("sc2", "Grad_student"), assertion.Contains); err != nil {
		t.Fatal(err)
	}
	reg := equivalence.NewRegistry()
	if err := reg.Declare(
		ecr.AttrRef{Schema: "sc1", Object: "Student", Attr: "Name"},
		ecr.AttrRef{Schema: "sc2", Object: "Grad_student", Attr: "Name"},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := integrate.Integrate(integrate.Input{S1: s1, S2: s2, Registry: reg, Objects: set}); err != nil {
		t.Fatal(err)
	}
	if ecr.FormatSchema(s1) != before1 || ecr.FormatSchema(s2) != before2 {
		t.Error("integration mutated its input schemas")
	}
	if set.Len() != 1 {
		t.Error("integration mutated the caller's assertion set")
	}
}

func TestIntegrateEqualsDifferentNames(t *testing.T) {
	a := ecr.NewSchema("a")
	if err := a.AddObject(&ecr.ObjectClass{Name: "Employee", Kind: ecr.KindEntity,
		Attributes: []ecr.Attribute{{Name: "Name", Domain: "char", Key: true}}}); err != nil {
		t.Fatal(err)
	}
	b := ecr.NewSchema("b")
	if err := b.AddObject(&ecr.ObjectClass{Name: "Worker", Kind: ecr.KindEntity,
		Attributes: []ecr.Attribute{{Name: "Name", Domain: "char", Key: true}}}); err != nil {
		t.Fatal(err)
	}
	set := assertion.NewSet()
	if err := set.Assert(okey("a", "Employee"), okey("b", "Worker"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	reg := equivalence.NewRegistry()
	if err := reg.Declare(
		ecr.AttrRef{Schema: "a", Object: "Employee", Attr: "Name"},
		ecr.AttrRef{Schema: "b", Object: "Worker", Attr: "Name"},
	); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: a, S2: b, Registry: reg, Objects: set})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Object("E_Empl_Work") == nil {
		t.Errorf("merged name wrong: %v", names(res.Schema))
	}
}

func TestIntegrateChainOfCategories(t *testing.T) {
	// a.Person ⊃ b.Student ⊃ a.Grad — subset chain across schemas builds
	// a three-level lattice with transitive reduction (Grad under
	// Student only, not directly under Person).
	a := ecr.NewSchema("a")
	for _, o := range []*ecr.ObjectClass{
		{Name: "Person", Kind: ecr.KindEntity, Attributes: []ecr.Attribute{{Name: "Name", Domain: "char", Key: true}}},
		{Name: "Grad", Kind: ecr.KindEntity, Attributes: []ecr.Attribute{{Name: "Thesis", Domain: "char"}}},
	} {
		if err := a.AddObject(o); err != nil {
			t.Fatal(err)
		}
	}
	b := ecr.NewSchema("b")
	if err := b.AddObject(&ecr.ObjectClass{Name: "Student", Kind: ecr.KindEntity,
		Attributes: []ecr.Attribute{{Name: "GPA", Domain: "real"}}}); err != nil {
		t.Fatal(err)
	}
	set := assertion.NewSet()
	if err := set.Assert(okey("a", "Person"), okey("b", "Student"), assertion.Contains); err != nil {
		t.Fatal(err)
	}
	if err := set.Assert(okey("a", "Grad"), okey("b", "Student"), assertion.ContainedIn); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: a, S2: b, Objects: set})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schema
	grad := s.Object("Grad")
	if len(grad.Parents) != 1 || grad.Parents[0] != "Student" {
		t.Errorf("Grad parents = %v (transitive reduction failed?)", grad.Parents)
	}
	student := s.Object("Student")
	if len(student.Parents) != 1 || student.Parents[0] != "Person" {
		t.Errorf("Student parents = %v", student.Parents)
	}
}

func TestIntegratePreservesOriginalCategories(t *testing.T) {
	// sc4 has Grad_student as a category of Student; integrating sc4
	// with sc3 keeps the intra-schema edge.
	s3, s4 := paperex.Sc3(), paperex.Sc4()
	set := assertion.NewSet()
	if err := set.Assert(okey("sc3", "Instructor"), okey("sc4", "Student"), assertion.MayBe); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: s3, S2: s4, Objects: set})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schema
	grad := s.Object("Grad_student")
	if grad == nil || len(grad.Parents) != 1 || grad.Parents[0] != "Student" {
		t.Errorf("Grad_student = %+v", grad)
	}
	if s.Object("D_Inst_Stud") == nil {
		t.Errorf("derived class missing: %v", names(s))
	}
}

func TestIntegrateReportMentionsDecisions(t *testing.T) {
	s1, s2 := paperex.Fig2dSchemas()
	set := assertion.NewSet()
	if err := set.Assert(okey("f2d1", "Secretary"), okey("f2d2", "Engineer"), assertion.DisjointIntegrable); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: s1, S2: s2, Objects: set})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Report, "\n")
	if !strings.Contains(joined, "D_Secr_Engi") {
		t.Errorf("report = %q", joined)
	}
}

func TestNAryIntegration(t *testing.T) {
	// Fold three schemas: sc1+sc2, then the Figure 2d pair's first
	// schema with an equals against the accumulated result. Use a fresh
	// third schema holding another Department.
	third := ecr.NewSchema("sc9")
	if err := third.AddObject(&ecr.ObjectClass{Name: "Department", Kind: ecr.KindEntity,
		Attributes: []ecr.Attribute{{Name: "Dname", Domain: "char", Key: true}}}); err != nil {
		t.Fatal(err)
	}

	steps := []integrate.NAryStep{
		{
			Next: paperex.Sc2(),
			Prepare: func(acc *ecr.Schema) (*equivalence.Registry, *assertion.Set, *assertion.Set, error) {
				set := assertion.NewSet()
				err := set.Assert(okey(acc.Name, "Department"), okey("sc2", "Department"), assertion.Equals)
				return nil, set, nil, err
			},
		},
		{
			Next: third,
			Prepare: func(acc *ecr.Schema) (*equivalence.Registry, *assertion.Set, *assertion.Set, error) {
				set := assertion.NewSet()
				err := set.Assert(okey(acc.Name, "E_Department"), okey("sc9", "Department"), assertion.Equals)
				return nil, set, nil, err
			},
		},
	}
	final, tables, err := integrate.NAry(paperex.Sc1(), steps, func(i int) string {
		return []string{"step1", "step2"}[i]
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Name != "step2" {
		t.Errorf("final name = %q", final.Name)
	}
	if len(tables) != 2 {
		t.Errorf("tables = %d", len(tables))
	}
	// The thrice-merged department: E_Department merged again with sc9's.
	found := false
	for _, o := range final.Objects {
		if strings.HasPrefix(o.Name, "E_") && len(o.Sources) == 2 {
			for _, src := range o.Sources {
				if src.Schema == "sc9" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("three-way department merge missing: %v", names(final))
	}
	if err := final.Validate(); err != nil {
		t.Error(err)
	}
}

func TestIntegrateRecursiveRelationship(t *testing.T) {
	a := ecr.NewSchema("a")
	if err := a.AddObject(&ecr.ObjectClass{Name: "Emp", Kind: ecr.KindEntity,
		Attributes: []ecr.Attribute{{Name: "Name", Domain: "char", Key: true}}}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddRelationship(&ecr.RelationshipSet{
		Name: "Manages",
		Participants: []ecr.Participation{
			{Object: "Emp", Role: "boss", Card: ecr.Cardinality{Min: 0, Max: ecr.N}},
			{Object: "Emp", Role: "minion", Card: ecr.Cardinality{Min: 0, Max: 1}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	b := ecr.NewSchema("b")
	if err := b.AddObject(&ecr.ObjectClass{Name: "Other", Kind: ecr.KindEntity,
		Attributes: []ecr.Attribute{{Name: "K", Domain: "int", Key: true}}}); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: a, S2: b})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Schema.Relationship("Manages")
	if m == nil || len(m.Participants) != 2 {
		t.Fatalf("Manages = %+v", m)
	}
	if m.Participants[0].Role != "boss" || m.Participants[1].Role != "minion" {
		t.Errorf("roles lost: %+v", m.Participants)
	}
	if err := res.Schema.Validate(); err != nil {
		t.Error(err)
	}
}

func TestIntegrateRelationshipDerivedParent(t *testing.T) {
	// Two overlapping relationship sets derive a D_ parent relationship.
	mk := func(schema, rel string) *ecr.Schema {
		s := ecr.NewSchema(schema)
		if err := s.AddObject(&ecr.ObjectClass{Name: "P", Kind: ecr.KindEntity,
			Attributes: []ecr.Attribute{{Name: "K", Domain: "int", Key: true}}}); err != nil {
			t.Fatal(err)
		}
		if err := s.AddObject(&ecr.ObjectClass{Name: "Q", Kind: ecr.KindEntity,
			Attributes: []ecr.Attribute{{Name: "K", Domain: "int", Key: true}}}); err != nil {
			t.Fatal(err)
		}
		if err := s.AddRelationship(&ecr.RelationshipSet{
			Name: rel,
			Participants: []ecr.Participation{
				{Object: "P", Card: ecr.Cardinality{Min: 1, Max: 1}},
				{Object: "Q", Card: ecr.Cardinality{Min: 0, Max: ecr.N}},
			},
		}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := mk("x", "Teaches"), mk("y", "Advises")
	objs := assertion.NewSet()
	if err := objs.Assert(okey("x", "P"), okey("y", "P"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	if err := objs.Assert(okey("x", "Q"), okey("y", "Q"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	rels := assertion.NewSet()
	if err := rels.Assert(okey("x", "Teaches"), okey("y", "Advises"), assertion.MayBe); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: s1, S2: s2, Objects: objs, Relationships: rels})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schema
	d := s.Relationship("D_Teac_Advi")
	if d == nil {
		t.Fatalf("derived relationship missing: %v", names(s))
	}
	// Derived relationship generalizes: minimum participation relaxed.
	for _, p := range d.Participants {
		if p.Card.Min != 0 {
			t.Errorf("derived participation %v should have min 0", p)
		}
	}
	teaches := s.Relationship("Teaches")
	if len(teaches.Parents) != 1 || teaches.Parents[0] != "D_Teac_Advi" {
		t.Errorf("Teaches parents = %v", teaches.Parents)
	}
	if got := s.RelationshipChildren("D_Teac_Advi"); len(got) != 2 {
		t.Errorf("children = %v", got)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestIntegrateRelationshipSubset(t *testing.T) {
	mk := func(schema, rel string) *ecr.Schema {
		s := ecr.NewSchema(schema)
		for _, n := range []string{"P", "Q"} {
			if err := s.AddObject(&ecr.ObjectClass{Name: n, Kind: ecr.KindEntity,
				Attributes: []ecr.Attribute{{Name: "K", Domain: "int", Key: true}}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.AddRelationship(&ecr.RelationshipSet{
			Name: rel,
			Participants: []ecr.Participation{
				{Object: "P", Card: ecr.Cardinality{Min: 0, Max: ecr.N}},
				{Object: "Q", Card: ecr.Cardinality{Min: 0, Max: ecr.N}},
			},
		}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := mk("x", "WorksOn"), mk("y", "Leads")
	objs := assertion.NewSet()
	if err := objs.Assert(okey("x", "P"), okey("y", "P"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	if err := objs.Assert(okey("x", "Q"), okey("y", "Q"), assertion.Equals); err != nil {
		t.Fatal(err)
	}
	rels := assertion.NewSet()
	// Leads ⊂ WorksOn.
	if err := rels.Assert(okey("x", "WorksOn"), okey("y", "Leads"), assertion.Contains); err != nil {
		t.Fatal(err)
	}
	res, err := integrate.Integrate(integrate.Input{S1: s1, S2: s2, Objects: objs, Relationships: rels})
	if err != nil {
		t.Fatal(err)
	}
	leads := res.Schema.Relationship("Leads")
	if leads == nil || len(leads.Parents) != 1 || leads.Parents[0] != "WorksOn" {
		t.Errorf("Leads = %+v", leads)
	}
}

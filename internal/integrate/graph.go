package integrate

import (
	"sort"

	"repro/internal/assertion"
)

// nodeFinder is a union-find over the integration nodes keyed by component
// object keys, used to merge "equals" groups.
type nodeFinder struct {
	nodes map[assertion.ObjKey]*node
}

func newNodeFinder(nodes map[assertion.ObjKey]*node) *nodeFinder {
	return &nodeFinder{nodes: nodes}
}

// node resolves the current node of a key (nil for unknown keys).
func (f *nodeFinder) node(key assertion.ObjKey) *node {
	return f.nodes[key]
}

// union merges the nodes of a and b, keeping the one with the smaller
// emission order and concatenating members in order.
func (f *nodeFinder) union(a, b assertion.ObjKey) {
	na, nb := f.nodes[a], f.nodes[b]
	if na == nil || nb == nil || na == nb {
		return
	}
	keep, drop := na, nb
	if nb.order < na.order {
		keep, drop = nb, na
	}
	keep.members = append(keep.members, drop.members...)
	for _, m := range drop.members {
		f.nodes[m.key] = keep
	}
}

// groupSet is the distinct nodes after merging.
type groupSet []*node

func (f *nodeFinder) groups(keys []assertion.ObjKey) groupSet {
	seen := map[*node]bool{}
	var out groupSet
	for _, k := range keys {
		n := f.nodes[k]
		if n != nil && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func (g groupSet) nodes() []*node { return append([]*node(nil), g...) }

// clusterFinder groups nodes connected by any integrable assertion — the
// paper's clusters, which partition the schemas into manageable subsets.
type clusterFinder struct {
	parent map[*node]*node
}

func newClusterFinder(nodes []*node) *clusterFinder {
	cf := &clusterFinder{parent: make(map[*node]*node, len(nodes))}
	for _, n := range nodes {
		cf.parent[n] = n
	}
	return cf
}

func (cf *clusterFinder) find(n *node) *node {
	if cf.parent[n] == nil {
		cf.parent[n] = n
		return n
	}
	root := n
	for cf.parent[root] != root {
		root = cf.parent[root]
	}
	for cf.parent[n] != root {
		cf.parent[n], n = root, cf.parent[n]
	}
	return root
}

func (cf *clusterFinder) union(a, b *node) {
	ra, rb := cf.find(a), cf.find(b)
	if ra != rb {
		cf.parent[ra] = rb
	}
}

// clusters returns the member keys of every multi-node cluster, each
// sorted, largest cluster first.
func (cf *clusterFinder) clusters() [][]assertion.ObjKey {
	byRoot := map[*node][]*node{}
	for n := range cf.parent {
		root := cf.find(n)
		byRoot[root] = append(byRoot[root], n)
	}
	var out [][]assertion.ObjKey
	for _, ns := range byRoot {
		var keys []assertion.ObjKey
		for _, n := range ns {
			keys = append(keys, nodeMemberKeys(n)...)
		}
		// A cluster is a group of related component objects; an
		// equals-merged node alone still represents two related
		// objects.
		if len(keys) < 2 {
			continue
		}
		sortKeys(keys)
		out = append(out, keys)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0].String() < out[j][0].String()
	})
	return out
}

// orderedNodePair returns a canonical ordering of a node pair for use as a
// map key.
func orderedNodePair(a, b *node) [2]*node {
	if b.order < a.order {
		return [2]*node{b, a}
	}
	return [2]*node{a, b}
}

// nodeReaches reports whether parent is reachable from child along parent
// edges.
func nodeReaches(child, parent *node) bool {
	seen := map[*node]bool{}
	queue := []*node{child}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == parent {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		queue = append(queue, cur.parents...)
	}
	return false
}

// findNodeCycle returns the names (or member labels) along a cycle in the
// parent graph, or nil.
func findNodeCycle(nodes []*node) []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*node]int{}
	var stack []*node
	var cycle []string

	label := func(n *node) string {
		if n.name != "" {
			return n.name
		}
		if len(n.members) > 0 {
			return n.members[0].key.String()
		}
		return "?"
	}

	var visit func(n *node) bool
	visit = func(n *node) bool {
		color[n] = gray
		stack = append(stack, n)
		for _, p := range n.parents {
			switch color[p] {
			case gray:
				for i, sn := range stack {
					if sn == p {
						for _, cn := range stack[i:] {
							cycle = append(cycle, label(cn))
						}
						cycle = append(cycle, label(p))
						return true
					}
				}
				cycle = []string{label(p), label(n), label(p)}
				return true
			case white:
				if visit(p) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white {
			if visit(n) {
				return cycle
			}
		}
	}
	return nil
}

// reduceParents removes redundant parent edges: a parent reachable through
// another parent is dropped (transitive reduction of the IS-A DAG).
func reduceParents(nodes []*node) {
	for _, n := range nodes {
		if len(n.parents) < 2 {
			continue
		}
		var kept []*node
		for i, p := range n.parents {
			redundant := false
			for j, q := range n.parents {
				if i == j {
					continue
				}
				if q != p && nodeReaches(q, p) {
					redundant = true
					break
				}
			}
			if !redundant {
				kept = append(kept, p)
			}
		}
		n.parents = dedupeNodes(kept)
	}
}

func dedupeNodes(ns []*node) []*node {
	seen := map[*node]bool{}
	var out []*node
	for _, n := range ns {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// topoOrder returns the nodes parents-first (ancestors before descendants).
// Cycles have been rejected before this runs; any residual cycle members
// are appended at the end so the order is total.
func topoOrder(nodes []*node) []*node {
	indeg := map[*node]int{}
	children := map[*node][]*node{}
	for _, n := range nodes {
		if _, ok := indeg[n]; !ok {
			indeg[n] = 0
		}
		for _, p := range n.parents {
			children[p] = append(children[p], n)
			indeg[n]++
		}
	}
	var queue []*node
	for _, n := range nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].order < queue[j].order })
	var out []*node
	emitted := map[*node]bool{}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		emitted[n] = true
		for _, c := range children[n] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	for _, n := range nodes {
		if !emitted[n] {
			out = append(out, n)
		}
	}
	return out
}

// trunc4 keeps the first four characters of a name, the convention behind
// the paper's derived names (D_Stud_Facu, D_Grad_Inst, D_Secr_Engi,
// E_Stud_Majo).
func trunc4(name string) string {
	r := []rune(name)
	if len(r) > 4 {
		r = r[:4]
	}
	return string(r)
}

// derivedName composes a derived-class name from its two children.
func derivedName(prefix, a, b string) string {
	return prefix + trunc4(a) + "_" + trunc4(b)
}

package integrate

import (
	"fmt"
	"strings"

	"repro/internal/ecr"
)

// Stats summarizes what an integration did, for the tool's reporting and
// for experiment tables.
type Stats struct {
	// Objects and Relationships count the integrated schema's structures.
	Objects, Relationships int
	// EqualsMerged counts "E_" structures produced by equals assertions.
	EqualsMerged int
	// DerivedClasses counts "D_" structures created for may-be and
	// disjoint-integrable pairs (object classes and relationship sets).
	DerivedClasses int
	// Categories counts object classes placed under a parent.
	Categories int
	// DerivedAttributes counts attributes merged from two or more
	// component attributes.
	DerivedAttributes int
	// CopiedStructures counts structures taken over from a single
	// component unchanged (possibly renamed).
	CopiedStructures int
}

// Stats computes the summary from the result.
func (r *Result) Stats() Stats {
	var st Stats
	s := r.Schema
	countAttrs := func(attrs []ecr.Attribute) {
		for _, a := range attrs {
			if a.Derived() {
				st.DerivedAttributes++
			}
		}
	}
	for _, o := range s.Objects {
		st.Objects++
		switch {
		case len(o.Sources) >= 2 && strings.HasPrefix(o.Name, "E_"):
			st.EqualsMerged++
		case strings.HasPrefix(o.Name, "D_") && len(o.Sources) == 0:
			st.DerivedClasses++
		default:
			st.CopiedStructures++
		}
		if o.Kind == ecr.KindCategory {
			st.Categories++
		}
		countAttrs(o.Attributes)
	}
	for _, rel := range s.Relationships {
		st.Relationships++
		switch {
		case len(rel.Sources) >= 2 && strings.HasPrefix(rel.Name, "E_"):
			st.EqualsMerged++
		case strings.HasPrefix(rel.Name, "D_") && len(rel.Sources) == 0:
			st.DerivedClasses++
		default:
			st.CopiedStructures++
		}
		countAttrs(rel.Attributes)
	}
	return st
}

// String renders the summary in one line.
func (st Stats) String() string {
	return fmt.Sprintf(
		"%d objects (%d categories), %d relationships; %d equals-merged, %d derived classes, %d copied; %d derived attributes",
		st.Objects, st.Categories, st.Relationships,
		st.EqualsMerged, st.DerivedClasses, st.CopiedStructures, st.DerivedAttributes)
}

package mapping

import (
	"fmt"
	"strings"

	"repro/internal/ecr"
)

// Query is a simple selection/projection request against one structure of a
// schema — just enough of a query model to demonstrate that the generated
// mappings translate requests in both integration contexts, as the paper
// requires of an operational system.
type Query struct {
	// Schema the query is phrased against.
	Schema string
	// Object is the entity set, category or relationship set queried.
	Object string
	// Project lists the attributes to return; empty means all.
	Project []string
	// Where lists conjunctive predicates.
	Where []Predicate
}

// Predicate is one comparison, attribute <op> literal.
type Predicate struct {
	Attr  string
	Op    string // "=", "<", ">", "<=", ">=", "!="
	Value string
}

// String renders the query in a compact SELECT-like form.
func (q Query) String() string {
	proj := "*"
	if len(q.Project) > 0 {
		proj = strings.Join(q.Project, ", ")
	}
	s := fmt.Sprintf("select %s from %s.%s", proj, q.Schema, q.Object)
	if len(q.Where) > 0 {
		var preds []string
		for _, p := range q.Where {
			preds = append(preds, fmt.Sprintf("%s %s %s", p.Attr, p.Op, p.Value))
		}
		s += " where " + strings.Join(preds, " and ")
	}
	return s
}

// ViewToIntegrated converts a request against a component schema (a user
// view) into the equivalent request against the integrated schema — the
// translation direction of the logical database design context.
func ViewToIntegrated(q Query, t *Table) (Query, error) {
	src := ecr.ObjectRef{Schema: q.Schema, Object: q.Object}
	target, ok := t.TargetObject(src)
	if !ok {
		return Query{}, fmt.Errorf("mapping: no mapping for %s.%s in table for %s", q.Schema, q.Object, t.Integrated)
	}
	out := Query{Schema: t.Integrated, Object: target}
	mapAttr := func(name string) (string, error) {
		obj, attr, ok := t.TargetAttr(ecr.AttrRef{Schema: q.Schema, Object: q.Object, Attr: name})
		if !ok {
			return "", fmt.Errorf("mapping: no mapping for attribute %s.%s.%s", q.Schema, q.Object, name)
		}
		if obj != target {
			// The attribute was lifted to an ancestor during
			// integration; it is inherited by the target, so the
			// name still resolves there.
			_ = obj
		}
		return attr, nil
	}
	for _, p := range q.Project {
		attr, err := mapAttr(p)
		if err != nil {
			return Query{}, err
		}
		out.Project = append(out.Project, attr)
	}
	for _, p := range q.Where {
		attr, err := mapAttr(p.Attr)
		if err != nil {
			return Query{}, err
		}
		out.Where = append(out.Where, Predicate{Attr: attr, Op: p.Op, Value: p.Value})
	}
	return out, nil
}

// IntegratedToComponents maps a request against the integrated (global)
// schema into requests against the component databases — the translation
// direction of the global schema design context. The integrated structure's
// instances come from every component structure mapped onto it or onto any
// of its descendants in the IS-A lattice, so one sub-request is produced per
// contributing component structure. Components that lack a projected or
// filtered attribute are skipped (they cannot answer the request), which is
// reported in the skipped list.
func IntegratedToComponents(q Query, t *Table, integrated *ecr.Schema) (queries []Query, skipped []string, err error) {
	if q.Schema != t.Integrated {
		return nil, nil, fmt.Errorf("mapping: query is against %s, table is for %s", q.Schema, t.Integrated)
	}
	// The contributing structures: the queried one plus all descendants.
	targets := []string{q.Object}
	if integrated != nil {
		targets = append(targets, descendants(integrated, q.Object)...)
	}
	seen := map[string]bool{}
	for _, target := range targets {
		for _, src := range t.SourcesOf(target) {
			key := src.Schema + "." + src.Object
			if seen[key] {
				continue
			}
			seen[key] = true
			sub := Query{Schema: src.Schema, Object: src.Object}
			ok := true
			for _, p := range q.Project {
				attr, found := sourceAttrOf(t, integrated, src, q.Object, target, p)
				if !found {
					ok = false
					skipped = append(skipped, fmt.Sprintf("%s lacks attribute %s", key, p))
					break
				}
				sub.Project = append(sub.Project, attr)
			}
			if !ok {
				continue
			}
			for _, p := range q.Where {
				attr, found := sourceAttrOf(t, integrated, src, q.Object, target, p.Attr)
				if !found {
					ok = false
					skipped = append(skipped, fmt.Sprintf("%s lacks attribute %s", key, p.Attr))
					break
				}
				sub.Where = append(sub.Where, Predicate{Attr: attr, Op: p.Op, Value: p.Value})
			}
			if ok {
				queries = append(queries, sub)
			}
		}
	}
	return queries, skipped, nil
}

// sourceAttrOf resolves the component attribute feeding an integrated
// attribute of the queried structure. Integration lifts attributes shared
// with an ancestor onto that ancestor, so beyond the queried structure and
// the fan-out target the lookup also climbs the target's IS-A ancestors —
// the attribute is inherited downward, its mapping entry lives upward.
func sourceAttrOf(t *Table, integrated *ecr.Schema, src ecr.ObjectRef, qObject, target, attr string) (string, bool) {
	if a, ok := t.SourceAttr(src, qObject, attr); ok {
		return a, true
	}
	if target != qObject {
		if a, ok := t.SourceAttr(src, target, attr); ok {
			return a, true
		}
	}
	if integrated == nil {
		return "", false
	}
	for _, anc := range ancestors(integrated, target) {
		if a, ok := t.SourceAttr(src, anc, attr); ok {
			return a, true
		}
	}
	return "", false
}

// ancestors returns the names of every structure above name in the IS-A
// lattice of the schema.
func ancestors(s *ecr.Schema, name string) []string {
	var out []string
	seen := map[string]bool{name: true}
	queue := []string{name}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		o := s.Object(cur)
		if o == nil {
			continue
		}
		for _, parent := range o.Parents {
			if !seen[parent] {
				seen[parent] = true
				out = append(out, parent)
				queue = append(queue, parent)
			}
		}
	}
	return out
}

// descendants returns the names of every structure below name in the IS-A
// lattice of the schema.
func descendants(s *ecr.Schema, name string) []string {
	var out []string
	seen := map[string]bool{name: true}
	queue := []string{name}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, child := range s.Children(cur) {
			if !seen[child] {
				seen[child] = true
				out = append(out, child)
				queue = append(queue, child)
			}
		}
	}
	return out
}

// Package mapping records the correspondences between component schemas and
// the integrated schema that the tool generates after integration, and uses
// them to translate requests in both of the paper's contexts:
//
//   - logical database design: requests against a component schema (a user
//     view) are converted into requests against the integrated (logical)
//     schema;
//   - global schema design: requests against the integrated (global) schema
//     are mapped into requests against the component databases.
package mapping

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ecr"
)

// ObjectMapping records where one component object class or relationship
// set ended up in the integrated schema.
type ObjectMapping struct {
	Source ecr.ObjectRef `json:"source"`
	// Target is the integrated structure holding the source's instances.
	Target string `json:"target"`
	// Via explains the integration decision: "equals-merge", "category",
	// "derived-parent", "copy" or "renamed".
	Via string `json:"via"`
}

// AttrMapping records where one component attribute ended up.
type AttrMapping struct {
	Source       ecr.AttrRef `json:"source"`
	TargetObject string      `json:"targetObject"`
	TargetAttr   string      `json:"targetAttr"`
}

// Table is the full set of mappings for one integration. The tool keeps it
// as part of its bookkeeping; the paper's future-work section imagines it
// living in a shared data dictionary.
type Table struct {
	// Components names the component schemas in integration order.
	Components []string `json:"components"`
	// Integrated names the integrated schema.
	Integrated string          `json:"integrated"`
	Objects    []ObjectMapping `json:"objects,omitempty"`
	Attrs      []AttrMapping   `json:"attrs,omitempty"`
}

// AddObject appends an object mapping.
func (t *Table) AddObject(src ecr.ObjectRef, target, via string) {
	t.Objects = append(t.Objects, ObjectMapping{Source: src, Target: target, Via: via})
}

// AddAttr appends an attribute mapping.
func (t *Table) AddAttr(src ecr.AttrRef, targetObject, targetAttr string) {
	t.Attrs = append(t.Attrs, AttrMapping{Source: src, TargetObject: targetObject, TargetAttr: targetAttr})
}

// TargetObject returns the integrated structure for a component structure.
func (t *Table) TargetObject(src ecr.ObjectRef) (string, bool) {
	for _, m := range t.Objects {
		if m.Source.Schema == src.Schema && m.Source.Object == src.Object {
			return m.Target, true
		}
	}
	return "", false
}

// TargetAttr returns the integrated (object, attribute) pair for a component
// attribute.
func (t *Table) TargetAttr(src ecr.AttrRef) (object, attr string, ok bool) {
	for _, m := range t.Attrs {
		if m.Source.Schema == src.Schema && m.Source.Object == src.Object && m.Source.Attr == src.Attr {
			return m.TargetObject, m.TargetAttr, true
		}
	}
	return "", "", false
}

// SourcesOf returns the component structures mapped onto the integrated
// structure, sorted.
func (t *Table) SourcesOf(integrated string) []ecr.ObjectRef {
	var out []ecr.ObjectRef
	for _, m := range t.Objects {
		if m.Target == integrated {
			out = append(out, m.Source)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Schema != out[j].Schema {
			return out[i].Schema < out[j].Schema
		}
		return out[i].Object < out[j].Object
	})
	return out
}

// SourceAttr finds the component attribute of the given source structure
// that maps to the integrated (object, attr) pair.
func (t *Table) SourceAttr(src ecr.ObjectRef, targetObject, targetAttr string) (string, bool) {
	for _, m := range t.Attrs {
		if m.Source.Schema == src.Schema && m.Source.Object == src.Object &&
			m.TargetObject == targetObject && m.TargetAttr == targetAttr {
			return m.Source.Attr, true
		}
	}
	return "", false
}

// String renders the table as aligned "source -> target" lines.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mappings %s -> %s\n", strings.Join(t.Components, "+"), t.Integrated)
	for _, m := range t.Objects {
		fmt.Fprintf(&b, "  %-40s -> %-24s (%s)\n", m.Source.String(), m.Target, m.Via)
	}
	for _, m := range t.Attrs {
		fmt.Fprintf(&b, "  %-40s -> %s.%s\n", m.Source.String(), m.TargetObject, m.TargetAttr)
	}
	return b.String()
}

// EncodeJSON renders the table as indented JSON, the storage format for the
// shared data dictionary the paper's future-work section envisions (one
// repository of database objects and the mappings between them, available
// to all design tools).
func EncodeJSON(t *Table) ([]byte, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("mapping: encode table for %s: %w", t.Integrated, err)
	}
	return append(data, '\n'), nil
}

// DecodeJSON parses a table written by EncodeJSON.
func DecodeJSON(data []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("mapping: decode table: %w", err)
	}
	if t.Integrated == "" {
		return nil, fmt.Errorf("mapping: decoded table names no integrated schema")
	}
	return &t, nil
}

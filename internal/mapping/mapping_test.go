package mapping_test

import (
	"strings"
	"testing"

	"repro/internal/assertion"
	"repro/internal/core"
	"repro/internal/ecr"
	"repro/internal/mapping"
	"repro/internal/paperex"
)

// paperResult builds the paper's sc1+sc2 integration and returns the
// integrated schema and mapping table.
func paperResult(t testing.TB) (*ecr.Schema, *mapping.Table) {
	t.Helper()
	it, err := core.New(paperex.Sc1(), paperex.Sc2())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]string{
		{"Student.Name", "Grad_student.Name"},
		{"Student.Name", "Faculty.Name"},
		{"Student.GPA", "Grad_student.GPA"},
		{"Department.Dname", "Department.Dname"},
		{"Majors.Since", "Stud_major.Since"},
	} {
		if err := it.DeclareEquivalent(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := it.Assert("Department", assertion.Equals, "Department"); err != nil {
		t.Fatal(err)
	}
	if err := it.Assert("Student", assertion.Contains, "Grad_student"); err != nil {
		t.Fatal(err)
	}
	if err := it.Assert("Student", assertion.DisjointIntegrable, "Faculty"); err != nil {
		t.Fatal(err)
	}
	if err := it.AssertRelationship("Majors", assertion.Equals, "Stud_major"); err != nil {
		t.Fatal(err)
	}
	res, err := it.Integrate("")
	if err != nil {
		t.Fatal(err)
	}
	return res.Schema, res.Mappings
}

func TestTableLookups(t *testing.T) {
	_, tab := paperResult(t)
	got, ok := tab.TargetObject(ecr.ObjectRef{Schema: "sc1", Object: "Department"})
	if !ok || got != "E_Department" {
		t.Errorf("TargetObject = %q, %v", got, ok)
	}
	if _, ok := tab.TargetObject(ecr.ObjectRef{Schema: "sc1", Object: "Nope"}); ok {
		t.Error("unknown object should miss")
	}
	srcs := tab.SourcesOf("E_Department")
	if len(srcs) != 2 || srcs[0].Schema != "sc1" || srcs[1].Schema != "sc2" {
		t.Errorf("SourcesOf = %v", srcs)
	}
	attr, ok := tab.SourceAttr(ecr.ObjectRef{Schema: "sc2", Object: "Department"}, "E_Department", "D_Dname")
	if !ok || attr != "Dname" {
		t.Errorf("SourceAttr = %q, %v", attr, ok)
	}
	if s := tab.String(); !strings.Contains(s, "E_Department") {
		t.Errorf("String missing mapping:\n%s", s)
	}
}

func TestQueryString(t *testing.T) {
	q := mapping.Query{
		Schema:  "sc1",
		Object:  "Student",
		Project: []string{"Name"},
		Where:   []mapping.Predicate{{Attr: "GPA", Op: ">", Value: "3.5"}},
	}
	want := "select Name from sc1.Student where GPA > 3.5"
	if q.String() != want {
		t.Errorf("String() = %q", q.String())
	}
	q2 := mapping.Query{Schema: "s", Object: "O"}
	if q2.String() != "select * from s.O" {
		t.Errorf("String() = %q", q2.String())
	}
}

// TestViewToIntegrated covers the logical database design context: a query
// against view sc1 is rewritten against the integrated schema.
func TestViewToIntegrated(t *testing.T) {
	_, tab := paperResult(t)
	q := mapping.Query{
		Schema:  "sc1",
		Object:  "Student",
		Project: []string{"Name"},
		Where:   []mapping.Predicate{{Attr: "GPA", Op: ">", Value: "3.5"}},
	}
	out, err := mapping.ViewToIntegrated(q, tab)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema != "INT_sc1_sc2" || out.Object != "Student" {
		t.Errorf("target = %s.%s", out.Schema, out.Object)
	}
	if len(out.Project) != 1 || out.Project[0] != "D_Name" {
		t.Errorf("projection = %v", out.Project)
	}
	if len(out.Where) != 1 || out.Where[0].Attr != "D_GPA" {
		t.Errorf("where = %v", out.Where)
	}
}

func TestViewToIntegratedCategoryAttrLifted(t *testing.T) {
	_, tab := paperResult(t)
	// Grad_student.Name was lifted into Student.D_Name; a view query on
	// Grad_student must still translate.
	q := mapping.Query{
		Schema:  "sc2",
		Object:  "Grad_student",
		Project: []string{"Name", "Support_type"},
	}
	out, err := mapping.ViewToIntegrated(q, tab)
	if err != nil {
		t.Fatal(err)
	}
	if out.Object != "Grad_student" {
		t.Errorf("object = %s", out.Object)
	}
	if out.Project[0] != "D_Name" || out.Project[1] != "Support_type" {
		t.Errorf("projection = %v", out.Project)
	}
}

func TestViewToIntegratedErrors(t *testing.T) {
	_, tab := paperResult(t)
	if _, err := mapping.ViewToIntegrated(mapping.Query{Schema: "zz", Object: "X"}, tab); err == nil {
		t.Error("unknown schema should fail")
	}
	q := mapping.Query{Schema: "sc1", Object: "Student", Project: []string{"Nope"}}
	if _, err := mapping.ViewToIntegrated(q, tab); err == nil {
		t.Error("unknown attribute should fail")
	}
}

// TestIntegratedToComponents covers the global schema design context: a
// query against the global schema fans out to the component databases.
func TestIntegratedToComponents(t *testing.T) {
	s, tab := paperResult(t)
	q := mapping.Query{
		Schema:  "INT_sc1_sc2",
		Object:  "E_Department",
		Project: []string{"D_Dname"},
	}
	subs, skipped, err := mapping.IntegratedToComponents(q, tab, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("skipped = %v", skipped)
	}
	if len(subs) != 2 {
		t.Fatalf("subqueries = %v", subs)
	}
	for _, sub := range subs {
		if sub.Object != "Department" || len(sub.Project) != 1 || sub.Project[0] != "Dname" {
			t.Errorf("subquery = %+v", sub)
		}
	}
}

func TestIntegratedToComponentsDescendants(t *testing.T) {
	s, tab := paperResult(t)
	// Querying Student must also reach sc2.Grad_student (a descendant's
	// source) — its instances are students too.
	q := mapping.Query{Schema: "INT_sc1_sc2", Object: "Student", Project: []string{"D_Name"}}
	subs, _, err := mapping.IntegratedToComponents(q, tab, s)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, sub := range subs {
		seen[sub.Schema+"."+sub.Object] = true
	}
	if !seen["sc1.Student"] || !seen["sc2.Grad_student"] {
		t.Errorf("subqueries = %v", subs)
	}
}

func TestIntegratedToComponentsSkipsMissingAttr(t *testing.T) {
	s, tab := paperResult(t)
	// Location exists only in sc2.Department; sc1.Department cannot
	// answer and is skipped with a report.
	q := mapping.Query{Schema: "INT_sc1_sc2", Object: "E_Department", Project: []string{"Location"}}
	subs, skipped, err := mapping.IntegratedToComponents(q, tab, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Schema != "sc2" {
		t.Errorf("subqueries = %v", subs)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "sc1.Department") {
		t.Errorf("skipped = %v", skipped)
	}
}

func TestIntegratedToComponentsWrongSchema(t *testing.T) {
	s, tab := paperResult(t)
	_, _, err := mapping.IntegratedToComponents(mapping.Query{Schema: "other", Object: "X"}, tab, s)
	if err == nil {
		t.Error("wrong schema should fail")
	}
}

func TestRoundTripViewQuery(t *testing.T) {
	s, tab := paperResult(t)
	// view query -> integrated -> back to components must reach the
	// original view among the subqueries with the original attribute.
	q := mapping.Query{Schema: "sc2", Object: "Faculty", Project: []string{"Name"}}
	up, err := mapping.ViewToIntegrated(q, tab)
	if err != nil {
		t.Fatal(err)
	}
	subs, _, err := mapping.IntegratedToComponents(up, tab, s)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sub := range subs {
		if sub.Schema == "sc2" && sub.Object == "Faculty" && len(sub.Project) == 1 && sub.Project[0] == "Name" {
			found = true
		}
	}
	if !found {
		t.Errorf("round trip lost the original view: %v", subs)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	_, tab := paperResult(t)
	data, err := mapping.EncodeJSON(tab)
	if err != nil {
		t.Fatal(err)
	}
	back, err := mapping.DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Integrated != tab.Integrated || len(back.Objects) != len(tab.Objects) || len(back.Attrs) != len(tab.Attrs) {
		t.Errorf("round trip changed table: %d/%d objects, %d/%d attrs",
			len(back.Objects), len(tab.Objects), len(back.Attrs), len(tab.Attrs))
	}
	got, ok := back.TargetObject(ecr.ObjectRef{Schema: "sc1", Object: "Department"})
	if !ok || got != "E_Department" {
		t.Errorf("lookup after round trip = %q, %v", got, ok)
	}
}

func TestTableDecodeJSONErrors(t *testing.T) {
	if _, err := mapping.DecodeJSON([]byte("{bad")); err == nil {
		t.Error("syntax error should fail")
	}
	if _, err := mapping.DecodeJSON([]byte("{}")); err == nil {
		t.Error("empty table should fail")
	}
}

package mapping_test

import (
	"testing"

	"repro/internal/ecr"
	"repro/internal/integrate"
	"repro/internal/mapping"
	"repro/internal/workload"
)

// TestRoundTripGeneratedWorkloads is the property test behind the federated
// query path: over generated schema pairs with known ground truth, every
// component view query whose attributes are mapped must survive the
// view→integrated→components round trip — the rewritten global query fans
// back out to the original view with the original attribute names.
func TestRoundTripGeneratedWorkloads(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		w, err := workload.Generate(workload.DefaultConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := integrate.Integrate(integrate.Input{
			S1: w.S1, S2: w.S2,
			Registry:      w.Registry,
			Objects:       w.Objects,
			Relationships: w.Relationships,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tab, s := res.Mappings, res.Schema
		checked := 0
		for _, comp := range []*ecr.Schema{w.S1, w.S2} {
			for _, o := range comp.Objects {
				if _, ok := tab.TargetObject(ecr.ObjectRef{Schema: comp.Name, Object: o.Name}); !ok {
					continue
				}
				var proj []string
				for _, a := range o.Attributes {
					if _, _, ok := tab.TargetAttr(ecr.AttrRef{Schema: comp.Name, Object: o.Name, Attr: a.Name}); ok {
						proj = append(proj, a.Name)
					}
				}
				if len(proj) == 0 {
					continue
				}
				checked++
				q := mapping.Query{Schema: comp.Name, Object: o.Name, Project: proj}
				up, err := mapping.ViewToIntegrated(q, tab)
				if err != nil {
					t.Fatalf("seed %d: lift %s.%s: %v", seed, comp.Name, o.Name, err)
				}
				if up.Schema != tab.Integrated {
					t.Fatalf("seed %d: lifted query targets %q, want %q", seed, up.Schema, tab.Integrated)
				}
				subs, _, err := mapping.IntegratedToComponents(up, tab, s)
				if err != nil {
					t.Fatalf("seed %d: fan out %s: %v", seed, up.String(), err)
				}
				found := false
				for _, sub := range subs {
					if sub.Schema != comp.Name || sub.Object != o.Name {
						continue
					}
					got := map[string]bool{}
					for _, p := range sub.Project {
						got[p] = true
					}
					all := true
					for _, p := range proj {
						if !got[p] {
							all = false
						}
					}
					if all {
						found = true
					}
				}
				if !found {
					t.Errorf("seed %d: round trip lost view %s.%s %v: %v",
						seed, comp.Name, o.Name, proj, subs)
				}
			}
		}
		if checked == 0 {
			t.Fatalf("seed %d: no mapped view objects to check", seed)
		}
	}
}

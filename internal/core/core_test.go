package core

import (
	"testing"

	"repro/internal/assertion"
	"repro/internal/ecr"
	"repro/internal/errtest"
	"repro/internal/paperex"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil schemas should fail")
	}
	if _, err := New(paperex.Sc1(), paperex.Sc1()); err == nil {
		t.Error("same-named schemas should fail")
	}
	bad := ecr.NewSchema("bad")
	bad.Objects = []*ecr.ObjectClass{{Name: "C", Kind: ecr.KindCategory}}
	if _, err := New(paperex.Sc1(), bad); err == nil {
		t.Error("invalid schema should fail")
	}
}

func TestNewRegistersAttributes(t *testing.T) {
	it, err := New(paperex.Sc1(), paperex.Sc2())
	if err != nil {
		t.Fatal(err)
	}
	// sc1 has 4 attributes, sc2 has 9.
	if got := it.Registry().Len(); got != 13 {
		t.Errorf("registered attributes = %d, want 13", got)
	}
	s1, s2 := it.Schemas()
	if s1.Name != "sc1" || s2.Name != "sc2" {
		t.Errorf("schemas = %s, %s", s1.Name, s2.Name)
	}
}

func TestDeclareEquivalentErrors(t *testing.T) {
	it, err := New(paperex.Sc1(), paperex.Sc2())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ r1, r2, substr string }{
		{"Student", "Grad_student.Name", "want object.attribute"},
		{"Student.Nope", "Grad_student.Name", "no attribute"},
		{"Nope.Name", "Grad_student.Name", "no structure"},
		{"Student.Name", "Grad_student.Nope", "no attribute"},
		{"Student.", "Grad_student.Name", "want object.attribute"},
	}
	for _, c := range cases {
		err := it.DeclareEquivalent(c.r1, c.r2)
		if !errtest.Contains(err, c.substr) {
			t.Errorf("DeclareEquivalent(%s, %s) = %v, want %q", c.r1, c.r2, err, c.substr)
		}
	}
	// Relationship attributes resolve too.
	if err := it.DeclareEquivalent("Majors.Since", "Stud_major.Since"); err != nil {
		t.Errorf("relationship attr: %v", err)
	}
}

func TestResolveAttr(t *testing.T) {
	s := paperex.Sc1()
	ref, err := ResolveAttr(s, "Student.Name")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Schema != "sc1" || ref.Object != "Student" || ref.Attr != "Name" || ref.Kind != ecr.KindEntity {
		t.Errorf("ref = %+v", ref)
	}
	ref, err = ResolveAttr(s, "Majors.Since")
	if err != nil || ref.Kind != ecr.KindRelationship {
		t.Errorf("relationship ref = %+v, %v", ref, err)
	}
}

func TestAssertErrors(t *testing.T) {
	it, err := New(paperex.Sc1(), paperex.Sc2())
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Assert("Nope", assertion.Equals, "Faculty"); err == nil {
		t.Error("unknown object1 should fail")
	}
	if err := it.Assert("Student", assertion.Equals, "Nope"); err == nil {
		t.Error("unknown object2 should fail")
	}
	if err := it.AssertRelationship("Nope", assertion.Equals, "Works"); err == nil {
		t.Error("unknown relationship1 should fail")
	}
	if err := it.AssertRelationship("Majors", assertion.Equals, "Nope"); err == nil {
		t.Error("unknown relationship2 should fail")
	}
}

func TestAssertConflictSurfacesAsError(t *testing.T) {
	it, err := New(paperex.Sc1(), paperex.Sc2())
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Assert("Student", assertion.Equals, "Grad_student"); err != nil {
		t.Fatal(err)
	}
	err = it.Assert("Student", assertion.DisjointNonintegrable, "Grad_student")
	if _, ok := err.(*assertion.Conflict); !ok {
		t.Errorf("want *assertion.Conflict, got %v", err)
	}
}

func TestRankedPairsExposed(t *testing.T) {
	it, err := New(paperex.Sc1(), paperex.Sc2())
	if err != nil {
		t.Fatal(err)
	}
	if err := it.DeclareEquivalent("Student.Name", "Grad_student.Name"); err != nil {
		t.Fatal(err)
	}
	objs := it.RankedObjectPairs()
	if len(objs) != 6 {
		t.Errorf("object pairs = %d", len(objs))
	}
	if objs[0].Object1 != "Student" || objs[0].Object2 != "Grad_student" {
		t.Errorf("top pair = %+v", objs[0])
	}
	rels := it.RankedRelationshipPairs()
	if len(rels) != 2 {
		t.Errorf("relationship pairs = %d", len(rels))
	}
}

func TestIntegrateNamed(t *testing.T) {
	it, err := New(paperex.Sc1(), paperex.Sc2())
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Integrate("custom")
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Name != "custom" {
		t.Errorf("name = %q", res.Schema.Name)
	}
	if it.ObjectAssertions() == nil || it.RelationshipAssertions() == nil {
		t.Error("assertion accessors nil")
	}
}

// Package core is the programmatic facade over the schema integration
// methodology: it strings the four phases of the paper — schema collection,
// schema analysis (attribute equivalences), assertion specification and
// integration — into one Integration value with a small, documented API.
// The interactive tool (internal/session) and the batch tool (cmd/sit-batch)
// are thin drivers over this package.
package core

import (
	"fmt"
	"strings"

	"repro/internal/assertion"
	"repro/internal/ecr"
	"repro/internal/equivalence"
	"repro/internal/integrate"
	"repro/internal/resemblance"
	"repro/internal/similarity"
)

// Integration is one pairwise integration in progress: two component
// schemas, the declared attribute equivalences, and the assertions
// collected so far.
type Integration struct {
	s1, s2   *ecr.Schema
	registry *equivalence.Registry
	sim      *similarity.Engine
	objects  *assertion.Set
	rels     *assertion.Set
}

// New starts an integration of the two component schemas. Both schemas are
// validated; their attributes are registered in the equivalence registry.
func New(s1, s2 *ecr.Schema) (*Integration, error) {
	if s1 == nil || s2 == nil {
		return nil, fmt.Errorf("core: both schemas are required")
	}
	if err := s1.Validate(); err != nil {
		return nil, err
	}
	if err := s2.Validate(); err != nil {
		return nil, err
	}
	if s1.Name == s2.Name {
		return nil, fmt.Errorf("core: schemas share the name %q", s1.Name)
	}
	reg := equivalence.NewRegistry()
	reg.RegisterSchema(s1)
	reg.RegisterSchema(s2)
	return &Integration{
		s1: s1, s2: s2,
		registry: reg,
		sim:      similarity.Attach(reg),
		objects:  assertion.NewSet(),
		rels:     assertion.NewSet(),
	}, nil
}

// Schemas returns the two component schemas.
func (it *Integration) Schemas() (*ecr.Schema, *ecr.Schema) { return it.s1, it.s2 }

// Registry exposes the attribute equivalence registry.
func (it *Integration) Registry() *equivalence.Registry { return it.registry }

// ObjectAssertions exposes the Entity Assertion matrix for object classes.
func (it *Integration) ObjectAssertions() *assertion.Set { return it.objects }

// RelationshipAssertions exposes the assertion matrix for relationship
// sets.
func (it *Integration) RelationshipAssertions() *assertion.Set { return it.rels }

// DeclareEquivalent places the named attributes (given as
// "object.attribute" within each schema) in one equivalence class. The
// first reference is resolved against the first schema, the second against
// the second.
func (it *Integration) DeclareEquivalent(ref1, ref2 string) error {
	a, err := ResolveAttr(it.s1, ref1)
	if err != nil {
		return err
	}
	b, err := ResolveAttr(it.s2, ref2)
	if err != nil {
		return err
	}
	return it.registry.Declare(a, b)
}

// ResolveAttr resolves an "object.attribute" reference against a schema,
// producing the fully qualified AttrRef.
func ResolveAttr(s *ecr.Schema, ref string) (ecr.AttrRef, error) {
	dot := strings.LastIndexByte(ref, '.')
	if dot <= 0 || dot == len(ref)-1 {
		return ecr.AttrRef{}, fmt.Errorf("core: bad attribute reference %q (want object.attribute)", ref)
	}
	object, attr := ref[:dot], ref[dot+1:]
	if o := s.Object(object); o != nil {
		if _, ok := o.Attribute(attr); !ok {
			return ecr.AttrRef{}, fmt.Errorf("core: %s.%s has no attribute %q", s.Name, object, attr)
		}
		return ecr.AttrRef{Schema: s.Name, Object: object, Kind: o.Kind, Attr: attr}, nil
	}
	if r := s.Relationship(object); r != nil {
		if _, ok := r.Attribute(attr); !ok {
			return ecr.AttrRef{}, fmt.Errorf("core: %s.%s has no attribute %q", s.Name, object, attr)
		}
		return ecr.AttrRef{Schema: s.Name, Object: object, Kind: ecr.KindRelationship, Attr: attr}, nil
	}
	return ecr.AttrRef{}, fmt.Errorf("core: schema %s has no structure %q", s.Name, object)
}

// RankedObjectPairs returns the object-class pairs ordered by the
// resemblance function, as the Assertion Collection screen presents them.
// The ranking runs on the sparse similarity engine; its output is identical
// to resemblance.RankObjects on the same inputs.
func (it *Integration) RankedObjectPairs() []resemblance.Pair {
	return it.sim.RankObjects(it.s1, it.s2)
}

// RankedRelationshipPairs ranks the relationship-set pairs.
func (it *Integration) RankedRelationshipPairs() []resemblance.Pair {
	return it.sim.RankRelationships(it.s1, it.s2)
}

// Assert records an object-class assertion: object1 of the first schema
// <kind> object2 of the second. The matrix is closed immediately and the
// first conflict, if any, is returned as a *assertion.Conflict error.
func (it *Integration) Assert(object1 string, kind assertion.Kind, object2 string) error {
	if it.s1.Object(object1) == nil {
		return fmt.Errorf("core: schema %s has no object class %q", it.s1.Name, object1)
	}
	if it.s2.Object(object2) == nil {
		return fmt.Errorf("core: schema %s has no object class %q", it.s2.Name, object2)
	}
	return closeAfter(it.objects,
		assertion.ObjKey{Schema: it.s1.Name, Object: object1},
		assertion.ObjKey{Schema: it.s2.Name, Object: object2}, kind)
}

// AssertRelationship records a relationship-set assertion, closing the
// matrix immediately.
func (it *Integration) AssertRelationship(rel1 string, kind assertion.Kind, rel2 string) error {
	if it.s1.Relationship(rel1) == nil {
		return fmt.Errorf("core: schema %s has no relationship set %q", it.s1.Name, rel1)
	}
	if it.s2.Relationship(rel2) == nil {
		return fmt.Errorf("core: schema %s has no relationship set %q", it.s2.Name, rel2)
	}
	return closeAfter(it.rels,
		assertion.ObjKey{Schema: it.s1.Name, Object: rel1},
		assertion.ObjKey{Schema: it.s2.Name, Object: rel2}, kind)
}

func closeAfter(set *assertion.Set, a, b assertion.ObjKey, kind assertion.Kind) error {
	res := set.AssertAndClose(a, b, kind)
	if !res.Consistent() {
		return res.Conflicts[0]
	}
	return nil
}

// Integrate runs the integration phase and returns the integrated schema,
// the mappings and the integration report. An empty name uses the default
// "INT_<s1>_<s2>".
func (it *Integration) Integrate(name string) (*integrate.Result, error) {
	return integrate.Integrate(integrate.Input{
		S1: it.s1, S2: it.s2,
		Registry:      it.registry,
		Objects:       it.objects,
		Relationships: it.rels,
		Name:          name,
	})
}

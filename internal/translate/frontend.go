package translate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/ecr"
)

// A Frontend is one schema-definition language the tool can ingest. Every
// ingestion path — POST /schemas, sit-translate, sit-batch — goes through
// the same registry of frontends, so a format added here is immediately
// available everywhere. A frontend turns source text into validated ECR
// schemas plus provenance notes recording each abstraction decision.
type Frontend interface {
	// Name is the format identifier ("dictionary", "sql", ...).
	Name() string
	// Sniff reports whether the source looks like this format. Detection
	// asks each registered frontend in order; the first match wins.
	Sniff(src []byte) bool
	// Parse translates the source into ECR. name is the fallback schema
	// name for formats that do not carry one of their own (SQL DDL, Avro);
	// the dictionary and hierarchical languages name their schemas in-text
	// and ignore it, and JSON Schema prefers its title.
	Parse(name string, src []byte) (*Result, error)
}

// Result is the outcome of parsing one source through a frontend. Most
// formats define a single schema; the dictionary format may define several.
type Result struct {
	Schemas []*ecr.Schema
	// Notes log, per construct, the abstraction decision applied and any
	// warnings (unknown domains, skipped constructs).
	Notes []string
}

// frontends is the registry, in detection order. Order matters for Sniff:
// the specific JSON dialects (Avro, then JSON Schema) are probed before
// anything that would accept generic JSON.
var frontends []Frontend

// Register appends a frontend to the registry. Registering a duplicate
// format name is a programming error.
func Register(f Frontend) {
	for _, g := range frontends {
		if g.Name() == f.Name() {
			panic(fmt.Sprintf("translate: frontend %q registered twice", f.Name()))
		}
	}
	frontends = append(frontends, f)
}

func init() {
	Register(dictionaryFrontend{})
	Register(sqlFrontend{})
	Register(hierarchicalFrontend{})
	Register(avroFrontend{})
	Register(jsonSchemaFrontend{})
}

// Formats lists the registered format names in registration order.
func Formats() []string {
	names := make([]string, len(frontends))
	for i, f := range frontends {
		names[i] = f.Name()
	}
	return names
}

// Lookup returns the frontend registered under the format name.
func Lookup(format string) (Frontend, bool) {
	for _, f := range frontends {
		if f.Name() == format {
			return f, true
		}
	}
	return nil, false
}

// Detect sniffs the source against every registered frontend and returns
// the first match.
func Detect(src []byte) (Frontend, bool) {
	for _, f := range frontends {
		if f.Sniff(src) {
			return f, true
		}
	}
	return nil, false
}

// Parse resolves a format (explicit name, or sniffed when format is empty)
// and parses the source through it. It returns the result and the name of
// the format actually used.
func Parse(format, name string, src []byte) (*Result, string, error) {
	var f Frontend
	if format != "" {
		var ok bool
		if f, ok = Lookup(format); !ok {
			return nil, "", fmt.Errorf("translate: unknown format %q (have %s)", format, strings.Join(Formats(), ", "))
		}
	} else {
		var ok bool
		if f, ok = Detect(src); !ok {
			return nil, "", fmt.Errorf("translate: cannot detect schema format (have %s)", strings.Join(Formats(), ", "))
		}
	}
	res, err := f.Parse(name, src)
	if err != nil {
		return nil, f.Name(), err
	}
	return res, f.Name(), nil
}

// jsonRoot decodes the top-level JSON value of src, reporting whether src
// is JSON at all. Used by the sniffers of the three JSON-carried formats.
func jsonRoot(src []byte) (any, bool) {
	trimmed := bytes.TrimSpace(src)
	if len(trimmed) == 0 || (trimmed[0] != '{' && trimmed[0] != '[') {
		return nil, false
	}
	var v any
	if err := json.Unmarshal(trimmed, &v); err != nil {
		return nil, false
	}
	return v, true
}

// firstWord returns the first '#'-comment-stripped word of the source,
// lower-cased — enough to recognise the keyword-led textual languages.
func firstWord(src []byte) string {
	for _, line := range strings.Split(string(src), "\n") {
		if i := strings.IndexAny(line, "#"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "--"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) > 0 {
			return strings.ToLower(fields[0])
		}
	}
	return ""
}

// --- dictionary (ECR DDL or ECR JSON) ---

// dictionaryFrontend ingests the tool's own data-dictionary formats: the
// ECR DDL text language (possibly several schemas per file) or a single
// schema in the workspace JSON form.
type dictionaryFrontend struct{}

func (dictionaryFrontend) Name() string { return "dictionary" }

func (dictionaryFrontend) Sniff(src []byte) bool {
	if v, ok := jsonRoot(src); ok {
		obj, ok := v.(map[string]any)
		if !ok {
			return false
		}
		// The ECR JSON form: {"name": ..., "objects": [...], ...}.
		_, hasObjects := obj["objects"]
		_, hasRels := obj["relationships"]
		_, hasName := obj["name"]
		return hasName && (hasObjects || hasRels)
	}
	return firstWord(src) == "schema"
}

func (dictionaryFrontend) Parse(name string, src []byte) (*Result, error) {
	if _, ok := jsonRoot(src); ok {
		s, err := ecr.DecodeJSON(src)
		if err != nil {
			return nil, err
		}
		return &Result{
			Schemas: []*ecr.Schema{s},
			Notes:   []string{fmt.Sprintf("dictionary: decoded schema %s from JSON", s.Name)},
		}, nil
	}
	schemas, err := ecr.ParseSchemas(string(src))
	if err != nil {
		return nil, err
	}
	res := &Result{Schemas: schemas}
	for _, s := range schemas {
		res.Notes = append(res.Notes, fmt.Sprintf("dictionary: parsed schema %s", s.Name))
	}
	return res, nil
}

// --- sql ---

// sqlFrontend ingests relational CREATE TABLE DDL and abstracts it through
// the Navathe & Awong classification (FromRelational).
type sqlFrontend struct{}

func (sqlFrontend) Name() string { return "sql" }

func (sqlFrontend) Sniff(src []byte) bool {
	return firstWord(src) == "create"
}

func (sqlFrontend) Parse(name string, src []byte) (*Result, error) {
	if name == "" {
		name = "db"
	}
	db, err := ParseSQL(name, string(src))
	if err != nil {
		return nil, err
	}
	rel, err := FromRelational(db)
	if err != nil {
		return nil, err
	}
	return &Result{Schemas: []*ecr.Schema{rel.Schema}, Notes: rel.Notes}, nil
}

// --- hierarchical ---

// hierarchicalFrontend ingests the segment-tree language and abstracts it
// through FromHierarchical. The hierarchy names itself in-text.
type hierarchicalFrontend struct{}

func (hierarchicalFrontend) Name() string { return "hierarchical" }

func (hierarchicalFrontend) Sniff(src []byte) bool {
	return firstWord(src) == "hierarchy"
}

func (hierarchicalFrontend) Parse(name string, src []byte) (*Result, error) {
	h, err := ParseHierarchy(string(src))
	if err != nil {
		return nil, err
	}
	res, err := FromHierarchical(h)
	if err != nil {
		return nil, err
	}
	return &Result{Schemas: []*ecr.Schema{res.Schema}, Notes: res.Notes}, nil
}

package translate

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/ecr"
)

// avroFrontend abstracts an Avro schema document — a single record or a
// JSON array of named types — into ECR:
//
//   - every record becomes an entity set; fields of primitive type become
//     attributes (int/long -> int, float/double -> real, string -> char,
//     boolean -> bool, bytes -> char with a note; the date and timestamp
//     logical types -> date), with the "key": true field extension marking
//     key attributes;
//   - a field typed as another record (by name, inline, or as the union
//     ["null", Record]) becomes a binary relationship set <Owner>_<Target>:
//     the owner participates (1,1), or (0,1) for the nullable union; the
//     target (0,n). An array of records yields (0,n) on both sides;
//   - a field typed as an enum keeps a char attribute and additionally
//     yields one category per symbol, named <Owner>_<Symbol>, over the
//     owning record.
type avroFrontend struct{}

func (avroFrontend) Name() string { return "avro" }

func (avroFrontend) Sniff(src []byte) bool {
	v, ok := jsonRoot(src)
	if !ok {
		return false
	}
	return avroLooksLikeNamedType(v)
}

func avroLooksLikeNamedType(v any) bool {
	switch t := v.(type) {
	case map[string]any:
		typ, _ := t["type"].(string)
		_, hasFields := t["fields"]
		_, hasSymbols := t["symbols"]
		return (typ == "record" && hasFields) || (typ == "enum" && hasSymbols)
	case []any:
		if len(t) == 0 {
			return false
		}
		for _, e := range t {
			if !avroLooksLikeNamedType(e) {
				return false
			}
		}
		return true
	}
	return false
}

// avroField is one field of a record; Type stays raw because Avro types are
// polymorphic (string, object, or union array).
type avroField struct {
	Name string          `json:"name"`
	Type json.RawMessage `json:"type"`
	Key  bool            `json:"key"`
}

// avroType is the object form of a type: a named record/enum, a logical
// type annotation, or an array.
type avroType struct {
	Type        string          `json:"type"`
	Name        string          `json:"name"`
	LogicalType string          `json:"logicalType"`
	Fields      []avroField     `json:"fields"`
	Symbols     []string        `json:"symbols"`
	Items       json.RawMessage `json:"items"`
}

// avroParser accumulates named types in encounter order.
type avroParser struct {
	records []*avroType
	enums   map[string]*avroType
	known   map[string]string // short name -> "record" | "enum"
}

func (avroFrontend) Parse(name string, src []byte) (*Result, error) {
	var root json.RawMessage = src
	p := &avroParser{enums: map[string]*avroType{}, known: map[string]string{}}

	// The document is a single named type or an array of them.
	var arr []json.RawMessage
	if err := json.Unmarshal(root, &arr); err != nil {
		arr = []json.RawMessage{root}
	}
	for _, raw := range arr {
		if _, err := p.collect(raw); err != nil {
			return nil, err
		}
	}
	if len(p.records) == 0 {
		return nil, fmt.Errorf("translate: avro: no records in document")
	}

	schemaName := name
	if schemaName == "" {
		schemaName = "avro"
	}
	out := ecr.NewSchema(schemaName)
	res := &Result{Schemas: []*ecr.Schema{out}}
	notef := func(format string, args ...any) {
		res.Notes = append(res.Notes, fmt.Sprintf(format, args...))
	}

	type pendingRef struct {
		owner, field, target string
		card                 ecr.Cardinality
	}
	type pendingCat struct {
		name, parent string
	}
	var refs []pendingRef
	var cats []pendingCat

	// Pass 1: records become entity sets; reference and enum fields are
	// collected for later passes.
	for _, rec := range p.records {
		o := &ecr.ObjectClass{Name: rec.Name, Kind: ecr.KindEntity}
		for _, f := range rec.Fields {
			ft, err := p.fieldType(f.Type)
			if err != nil {
				return nil, fmt.Errorf("translate: avro: record %s field %s: %w", rec.Name, f.Name, err)
			}
			switch ft.kind {
			case "record":
				minCard := 1
				if ft.nullable {
					minCard = 0
				}
				refs = append(refs, pendingRef{
					owner: rec.Name, field: f.Name, target: ft.name,
					card: ecr.Cardinality{Min: minCard, Max: 1},
				})
			case "recordArray":
				refs = append(refs, pendingRef{
					owner: rec.Name, field: f.Name, target: ft.name,
					card: ecr.Cardinality{Min: 0, Max: ecr.N},
				})
			case "enum":
				o.Attributes = append(o.Attributes, ecr.Attribute{
					Name: f.Name, Domain: "char", Key: f.Key,
				})
				for _, sym := range p.enums[ft.name].Symbols {
					cats = append(cats, pendingCat{
						name:   rec.Name + "_" + sanitizeName(sym),
						parent: rec.Name,
					})
				}
			default: // scalar
				if ft.warn != "" {
					notef("record %s: field %s: %s", rec.Name, f.Name, ft.warn)
				}
				o.Attributes = append(o.Attributes, ecr.Attribute{
					Name: f.Name, Domain: ft.domain, Key: f.Key,
				})
			}
		}
		if err := out.AddObject(o); err != nil {
			return nil, err
		}
		notef("record %s -> entity set %s", rec.Name, o.Name)
	}

	for _, c := range cats {
		if out.Object(c.name) != nil {
			continue
		}
		o := &ecr.ObjectClass{Name: c.name, Kind: ecr.KindCategory, Parents: []string{c.parent}}
		if err := out.AddObject(o); err != nil {
			return nil, err
		}
		notef("enum symbol -> category %s of %s", c.name, c.parent)
	}

	// Pass 2: relationship sets from record-reference fields.
	for _, r := range refs {
		if out.Object(r.target) == nil {
			return nil, fmt.Errorf("translate: avro: %s.%s references undefined record %q", r.owner, r.field, r.target)
		}
		rs := &ecr.RelationshipSet{
			Name: r.owner + "_" + r.target,
			Participants: []ecr.Participation{
				{Object: r.owner, Card: r.card},
				{Object: r.target, Card: ecr.Cardinality{Min: 0, Max: ecr.N}},
			},
		}
		if r.owner == r.target {
			// A self-reference needs roles to tell the sides apart.
			rs.Participants[0].Role = sanitizeName(r.field)
			rs.Participants[1].Role = "of"
		}
		if out.Relationship(rs.Name) != nil {
			rs.Name = rs.Name + "_" + sanitizeName(r.field)
		}
		if err := out.AddRelationship(rs); err != nil {
			return nil, err
		}
		notef("reference field %s.%s -> relationship set %s", r.owner, r.field, rs.Name)
	}

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("translate: avro: result invalid: %w", err)
	}
	return res, nil
}

// collect registers the named types defined by raw (a record or enum in
// object form, possibly nested inside fields) and returns the short name.
func (p *avroParser) collect(raw json.RawMessage) (string, error) {
	var t avroType
	if err := json.Unmarshal(raw, &t); err != nil {
		return "", fmt.Errorf("translate: avro: %w", err)
	}
	short := shortAvroName(t.Name)
	switch t.Type {
	case "record":
		if short == "" {
			return "", fmt.Errorf("translate: avro: record with no name")
		}
		if _, dup := p.known[short]; dup {
			return "", fmt.Errorf("translate: avro: duplicate named type %q", short)
		}
		t.Name = short
		p.known[short] = "record"
		p.records = append(p.records, &t)
		// Inline named types defined inside fields register too.
		for _, f := range t.Fields {
			if err := p.collectFromFieldType(f.Type); err != nil {
				return "", err
			}
		}
		return short, nil
	case "enum":
		if short == "" {
			return "", fmt.Errorf("translate: avro: enum with no name")
		}
		if _, dup := p.known[short]; dup {
			return "", fmt.Errorf("translate: avro: duplicate named type %q", short)
		}
		t.Name = short
		p.known[short] = "enum"
		p.enums[short] = &t
		return short, nil
	default:
		return "", fmt.Errorf("translate: avro: top-level type %q is not a named type", t.Type)
	}
}

// collectFromFieldType walks a field's type looking for inline record/enum
// definitions (directly, in a union, or as array items).
func (p *avroParser) collectFromFieldType(raw json.RawMessage) error {
	trimmed := strings.TrimSpace(string(raw))
	if trimmed == "" {
		return nil
	}
	switch trimmed[0] {
	case '{':
		var t avroType
		if err := json.Unmarshal(raw, &t); err != nil {
			return fmt.Errorf("translate: avro: %w", err)
		}
		switch t.Type {
		case "record", "enum":
			_, err := p.collect(raw)
			return err
		case "array":
			return p.collectFromFieldType(t.Items)
		}
		return nil
	case '[':
		var branches []json.RawMessage
		if err := json.Unmarshal(raw, &branches); err != nil {
			return fmt.Errorf("translate: avro: %w", err)
		}
		for _, b := range branches {
			if err := p.collectFromFieldType(b); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

// resolvedType classifies a field type once named types are known.
type resolvedType struct {
	kind     string // "scalar" | "record" | "recordArray" | "enum"
	name     string // named-type short name for record/enum kinds
	domain   string // ECR domain for scalars
	nullable bool   // union with "null"
	warn     string
}

// fieldType resolves a field's raw type. Named types may be referenced
// before their definition appears; collect has already walked the whole
// document, so p.known is complete.
func (p *avroParser) fieldType(raw json.RawMessage) (resolvedType, error) {
	trimmed := strings.TrimSpace(string(raw))
	if trimmed == "" {
		return resolvedType{}, fmt.Errorf("missing type")
	}
	switch trimmed[0] {
	case '"':
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return resolvedType{}, err
		}
		return p.namedOrPrimitive(s)
	case '{':
		var t avroType
		if err := json.Unmarshal(raw, &t); err != nil {
			return resolvedType{}, err
		}
		switch t.Type {
		case "record", "enum":
			return p.namedOrPrimitive(shortAvroName(t.Name))
		case "array":
			item, err := p.fieldType(t.Items)
			if err != nil {
				return resolvedType{}, err
			}
			if item.kind == "record" {
				return resolvedType{kind: "recordArray", name: item.name}, nil
			}
			return resolvedType{kind: "scalar", domain: item.domain,
				warn: "array of scalars flattened to a single-valued attribute"}, nil
		default:
			// Logical types ride on a primitive: {"type":"int","logicalType":"date"}.
			if t.LogicalType != "" {
				return logicalDomain(t.LogicalType, t.Type), nil
			}
			return p.namedOrPrimitive(t.Type)
		}
	case '[':
		var branches []json.RawMessage
		if err := json.Unmarshal(raw, &branches); err != nil {
			return resolvedType{}, err
		}
		var nonNull []json.RawMessage
		sawNull := false
		for _, b := range branches {
			if strings.TrimSpace(string(b)) == `"null"` {
				sawNull = true
				continue
			}
			nonNull = append(nonNull, b)
		}
		if len(nonNull) != 1 {
			return resolvedType{kind: "scalar", domain: "char",
				warn: fmt.Sprintf("union of %d non-null branches defaulted to domain char", len(nonNull))}, nil
		}
		rt, err := p.fieldType(nonNull[0])
		if err != nil {
			return resolvedType{}, err
		}
		rt.nullable = rt.nullable || sawNull
		return rt, nil
	}
	return resolvedType{}, fmt.Errorf("unrecognised type %s", trimmed)
}

func (p *avroParser) namedOrPrimitive(s string) (resolvedType, error) {
	switch p.known[s] {
	case "record":
		return resolvedType{kind: "record", name: s}, nil
	case "enum":
		return resolvedType{kind: "enum", name: s}, nil
	}
	switch s {
	case "int", "long":
		return resolvedType{kind: "scalar", domain: "int"}, nil
	case "float", "double":
		return resolvedType{kind: "scalar", domain: "real"}, nil
	case "string":
		return resolvedType{kind: "scalar", domain: "char"}, nil
	case "boolean":
		return resolvedType{kind: "scalar", domain: "bool"}, nil
	case "bytes":
		return resolvedType{kind: "scalar", domain: "char",
			warn: "bytes mapped to domain char"}, nil
	case "null":
		return resolvedType{kind: "scalar", domain: "char",
			warn: "null type defaulted to domain char"}, nil
	default:
		return resolvedType{}, fmt.Errorf("unknown type %q", s)
	}
}

// logicalDomain maps Avro logical types to ECR domains.
func logicalDomain(logical, base string) resolvedType {
	switch logical {
	case "date", "timestamp-millis", "timestamp-micros", "time-millis", "time-micros":
		return resolvedType{kind: "scalar", domain: "date"}
	case "decimal":
		return resolvedType{kind: "scalar", domain: "real"}
	default:
		rt, err := (&avroParser{known: map[string]string{}}).namedOrPrimitive(base)
		if err != nil {
			return resolvedType{kind: "scalar", domain: "char",
				warn: fmt.Sprintf("unknown logical type %q on unknown base %q defaulted to domain char", logical, base)}
		}
		rt.warn = fmt.Sprintf("unknown logical type %q mapped by its base type %q", logical, base)
		return rt
	}
}

// shortAvroName strips an Avro namespace ("com.example.User" -> "User").
func shortAvroName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

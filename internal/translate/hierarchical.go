package translate

import (
	"fmt"
	"strings"

	"repro/internal/ecr"
)

// Field is one field of a hierarchical segment.
type Field struct {
	Name string
	Type string
	Key  bool // sequence (key) field of the segment
}

// Segment is one segment type of a hierarchical (IMS-style) database: a
// record type with fields and child segment types.
type Segment struct {
	Name     string
	Fields   []Field
	Children []*Segment
}

// Hierarchy is a named forest of segment types.
type Hierarchy struct {
	Name  string
	Roots []*Segment
}

// HierarchicalResult is the outcome of translating a hierarchy.
type HierarchicalResult struct {
	Schema *ecr.Schema
	Notes  []string
}

// FromHierarchical abstracts a hierarchical database into an ECR schema:
// every segment type becomes an entity set (fields become attributes, the
// sequence field the key), and every parent-child arc becomes a binary
// relationship set named <parent>_<child> in which the child participates
// with cardinality (1,1) — a hierarchical child exists under exactly one
// parent occurrence — and the parent with (0,n).
func FromHierarchical(h *Hierarchy) (*HierarchicalResult, error) {
	if h == nil || h.Name == "" {
		return nil, fmt.Errorf("translate: hierarchy with a name is required")
	}
	if len(h.Roots) == 0 {
		return nil, fmt.Errorf("translate: hierarchy %q has no segments", h.Name)
	}
	out := ecr.NewSchema(h.Name)
	res := &HierarchicalResult{Schema: out}
	notef := func(format string, args ...any) {
		res.Notes = append(res.Notes, fmt.Sprintf(format, args...))
	}

	var walk func(seg *Segment, parent *Segment) error
	walk = func(seg *Segment, parent *Segment) error {
		if seg.Name == "" {
			return fmt.Errorf("translate: hierarchy %q has a segment with no name", h.Name)
		}
		if len(seg.Fields) == 0 {
			return fmt.Errorf("translate: segment %q has no fields", seg.Name)
		}
		o := &ecr.ObjectClass{Name: seg.Name, Kind: ecr.KindEntity}
		for _, f := range seg.Fields {
			domain, known := mapDomain(f.Type)
			if !known {
				notef("segment %s: field %s: unknown type %q mapped to domain char", seg.Name, f.Name, f.Type)
			}
			o.Attributes = append(o.Attributes, ecr.Attribute{
				Name:   f.Name,
				Domain: domain,
				Key:    f.Key,
			})
		}
		if err := out.AddObject(o); err != nil {
			return err
		}
		notef("segment %s -> entity set %s", seg.Name, o.Name)
		if parent != nil {
			rs := &ecr.RelationshipSet{
				Name: parent.Name + "_" + seg.Name,
				Participants: []ecr.Participation{
					{Object: parent.Name, Card: ecr.Cardinality{Min: 0, Max: ecr.N}},
					{Object: seg.Name, Card: ecr.Cardinality{Min: 1, Max: 1}},
				},
			}
			if err := out.AddRelationship(rs); err != nil {
				return err
			}
			notef("parent-child %s/%s -> relationship set %s", parent.Name, seg.Name, rs.Name)
		}
		for _, child := range seg.Children {
			if err := walk(child, seg); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range h.Roots {
		if err := walk(root, nil); err != nil {
			return nil, err
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("translate: result invalid: %w", err)
	}
	return res, nil
}

// ParseHierarchy reads the textual segment-tree language:
//
//	hierarchy school
//	segment Dept {
//	    field Dname char key
//	    segment Emp {
//	        field Ename char key
//	        field Salary int
//	    }
//	}
//
// '#' comments run to end of line. Nested "segment" blocks define the
// parent-child structure.
func ParseHierarchy(src string) (*Hierarchy, error) {
	toks, err := hierTokens(src)
	if err != nil {
		return nil, err
	}
	p := &hierParser{toks: toks}
	if !p.acceptWord("hierarchy") {
		return nil, fmt.Errorf("translate: hierarchy: expected 'hierarchy', found %q", p.peek())
	}
	name := p.next()
	if name == "" || name == "{" {
		return nil, fmt.Errorf("translate: hierarchy: missing name")
	}
	h := &Hierarchy{Name: name}
	for !p.eof() {
		if !p.acceptWord("segment") {
			return nil, fmt.Errorf("translate: hierarchy: expected 'segment', found %q", p.peek())
		}
		seg, err := p.parseSegment()
		if err != nil {
			return nil, err
		}
		h.Roots = append(h.Roots, seg)
	}
	if len(h.Roots) == 0 {
		return nil, fmt.Errorf("translate: hierarchy %q has no segments", name)
	}
	return h, nil
}

type hierParser struct {
	toks []string
	pos  int
}

func (p *hierParser) eof() bool { return p.pos >= len(p.toks) }

func (p *hierParser) peek() string {
	if p.eof() {
		return "<eof>"
	}
	return p.toks[p.pos]
}

// next returns the next token, or "" at end of input.
func (p *hierParser) next() string {
	if p.eof() {
		return ""
	}
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *hierParser) acceptWord(w string) bool {
	if !p.eof() && p.toks[p.pos] == w {
		p.pos++
		return true
	}
	return false
}

func (p *hierParser) parseSegment() (*Segment, error) {
	name := p.next()
	if name == "" || name == "{" || name == "}" {
		return nil, fmt.Errorf("translate: hierarchy: bad segment name %q", name)
	}
	seg := &Segment{Name: name}
	if !p.acceptWord("{") {
		return nil, fmt.Errorf("translate: hierarchy: segment %s: expected '{'", name)
	}
	for {
		switch {
		case p.acceptWord("}"):
			return seg, nil
		case p.acceptWord("field"):
			fname := p.next()
			ftype := p.next()
			if fname == "" || ftype == "" || fname == "}" || ftype == "}" {
				return nil, fmt.Errorf("translate: hierarchy: segment %s: bad field", name)
			}
			f := Field{Name: fname, Type: ftype}
			if p.acceptWord("key") {
				f.Key = true
			}
			seg.Fields = append(seg.Fields, f)
		case p.acceptWord("segment"):
			child, err := p.parseSegment()
			if err != nil {
				return nil, err
			}
			seg.Children = append(seg.Children, child)
		case p.eof():
			return nil, fmt.Errorf("translate: hierarchy: segment %s: unexpected end of input", name)
		default:
			return nil, fmt.Errorf("translate: hierarchy: segment %s: unexpected token %q", name, p.peek())
		}
	}
}

func hierTokens(src string) ([]string, error) {
	var toks []string
	for _, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.ReplaceAll(line, "{", " { ")
		line = strings.ReplaceAll(line, "}", " } ")
		toks = append(toks, strings.Fields(line)...)
	}
	return toks, nil
}

package translate

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseSQL reads a small subset of SQL DDL — CREATE TABLE statements with
// column definitions, NOT NULL, PRIMARY KEY (inline or table-level) and
// FOREIGN KEY ... REFERENCES clauses — and builds a relational Database.
// This is the input format of the sit-translate tool. Statements end with
// ';'; '--' comments run to end of line. The database name comes from the
// caller.
func ParseSQL(name, src string) (*Database, error) {
	db := &Database{Name: name}
	toks, err := sqlTokens(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	for !p.eof() {
		if !p.acceptWord("create") {
			return nil, p.errf("expected CREATE, found %q", p.peek())
		}
		if !p.acceptWord("table") {
			return nil, p.errf("expected TABLE, found %q", p.peek())
		}
		t, err := p.parseTable()
		if err != nil {
			return nil, err
		}
		db.Tables = append(db.Tables, t)
	}
	if len(db.Tables) == 0 {
		return nil, fmt.Errorf("translate: sql: no CREATE TABLE statements")
	}
	if err := checkRelational(db); err != nil {
		return nil, err
	}
	return db, nil
}

type sqlParser struct {
	toks []string
	pos  int
}

func (p *sqlParser) eof() bool { return p.pos >= len(p.toks) }

func (p *sqlParser) peek() string {
	if p.eof() {
		return "<eof>"
	}
	return p.toks[p.pos]
}

func (p *sqlParser) next() string {
	t := p.peek()
	if !p.eof() {
		p.pos++
	}
	return t
}

func (p *sqlParser) acceptWord(w string) bool {
	if !p.eof() && strings.EqualFold(p.toks[p.pos], w) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) accept(tok string) bool {
	if !p.eof() && p.toks[p.pos] == tok {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expect(tok string) error {
	if !p.accept(tok) {
		return p.errf("expected %q, found %q", tok, p.peek())
	}
	return nil
}

func (p *sqlParser) errf(format string, args ...any) error {
	return fmt.Errorf("translate: sql: token %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *sqlParser) parseTable() (*Table, error) {
	name := p.next()
	if !isSQLIdent(name) {
		return nil, p.errf("bad table name %q", name)
	}
	t := &Table{Name: name}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptWord("primary"):
			if !p.acceptWord("key") {
				return nil, p.errf("expected KEY after PRIMARY")
			}
			cols, err := p.parseColumnList()
			if err != nil {
				return nil, err
			}
			t.PrimaryKey = cols
		case p.acceptWord("foreign"):
			if !p.acceptWord("key") {
				return nil, p.errf("expected KEY after FOREIGN")
			}
			cols, err := p.parseColumnList()
			if err != nil {
				return nil, err
			}
			if !p.acceptWord("references") {
				return nil, p.errf("expected REFERENCES")
			}
			ref := p.next()
			if !isSQLIdent(ref) {
				return nil, p.errf("bad referenced table %q", ref)
			}
			refCols, err := p.parseColumnList()
			if err != nil {
				return nil, err
			}
			t.ForeignKeys = append(t.ForeignKeys, ForeignKey{Columns: cols, RefTable: ref, RefColumns: refCols})
		default:
			col, inlinePK, err := p.parseColumn()
			if err != nil {
				return nil, err
			}
			t.Columns = append(t.Columns, col)
			if inlinePK {
				t.PrimaryKey = append(t.PrimaryKey, col.Name)
			}
		}
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return t, nil
}

func (p *sqlParser) parseColumn() (Column, bool, error) {
	name := p.next()
	if !isSQLIdent(name) {
		return Column{}, false, p.errf("bad column name %q", name)
	}
	typ := p.next()
	if !isSQLIdent(typ) {
		return Column{}, false, p.errf("bad type %q for column %s", typ, name)
	}
	// Optional length, e.g. VARCHAR ( 40 ).
	if p.accept("(") {
		typ += "("
		for !p.eof() && p.peek() != ")" {
			typ += p.next()
		}
		if err := p.expect(")"); err != nil {
			return Column{}, false, err
		}
		typ += ")"
	}
	col := Column{Name: name, Type: typ}
	inlinePK := false
	for {
		switch {
		case p.acceptWord("not"):
			if !p.acceptWord("null") {
				return Column{}, false, p.errf("expected NULL after NOT")
			}
			col.NotNull = true
		case p.acceptWord("primary"):
			if !p.acceptWord("key") {
				return Column{}, false, p.errf("expected KEY after PRIMARY")
			}
			inlinePK = true
			col.NotNull = true
		default:
			return col, inlinePK, nil
		}
	}
}

func (p *sqlParser) parseColumnList() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c := p.next()
		if !isSQLIdent(c) {
			return nil, p.errf("bad column name %q in list", c)
		}
		cols = append(cols, c)
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func isSQLIdent(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	return unicode.IsLetter(rune(s[0])) || s[0] == '_'
}

// sqlTokens splits the source into identifiers, numbers and the punctuation
// "(", ")", ",", ";".
func sqlTokens(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' || c == ')' || c == ',' || c == ';':
			toks = append(toks, string(c))
			i++
		case isIdentStart(c) || (c >= '0' && c <= '9'):
			j := i
			for j < len(src) && (isIdentStart(src[j]) || (src[j] >= '0' && src[j] <= '9')) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			return nil, fmt.Errorf("translate: sql: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

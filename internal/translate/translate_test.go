package translate

import (
	"strings"
	"testing"

	"repro/internal/ecr"
	"repro/internal/errtest"
)

const universitySQL = `
-- A small university database.
CREATE TABLE Department (
    Dname VARCHAR(40) PRIMARY KEY,
    Budget INT
);

CREATE TABLE Student (
    Sid INT PRIMARY KEY,
    Name VARCHAR(40) NOT NULL,
    GPA REAL,
    Major VARCHAR(40) NOT NULL,
    FOREIGN KEY (Major) REFERENCES Department (Dname)
);

CREATE TABLE Grad_student (
    Sid INT PRIMARY KEY,
    Support_type VARCHAR(20),
    FOREIGN KEY (Sid) REFERENCES Student (Sid)
);

CREATE TABLE Enrolled (
    Sid INT,
    Dname VARCHAR(40),
    Since DATE,
    PRIMARY KEY (Sid, Dname),
    FOREIGN KEY (Sid) REFERENCES Student (Sid),
    FOREIGN KEY (Dname) REFERENCES Department (Dname)
);
`

func parseUniversity(t testing.TB) *Database {
	t.Helper()
	db, err := ParseSQL("uni", universitySQL)
	if err != nil {
		t.Fatalf("ParseSQL: %v", err)
	}
	return db
}

func TestParseSQLStructure(t *testing.T) {
	db := parseUniversity(t)
	if len(db.Tables) != 4 {
		t.Fatalf("tables = %d", len(db.Tables))
	}
	student := db.Table("Student")
	if student == nil {
		t.Fatal("no Student table")
	}
	if len(student.Columns) != 4 {
		t.Errorf("Student columns = %+v", student.Columns)
	}
	if len(student.PrimaryKey) != 1 || student.PrimaryKey[0] != "Sid" {
		t.Errorf("Student PK = %v", student.PrimaryKey)
	}
	if len(student.ForeignKeys) != 1 || student.ForeignKeys[0].RefTable != "Department" {
		t.Errorf("Student FKs = %+v", student.ForeignKeys)
	}
	c, ok := student.Column("Name")
	if !ok || !c.NotNull {
		t.Errorf("Name column = %+v", c)
	}
	enrolled := db.Table("Enrolled")
	if len(enrolled.PrimaryKey) != 2 || len(enrolled.ForeignKeys) != 2 {
		t.Errorf("Enrolled = %+v", enrolled)
	}
}

func TestParseSQLErrors(t *testing.T) {
	cases := []struct{ src, substr string }{
		{"", "no CREATE TABLE"},
		{"DROP TABLE x;", "expected CREATE"},
		{"CREATE VIEW v;", "expected TABLE"},
		{"CREATE TABLE t (a INT", `expected ")"`},
		{"CREATE TABLE t (a INT)", `expected ";"`},
		{"CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES zzz (b));", "unknown table"},
		{"CREATE TABLE t (a INT, PRIMARY KEY (nope));", "primary key column"},
		{"CREATE TABLE t (a INT NOT);", "expected NULL"},
		{"CREATE TABLE t (@ INT);", "unexpected character"},
	}
	for _, c := range cases {
		_, err := ParseSQL("x", c.src)
		if !errtest.Contains(err, c.substr) {
			t.Errorf("ParseSQL(%q) error = %v, want substring %q", c.src, err, c.substr)
		}
	}
}

func TestFromRelationalEntities(t *testing.T) {
	res, err := FromRelational(parseUniversity(t))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schema
	dept := s.Object("Department")
	if dept == nil || dept.Kind != ecr.KindEntity {
		t.Fatalf("Department = %+v", dept)
	}
	if a, ok := dept.Attribute("Dname"); !ok || !a.Key || a.Domain != "char" {
		t.Errorf("Dname = %+v", a)
	}
	if a, ok := dept.Attribute("Budget"); !ok || a.Domain != "int" {
		t.Errorf("Budget = %+v", a)
	}
}

func TestFromRelationalSubtype(t *testing.T) {
	res, err := FromRelational(parseUniversity(t))
	if err != nil {
		t.Fatal(err)
	}
	grad := res.Schema.Object("Grad_student")
	if grad == nil || grad.Kind != ecr.KindCategory {
		t.Fatalf("Grad_student = %+v", grad)
	}
	if len(grad.Parents) != 1 || grad.Parents[0] != "Student" {
		t.Errorf("parents = %v", grad.Parents)
	}
	// The shared key column is inherited, not repeated.
	if _, ok := grad.Attribute("Sid"); ok {
		t.Error("subtype should not repeat the inherited key")
	}
	if _, ok := grad.Attribute("Support_type"); !ok {
		t.Error("Support_type missing")
	}
}

func TestFromRelationalRelationshipTable(t *testing.T) {
	res, err := FromRelational(parseUniversity(t))
	if err != nil {
		t.Fatal(err)
	}
	enr := res.Schema.Relationship("Enrolled")
	if enr == nil {
		t.Fatal("Enrolled relationship missing")
	}
	if len(enr.Participants) != 2 {
		t.Errorf("participants = %+v", enr.Participants)
	}
	if _, ok := enr.Attribute("Since"); !ok {
		t.Error("Since attribute missing")
	}
	if a, _ := enr.Attribute("Since"); a.Domain != "date" {
		t.Errorf("Since domain = %v", a.Domain)
	}
}

func TestFromRelationalImpliedRelationship(t *testing.T) {
	res, err := FromRelational(parseUniversity(t))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schema
	rel := s.Relationship("Student_Department")
	if rel == nil {
		t.Fatalf("implied relationship missing; rels: %v", relNames(s))
	}
	// Major is NOT NULL -> (1,1) on the student side.
	p, ok := rel.Participant("Student")
	if !ok || p.Card != (ecr.Cardinality{Min: 1, Max: 1}) {
		t.Errorf("Student participation = %+v", p)
	}
	p, ok = rel.Participant("Department")
	if !ok || p.Card != (ecr.Cardinality{Min: 0, Max: ecr.N}) {
		t.Errorf("Department participation = %+v", p)
	}
	// The FK column itself is not duplicated as an entity attribute.
	if _, ok := s.Object("Student").Attribute("Major"); ok {
		t.Error("FK column should be represented by the relationship only")
	}
}

func TestFromRelationalNotesAndValidity(t *testing.T) {
	res, err := FromRelational(parseUniversity(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schema.Validate(); err != nil {
		t.Errorf("translated schema invalid: %v", err)
	}
	joined := strings.Join(res.Notes, "\n")
	for _, want := range []string{"entity set Department", "category of Student", "relationship set over"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}
}

func TestFromRelationalNilAndInvalid(t *testing.T) {
	if _, err := FromRelational(nil); err == nil {
		t.Error("nil db should fail")
	}
	db := &Database{Name: "x", Tables: []*Table{{Name: "t"}}}
	if _, err := FromRelational(db); err == nil {
		t.Error("table without columns should fail")
	}
}

func TestFromRelationalNullableFK(t *testing.T) {
	db, err := ParseSQL("x", `
CREATE TABLE A (Id INT PRIMARY KEY);
CREATE TABLE B (Id INT PRIMARY KEY, Aref INT, FOREIGN KEY (Aref) REFERENCES A (Id));
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FromRelational(db)
	if err != nil {
		t.Fatal(err)
	}
	rel := res.Schema.Relationship("B_A")
	p, ok := rel.Participant("B")
	if !ok || p.Card.Min != 0 {
		t.Errorf("nullable FK should give (0,1): %+v", p)
	}
}

func TestMapDomain(t *testing.T) {
	cases := []struct {
		in    string
		want  string
		known bool
	}{
		{"INT", "int", true},
		{"VARCHAR(40)", "char", true},
		{"NUMERIC(10,2)", "real", true},
		{"DECIMAL(8,3)", "real", true},
		{"REAL", "real", true},
		{"DATE", "date", true},
		{"BOOLEAN", "bool", true},
		{"WEIRD", "char", false},
		{"VARCHAR2", "char", false},
		{"VARCHAR2(30)", "char", false},
		{"NVARCHAR(20)", "char", false},
		{"", "char", false},
	}
	for _, c := range cases {
		got, known := mapDomain(c.in)
		if got != c.want || known != c.known {
			t.Errorf("mapDomain(%q) = %q, %v, want %q, %v", c.in, got, known, c.want, c.known)
		}
	}
}

// TestUnknownTypeWarning: an unrecognised column type must surface as a
// note on the translation result, not vanish into the char default.
func TestUnknownTypeWarning(t *testing.T) {
	db, err := ParseSQL("legacy", `
CREATE TABLE Part (
    Pno VARCHAR2(10) NOT NULL,
    Weight NUMERIC(10,2),
    Blob_data LONGRAW,
    PRIMARY KEY (Pno)
);`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FromRelational(db)
	if err != nil {
		t.Fatal(err)
	}
	attr := func(name string) ecr.Attribute {
		for _, a := range res.Schema.Object("Part").Attributes {
			if a.Name == name {
				return a
			}
		}
		t.Fatalf("attribute %s missing", name)
		return ecr.Attribute{}
	}
	if a := attr("Weight"); a.Domain != "real" {
		t.Errorf("NUMERIC(10,2) should map to real, got %q", a.Domain)
	}
	if a := attr("Pno"); a.Domain != "char" {
		t.Errorf("VARCHAR2 should default to char, got %q", a.Domain)
	}
	warned := map[string]bool{}
	for _, n := range res.Notes {
		for _, col := range []string{"Pno", "Blob_data", "Weight"} {
			if strings.Contains(n, "unknown SQL type") && strings.Contains(n, col) {
				warned[col] = true
			}
		}
	}
	if !warned["Pno"] || !warned["Blob_data"] {
		t.Errorf("expected unknown-type warnings for Pno and Blob_data, notes: %v", res.Notes)
	}
	if warned["Weight"] {
		t.Errorf("NUMERIC(10,2) is a known type; no warning expected, notes: %v", res.Notes)
	}
}

const schoolHierarchy = `
# A small IMS-style database.
hierarchy school
segment Dept {
    field Dname char key
    field Budget int
    segment Emp {
        field Ename char key
        field Salary int
        segment Dependent {
            field Dep_name char key
        }
    }
    segment Project {
        field Pname char key
    }
}
`

func TestParseHierarchy(t *testing.T) {
	h, err := ParseHierarchy(schoolHierarchy)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "school" || len(h.Roots) != 1 {
		t.Fatalf("h = %+v", h)
	}
	dept := h.Roots[0]
	if dept.Name != "Dept" || len(dept.Fields) != 2 || len(dept.Children) != 2 {
		t.Fatalf("Dept = %+v", dept)
	}
	if !dept.Fields[0].Key || dept.Fields[1].Key {
		t.Errorf("key flags = %+v", dept.Fields)
	}
	if dept.Children[0].Name != "Emp" || len(dept.Children[0].Children) != 1 {
		t.Errorf("Emp = %+v", dept.Children[0])
	}
}

func TestParseHierarchyErrors(t *testing.T) {
	cases := []struct{ src, substr string }{
		{"", "expected 'hierarchy'"},
		{"hierarchy", "missing name"},
		{"hierarchy x", "no segments"},
		{"hierarchy x segment S { field", "bad field"},
		{"hierarchy x segment S {", "unexpected end"},
		{"hierarchy x segment S { bogus }", "unexpected token"},
	}
	for _, c := range cases {
		_, err := ParseHierarchy(c.src)
		if !errtest.Contains(err, c.substr) {
			t.Errorf("ParseHierarchy(%q) error = %v, want %q", c.src, err, c.substr)
		}
	}
}

func TestFromHierarchical(t *testing.T) {
	h, err := ParseHierarchy(schoolHierarchy)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FromHierarchical(h)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schema
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Dept", "Emp", "Dependent", "Project"} {
		if s.Object(name) == nil {
			t.Errorf("entity %s missing", name)
		}
	}
	rel := s.Relationship("Dept_Emp")
	if rel == nil {
		t.Fatalf("Dept_Emp missing; rels = %v", relNames(s))
	}
	p, _ := rel.Participant("Emp")
	if p.Card != (ecr.Cardinality{Min: 1, Max: 1}) {
		t.Errorf("child participation = %+v", p)
	}
	p, _ = rel.Participant("Dept")
	if p.Card != (ecr.Cardinality{Min: 0, Max: ecr.N}) {
		t.Errorf("parent participation = %+v", p)
	}
	if s.Relationship("Emp_Dependent") == nil || s.Relationship("Dept_Project") == nil {
		t.Errorf("relationships = %v", relNames(s))
	}
	if len(res.Notes) == 0 {
		t.Error("no notes")
	}
}

func TestFromHierarchicalErrors(t *testing.T) {
	if _, err := FromHierarchical(nil); err == nil {
		t.Error("nil hierarchy should fail")
	}
	if _, err := FromHierarchical(&Hierarchy{Name: "x"}); err == nil {
		t.Error("empty hierarchy should fail")
	}
	h := &Hierarchy{Name: "x", Roots: []*Segment{{Name: "S"}}}
	if _, err := FromHierarchical(h); err == nil {
		t.Error("segment without fields should fail")
	}
	dup := &Hierarchy{Name: "x", Roots: []*Segment{
		{Name: "S", Fields: []Field{{Name: "k", Type: "int", Key: true}}},
		{Name: "S", Fields: []Field{{Name: "k", Type: "int", Key: true}}},
	}}
	if _, err := FromHierarchical(dup); err == nil {
		t.Error("duplicate segments should fail")
	}
}

func relNames(s *ecr.Schema) []string {
	var out []string
	for _, r := range s.Relationships {
		out = append(out, r.Name)
	}
	return out
}

// TestParsersNeverPanic: arbitrary inputs must error, not panic.
func TestParsersNeverPanic(t *testing.T) {
	inputs := []string{
		"", "CREATE", "CREATE TABLE", "CREATE TABLE t", "CREATE TABLE t (",
		"CREATE TABLE t (a", "CREATE TABLE t (a INT,", "CREATE TABLE t (a INT ( 4",
		"CREATE TABLE t (PRIMARY", "CREATE TABLE t (FOREIGN KEY",
		"hierarchy", "hierarchy h segment", "hierarchy h segment S",
		"hierarchy h segment S { field f", "hierarchy h segment S { segment",
		"hierarchy h segment S { { } }",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseSQL("x", src)
			_, _ = ParseHierarchy(src)
		}()
	}
}

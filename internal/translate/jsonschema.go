package translate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ecr"
)

// jsonSchemaFrontend abstracts a JSON Schema document into ECR:
//
//   - the root object schema (when it has properties) and every entry of
//     $defs/definitions becomes an entity set; scalar properties become
//     attributes (integer -> int, number -> real, boolean -> bool,
//     string -> char, string with format date/date-time -> date), with the
//     "x-key": true extension keyword marking key attributes;
//   - a property holding a $ref to another definition becomes a binary
//     relationship set <owner>_<target>: the owner participates (1,1) when
//     the property is required, (0,1) otherwise; the target (0,n). An array
//     whose items are a $ref yields (0,n) on both sides;
//   - a definition of the form allOf: [{$ref: Parent}, {properties...}] —
//     the required-subset idiom — becomes a category of Parent;
//   - a string property constrained by enum additionally yields one
//     category per symbol, named <Entity>_<symbol>, over the owning entity.
type jsonSchemaFrontend struct{}

func (jsonSchemaFrontend) Name() string { return "jsonschema" }

func (jsonSchemaFrontend) Sniff(src []byte) bool {
	v, ok := jsonRoot(src)
	if !ok {
		return false
	}
	obj, ok := v.(map[string]any)
	if !ok {
		return false
	}
	if _, ok := obj["$schema"]; ok {
		return true
	}
	if _, ok := obj["$defs"]; ok {
		return true
	}
	if _, ok := obj["definitions"]; ok {
		return true
	}
	_, hasProps := obj["properties"]
	return obj["type"] == "object" && hasProps
}

// jsDocument is the subset of JSON Schema the frontend understands.
type jsDocument struct {
	Title       string             `json:"title"`
	Type        string             `json:"type"`
	Properties  map[string]*jsNode `json:"properties"`
	Required    []string           `json:"required"`
	Defs        map[string]*jsNode `json:"$defs"`
	Definitions map[string]*jsNode `json:"definitions"`
}

// jsNode is any nested schema: a definition, a property, or an allOf arm.
type jsNode struct {
	Type       string             `json:"type"`
	Format     string             `json:"format"`
	Ref        string             `json:"$ref"`
	Enum       []string           `json:"enum"`
	Items      *jsNode            `json:"items"`
	Properties map[string]*jsNode `json:"properties"`
	Required   []string           `json:"required"`
	AllOf      []*jsNode          `json:"allOf"`
	XKey       bool               `json:"x-key"`
}

func (n *jsNode) isRequired(name string) bool {
	for _, r := range n.Required {
		if r == name {
			return true
		}
	}
	return false
}

func (jsonSchemaFrontend) Parse(name string, src []byte) (*Result, error) {
	var doc jsDocument
	dec := json.NewDecoder(bytes.NewReader(src))
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("translate: jsonschema: %w", err)
	}
	// The document's own title wins; the argument is only a fallback.
	schemaName := doc.Title
	if schemaName == "" {
		schemaName = name
	}
	if schemaName == "" {
		schemaName = "jsonschema"
	}
	out := ecr.NewSchema(schemaName)
	res := &Result{Schemas: []*ecr.Schema{out}}
	notef := func(format string, args ...any) {
		res.Notes = append(res.Notes, fmt.Sprintf(format, args...))
	}

	// Collect the named object schemas: $defs/definitions entries, plus the
	// root itself when it defines properties (named after the document).
	defs := map[string]*jsNode{}
	var order []string
	add := func(defName string, node *jsNode) {
		if _, ok := defs[defName]; !ok {
			defs[defName] = node
			order = append(order, defName)
		}
	}
	if len(doc.Properties) > 0 {
		add(rootDefName(doc.Title, schemaName), &jsNode{
			Type:       doc.Type,
			Properties: doc.Properties,
			Required:   doc.Required,
		})
	}
	for _, table := range []map[string]*jsNode{doc.Defs, doc.Definitions} {
		names := make([]string, 0, len(table))
		for defName := range table {
			names = append(names, defName)
		}
		sort.Strings(names)
		for _, defName := range names {
			add(defName, table[defName])
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("translate: jsonschema: no object schemas (need properties, $defs or definitions)")
	}

	type pendingRef struct {
		owner, prop, target string
		card                ecr.Cardinality
	}
	type pendingCat struct {
		name, parent string
	}
	var refs []pendingRef
	var cats []pendingCat

	// Pass 1: entity sets and categories; relationship endpoints are
	// collected and emitted after every class exists.
	for _, defName := range order {
		node := defs[defName]
		parent, body, isCat := categoryParts(node)
		kind, label := ecr.KindEntity, "entity set"
		if isCat {
			kind, label = ecr.KindCategory, fmt.Sprintf("category of %s", parent)
		} else {
			body = node
		}
		o := &ecr.ObjectClass{Name: defName, Kind: kind}
		if isCat {
			o.Parents = []string{parent}
		}
		props := make([]string, 0, len(body.Properties))
		for propName := range body.Properties {
			props = append(props, propName)
		}
		sort.Strings(props)
		for _, propName := range props {
			p := body.Properties[propName]
			switch {
			case p.Ref != "":
				target, err := refTarget(p.Ref)
				if err != nil {
					return nil, err
				}
				minCard := 0
				if body.isRequired(propName) {
					minCard = 1
				}
				refs = append(refs, pendingRef{
					owner: defName, prop: propName, target: target,
					card: ecr.Cardinality{Min: minCard, Max: 1},
				})
			case p.Type == "array" && p.Items != nil && p.Items.Ref != "":
				target, err := refTarget(p.Items.Ref)
				if err != nil {
					return nil, err
				}
				refs = append(refs, pendingRef{
					owner: defName, prop: propName, target: target,
					card: ecr.Cardinality{Min: 0, Max: ecr.N},
				})
			default:
				domain, warn := jsDomain(p)
				if warn != "" {
					notef("definition %s: property %s: %s", defName, propName, warn)
				}
				o.Attributes = append(o.Attributes, ecr.Attribute{
					Name:   propName,
					Domain: domain,
					Key:    p.XKey,
				})
				for _, sym := range p.Enum {
					cats = append(cats, pendingCat{
						name:   defName + "_" + sanitizeName(sym),
						parent: defName,
					})
				}
			}
		}
		if err := out.AddObject(o); err != nil {
			return nil, err
		}
		notef("definition %s -> %s", defName, label)
	}

	// Enum-symbol categories (after every entity exists; dedup by name).
	for _, c := range cats {
		if out.Object(c.name) != nil {
			continue
		}
		o := &ecr.ObjectClass{Name: c.name, Kind: ecr.KindCategory, Parents: []string{c.parent}}
		if err := out.AddObject(o); err != nil {
			return nil, err
		}
		notef("enum symbol -> category %s of %s", c.name, c.parent)
	}

	// Pass 2: relationship sets from $ref properties.
	for _, r := range refs {
		if out.Object(r.target) == nil {
			return nil, fmt.Errorf("translate: jsonschema: %s.%s references undefined schema %q", r.owner, r.prop, r.target)
		}
		rs := &ecr.RelationshipSet{
			Name: r.owner + "_" + r.target,
			Participants: []ecr.Participation{
				{Object: r.owner, Card: r.card},
				{Object: r.target, Card: ecr.Cardinality{Min: 0, Max: ecr.N}},
			},
		}
		if r.owner == r.target {
			// A self-reference needs roles to tell the sides apart.
			rs.Participants[0].Role = sanitizeName(r.prop)
			rs.Participants[1].Role = "of"
		}
		if out.Relationship(rs.Name) != nil {
			rs.Name = rs.Name + "_" + sanitizeName(r.prop)
		}
		if err := out.AddRelationship(rs); err != nil {
			return nil, err
		}
		notef("$ref property %s.%s -> relationship set %s", r.owner, r.prop, rs.Name)
	}

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("translate: jsonschema: result invalid: %w", err)
	}
	return res, nil
}

// categoryParts recognises the required-subset idiom
// allOf: [{$ref: Parent}, {object body}] and returns its pieces.
func categoryParts(node *jsNode) (parent string, body *jsNode, ok bool) {
	if len(node.AllOf) != 2 {
		return "", nil, false
	}
	refArm, bodyArm := node.AllOf[0], node.AllOf[1]
	if refArm.Ref == "" && bodyArm.Ref != "" {
		refArm, bodyArm = bodyArm, refArm
	}
	if refArm.Ref == "" || bodyArm.Ref != "" {
		return "", nil, false
	}
	target, err := refTarget(refArm.Ref)
	if err != nil {
		return "", nil, false
	}
	return target, bodyArm, true
}

// refTarget resolves a local JSON pointer ("#/$defs/Name",
// "#/definitions/Name" or plain "#/Name") to the definition name.
func refTarget(ref string) (string, error) {
	if !strings.HasPrefix(ref, "#/") {
		return "", fmt.Errorf("translate: jsonschema: only local $ref supported, got %q", ref)
	}
	parts := strings.Split(strings.TrimPrefix(ref, "#/"), "/")
	name := parts[len(parts)-1]
	if name == "" {
		return "", fmt.Errorf("translate: jsonschema: bad $ref %q", ref)
	}
	return name, nil
}

// jsDomain maps a scalar property schema to an ECR domain, with a warning
// for types the mapping does not recognise.
func jsDomain(p *jsNode) (domain, warn string) {
	switch p.Type {
	case "integer":
		return "int", ""
	case "number":
		return "real", ""
	case "boolean":
		return "bool", ""
	case "string":
		switch p.Format {
		case "date", "date-time", "time":
			return "date", ""
		}
		return "char", ""
	case "", "null", "object", "array":
		return "char", fmt.Sprintf("unmappable type %q defaulted to domain char", p.Type)
	default:
		return "char", fmt.Sprintf("unknown type %q defaulted to domain char", p.Type)
	}
}

// rootDefName names the entity built from the root object schema.
func rootDefName(title, schemaName string) string {
	if title != "" {
		return sanitizeName(title)
	}
	return sanitizeName(schemaName)
}

// sanitizeName folds a free-form label (enum symbol, document title) into an
// identifier: runs of non-alphanumerics collapse to '_'.
func sanitizeName(s string) string {
	var b strings.Builder
	lastUnder := false
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnder = false
		default:
			if !lastUnder && b.Len() > 0 {
				b.WriteByte('_')
			}
			lastUnder = true
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

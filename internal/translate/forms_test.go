package translate

import (
	"fmt"
	"testing"

	"repro/internal/ecr"
	"repro/internal/workload"
)

// TestFourFrontendsAgree renders generated conceptual schemas in the four
// frontend languages and asserts every rendering abstracts to the same ECR
// schema (ecr.Diff empty against the generator's expected schema). This is
// the cross-frontend equivalence property the registry exists for: a schema
// owner should get the same integration behaviour regardless of which
// definition language they upload.
func TestFourFrontendsAgree(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := workload.DefaultFormsConfig(seed)
			if seed%2 == 0 {
				cfg.Objects = 12
				cfg.Refs = 15
			}
			forms, err := workload.GenerateForms(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sources := map[string]string{
				"dictionary": forms.Dictionary,
				"sql":        forms.SQL,
				"jsonschema": forms.JSONSchema,
				"avro":       forms.Avro,
			}
			for format, src := range sources {
				res, used, err := Parse(format, forms.Name, []byte(src))
				if err != nil {
					t.Fatalf("%s: parse: %v\nsource:\n%s", format, err, src)
				}
				if used != format {
					t.Fatalf("explicit format %q resolved to %q", format, used)
				}
				if len(res.Schemas) != 1 {
					t.Fatalf("%s: %d schemas", format, len(res.Schemas))
				}
				if d := ecr.Diff(forms.Expected, res.Schemas[0]); len(d) != 0 {
					t.Errorf("%s disagrees with expected ECR:\n%v", format, d)
				}
				// The rendering must also be recognized without an explicit
				// format name.
				detected, ok := Detect([]byte(src))
				if !ok || detected.Name() != format {
					t.Errorf("%s rendering sniffed as %v", format, detected)
				}
			}
		})
	}
}

// Package translate implements the schema translation substrate the paper
// relies on: before integration, component schemas defined in conventional
// data models must be mapped into the ECR model. Navathe and Awong (1987)
// describe procedures for abstracting relational and hierarchical schemas
// into a semantic model; this package implements both directions of entry —
// a relational database (tables, keys, foreign keys) and a hierarchical
// database (segment trees) — each with a small textual definition language
// and a translator producing a validated ECR schema plus notes explaining
// each abstraction decision.
package translate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ecr"
)

// Column is one column of a relational table.
type Column struct {
	Name    string
	Type    string
	NotNull bool
}

// ForeignKey relates columns of a table to the primary key of another.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Table is one relational table.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
}

// Column returns the named column and whether it exists.
func (t *Table) Column(name string) (Column, bool) {
	for _, c := range t.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

func (t *Table) isKeyColumn(name string) bool {
	for _, k := range t.PrimaryKey {
		if k == name {
			return true
		}
	}
	return false
}

// Database is a named collection of relational tables.
type Database struct {
	Name   string
	Tables []*Table
}

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table {
	for _, t := range d.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// RelationalResult is the outcome of translating a relational database.
type RelationalResult struct {
	Schema *ecr.Schema
	// Notes log, per table, the abstraction decision applied (entity,
	// relationship table, subtype, implied relationship, dependent
	// entity) — the kind of interrogation record Navathe & Awong's
	// procedure produces.
	Notes []string
}

// FromRelational abstracts a relational database into an ECR schema,
// following the classification rules of the Navathe & Awong procedure:
//
//   - a table whose primary key is wholly composed of two or more foreign
//     keys is a relationship table: it becomes a relationship set between
//     the referenced entity sets, its non-key columns becoming relationship
//     attributes;
//   - a table whose primary key is a single foreign key is a subtype: it
//     becomes a category of the referenced entity set;
//   - every other table becomes an entity set, its columns attributes and
//     its primary-key columns key attributes;
//   - a foreign key of an entity table outside its primary key implies a
//     binary relationship set (named <table>_<reftable>) with cardinality
//     (1,1) on the referencing side when the column is NOT NULL, (0,1)
//     otherwise, and (0,n) on the referenced side.
func FromRelational(db *Database) (*RelationalResult, error) {
	if db == nil || db.Name == "" {
		return nil, fmt.Errorf("translate: database with a name is required")
	}
	if err := checkRelational(db); err != nil {
		return nil, err
	}
	out := ecr.NewSchema(db.Name)
	res := &RelationalResult{Schema: out}
	notef := func(format string, args ...any) {
		res.Notes = append(res.Notes, fmt.Sprintf(format, args...))
	}

	kindOf := map[string]string{} // table -> "entity" | "relationship" | "subtype"
	for _, t := range db.Tables {
		switch {
		case isRelationshipTable(t):
			kindOf[t.Name] = "relationship"
		case isSubtypeTable(t):
			kindOf[t.Name] = "subtype"
		default:
			kindOf[t.Name] = "entity"
		}
	}

	// Pass 1: entity sets and subtypes (object classes must exist before
	// relationship sets reference them).
	for _, t := range db.Tables {
		switch kindOf[t.Name] {
		case "entity":
			o := &ecr.ObjectClass{Name: t.Name, Kind: ecr.KindEntity}
			fkCols := foreignKeyColumns(t)
			for _, c := range t.Columns {
				if fkCols[c.Name] && !t.isKeyColumn(c.Name) {
					continue // represented by an implied relationship
				}
				domain, known := mapDomain(c.Type)
				if !known {
					notef("table %s: column %s: unknown SQL type %q mapped to domain char", t.Name, c.Name, c.Type)
				}
				o.Attributes = append(o.Attributes, ecr.Attribute{
					Name:   c.Name,
					Domain: domain,
					Key:    t.isKeyColumn(c.Name),
				})
			}
			if err := out.AddObject(o); err != nil {
				return nil, err
			}
			notef("table %s -> entity set %s", t.Name, o.Name)
		case "subtype":
			fk := t.ForeignKeys[0]
			o := &ecr.ObjectClass{Name: t.Name, Kind: ecr.KindCategory, Parents: []string{fk.RefTable}}
			for _, c := range t.Columns {
				if t.isKeyColumn(c.Name) {
					continue // inherited identity
				}
				domain, known := mapDomain(c.Type)
				if !known {
					notef("table %s: column %s: unknown SQL type %q mapped to domain char", t.Name, c.Name, c.Type)
				}
				o.Attributes = append(o.Attributes, ecr.Attribute{
					Name:   c.Name,
					Domain: domain,
				})
			}
			if err := out.AddObject(o); err != nil {
				return nil, err
			}
			notef("table %s -> category of %s (primary key references its key)", t.Name, fk.RefTable)
		}
	}

	// Pass 2: relationship tables and implied relationships.
	for _, t := range db.Tables {
		switch kindOf[t.Name] {
		case "relationship":
			rs := &ecr.RelationshipSet{Name: t.Name}
			for _, fk := range t.ForeignKeys {
				rs.Participants = append(rs.Participants, ecr.Participation{
					Object: fk.RefTable,
					Card:   ecr.Cardinality{Min: 0, Max: ecr.N},
				})
			}
			fkCols := foreignKeyColumns(t)
			for _, c := range t.Columns {
				if fkCols[c.Name] {
					continue
				}
				domain, known := mapDomain(c.Type)
				if !known {
					notef("table %s: column %s: unknown SQL type %q mapped to domain char", t.Name, c.Name, c.Type)
				}
				rs.Attributes = append(rs.Attributes, ecr.Attribute{
					Name:   c.Name,
					Domain: domain,
				})
			}
			if err := out.AddRelationship(rs); err != nil {
				return nil, err
			}
			notef("table %s -> relationship set over %s", t.Name, joinParticipants(rs))
		case "entity":
			for _, fk := range t.ForeignKeys {
				if allInPrimaryKey(t, fk) {
					continue
				}
				minCard := 0
				if colsNotNull(t, fk.Columns) {
					minCard = 1
				}
				rs := &ecr.RelationshipSet{
					Name: t.Name + "_" + fk.RefTable,
					Participants: []ecr.Participation{
						{Object: t.Name, Card: ecr.Cardinality{Min: minCard, Max: 1}},
						{Object: fk.RefTable, Card: ecr.Cardinality{Min: 0, Max: ecr.N}},
					},
				}
				if out.Relationship(rs.Name) != nil {
					rs.Name = rs.Name + "_" + strings.Join(fk.Columns, "_")
				}
				if err := out.AddRelationship(rs); err != nil {
					return nil, err
				}
				notef("foreign key %s(%s) -> relationship set %s", t.Name, strings.Join(fk.Columns, ","), rs.Name)
			}
		}
	}

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("translate: result invalid: %w", err)
	}
	return res, nil
}

func checkRelational(db *Database) error {
	seen := map[string]bool{}
	for _, t := range db.Tables {
		if t.Name == "" {
			return fmt.Errorf("translate: table with empty name")
		}
		if seen[t.Name] {
			return fmt.Errorf("translate: duplicate table %q", t.Name)
		}
		seen[t.Name] = true
		if len(t.Columns) == 0 {
			return fmt.Errorf("translate: table %q has no columns", t.Name)
		}
		for _, k := range t.PrimaryKey {
			if _, ok := t.Column(k); !ok {
				return fmt.Errorf("translate: table %q: primary key column %q missing", t.Name, k)
			}
		}
		for _, fk := range t.ForeignKeys {
			for _, c := range fk.Columns {
				if _, ok := t.Column(c); !ok {
					return fmt.Errorf("translate: table %q: foreign key column %q missing", t.Name, c)
				}
			}
			if db.Table(fk.RefTable) == nil {
				return fmt.Errorf("translate: table %q references unknown table %q", t.Name, fk.RefTable)
			}
		}
	}
	return nil
}

// isRelationshipTable reports whether every primary-key column belongs to a
// foreign key and at least two foreign keys are involved in the key.
func isRelationshipTable(t *Table) bool {
	if len(t.PrimaryKey) == 0 || len(t.ForeignKeys) < 2 {
		return false
	}
	keyFKs := 0
	covered := map[string]bool{}
	for _, fk := range t.ForeignKeys {
		inKey := true
		for _, c := range fk.Columns {
			if !t.isKeyColumn(c) {
				inKey = false
				break
			}
		}
		if inKey {
			keyFKs++
			for _, c := range fk.Columns {
				covered[c] = true
			}
		}
	}
	if keyFKs < 2 {
		return false
	}
	for _, k := range t.PrimaryKey {
		if !covered[k] {
			return false
		}
	}
	return true
}

// isSubtypeTable reports whether the primary key is exactly one foreign key
// (identity shared with the referenced table).
func isSubtypeTable(t *Table) bool {
	if len(t.PrimaryKey) == 0 || len(t.ForeignKeys) == 0 {
		return false
	}
	for _, fk := range t.ForeignKeys {
		if len(fk.Columns) != len(t.PrimaryKey) {
			continue
		}
		match := true
		cols := append([]string(nil), fk.Columns...)
		keys := append([]string(nil), t.PrimaryKey...)
		sort.Strings(cols)
		sort.Strings(keys)
		for i := range cols {
			if cols[i] != keys[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func foreignKeyColumns(t *Table) map[string]bool {
	m := map[string]bool{}
	for _, fk := range t.ForeignKeys {
		for _, c := range fk.Columns {
			m[c] = true
		}
	}
	return m
}

func allInPrimaryKey(t *Table, fk ForeignKey) bool {
	for _, c := range fk.Columns {
		if !t.isKeyColumn(c) {
			return false
		}
	}
	return true
}

func colsNotNull(t *Table, cols []string) bool {
	for _, name := range cols {
		c, ok := t.Column(name)
		if !ok || !c.NotNull {
			return false
		}
	}
	return true
}

func joinParticipants(rs *ecr.RelationshipSet) string {
	var parts []string
	for _, p := range rs.Participants {
		parts = append(parts, p.Object)
	}
	return strings.Join(parts, ", ")
}

// mapDomain converts a SQL-ish column type to an ECR attribute domain.
// Parameterized forms (NUMERIC(10,2), VARCHAR(40)) map by their base type.
// known is false when the type is unrecognised and the char default was
// applied — callers turn that into a warning note rather than silently
// losing the declared type.
func mapDomain(sqlType string) (domain string, known bool) {
	t := strings.ToLower(sqlType)
	if i := strings.IndexByte(t, '('); i >= 0 {
		t = t[:i]
	}
	switch t {
	case "int", "integer", "smallint", "bigint", "serial":
		return "int", true
	case "float", "real", "double", "decimal", "numeric":
		return "real", true
	case "date", "time", "timestamp", "datetime":
		return "date", true
	case "char", "varchar", "text", "string", "clob":
		return "char", true
	case "bool", "boolean", "bit":
		return "bool", true
	default:
		return "char", false
	}
}

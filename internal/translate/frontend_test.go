package translate

import (
	"strings"
	"testing"

	"repro/internal/ecr"
)

// personnelJSONSchema is the JSON Schema running sample: three entity
// definitions, a required-subset category, an enum, a required $ref, a
// nullable $ref (absent from required) and an array-of-$ref.
const personnelJSONSchema = `{
  "$schema": "https://json-schema.org/draft/2020-12/schema",
  "title": "personnel",
  "$defs": {
    "Department": {
      "type": "object",
      "properties": {
        "Dname": {"type": "string", "x-key": true},
        "Budget": {"type": "integer"}
      }
    },
    "Employee": {
      "type": "object",
      "properties": {
        "Eno": {"type": "integer", "x-key": true},
        "Name": {"type": "string"},
        "Hired": {"type": "string", "format": "date"},
        "Grade": {"type": "string", "enum": ["junior", "senior"]},
        "dept": {"$ref": "#/$defs/Department"},
        "projects": {"type": "array", "items": {"$ref": "#/$defs/Project"}}
      },
      "required": ["Eno", "dept"]
    },
    "Project": {
      "type": "object",
      "properties": {
        "Pname": {"type": "string", "x-key": true}
      }
    },
    "Manager": {
      "allOf": [
        {"$ref": "#/$defs/Employee"},
        {"type": "object", "properties": {"Bonus": {"type": "number"}}}
      ]
    }
  }
}`

// personnelAvro is the Avro running sample: the same shape as the JSON
// Schema sample plus a self-referencing nullable union and a logical date.
const personnelAvro = `[
  {"type": "record", "name": "Department", "fields": [
    {"name": "Dname", "type": "string", "key": true},
    {"name": "Budget", "type": "int"}
  ]},
  {"type": "record", "name": "Employee", "fields": [
    {"name": "Eno", "type": "long", "key": true},
    {"name": "Hired", "type": {"type": "int", "logicalType": "date"}},
    {"name": "Grade", "type": {"type": "enum", "name": "Grade", "symbols": ["junior", "senior"]}},
    {"name": "dept", "type": "Department"},
    {"name": "mentor", "type": ["null", "Employee"]},
    {"name": "projects", "type": {"type": "array", "items": "Project"}}
  ]},
  {"type": "record", "name": "Project", "fields": [
    {"name": "Pname", "type": "string", "key": true}
  ]}
]`

func TestRegistryFormats(t *testing.T) {
	want := []string{"dictionary", "sql", "hierarchical", "avro", "jsonschema"}
	got := Formats()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Formats() = %v, want %v", got, want)
	}
	for _, name := range want {
		f, ok := Lookup(name)
		if !ok || f.Name() != name {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
	if _, ok := Lookup("xml"); ok {
		t.Error("Lookup of unregistered format succeeded")
	}
}

func TestDetect(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"ddl", "# comment\nschema sc1\nentity E { attr A: int key }", "dictionary"},
		{"ecr-json", `{"name": "s", "objects": [{"name": "E", "kind": "E", "attributes": [{"name": "A", "domain": "int", "key": true}]}]}`, "dictionary"},
		{"sql", universitySQL, "sql"},
		{"hier", schoolHierarchy, "hierarchical"},
		{"jsonschema", personnelJSONSchema, "jsonschema"},
		{"jsonschema-bare", `{"type": "object", "properties": {"a": {"type": "integer"}}}`, "jsonschema"},
		{"avro", personnelAvro, "avro"},
		{"avro-single", `{"type": "record", "name": "R", "fields": [{"name": "a", "type": "int"}]}`, "avro"},
	}
	for _, c := range cases {
		f, ok := Detect([]byte(c.src))
		if !ok {
			t.Errorf("%s: no frontend detected", c.name)
			continue
		}
		if f.Name() != c.want {
			t.Errorf("%s: detected %q, want %q", c.name, f.Name(), c.want)
		}
		// An explicit-format parse and a sniffed parse must agree.
		res, used, err := Parse("", c.name, []byte(c.src))
		if err != nil {
			t.Errorf("%s: sniffed parse: %v", c.name, err)
			continue
		}
		if used != c.want || len(res.Schemas) == 0 {
			t.Errorf("%s: sniffed parse used %q with %d schemas", c.name, used, len(res.Schemas))
		}
	}
	if _, ok := Detect([]byte("garbage input ~~~")); ok {
		t.Error("Detect accepted garbage")
	}
	if _, _, err := Parse("", "x", []byte("garbage input ~~~")); err == nil {
		t.Error("Parse of undetectable input succeeded")
	}
	if _, _, err := Parse("cobol", "x", []byte("whatever")); err == nil {
		t.Error("Parse with unknown explicit format succeeded")
	}
}

func TestJSONSchemaFrontend(t *testing.T) {
	res, used, err := Parse("jsonschema", "", []byte(personnelJSONSchema))
	if err != nil {
		t.Fatal(err)
	}
	if used != "jsonschema" || len(res.Schemas) != 1 {
		t.Fatalf("used=%q schemas=%d", used, len(res.Schemas))
	}
	s := res.Schemas[0]
	if s.Name != "personnel" {
		t.Errorf("schema name %q, want personnel (from title)", s.Name)
	}
	for _, e := range []string{"Department", "Employee", "Project"} {
		o := s.Object(e)
		if o == nil || o.Kind != ecr.KindEntity {
			t.Fatalf("entity %s missing or wrong kind", e)
		}
	}
	// Required-subset idiom: Manager is a category of Employee.
	mgr := s.Object("Manager")
	if mgr == nil || mgr.Kind != ecr.KindCategory || len(mgr.Parents) != 1 || mgr.Parents[0] != "Employee" {
		t.Fatalf("Manager should be a category of Employee: %+v", mgr)
	}
	if len(mgr.Attributes) != 1 || mgr.Attributes[0].Name != "Bonus" || mgr.Attributes[0].Domain != "real" {
		t.Errorf("Manager attributes wrong: %+v", mgr.Attributes)
	}
	// Enum symbols become categories.
	for _, c := range []string{"Employee_junior", "Employee_senior"} {
		o := s.Object(c)
		if o == nil || o.Kind != ecr.KindCategory || o.Parents[0] != "Employee" {
			t.Errorf("enum category %s missing or wrong: %+v", c, o)
		}
	}
	// x-key and format mappings.
	emp := s.Object("Employee")
	var hired, eno ecr.Attribute
	for _, a := range emp.Attributes {
		switch a.Name {
		case "Hired":
			hired = a
		case "Eno":
			eno = a
		case "dept", "projects":
			t.Errorf("$ref property %s must not become an attribute", a.Name)
		}
	}
	if hired.Domain != "date" {
		t.Errorf("Hired domain %q, want date", hired.Domain)
	}
	if !eno.Key || eno.Domain != "int" {
		t.Errorf("Eno should be an int key: %+v", eno)
	}
	// Required $ref: (1,1) on the owner; array-of-$ref: (0,n)/(0,n).
	dep := s.Relationship("Employee_Department")
	if dep == nil {
		t.Fatal("relationship Employee_Department missing")
	}
	if dep.Participants[0].Object != "Employee" || dep.Participants[0].Card != (ecr.Cardinality{Min: 1, Max: 1}) {
		t.Errorf("Employee side of Employee_Department: %+v", dep.Participants[0])
	}
	if dep.Participants[1].Object != "Department" || dep.Participants[1].Card != (ecr.Cardinality{Min: 0, Max: ecr.N}) {
		t.Errorf("Department side of Employee_Department: %+v", dep.Participants[1])
	}
	proj := s.Relationship("Employee_Project")
	if proj == nil || proj.Participants[0].Card != (ecr.Cardinality{Min: 0, Max: ecr.N}) {
		t.Fatalf("Employee_Project should be (0,n) on the owner: %+v", proj)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("result schema invalid: %v", err)
	}
}

func TestJSONSchemaRootObject(t *testing.T) {
	src := `{"title": "Invoice", "type": "object", "properties": {
		"number": {"type": "integer", "x-key": true},
		"total": {"type": "number"}
	}}`
	res, _, err := Parse("jsonschema", "", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	o := res.Schemas[0].Object("Invoice")
	if o == nil || len(o.Attributes) != 2 {
		t.Fatalf("root object should become entity Invoice: %+v", o)
	}
}

func TestJSONSchemaUndefinedRef(t *testing.T) {
	src := `{"$defs": {"A": {"type": "object", "properties": {"b": {"$ref": "#/$defs/Missing"}}}}}`
	if _, _, err := Parse("jsonschema", "", []byte(src)); err == nil {
		t.Fatal("undefined $ref target should fail")
	}
}

func TestAvroFrontend(t *testing.T) {
	res, used, err := Parse("", "personnel", []byte(personnelAvro))
	if err != nil {
		t.Fatal(err)
	}
	if used != "avro" {
		t.Fatalf("sniffed %q, want avro", used)
	}
	s := res.Schemas[0]
	if s.Name != "personnel" {
		t.Errorf("schema name %q", s.Name)
	}
	for _, e := range []string{"Department", "Employee", "Project"} {
		o := s.Object(e)
		if o == nil || o.Kind != ecr.KindEntity {
			t.Fatalf("entity %s missing", e)
		}
	}
	emp := s.Object("Employee")
	var hired, eno, grade ecr.Attribute
	for _, a := range emp.Attributes {
		switch a.Name {
		case "Hired":
			hired = a
		case "Eno":
			eno = a
		case "Grade":
			grade = a
		case "dept", "mentor", "projects":
			t.Errorf("reference field %s must not become an attribute", a.Name)
		}
	}
	if hired.Domain != "date" {
		t.Errorf("logicalType date should map to date, got %q", hired.Domain)
	}
	if !eno.Key || eno.Domain != "int" {
		t.Errorf("Eno should be an int key: %+v", eno)
	}
	if grade.Domain != "char" {
		t.Errorf("enum field keeps a char attribute, got %q", grade.Domain)
	}
	for _, c := range []string{"Employee_junior", "Employee_senior"} {
		o := s.Object(c)
		if o == nil || o.Kind != ecr.KindCategory || o.Parents[0] != "Employee" {
			t.Errorf("enum category %s missing or wrong: %+v", c, o)
		}
	}
	dep := s.Relationship("Employee_Department")
	if dep == nil || dep.Participants[0].Card != (ecr.Cardinality{Min: 1, Max: 1}) {
		t.Fatalf("plain record reference should be (1,1): %+v", dep)
	}
	mentor := s.Relationship("Employee_Employee")
	if mentor == nil || mentor.Participants[0].Card != (ecr.Cardinality{Min: 0, Max: 1}) {
		t.Fatalf("nullable union reference should be (0,1): %+v", mentor)
	}
	proj := s.Relationship("Employee_Project")
	if proj == nil || proj.Participants[0].Card != (ecr.Cardinality{Min: 0, Max: ecr.N}) {
		t.Fatalf("array reference should be (0,n): %+v", proj)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("result schema invalid: %v", err)
	}
}

func TestAvroInlineRecord(t *testing.T) {
	src := `{"type": "record", "name": "com.example.Order", "fields": [
		{"name": "id", "type": "long", "key": true},
		{"name": "customer", "type": {"type": "record", "name": "Customer", "fields": [
			{"name": "cno", "type": "int", "key": true}
		]}}
	]}`
	res, _, err := Parse("avro", "orders", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schemas[0]
	if s.Object("Order") == nil || s.Object("Customer") == nil {
		t.Fatalf("namespaced and inline records should both register: %v", s.String())
	}
	if s.Relationship("Order_Customer") == nil {
		t.Fatal("inline record field should become relationship Order_Customer")
	}
}

func TestAvroErrors(t *testing.T) {
	bad := []string{
		`{"type": "record", "name": "R", "fields": [{"name": "f", "type": "Nope"}]}`,
		`{"type": "enum", "name": "E", "symbols": ["a"]}`, // no records
		`[]`,
		`{"type": "record", "fields": []}`, // no name
	}
	for _, src := range bad {
		if _, err := (avroFrontend{}).Parse("x", []byte(src)); err == nil {
			t.Errorf("expected error for %s", src)
		}
	}
}

// TestDictionaryJSONRoundTrip: the dictionary frontend accepts the
// workspace JSON encoding of a schema and returns an equivalent schema.
func TestDictionaryJSONRoundTrip(t *testing.T) {
	schemas, err := ecr.ParseSchemas("schema s\nentity E { attr A: int key }\nentity F { attr B: char }\nrelationship R (E (0,1), F (0,n))")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := ecr.EncodeJSON(schemas[0])
	if err != nil {
		t.Fatal(err)
	}
	res, used, err := Parse("", "", enc)
	if err != nil {
		t.Fatal(err)
	}
	if used != "dictionary" {
		t.Fatalf("sniffed %q", used)
	}
	if d := ecr.Diff(schemas[0], res.Schemas[0]); len(d) != 0 {
		t.Fatalf("round-trip diff: %v", d)
	}
}

package translate

import "testing"

// FuzzParseSQL guards the SQL subset parser against panics; accepted
// databases must translate or fail cleanly.
func FuzzParseSQL(f *testing.F) {
	f.Add(universitySQL)
	f.Add("CREATE TABLE t (a INT PRIMARY KEY);")
	f.Add("CREATE TABLE t (a INT, PRIMARY KEY (a), FOREIGN KEY (a) REFERENCES t (a));")
	f.Add("CREATE TABLE")
	f.Fuzz(func(t *testing.T, src string) {
		db, err := ParseSQL("f", src)
		if err != nil {
			return
		}
		if _, err := FromRelational(db); err != nil {
			// Translation may reject semantic problems; it must not
			// panic, which the fuzz harness checks implicitly.
			return
		}
	})
}

// FuzzJSONSchema guards the JSON Schema frontend: arbitrary input must
// either fail cleanly or produce a schema that passes ecr.Validate.
func FuzzJSONSchema(f *testing.F) {
	f.Add(personnelJSONSchema)
	f.Add(`{"type": "object", "properties": {"a": {"type": "integer", "x-key": true}}}`)
	f.Add(`{"$defs": {"A": {"properties": {"b": {"$ref": "#/$defs/A"}}}}}`)
	f.Add(`{"$defs": {"A": {"allOf": [{"$ref": "#/$defs/B"}, {"properties": {}}]}, "B": {"properties": {"k": {"type": "string"}}}}}`)
	f.Add(`{"properties": {"e": {"type": "string", "enum": ["x", "y", ""]}}}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, src string) {
		res, err := (jsonSchemaFrontend{}).Parse("f", []byte(src))
		if err != nil {
			return
		}
		for _, s := range res.Schemas {
			if err := s.Validate(); err != nil {
				t.Fatalf("accepted schema fails validation: %v", err)
			}
		}
	})
}

// FuzzAvro guards the Avro frontend the same way.
func FuzzAvro(f *testing.F) {
	f.Add(personnelAvro)
	f.Add(`{"type": "record", "name": "R", "fields": [{"name": "a", "type": "int", "key": true}]}`)
	f.Add(`{"type": "record", "name": "R", "fields": [{"name": "s", "type": ["null", "R"]}]}`)
	f.Add(`[{"type": "record", "name": "A", "fields": [{"name": "b", "type": {"type": "array", "items": "A"}}]}]`)
	f.Add(`{"type": "record", "name": "R", "fields": [{"name": "e", "type": {"type": "enum", "name": "E", "symbols": ["x"]}}]}`)
	f.Add(`[`)
	f.Fuzz(func(t *testing.T, src string) {
		res, err := (avroFrontend{}).Parse("f", []byte(src))
		if err != nil {
			return
		}
		for _, s := range res.Schemas {
			if err := s.Validate(); err != nil {
				t.Fatalf("accepted schema fails validation: %v", err)
			}
		}
	})
}

// FuzzParseHierarchy guards the segment-tree parser the same way.
func FuzzParseHierarchy(f *testing.F) {
	f.Add(schoolHierarchy)
	f.Add("hierarchy h segment S { field k char key }")
	f.Add("hierarchy h segment S { segment T { field k char } }")
	f.Add("hierarchy")
	f.Fuzz(func(t *testing.T, src string) {
		h, err := ParseHierarchy(src)
		if err != nil {
			return
		}
		if _, err := FromHierarchical(h); err != nil {
			return
		}
	})
}

package translate

import "testing"

// FuzzParseSQL guards the SQL subset parser against panics; accepted
// databases must translate or fail cleanly.
func FuzzParseSQL(f *testing.F) {
	f.Add(universitySQL)
	f.Add("CREATE TABLE t (a INT PRIMARY KEY);")
	f.Add("CREATE TABLE t (a INT, PRIMARY KEY (a), FOREIGN KEY (a) REFERENCES t (a));")
	f.Add("CREATE TABLE")
	f.Fuzz(func(t *testing.T, src string) {
		db, err := ParseSQL("f", src)
		if err != nil {
			return
		}
		if _, err := FromRelational(db); err != nil {
			// Translation may reject semantic problems; it must not
			// panic, which the fuzz harness checks implicitly.
			return
		}
	})
}

// FuzzParseHierarchy guards the segment-tree parser the same way.
func FuzzParseHierarchy(f *testing.F) {
	f.Add(schoolHierarchy)
	f.Add("hierarchy h segment S { field k char key }")
	f.Add("hierarchy h segment S { segment T { field k char } }")
	f.Add("hierarchy")
	f.Fuzz(func(t *testing.T, src string) {
		h, err := ParseHierarchy(src)
		if err != nil {
			return
		}
		if _, err := FromHierarchical(h); err != nil {
			return
		}
	})
}

// Package similarity is the sparse, incremental similarity engine behind
// the tool's assertion-specification phase. It produces the same Object
// Class Similarity (OCS) matrices and resemblance rankings as the dense
// reference path (equivalence.ObjectMatrix, resemblance.RankObjects), but
// from an inverted index instead of the full cross-product:
//
//   - Every ecr.AttrRef is interned to an integer ID the moment it is
//     registered, and its owning structure (schema, object, kind) to an
//     owner ID, so the hot accumulation loop is slice-indexed rather than
//     hashing 4-string structs.
//   - Posting lists map each equivalence-class ID to its member attribute
//     IDs. Only classes with two or more members can contribute to any
//     count, so a query walks the handful of non-singleton classes and
//     scatters into pair counters — O(classes·postings) work — instead of
//     probing all n1·n2 pairs at O(a1+a2) map hashes each.
//   - The index attaches to an equivalence.Registry as its Observer:
//     Declare and Remove adjust only the affected posting lists, so an
//     engine stays valid across any sequence of equivalence edits.
//   - Ranking exploits sparsity a second time: pairs with no shared class
//     sort strictly after every pair with one, tied among themselves in
//     declaration order — exactly the order they are generated in. Only the
//     nonzero pairs (typically ~n of n²) are actually sorted.
//   - Above a size threshold the accumulation and the pair construction
//     (the sort's key extraction) fan out across a GOMAXPROCS-bounded set
//     of workers partitioned by row, keeping writes disjoint.
//
// The output is element-for-element identical to the dense path, zero pairs
// and tie-breaks included; internal/similarity's differential tests enforce
// that against randomized workloads.
package similarity

import (
	"sort"
	"sync"

	"repro/internal/ecr"
	"repro/internal/equivalence"
	"repro/internal/resemblance"
)

// ownerKey identifies an object class or relationship set within a schema.
type ownerKey struct {
	schema, object string
	kind           ecr.Kind
}

// Engine is the inverted index over one equivalence registry. Create it
// with Attach; it then maintains itself through the registry's observer
// hooks. All methods are safe for concurrent use, with the usual proviso
// that registry mutations and engine queries observe the caller's own
// ordering (the server store serializes them under its RWMutex).
type Engine struct {
	mu sync.RWMutex

	// attrIDs interns every registered AttrRef once; attrOwner maps the
	// interned ID to its owner ID.
	attrIDs   map[ecr.AttrRef]int32 // guarded by mu
	attrOwner []int32               // guarded by mu

	// owners interns (schema, object, kind) triples.
	owners map[ownerKey]int32 // guarded by mu

	// classes holds the posting lists: equivalence-class ID → member
	// attribute IDs. multi tracks the classes with ≥2 members — the only
	// ones that can ever contribute to a similarity count.
	classes map[int][]int32  // guarded by mu
	multi   map[int]struct{} // guarded by mu
}

// Attach builds an engine over the registry's current contents and installs
// it as the registry's observer, so subsequent Declare/Remove/Register
// calls update the posting lists in place.
func Attach(reg *equivalence.Registry) *Engine {
	e := &Engine{
		attrIDs: map[ecr.AttrRef]int32{},
		owners:  map[ownerKey]int32{},
		classes: map[int][]int32{},
		multi:   map[int]struct{}{},
	}
	reg.ForEach(func(a ecr.AttrRef, class int) {
		e.add(a, class)
	})
	reg.SetObserver(e)
	return e
}

// add interns the attribute and appends it to its class's posting list.
// Callers hold the write lock (or own the engine exclusively, as Attach
// does).
//
//sit:locked mu
func (e *Engine) add(a ecr.AttrRef, class int) {
	id, ok := e.attrIDs[a]
	if !ok {
		ok := ownerKey{schema: a.Schema, object: a.Object, kind: a.Kind}
		oid, seen := e.owners[ok]
		if !seen {
			oid = int32(len(e.owners))
			e.owners[ok] = oid
		}
		id = int32(len(e.attrOwner))
		e.attrIDs[a] = id
		e.attrOwner = append(e.attrOwner, oid)
	}
	e.classes[class] = append(e.classes[class], id)
	if len(e.classes[class]) == 2 {
		e.multi[class] = struct{}{}
	}
}

// ClassCreated implements equivalence.Observer.
func (e *Engine) ClassCreated(id int, a ecr.AttrRef) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.add(a, id)
}

// ClassesMerged implements equivalence.Observer.
func (e *Engine) ClassesMerged(keep, drop int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.classes[keep] = append(e.classes[keep], e.classes[drop]...)
	delete(e.classes, drop)
	delete(e.multi, drop)
	if len(e.classes[keep]) >= 2 {
		e.multi[keep] = struct{}{}
	}
}

// MemberRemoved implements equivalence.Observer.
func (e *Engine) MemberRemoved(id int, a ecr.AttrRef) {
	e.mu.Lock()
	defer e.mu.Unlock()
	aid, ok := e.attrIDs[a]
	if !ok {
		return
	}
	ms := e.classes[id]
	for i, m := range ms {
		if m == aid {
			e.classes[id] = append(ms[:i], ms[i+1:]...)
			break
		}
	}
	if len(e.classes[id]) < 2 {
		delete(e.multi, id)
	}
}

// side is one schema's structures as a query sees them: names, kinds and
// attribute counts in declaration order.
type side struct {
	schema string
	names  []string
	kinds  []ecr.Kind
	nattrs []int
}

func newSide(s *ecr.Schema, rel bool) side {
	if rel {
		sd := side{
			schema: s.Name,
			names:  make([]string, 0, len(s.Relationships)),
			kinds:  make([]ecr.Kind, 0, len(s.Relationships)),
			nattrs: make([]int, 0, len(s.Relationships)),
		}
		for _, r := range s.Relationships {
			sd.names = append(sd.names, r.Name)
			sd.kinds = append(sd.kinds, ecr.KindRelationship)
			sd.nattrs = append(sd.nattrs, len(r.Attributes))
		}
		return sd
	}
	sd := side{
		schema: s.Name,
		names:  make([]string, 0, len(s.Objects)),
		kinds:  make([]ecr.Kind, 0, len(s.Objects)),
		nattrs: make([]int, 0, len(s.Objects)),
	}
	for _, o := range s.Objects {
		sd.names = append(sd.names, o.Name)
		sd.kinds = append(sd.kinds, o.Kind)
		sd.nattrs = append(sd.nattrs, len(o.Attributes))
	}
	return sd
}

// grid is the accumulated pair-count matrix for one query, detached from
// the engine so post-processing (pair construction, sorting) runs outside
// the engine lock.
type grid struct {
	rows, cols side
	counts     []int32 // len(rows.names) × len(cols.names), row-major
}

// mark projects one query side onto the index: pos[ownerID] = index+1 for
// every structure of the side, and live[attrID] = true for every attribute
// the structure carries in its *current* schema version. The live filter is
// what keeps the engine correct when a schema has been removed or replaced
// while its old equivalences linger in the registry — exactly the dense
// path's behavior of only looking up attributes the schema still declares.
//
//sit:rlocked mu
func (e *Engine) mark(s *ecr.Schema, rel bool, sd side, pos []int32, live []bool) {
	markAttrs := func(name string, kind ecr.Kind, attrs []ecr.Attribute, idx int) {
		if oid, ok := e.owners[ownerKey{schema: s.Name, object: name, kind: kind}]; ok {
			pos[oid] = int32(idx + 1)
		}
		ref := ecr.AttrRef{Schema: s.Name, Object: name, Kind: kind}
		for _, a := range attrs {
			ref.Attr = a.Name
			if aid, ok := e.attrIDs[ref]; ok {
				live[aid] = true
			}
		}
	}
	if rel {
		for i, r := range s.Relationships {
			markAttrs(r.Name, ecr.KindRelationship, r.Attributes, i)
		}
		return
	}
	for i, o := range s.Objects {
		markAttrs(o.Name, o.Kind, o.Attributes, i)
	}
}

// newGrid runs the sparse accumulation for one schema pair under the read
// lock and returns the detached result.
func (e *Engine) newGrid(s1, s2 *ecr.Schema, rel bool) grid {
	e.mu.RLock()
	defer e.mu.RUnlock()

	g := grid{rows: newSide(s1, rel), cols: newSide(s2, rel)}
	nr, nc := len(g.rows.names), len(g.cols.names)
	g.counts = make([]int32, nr*nc)
	if nr == 0 || nc == 0 || len(e.multi) == 0 {
		return g
	}

	rowPos := make([]int32, len(e.owners))
	colPos := make([]int32, len(e.owners))
	live := make([]bool, len(e.attrOwner))
	e.mark(s1, rel, g.rows, rowPos, live)
	e.mark(s2, rel, g.cols, colPos, live)

	if nr*nc >= parallelPairs {
		forRowRanges(nr, func(lo, hi int) {
			e.accumulate(&g, rowPos, colPos, live, lo, hi)
		})
	} else {
		e.accumulate(&g, rowPos, colPos, live, 0, nr)
	}
	return g
}

// accumulate scatters every non-singleton class into the pair counters for
// rows in [lo, hi). Each call owns its scratch, so concurrent calls over
// disjoint row ranges write disjoint counter cells. An entry counts each
// class once per pair (set semantics): the per-class token arrays dedup
// multiple member attributes landing on the same structure.
//
//sit:rlocked mu
func (e *Engine) accumulate(g *grid, rowPos, colPos []int32, live []bool, lo, hi int) {
	nc := len(g.cols.names)
	rowTok := make([]int32, len(g.rows.names))
	colTok := make([]int32, nc)
	var rlist, clist []int32
	tok := int32(0)
	for id := range e.multi {
		tok++
		rlist, clist = rlist[:0], clist[:0]
		for _, m := range e.classes[id] {
			if !live[m] {
				continue
			}
			o := e.attrOwner[m]
			if p := rowPos[o]; p > 0 && int(p-1) >= lo && int(p-1) < hi && rowTok[p-1] != tok {
				rowTok[p-1] = tok
				rlist = append(rlist, p-1)
			}
			if p := colPos[o]; p > 0 && colTok[p-1] != tok {
				colTok[p-1] = tok
				clist = append(clist, p-1)
			}
		}
		for _, r := range rlist {
			base := int(r) * nc
			for _, c := range clist {
				g.counts[base+int(c)]++
			}
		}
	}
}

// RankObjects returns the object-class pairs of the two schemas ordered
// exactly as resemblance.RankObjects orders them: decreasing attribute
// ratio, then decreasing equivalent count, then schema declaration order.
func (e *Engine) RankObjects(s1, s2 *ecr.Schema) []resemblance.Pair {
	return e.rank(s1, s2, false)
}

// RankRelationships ranks the relationship-set pairs the same way.
func (e *Engine) RankRelationships(s1, s2 *ecr.Schema) []resemblance.Pair {
	return e.rank(s1, s2, true)
}

func (e *Engine) rank(s1, s2 *ecr.Schema, rel bool) []resemblance.Pair {
	g := e.newGrid(s1, s2, rel)
	nr, nc := len(g.rows.names), len(g.cols.names)
	total := nr * nc
	out := make([]resemblance.Pair, total)
	if total == 0 {
		return out
	}

	// Census: nonzero cells per row, then prefix sums. Sorted nonzero pairs
	// occupy out[:nnz]; zero pairs follow in generation order, which is the
	// order the total comparator assigns them anyway (all tie at ratio 0,
	// equivalent 0, breaking on declaration order).
	prefix := make([]int, nr+1)
	countNonzero := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := 0
			for _, c := range g.counts[i*nc : (i+1)*nc] {
				if c > 0 {
					n++
				}
			}
			prefix[i+1] = n
		}
	}
	parallel := total >= parallelPairs
	if parallel {
		forRowRanges(nr, countNonzero)
	} else {
		countNonzero(0, nr)
	}
	for i := 0; i < nr; i++ {
		prefix[i+1] += prefix[i]
	}
	nnz := prefix[nr]

	// Key extraction: build the Pair records, nonzero pairs packed at the
	// front (with their generation rank for tie-breaking), zero pairs at
	// their final positions. Row-partitioned workers write disjoint slots.
	ord := make([]int, nnz)
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			nzAt := prefix[i]
			zAt := nnz + i*nc - prefix[i]
			base := i * nc
			for j := 0; j < nc; j++ {
				eq := int(g.counts[base+j])
				p := resemblance.Pair{
					Schema1: g.rows.schema, Object1: g.rows.names[i], Kind1: g.rows.kinds[i],
					Schema2: g.cols.schema, Object2: g.cols.names[j], Kind2: g.cols.kinds[j],
					Equivalent:   eq,
					SmallerAttrs: min(g.rows.nattrs[i], g.cols.nattrs[j]),
					Ratio:        resemblance.AttributeRatio(eq, g.rows.nattrs[i], g.cols.nattrs[j]),
				}
				if eq > 0 {
					out[nzAt] = p
					ord[nzAt] = base + j
					nzAt++
				} else {
					out[zAt] = p
					zAt++
				}
			}
		}
	}
	if parallel {
		forRowRanges(nr, fill)
	} else {
		fill(0, nr)
	}

	sort.Sort(&pairSorter{pairs: out[:nnz], ord: ord})
	return out
}

// pairSorter orders the nonzero pairs by the ranking's total order: ratio
// descending, equivalent count descending, then generation rank (row-major
// declaration order). The order is total, so the result is unique and
// identical to the dense path's stable sort over all pairs.
type pairSorter struct {
	pairs []resemblance.Pair
	ord   []int
}

func (s *pairSorter) Len() int { return len(s.pairs) }

func (s *pairSorter) Less(i, j int) bool {
	a, b := &s.pairs[i], &s.pairs[j]
	if a.Ratio != b.Ratio {
		return a.Ratio > b.Ratio
	}
	if a.Equivalent != b.Equivalent {
		return a.Equivalent > b.Equivalent
	}
	return s.ord[i] < s.ord[j]
}

func (s *pairSorter) Swap(i, j int) {
	s.pairs[i], s.pairs[j] = s.pairs[j], s.pairs[i]
	s.ord[i], s.ord[j] = s.ord[j], s.ord[i]
}

// ObjectMatrix derives the OCS matrix for the object classes of the two
// schemas, equal to equivalence.ObjectMatrix on the same inputs.
func (e *Engine) ObjectMatrix(s1, s2 *ecr.Schema) *equivalence.Matrix {
	return e.matrix(s1, s2, false)
}

// RelationshipMatrix derives the OCS-style matrix for the relationship sets
// of the two schemas, equal to equivalence.RelationshipMatrix.
func (e *Engine) RelationshipMatrix(s1, s2 *ecr.Schema) *equivalence.Matrix {
	return e.matrix(s1, s2, true)
}

func (e *Engine) matrix(s1, s2 *ecr.Schema, rel bool) *equivalence.Matrix {
	g := e.newGrid(s1, s2, rel)
	nr, nc := len(g.rows.names), len(g.cols.names)
	back := make([]int, nr*nc)
	convert := func(lo, hi int) {
		for i := lo * nc; i < hi*nc; i++ {
			back[i] = int(g.counts[i])
		}
	}
	if nr*nc >= parallelPairs {
		forRowRanges(nr, convert)
	} else {
		convert(0, nr)
	}
	counts := make([][]int, nr)
	for i := range counts {
		counts[i] = back[i*nc : (i+1)*nc : (i+1)*nc]
	}
	return &equivalence.Matrix{
		Schema1: g.rows.schema, Schema2: g.cols.schema,
		Rows: g.rows.names, Cols: g.cols.names,
		Counts: counts,
	}
}

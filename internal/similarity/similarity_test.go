package similarity

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ecr"
	"repro/internal/equivalence"
	"repro/internal/resemblance"
	"repro/internal/workload"
)

// requireSamePairs fails unless got is element-for-element identical to the
// dense reference ranking, order included.
func requireSamePairs(t *testing.T, label string, got, want []resemblance.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d differs:\n got  %+v\n want %+v", label, i, got[i], want[i])
		}
	}
}

func requireSameMatrix(t *testing.T, label string, got, want *equivalence.Matrix) {
	t.Helper()
	if got.Schema1 != want.Schema1 || got.Schema2 != want.Schema2 {
		t.Fatalf("%s: schema names differ: got %s×%s want %s×%s",
			label, got.Schema1, got.Schema2, want.Schema1, want.Schema2)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) || !reflect.DeepEqual(got.Cols, want.Cols) {
		t.Fatalf("%s: row/col labels differ", label)
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Fatalf("%s: counts differ:\n got  %v\n want %v", label, got.Counts, want.Counts)
	}
}

// checkAgainstDense compares every engine query against the dense reference
// implementation on the same inputs.
func checkAgainstDense(t *testing.T, label string, e *Engine, s1, s2 *ecr.Schema, reg *equivalence.Registry) {
	t.Helper()
	requireSamePairs(t, label+"/rank-objects",
		e.RankObjects(s1, s2), resemblance.RankObjects(s1, s2, reg))
	requireSamePairs(t, label+"/rank-relationships",
		e.RankRelationships(s1, s2), resemblance.RankRelationships(s1, s2, reg))
	requireSameMatrix(t, label+"/object-matrix",
		e.ObjectMatrix(s1, s2), equivalence.ObjectMatrix(s1, s2, reg))
	requireSameMatrix(t, label+"/relationship-matrix",
		e.RelationshipMatrix(s1, s2), equivalence.RelationshipMatrix(s1, s2, reg))
}

func genWorkload(t testing.TB, objects int, seed int64) *workload.Workload {
	cfg := workload.DefaultConfig(seed)
	cfg.Objects = objects
	cfg.Relationships = objects / 3
	if cfg.Relationships < 2 {
		cfg.Relationships = 2
	}
	if objects < 2 {
		// randomRelationship needs at least two object classes to draw from.
		cfg.Relationships = 0
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDifferentialAgainstDense(t *testing.T) {
	for _, objects := range []int{1, 3, 8, 25, 60, 150} {
		for seed := int64(0); seed < 3; seed++ {
			t.Run(fmt.Sprintf("objects=%d/seed=%d", objects, seed), func(t *testing.T) {
				w := genWorkload(t, objects, seed)
				e := Attach(w.Registry)
				checkAgainstDense(t, "generated", e, w.S1, w.S2, w.Registry)
			})
		}
	}
}

// TestDifferentialAcrossParallelThreshold forces a grid big enough for the
// parallel accumulation and key-extraction paths.
func TestDifferentialAcrossParallelThreshold(t *testing.T) {
	w := genWorkload(t, 160, 7) // 160×160 = 25600 pairs > parallelPairs
	e := Attach(w.Registry)
	checkAgainstDense(t, "parallel", e, w.S1, w.S2, w.Registry)
}

// TestIncrementalDeclareRemove edits the registry after Attach and checks
// the posting lists track every transition: fresh declarations, transitive
// merges, removals and re-declarations.
func TestIncrementalDeclareRemove(t *testing.T) {
	w := genWorkload(t, 12, 42)
	reg := w.Registry
	e := Attach(reg)

	ref := func(schema string, obj, attr string) ecr.AttrRef {
		s := w.S1
		if schema == "w2" {
			s = w.S2
		}
		o := s.Object(obj)
		if o == nil {
			t.Fatalf("no object %s in %s", obj, schema)
		}
		return ecr.AttrRef{Schema: schema, Object: obj, Kind: o.Kind, Attr: attr}
	}
	a := ref("w1", w.S1.Objects[0].Name, w.S1.Objects[0].Attributes[0].Name)
	b := ref("w2", w.S2.Objects[1].Name, w.S2.Objects[1].Attributes[0].Name)
	c := ref("w2", w.S2.Objects[2].Name, w.S2.Objects[2].Attributes[1].Name)

	steps := []struct {
		name string
		op   func() error
	}{
		{"declare-a-b", func() error { return reg.Declare(a, b) }},
		{"declare-a-c (transitive merge)", func() error { return reg.Declare(a, c) }},
		{"remove-b", func() error { reg.Remove(b); return nil }},
		{"re-declare-b-c", func() error { return reg.Declare(b, c) }},
		{"remove-a", func() error { reg.Remove(a); return nil }},
		{"remove-unknown", func() error {
			reg.Remove(ecr.AttrRef{Schema: "w1", Object: "ghost", Attr: "x"})
			return nil
		}},
	}
	for _, step := range steps {
		if err := step.op(); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
		checkAgainstDense(t, step.name, e, w.S1, w.S2, reg)
	}
}

// TestSchemaReplaceStaleEquivalences reproduces the stale-registry case: a
// schema is dropped and a namesake with different attributes takes its
// place while the registry still holds the old schema's equivalences. The
// engine's live-attribute filter must match the dense path, which only
// looks up attributes the current schema declares.
func TestSchemaReplaceStaleEquivalences(t *testing.T) {
	mk := func(name, obj string, attrs ...string) *ecr.Schema {
		s := ecr.NewSchema(name)
		o := &ecr.ObjectClass{Name: obj, Kind: ecr.KindEntity}
		for i, a := range attrs {
			o.Attributes = append(o.Attributes, ecr.Attribute{Name: a, Domain: "char", Key: i == 0})
		}
		if err := s.AddObject(o); err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := mk("a", "O", "x", "y")
	s2 := mk("b", "P", "u", "v")
	reg := equivalence.NewRegistry()
	reg.RegisterSchema(s1)
	reg.RegisterSchema(s2)
	e := Attach(reg)
	if err := reg.Declare(
		ecr.AttrRef{Schema: "a", Object: "O", Kind: ecr.KindEntity, Attr: "x"},
		ecr.AttrRef{Schema: "b", Object: "P", Kind: ecr.KindEntity, Attr: "u"},
	); err != nil {
		t.Fatal(err)
	}
	checkAgainstDense(t, "before-replace", e, s1, s2, reg)

	// Replace schema "a": same object name, attribute x gone. The stale
	// a.O.x equivalence must stop counting for the new schema.
	s1v2 := mk("a", "O", "z", "y")
	reg.RegisterSchema(s1v2)
	checkAgainstDense(t, "after-replace", e, s1v2, s2, reg)
	if got := e.ObjectMatrix(s1v2, s2).At("O", "P"); got != 0 {
		t.Fatalf("stale equivalence still counted after replace: got %d, want 0", got)
	}

	// And the old schema value still queries consistently too.
	checkAgainstDense(t, "old-schema-value", e, s1, s2, reg)
}

// TestEmptyAndLopsided covers degenerate shapes: empty schemas, no
// relationships, single structures.
func TestEmptyAndLopsided(t *testing.T) {
	empty := ecr.NewSchema("empty")
	w := genWorkload(t, 4, 3)
	reg := w.Registry
	e := Attach(reg)
	checkAgainstDense(t, "empty-left", e, empty, w.S2, reg)
	checkAgainstDense(t, "empty-right", e, w.S1, empty, reg)
	checkAgainstDense(t, "empty-both", e, empty, empty, reg)
	checkAgainstDense(t, "same-schema-both-sides", e, w.S1, w.S1, reg)
}

// TestAttachToPopulatedRegistry checks the bulk-load path builds the same
// index as incremental maintenance.
func TestAttachToPopulatedRegistry(t *testing.T) {
	w := genWorkload(t, 20, 11)
	late := Attach(w.Registry) // attach after workload declared everything
	checkAgainstDense(t, "late-attach", late, w.S1, w.S2, w.Registry)
}

func TestRegistryVersionAdvances(t *testing.T) {
	reg := equivalence.NewRegistry()
	v0 := reg.Version()
	a := ecr.AttrRef{Schema: "s", Object: "O", Attr: "x"}
	b := ecr.AttrRef{Schema: "t", Object: "P", Attr: "y"}
	reg.Register(a)
	if reg.Version() == v0 {
		t.Fatal("Register did not bump version")
	}
	v1 := reg.Version()
	reg.Register(a) // no-op
	if reg.Version() != v1 {
		t.Fatal("re-registering a known attribute bumped version")
	}
	if err := reg.Declare(a, b); err != nil {
		t.Fatal(err)
	}
	v2 := reg.Version()
	if v2 == v1 {
		t.Fatal("Declare did not bump version")
	}
	if err := reg.Declare(a, b); err != nil {
		t.Fatal(err)
	}
	if reg.Version() != v2 {
		t.Fatal("re-declaring an existing equivalence bumped version")
	}
	reg.Remove(b)
	if reg.Version() == v2 {
		t.Fatal("Remove did not bump version")
	}
	clone := reg.Clone()
	if clone.Version() != reg.Version() {
		t.Fatal("Clone lost the version counter")
	}
}

package similarity

import (
	"runtime"
	"sync"
)

// parallelPairs is the grid size (rows × cols) above which queries fan
// their accumulation and key extraction out across workers. Below it the
// per-goroutine overhead outweighs the work; 16K pairs is roughly a 128×128
// schema pair.
const parallelPairs = 1 << 14

// forRowRanges splits [0, n) into at most GOMAXPROCS contiguous ranges and
// runs fn over each concurrently, returning when all are done. fn must
// confine its writes to its own range (workers share no scratch).
func forRowRanges(n int, fn func(lo, hi int)) {
	p := runtime.GOMAXPROCS(0)
	if p > n {
		p = n
	}
	if p <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

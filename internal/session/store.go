// Package session implements the interactive schema integration tool
// itself: the six-task main menu and the twelve screens of the paper,
// driven over a line-oriented IO abstraction so the same state machine runs
// against a real terminal (cmd/sit) and against scripted input in tests and
// benchmarks. The Workspace holds the tool's bookkeeping — schemas,
// attribute equivalence classes and assertion matrices — and persists to a
// JSON file between runs.
package session

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/assertion"
	"repro/internal/ecr"
	"repro/internal/equivalence"
	"repro/internal/integrate"
	"repro/internal/resemblance"
	"repro/internal/similarity"
)

// Workspace is the tool's persistent state.
type Workspace struct {
	schemas  []*ecr.Schema
	registry *equivalence.Registry
	// sim is the sparse similarity engine over registry, maintained
	// incrementally through the registry's observer hooks.
	sim *similarity.Engine
	// Assertion closure engines per schema pair, keyed by sorted pair
	// name. Each engine maintains its matrix and transitive closure
	// incrementally.
	objAsserts map[string]*assertion.Engine
	relAsserts map[string]*assertion.Engine
	// results caches integration outcomes per pair for the viewing
	// screens; not persisted (recomputed on demand).
	results map[string]*integrate.Result
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	w := &Workspace{
		registry:   equivalence.NewRegistry(),
		objAsserts: map[string]*assertion.Engine{},
		relAsserts: map[string]*assertion.Engine{},
		results:    map[string]*integrate.Result{},
	}
	w.sim = similarity.Attach(w.registry)
	return w
}

// Schemas returns the defined schemas in definition order.
func (w *Workspace) Schemas() []*ecr.Schema { return w.schemas }

// Schema returns the named schema, or nil.
func (w *Workspace) Schema(name string) *ecr.Schema {
	for _, s := range w.schemas {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// AddSchema registers a schema definition.
func (w *Workspace) AddSchema(s *ecr.Schema) error {
	if s == nil || s.Name == "" {
		return fmt.Errorf("session: schema needs a name")
	}
	if w.Schema(s.Name) != nil {
		return fmt.Errorf("session: schema %q already defined", s.Name)
	}
	w.schemas = append(w.schemas, s)
	w.registry.RegisterSchema(s)
	return nil
}

// RemoveSchema deletes the named schema and every assertion involving it.
func (w *Workspace) RemoveSchema(name string) bool {
	for i, s := range w.schemas {
		if s.Name == name {
			w.schemas = append(w.schemas[:i], w.schemas[i+1:]...)
			for key := range w.objAsserts {
				if pairHasSchema(key, name) {
					delete(w.objAsserts, key)
				}
			}
			for key := range w.relAsserts {
				if pairHasSchema(key, name) {
					delete(w.relAsserts, key)
				}
			}
			w.invalidate(name)
			return true
		}
	}
	return false
}

// Registry exposes the attribute equivalence registry.
func (w *Workspace) Registry() *equivalence.Registry { return w.registry }

// Similarity exposes the sparse similarity engine attached to the registry.
func (w *Workspace) Similarity() *similarity.Engine { return w.sim }

// RankObjects ranks the object-class pairs of the two schemas by the
// resemblance function through the sparse engine (identical output to
// resemblance.RankObjects).
func (w *Workspace) RankObjects(s1, s2 *ecr.Schema) []resemblance.Pair {
	return w.sim.RankObjects(s1, s2)
}

// RankRelationships ranks the relationship-set pairs the same way.
func (w *Workspace) RankRelationships(s1, s2 *ecr.Schema) []resemblance.Pair {
	return w.sim.RankRelationships(s1, s2)
}

func pairKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

func pairHasSchema(key, name string) bool {
	for i := 0; i+len(name) <= len(key); i++ {
		if key[i:i+len(name)] == name {
			boundL := i == 0 || key[i-1] == '|'
			end := i + len(name)
			boundR := end == len(key) || key[end] == '|'
			if boundL && boundR {
				return true
			}
		}
	}
	return false
}

// ObjectAssertions returns (creating if needed) the object-class assertion
// engine for a schema pair.
func (w *Workspace) ObjectAssertions(s1, s2 string) *assertion.Engine {
	key := pairKey(s1, s2)
	if w.objAsserts[key] == nil {
		w.objAsserts[key] = assertion.NewEngine()
	}
	return w.objAsserts[key]
}

// RelationshipAssertions returns (creating if needed) the relationship-set
// assertion engine for a schema pair.
func (w *Workspace) RelationshipAssertions(s1, s2 string) *assertion.Engine {
	key := pairKey(s1, s2)
	if w.relAsserts[key] == nil {
		w.relAsserts[key] = assertion.NewEngine()
	}
	return w.relAsserts[key]
}

// invalidate drops cached integration results touching the named schema.
func (w *Workspace) invalidate(name string) {
	for key := range w.results {
		if pairHasSchema(key, name) {
			delete(w.results, key)
		}
	}
}

// Integrate runs (or returns the cached) integration of the pair.
func (w *Workspace) Integrate(s1, s2 string) (*integrate.Result, error) {
	key := pairKey(s1, s2)
	if res := w.results[key]; res != nil {
		return res, nil
	}
	a, b := w.Schema(s1), w.Schema(s2)
	if a == nil || b == nil {
		return nil, fmt.Errorf("session: unknown schema in pair %s/%s", s1, s2)
	}
	res, err := integrate.Integrate(integrate.Input{
		S1: a, S2: b,
		Registry:      w.registry,
		Objects:       w.ObjectAssertions(s1, s2).Set(),
		Relationships: w.RelationshipAssertions(s1, s2).Set(),
	})
	if err != nil {
		return nil, err
	}
	w.results[key] = res
	return res, nil
}

// Invalidate drops every cached integration result (after edits).
func (w *Workspace) Invalidate() {
	w.results = map[string]*integrate.Result{}
}

// --- persistence ---

type storedAssertion struct {
	SchemaA string `json:"schemaA"`
	ObjectA string `json:"objectA"`
	SchemaB string `json:"schemaB"`
	ObjectB string `json:"objectB"`
	Code    int    `json:"code"`
}

type storedWorkspace struct {
	Schemas       []*ecr.Schema     `json:"schemas"`
	Equivalences  [][]ecr.AttrRef   `json:"equivalences,omitempty"`
	ObjAssertions []storedAssertion `json:"objectAssertions,omitempty"`
	RelAssertions []storedAssertion `json:"relationshipAssertions,omitempty"`
}

// Marshal encodes the workspace as JSON: schemas, multi-member
// equivalence classes and DDA-specified assertions (derived entries are
// recomputed on load). It is the byte-level form behind Save and the
// server's durability snapshots.
func Marshal(w *Workspace) ([]byte, error) {
	st := storedWorkspace{
		Schemas:      w.schemas,
		Equivalences: w.registry.Classes(),
	}
	collect := func(sets map[string]*assertion.Engine) []storedAssertion {
		var keys []string
		for k := range sets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var out []storedAssertion
		for _, k := range keys {
			for _, e := range sets[k].Entries() {
				if e.Derived {
					continue
				}
				out = append(out, storedAssertion{
					SchemaA: e.A.Schema, ObjectA: e.A.Object,
					SchemaB: e.B.Schema, ObjectB: e.B.Object,
					Code: e.Kind.Code(),
				})
			}
		}
		return out
	}
	st.ObjAssertions = collect(w.objAsserts)
	st.RelAssertions = collect(w.relAsserts)

	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("session: encode workspace: %w", err)
	}
	return data, nil
}

// Save writes the workspace to a JSON file. Only DDA-specified assertions
// are stored; derived entries are recomputed on demand.
func (w *Workspace) Save(path string) error {
	data, err := Marshal(w)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("session: write workspace: %w", err)
	}
	return os.Rename(tmp, path)
}

// Unmarshal rebuilds a workspace from Marshal's encoding.
func Unmarshal(data []byte) (*Workspace, error) {
	var st storedWorkspace
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("session: decode workspace: %w", err)
	}
	w := NewWorkspace()
	for _, s := range st.Schemas {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if err := w.AddSchema(s); err != nil {
			return nil, err
		}
	}
	for _, class := range st.Equivalences {
		for i := 1; i < len(class); i++ {
			if err := w.registry.Declare(class[0], class[i]); err != nil {
				return nil, fmt.Errorf("session: load equivalences: %w", err)
			}
		}
	}
	apply := func(stored []storedAssertion, pick func(s1, s2 string) *assertion.Engine) error {
		for _, a := range stored {
			kind, err := assertion.KindFromCode(a.Code)
			if err != nil {
				return err
			}
			set := pick(a.SchemaA, a.SchemaB)
			if err := set.Assert(
				assertion.ObjKey{Schema: a.SchemaA, Object: a.ObjectA},
				assertion.ObjKey{Schema: a.SchemaB, Object: a.ObjectB},
				kind,
			); err != nil {
				return err
			}
		}
		return nil
	}
	if err := apply(st.ObjAssertions, w.ObjectAssertions); err != nil {
		return nil, fmt.Errorf("session: load object assertions: %w", err)
	}
	if err := apply(st.RelAssertions, w.RelationshipAssertions); err != nil {
		return nil, fmt.Errorf("session: load relationship assertions: %w", err)
	}
	return w, nil
}

// Load reads a workspace from a JSON file written by Save.
func Load(path string) (*Workspace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

package session

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/assertion"
	"repro/internal/ecr"
)

// twoSchemaScript defines minimal schemas a1 (X: K,V) and a2 (Y: K,W) plus
// one relationship in each, then appends the given extra inputs.
func twoSchemaScript(extra ...string) []string {
	base := []string{
		"1",
		"a", "a1",
		"a", "X", "e",
		"a", "K", "int", "y",
		"a", "V", "char", "",
		"e",
		"a", "R1", "r",
		"a", "X", "0,1",
		"a", "X", "0,n", "again",
		"e",
		"a", "W1", "int", "",
		"e",
		"e",
		"a", "a2",
		"a", "Y", "e",
		"a", "K", "int", "y",
		"a", "W", "char", "",
		"e",
		"a", "R2", "r",
		"a", "Y", "0,1",
		"a", "Y", "0,n", "again",
		"e",
		"a", "W2", "int", "",
		"e",
		"e",
		"e",
	}
	return append(base, extra...)
}

func runScript(t *testing.T, inputs []string) (*Workspace, *ScriptIO) {
	t.Helper()
	io := NewScriptIO(inputs...)
	ws := NewWorkspace()
	if err := New(ws, io).Run(); err != nil {
		t.Fatal(err)
	}
	return ws, io
}

func TestEquivalenceByName(t *testing.T) {
	ws, _ := runScript(t, twoSchemaScript(
		"2", "a1", "a2",
		"X Y",   // selection by name instead of number
		"a K K", // declaration by attribute name
		"e", "e",
		"e",
	))
	if !ws.Registry().Equivalent(
		ecr.AttrRef{Schema: "a1", Object: "X", Kind: ecr.KindEntity, Attr: "K"},
		ecr.AttrRef{Schema: "a2", Object: "Y", Kind: ecr.KindEntity, Attr: "K"},
	) {
		t.Error("name-based declaration failed")
	}
}

func TestEquivalenceDeleteSide(t *testing.T) {
	ws, _ := runScript(t, twoSchemaScript(
		"2", "a1", "a2",
		"1 1",
		"a 1 1",
		"d 2 1", // remove side 2's attribute from its class
		"e", "e",
		"e",
	))
	if ws.Registry().Equivalent(
		ecr.AttrRef{Schema: "a1", Object: "X", Kind: ecr.KindEntity, Attr: "K"},
		ecr.AttrRef{Schema: "a2", Object: "Y", Kind: ecr.KindEntity, Attr: "K"},
	) {
		t.Error("deletion did not split the class")
	}
}

func TestEquivalenceUsageErrors(t *testing.T) {
	_, io := runScript(t, twoSchemaScript(
		"2", "a1", "a2",
		"justone",  // bad pair selection
		"",         // dismiss notice
		"1 99",     // out-of-range object
		"",         // dismiss
		"1 1",      // valid pair
		"a 1",      // wrong arity
		"",         // dismiss
		"a 9 1",    // bad attr index
		"",         // dismiss
		"a K nope", // bad attr name
		"",         // dismiss
		"d 1",      // wrong arity
		"",         // dismiss
		"e", "e",
		"e",
	))
	wantNotices := []string{
		"enter two selections",
		"has no object #99",
		"usage: a",
		"has no attribute #9",
		`has no attribute "nope"`,
		"usage: d",
	}
	out := io.Output()
	for _, w := range wantNotices {
		if !strings.Contains(out, w) {
			t.Errorf("missing notice %q", w)
		}
	}
}

func TestRelationshipEquivalenceFlow(t *testing.T) {
	ws, _ := runScript(t, twoSchemaScript(
		"4", "a1", "a2",
		"1 1",
		"a 1 1", // W1 ~ W2
		"e", "e",
		"e",
	))
	if !ws.Registry().Equivalent(
		ecr.AttrRef{Schema: "a1", Object: "R1", Kind: ecr.KindRelationship, Attr: "W1"},
		ecr.AttrRef{Schema: "a2", Object: "R2", Kind: ecr.KindRelationship, Attr: "W2"},
	) {
		t.Error("relationship attribute equivalence failed")
	}
}

func TestRelationshipSelectionByNameAndErrors(t *testing.T) {
	_, io := runScript(t, twoSchemaScript(
		"4", "a1", "a2",
		"R1 R2",
		"e",
		"Zed 1", // unknown relationship by name
		"",
		"9 1", // out of range
		"",
		"e",
		"e",
	))
	out := io.Output()
	if !strings.Contains(out, `has no relationship "Zed"`) {
		t.Error("unknown relationship notice missing")
	}
	if !strings.Contains(out, "has no relationship #9") {
		t.Error("out-of-range relationship notice missing")
	}
}

func TestAssertionFlowUsageErrorsAndLegend(t *testing.T) {
	ws, io := runScript(t, twoSchemaScript(
		"3", "a1", "a2",
		"l", "", // legend, dismiss
		"s",    // scroll
		"zz 1", // bad index
		"",     // dismiss
		"1 9",  // bad code
		"",     // dismiss
		"1",    // wrong arity
		"",     // dismiss
		"1 1",  // X equals Y
		"e",
		"e",
	))
	out := io.Output()
	if !strings.Contains(out, "1 - OB_CL_name_1 'equals' OB_CL_name_2") {
		t.Error("legend not shown")
	}
	if !strings.Contains(out, "unknown assertion code 9") {
		t.Error("bad-code notice missing")
	}
	set := ws.ObjectAssertions("a1", "a2")
	if set.Kind(assertion.ObjKey{Schema: "a1", Object: "X"}, assertion.ObjKey{Schema: "a2", Object: "Y"}) != assertion.Equals {
		t.Error("valid assertion lost")
	}
}

func TestRelationshipAssertionFlow(t *testing.T) {
	ws, _ := runScript(t, twoSchemaScript(
		"5", "a1", "a2",
		"1 1", // R1 equals R2
		"e",
		"e",
	))
	set := ws.RelationshipAssertions("a1", "a2")
	if set.Kind(assertion.ObjKey{Schema: "a1", Object: "R1"}, assertion.ObjKey{Schema: "a2", Object: "R2"}) != assertion.Equals {
		t.Error("relationship assertion lost")
	}
}

func TestResultsUnknownStructureNotifies(t *testing.T) {
	_, io := runScript(t, twoSchemaScript(
		"6", "a1", "a2",
		"Ghost c",
		"", // dismiss notice
		"x",
		"e",
	))
	if !strings.Contains(io.Output(), "No structure named Ghost") {
		t.Error("unknown structure notice missing")
	}
}

func TestResultsAttributeViewOfEntity(t *testing.T) {
	_, io := runScript(t, twoSchemaScript(
		"6", "a1", "a2",
		"X a", // attribute view directly from Screen 10
		"e",   // leave attribute screen
		"x",
		"e",
	))
	if len(io.ScreensContaining("Attribute Screen")) == 0 {
		t.Error("attribute screen missing")
	}
}

func TestResultsNonDerivedComponentRequest(t *testing.T) {
	_, io := runScript(t, twoSchemaScript(
		"6", "a1", "a2",
		"X a",
		"1", // K is not derived -> notice
		"",  // dismiss
		"e",
		"x",
		"e",
	))
	if !strings.Contains(io.Output(), "is not a derived attribute") {
		t.Error("non-derived notice missing")
	}
}

func TestResultsRelationshipAttributeAndEquivalent(t *testing.T) {
	_, io := runScript(t, twoSchemaScript(
		"6", "a1", "a2",
		"R1 c", // relationship screen (view code other than 'a')
		"a",    // its attributes
		"e",
		"q", "", // equivalent screen
		"x",
		"x",
		"e",
	))
	if len(io.ScreensContaining("Relationship Screen")) == 0 {
		t.Error("relationship screen missing")
	}
	if len(io.ScreensContaining("Equivalent Screen")) == 0 {
		t.Error("equivalent screen missing")
	}
}

func TestResultsBadSchemaPair(t *testing.T) {
	_, io := runScript(t, twoSchemaScript(
		"6", "a1", "nope",
		"e",
	))
	if !strings.Contains(io.Output(), "Unknown or identical schema names") {
		t.Error("bad pair notice missing")
	}
}

func TestResultsIntegrationConflictOffersResolution(t *testing.T) {
	// Two assertions that are individually fine but jointly inconsistent
	// only via closure cannot be built through AssertAndClose (it checks
	// immediately), so simulate by asserting directly into the
	// workspace, then entering task 6.
	ws := NewWorkspace()
	mk := func(name, obj string) *ecr.Schema {
		s := ecr.NewSchema(name)
		if err := s.AddObject(&ecr.ObjectClass{Name: obj, Kind: ecr.KindEntity,
			Attributes: []ecr.Attribute{{Name: "K", Domain: "int", Key: true}}}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := mk("b1", "P")
	if err := s1.AddObject(&ecr.ObjectClass{Name: "Q", Kind: ecr.KindEntity,
		Attributes: []ecr.Attribute{{Name: "K", Domain: "int", Key: true}}}); err != nil {
		t.Fatal(err)
	}
	s2 := mk("b2", "M")
	if err := ws.AddSchema(s1); err != nil {
		t.Fatal(err)
	}
	if err := ws.AddSchema(s2); err != nil {
		t.Fatal(err)
	}
	set := ws.ObjectAssertions("b1", "b2")
	// The incremental engine closes on every assert, so a contradiction
	// can no longer be smuggled in unclosed; exercise the integration
	// error path with an intra-schema assertion instead, which the
	// engine accepts (the matrix is schema-agnostic) and integration
	// rejects.
	if err := set.Assert(assertion.ObjKey{Schema: "b1", Object: "P"},
		assertion.ObjKey{Schema: "b2", Object: "M"}, assertion.Equals); err != nil {
		t.Fatal(err)
	}
	if err := set.Assert(assertion.ObjKey{Schema: "b1", Object: "P"},
		assertion.ObjKey{Schema: "b1", Object: "Q"}, assertion.DisjointNonintegrable); err != nil {
		t.Fatal(err)
	}
	io := NewScriptIO(
		"6", "b1", "b2",
		"", // dismiss the integration error notice
		"e",
	)
	if err := New(ws, io).Run(); err != nil {
		t.Fatal(err)
	}
	// The integration error notice appeared (the message is clipped to
	// the screen width, so match a prefix of it).
	out := io.Output()
	if !strings.Contains(out, "assertion between b1.P and b1.Q is within") {
		t.Errorf("no integration outcome shown:\n%s", out)
	}
}

func TestSessionWorkspaceAccessor(t *testing.T) {
	ws := NewWorkspace()
	s := New(ws, NewScriptIO())
	if s.Workspace() != ws {
		t.Error("Workspace() wrong")
	}
}

func TestAssertionMatrixView(t *testing.T) {
	_, io := runScript(t, twoSchemaScript(
		"3", "a1", "a2",
		"1 1",   // X equals Y
		"m", "", // show the Entity Assertion matrix, dismiss
		"e",
		"e",
	))
	screens := io.ScreensContaining("Entity Assertion Matrix")
	if len(screens) == 0 {
		t.Fatal("matrix screen missing")
	}
	if !strings.Contains(screens[0], "a1.X") || !strings.Contains(screens[0], "c1 =") {
		t.Errorf("matrix content wrong:\n%s", screens[0])
	}
}

func TestResultsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	ddl := filepath.Join(dir, "out.ecr")
	maps := filepath.Join(dir, "maps.json")
	_, io := runScript(t, twoSchemaScript(
		"6", "a1", "a2",
		"w", ddl, maps,
		"", // dismiss "Wrote ..." notice
		"x",
		"e",
	))
	if len(io.ScreensContaining("Wrote")) == 0 {
		t.Fatal("write confirmation missing")
	}
	data, err := os.ReadFile(ddl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ecr.ParseSchema(string(data)); err != nil {
		t.Errorf("written DDL does not parse: %v", err)
	}
	mdata, err := os.ReadFile(maps)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mdata), `"integrated"`) {
		t.Errorf("mappings JSON wrong:\n%.120s", mdata)
	}
}

func TestResultsWriteSchemaOnly(t *testing.T) {
	dir := t.TempDir()
	ddl := filepath.Join(dir, "only.ecr")
	_, io := runScript(t, twoSchemaScript(
		"6", "a1", "a2",
		"w", ddl, "", // skip mappings
		"", // dismiss notice
		"x",
		"e",
	))
	if len(io.ScreensContaining("Wrote "+ddl)) == 0 {
		t.Error("confirmation missing")
	}
	if _, err := os.Stat(ddl); err != nil {
		t.Error(err)
	}
}

package session

import (
	"fmt"
	"strings"

	"repro/internal/assertion"
	"repro/internal/ecr"
	"repro/internal/equivalence"
	"repro/internal/resemblance"
	"repro/internal/tui"
)

// This file renders the paper's screens. Each function returns a
// tui.Screen whose Text() the golden tests compare against the layouts
// printed in the paper.

// mainMenuScreen is Screen 1: the six tasks of the tool, plus task 7 — the
// suggestion enhancement of the paper's future-work section.
func mainMenuScreen() *tui.Screen {
	return &tui.Screen{
		Phase: "SCHEMA INTEGRATION TOOL",
		Name:  "Main Menu",
		Windows: []*tui.Window{{
			Rows: []string{
				"1. Define the schemas to be integrated",
				"2. Define equivalences among attributes of object classes",
				"3. Specify assertions between object classes",
				"4. Define equivalences among attributes of relationship sets",
				"5. Specify assertions between relationship sets",
				"6. Integrate schemas and view results",
				"7. Suggest attribute equivalences (dictionary + theory)",
				"",
				"e. Exit",
			},
		}},
		Menu: "Enter choice =>",
	}
}

// messageScreen shows a one-line notice within a phase.
func messageScreen(phase, msg string) *tui.Screen {
	return &tui.Screen{
		Phase:   phase,
		Windows: []*tui.Window{{Rows: []string{msg}}},
		Menu:    "Press enter to continue =>",
	}
}

// schemaNameCollectionScreen is Screen 2.
func schemaNameCollectionScreen(names []string) *tui.Screen {
	rows := tui.NumberRows(names, 1)
	if len(rows) == 0 {
		rows = []string{"(no schemas defined)"}
	}
	return &tui.Screen{
		Phase:   "SCHEMA COLLECTION",
		Name:    "Schema Name Collection Screen",
		Windows: []*tui.Window{{Title: "Schema Name", Rows: rows, Height: 8}},
		Menu:    "Choose: (A)dd (D)elete (U)pdate (E)xit :",
	}
}

// structureCollectionScreen is Screen 3.
func structureCollectionScreen(s *ecr.Schema, scroll int) *tui.Screen {
	var cells [][]string
	cells = append(cells, []string{"Object Name", "Type(E/C/R)", "# of attributes"})
	for _, o := range s.Objects {
		cells = append(cells, []string{o.Name, strings.ToLower(o.Kind.String()), fmt.Sprint(len(o.Attributes))})
	}
	for _, r := range s.Relationships {
		cells = append(cells, []string{r.Name, "r", fmt.Sprint(len(r.Attributes))})
	}
	aligned := tui.Columns(cells)
	header, body := aligned[0], aligned[1:]
	win := &tui.Window{Title: header, Rows: tui.NumberRows(body, 1), Height: 10, Scroll: scroll}
	return &tui.Screen{
		Phase:   "SCHEMA COLLECTION",
		Name:    "Structure Information Collection Screen",
		Header:  []string{"SCHEMA NAME: " + s.Name},
		Windows: []*tui.Window{win},
		Menu:    "Choose: (S)croll (A)dd (D)elete (U)pdate (E)xit :",
	}
}

// relationshipCollectionScreen is Screen 4.
func relationshipCollectionScreen(schema string, r *ecr.RelationshipSet) *tui.Screen {
	var cells [][]string
	cells = append(cells, []string{"Object Name", "Cardinality"})
	for _, p := range r.Participants {
		name := p.Object
		if p.Role != "" {
			name += " as " + p.Role
		}
		cells = append(cells, []string{name, p.Card.String()})
	}
	aligned := tui.Columns(cells)
	return &tui.Screen{
		Phase:   "SCHEMA COLLECTION",
		Name:    "Relationship Information Collection Screen",
		Header:  []string{"SCHEMA NAME: " + schema, "RELATIONSHIP NAME: " + r.Name},
		Windows: []*tui.Window{{Title: aligned[0], Rows: tui.NumberRows(aligned[1:], 1), Height: 8}},
		Menu:    "Choose: (A)dd (D)elete (E)xit :",
	}
}

// categoryCollectionScreen is the Category Information Collection Screen.
func categoryCollectionScreen(schema string, o *ecr.ObjectClass) *tui.Screen {
	rows := o.Parents
	if len(rows) == 0 {
		rows = []string{"(no parent object classes yet)"}
	}
	return &tui.Screen{
		Phase:   "SCHEMA COLLECTION",
		Name:    "Category Information Collection Screen",
		Header:  []string{"SCHEMA NAME: " + schema, "CATEGORY NAME: " + o.Name},
		Windows: []*tui.Window{{Title: "Defined over object classes", Rows: tui.NumberRows(rows, 1), Height: 6}},
		Menu:    "Choose: (A)dd (D)elete (E)xit :",
	}
}

// attributeCollectionScreen is Screen 5.
func attributeCollectionScreen(schema, object string, kind ecr.Kind, attrs []ecr.Attribute, scroll int) *tui.Screen {
	var cells [][]string
	cells = append(cells, []string{"Attribute Name", "Domain", "Key (y/n)"})
	for _, a := range attrs {
		key := "n"
		if a.Key {
			key = "y"
		}
		cells = append(cells, []string{a.Name, a.Domain, key})
	}
	aligned := tui.Columns(cells)
	return &tui.Screen{
		Phase: "SCHEMA COLLECTION",
		Name:  "Attribute Information Collection Screen",
		Header: []string{fmt.Sprintf("SCHEMA NAME: %s   OBJECT NAME: %s   TYPE: %s",
			schema, object, strings.ToLower(kind.String()))},
		Windows: []*tui.Window{{Title: aligned[0], Rows: tui.NumberRows(aligned[1:], 1), Height: 10, Scroll: scroll}},
		Menu:    "Choose: (S)croll (A)dd (D)elete (E)xit :",
	}
}

// schemaNameSelectionScreen asks which two schemas are being integrated.
func schemaNameSelectionScreen(phase string, names []string) *tui.Screen {
	rows := tui.NumberRows(names, 1)
	if len(rows) == 0 {
		rows = []string{"(no schemas defined)"}
	}
	return &tui.Screen{
		Phase:   phase,
		Name:    "Schema Name Selection Screen",
		Windows: []*tui.Window{{Title: "Defined schemas", Rows: rows, Height: 8}},
		Menu:    "Enter the two schema names =>",
	}
}

// objectSelectionScreen is Screen 6: the Entity/Category Name Selection
// Screen (also used for relationship sets).
func objectSelectionScreen(phase string, s1, s2 *ecr.Schema, rel bool) *tui.Screen {
	list := func(s *ecr.Schema) []string {
		var rows []string
		if rel {
			for _, r := range s.Relationships {
				rows = append(rows, r.Name)
			}
		} else {
			for _, o := range s.Objects {
				rows = append(rows, o.Name)
			}
		}
		return tui.NumberRows(rows, 1)
	}
	name := "Entity/Category Name Selection Screen"
	if rel {
		name = "Relationship Name Selection Screen"
	}
	return &tui.Screen{
		Phase: phase,
		Name:  name,
		Windows: []*tui.Window{
			{Title: "schema1: " + s1.Name, Rows: list(s1), Height: 8},
			{Title: "schema2: " + s2.Name, Rows: list(s2), Height: 8},
		},
		Menu: "Enter <#1 #2> to pick one from each schema, or (E)xit :",
	}
}

// equivalenceScreen is Screen 7: the Equivalence Class Creation and
// Deletion Screen.
func equivalenceScreen(reg *equivalence.Registry, ref1, ref2 objRef) *tui.Screen {
	column := func(r objRef) []string {
		var cells [][]string
		cells = append(cells, []string{"Attribute Name", "Eq_class #"})
		for _, a := range r.attrs() {
			id, _ := reg.ClassID(ecr.AttrRef{Schema: r.schema, Object: r.name, Kind: r.kind, Attr: a.Name})
			cells = append(cells, []string{a.Name, fmt.Sprint(id)})
		}
		return tui.Columns(cells)
	}
	c1, c2 := column(ref1), column(ref2)
	return &tui.Screen{
		Phase: "EQUIVALENCE CLASS SPECIFICATION",
		Name:  "Equivalence Class Creation and Deletion Screen",
		Windows: []*tui.Window{
			{Title: "(schema.object1) " + ref1.schema + "." + ref1.name + "   " + c1[0],
				Rows: tui.NumberRows(c1[1:], 1), Height: 8},
			{Title: "(schema.object2) " + ref2.schema + "." + ref2.name + "   " + c2[0],
				Rows: tui.NumberRows(c2[1:], 1), Height: 8},
		},
		Menu: "(S)croll (A)dd or (D)elete from equiv. class (E)xit =>",
	}
}

// assertionCollectionScreen is Screen 8.
func assertionCollectionScreen(pairs []resemblance.Pair, asserts *assertion.Engine, scroll int, rel bool) *tui.Screen {
	var cells [][]string
	cells = append(cells, []string{"Schema_Name1.Obj_Class1", "Schema_Name2.Obj_Class2", "ATTRIBUTE RATIO", "ASSERTION"})
	for _, p := range pairs {
		cur := asserts.Kind(
			assertion.ObjKey{Schema: p.Schema1, Object: p.Object1},
			assertion.ObjKey{Schema: p.Schema2, Object: p.Object2},
		)
		code := ""
		if cur != assertion.Unspecified {
			code = fmt.Sprint(cur.Code())
		}
		cells = append(cells, []string{
			p.Schema1 + "." + p.Object1,
			p.Schema2 + "." + p.Object2,
			fmt.Sprintf("%.4f", p.Ratio),
			code,
		})
	}
	aligned := tui.Columns(cells)
	name := "Assertion Collection For Object Pairs"
	if rel {
		name = "Assertion Collection For Relationship Pairs"
	}
	return &tui.Screen{
		Phase:   "ASSERTION SPECIFICATION",
		Name:    name,
		Windows: []*tui.Window{{Title: aligned[0], Rows: tui.NumberRows(aligned[1:], 1), Height: 10, Scroll: scroll}},
		Header:  nil,
		Menu:    "Enter <#> <assertion 0-5>, (S)croll, (L)egend, (R)etract, or (E)xit :",
	}
}

// assertionLegend is the menu of assertion meanings printed on Screens 8
// and 9.
func assertionLegend() []string {
	return []string{
		"1 - OB_CL_name_1 'equals' OB_CL_name_2",
		"2 - OB_CL_name_1 'contained in' OB_CL_name_2",
		"3 - OB_CL_name_1 'contains' OB_CL_name_2",
		"4 - OB_CL_name_1 and OB_CL_name_2 are disjoint but integratable",
		"5 - OB_CL_name_1 and OB_CL_name_2 may be integratable",
		"0 - OB_CL_name_1 and OB_CL_name_2 are disjoint & non-integratable",
	}
}

// conflictResolutionScreen is Screen 9: the Assertion Conflict Resolution
// Screen, listing the conflicting assertions and the derivation behind the
// derived one.
func conflictResolutionScreen(c *assertion.Conflict) *tui.Screen {
	var cells [][]string
	cells = append(cells, []string{"SCHEMA_NAME1.OBJ_CLASS1", "SCHEMA_NAME2.OBJ_CLASS2", "CURRENT", "NEW"})
	ex := c.Existing
	exTag := fmt.Sprint(ex.Kind.Code())
	if ex.Derived {
		exTag += " <derived>"
	}
	cells = append(cells, []string{ex.A.String(), ex.B.String(), exTag, "(CONFLICT)"})
	cells = append(cells, []string{c.Proposed.A.String(), c.Proposed.B.String(),
		fmt.Sprint(c.Proposed.Kind.Code()), "<new> (CONFLICT)"})
	for _, tr := range append(append([]assertion.Statement{}, c.Trace...), c.Existing.Trace...) {
		cells = append(cells, []string{tr.A.String(), tr.B.String(), fmt.Sprint(tr.Kind.Code()), ""})
	}
	aligned := tui.Columns(cells)
	return &tui.Screen{
		Phase: "ASSERTION SPECIFICATION",
		Name:  "Assertion Conflict Resolution Screen",
		Windows: []*tui.Window{
			{Title: aligned[0], Rows: aligned[1:]},
			{Title: "Assertions:", Rows: assertionLegend()},
		},
		Menu: "Resolve: (K)eep current, (R)eplace with new, (S)kip :",
	}
}

// matrixScreen shows the Entity Assertion matrix (or its relationship-set
// counterpart) as the tool stores it.
func matrixScreen(phase string, set *assertion.Engine, objs []assertion.ObjKey) *tui.Screen {
	rows := strings.Split(strings.TrimRight(set.Matrix(objs), "\n"), "\n")
	return &tui.Screen{
		Phase:   phase,
		Name:    "Entity Assertion Matrix",
		Windows: []*tui.Window{{Rows: rows, Height: 18}},
		Menu:    "Press enter to continue =>",
	}
}

// legendScreen shows the assertion legend standalone.
func legendScreen(phase string) *tui.Screen {
	return &tui.Screen{
		Phase:   phase,
		Windows: []*tui.Window{{Title: "Assertions:", Rows: assertionLegend()}},
		Menu:    "Press enter to continue =>",
	}
}

// objectClassScreen is Screen 10: the main result screen.
func objectClassScreen(s *ecr.Schema) *tui.Screen {
	var ents, cats, rels []string
	for _, o := range s.Objects {
		if o.Kind == ecr.KindCategory {
			cats = append(cats, o.Name)
		} else {
			ents = append(ents, o.Name)
		}
	}
	for _, r := range s.Relationships {
		rels = append(rels, r.Name)
	}
	col := func(title string, items []string) *tui.Window {
		rows := items
		if len(rows) == 0 {
			rows = []string{"(none)"}
		}
		return &tui.Window{
			Title:  fmt.Sprintf("%s(%d)", title, len(items)),
			Rows:   rows,
			Height: 8,
		}
	}
	return &tui.Screen{
		Phase: "INTEGRATED SCHEMA",
		Name:  "Object Class Screen",
		Windows: []*tui.Window{
			col("Entities", ents),
			col("Categories", cats),
			col("Relationships", rels),
		},
		Menu: "Type object class name then <A>ttributes, <C>ategories, <E>ntities, <R>elationships, or e<x>it =>",
	}
}

// categoryScreen is Screen 11 (and doubles as the Entity Screen when the
// object has no parents).
func categoryScreen(s *ecr.Schema, o *ecr.ObjectClass) *tui.Screen {
	var parents [][]string
	parents = append(parents, []string{"Parent Object", "(type)"})
	for _, p := range o.Parents {
		po := s.Object(p)
		typ := "E"
		if po != nil {
			typ = po.Kind.String()
		}
		parents = append(parents, []string{p, "(" + typ + ")"})
	}
	var children [][]string
	children = append(children, []string{"Child Object", "(type)"})
	for _, c := range s.Children(o.Name) {
		co := s.Object(c)
		typ := "E"
		if co != nil {
			typ = co.Kind.String()
		}
		children = append(children, []string{c, "(" + typ + ")"})
	}
	pa := tui.Columns(parents)
	ch := tui.Columns(children)
	name := "Entity Screen"
	if o.Kind == ecr.KindCategory {
		name = "Category Screen"
	}
	return &tui.Screen{
		Phase:  "INTEGRATED SCHEMA",
		Name:   name,
		Header: []string{"< " + o.Name + " >"},
		Windows: []*tui.Window{
			{Title: fmt.Sprintf("Parent Object(%d)   %s", len(o.Parents), pa[0]), Rows: pa[1:]},
			{Title: fmt.Sprintf("Child Object(%d)   %s", len(children)-1, ch[0]), Rows: ch[1:]},
		},
		Menu: "<A>ttributes, <Q>uivalent objects, or e<x>it =>",
	}
}

// relationshipScreen mirrors the Category Screen for relationship sets.
func relationshipScreen(s *ecr.Schema, r *ecr.RelationshipSet) *tui.Screen {
	parents := r.Parents
	if len(parents) == 0 {
		parents = []string{"(none)"}
	}
	children := s.RelationshipChildren(r.Name)
	if len(children) == 0 {
		children = []string{"(none)"}
	}
	return &tui.Screen{
		Phase:  "INTEGRATED SCHEMA",
		Name:   "Relationship Screen",
		Header: []string{"< " + r.Name + " >"},
		Windows: []*tui.Window{
			{Title: "Parent relationships", Rows: parents},
			{Title: "Child relationships", Rows: children},
		},
		Menu: "<A>ttributes, <P>articipating objects, <Q>uivalent objects, or e<x>it =>",
	}
}

// attributeScreen is the Attribute Screen listing an object's attributes.
func attributeScreen(owner string, kindWord string, attrs []ecr.Attribute) *tui.Screen {
	var cells [][]string
	cells = append(cells, []string{"Attribute Name", "Domain", "Key", "Derived"})
	for _, a := range attrs {
		key, der := "n", "n"
		if a.Key {
			key = "y"
		}
		if a.Derived() {
			der = "y"
		}
		cells = append(cells, []string{a.Name, a.Domain, key, der})
	}
	aligned := tui.Columns(cells)
	return &tui.Screen{
		Phase:   "INTEGRATED SCHEMA",
		Name:    "Attribute Screen",
		Header:  []string{"< " + owner + " : " + kindWord + " >"},
		Windows: []*tui.Window{{Title: aligned[0], Rows: tui.NumberRows(aligned[1:], 1), Height: 10}},
		Menu:    "Enter <#> to view component attributes of a derived attribute, or (E)xit :",
	}
}

// componentAttributeScreen is Screen 12a/12b, one per component attribute
// of a derived attribute.
func componentAttributeScreen(owner, kindWord string, attr ecr.Attribute, comp ecr.AttrRef, index, total int) *tui.Screen {
	return &tui.Screen{
		Phase:  "INTEGRATED SCHEMA",
		Name:   "Component Attribute Screen",
		Header: []string{"< " + owner + " : " + kindWord + " >", "< " + attr.Name + " >"},
		Windows: []*tui.Window{{
			Rows: []string{
				"Attribute Name       : " + comp.Attr,
				"Domain               : " + attr.Domain,
				"Key                  : " + yesNo(attr.Key),
				"original Object Name : " + comp.Object,
				"original type        : " + comp.Kind.String(),
				"original Schema Name : " + comp.Schema,
				fmt.Sprintf("(component %d of %d)", index, total),
			},
		}},
		Menu: "Press any key to continue, or (Q)uit =>",
	}
}

// equivalentScreen shows the component objects behind an equivalent ("E_")
// or derived structure.
func equivalentScreen(owner string, sources []ecr.ObjectRef) *tui.Screen {
	var cells [][]string
	cells = append(cells, []string{"original Schema", "original Object", "type"})
	for _, src := range sources {
		cells = append(cells, []string{src.Schema, src.Object, src.Kind.String()})
	}
	aligned := tui.Columns(cells)
	rows := aligned[1:]
	if len(rows) == 0 {
		rows = []string{"(defined directly in one component schema)"}
	}
	return &tui.Screen{
		Phase:   "INTEGRATED SCHEMA",
		Name:    "Equivalent Screen",
		Header:  []string{"< " + owner + " >"},
		Windows: []*tui.Window{{Title: aligned[0], Rows: rows}},
		Menu:    "Press enter to continue =>",
	}
}

// participatingObjectsScreen shows the entities and categories tied to a
// relationship set.
func participatingObjectsScreen(r *ecr.RelationshipSet) *tui.Screen {
	var cells [][]string
	cells = append(cells, []string{"Object", "Cardinality", "Role"})
	for _, p := range r.Participants {
		cells = append(cells, []string{p.Object, p.Card.String(), p.Role})
	}
	aligned := tui.Columns(cells)
	return &tui.Screen{
		Phase:   "INTEGRATED SCHEMA",
		Name:    "Participating Objects In Relationship Screen",
		Header:  []string{"< " + r.Name + " >"},
		Windows: []*tui.Window{{Title: aligned[0], Rows: aligned[1:]}},
		Menu:    "Press enter to continue =>",
	}
}

func yesNo(b bool) string {
	if b {
		return "YES"
	}
	return "NO"
}

// objRef identifies one structure during the equivalence phase.
type objRef struct {
	schema string
	name   string
	kind   ecr.Kind
	object *ecr.ObjectClass
	rel    *ecr.RelationshipSet
}

func (r objRef) attrs() []ecr.Attribute {
	if r.rel != nil {
		return r.rel.Attributes
	}
	if r.object != nil {
		return r.object.Attributes
	}
	return nil
}

func (r objRef) attrRef(name string) ecr.AttrRef {
	return ecr.AttrRef{Schema: r.schema, Object: r.name, Kind: r.kind, Attr: name}
}

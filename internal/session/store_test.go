package session

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/assertion"
	"repro/internal/ecr"
	"repro/internal/errtest"
	"repro/internal/paperex"
)

func paperWorkspace(t testing.TB) *Workspace {
	t.Helper()
	ws := NewWorkspace()
	if err := ws.AddSchema(paperex.Sc1()); err != nil {
		t.Fatal(err)
	}
	if err := ws.AddSchema(paperex.Sc2()); err != nil {
		t.Fatal(err)
	}
	reg := ws.Registry()
	declare := func(o1, a1, o2, a2 string, k1, k2 ecr.Kind) {
		t.Helper()
		if err := reg.Declare(
			ecr.AttrRef{Schema: "sc1", Object: o1, Kind: k1, Attr: a1},
			ecr.AttrRef{Schema: "sc2", Object: o2, Kind: k2, Attr: a2},
		); err != nil {
			t.Fatal(err)
		}
	}
	declare("Student", "Name", "Grad_student", "Name", ecr.KindEntity, ecr.KindEntity)
	declare("Student", "Name", "Faculty", "Name", ecr.KindEntity, ecr.KindEntity)
	declare("Student", "GPA", "Grad_student", "GPA", ecr.KindEntity, ecr.KindEntity)
	declare("Department", "Dname", "Department", "Dname", ecr.KindEntity, ecr.KindEntity)
	declare("Majors", "Since", "Stud_major", "Since", ecr.KindRelationship, ecr.KindRelationship)

	objs := ws.ObjectAssertions("sc1", "sc2")
	for _, a := range []struct {
		o1 string
		k  assertion.Kind
		o2 string
	}{
		{"Department", assertion.Equals, "Department"},
		{"Student", assertion.Contains, "Grad_student"},
		{"Student", assertion.DisjointIntegrable, "Faculty"},
	} {
		if err := objs.Assert(
			assertion.ObjKey{Schema: "sc1", Object: a.o1},
			assertion.ObjKey{Schema: "sc2", Object: a.o2}, a.k); err != nil {
			t.Fatal(err)
		}
	}
	rels := ws.RelationshipAssertions("sc1", "sc2")
	if err := rels.Assert(
		assertion.ObjKey{Schema: "sc1", Object: "Majors"},
		assertion.ObjKey{Schema: "sc2", Object: "Stud_major"},
		assertion.Equals); err != nil {
		t.Fatal(err)
	}
	return ws
}

func TestWorkspaceAddRemove(t *testing.T) {
	ws := NewWorkspace()
	if err := ws.AddSchema(paperex.Sc1()); err != nil {
		t.Fatal(err)
	}
	if err := ws.AddSchema(paperex.Sc1()); err == nil {
		t.Error("duplicate schema should fail")
	}
	if err := ws.AddSchema(ecr.NewSchema("")); err == nil {
		t.Error("unnamed schema should fail")
	}
	if !ws.RemoveSchema("sc1") || ws.RemoveSchema("sc1") {
		t.Error("remove semantics wrong")
	}
}

func TestWorkspaceRemoveDropsAssertions(t *testing.T) {
	ws := paperWorkspace(t)
	ws.RemoveSchema("sc2")
	if ws.ObjectAssertions("sc1", "sc2").Len() != 0 {
		t.Error("assertions survived schema removal")
	}
}

func TestWorkspaceIntegrateAndCache(t *testing.T) {
	ws := paperWorkspace(t)
	res1, err := ws.Integrate("sc1", "sc2")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ws.Integrate("sc2", "sc1") // pair key is symmetric
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Error("integration result not cached")
	}
	ws.Invalidate()
	res3, err := ws.Integrate("sc1", "sc2")
	if err != nil {
		t.Fatal(err)
	}
	if res3 == res1 {
		t.Error("invalidate did not drop cache")
	}
	if _, err := ws.Integrate("sc1", "nope"); err == nil {
		t.Error("unknown schema should fail")
	}
}

func TestWorkspaceSaveLoadRoundTrip(t *testing.T) {
	ws := paperWorkspace(t)
	path := filepath.Join(t.TempDir(), "workspace.json")
	if err := ws.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Schemas()) != 2 {
		t.Fatalf("schemas = %d", len(back.Schemas()))
	}
	// Equivalences survive.
	if !back.Registry().Equivalent(
		ecr.AttrRef{Schema: "sc1", Object: "Student", Kind: ecr.KindEntity, Attr: "Name"},
		ecr.AttrRef{Schema: "sc2", Object: "Faculty", Kind: ecr.KindEntity, Attr: "Name"},
	) {
		t.Error("equivalences lost")
	}
	// Assertions survive.
	got := back.ObjectAssertions("sc1", "sc2").Kind(
		assertion.ObjKey{Schema: "sc1", Object: "Student"},
		assertion.ObjKey{Schema: "sc2", Object: "Grad_student"},
	)
	if got != assertion.Contains {
		t.Errorf("assertion after load = %v", got)
	}
	// The loaded workspace must produce the same integrated schema.
	a, err := ws.Integrate("sc1", "sc2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Integrate("sc1", "sc2")
	if err != nil {
		t.Fatal(err)
	}
	if ecr.FormatSchema(a.Schema) != ecr.FormatSchema(b.Schema) {
		t.Error("integration differs after save/load")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); !errtest.Contains(err, "decode") {
		t.Errorf("err = %v", err)
	}
}

func TestPairKey(t *testing.T) {
	if pairKey("b", "a") != pairKey("a", "b") {
		t.Error("pairKey not symmetric")
	}
	if !pairHasSchema("a|b", "a") || !pairHasSchema("a|b", "b") {
		t.Error("pairHasSchema misses members")
	}
	if pairHasSchema("aa|b", "a") {
		t.Error("pairHasSchema matched a prefix")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestSaveErrorPropagates(t *testing.T) {
	ws := paperWorkspace(t)
	if err := ws.Save(filepath.Join(t.TempDir(), "missing-dir", "ws.json")); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestSessionRunSavesOnExit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ws.json")
	io := NewScriptIO("e")
	ws := paperWorkspace(t)
	s := New(ws, io)
	s.SavePath = path
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("workspace not saved: %v", err)
	}
}

func TestSessionRunSavesOnEOF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ws.json")
	io := NewScriptIO() // immediate exhaustion
	s := New(paperWorkspace(t), io)
	s.SavePath = path
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("workspace not saved on EOF: %v", err)
	}
}

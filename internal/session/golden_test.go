package session

import (
	"testing"
)

// Golden screen tests: exact rendered text for the screens that the paper
// prints in full, so any layout regression is caught character for
// character.

const goldenMainMenu = `+----------------------------------------------------------------------------+
|                          SCHEMA INTEGRATION TOOL                           |
|                               < Main Menu >                                |
+----------------------------------------------------------------------------+
| 1. Define the schemas to be integrated                                     |
| 2. Define equivalences among attributes of object classes                  |
| 3. Specify assertions between object classes                               |
| 4. Define equivalences among attributes of relationship sets               |
| 5. Specify assertions between relationship sets                            |
| 6. Integrate schemas and view results                                      |
| 7. Suggest attribute equivalences (dictionary + theory)                    |
|                                                                            |
| e. Exit                                                                    |
|                                                                            |
| Enter choice =>                                                            |
+----------------------------------------------------------------------------+
`

func TestGoldenMainMenu(t *testing.T) {
	if got := mainMenuScreen().Text(); got != goldenMainMenu {
		t.Errorf("main menu drifted:\n%s\nwant:\n%s", got, goldenMainMenu)
	}
}

const goldenObjectClassScreen = `+----------------------------------------------------------------------------+
|                             INTEGRATED SCHEMA                              |
|                          < Object Class Screen >                           |
+----------------------------------------------------------------------------+
| Entities(2)                                                                |
| E_Department                                                               |
| D_Stud_Facu                                                                |
|                                                                            |
| Categories(3)                                                              |
| Student                                                                    |
| Grad_student                                                               |
| Faculty                                                                    |
|                                                                            |
| Relationships(2)                                                           |
| E_Stud_Majo                                                                |
| Works                                                                      |
|                                                                            |
| Type object class name then <A>ttributes, <C>ategories, <E>ntities, <R>... |
+----------------------------------------------------------------------------+
`

func TestGoldenObjectClassScreen(t *testing.T) {
	ws := paperWorkspace(t)
	res, err := ws.Integrate("sc1", "sc2")
	if err != nil {
		t.Fatal(err)
	}
	if got := objectClassScreen(res.Schema).Text(); got != goldenObjectClassScreen {
		t.Errorf("object class screen drifted:\n%s\nwant:\n%s", got, goldenObjectClassScreen)
	}
}

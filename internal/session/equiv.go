package session

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ecr"
)

// runEquivalence drives phase 2 (screens 6 and 7): the DDA picks two
// schemas, then repeatedly picks one structure from each and edits the
// attribute equivalence classes. rel selects the relationship-set subphase
// (main menu option 4) over the object-class subphase (option 2).
func (s *Session) runEquivalence(rel bool) {
	const phase = "EQUIVALENCE CLASS SPECIFICATION"
	n1, n2, ok := s.pickSchemaPair(phase)
	if !ok {
		return
	}
	s1, s2 := s.ws.Schema(n1), s.ws.Schema(n2)
	for {
		s.io.Display(objectSelectionScreen(phase, s1, s2, rel).Text())
		line, ok := s.io.ReadLine("Enter <#1 #2> or (E)xit : ")
		if !ok {
			return
		}
		if c := choice(line); c == "e" || c == "x" {
			return
		}
		r1, r2, err := pickPair(line, s1, s2, rel)
		if err != nil {
			s.notify(phase, err.Error())
			continue
		}
		s.editEquivalences(r1, r2)
	}
}

// pickPair resolves a "#1 #2" (or "name1 name2") selection against the two
// schemas.
func pickPair(line string, s1, s2 *ecr.Schema, rel bool) (objRef, objRef, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return objRef{}, objRef{}, fmt.Errorf("enter two selections, one per schema")
	}
	r1, err := resolveSelection(fields[0], s1, rel)
	if err != nil {
		return objRef{}, objRef{}, err
	}
	r2, err := resolveSelection(fields[1], s2, rel)
	if err != nil {
		return objRef{}, objRef{}, err
	}
	return r1, r2, nil
}

func resolveSelection(sel string, s *ecr.Schema, rel bool) (objRef, error) {
	if rel {
		rs := s.Relationships
		if n, err := strconv.Atoi(sel); err == nil {
			if n < 1 || n > len(rs) {
				return objRef{}, fmt.Errorf("schema %s has no relationship #%d", s.Name, n)
			}
			r := rs[n-1]
			return objRef{schema: s.Name, name: r.Name, kind: ecr.KindRelationship, rel: r}, nil
		}
		if r := s.Relationship(sel); r != nil {
			return objRef{schema: s.Name, name: r.Name, kind: ecr.KindRelationship, rel: r}, nil
		}
		return objRef{}, fmt.Errorf("schema %s has no relationship %q", s.Name, sel)
	}
	if n, err := strconv.Atoi(sel); err == nil {
		if n < 1 || n > len(s.Objects) {
			return objRef{}, fmt.Errorf("schema %s has no object #%d", s.Name, n)
		}
		o := s.Objects[n-1]
		return objRef{schema: s.Name, name: o.Name, kind: o.Kind, object: o}, nil
	}
	if o := s.Object(sel); o != nil {
		return objRef{schema: s.Name, name: o.Name, kind: o.Kind, object: o}, nil
	}
	return objRef{}, fmt.Errorf("schema %s has no object %q", s.Name, sel)
}

// editEquivalences drives Screen 7 for one structure pair.
func (s *Session) editEquivalences(r1, r2 objRef) {
	const phase = "EQUIVALENCE CLASS SPECIFICATION"
	reg := s.ws.Registry()
	for {
		s.io.Display(equivalenceScreen(reg, r1, r2).Text())
		line, ok := s.io.ReadLine("(A)dd <#1 #2>, (D)elete <1|2 #>, or (E)xit => ")
		if !ok {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch choice(fields[0]) {
		case "a":
			if len(fields) != 3 {
				s.notify(phase, "usage: a <attr# in object1> <attr# in object2>")
				continue
			}
			a1, err1 := attrByIndex(r1, fields[1])
			a2, err2 := attrByIndex(r2, fields[2])
			if err1 != nil || err2 != nil {
				s.notify(phase, firstErr(err1, err2).Error())
				continue
			}
			if err := reg.Declare(r1.attrRef(a1.Name), r2.attrRef(a2.Name)); err != nil {
				s.notify(phase, err.Error())
			}
			s.ws.Invalidate()
		case "d":
			if len(fields) != 3 {
				s.notify(phase, "usage: d <1|2> <attr#>")
				continue
			}
			target := r1
			if fields[1] == "2" {
				target = r2
			}
			a, err := attrByIndex(target, fields[2])
			if err != nil {
				s.notify(phase, err.Error())
				continue
			}
			reg.Remove(target.attrRef(a.Name))
			s.ws.Invalidate()
		case "e", "x":
			return
		}
	}
}

func attrByIndex(r objRef, sel string) (ecr.Attribute, error) {
	attrs := r.attrs()
	n, err := strconv.Atoi(sel)
	if err == nil {
		if n < 1 || n > len(attrs) {
			return ecr.Attribute{}, fmt.Errorf("%s.%s has no attribute #%d", r.schema, r.name, n)
		}
		return attrs[n-1], nil
	}
	for _, a := range attrs {
		if a.Name == sel {
			return a, nil
		}
	}
	return ecr.Attribute{}, fmt.Errorf("%s.%s has no attribute %q", r.schema, r.name, sel)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

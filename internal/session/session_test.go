package session

import (
	"strings"
	"testing"

	"repro/internal/assertion"
)

// paperScript drives the complete running example of the paper through the
// tool's screens exactly as a DDA at a terminal would: define sc1 and sc2
// (Screens 2-5), declare the attribute equivalences (Screens 6-7), state
// the assertions of Screen 8, the relationship subphases, and finally
// integrate and browse the result (Screens 10-12).
func paperScript() []string { return PaperScript() }

func runPaperSession(t testing.TB) (*Workspace, *ScriptIO) {
	t.Helper()
	io := NewScriptIO(paperScript()...)
	ws := NewWorkspace()
	s := New(ws, io)
	if err := s.Run(); err != nil {
		t.Fatalf("session: %v", err)
	}
	return ws, io
}

func TestPaperSessionBuildsSchemas(t *testing.T) {
	ws, _ := runPaperSession(t)
	sc1 := ws.Schema("sc1")
	if sc1 == nil {
		t.Fatal("sc1 not defined")
	}
	if err := sc1.Validate(); err != nil {
		t.Fatal(err)
	}
	st := sc1.Stats()
	if st.Entities != 2 || st.Relationships != 1 || st.Attributes != 4 {
		t.Errorf("sc1 stats = %+v", st)
	}
	sc2 := ws.Schema("sc2")
	if sc2 == nil || sc2.Object("Grad_student") == nil || sc2.Relationship("Works") == nil {
		t.Fatalf("sc2 incomplete: %v", sc2)
	}
	maj := sc1.Relationship("Majors")
	p, ok := maj.Participant("Student")
	if !ok || p.Card.Min != 0 || p.Card.Max != 1 {
		t.Errorf("Majors Student participation = %+v", p)
	}
}

func TestPaperSessionIntegrates(t *testing.T) {
	ws, _ := runPaperSession(t)
	res, err := ws.Integrate("sc1", "sc2")
	if err != nil {
		t.Fatal(err)
	}
	s := res.Schema
	for _, want := range []string{"E_Department", "D_Stud_Facu", "Student", "Grad_student", "Faculty"} {
		if s.Object(want) == nil {
			t.Errorf("integrated schema missing %s", want)
		}
	}
	if s.Relationship("E_Stud_Majo") == nil || s.Relationship("Works") == nil {
		t.Error("integrated relationships wrong")
	}
}

func TestPaperSessionScreens(t *testing.T) {
	_, io := runPaperSession(t)
	out := io.Output()

	// Screen 1.
	if !strings.Contains(out, "Main Menu") || !strings.Contains(out, "6. Integrate schemas and view results") {
		t.Error("main menu missing")
	}
	// Screen 3 with sc1's structures (Student e 2, Department e 1,
	// Majors r 1 — the exact rows of the paper).
	found := false
	for _, sc := range io.ScreensContaining("Structure Information Collection Screen") {
		if strings.Contains(sc, "Student") && strings.Contains(sc, "Majors") {
			found = true
		}
	}
	if !found {
		t.Error("structure screen for sc1 missing")
	}
	// Screen 7 with Eq_class numbers.
	if len(io.ScreensContaining("Equivalence Class Creation and Deletion Screen")) == 0 {
		t.Error("equivalence screen missing")
	}
	// Screen 8 with the paper's attribute ratios.
	var s8 string
	for _, sc := range io.ScreensContaining("Assertion Collection For Object Pairs") {
		s8 = sc
	}
	if s8 == "" {
		t.Fatal("assertion collection screen missing")
	}
	for _, want := range []string{"0.5000", "0.3333", "sc1.Student", "sc2.Grad_student"} {
		if !strings.Contains(s8, want) {
			t.Errorf("Screen 8 missing %q:\n%s", want, s8)
		}
	}
	// Screen 10 with the integrated schema's counts.
	var s10 string
	for _, sc := range io.ScreensContaining("Object Class Screen") {
		s10 = sc
	}
	if s10 == "" {
		t.Fatal("object class screen missing")
	}
	for _, want := range []string{"Entities(2)", "Categories(3)", "Relationships(2)", "E_Department", "D_Stud_Facu", "E_Stud_Majo"} {
		if !strings.Contains(s10, want) {
			t.Errorf("Screen 10 missing %q:\n%s", want, s10)
		}
	}
	// Screen 11: Student's parent and child.
	var s11 string
	for _, sc := range io.ScreensContaining("Category Screen") {
		if strings.Contains(sc, "< Student >") {
			s11 = sc
		}
	}
	if s11 == "" || !strings.Contains(s11, "D_Stud_Facu") || !strings.Contains(s11, "Grad_student") {
		t.Errorf("Screen 11 wrong:\n%s", s11)
	}
	// Screens 12a/12b: component attributes of D_Name.
	comps := io.ScreensContaining("Component Attribute Screen")
	if len(comps) != 2 {
		t.Fatalf("component screens = %d, want 2", len(comps))
	}
	if !strings.Contains(comps[0], "original Object Name : Student") ||
		!strings.Contains(comps[0], "original Schema Name : sc1") {
		t.Errorf("Screen 12a wrong:\n%s", comps[0])
	}
	if !strings.Contains(comps[1], "original Object Name : Grad_student") ||
		!strings.Contains(comps[1], "original Schema Name : sc2") {
		t.Errorf("Screen 12b wrong:\n%s", comps[1])
	}
	// Participating objects screen.
	if len(io.ScreensContaining("Participating Objects In Relationship Screen")) == 0 {
		t.Error("participating objects screen missing")
	}
}

func TestSessionConflictFlow(t *testing.T) {
	// Reproduce Screen 9: build sc3/sc4, assert the containments, then
	// state the conflicting disjointness; the conflict screen must
	// appear and (K)eep must preserve the derived assertion.
	inputs := []string{
		"1",
		"a", "sc3",
		"a", "Instructor", "e",
		"a", "Name", "char", "y",
		"a", "Course", "char", "",
		"e", "e",
		"a", "sc4",
		"a", "Student", "e",
		"a", "Name", "char", "y",
		"a", "GPA", "real", "",
		"e",
		"a", "Grad_student", "e",
		"a", "Name", "char", "y",
		"a", "Support_type", "char", "",
		"e", "e",
		"e",
		"3", "sc3", "sc4",
		// Ranked pairs: with no equivalences all ratios are 0; order is
		// declaration order: 1 = Instructor/Student, 2 = Instructor/
		// Grad_student.
		"2 2", // Instructor contained in Grad_student
		// now assert Grad_student contained in Student... but that is
		// intra-sc4; instead follow the paper: the derivation comes
		// from Instructor ⊆ Grad_student and Grad_student ⊆ Student.
		// Our sc4 here keeps them as separate entity sets, so assert
		// the chain through the tool's pairs — the pair list only
		// crosses schemas, so state Instructor ⊆ Student is derivable
		// only via a category. Use an assertion instead:
		"1 0", // Instructor disjoint-nonintegrable Student -> no conflict yet
		"e",
		"e",
	}
	io := NewScriptIO(inputs...)
	ws := NewWorkspace()
	if err := New(ws, io).Run(); err != nil {
		t.Fatal(err)
	}
	// No conflict in this variant (disjoint ∘ subset is ambiguous);
	// instead check the matrix content.
	set := ws.ObjectAssertions("sc3", "sc4")
	if set.Len() < 2 {
		t.Errorf("assertions = %d", set.Len())
	}
}

func TestSessionConflictScreenAppears(t *testing.T) {
	// Force a direct conflict: assert equals then disjoint on the same
	// pair; Screen 9 must appear, and (K)eep retains the original.
	inputs := []string{
		"1",
		"a", "a1",
		"a", "X", "e", "a", "K", "int", "y", "e", "e",
		"a", "a2",
		"a", "Y", "e", "a", "K", "int", "y", "e", "e",
		"e",
		"3", "a1", "a2",
		"1 1", // X equals Y
		"1 0", // X disjoint Y -> conflict
		"k",   // keep
		"e",
		"e",
	}
	io := NewScriptIO(inputs...)
	ws := NewWorkspace()
	if err := New(ws, io).Run(); err != nil {
		t.Fatal(err)
	}
	if len(io.ScreensContaining("Assertion Conflict Resolution Screen")) == 0 {
		t.Fatal("conflict screen never shown")
	}
	set := ws.ObjectAssertions("a1", "a2")
	got := set.Kind(
		okeyS("a1", "X"),
		okeyS("a2", "Y"),
	)
	if got.Code() != 1 {
		t.Errorf("kept assertion = %v, want equals", got)
	}
}

func TestSessionConflictReplace(t *testing.T) {
	inputs := []string{
		"1",
		"a", "a1",
		"a", "X", "e", "a", "K", "int", "y", "e", "e",
		"a", "a2",
		"a", "Y", "e", "a", "K", "int", "y", "e", "e",
		"e",
		"3", "a1", "a2",
		"1 1", // X equals Y
		"1 0", // conflict
		"r",   // replace with the new disjoint assertion
		"e",
		"e",
	}
	io := NewScriptIO(inputs...)
	ws := NewWorkspace()
	if err := New(ws, io).Run(); err != nil {
		t.Fatal(err)
	}
	set := ws.ObjectAssertions("a1", "a2")
	if got := set.Kind(okeyS("a1", "X"), okeyS("a2", "Y")); got.Code() != 0 {
		t.Errorf("after replace = %v, want disjoint non-integrable", got)
	}
}

func TestSessionInputExhaustionIsGraceful(t *testing.T) {
	// Cutting the script anywhere must terminate without panic.
	full := paperScript()
	for _, cut := range []int{0, 1, 3, 7, 20, 40, 70, len(full) - 3} {
		if cut > len(full) {
			continue
		}
		io := NewScriptIO(full[:cut]...)
		ws := NewWorkspace()
		if err := New(ws, io).Run(); err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
	}
}

func okeyS(schema, object string) assertion.ObjKey {
	return assertion.ObjKey{Schema: schema, Object: object}
}

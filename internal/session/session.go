package session

import (
	"strings"
)

// IO abstracts the terminal: the tool displays full screens and reads line
// input. cmd/sit implements it over a real terminal; ScriptIO drives the
// tool from a canned input list in tests and benchmarks, acting as the
// scripted DDA this reproduction substitutes for an interactive one.
type IO interface {
	// Display shows a rendered screen.
	Display(screen string)
	// ReadLine prompts for and returns one input line; ok is false when
	// input is exhausted (treated as exit at every level).
	ReadLine(prompt string) (line string, ok bool)
}

// ScriptIO replays a fixed list of inputs and records every screen and
// prompt, for tests and benchmarks.
type ScriptIO struct {
	Inputs  []string
	pos     int
	Screens []string
	Prompts []string
}

// NewScriptIO builds a ScriptIO from input lines.
func NewScriptIO(inputs ...string) *ScriptIO {
	return &ScriptIO{Inputs: inputs}
}

// Display records the screen.
func (s *ScriptIO) Display(screen string) { s.Screens = append(s.Screens, screen) }

// ReadLine returns the next scripted input.
func (s *ScriptIO) ReadLine(prompt string) (string, bool) {
	s.Prompts = append(s.Prompts, prompt)
	if s.pos >= len(s.Inputs) {
		return "", false
	}
	line := s.Inputs[s.pos]
	s.pos++
	return line, true
}

// Output joins every displayed screen, separated by form feeds, for
// inspection.
func (s *ScriptIO) Output() string { return strings.Join(s.Screens, "\f") }

// LastScreen returns the most recently displayed screen.
func (s *ScriptIO) LastScreen() string {
	if len(s.Screens) == 0 {
		return ""
	}
	return s.Screens[len(s.Screens)-1]
}

// ScreensContaining returns the screens whose text contains the substring.
func (s *ScriptIO) ScreensContaining(sub string) []string {
	var out []string
	for _, sc := range s.Screens {
		if strings.Contains(sc, sub) {
			out = append(out, sc)
		}
	}
	return out
}

// Session runs the tool's state machine over a workspace and an IO.
type Session struct {
	ws *Workspace
	io IO
	// SavePath, when non-empty, is written on exit from the main menu.
	SavePath string
}

// New builds a session.
func New(ws *Workspace, io IO) *Session {
	return &Session{ws: ws, io: io}
}

// Workspace exposes the underlying workspace.
func (s *Session) Workspace() *Workspace { return s.ws }

// Run drives the main menu (Screen 1) until the DDA exits or input runs
// out. It returns the save error, if any.
func (s *Session) Run() error {
	for {
		s.io.Display(mainMenuScreen().Text())
		line, ok := s.io.ReadLine("Enter choice => ")
		if !ok {
			break
		}
		switch strings.TrimSpace(strings.ToLower(line)) {
		case "1":
			s.runSchemaCollection()
		case "2":
			s.runEquivalence(false)
		case "3":
			s.runAssertions(false)
		case "4":
			s.runEquivalence(true)
		case "5":
			s.runAssertions(true)
		case "6":
			s.runResults()
		case "7":
			s.runSuggestions()
		case "e", "x", "exit", "q":
			if s.SavePath != "" {
				return s.ws.Save(s.SavePath)
			}
			return nil
		}
	}
	if s.SavePath != "" {
		return s.ws.Save(s.SavePath)
	}
	return nil
}

// choice normalizes a menu selection.
func choice(line string) string {
	return strings.ToLower(strings.TrimSpace(line))
}

// readNonEmpty prompts until a non-empty line or input exhaustion.
func (s *Session) readNonEmpty(prompt string) (string, bool) {
	for {
		line, ok := s.io.ReadLine(prompt)
		if !ok {
			return "", false
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line, true
		}
	}
}

// pickSchemaPair runs the Schema Name Selection screen: the DDA names the
// two schemas being integrated.
func (s *Session) pickSchemaPair(phase string) (s1, s2 string, ok bool) {
	var rows []string
	for _, sc := range s.ws.Schemas() {
		rows = append(rows, sc.Name)
	}
	s.io.Display(schemaNameSelectionScreen(phase, rows).Text())
	n1, ok := s.readNonEmpty("Name of first schema => ")
	if !ok {
		return "", "", false
	}
	n2, ok := s.readNonEmpty("Name of second schema => ")
	if !ok {
		return "", "", false
	}
	if s.ws.Schema(n1) == nil || s.ws.Schema(n2) == nil || n1 == n2 {
		s.io.Display(messageScreen(phase, "Unknown or identical schema names: "+n1+", "+n2).Text())
		return "", "", false
	}
	return n1, n2, true
}

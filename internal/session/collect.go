package session

import (
	"strconv"
	"strings"

	"repro/internal/ecr"
)

// runSchemaCollection drives phase 1: Screens 2-5. The DDA defines any
// number of schemas, each with its structures and attributes.
func (s *Session) runSchemaCollection() {
	for {
		var names []string
		for _, sc := range s.ws.Schemas() {
			names = append(names, sc.Name)
		}
		s.io.Display(schemaNameCollectionScreen(names).Text())
		line, ok := s.io.ReadLine("Choose: (A)dd (D)elete (U)pdate (E)xit : ")
		if !ok {
			return
		}
		switch choice(line) {
		case "a":
			name, ok := s.readNonEmpty("New schema name => ")
			if !ok {
				return
			}
			sc := ecr.NewSchema(name)
			if err := s.ws.AddSchema(sc); err != nil {
				s.notify("SCHEMA COLLECTION", err.Error())
				continue
			}
			s.editSchema(sc)
		case "d":
			name, ok := s.readNonEmpty("Schema name to delete => ")
			if !ok {
				return
			}
			if !s.ws.RemoveSchema(name) {
				s.notify("SCHEMA COLLECTION", "No schema named "+name)
			}
		case "u":
			name, ok := s.readNonEmpty("Schema name to update => ")
			if !ok {
				return
			}
			sc := s.ws.Schema(name)
			if sc == nil {
				s.notify("SCHEMA COLLECTION", "No schema named "+name)
				continue
			}
			s.editSchema(sc)
			s.ws.Invalidate()
		case "e", "x":
			return
		}
	}
}

// editSchema drives the Structure Information Collection Screen (Screen 3)
// for one schema.
func (s *Session) editSchema(sc *ecr.Schema) {
	scroll := 0
	for {
		screen := structureCollectionScreen(sc, scroll)
		s.io.Display(screen.Text())
		line, ok := s.io.ReadLine("Choose: (S)croll (A)dd (D)elete (U)pdate (E)xit : ")
		if !ok {
			return
		}
		switch choice(line) {
		case "s":
			scroll += 5
			if scroll > len(sc.Objects)+len(sc.Relationships) {
				scroll = 0
			}
		case "a":
			s.addStructure(sc)
		case "d":
			name, ok := s.readNonEmpty("Structure name to delete => ")
			if !ok {
				return
			}
			if !sc.RemoveObject(name) && !sc.RemoveRelationship(name) {
				s.notify("SCHEMA COLLECTION", "No structure named "+name)
			}
		case "u":
			name, ok := s.readNonEmpty("Structure name to update => ")
			if !ok {
				return
			}
			if o := sc.Object(name); o != nil {
				s.editAttributes(sc.Name, name, o.Kind, &o.Attributes)
			} else if r := sc.Relationship(name); r != nil {
				s.editAttributes(sc.Name, name, ecr.KindRelationship, &r.Attributes)
			} else {
				s.notify("SCHEMA COLLECTION", "No structure named "+name)
			}
		case "e", "x":
			return
		}
	}
}

// addStructure collects one new structure: its name, type and details.
func (s *Session) addStructure(sc *ecr.Schema) {
	name, ok := s.readNonEmpty("Object name => ")
	if !ok {
		return
	}
	kindLine, ok := s.readNonEmpty("Type (e/c/r) => ")
	if !ok {
		return
	}
	kind, err := ecr.ParseKind(kindLine)
	if err != nil {
		s.notify("SCHEMA COLLECTION", err.Error())
		return
	}
	switch kind {
	case ecr.KindEntity:
		o := &ecr.ObjectClass{Name: name, Kind: ecr.KindEntity}
		if err := sc.AddObject(o); err != nil {
			s.notify("SCHEMA COLLECTION", err.Error())
			return
		}
		s.editAttributes(sc.Name, name, kind, &o.Attributes)
	case ecr.KindCategory:
		o := &ecr.ObjectClass{Name: name, Kind: ecr.KindCategory}
		if err := sc.AddObject(o); err != nil {
			s.notify("SCHEMA COLLECTION", err.Error())
			return
		}
		s.editCategory(sc, o)
		s.editAttributes(sc.Name, name, kind, &o.Attributes)
	case ecr.KindRelationship:
		r := &ecr.RelationshipSet{Name: name}
		if err := sc.AddRelationship(r); err != nil {
			s.notify("SCHEMA COLLECTION", err.Error())
			return
		}
		s.editRelationship(sc, r)
		s.editAttributes(sc.Name, name, kind, &r.Attributes)
	}
	s.registerNewAttrs(sc)
}

// registerNewAttrs keeps the equivalence registry aware of every attribute.
func (s *Session) registerNewAttrs(sc *ecr.Schema) {
	s.ws.Registry().RegisterSchema(sc)
}

// editCategory drives the Category Information Collection Screen.
func (s *Session) editCategory(sc *ecr.Schema, o *ecr.ObjectClass) {
	for {
		s.io.Display(categoryCollectionScreen(sc.Name, o).Text())
		line, ok := s.io.ReadLine("Choose: (A)dd (D)elete (E)xit : ")
		if !ok {
			return
		}
		switch choice(line) {
		case "a":
			parent, ok := s.readNonEmpty("Parent object class => ")
			if !ok {
				return
			}
			o.Parents = append(o.Parents, parent)
		case "d":
			parent, ok := s.readNonEmpty("Parent to remove => ")
			if !ok {
				return
			}
			for i, p := range o.Parents {
				if p == parent {
					o.Parents = append(o.Parents[:i], o.Parents[i+1:]...)
					break
				}
			}
		case "e", "x":
			return
		}
	}
}

// editRelationship drives the Relationship Information Collection Screen
// (Screen 4).
func (s *Session) editRelationship(sc *ecr.Schema, r *ecr.RelationshipSet) {
	for {
		s.io.Display(relationshipCollectionScreen(sc.Name, r).Text())
		line, ok := s.io.ReadLine("Choose: (A)dd (D)elete (E)xit : ")
		if !ok {
			return
		}
		switch choice(line) {
		case "a":
			object, ok := s.readNonEmpty("Participating object class => ")
			if !ok {
				return
			}
			cardLine, ok := s.io.ReadLine("Cardinality (min,max; max may be n) [0,n] => ")
			if !ok {
				return
			}
			card, err := parseCard(cardLine)
			if err != nil {
				s.notify("SCHEMA COLLECTION", err.Error())
				continue
			}
			part := ecr.Participation{Object: object, Card: card}
			if _, dup := r.Participant(object); dup {
				role, ok := s.readNonEmpty("Role (object participates twice) => ")
				if !ok {
					return
				}
				part.Role = role
			}
			r.Participants = append(r.Participants, part)
		case "d":
			object, ok := s.readNonEmpty("Participant to remove => ")
			if !ok {
				return
			}
			for i, p := range r.Participants {
				if p.Object == object {
					r.Participants = append(r.Participants[:i], r.Participants[i+1:]...)
					break
				}
			}
		case "e", "x":
			return
		}
	}
}

// parseCard reads "min,max" with "n" for unbounded; empty means (0,n).
func parseCard(line string) (ecr.Cardinality, error) {
	line = strings.TrimSpace(strings.Trim(strings.TrimSpace(line), "()"))
	if line == "" {
		return ecr.Cardinality{Min: 0, Max: ecr.N}, nil
	}
	parts := strings.Split(line, ",")
	if len(parts) != 2 {
		return ecr.Cardinality{}, errBadCard(line)
	}
	minPart := strings.TrimSpace(parts[0])
	maxPart := strings.TrimSpace(parts[1])
	minV, err := strconv.Atoi(minPart)
	if err != nil {
		return ecr.Cardinality{}, errBadCard(line)
	}
	maxV := ecr.N
	if !strings.EqualFold(maxPart, "n") {
		maxV, err = strconv.Atoi(maxPart)
		if err != nil {
			return ecr.Cardinality{}, errBadCard(line)
		}
	}
	c := ecr.Cardinality{Min: minV, Max: maxV}
	if !c.Valid() {
		return ecr.Cardinality{}, errBadCard(line)
	}
	return c, nil
}

type badCardError string

func (e badCardError) Error() string {
	return "bad cardinality " + string(e) + " (want min,max with 0 <= min <= max, max > 0 or n)"
}

func errBadCard(line string) error { return badCardError(line) }

// editAttributes drives the Attribute Information Collection Screen
// (Screen 5) over a structure's attribute list.
func (s *Session) editAttributes(schema, object string, kind ecr.Kind, attrs *[]ecr.Attribute) {
	scroll := 0
	for {
		s.io.Display(attributeCollectionScreen(schema, object, kind, *attrs, scroll).Text())
		line, ok := s.io.ReadLine("Choose: (S)croll (A)dd (D)elete (E)xit : ")
		if !ok {
			return
		}
		switch choice(line) {
		case "s":
			scroll += 5
			if scroll > len(*attrs) {
				scroll = 0
			}
		case "a":
			name, ok := s.readNonEmpty("Attribute name => ")
			if !ok {
				return
			}
			domain, ok := s.readNonEmpty("Domain => ")
			if !ok {
				return
			}
			keyLine, ok := s.io.ReadLine("Key (y/n) [n] => ")
			if !ok {
				return
			}
			*attrs = append(*attrs, ecr.Attribute{
				Name:   name,
				Domain: domain,
				Key:    strings.EqualFold(strings.TrimSpace(keyLine), "y"),
			})
		case "d":
			name, ok := s.readNonEmpty("Attribute to delete => ")
			if !ok {
				return
			}
			for i, a := range *attrs {
				if a.Name == name {
					*attrs = append((*attrs)[:i], (*attrs)[i+1:]...)
					break
				}
			}
		case "e", "x":
			return
		}
	}
}

// notify shows a message screen and waits for enter.
func (s *Session) notify(phase, msg string) {
	s.io.Display(messageScreen(phase, msg).Text())
	s.io.ReadLine("Press enter to continue => ")
}

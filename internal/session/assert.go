package session

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/assertion"
	"repro/internal/resemblance"
)

// runAssertions drives phase 3 (screens 8 and 9): pairs ranked by the
// resemblance function are shown, the DDA enters assertion codes, the tool
// closes the matrix incrementally after each entry and raises the conflict
// screen when a contradiction appears. rel selects the relationship
// subphase (menu option 5) over the object subphase (option 3).
func (s *Session) runAssertions(rel bool) {
	const phase = "ASSERTION SPECIFICATION"
	n1, n2, ok := s.pickSchemaPair(phase)
	if !ok {
		return
	}
	s1, s2 := s.ws.Schema(n1), s.ws.Schema(n2)

	var set *assertion.Engine
	if rel {
		set = s.ws.RelationshipAssertions(n1, n2)
	} else {
		set = s.ws.ObjectAssertions(n1, n2)
	}

	scroll := 0
	for {
		var pairs []resemblance.Pair
		if rel {
			pairs = s.ws.RankRelationships(s1, s2)
		} else {
			pairs = s.ws.RankObjects(s1, s2)
		}
		s.io.Display(assertionCollectionScreen(pairs, set, scroll, rel).Text())
		line, ok := s.io.ReadLine("Enter <#> <assertion 0-5>, (S)croll, (L)egend, (M)atrix, (R)etract <#>, or (E)xit : ")
		if !ok {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch choice(fields[0]) {
		case "s":
			scroll += 5
			if scroll > len(pairs) {
				scroll = 0
			}
			continue
		case "l":
			s.io.Display(legendScreen(phase).Text())
			s.io.ReadLine("Press enter to continue => ")
			continue
		case "m":
			// The Entity Assertion matrix, as the tool stores it:
			// every pair of structures across the two schemas.
			s.io.Display(matrixScreen(phase, set, matrixObjects(pairs)).Text())
			s.io.ReadLine("Press enter to continue => ")
			continue
		case "r":
			if len(fields) != 2 {
				s.notify(phase, "usage: r <pair #>")
				continue
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil || idx < 1 || idx > len(pairs) {
				s.notify(phase, "usage: r <pair #>")
				continue
			}
			p := pairs[idx-1]
			a := assertion.ObjKey{Schema: p.Schema1, Object: p.Object1}
			b := assertion.ObjKey{Schema: p.Schema2, Object: p.Object2}
			res, err := set.Retract(a, b)
			if err != nil {
				s.notify(phase, err.Error())
				continue
			}
			if !res.Found {
				s.notify(phase, fmt.Sprintf("no assertion held between %s and %s", a, b))
				continue
			}
			s.notify(phase, fmt.Sprintf("retracted; %d entries removed, %d re-derived",
				len(res.Removed), len(res.Rederived)))
			s.ws.Invalidate()
			continue
		case "e", "x":
			return
		}
		if len(fields) != 2 {
			s.notify(phase, "usage: <pair #> <assertion code 0-5>")
			continue
		}
		idx, err1 := strconv.Atoi(fields[0])
		code, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || idx < 1 || idx > len(pairs) {
			s.notify(phase, "usage: <pair #> <assertion code 0-5>")
			continue
		}
		kind, err := assertion.KindFromCode(code)
		if err != nil {
			s.notify(phase, err.Error())
			continue
		}
		p := pairs[idx-1]
		a := assertion.ObjKey{Schema: p.Schema1, Object: p.Object1}
		b := assertion.ObjKey{Schema: p.Schema2, Object: p.Object2}
		res := set.AssertAndClose(a, b, kind)
		for _, c := range res.Conflicts {
			s.resolveConflict(set, c)
		}
		s.ws.Invalidate()
	}
}

// resolveConflict drives the Assertion Conflict Resolution screen
// (Screen 9) for one conflict.
func (s *Session) resolveConflict(set *assertion.Engine, c *assertion.Conflict) {
	const phase = "ASSERTION SPECIFICATION"
	for {
		s.io.Display(conflictResolutionScreen(c).Text())
		line, ok := s.io.ReadLine("Resolve: (K)eep current, (R)eplace with new, (S)kip : ")
		if !ok {
			return
		}
		switch choice(line) {
		case "k", "s", "":
			// Keep the existing assertion; the proposal is dropped.
			return
		case "r":
			if c.Proposed.Kind == assertion.Unspecified {
				// The contradiction came from a composition with
				// no single replacement; the DDA must retract one
				// of the supports instead.
				s.notify(phase, "The derived contradiction has no single replacement; retract one of the supporting assertions.")
				return
			}
			res, err := set.Override(c.Proposed.A, c.Proposed.B, c.Proposed.Kind)
			if err != nil {
				s.notify(phase, err.Error())
				return
			}
			if res.Consistent() {
				return
			}
			c = res.Conflicts[0]
		default:
			s.notify(phase, fmt.Sprintf("unknown choice %q", line))
		}
	}
}

// matrixObjects collects the distinct objects of the ranked pairs in
// first-appearance order — schema 1's objects, then schema 2's — with a
// set-backed dedup so building the matrix view stays linear in the number
// of pairs.
func matrixObjects(pairs []resemblance.Pair) []assertion.ObjKey {
	seen := make(map[assertion.ObjKey]struct{}, 2*len(pairs))
	objs := make([]assertion.ObjKey, 0, 2*len(pairs))
	add := func(k assertion.ObjKey) {
		if _, ok := seen[k]; !ok {
			seen[k] = struct{}{}
			objs = append(objs, k)
		}
	}
	for _, p := range pairs {
		add(assertion.ObjKey{Schema: p.Schema1, Object: p.Object1})
	}
	for _, p := range pairs {
		add(assertion.ObjKey{Schema: p.Schema2, Object: p.Object2})
	}
	return objs
}

package session

import (
	"strings"
	"testing"

	"repro/internal/ecr"
	"repro/internal/paperex"
)

func suggestWorkspace(t testing.TB) *Workspace {
	t.Helper()
	ws := NewWorkspace()
	if err := ws.AddSchema(paperex.Sc1()); err != nil {
		t.Fatal(err)
	}
	if err := ws.AddSchema(paperex.Sc2()); err != nil {
		t.Fatal(err)
	}
	return ws
}

func TestSuggestionsAcceptAll(t *testing.T) {
	ws := suggestWorkspace(t)
	io := NewScriptIO(
		"7", "sc1", "sc2",
		"a", "", // accept all, dismiss notice
		"e",
		"e",
	)
	if err := New(ws, io).Run(); err != nil {
		t.Fatal(err)
	}
	screens := io.ScreensContaining("Candidate Equivalent Attributes Screen")
	if len(screens) == 0 {
		t.Fatal("suggestion screen missing")
	}
	if !strings.Contains(screens[0], "sc1.Student.Name") || !strings.Contains(screens[0], "EQUAL") {
		t.Errorf("suggestion rows wrong:\n%s", screens[0])
	}
	if !ws.Registry().Equivalent(
		ecr.AttrRef{Schema: "sc1", Object: "Student", Kind: ecr.KindEntity, Attr: "Name"},
		ecr.AttrRef{Schema: "sc2", Object: "Grad_student", Kind: ecr.KindEntity, Attr: "Name"},
	) {
		t.Error("accept-all did not declare the Name equivalence")
	}
}

func TestSuggestionsAcceptSingle(t *testing.T) {
	ws := suggestWorkspace(t)
	io := NewScriptIO(
		"7", "sc1", "sc2",
		"1", // accept top candidate
		"e",
		"e",
	)
	if err := New(ws, io).Run(); err != nil {
		t.Fatal(err)
	}
	if len(ws.Registry().Classes()) != 1 {
		t.Errorf("classes = %d, want exactly the accepted one", len(ws.Registry().Classes()))
	}
}

func TestSuggestionsAcceptedDisappear(t *testing.T) {
	ws := suggestWorkspace(t)
	io := NewScriptIO(
		"7", "sc1", "sc2",
		"1", // accept top candidate -> it must vanish from the next display
		"e",
		"e",
	)
	if err := New(ws, io).Run(); err != nil {
		t.Fatal(err)
	}
	screens := io.ScreensContaining("Candidate Equivalent Attributes Screen")
	if len(screens) < 2 {
		t.Fatalf("screens = %d", len(screens))
	}
	firstTop := topCandidateLine(screens[0])
	if firstTop == "" {
		t.Fatal("no top candidate on first display")
	}
	if strings.Contains(screens[1], firstTop) {
		t.Errorf("accepted candidate still listed:\n%s", screens[1])
	}
}

func topCandidateLine(screen string) string {
	for _, line := range strings.Split(screen, "\n") {
		if strings.Contains(line, "1> ") {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(strings.Trim(line, "|")), "1>"))
		}
	}
	return ""
}

func TestSuggestionsThresholdAdjustment(t *testing.T) {
	ws := suggestWorkspace(t)
	io := NewScriptIO(
		"7", "sc1", "sc2",
		"t 0.99", // very strict: fewer (likely zero borderline) candidates
		"t 2",    // invalid
		"",       // dismiss notice
		"e",
		"e",
	)
	if err := New(ws, io).Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sc := range io.ScreensContaining("Threshold: 0.99") {
		found = true
		_ = sc
	}
	if !found {
		t.Error("threshold change not reflected")
	}
	if len(io.ScreensContaining("threshold must be a number")) == 0 {
		t.Error("invalid threshold not reported")
	}
}

func TestMainMenuShowsTask7(t *testing.T) {
	io := NewScriptIO("e")
	if err := New(NewWorkspace(), io).Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(io.LastScreen(), "7. Suggest attribute equivalences") {
		t.Errorf("menu missing task 7:\n%s", io.LastScreen())
	}
}

package session

import (
	"strings"
	"testing"

	"repro/internal/ecr"
)

// collectSession runs a schema-collection script and returns the workspace.
func collectSession(t *testing.T, inputs ...string) (*Workspace, *ScriptIO) {
	t.Helper()
	io := NewScriptIO(inputs...)
	ws := NewWorkspace()
	if err := New(ws, io).Run(); err != nil {
		t.Fatal(err)
	}
	return ws, io
}

func TestCollectionDeleteSchema(t *testing.T) {
	ws, _ := collectSession(t,
		"1",
		"a", "tmp",
		"e", // leave empty structure screen
		"d", "tmp",
		"e",
		"e",
	)
	if ws.Schema("tmp") != nil {
		t.Error("schema not deleted")
	}
}

func TestCollectionDeleteUnknownSchemaNotifies(t *testing.T) {
	_, io := collectSession(t,
		"1",
		"d", "ghost", "", // dismiss notice
		"e",
		"e",
	)
	if len(io.ScreensContaining("No schema named ghost")) == 0 {
		t.Error("missing-schema notice not shown")
	}
}

func TestCollectionUpdateSchemaAddsStructure(t *testing.T) {
	ws, _ := collectSession(t,
		"1",
		"a", "s", "e", // create empty schema
		"u", "s", // update it
		"a", "X", "e",
		"a", "K", "int", "y",
		"e",
		"e",
		"e",
		"e",
	)
	s := ws.Schema("s")
	if s == nil || s.Object("X") == nil {
		t.Fatalf("update flow failed: %+v", s)
	}
	if len(s.Object("X").Attributes) != 1 {
		t.Errorf("attrs = %+v", s.Object("X").Attributes)
	}
}

func TestCollectionDuplicateSchemaNotifies(t *testing.T) {
	_, io := collectSession(t,
		"1",
		"a", "dup", "e",
		"a", "dup", "", // duplicate -> notice
		"e",
		"e",
	)
	if len(io.ScreensContaining("already defined")) == 0 {
		t.Error("duplicate notice not shown")
	}
}

func TestCollectionDeleteStructureAndAttribute(t *testing.T) {
	ws, _ := collectSession(t,
		"1",
		"a", "s",
		"a", "X", "e",
		"a", "K", "int", "y",
		"a", "V", "char", "",
		"d", "V", // delete attribute V
		"e",
		"a", "Y", "e",
		"a", "K", "int", "y",
		"e",
		"d", "Y", // delete structure Y
		"e",
		"e",
		"e",
	)
	s := ws.Schema("s")
	if s.Object("Y") != nil {
		t.Error("structure not deleted")
	}
	if _, ok := s.Object("X").Attribute("V"); ok {
		t.Error("attribute not deleted")
	}
	if _, ok := s.Object("X").Attribute("K"); !ok {
		t.Error("surviving attribute lost")
	}
}

func TestCollectionCategoryFlow(t *testing.T) {
	ws, _ := collectSession(t,
		"1",
		"a", "s",
		"a", "Person", "e",
		"a", "Name", "char", "y",
		"e",
		"a", "Student", "c",
		"a", "Person", // add parent
		"e",
		"a", "GPA", "real", "",
		"e",
		"e",
		"e",
		"e",
	)
	s := ws.Schema("s")
	st := s.Object("Student")
	if st == nil || st.Kind != ecr.KindCategory || len(st.Parents) != 1 || st.Parents[0] != "Person" {
		t.Fatalf("Student = %+v", st)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("collected schema invalid: %v", err)
	}
}

func TestCollectionCategoryParentRemoval(t *testing.T) {
	ws, _ := collectSession(t,
		"1",
		"a", "s",
		"a", "A", "e", "a", "K", "int", "y", "e",
		"a", "B", "e", "a", "K", "int", "y", "e",
		"a", "C", "c",
		"a", "A",
		"a", "B",
		"d", "A", // remove parent A again
		"e",
		"e", // no attributes
		"e",
		"e",
		"e",
	)
	c := ws.Schema("s").Object("C")
	if len(c.Parents) != 1 || c.Parents[0] != "B" {
		t.Errorf("C parents = %v", c.Parents)
	}
}

func TestCollectionBadKindNotifies(t *testing.T) {
	_, io := collectSession(t,
		"1",
		"a", "s",
		"a", "X", "z", "", // bad kind -> notice
		"e",
		"e",
		"e",
	)
	if len(io.ScreensContaining("unknown kind")) == 0 {
		t.Error("bad-kind notice not shown")
	}
}

func TestCollectionBadCardinalityNotifies(t *testing.T) {
	ws, io := collectSession(t,
		"1",
		"a", "s",
		"a", "A", "e", "a", "K", "int", "y", "e",
		"a", "R", "r",
		"a", "A", "9,1", "", // invalid -> notice
		"a", "A", "1,1",
		"a", "A", "", "other", // duplicate participant -> role prompt; empty card = (0,n)
		"e",
		"e", // no attributes
		"e",
		"e",
		"e",
	)
	if len(io.ScreensContaining("bad cardinality")) == 0 {
		t.Error("bad-cardinality notice not shown")
	}
	r := ws.Schema("s").Relationship("R")
	if len(r.Participants) != 2 {
		t.Fatalf("participants = %+v", r.Participants)
	}
	if r.Participants[1].Role != "other" {
		t.Errorf("role = %q", r.Participants[1].Role)
	}
	if r.Participants[1].Card != (ecr.Cardinality{Min: 0, Max: ecr.N}) {
		t.Errorf("default card = %v", r.Participants[1].Card)
	}
}

func TestCollectionRelationshipParticipantRemoval(t *testing.T) {
	ws, _ := collectSession(t,
		"1",
		"a", "s",
		"a", "A", "e", "a", "K", "int", "y", "e",
		"a", "B", "e", "a", "K", "int", "y", "e",
		"a", "R", "r",
		"a", "A", "0,1",
		"a", "B", "0,n",
		"d", "A",
		"a", "A", "1,1",
		"e",
		"e",
		"e",
		"e",
		"e",
	)
	r := ws.Schema("s").Relationship("R")
	p, ok := r.Participant("A")
	if !ok || p.Card != (ecr.Cardinality{Min: 1, Max: 1}) {
		t.Errorf("A participation = %+v ok=%v", p, ok)
	}
}

func TestCollectionScrolling(t *testing.T) {
	inputs := []string{"1", "a", "s"}
	// Twelve entities so the structure window must scroll.
	for i := 0; i < 12; i++ {
		inputs = append(inputs, "a", "E"+string(rune('A'+i)), "e",
			"a", "K", "int", "y", "e")
	}
	inputs = append(inputs, "s", "s", "s", "e", "e", "e")
	ws, io := collectSession(t, inputs...)
	if got := len(ws.Schema("s").Objects); got != 12 {
		t.Fatalf("objects = %d", got)
	}
	// At least one displayed structure screen carries a scroll marker.
	marked := false
	for _, sc := range io.ScreensContaining("Structure Information Collection Screen") {
		if strings.Contains(sc, "^") || strings.Contains(sc, "v") {
			marked = true
		}
	}
	if !marked {
		t.Error("no scroll markers on an overfull window")
	}
}

func TestParseCard(t *testing.T) {
	cases := []struct {
		in   string
		want ecr.Cardinality
		ok   bool
	}{
		{"", ecr.Cardinality{Min: 0, Max: ecr.N}, true},
		{"0,1", ecr.Cardinality{Min: 0, Max: 1}, true},
		{"(1,n)", ecr.Cardinality{Min: 1, Max: ecr.N}, true},
		{" 2 , 5 ", ecr.Cardinality{Min: 2, Max: 5}, true},
		{"1,N", ecr.Cardinality{Min: 1, Max: ecr.N}, true},
		{"x,1", ecr.Cardinality{}, false},
		{"1", ecr.Cardinality{}, false},
		{"3,1", ecr.Cardinality{}, false},
		{"1,x", ecr.Cardinality{}, false},
	}
	for _, c := range cases {
		got, err := parseCard(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseCard(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseCard(%q) should fail", c.in)
		}
	}
}

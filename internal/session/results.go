package session

import (
	"os"
	"strconv"
	"strings"

	"repro/internal/ecr"
	"repro/internal/integrate"
	"repro/internal/mapping"
)

// runResults drives phase 4 (main menu option 6): integrate a schema pair
// and browse the result through the screen hierarchy of Figure 6 —
// Object Class Screen at the root, Entity / Category / Relationship /
// Attribute screens below it, Component Attribute, Equivalent and
// Participating Objects screens at the leaves.
func (s *Session) runResults() {
	const phase = "INTEGRATED SCHEMA"
	n1, n2, ok := s.pickSchemaPair(phase)
	if !ok {
		return
	}
	res, err := s.ws.Integrate(n1, n2)
	if err != nil {
		if ie, isIE := err.(*integrate.Error); isIE && len(ie.Conflicts) > 0 {
			for _, c := range ie.Conflicts {
				set := s.ws.ObjectAssertions(n1, n2)
				s.resolveConflict(set, c)
			}
			s.ws.Invalidate()
			res, err = s.ws.Integrate(n1, n2)
		}
		if err != nil {
			s.notify(phase, err.Error())
			return
		}
	}
	s.browseSchema(res)
}

// browseSchema runs the Object Class Screen loop (Screen 10).
func (s *Session) browseSchema(res *integrate.Result) {
	sc := res.Schema
	for {
		s.io.Display(objectClassScreen(sc).Text())
		line, ok := s.io.ReadLine("Object class name and view (e.g. 'Student c'), (W)rite files, or e<x>it => ")
		if !ok {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if c := choice(fields[0]); (c == "x" || c == "e") && len(fields) == 1 {
			return
		}
		if c := choice(fields[0]); c == "w" && len(fields) == 1 {
			s.writeResult(res)
			continue
		}
		name := fields[0]
		view := "c"
		if len(fields) > 1 {
			view = choice(fields[1])
		}
		switch {
		case sc.Object(name) != nil:
			o := sc.Object(name)
			switch view {
			case "a":
				s.browseAttributes(sc, name, o.Kind.Word(), o.Attributes)
			default:
				s.browseObject(sc, o)
			}
		case sc.Relationship(name) != nil:
			r := sc.Relationship(name)
			switch view {
			case "a":
				s.browseAttributes(sc, name, "relationship", r.Attributes)
			default:
				s.browseRelationship(sc, r)
			}
		default:
			s.notify("INTEGRATED SCHEMA", "No structure named "+name)
		}
	}
}

// writeResult saves the integrated schema (ECR DDL) and the mappings
// (JSON) to files named by the DDA — the tool's output feeding the next
// design tool, per the paper's future-work pipeline.
func (s *Session) writeResult(res *integrate.Result) {
	const phase = "INTEGRATED SCHEMA"
	path, ok := s.readNonEmpty("Write integrated schema DDL to file => ")
	if !ok {
		return
	}
	if err := os.WriteFile(path, []byte(ecr.FormatSchema(res.Schema)), 0o644); err != nil {
		s.notify(phase, err.Error())
		return
	}
	mapPath, ok := s.io.ReadLine("Write mappings JSON to file (empty to skip) => ")
	if !ok {
		return
	}
	mapPath = strings.TrimSpace(mapPath)
	if mapPath == "" {
		s.notify(phase, "Wrote "+path)
		return
	}
	data, err := mapping.EncodeJSON(res.Mappings)
	if err != nil {
		s.notify(phase, err.Error())
		return
	}
	if err := os.WriteFile(mapPath, data, 0o644); err != nil {
		s.notify(phase, err.Error())
		return
	}
	s.notify(phase, "Wrote "+path+" and "+mapPath)
}

// browseObject shows the Entity or Category Screen (Screen 11) and its
// sub-screens.
func (s *Session) browseObject(sc *ecr.Schema, o *ecr.ObjectClass) {
	for {
		s.io.Display(categoryScreen(sc, o).Text())
		line, ok := s.io.ReadLine("<A>ttributes, <Q>uivalent objects, or e<x>it => ")
		if !ok {
			return
		}
		switch choice(line) {
		case "a":
			s.browseAttributes(sc, o.Name, o.Kind.Word(), o.Attributes)
		case "q":
			s.io.Display(equivalentScreen(o.Name, o.Sources).Text())
			s.io.ReadLine("Press enter to continue => ")
		case "e", "x":
			return
		}
	}
}

// browseRelationship shows the Relationship Screen and its sub-screens.
func (s *Session) browseRelationship(sc *ecr.Schema, r *ecr.RelationshipSet) {
	for {
		s.io.Display(relationshipScreen(sc, r).Text())
		line, ok := s.io.ReadLine("<A>ttributes, <P>articipating objects, <Q>uivalent objects, or e<x>it => ")
		if !ok {
			return
		}
		switch choice(line) {
		case "a":
			s.browseAttributes(sc, r.Name, "relationship", r.Attributes)
		case "p":
			s.io.Display(participatingObjectsScreen(r).Text())
			s.io.ReadLine("Press enter to continue => ")
		case "q":
			s.io.Display(equivalentScreen(r.Name, r.Sources).Text())
			s.io.ReadLine("Press enter to continue => ")
		case "e", "x":
			return
		}
	}
}

// browseAttributes shows the Attribute Screen, and for a derived attribute
// walks its Component Attribute Screens (Screens 12a, 12b, ...).
func (s *Session) browseAttributes(sc *ecr.Schema, owner, kindWord string, attrs []ecr.Attribute) {
	for {
		s.io.Display(attributeScreen(owner, kindWord, attrs).Text())
		line, ok := s.io.ReadLine("Enter <#> for components, or (E)xit : ")
		if !ok {
			return
		}
		c := choice(line)
		if c == "e" || c == "x" {
			return
		}
		n, err := strconv.Atoi(c)
		if err != nil || n < 1 || n > len(attrs) {
			continue
		}
		a := attrs[n-1]
		if !a.Derived() {
			s.notify("INTEGRATED SCHEMA", a.Name+" is not a derived attribute")
			continue
		}
		for i, comp := range a.Components {
			s.io.Display(componentAttributeScreen(owner, kindWord, a, comp, i+1, len(a.Components)).Text())
			line, ok := s.io.ReadLine("Press any key to continue, or (Q)uit => ")
			if !ok || choice(line) == "q" {
				break
			}
		}
	}
}

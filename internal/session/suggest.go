package session

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dictionary"
	"repro/internal/resemblance"
	"repro/internal/tui"
)

// runSuggestions drives main-menu task 7, the "syntactic and semantic
// processing enhancements" of the paper's future-work section: string
// matching over attribute names, the synonym/antonym dictionary, and the
// full attribute equivalence theory propose candidate equivalent
// attributes, which the DDA reviews and accepts into the registry —
// specification stays with the DDA, as the paper requires.
func (s *Session) runSuggestions() {
	const phase = "EQUIVALENCE SUGGESTIONS"
	n1, n2, ok := s.pickSchemaPair(phase)
	if !ok {
		return
	}
	s1, s2 := s.ws.Schema(n1), s.ws.Schema(n2)
	dict := dictionary.Builtin()
	threshold := 0.75
	for {
		cands := resemblance.SuggestEquivalencesTheory(
			s1, s2, resemblance.DefaultWeights(), dict, threshold)
		// Drop candidates already declared equivalent.
		fresh := cands[:0]
		for _, c := range cands {
			if !s.ws.Registry().Equivalent(c.A, c.B) {
				fresh = append(fresh, c)
			}
		}
		cands = fresh
		s.io.Display(suggestionScreen(cands, threshold).Text())
		line, ok := s.io.ReadLine("Accept <#>, (A)ll, (T)hreshold <t>, or (E)xit : ")
		if !ok {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch choice(fields[0]) {
		case "e", "x":
			return
		case "a":
			accepted := 0
			for _, c := range cands {
				if err := s.ws.Registry().Declare(c.A, c.B); err == nil {
					accepted++
				}
			}
			s.ws.Invalidate()
			s.notify(phase, fmt.Sprintf("accepted %d suggested equivalences", accepted))
		case "t":
			if len(fields) != 2 {
				s.notify(phase, "usage: t <threshold between 0 and 1>")
				continue
			}
			t, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || t < 0 || t > 1 {
				s.notify(phase, "threshold must be a number between 0 and 1")
				continue
			}
			threshold = t
		default:
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 1 || n > len(cands) {
				s.notify(phase, "usage: <candidate #>, a, t <threshold>, or e")
				continue
			}
			c := cands[n-1]
			if err := s.ws.Registry().Declare(c.A, c.B); err != nil {
				s.notify(phase, err.Error())
				continue
			}
			s.ws.Invalidate()
		}
	}
}

// suggestionScreen lists the candidate equivalent attribute pairs with
// their scores and the theory's domain relation.
func suggestionScreen(cands []resemblance.TheoryCandidate, threshold float64) *tui.Screen {
	var cells [][]string
	cells = append(cells, []string{"Attribute 1", "Attribute 2", "Score", "Domains"})
	for _, c := range cands {
		cells = append(cells, []string{
			c.A.String(),
			c.B.String(),
			fmt.Sprintf("%.2f", c.Score),
			c.Classification.Relation.String(),
		})
	}
	aligned := tui.Columns(cells)
	rows := tui.NumberRows(aligned[1:], 1)
	if len(rows) == 0 {
		rows = []string{"(no candidates above the threshold)"}
	}
	return &tui.Screen{
		Phase:   "EQUIVALENCE SUGGESTIONS",
		Name:    "Candidate Equivalent Attributes Screen",
		Header:  []string{fmt.Sprintf("Threshold: %.2f   (string matching + dictionary + attribute theory)", threshold)},
		Windows: []*tui.Window{{Title: aligned[0], Rows: rows, Height: 12}},
		Menu:    "Accept <#>, (A)ll, (T)hreshold <t>, or (E)xit :",
	}
}

package session

// PaperScript returns the scripted DDA inputs that drive the complete
// running example of the paper through the tool's screens: defining sc1 and
// sc2 (Screens 2-5), declaring the attribute equivalences of Screen 7,
// stating the assertions of Screen 8, and integrating and browsing the
// result (Screens 10-12). Tests and the benchmark harness replay it through
// a ScriptIO; cmd/sit users can perform the same steps interactively.
func PaperScript() []string {
	return []string{
		// --- Main menu: task 1, schema collection ---
		"1",
		// Screen 2: add schema sc1.
		"a", "sc1",
		// Screen 3 for sc1: add Student (e).
		"a", "Student", "e",
		"a", "Name", "char", "y",
		"a", "GPA", "real", "",
		"e",
		// add Department (e).
		"a", "Department", "e",
		"a", "Dname", "char", "y",
		"e",
		// add Majors (r): Student (0,1) -- Department (1,n), attr Since.
		"a", "Majors", "r",
		"a", "Student", "0,1",
		"a", "Department", "1,n",
		"e",
		"a", "Since", "date", "",
		"e",
		"e",
		// Screen 2: add schema sc2.
		"a", "sc2",
		"a", "Grad_student", "e",
		"a", "Name", "char", "y",
		"a", "GPA", "real", "",
		"a", "Support_type", "char", "",
		"e",
		"a", "Faculty", "e",
		"a", "Name", "char", "y",
		"a", "Rank", "char", "",
		"e",
		"a", "Department", "e",
		"a", "Dname", "char", "y",
		"a", "Location", "char", "",
		"e",
		"a", "Stud_major", "r",
		"a", "Grad_student", "0,1",
		"a", "Department", "0,n",
		"e",
		"a", "Since", "date", "",
		"e",
		"a", "Works", "r",
		"a", "Faculty", "1,1",
		"a", "Department", "1,n",
		"e",
		"a", "Percent_time", "int", "",
		"e",
		"e",
		"e",

		// --- Task 2: object attribute equivalences (Screens 6-7) ---
		"2", "sc1", "sc2",
		"1 1", "a 1 1", "a 2 2", "e",
		"1 2", "a 1 1", "e",
		"2 3", "a 1 1", "e",
		"e",

		// --- Task 4: relationship attribute equivalences ---
		"4", "sc1", "sc2",
		"1 1", "a 1 1", "e",
		"e",

		// --- Task 3: object assertions (Screen 8) ---
		"3", "sc1", "sc2",
		"1 3", // Student contains Grad_student
		"2 1", // Department equals Department
		"3 4", // Student and Faculty disjoint but integrable
		"e",

		// --- Task 5: relationship assertions ---
		"5", "sc1", "sc2",
		"1 1", // Majors equals Stud_major
		"e",

		// --- Task 6: integrate and view (Screens 10-12) ---
		"6", "sc1", "sc2",
		"Student c",
		"a",
		"1", "", "",
		"e",
		"q", "",
		"x",
		"E_Stud_Majo r",
		"p", "",
		"x",
		"x",

		// --- exit ---
		"e",
	}
}

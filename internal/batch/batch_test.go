package batch

import (
	"testing"

	"repro/internal/ecr"
	"repro/internal/errtest"
	"repro/internal/paperex"
)

const paperSpec = `
# The paper's running example.
schemas sc1 sc2
name paper

equiv Student.Name = Grad_student.Name
equiv Student.Name = Faculty.Name
equiv Student.GPA = Grad_student.GPA
equiv Department.Dname = Department.Dname
equiv Majors.Since = Stud_major.Since

assert Department 1 Department
assert Student 3 Grad_student
assert Student 4 Faculty
rel-assert Majors 1 Stud_major
`

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec(paperSpec)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Schema1 != "sc1" || spec.Schema2 != "sc2" || spec.Name != "paper" {
		t.Errorf("spec = %+v", spec)
	}
	if len(spec.Equivalences) != 5 || len(spec.ObjectAsserts) != 3 || len(spec.RelAsserts) != 1 {
		t.Errorf("counts = %d/%d/%d", len(spec.Equivalences), len(spec.ObjectAsserts), len(spec.RelAsserts))
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ src, substr string }{
		// Missing or malformed schemas line.
		{"", "no schema pair"},
		{"# only a comment\n\n", "no schema pair"},
		{"name x\nequiv a.b = c.d", "no schema pair"},
		{"schemas a", "usage: schemas"},
		{"schemas a b c", "usage: schemas"},
		// Malformed equiv lines: wrong arity, missing '=', '=' misplaced.
		{"schemas a b\nequiv x y", "usage: equiv"},
		{"schemas a b\nequiv a.b c.d", "usage: equiv"},
		{"schemas a b\nequiv a.b = c.d extra", "usage: equiv"},
		{"schemas a b\nequiv = a.b c.d", "usage: equiv"},
		// Assertion lines: wrong arity, out-of-range and non-numeric codes
		// (both assert and rel-assert take the same shape).
		{"schemas a b\nassert X Y", "usage: assert"},
		{"schemas a b\nassert X 1 Y Z", "usage: assert"},
		{"schemas a b\nrel-assert X Y", "usage: rel-assert"},
		{"schemas a b\nassert X 9 Y", "unknown assertion code"},
		{"schemas a b\nassert X -1 Y", "unknown assertion code"},
		{"schemas a b\nrel-assert X 9 Y", "unknown assertion code"},
		{"schemas a b\nassert X q Y", "bad assertion code"},
		{"schemas a b\nrel-assert X 1.5 Y", "bad assertion code"},
		// Auto thresholds: wrong arity, unparsable, out of (0, 1].
		{"schemas a b\nauto", "usage: auto"},
		{"schemas a b\nauto 0.5 0.6", "usage: auto"},
		{"schemas a b\nauto high", "bad threshold"},
		{"schemas a b\nauto 2", "bad threshold"},
		{"schemas a b\nauto 0", "bad threshold"},
		{"schemas a b\nauto -0.5", "bad threshold"},
		// Unknown directives.
		{"schemas a b\nbogus", "unknown directive"},
		{"schemas a b\nassert-rel X 1 Y", "unknown directive"},
		{"schemas a b\nname", "usage: name"},
		{"schemas a b\nname x y", "usage: name"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.src)
		if !errtest.Contains(err, c.substr) {
			t.Errorf("ParseSpec(%q) = %v, want %q", c.src, err, c.substr)
		}
	}
}

func TestParseSpecErrorReportsLineNumber(t *testing.T) {
	// The bad directive sits on line 4 (comments and blanks still count).
	src := "# header\nschemas a b\n\nbogus line here\n"
	_, err := ParseSpec(src)
	if !errtest.Contains(err, "spec line 4") {
		t.Errorf("ParseSpec = %v, want a 'spec line 4' error", err)
	}
}

func TestParseSpecCommentsAndWhitespace(t *testing.T) {
	// Inline comments are stripped, indentation and blank lines ignored.
	src := "  schemas a b   # the pair\n\n\tname x # trailing\n  # full-line comment\n"
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Schema1 != "a" || spec.Schema2 != "b" || spec.Name != "x" {
		t.Errorf("spec = %+v", spec)
	}
}

func TestRunPaperSpec(t *testing.T) {
	spec, err := ParseSpec(paperSpec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]*ecr.Schema{paperex.Sc1(), paperex.Sc2()}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Name != "paper" {
		t.Errorf("name = %q", res.Schema.Name)
	}
	for _, want := range []string{"E_Department", "D_Stud_Facu"} {
		if res.Schema.Object(want) == nil {
			t.Errorf("missing %s", want)
		}
	}
}

func TestRunAutoEquivalences(t *testing.T) {
	spec, err := ParseSpec(`
schemas sc1 sc2
auto 0.9
assert Department 1 Department
assert Student 3 Grad_student
assert Student 4 Faculty
rel-assert Majors 1 Stud_major
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run([]*ecr.Schema{paperex.Sc1(), paperex.Sc2()}, spec)
	if err != nil {
		t.Fatal(err)
	}
	// The dictionary-based suggestions recover the paper's equivalences,
	// so the integrated result matches Figure 5's shape.
	student := res.Schema.Object("Student")
	if student == nil {
		t.Fatal("Student missing")
	}
	if _, ok := student.Attribute("D_Name"); !ok {
		t.Errorf("auto equivalences missed Name: %+v", student.Attributes)
	}
}

func TestRunErrors(t *testing.T) {
	spec, err := ParseSpec("schemas nope sc2\nassert A 1 B")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run([]*ecr.Schema{paperex.Sc1(), paperex.Sc2()}, spec); err == nil {
		t.Error("unknown schema should fail")
	}
	spec2, err := ParseSpec("schemas sc1 sc2\nassert Nope 1 Department")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run([]*ecr.Schema{paperex.Sc1(), paperex.Sc2()}, spec2); err == nil {
		t.Error("unknown object should fail")
	}
	spec3, err := ParseSpec("schemas sc1 sc2\nequiv Nope.X = Department.Dname")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run([]*ecr.Schema{paperex.Sc1(), paperex.Sc2()}, spec3); err == nil {
		t.Error("unknown equivalence target should fail")
	}
}

func TestParseSpecNeverPanics(t *testing.T) {
	inputs := []string{
		"schemas", "equiv", "assert", "rel-assert", "auto",
		"schemas a b\nequiv x =", "schemas a b\nassert x 1",
		"name\nschemas a b", "\x00\x01\x02",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseSpec(src)
		}()
	}
}

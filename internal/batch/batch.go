// Package batch runs an integration non-interactively from a textual
// specification: which two schemas to integrate, the attribute
// equivalences, and the assertions. It is the scripted-DDA counterpart of
// the interactive tool, used by cmd/sit-batch and by the benchmark harness.
//
// Specification format, by example:
//
//	# integrate the paper's running example
//	schemas sc1 sc2
//	name INT_sc1_sc2
//	equiv Student.Name = Grad_student.Name
//	equiv Student.Name = Faculty.Name
//	assert Department 1 Department
//	assert Student 3 Grad_student
//	assert Student 4 Faculty
//	rel-assert Majors 1 Stud_major
//	auto 0.95
//
// "equiv a.b = c.d" resolves a.b against the first schema and c.d against
// the second. "assert O1 <code> O2" states the numbered assertion (the
// codes of the tool's screens: 1 equals, 2 contained-in, 3 contains, 4
// disjoint-integrable, 5 may-be, 0 disjoint-nonintegrable). "auto <t>"
// additionally applies every dictionary-suggested attribute equivalence
// scoring at least t.
package batch

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/assertion"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/ecr"
	"repro/internal/integrate"
	"repro/internal/resemblance"
)

// AssertLine is one assertion statement of a spec.
type AssertLine struct {
	Object1 string
	Code    int
	Object2 string
}

// Spec is a parsed integration specification.
type Spec struct {
	Schema1, Schema2 string
	Name             string
	Equivalences     [][2]string
	ObjectAsserts    []AssertLine
	RelAsserts       []AssertLine
	// AutoThreshold > 0 enables dictionary-based suggestion of further
	// attribute equivalences at that score threshold.
	AutoThreshold float64
	// Dict optionally overrides the builtin dictionary used by the
	// auto-suggestion pass (set by the caller, not the spec file).
	Dict *dictionary.Dictionary
}

// ParseSpec reads a specification. '#' comments run to end of line.
func ParseSpec(src string) (*Spec, error) {
	spec := &Spec{}
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("batch: spec line %d: %s", i+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "schemas":
			if len(fields) != 3 {
				return nil, errf("usage: schemas <first> <second>")
			}
			spec.Schema1, spec.Schema2 = fields[1], fields[2]
		case "name":
			if len(fields) != 2 {
				return nil, errf("usage: name <integrated schema name>")
			}
			spec.Name = fields[1]
		case "equiv":
			if len(fields) != 4 || fields[2] != "=" {
				return nil, errf("usage: equiv <obj.attr> = <obj.attr>")
			}
			spec.Equivalences = append(spec.Equivalences, [2]string{fields[1], fields[3]})
		case "assert", "rel-assert":
			if len(fields) != 4 {
				return nil, errf("usage: %s <object1> <code 0-5> <object2>", fields[0])
			}
			code, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, errf("bad assertion code %q", fields[2])
			}
			if _, err := assertion.KindFromCode(code); err != nil {
				return nil, errf("%v", err)
			}
			al := AssertLine{Object1: fields[1], Code: code, Object2: fields[3]}
			if fields[0] == "assert" {
				spec.ObjectAsserts = append(spec.ObjectAsserts, al)
			} else {
				spec.RelAsserts = append(spec.RelAsserts, al)
			}
		case "auto":
			if len(fields) != 2 {
				return nil, errf("usage: auto <threshold>")
			}
			t, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || t <= 0 || t > 1 {
				return nil, errf("bad threshold %q (want 0 < t <= 1)", fields[1])
			}
			spec.AutoThreshold = t
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	if spec.Schema1 == "" || spec.Schema2 == "" {
		return nil, fmt.Errorf("batch: spec names no schema pair (need a 'schemas' line)")
	}
	return spec, nil
}

// Run executes the spec against the given schemas.
func Run(schemas []*ecr.Schema, spec *Spec) (*integrate.Result, error) {
	find := func(name string) *ecr.Schema {
		for _, s := range schemas {
			if s.Name == name {
				return s
			}
		}
		return nil
	}
	s1, s2 := find(spec.Schema1), find(spec.Schema2)
	if s1 == nil {
		return nil, fmt.Errorf("batch: schema %q not found", spec.Schema1)
	}
	if s2 == nil {
		return nil, fmt.Errorf("batch: schema %q not found", spec.Schema2)
	}
	it, err := core.New(s1, s2)
	if err != nil {
		return nil, err
	}
	if spec.AutoThreshold > 0 {
		dict := spec.Dict
		if dict == nil {
			dict = dictionary.Builtin()
		}
		cands := resemblance.SuggestEquivalences(s1, s2,
			resemblance.DefaultWeights(), dict, spec.AutoThreshold)
		resemblance.ApplySuggestions(it.Registry(), cands)
	}
	for _, pair := range spec.Equivalences {
		if err := it.DeclareEquivalent(pair[0], pair[1]); err != nil {
			return nil, err
		}
	}
	for _, a := range spec.ObjectAsserts {
		kind, _ := assertion.KindFromCode(a.Code)
		if err := it.Assert(a.Object1, kind, a.Object2); err != nil {
			return nil, err
		}
	}
	for _, a := range spec.RelAsserts {
		kind, _ := assertion.KindFromCode(a.Code)
		if err := it.AssertRelationship(a.Object1, kind, a.Object2); err != nil {
			return nil, err
		}
	}
	return it.Integrate(spec.Name)
}

package batch

import (
	"testing"

	"repro/internal/assertion"
)

// FuzzParseSpec guards the spec parser against panics and checks the
// invariants any accepted spec must hold: a named schema pair, assertion
// codes the tool defines, well-formed equivalence references and a
// threshold in (0, 1].
func FuzzParseSpec(f *testing.F) {
	f.Add("schemas sc1 sc2\nname INT_sc1_sc2\n" +
		"equiv Student.Name = Grad_student.Name\n" +
		"assert Department 1 Department\n" +
		"assert Student 3 Grad_student\n" +
		"rel-assert Majors 1 Stud_major\n" +
		"auto 0.95\n")
	f.Add("schemas a b")
	f.Add("# comment only\nschemas a b # trailing")
	f.Add("schemas a\n")
	f.Add("equiv x.y = z")
	f.Add("assert A six B")
	f.Add("auto 2")
	f.Add("")
	f.Add("schemas a b\r\nassert A 0 B\n\tname  n ")
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := ParseSpec(src)
		if err != nil {
			return
		}
		if spec.Schema1 == "" || spec.Schema2 == "" {
			t.Fatalf("accepted spec without a schema pair: %+v", spec)
		}
		for _, a := range append(append([]AssertLine(nil), spec.ObjectAsserts...), spec.RelAsserts...) {
			if _, err := assertion.KindFromCode(a.Code); err != nil {
				t.Fatalf("accepted assertion with bad code %d: %v", a.Code, err)
			}
			if a.Object1 == "" || a.Object2 == "" {
				t.Fatalf("accepted assertion with empty object: %+v", a)
			}
		}
		for _, pair := range spec.Equivalences {
			if pair[0] == "" || pair[1] == "" {
				t.Fatalf("accepted equivalence with empty side: %+v", pair)
			}
		}
		if spec.AutoThreshold < 0 || spec.AutoThreshold > 1 {
			t.Fatalf("accepted threshold %v outside (0, 1]", spec.AutoThreshold)
		}
	})
}

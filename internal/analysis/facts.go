package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// A Fact is a typed datum an analyzer attaches to an object or a package so
// checks compose across packages, in the manner of go/analysis facts. A
// fact type is a pointer-to-struct with JSON-serializable exported fields;
// the AFact marker keeps arbitrary values out of the fact store.
//
// Facts travel between compilation units through the drivers: the unit
// (go vet -vettool) driver writes each package's facts to its .vetx output
// and reads its dependencies' facts back through cfg.PackageVetx, and the
// module driver carries them in memory (and in its cross-run cache). Both
// propagate transitively: a package's exported fact set is the union of
// what its analyzers exported and everything imported from its
// dependencies, so a fact rides from internal/journal through
// internal/replication to internal/server without the middle package
// knowing about it.
type Fact interface{ AFact() }

// FactKind distinguishes object facts (attached to a package-level
// function, var or const, keyed by ObjectKey) from package facts (attached
// to a whole package, keyed by its import path).
const (
	ObjectFactKind  = "object"
	PackageFactKind = "package"
)

// FactRecord is one serialized fact: who exported it, what it is attached
// to, its Go type name, and the JSON payload.
type FactRecord struct {
	Analyzer string          `json:"analyzer"`
	Kind     string          `json:"kind"`
	Key      string          `json:"key"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// Decode unmarshals the record's payload into fact (a pointer).
func (r FactRecord) Decode(fact any) error {
	return json.Unmarshal(r.Data, fact)
}

type factKey struct{ analyzer, kind, key, typ string }

// FactSet is an ordered collection of fact records, deduplicated by
// (analyzer, kind, key, type) with last-add-wins.
type FactSet struct {
	records map[factKey]json.RawMessage
	order   []factKey
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{records: map[factKey]json.RawMessage{}}
}

func (fs *FactSet) add(k factKey, data json.RawMessage) {
	if _, ok := fs.records[k]; !ok {
		fs.order = append(fs.order, k)
	}
	fs.records[k] = data
}

// Add inserts one record.
func (fs *FactSet) Add(rec FactRecord) {
	fs.add(factKey{rec.Analyzer, rec.Kind, rec.Key, rec.Type}, rec.Data)
}

// Merge copies every record of other into fs.
func (fs *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for _, k := range other.order {
		fs.add(k, other.records[k])
	}
}

// Len reports the number of records.
func (fs *FactSet) Len() int { return len(fs.records) }

// Records returns the records sorted into a deterministic order.
func (fs *FactSet) Records() []FactRecord {
	out := make([]FactRecord, 0, len(fs.records))
	for _, k := range fs.order {
		out = append(out, FactRecord{Analyzer: k.analyzer, Kind: k.kind, Key: k.key, Type: k.typ, Data: fs.records[k]})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Type < b.Type
	})
	return out
}

// EncodeJSON serializes the set as a JSON array of records.
func (fs *FactSet) EncodeJSON() ([]byte, error) {
	return json.Marshal(fs.Records())
}

// DecodeFactSet parses a JSON array of records.
func DecodeFactSet(data []byte) (*FactSet, error) {
	var recs []FactRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("analysis: decode fact set: %w", err)
	}
	fs := NewFactSet()
	for _, r := range recs {
		fs.Add(r)
	}
	return fs, nil
}

func factTypeName(fact Fact) string {
	t := fmt.Sprintf("%T", fact)
	if i := strings.LastIndexByte(t, '.'); i >= 0 {
		t = t[i+1:]
	}
	return t
}

// BasePath strips a test-variant suffix from a package path:
// "repro/internal/server [repro/internal/server.test]" and
// "repro/internal/server" are the same package to every analyzer contract.
func BasePath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// ObjectKey names a package-level object stably across compilation units:
// "pkgpath.Name" for functions, vars and consts, "pkgpath.Recv.Name" for
// methods. Unexported objects are included — facts are a tool-internal
// channel, not an API surface. Returns "" for objects facts cannot attach
// to (locals, builtins, objects without a package).
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	// Only package-scope objects (and methods) have stable names.
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if rn := recvTypeName(sig.Recv().Type()); rn != "" {
				return BasePath(fn.Pkg().Path()) + "." + rn + "." + fn.Name()
			}
			return ""
		}
		return BasePath(fn.Pkg().Path()) + "." + fn.Name()
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return BasePath(obj.Pkg().Path()) + "." + obj.Name()
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// ExportObjectFact attaches a fact to obj for this analyzer. The object
// must be package-level (or a method); others are silently skipped.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	key := ObjectKey(obj)
	if key == "" || p.exported == nil {
		return
	}
	p.exportFact(ObjectFactKind, key, fact)
}

// ExportPackageFact attaches a fact to the package being analyzed.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.exported == nil {
		return
	}
	p.exportFact(PackageFactKind, BasePath(p.Pkg.Path()), fact)
}

func (p *Pass) exportFact(kind, key string, fact Fact) {
	data, err := json.Marshal(fact)
	if err != nil {
		// Fact types are pointer-to-struct with plain fields; a marshal
		// failure is a programming error in the analyzer.
		panic(fmt.Sprintf("analysis: marshal %s fact %s for %s: %v", p.Analyzer.Name, factTypeName(fact), key, err))
	}
	p.exported.Add(FactRecord{Analyzer: p.Analyzer.Name, Kind: kind, Key: key, Type: factTypeName(fact), Data: data})
}

// ImportObjectFact loads the fact attached to obj by this analyzer in a
// dependency, filling fact and reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.importFact(ObjectFactKind, ObjectKey(obj), fact)
}

// ImportPackageFact loads the fact this analyzer attached to the package
// with the given import path in a dependency.
func (p *Pass) ImportPackageFact(pkgPath string, fact Fact) bool {
	return p.importFact(PackageFactKind, BasePath(pkgPath), fact)
}

func (p *Pass) importFact(kind, key string, fact Fact) bool {
	if p.imported == nil || key == "" {
		return false
	}
	data, ok := p.imported.records[factKey{p.Analyzer.Name, kind, key, factTypeName(fact)}]
	if !ok {
		return false
	}
	return json.Unmarshal(data, fact) == nil
}

// AllImportedFacts lists the imported records of this analyzer with the
// given kind and fact type, for analyzers that aggregate over everything
// their dependencies exported (decode each with FactRecord.Decode).
func (p *Pass) AllImportedFacts(kind string, fact Fact) []FactRecord {
	if p.imported == nil {
		return nil
	}
	typ := factTypeName(fact)
	var out []FactRecord
	for _, rec := range p.imported.Records() {
		if rec.Analyzer == p.Analyzer.Name && rec.Kind == kind && rec.Type == typ {
			out = append(out, rec)
		}
	}
	return out
}

// Package journalorder enforces write-ahead ordering: durable-state
// mutations must be preceded, in the same function body, by an append to
// the workspace journal.
//
// The analyzer is configured with two sets of functions, named
// "pkgpath.Recv.Method" (or "pkgpath.Func"):
//
//   - Mutators: calls that change state the server promises to survive a
//     crash (adding schemas, declaring equivalences, recording assertions);
//   - JournalFns: the sanctioned journaling helpers that persist a record
//     before the mutation applies.
//
// A mutator call is clean when a journal call lexically precedes it in the
// same enclosing function declaration. Replay and recovery code applies
// records that are already durable, so functions marked "//sit:replay" are
// exempt — the directive declares the function is only reached from
// journal recovery, it does not silence a live-path finding.
package journalorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Config names the mutator and journaling functions.
type Config struct {
	// Packages are the import paths where the write-ahead contract holds
	// (the durable layer). Empty means every package — packages below the
	// durability boundary call mutators freely and are not configured.
	Packages []string
	// Mutators are durable-state mutation calls, "pkgpath.Recv.Method".
	Mutators []string
	// JournalFns are the write-ahead helpers that must precede a mutator.
	JournalFns []string
}

// New builds a journalorder analyzer for the given configuration.
func New(cfg Config) *analysis.Analyzer {
	pkgs := map[string]bool{}
	for _, p := range cfg.Packages {
		pkgs[p] = true
	}
	mut := map[string]bool{}
	for _, m := range cfg.Mutators {
		mut[m] = true
	}
	jrn := map[string]bool{}
	for _, j := range cfg.JournalFns {
		jrn[j] = true
	}
	return &analysis.Analyzer{
		Name: "journalorder",
		Doc:  "journal durable-state mutations before applying them",
		Run: func(pass *analysis.Pass) error {
			if len(pkgs) > 0 && !pkgs[analysis.BasePath(pass.Pkg.Path())] {
				return nil
			}
			return run(pass, mut, jrn)
		},
	}
}

func run(pass *analysis.Pass, mutators, journalFns map[string]bool) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.HasDirective(fn.Doc, "replay") {
				continue
			}
			checkFunc(pass, fn, mutators, journalFns)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, mutators, journalFns map[string]bool) {
	var journaled token.Pos = token.NoPos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(pass, call)
		if name == "" {
			return true
		}
		switch {
		case journalFns[name]:
			if journaled == token.NoPos || call.Pos() < journaled {
				journaled = call.Pos()
			}
		case mutators[name]:
			if journaled == token.NoPos || call.Pos() < journaled {
				pass.Reportf(call.Pos(), "durable mutation %s is not preceded by a journal append in this function; write ahead first or mark the function //sit:replay", name)
			}
		}
		return true
	})
}

// calleeName resolves a call to "pkgpath.Recv.Method" / "pkgpath.Func", or
// "" for calls through function values and other statically unresolvable
// forms.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name := analysis.BasePath(fn.Pkg().Path())
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if rn := namedName(sig.Recv().Type()); rn != "" {
			name += "." + rn
		}
	}
	return name + "." + fn.Name()
}

func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// Package store is the durable-state stand-in for the journalorder
// fixture: DB.Put is the configured mutator.
package store

type DB struct{ m map[string]string }

func New() *DB { return &DB{m: map[string]string{}} }

func (d *DB) Put(k, v string) { d.m[k] = v }

func (d *DB) Get(k string) string { return d.m[k] }

// Package jo exercises journalorder: mutations with and without a
// preceding journal append, the replay exemption, and read-only calls.
package jo

import "jo/store"

type Server struct{ db *store.DB }

func (s *Server) journal(op string) error { return nil }

func (s *Server) good(k, v string) {
	if err := s.journal("put"); err != nil {
		return
	}
	s.db.Put(k, v)
}

func (s *Server) bad(k, v string) {
	s.db.Put(k, v) // want "durable mutation jo/store.DB.Put is not preceded by a journal append"
}

func (s *Server) badOrder(k, v string) {
	s.db.Put(k, v) // want "durable mutation jo/store.DB.Put is not preceded by a journal append"
	_ = s.journal("put")
}

// replay applies records that are already durable.
//
//sit:replay
func (s *Server) replay(k, v string) {
	s.db.Put(k, v)
}

func (s *Server) read(k string) string {
	return s.db.Get(k)
}

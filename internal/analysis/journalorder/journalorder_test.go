package journalorder_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/journalorder"
)

func TestJournalorder(t *testing.T) {
	a := journalorder.New(journalorder.Config{
		Mutators:   []string{"jo/store.DB.Put"},
		JournalFns: []string{"jo.Server.journal"},
	})
	analyzertest.Run(t, "testdata/src", "jo", a)
}

// Package cls exercises errtype: string-matching on error text, naked
// sentinel comparison, and the sanctioned errors.Is/errors.As forms.
package cls

import (
	"errors"
	"fmt"
	"strings"
)

var errGone = errors.New("gone")

type codeError struct{ code int }

func (e *codeError) Error() string { return fmt.Sprintf("code %d", e.code) }

func badContains(err error) bool {
	return strings.Contains(err.Error(), "gone") // want "strings.Contains on err.Error"
}

func badPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "code") // want "strings.HasPrefix on err.Error"
}

func badEqual(err error) bool {
	return err.Error() == "gone" // want "comparison of err.Error"
}

func badSentinel(err error) bool {
	return err == errGone // want "direct == comparison of error values"
}

func badNotSentinel(err error) bool {
	return err != errGone // want "direct != comparison of error values"
}

func goodIs(err error) bool {
	return errors.Is(err, errGone)
}

func goodAs(err error) bool {
	var ce *codeError
	return errors.As(err, &ce)
}

func goodNilCheck(err error) bool {
	return err != nil
}

func goodPlainStrings(s string) bool {
	return strings.Contains(s, "gone")
}

func goodMessageForHumans(err error) string {
	return "failed: " + err.Error()
}

// Package errtype forbids classifying errors by their message text or by
// naked identity comparison.
//
// The server's error taxonomy is typed — journal.Error codes, the
// server.ErrNotFound and workspace sentinels, the queue sentinels — and
// every classification site must go through errors.Is or errors.As so that
// wrapped errors keep their meaning. The analyzer flags:
//
//   - ==/!= between two error values (unless one side is nil);
//   - strings.Contains/HasPrefix/HasSuffix/EqualFold/Index whose arguments
//     include an err.Error() call;
//   - ==/!= comparing an err.Error() result against anything.
//
// This is the bug class caught by hand in the PR 2 review (HTTP status
// derived from substring-matching error text); errtype makes the catch
// mechanical. Tests that genuinely need to assert on rendered messages use
// the internal/errtest helper, which is the one sanctioned
// message-matching point.
package errtype

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the errtype analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errtype",
	Doc:  "classify errors with errors.Is/errors.As, never by message text or ==",
	Run:  run,
}

var stringsMatchers = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"EqualFold": true,
	"Index":     true,
	"Compare":   true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.CallExpr:
				checkStringsCall(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkComparison(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	if isErrorCall(pass, cmp.X) || isErrorCall(pass, cmp.Y) {
		pass.Reportf(cmp.OpPos, "comparison of err.Error() text; classify with errors.Is/errors.As against a typed error")
		return
	}
	if isErrorValue(pass, cmp.X) && isErrorValue(pass, cmp.Y) &&
		!isNil(pass, cmp.X) && !isNil(pass, cmp.Y) {
		pass.Reportf(cmp.OpPos, "direct %s comparison of error values; use errors.Is so wrapped errors match", cmp.Op)
	}
}

func checkStringsCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !stringsMatchers[sel.Sel.Name] {
		return
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	for _, arg := range call.Args {
		if containsErrorCall(pass, arg) {
			pass.Reportf(call.Pos(), "strings.%s on err.Error() text; classify with errors.Is/errors.As against a typed error", sel.Sel.Name)
			return
		}
	}
}

// isErrorCall reports whether expr is a call to the Error() method of an
// error value.
func isErrorCall(pass *analysis.Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorValue(pass, sel.X)
}

func containsErrorCall(pass *analysis.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && isErrorCall(pass, e) {
			found = true
			return false
		}
		return true
	})
	return found
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorValue reports whether expr's static type implements error. Pointer
// receivers are considered too, so *journal.Error values qualify.
func isErrorValue(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if types.Implements(t, errorIface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if types.Implements(types.NewPointer(t), errorIface) {
			return true
		}
	}
	return false
}

func isNil(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	return ok && tv.IsNil()
}

package errtype_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/errtype"
)

func TestErrtype(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "cls", errtype.Analyzer)
}

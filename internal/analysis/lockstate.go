package analysis

import (
	"go/ast"
	"go/types"
)

// LockState is the abstract state of one mutex at one program point, as
// tracked by the lexical lock interpreter shared by lockguard and lockio.
type LockState uint8

// The lock states. LockUnknown is the conservative join of conflicting
// branches: analyzers must not flag accesses under it.
const (
	LockUnknown LockState = iota
	LockFree
	LockRead
	LockWrite
)

func (s LockState) String() string {
	switch s {
	case LockFree:
		return "unlocked"
	case LockRead:
		return "read-locked"
	case LockWrite:
		return "write-locked"
	}
	return "unknown"
}

// Locks is the lock environment in effect at a visited node. Keys are the
// printed form of the mutex expression ("st.mu", "q.mu", ...).
type Locks struct {
	env map[string]LockState
	def LockState
}

// State returns the abstract state of the named mutex expression.
func (l Locks) State(key string) LockState {
	if s, ok := l.env[key]; ok {
		return s
	}
	return l.def
}

// Held returns every mutex expression currently read- or write-locked.
func (l Locks) Held() []string {
	var out []string
	for k, s := range l.env {
		if s == LockRead || s == LockWrite {
			out = append(out, k)
		}
	}
	return out
}

// lockWalker interprets a function body statement by statement, tracking
// Lock/RLock/Unlock/RUnlock calls on sync.Mutex/sync.RWMutex values and
// invoking onNode for every AST node with the environment in effect at its
// enclosing statement. Control flow is handled conservatively: branch
// states that disagree join to LockUnknown, branches that terminate
// (return, panic-like, break/continue/goto) do not join, and deferred
// unlocks never close an interval. Nested function literals are walked
// with a fresh all-unknown environment — a closure's caller, not its
// lexical position, determines what it holds.
type lockWalker struct {
	info   *types.Info
	onNode func(n ast.Node, locks Locks)
}

// WalkWithLocks runs the lock interpreter over body. initial seeds the
// environment (annotated contracts like //sit:locked); def is the state
// assumed for mutexes not in the environment — LockFree for ordinary
// function bodies, LockUnknown for closures.
func WalkWithLocks(info *types.Info, body *ast.BlockStmt, initial map[string]LockState, def LockState, onNode func(n ast.Node, locks Locks)) {
	w := &lockWalker{info: info, onNode: onNode}
	env := map[string]LockState{}
	for k, v := range initial {
		env[k] = v
	}
	w.walkBody(body.List, env, def)
}

// mutexOp reports whether call is a Lock/RLock/Unlock/RUnlock call on a
// sync mutex, returning the mutex key and the resulting state.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (key string, state LockState, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", 0, false
	}
	var next LockState
	switch sel.Sel.Name {
	case "Lock":
		next = LockWrite
	case "RLock":
		next = LockRead
	case "Unlock", "RUnlock":
		next = LockFree
	default:
		return "", 0, false
	}
	fn, _ := w.info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	return types.ExprString(sel.X), next, true
}

func copyEnv(env map[string]LockState) map[string]LockState {
	out := make(map[string]LockState, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// mergeEnv joins two branch environments in place into a: agreeing keys
// keep their state, disagreeing keys become LockUnknown.
func mergeEnv(a, b map[string]LockState) map[string]LockState {
	for k, v := range b {
		if av, ok := a[k]; !ok || av != v {
			if !ok {
				a[k] = LockUnknown
			} else if av != v {
				a[k] = LockUnknown
			}
		}
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			a[k] = LockUnknown
		}
	}
	return a
}

// visitExpr reports every node of expr (skipping function literal bodies,
// which are walked separately with an unknown environment) and applies any
// mutex operations found inside the expression itself.
func (w *lockWalker) visitExpr(expr ast.Expr, env map[string]LockState, def LockState) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.walkBody(lit.Body.List, map[string]LockState{}, LockUnknown)
			return false
		}
		if n != nil {
			w.onNode(n, Locks{env: env, def: def})
		}
		return true
	})
	// Apply lock transitions performed inside the expression (rare — most
	// lock calls are standalone statements, handled by walkBody).
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if key, state, ok := w.mutexOp(call); ok {
				env[key] = state
			}
		}
		return true
	})
}

// walkBody interprets a statement list, returning the exit environment and
// whether every path through the list terminates (return/branch).
func (w *lockWalker) walkBody(list []ast.Stmt, env map[string]LockState, def LockState) (out map[string]LockState, terminates bool) {
	for _, s := range list {
		var term bool
		env, term = w.walkStmt(s, env, def)
		if term {
			return env, true
		}
	}
	return env, false
}

func (w *lockWalker) walkStmt(s ast.Stmt, env map[string]LockState, def LockState) (out map[string]LockState, terminates bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, state, ok2 := w.mutexOp(call); ok2 {
				w.onNode(s.X, Locks{env: env, def: def})
				env[key] = state
				return env, false
			}
		}
		w.visitExpr(s.X, env, def)
		return env, false
	case *ast.DeferStmt:
		// Deferred unlocks run at return; they never end the interval
		// lexically. Deferred closures execute later under unknown locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, a := range s.Call.Args {
				w.visitExpr(a, env, def)
			}
			w.walkBody(lit.Body.List, map[string]LockState{}, LockUnknown)
			return env, false
		}
		if _, _, ok := w.mutexOp(s.Call); ok {
			return env, false
		}
		w.visitExpr(s.Call, env, def)
		return env, false
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, a := range s.Call.Args {
				w.visitExpr(a, env, def)
			}
			w.walkBody(lit.Body.List, map[string]LockState{}, LockUnknown)
			return env, false
		}
		w.visitExpr(s.Call, env, def)
		return env, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.visitExpr(e, env, def)
		}
		for _, e := range s.Lhs {
			w.visitExpr(e, env, def)
		}
		return env, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.visitExpr(v, env, def)
					}
				}
			}
		}
		return env, false
	case *ast.IncDecStmt:
		w.visitExpr(s.X, env, def)
		return env, false
	case *ast.SendStmt:
		w.visitExpr(s.Chan, env, def)
		w.visitExpr(s.Value, env, def)
		return env, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.visitExpr(e, env, def)
		}
		return env, true
	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; joining their state
		// into the following statement would be wrong, so treat the path
		// as terminated (conservative for loop exits).
		return env, true
	case *ast.BlockStmt:
		return w.walkBody(s.List, env, def)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, env, def)
	case *ast.IfStmt:
		if s.Init != nil {
			env, _ = w.walkStmt(s.Init, env, def)
		}
		w.visitExpr(s.Cond, env, def)
		thenEnv, thenTerm := w.walkBody(s.Body.List, copyEnv(env), def)
		elseEnv, elseTerm := copyEnv(env), false
		if s.Else != nil {
			elseEnv, elseTerm = w.walkStmt(s.Else, elseEnv, def)
		}
		switch {
		case thenTerm && elseTerm:
			return env, true
		case thenTerm:
			return elseEnv, false
		case elseTerm:
			return thenEnv, false
		default:
			return mergeEnv(thenEnv, elseEnv), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			env, _ = w.walkStmt(s.Init, env, def)
		}
		w.visitExpr(s.Cond, env, def)
		bodyEnv, _ := w.walkBody(s.Body.List, copyEnv(env), def)
		if s.Post != nil {
			bodyEnv, _ = w.walkStmt(s.Post, bodyEnv, def)
		}
		if s.Cond == nil {
			// for{}: falls out only via break (already conservative).
			return mergeEnv(copyEnv(env), bodyEnv), false
		}
		return mergeEnv(copyEnv(env), bodyEnv), false
	case *ast.RangeStmt:
		w.visitExpr(s.X, env, def)
		bodyEnv, _ := w.walkBody(s.Body.List, copyEnv(env), def)
		return mergeEnv(copyEnv(env), bodyEnv), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			env, _ = w.walkStmt(s.Init, env, def)
		}
		w.visitExpr(s.Tag, env, def)
		return w.walkClauses(s.Body.List, env, def)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			env, _ = w.walkStmt(s.Init, env, def)
		}
		if as, ok := s.Assign.(*ast.AssignStmt); ok {
			for _, e := range as.Rhs {
				w.visitExpr(e, env, def)
			}
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			w.visitExpr(es.X, env, def)
		}
		return w.walkClauses(s.Body.List, env, def)
	case *ast.SelectStmt:
		return w.walkClauses(s.Body.List, env, def)
	case *ast.EmptyStmt:
		return env, false
	default:
		return env, false
	}
}

// walkClauses joins the bodies of switch/select clauses. The entry
// environment joins in too unless a default clause guarantees some body
// runs.
func (w *lockWalker) walkClauses(clauses []ast.Stmt, env map[string]LockState, def LockState) (map[string]LockState, bool) {
	var merged map[string]LockState
	hasDefault := false
	allTerminate := true
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.visitExpr(e, env, def)
			}
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				env2 := copyEnv(env)
				env2, _ = w.walkStmt(c.Comm, env2, def)
				out, term := w.walkBody(c.Body, env2, def)
				if !term {
					allTerminate = false
					if merged == nil {
						merged = out
					} else {
						merged = mergeEnv(merged, out)
					}
				}
				continue
			}
			hasDefault = true
			body = c.Body
		}
		out, term := w.walkBody(body, copyEnv(env), def)
		if !term {
			allTerminate = false
			if merged == nil {
				merged = out
			} else {
				merged = mergeEnv(merged, out)
			}
		}
	}
	if len(clauses) == 0 {
		return env, false
	}
	if !hasDefault {
		allTerminate = false
		if merged == nil {
			merged = copyEnv(env)
		} else {
			merged = mergeEnv(merged, copyEnv(env))
		}
	}
	if merged == nil {
		merged = env
	}
	return merged, allTerminate
}

// WrittenExprs collects the expressions a function body writes to:
// assignment targets (traced through index, star and paren expressions),
// ++/-- targets, delete() map arguments and unary & operands. lockguard
// uses node identity to decide whether a guarded-field access is a write.
func WrittenExprs(body *ast.BlockStmt) map[ast.Expr]bool {
	written := map[ast.Expr]bool{}
	mark := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
				continue
			case *ast.IndexExpr:
				// Writing m[k] mutates the map/slice behind the base
				// expression.
				e = x.X
				continue
			case *ast.StarExpr:
				e = x.X
				continue
			}
			break
		}
		written[e] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				mark(n.X)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				mark(n.Args[0])
			}
		}
		return true
	})
	return written
}

package unit

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

// FactsVersion names the on-disk facts format. Any file carrying a
// different version — including the pre-facts "sit-vet facts v1" stamp —
// is stale and rejected, never silently reused: a stale fact stream would
// let a lock-order edge or a durability leg vanish without a diagnostic.
const FactsVersion = "sit-vet-facts/2"

// factsFile is the envelope written at cfg.VetxOutput: the format version,
// the content hash of the tool that wrote it, and the fact records.
type factsFile struct {
	Version string                `json:"version"`
	ToolID  string                `json:"toolID"`
	Facts   []analysis.FactRecord `json:"facts,omitempty"`
}

// Stale-facts kinds, carried on StaleFactsError so callers (and tests) can
// distinguish the failure without matching message text.
const (
	StaleV1Stamp = "v1-stamp" // written by the pre-facts v1 driver
	StaleVersion = "version"  // envelope version != FactsVersion
	StaleTool    = "tool"     // written by a different tool build
	StaleCorrupt = "corrupt"  // not a well-formed envelope at all
)

// StaleFactsError reports a facts file that must not be reused: wrong
// format version, another tool build's output, or bytes that don't parse.
type StaleFactsError struct {
	Path   string
	Kind   string // one of the Stale* constants
	Detail string
}

func (e *StaleFactsError) Error() string {
	switch e.Kind {
	case StaleCorrupt:
		return fmt.Sprintf("unit: corrupt facts file %s: %s", e.Path, e.Detail)
	default:
		return fmt.Sprintf("unit: stale facts file %s: %s", e.Path, e.Detail)
	}
}

// WriteFactsFile serializes the fact set (nil means empty) to path,
// stamped with the writing tool's content hash.
func WriteFactsFile(path, toolID string, fs *analysis.FactSet) error {
	var recs []analysis.FactRecord
	if fs != nil {
		recs = fs.Records()
	}
	data, err := json.Marshal(factsFile{Version: FactsVersion, ToolID: toolID, Facts: recs})
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// ReadFactsFile loads a facts file, rejecting anything stale: a version
// other than FactsVersion, or a file written by a different tool build
// than toolID (pass "" to skip the tool check — same-process reads).
func ReadFactsFile(path, toolID string) (*analysis.FactSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ff factsFile
	if err := json.Unmarshal(data, &ff); err != nil {
		// The v1 driver wrote a plain text stamp; name it in the error so
		// the fix (rebuild, or clear the stale cache entry) is obvious.
		if strings.HasPrefix(string(data), "sit-vet facts v1") {
			return nil, &StaleFactsError{Path: path, Kind: StaleV1Stamp,
				Detail: "written by the pre-facts v1 driver; rebuild sit-vet and re-run"}
		}
		return nil, &StaleFactsError{Path: path, Kind: StaleCorrupt, Detail: err.Error()}
	}
	if ff.Version != FactsVersion {
		return nil, &StaleFactsError{Path: path, Kind: StaleVersion,
			Detail: fmt.Sprintf("version %q, want %q; refusing to reuse it", ff.Version, FactsVersion)}
	}
	if toolID != "" && ff.ToolID != toolID {
		return nil, &StaleFactsError{Path: path, Kind: StaleTool,
			Detail: fmt.Sprintf("written by tool build %.12s, this build is %.12s; refusing to reuse it", ff.ToolID, toolID)}
	}
	fs := analysis.NewFactSet()
	for _, r := range ff.Facts {
		fs.Add(r)
	}
	return fs, nil
}

package unit

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func TestFactsFileRoundTrip(t *testing.T) {
	fs := analysis.NewFactSet()
	fs.Add(analysis.FactRecord{
		Analyzer: "lockorder", Kind: analysis.ObjectFactKind,
		Key: "repro/internal/server.Store.Assert", Type: "locksFact",
		Data: []byte(`{"locks":["repro/internal/server.state.mu"]}`),
	})
	fs.Add(analysis.FactRecord{
		Analyzer: "statecapture", Kind: analysis.PackageFactKind,
		Key: "repro/internal/server", Type: "coverageFact",
		Data: []byte(`{"ops":{"add_schemas":7}}`),
	})

	path := filepath.Join(t.TempDir(), "pkg.vetx")
	if err := WriteFactsFile(path, "tool-abc", fs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFactsFile(path, "tool-abc")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip returned %d facts, want 2", got.Len())
	}
	recs := got.Records()
	if recs[0].Key != "repro/internal/server.Store.Assert" && recs[1].Key != "repro/internal/server.Store.Assert" {
		t.Fatalf("object fact key lost: %+v", recs)
	}

	// A second write-read through a fresh set must preserve the payloads
	// bit-for-bit: drivers merge and re-serialize dependency facts when
	// forwarding them, so the envelope cannot be lossy.
	merged := analysis.NewFactSet()
	merged.Merge(got)
	path2 := filepath.Join(t.TempDir(), "fwd.vetx")
	if err := WriteFactsFile(path2, "tool-abc", merged); err != nil {
		t.Fatal(err)
	}
	again, err := ReadFactsFile(path2, "tool-abc")
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != 2 {
		t.Fatalf("forwarded set has %d facts, want 2", again.Len())
	}
}

func TestFactsFileEmptySet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "std.vetx")
	if err := WriteFactsFile(path, "tool-abc", nil); err != nil {
		t.Fatal(err)
	}
	fs, err := ReadFactsFile(path, "tool-abc")
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 0 {
		t.Fatalf("empty facts file decoded to %d facts", fs.Len())
	}
}

func TestStaleFactsFileRejected(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name     string
		content  string
		toolID   string
		wantKind string
	}{
		{
			name:     "v1 stamp",
			content:  "sit-vet facts v1\n",
			toolID:   "tool-abc",
			wantKind: StaleV1Stamp,
		},
		{
			name:     "wrong version",
			content:  `{"version":"sit-vet-facts/1","toolID":"tool-abc","facts":[]}`,
			toolID:   "tool-abc",
			wantKind: StaleVersion,
		},
		{
			name:     "wrong tool build",
			content:  `{"version":"` + FactsVersion + `","toolID":"other-build","facts":[]}`,
			toolID:   "tool-abc",
			wantKind: StaleTool,
		},
		{
			name:     "corrupt",
			content:  `{"version":`,
			toolID:   "tool-abc",
			wantKind: StaleCorrupt,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(c.name, " ", "_")+".vetx")
			if err := os.WriteFile(path, []byte(c.content), 0o666); err != nil {
				t.Fatal(err)
			}
			fs, err := ReadFactsFile(path, c.toolID)
			if err == nil {
				t.Fatalf("stale facts file was silently reused (%d facts)", fs.Len())
			}
			var stale *StaleFactsError
			if !errors.As(err, &stale) {
				t.Fatalf("error %v is not a *StaleFactsError", err)
			}
			if stale.Kind != c.wantKind {
				t.Fatalf("stale kind = %q, want %q (error: %v)", stale.Kind, c.wantKind, err)
			}
			if stale.Path != path {
				t.Fatalf("stale path = %q, want %q", stale.Path, path)
			}
		})
	}
}

func TestFactsFileToolCheckSkippable(t *testing.T) {
	// Same-process readers (modrun forwarding its own output) pass "" to
	// skip the tool check; the version check still applies.
	path := filepath.Join(t.TempDir(), "own.vetx")
	if err := WriteFactsFile(path, "some-build", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFactsFile(path, ""); err != nil {
		t.Fatalf("tool check not skipped: %v", err)
	}
}

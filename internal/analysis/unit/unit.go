// Package unit implements the `go vet -vettool` driver protocol for the
// repo's analyzers, standing in for golang.org/x/tools/go/analysis/unitchecker
// in an offline build.
//
// go vet invokes the tool three ways:
//
//   - `sit-vet -V=full` — print a version line ending in a content hash of
//     the binary itself, which go vet folds into its build cache key so
//     results are invalidated when the tool changes;
//   - `sit-vet -flags` — print a JSON array of tool flags (none here);
//   - `sit-vet <unit>.cfg` — analyze one compilation unit described by the
//     JSON config: parse cfg.GoFiles, type-check against the export data in
//     cfg.PackageFile, run every analyzer, print diagnostics to stderr as
//     "file:line:col: message [analyzer]" and exit 2 if there were any.
//
// go vet drives the tool over the whole dependency graph, not just the
// packages named on the command line; dependencies arrive with VetxOnly
// set. The .vetx files go vet threads between units are this driver's
// cross-package fact channel: every unit's output carries the facts its
// analyzers exported plus everything imported from its dependencies
// (transitive propagation), and fact-using analyzers also run over
// VetxOnly units — diagnostics suppressed, facts kept — so a
// dependency-only package still feeds the stream. That includes
// standard-library units (cfg.Standard lists a unit's std dependencies,
// never the unit itself), so fact-using analyzers that only care about
// module code must gate on the package path themselves. A stale facts
// file (old version or another tool build) is rejected with an error,
// never silently reused.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/analysis"
)

// config mirrors the JSON compilation-unit description go vet writes for
// the vettool. Field names are fixed by the protocol.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/sit-vet: it services the vet protocol and
// exits. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Printf("%s version devel comments-go-here buildID=%s\n",
			filepath.Base(os.Args[0]), selfHash())
		os.Exit(0)
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		os.Exit(0)
	}
	var cfgFile string
	for _, a := range os.Args[1:] {
		if strings.HasSuffix(a, ".cfg") {
			cfgFile = a
		}
	}
	if cfgFile == "" {
		fmt.Fprintf(os.Stderr, "%s: no .cfg argument; this tool is run by `go vet -vettool`\n", filepath.Base(os.Args[0]))
		os.Exit(1)
	}
	os.Exit(run(cfgFile, analyzers))
}

// selfHash hashes the tool binary so the version string changes whenever
// the tool does, keeping go vet's result cache honest; the same hash
// stamps every facts file this build writes, so a facts file from another
// build reads as stale. Computed once — run() consults it per dependency.
var selfHashOnce struct {
	sync.Once
	v string
}

func selfHash() string {
	selfHashOnce.Do(func() { selfHashOnce.v = computeSelfHash() })
	return selfHashOnce.v
}

// ToolID returns the content hash of this tool build — the stamp on
// every facts file, and the cache-key component for the standalone
// module driver.
func ToolID() string { return selfHash() }

func computeSelfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%02x", string(h.Sum(nil)))
}

func run(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return fail(err)
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("parsing %s: %w", cfgFile, err))
	}
	// A VetxOnly unit (a dependency of the named packages) is analyzed
	// only as far as facts require: fact-using analyzers run with their
	// diagnostics suppressed; without any, the unit contributes only its
	// dependencies' facts, forwarded.
	toRun := analyzers
	if cfg.VetxOnly {
		toRun = nil
		for _, a := range analyzers {
			if a.UsesFacts() {
				toRun = append(toRun, a)
			}
		}
	}
	imported := analysis.NewFactSet()
	for dep, vetx := range cfg.PackageVetx {
		fs, err := ReadFactsFile(vetx, selfHash())
		if err != nil {
			return fail(fmt.Errorf("facts for dependency %s: %w", dep, err))
		}
		imported.Merge(fs)
	}
	if len(toRun) == 0 {
		if cfg.VetxOutput != "" {
			if err := WriteFactsFile(cfg.VetxOutput, selfHash(), imported); err != nil {
				return fail(err)
			}
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			return fail(err)
		}
		files = append(files, f)
	}
	// Resolve imports through the export data the go command already built:
	// ImportMap maps source-level import paths to canonical package paths,
	// PackageFile maps those to export files in the build cache.
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tc := &types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Sizes:    types.SizesFor(cfg.Compiler, "amd64"),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return fail(fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err))
	}

	diags, exported, err := analysis.RunWithFacts(toRun, fset, files, pkg, info, imported)
	if err != nil {
		return fail(err)
	}
	if cfg.VetxOutput != "" {
		if err := WriteFactsFile(cfg.VetxOutput, selfHash(), exported); err != nil {
			return fail(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "sit-vet:", err)
	return 1
}

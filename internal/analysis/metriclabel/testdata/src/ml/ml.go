// Package ml exercises metriclabel: constant labels, bounded helpers,
// label parameters flowing through annotated wrappers, and a raw
// request-derived string reaching a label position.
package ml

type metrics struct{ counts map[string]int }

// observe records one observation under the route label.
//
//sit:metriclabel route
func (m *metrics) observe(route string, n int) {
	m.counts[route] += n
}

// classOf clamps a status code to a handful of classes.
//
//sit:boundedlabel
func classOf(code int) string {
	if code < 400 {
		return "ok"
	}
	return "error"
}

func (m *metrics) goodConstant() {
	m.observe("/v1/schemas", 1)
}

func (m *metrics) goodBounded(code int) {
	m.observe(classOf(code), 1)
}

// wrapper forwards its own declared label parameter.
//
//sit:metriclabel route
func (m *metrics) wrapper(route string) {
	m.observe(route, 1)
}

func (m *metrics) badRequestPath(path string) {
	m.observe(path, 1) // want "label argument path of observe is not from a bounded source"
}

func (m *metrics) badDerived(path string) {
	m.observe(path+"/x", 1) // want "label argument .* of observe is not from a bounded source"
}

// goodConcat concatenates a constant with a flowing label parameter.
//
//sit:metriclabel suffix
func (m *metrics) goodConcat(suffix string) {
	m.observe("GET /v1"+suffix, 1)
}

func (m *metrics) nonLabelArgsUnchecked(depth int) {
	m.observe("/v1/jobs", depth)
}

// Package metriclabel keeps metric label cardinality bounded: arguments
// passed in a labeled position must come from a bounded source, never from
// request-derived strings.
//
// The contract language:
//
//   - "//sit:metriclabel <param>" on a function declares that <param> is
//     used as a metric label value; callers must pass a bounded value.
//   - "//sit:boundedlabel" on a function declares that its (string) result
//     is drawn from a bounded set — a status class, a clamped workspace
//     label — and may flow into a label position.
//
// A bounded argument is: a constant string, a call to a boundedlabel
// function, or a parameter of the enclosing function that is itself
// declared //sit:metriclabel (the label flows through unchanged — the
// obligation moves to that function's callers). Anything else — a request
// path, a user-supplied workspace name, an error message — is flagged at
// the call site. Both directives live on declarations in the same package
// as the call; the server's metrics sink is package-local, so that is
// where the labels are.
package metriclabel

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the metriclabel analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "metriclabel",
	Doc:  "metric label values must come from bounded-cardinality sources",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	labeled := map[*types.Func][]int{} // func -> labeled param indices
	bounded := map[*types.Func]bool{}  // funcs returning bounded labels
	paramsOf := map[*types.Func]*ast.FuncDecl{}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			paramsOf[obj] = fn
			if analysis.HasDirective(fn.Doc, "boundedlabel") {
				bounded[obj] = true
			}
			for _, d := range analysis.Directives(fn.Doc) {
				if d.Name != "metriclabel" {
					continue
				}
				for _, name := range strings.Fields(d.Args) {
					if i := paramIndex(fn, name); i >= 0 {
						labeled[obj] = append(labeled[obj], i)
					} else {
						pass.Reportf(d.Pos, "//sit:metriclabel names unknown parameter %q", name)
					}
				}
			}
		}
	}
	if len(labeled) == 0 {
		return nil
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Parameters of the enclosing function that are themselves
			// declared labels: passing them onward is bounded.
			through := map[types.Object]bool{}
			if obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func); obj != nil {
				for _, i := range labeled[obj] {
					if o := paramObj(pass, fn, i); o != nil {
						through[o] = true
					}
				}
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass, call)
				if callee == nil {
					return true
				}
				for _, i := range labeled[callee] {
					if i >= len(call.Args) {
						continue
					}
					arg := call.Args[i]
					if boundedArg(pass, arg, bounded, through) {
						continue
					}
					pass.Reportf(arg.Pos(), "label argument %s of %s is not from a bounded source; use a constant, a //sit:boundedlabel helper, or declare the enclosing parameter //sit:metriclabel", exprString(arg), callee.Name())
				}
				return true
			})
		}
	}
	return nil
}

// boundedArg reports whether arg is an acceptable label value.
func boundedArg(pass *analysis.Pass, arg ast.Expr, bounded map[*types.Func]bool, through map[types.Object]bool) bool {
	arg = ast.Unparen(arg)
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		return true // constant
	}
	if id, ok := arg.(*ast.Ident); ok && through[pass.TypesInfo.Uses[id]] {
		return true // label parameter flowing through
	}
	if call, ok := arg.(*ast.CallExpr); ok {
		if callee := calleeFunc(pass, call); callee != nil && bounded[callee] {
			return true
		}
	}
	if bin, ok := arg.(*ast.BinaryExpr); ok && bin.Op == token.ADD {
		// Concatenating bounded pieces stays bounded (route wiring builds
		// mux patterns as method + prefix + suffix).
		return boundedArg(pass, bin.X, bounded, through) && boundedArg(pass, bin.Y, bounded, through)
	}
	return false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func paramIndex(fn *ast.FuncDecl, name string) int {
	i := 0
	for _, field := range fn.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, n := range field.Names {
			if n.Name == name {
				return i
			}
			i++
		}
	}
	return -1
}

func paramObj(pass *analysis.Pass, fn *ast.FuncDecl, index int) types.Object {
	i := 0
	for _, field := range fn.Type.Params.List {
		for _, n := range field.Names {
			if i == index {
				return pass.TypesInfo.Defs[n]
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return nil
}

func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

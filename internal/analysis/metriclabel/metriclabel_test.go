package metriclabel_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/metriclabel"
)

func TestMetriclabel(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "ml", metriclabel.Analyzer)
}

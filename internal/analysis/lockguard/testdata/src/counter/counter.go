// Package counter exercises lockguard: guarded-field access under no lock,
// a read lock, a write lock, directive-declared caller contracts and the
// branch-merge conservatism.
package counter

import "sync"

type counter struct {
	mu   sync.RWMutex
	n    int // guarded by mu
	name string
}

func (c *counter) bad() int {
	return c.n // want "access to c.n .* without c.mu held"
}

func (c *counter) good() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func (c *counter) badWrite() {
	c.mu.RLock()
	c.n++ // want "write to c.n .* read-locked"
	c.mu.RUnlock()
}

func (c *counter) goodWrite(v int) {
	c.mu.Lock()
	c.n = v
	c.mu.Unlock()
}

func (c *counter) earlyReturn(b bool) int {
	c.mu.RLock()
	if b {
		c.mu.RUnlock()
		return 0
	}
	v := c.n // still read-locked: the unlocking branch returned
	c.mu.RUnlock()
	return v
}

// bump requires the caller to hold the write lock.
//
//sit:locked mu
func (c *counter) bump() {
	c.n++
}

// setLocked follows the naming convention: the caller holds the lock.
func (c *counter) setLocked(v int) {
	c.n = v
}

// newCounter runs before the value is shared.
//
//sit:exclusive
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

func (c *counter) unguarded() string {
	return c.name // no contract on name
}

func (c *counter) maybe(b bool) int {
	if b {
		c.mu.RLock()
	}
	v := c.n // lock state unknown here: conservatively silent
	if b {
		c.mu.RUnlock()
	}
	return v
}

func (c *counter) afterUnlock() int {
	c.mu.RLock()
	v := c.n
	c.mu.RUnlock()
	v += c.n // want "access to c.n .* without c.mu held"
	return v
}

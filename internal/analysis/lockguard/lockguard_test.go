package lockguard_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "counter", lockguard.Analyzer)
}

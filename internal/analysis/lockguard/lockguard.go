// Package lockguard checks that struct fields documented "guarded by <mu>"
// are only accessed while <mu> is held, and never written while it is only
// read-locked.
//
// The contract language:
//
//   - a field comment containing "guarded by <mu>" names a sibling mutex
//     field that must be held for every access;
//   - a function doc comment "//sit:locked <mu>" declares that callers hold
//     <mu> exclusively on entry (the convention-named "...Locked" methods
//     carry the same meaning for every mutex);
//   - "//sit:rlocked <mu>" declares callers hold at least a read lock;
//   - "//sit:exclusive" declares the function runs before its receiver is
//     shared (constructors, recovery scans) and exempts it.
//
// Lock state is tracked by a conservative lexical interpreter
// (analysis.WalkWithLocks): accesses are flagged only when the mutex is
// provably unlocked on some path, or provably read-locked at a write.
package lockguard

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "check that fields documented 'guarded by <mu>' are accessed with <mu> held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	guards := guardedFields(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, guards)
		}
	}
	return nil
}

// guardedFields maps each field object with a "guarded by <mu>" comment to
// its guard's field name.
func guardedFields(pass *analysis.Pass) map[*types.Var]string {
	guards := map[*types.Var]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := analysis.GuardedBy(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[*types.Var]string) {
	if analysis.HasDirective(fn.Doc, "exclusive") {
		return
	}
	def := analysis.LockFree
	initial := map[string]analysis.LockState{}
	recv := receiverName(fn)
	for _, d := range analysis.Directives(fn.Doc) {
		var state analysis.LockState
		switch d.Name {
		case "locked":
			state = analysis.LockWrite
		case "rlocked":
			state = analysis.LockRead
		default:
			continue
		}
		for _, mu := range strings.Fields(d.Args) {
			initial[lockKey(recv, mu)] = state
		}
	}
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		// Convention: the caller holds whatever lock the method needs; no
		// mutex can be assumed free here.
		def = analysis.LockUnknown
	}
	written := analysis.WrittenExprs(fn.Body)
	analysis.WalkWithLocks(pass.TypesInfo, fn.Body, initial, def, func(n ast.Node, locks analysis.Locks) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok {
			return
		}
		mu, guarded := guards[obj]
		if !guarded {
			return
		}
		key := lockKey(types.ExprString(sel.X), mu)
		switch locks.State(key) {
		case analysis.LockFree:
			pass.Reportf(sel.Pos(), "access to %s.%s (guarded by %s) without %s held",
				types.ExprString(sel.X), sel.Sel.Name, mu, key)
		case analysis.LockRead:
			if written[sel] {
				pass.Reportf(sel.Pos(), "write to %s.%s (guarded by %s) while %s is only read-locked",
					types.ExprString(sel.X), sel.Sel.Name, mu, key)
			}
		}
	})
}

// lockKey joins a base expression and a mutex name into the interpreter's
// key form ("st.mu"). A directive argument that already names a full path
// ("s.store.mu") is used as is.
func lockKey(base, mu string) string {
	if strings.Contains(mu, ".") || base == "" {
		return mu
	}
	return base + "." + mu
}

func receiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}

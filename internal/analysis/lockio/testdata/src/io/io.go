// Package io exercises lockio: direct and helper-wrapped file I/O under an
// in-memory mutex, I/O after release, and the owns-file exemption.
package io

import (
	"os"
	"sync"
)

type store struct {
	mu   sync.Mutex
	data map[string]string
}

func (s *store) bad(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = os.Remove(path) // want "I/O call os.Remove while s.mu is held"
}

func (s *store) good(path string) {
	s.mu.Lock()
	delete(s.data, path)
	s.mu.Unlock()
	_ = os.Remove(path)
}

func touchFile(path string) {
	f, err := os.Create(path)
	if err == nil {
		_ = f.Close()
	}
}

func (s *store) badHelper(path string) {
	s.mu.Lock()
	touchFile(path) // want "I/O call touchFile while s.mu is held"
	s.mu.Unlock()
}

func (s *store) goodHelper(path string) {
	touchFile(path)
}

type wal struct {
	mu sync.Mutex
	f  *os.File
}

// flush serializes writes to the file the wal owns: its mutex IS the
// file's lock, so holding it across the sync is the contract.
func (w *wal) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Sync()
}

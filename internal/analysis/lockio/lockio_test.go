package lockio_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/lockio"
)

func TestLockio(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "io", lockio.Analyzer)
}

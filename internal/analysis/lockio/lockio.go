// Package lockio forbids file and network I/O while an in-memory mutex is
// held: an fsync under the store lock turns every reader's microseconds
// into the disk's milliseconds.
//
// An I/O call is: a call into package os (minus a small pure safelist), net
// or net/http; a call to the journal package's file-backed operations
// (Open, Append, Sync, Compact, Close, ...); or a call to a package-local
// function that itself performs I/O (computed transitively within the
// package, so wrapping os.MkdirAll in a helper does not hide it).
//
// One structural exemption: a mutex whose struct also owns an *os.File is
// that file's own serialization lock — the journal's mu exists precisely
// to order writes to the file it owns, and holding it across those writes
// is the point, not a bug. Locks on purely in-memory state (store, tenant
// manager, metrics, queue) get no such pass.
//
// Calls through function values (the store's persist hook) are statically
// invisible; that indirection is the sanctioned write-ahead channel, and
// its discipline is journalorder's department, not lockio's.
package lockio

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockio analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc:  "no file or network I/O while an in-memory mutex is held",
	Run:  run,
}

// osSafe are package os functions with no I/O behind them.
var osSafe = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Expand": true,
	"ExpandEnv": true, "Getpid": true, "Getppid": true, "Getuid": true,
	"Geteuid": true, "Getgid": true, "TempDir": true, "UserHomeDir": true,
	"IsNotExist": true, "IsExist": true, "IsPermission": true,
	"IsTimeout": true, "NewSyscallError": true, "Exit": true,
}

// netSafe are package net functions and methods that only format or parse
// addresses — no sockets behind them.
var netSafe = map[string]bool{
	"String": true, "Network": true, "Addr": true, "JoinHostPort": true,
	"SplitHostPort": true, "ParseIP": true, "ParseCIDR": true,
	"ParseMAC": true, "LocalAddr": true, "RemoteAddr": true, "Error": true,
	"Timeout": true, "Temporary": true,
}

// journalPkg's file-backed operations — including the replication-stream
// surface (AppendFrame, TailSince, ResetTo), which reads or writes the
// journal file just like Append does; the rest of the package's surface
// (Seq, Offset, CompactedThrough, record accessors) is in-memory.
var journalPkg = "repro/internal/journal"

var journalIO = map[string]bool{
	"Open": true, "Append": true, "Sync": true, "Compact": true,
	"Close": true, "CloseAbrupt": true, "Rotate": true,
	"AppendFrame": true, "TailSince": true, "ResetTo": true,
}

func run(pass *analysis.Pass) error {
	doers := localIODoers(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.HasDirective(fn.Doc, "exclusive") {
				continue
			}
			checkFunc(pass, fn, doers)
		}
	}
	return nil
}

// isDirectIO reports whether the call resolves to an I/O function outside
// this package, naming it for the diagnostic.
func isDirectIO(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return "", false
	}
	path := fn.Pkg().Path()
	switch {
	case path == "os":
		if osSafe[fn.Name()] {
			return "", false
		}
		return "os." + fn.Name(), true
	case path == "net" || path == "net/http":
		if netSafe[fn.Name()] {
			return "", false
		}
		return path + "." + fn.Name(), true
	case path == journalPkg && journalIO[fn.Name()]:
		return "journal." + fn.Name(), true
	}
	return "", false
}

// localIODoers computes, to a fixpoint, the package-local functions whose
// bodies (transitively) contain a direct I/O call.
func localIODoers(pass *analysis.Pass) map[*types.Func]bool {
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func); obj != nil {
				bodies[obj] = fn
			}
		}
	}
	doers := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for obj, fn := range bodies {
			if doers[obj] {
				continue
			}
			found := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, ok := isDirectIO(pass, call); ok {
					found = true
					return false
				}
				if callee := calleeFunc(pass, call); callee != nil && doers[callee] {
					found = true
					return false
				}
				return true
			})
			if found {
				doers[obj] = true
				changed = true
			}
		}
	}
	return doers
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, doers map[*types.Func]bool) {
	exempt := ownsFileMutexes(pass, fn.Body)
	analysis.WalkWithLocks(pass.TypesInfo, fn.Body, nil, analysis.LockFree, func(n ast.Node, locks analysis.Locks) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		name, io := isDirectIO(pass, call)
		if !io {
			if callee := calleeFunc(pass, call); callee != nil && doers[callee] {
				name, io = callee.Name(), true
			}
		}
		if !io {
			return
		}
		for _, held := range locks.Held() {
			if exempt[held] {
				continue
			}
			pass.Reportf(call.Pos(), "I/O call %s while %s is held; release the lock or move the I/O out of the critical section", name, held)
			return
		}
	})
}

// ownsFileMutexes finds lock keys ("j.mu") whose base struct also owns an
// *os.File: that mutex is the file's serialization lock and exempt.
func ownsFileMutexes(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	exempt := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel]
		if !ok || !isMutexType(tv.Type) {
			return true
		}
		base, ok := pass.TypesInfo.Types[sel.X]
		if ok && structOwnsFile(base.Type) {
			exempt[types.ExprString(sel)] = true
		}
		return true
	})
	return exempt
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

func structOwnsFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if p, ok := ft.(*types.Pointer); ok {
			if n, ok := p.Elem().(*types.Named); ok &&
				n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "os" && n.Obj().Name() == "File" {
				return true
			}
		}
	}
	return false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Package lockorder detects potential deadlocks from inconsistent mutex
// acquisition order, interprocedurally and across packages.
//
// Every mutex is canonicalized to a lock class — "pkg.Type.field" for a
// mutex struct field, "pkg.var" for a package-level mutex — so any two
// call paths that acquire the same field of the same struct type meet in
// one graph node regardless of which instance they lock. The analyzer
// builds a lock-acquisition graph: an edge A → B means some call path
// acquires class B while holding class A. Within a package the edges come
// from a fixpoint over the call graph (a function's summary is what it
// acquires directly plus, transitively, what its callees acquire);
// across packages each function's summary travels as an object fact and
// each package's edges travel as a package fact, so a dependent package
// sees the whole graph below it. Any cycle that includes an edge
// introduced by the package under analysis is reported there, once, with
// the full witness chain of call sites behind every edge.
//
// Soundness caveats (documented in docs/ALGORITHMS.md): calls through
// function values, interfaces or reflection are invisible to the call
// graph; lock classes are instance-insensitive, so an edge from a class
// to itself (two instances of one struct locked in sequence) is skipped
// rather than reported.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// locksFact is the object fact exported per function: every lock class
// the function may acquire (directly or transitively), each with the
// call-site chain that reaches the acquisition.
type locksFact struct {
	Locks map[string][]string `json:"locks"`
}

func (*locksFact) AFact() {}

// graphFact is the package fact: the acquisition edges this package's
// code introduces.
type graphFact struct {
	Edges []factEdge `json:"edges"`
}

func (*graphFact) AFact() {}

type factEdge struct {
	From    string   `json:"from"`
	To      string   `json:"to"`
	Witness []string `json:"witness"`
}

// edge is a factEdge plus the position it was observed at (own edges
// only; imported edges carry no position).
type edge struct {
	factEdge
	pos token.Pos
}

// New returns the lockorder analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:      "lockorder",
		Doc:       "report lock-order cycles in the cross-package mutex acquisition graph",
		FactTypes: []analysis.Fact{(*locksFact)(nil), (*graphFact)(nil)},
		Run:       run,
	}
}

// acquireSite is one direct Lock/RLock call: the class acquired and the
// classes held at that point.
type acquireSite struct {
	class string
	held  []string
	pos   token.Pos
}

// callSite is one static call to another function, with the classes held.
type callSite struct {
	callee *types.Func
	held   []string
	pos    token.Pos
}

type funcInfo struct {
	acquires []acquireSite
	calls    []callSite
}

func run(pass *analysis.Pass) error {
	locals := map[*types.Func]*funcInfo{}
	var order []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			locals[fn] = collect(pass, fd)
			order = append(order, fn)
		}
	}

	summaries := fixpoint(pass, locals, order)

	// Own edges: held → acquired, at direct acquisitions and at calls into
	// lock-acquiring functions. First (From, To) observation wins.
	seen := map[[2]string]bool{}
	var own []edge
	addEdge := func(from, to string, witness []string, pos token.Pos) {
		if from == to || seen[[2]string{from, to}] {
			return // instance-insensitive classes: self-edges are not decidable
		}
		seen[[2]string{from, to}] = true
		own = append(own, edge{factEdge{From: from, To: to, Witness: witness}, pos})
	}
	for _, fn := range order {
		li := locals[fn]
		for _, a := range li.acquires {
			for _, h := range a.held {
				addEdge(h, a.class, []string{posStr(pass.Fset, a.pos)}, a.pos)
			}
		}
		for _, c := range li.calls {
			if len(c.held) == 0 {
				continue
			}
			for class, chain := range calleeLocks(pass, locals, summaries, c.callee) {
				witness := append([]string{posStr(pass.Fset, c.pos)}, chain...)
				for _, h := range c.held {
					addEdge(h, class, witness, c.pos)
				}
			}
		}
	}

	// The graph below this package, keyed by the dependency that exported
	// each edge set.
	depEdges := map[string][]factEdge{}
	for _, rec := range pass.AllImportedFacts(analysis.PackageFactKind, (*graphFact)(nil)) {
		var gf graphFact
		if err := rec.Decode(&gf); err == nil {
			depEdges[rec.Key] = gf.Edges
		}
	}

	reportCycles(pass, own, depEdges)

	// Export: this package's edges, and a summary per lock-acquiring
	// function so dependents can extend the graph through calls into us.
	if len(own) > 0 {
		gf := &graphFact{}
		for _, e := range own {
			gf.Edges = append(gf.Edges, e.factEdge)
		}
		pass.ExportPackageFact(gf)
	}
	for _, fn := range order {
		if sum := summaries[fn]; len(sum) > 0 {
			pass.ExportObjectFact(fn, &locksFact{Locks: sum})
		}
	}
	return nil
}

// collect walks one function body recording direct acquisitions and
// static call sites, each with the lexical lock state canonicalized to
// classes.
func collect(pass *analysis.Pass, fd *ast.FuncDecl) *funcInfo {
	li := &funcInfo{}
	info := pass.TypesInfo

	def := analysis.LockFree
	initial := map[string]analysis.LockState{}
	recv := receiverName(fd)
	lex2class := map[string]string{}
	for _, d := range analysis.Directives(fd.Doc) {
		var state analysis.LockState
		switch d.Name {
		case "locked":
			state = analysis.LockWrite
		case "rlocked":
			state = analysis.LockRead
		default:
			continue
		}
		for _, mu := range strings.Fields(d.Args) {
			key := lockKey(recv, mu)
			initial[key] = state
			if class, ok := directiveClass(pass, fd, mu); ok {
				lex2class[key] = class
			}
		}
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		def = analysis.LockUnknown
	}

	// First pass: map every lexical mutex key in the body to its class.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if mu, _, ok := mutexRecv(info, call); ok {
			if class, ok := classOf(info, mu); ok {
				lex2class[types.ExprString(mu)] = class
			}
		}
		return true
	})

	heldClasses := func(locks analysis.Locks) []string {
		var out []string
		for _, lex := range locks.Held() {
			if class, ok := lex2class[lex]; ok {
				out = append(out, class)
			}
		}
		sort.Strings(out)
		return out
	}

	analysis.WalkWithLocks(info, fd.Body, initial, def, func(n ast.Node, locks analysis.Locks) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if mu, acquiring, ok := mutexRecv(info, call); ok {
			if !acquiring {
				return
			}
			if class, ok := classOf(info, mu); ok {
				li.acquires = append(li.acquires, acquireSite{class: class, held: heldClasses(locks), pos: n.Pos()})
			}
			return
		}
		if fn := staticCallee(info, call); fn != nil {
			li.calls = append(li.calls, callSite{callee: fn, held: heldClasses(locks), pos: n.Pos()})
		}
	})
	return li
}

// fixpoint computes each local function's lock summary: direct
// acquisitions plus everything reachable through local calls, with
// external callees resolved through imported facts. Locks are added only
// when absent, so recursion terminates.
func fixpoint(pass *analysis.Pass, locals map[*types.Func]*funcInfo, order []*types.Func) map[*types.Func]map[string][]string {
	summaries := map[*types.Func]map[string][]string{}
	for fn, li := range locals {
		sum := map[string][]string{}
		for _, a := range li.acquires {
			if _, ok := sum[a.class]; !ok {
				sum[a.class] = []string{posStr(pass.Fset, a.pos)}
			}
		}
		summaries[fn] = sum
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			sum := summaries[fn]
			for _, c := range locals[fn].calls {
				for class, chain := range calleeLocks(pass, locals, summaries, c.callee) {
					if _, ok := sum[class]; !ok {
						sum[class] = append([]string{posStr(pass.Fset, c.pos)}, chain...)
						changed = true
					}
				}
			}
		}
	}
	return summaries
}

// calleeLocks resolves what a callee acquires: the in-package summary if
// local, the imported object fact otherwise.
func calleeLocks(pass *analysis.Pass, locals map[*types.Func]*funcInfo, summaries map[*types.Func]map[string][]string, fn *types.Func) map[string][]string {
	if _, ok := locals[fn]; ok {
		return summaries[fn]
	}
	if fn.Pkg() == nil || fn.Pkg().Path() == "sync" {
		return nil
	}
	var lf locksFact
	if pass.ImportObjectFact(fn, &lf) {
		return lf.Locks
	}
	return nil
}

// reportCycles finds cycles in dep edges ∪ own edges that pass through at
// least one own edge and reports each once, at the own edge, with every
// edge's witness chain.
func reportCycles(pass *analysis.Pass, own []edge, depEdges map[string][]factEdge) {
	adj := map[string][]factEdge{}
	for _, edges := range depEdges {
		for _, e := range edges {
			adj[e.From] = append(adj[e.From], e)
		}
	}
	for _, e := range own {
		adj[e.From] = append(adj[e.From], e.factEdge)
	}

	reported := map[string]bool{}
	for _, e := range own {
		path, ok := shortestPath(adj, e.To, e.From)
		if !ok {
			continue
		}
		cycle := append([]factEdge{e.factEdge}, path...)
		key := cycleKey(cycle)
		if reported[key] {
			continue
		}
		reported[key] = true
		if coveredByOneDep(cycle, depEdges) {
			continue // the dependency that owns every edge reported it already
		}
		parts := make([]string, len(cycle))
		for i, ce := range cycle {
			parts[i] = fmt.Sprintf("%s -> %s (at %s)", ce.From, ce.To, strings.Join(ce.Witness, " -> "))
		}
		pass.Reportf(e.pos, "lock-order deadlock: %s", strings.Join(parts, "; "))
	}
}

// shortestPath BFSes from one class to another, returning the edge path.
func shortestPath(adj map[string][]factEdge, from, to string) ([]factEdge, bool) {
	if from == to {
		return nil, true
	}
	type hop struct {
		class string
		via   []factEdge
	}
	visited := map[string]bool{from: true}
	queue := []hop{{class: from}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, e := range adj[h.class] {
			if visited[e.To] {
				continue
			}
			via := append(append([]factEdge{}, h.via...), e)
			if e.To == to {
				return via, true
			}
			visited[e.To] = true
			queue = append(queue, hop{class: e.To, via: via})
		}
	}
	return nil, false
}

func cycleKey(cycle []factEdge) string {
	classes := make([]string, len(cycle))
	for i, e := range cycle {
		classes[i] = e.From
	}
	sort.Strings(classes)
	return strings.Join(classes, "|")
}

// coveredByOneDep reports whether a single dependency's edge set contains
// every (From, To) pair of the cycle — in which case the cycle was fully
// visible, and reported, when that dependency was analyzed.
func coveredByOneDep(cycle []factEdge, depEdges map[string][]factEdge) bool {
	for _, edges := range depEdges {
		pairs := map[[2]string]bool{}
		for _, e := range edges {
			pairs[[2]string{e.From, e.To}] = true
		}
		all := true
		for _, ce := range cycle {
			if !pairs[[2]string{ce.From, ce.To}] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// mutexRecv reports whether call is Lock/RLock/Unlock/RUnlock on a sync
// mutex, returning the mutex expression and whether it acquires.
func mutexRecv(info *types.Info, call *ast.CallExpr) (mu ast.Expr, acquiring bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return nil, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquiring = true
	case "Unlock", "RUnlock":
	default:
		return nil, false, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	return sel.X, acquiring, true
}

// classOf canonicalizes a mutex expression to its lock class:
// "pkg.Type.field" for a field of a named struct, "pkg.var" for a
// package-level variable. Mutexes held in locals, maps or unnamed
// structs have no class and are ignored.
func classOf(info *types.Info, e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if named := derefNamed(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				obj := named.Obj()
				return analysis.BasePath(obj.Pkg().Path()) + "." + obj.Name() + "." + sel.Obj().Name(), true
			}
			return "", false
		}
		// Qualified package-level mutex: pkg.Mu.
		if id, isID := x.X.(*ast.Ident); isID {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, isVar := info.Uses[x.Sel].(*types.Var); isVar && v.Pkg() != nil {
					return analysis.BasePath(v.Pkg().Path()) + "." + v.Name(), true
				}
			}
		}
	case *ast.Ident:
		if v, isVar := info.Uses[x].(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return analysis.BasePath(v.Pkg().Path()) + "." + v.Name(), true
		}
	}
	return "", false
}

func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// directiveClass resolves a //sit:locked argument to a lock class: a
// field of the receiver's type, or a package-level variable.
func directiveClass(pass *analysis.Pass, fd *ast.FuncDecl, mu string) (string, bool) {
	name := mu
	if i := strings.LastIndex(mu, "."); i >= 0 {
		name = mu[i+1:]
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok {
			if named := derefNamed(tv.Type); named != nil && named.Obj().Pkg() != nil {
				if st, ok := named.Underlying().(*types.Struct); ok {
					for i := 0; i < st.NumFields(); i++ {
						if st.Field(i).Name() == name {
							obj := named.Obj()
							return analysis.BasePath(obj.Pkg().Path()) + "." + obj.Name() + "." + name, true
						}
					}
				}
			}
		}
	}
	if v, ok := pass.Pkg.Scope().Lookup(name).(*types.Var); ok {
		return analysis.BasePath(pass.Pkg.Path()) + "." + v.Name(), true
	}
	return "", false
}

// staticCallee resolves a call to a statically known function or method;
// calls through function values or interfaces return nil (a documented
// soundness gap).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func lockKey(base, mu string) string {
	if strings.Contains(mu, ".") || base == "" {
		return mu
	}
	return base + "." + mu
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

func posStr(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

package lockorder

import (
	"testing"

	"repro/internal/analysis/analyzertest"
)

func TestIntraPackageCycle(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "lo", New())
}

func TestDirectiveSeededCycle(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "lodir", New())
}

func TestCrossPackageCycleThroughFacts(t *testing.T) {
	// xb's reverse edge meets xa's forward edge only via the imported
	// graph fact; the witness chain crosses the package boundary.
	analyzertest.Run(t, "testdata/src", "xb", New())
}

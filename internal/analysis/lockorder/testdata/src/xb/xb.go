package xb

import "xa"

func BThenA(p *xa.Pair) {
	p.MuB.Lock()
	defer p.MuB.Unlock()
	xa.LockA(p) // want "lock-order deadlock: xa.Pair.MuB -> xa.Pair.MuA \\(at xb.go:8 -> xa.go:18\\); xa.Pair.MuA -> xa.Pair.MuB \\(at xa.go:13\\)"
}

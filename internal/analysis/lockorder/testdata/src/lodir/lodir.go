package lodir

import "sync"

type S struct{ mu sync.Mutex }

var gmu sync.Mutex

// lockG runs with the receiver's mutex held per its directive, so the
// acquisition below is the S.mu -> gmu edge; the reverse edge in other
// completes the cycle.
//
//sit:locked mu
func (s *S) lockG() {
	gmu.Lock() // want "lock-order deadlock: lodir.S.mu -> lodir.gmu \\(at lodir.go:15\\); lodir.gmu -> lodir.S.mu \\(at lodir.go:22\\)"
	gmu.Unlock()
}

func other(s *S) {
	gmu.Lock()
	defer gmu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

package xa

import "sync"

type Pair struct {
	MuA sync.Mutex
	MuB sync.Mutex
}

func AThenB(p *Pair) {
	p.MuA.Lock()
	defer p.MuA.Unlock()
	p.MuB.Lock()
	p.MuB.Unlock()
}

func LockA(p *Pair) {
	p.MuA.Lock()
	p.MuA.Unlock()
}

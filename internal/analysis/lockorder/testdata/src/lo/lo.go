package lo

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func abDirect(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "lock-order deadlock: lo.A.mu -> lo.B.mu \\(at lo.go:12\\); lo.B.mu -> lo.A.mu \\(at lo.go:19 -> lo.go:23\\)"
	b.mu.Unlock()
}

func baViaCall(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA(a)
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

// abAgain acquires in the same order as abDirect: the A->B edge is
// already in the graph and the cycle is already reported, so no new
// diagnostic.
func abAgain(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// twoInstances locks two instances of one class; classes are
// instance-insensitive, so no self-edge and no report.
func twoInstances(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// sequential holds nothing while acquiring: no edges.
func sequential(a *A, b *B) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

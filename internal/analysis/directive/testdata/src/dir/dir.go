package dir

import "sync"

type S struct{ mu sync.RWMutex }

// ok has a well-formed directive set.
//
//sit:locked mu
func (s *S) ok() {}

// typo misspells a directive.
//
//sit:lokced mu
func (s *S) typo() {} // want "unknown directive //sit:lokced on S.typo: no analyzer consumes it"

// missingArg declares a held lock without naming it.
//
//sit:locked
func (s *S) missingArg() {} // want "//sit:locked on S.missingArg has 0 arguments, want at least 1"

// extraArg gives arguments to a marker directive.
//
//sit:replay records
func replay() {} // want "//sit:replay on replay has 1 argument, want exactly 0"

// hotOK is a marker with no arguments, as required.
//
//sit:hotpath
func hotOK() {}

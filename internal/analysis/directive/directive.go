// Package directive validates the //sit: directive comments the other
// analyzers consume: the name must be one the suite knows, the argument
// count must match the directive's arity, and the comment must sit where
// its consumer looks for it — a function's doc comment. A misspelled or
// misplaced directive silently disables the invariant it was supposed to
// declare, which is exactly the failure mode a vet suite exists to
// prevent.
package directive

import (
	"fmt"
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// arity is a directive's argument-count contract.
type arity struct {
	min int
	max int // -1: unbounded
}

// known maps each directive name to its arity. All of them attach to
// function doc comments.
var known = map[string]arity{
	"locked":       {1, -1}, // mutexes the caller must hold exclusively
	"rlocked":      {1, -1}, // mutexes the caller must hold at least for reading
	"exclusive":    {0, 0},  // single-goroutine section: lock checks off
	"replay":       {0, 0},  // journal replay path: journalorder/statecapture marker
	"admission":    {0, 0},  // handler runs behind admission control
	"metriclabel":  {1, -1}, // which parameters feed metric labels
	"boundedlabel": {0, 0},  // function clamps its result to a bounded set
	"hotpath":      {0, 0},  // zero-allocation hot path (hotalloc)
	"captures":     {1, -1}, // journal ops covered by this snapshot function
	"bootstrap":    {1, -1}, // journal ops covered by this bootstrap function
}

// New returns the directive analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "directive",
		Doc:  "validate //sit: directive names, arities and placement",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Comment groups that are a function's doc comment — the one place
		// directives take effect.
		funcDocs := map[*ast.CommentGroup]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				funcDocs[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			fd := funcDocs[cg]
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//sit:")
				if !ok {
					continue
				}
				name, args, _ := strings.Cut(text, " ")
				name = strings.TrimSpace(name)
				if fd == nil {
					pass.Reportf(c.Pos(), "misplaced //sit:%s: directives only take effect in a function's doc comment", name)
					continue
				}
				ar, ok := known[name]
				if !ok {
					pass.Reportf(fd.Name.Pos(), "unknown directive //sit:%s on %s: no analyzer consumes it", name, analysis.FuncName(fd))
					continue
				}
				n := len(strings.Fields(args))
				if n < ar.min || (ar.max >= 0 && n > ar.max) {
					pass.Reportf(fd.Name.Pos(), "//sit:%s on %s has %d argument%s, want %s", name, analysis.FuncName(fd), n, plural(n), arityStr(ar))
				}
			}
		}
	}
	return nil
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

func arityStr(ar arity) string {
	switch {
	case ar.min == ar.max:
		return fmt.Sprintf("exactly %d", ar.min)
	case ar.max < 0:
		return fmt.Sprintf("at least %d", ar.min)
	default:
		return fmt.Sprintf("%d to %d", ar.min, ar.max)
	}
}

package directive

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analyzertest"
)

func TestNamesAndArity(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "dir", New())
}

func TestMisplacedDirective(t *testing.T) {
	// A directive floating inside a function body (or anywhere that is
	// not a function doc comment) has no effect; the analyzer says so at
	// the comment itself, which a // want comment cannot share a line
	// with — hence a direct test.
	const src = `package p

func f() {
	//sit:locked mu
	x := 1
	_ = x
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: map[*ast.Ident]types.Object{},
		Uses: map[*ast.Ident]types.Object{},
	}
	conf := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAll([]*analysis.Analyzer{New()}, fset, []*ast.File{file}, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "misplaced //sit:locked") {
		t.Fatalf("diagnostics = %+v, want one misplaced //sit:locked", diags)
	}
	if line := fset.Position(diags[0].Pos).Line; line != 4 {
		t.Fatalf("reported at line %d, want 4 (the comment)", line)
	}
}

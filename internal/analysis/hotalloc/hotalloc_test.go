package hotalloc

import (
	"testing"

	"repro/internal/analysis/analyzertest"
)

func TestHotPathAllocations(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "ha", New())
}

package ha

import "fmt"

type point struct{ x, y int }

// take is a zero-alloc hot path; every construct below breaks that.
//
//sit:hotpath
func take(n int, s string) int {
	buf := make([]byte, n)       // want "hot path allocates: make"
	grown := append(buf, 1)      // want "hot path allocates: append"
	b := []byte(s)               // want "hot path allocates: conversion from string to \\[\\]byte"
	t := string(buf)             // want "hot path allocates: conversion from \\[\\]byte to string"
	lit := []int{1, 2}           // want "hot path allocates: slice literal"
	m := map[string]int{}        // want "hot path allocates: map literal"
	p := &point{x: 1}            // want "hot path allocates: &composite literal \\(escapes\\)"
	f := func() int { return 0 } // want "hot path allocates: closure"
	msg := s + t + "!"           // want "hot path allocates: string concatenation"
	boxed := any(n)              // want "hot path allocates: conversion to interface"
	fmt.Println(msg, boxed)      // want "hot path allocates: call into fmt \\(Println boxes its arguments\\)"
	q := new(point)              // want "hot path allocates: new"
	v := point{x: n}             // a plain struct value stays on the stack: no diagnostic
	return len(grown) + len(b) + len(lit) + m["a"] + p.x + f() + q.x + v.x
}

// results builds and returns its output: named-result assignments and
// return expressions are the allocation the caller asked for.
//
//sit:hotpath
func results(n int) (out []byte) {
	out = make([]byte, n)
	out = append(out, byte(n))
	return out
}

// returnsDirect allocates only inside its return statement.
//
//sit:hotpath
func returnsDirect(n int, parts []string) ([]int, string, error) {
	if n < 0 {
		return nil, "", fmt.Errorf("negative count %d", n)
	}
	return []int{n}, parts[0] + parts[1], nil
}

// cold is unannotated; nothing here is checked.
func cold(n int) []byte {
	f := func() []byte { return make([]byte, n) }
	return f()
}

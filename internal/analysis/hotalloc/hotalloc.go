// Package hotalloc flags heap allocations and interface conversions in
// functions annotated //sit:hotpath — the paths whose benchmarks assert
// zero allocations per operation (admission bucket take, journal
// TailSince, similarity and closure cache reads).
//
// Flagged constructs: make, new and append calls; slice and map
// composite literals; address-of composite literals (which escape);
// closures (func literals); non-constant string concatenation;
// string↔[]byte/[]rune conversions; explicit conversions to interface
// types; and any call into package fmt (which boxes its arguments).
//
// The one exemption: a hot path may allocate its results. Anything
// inside a return statement, or assigned to a named result variable, is
// allowed — TailSince legitimately allocates the buffer it returns.
//
// The check is intraprocedural: calls into other functions are not
// followed (an annotated callee is checked on its own; an unannotated
// one is trusted). Plain struct value literals are not flagged — they
// stay on the stack unless they escape, and escape is what the flagged
// forms capture.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// New returns the hotalloc analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "hotalloc",
		Doc:  "flag heap allocations and interface conversions on //sit:hotpath functions",
		Run:  run,
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && analysis.HasDirective(fd.Doc, "hotpath") {
				check(pass, fd)
			}
		}
	}
	return nil
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Named result variables: assignments to them are the function
	// building its results, which a hot path is allowed to allocate.
	results := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, fld := range fd.Type.Results.List {
			for _, name := range fld.Names {
				if obj := info.Defs[name]; obj != nil {
					results[obj] = true
				}
			}
		}
	}

	// Pass 1: mark every node whose allocation is the function's result —
	// subtrees of return statements and of right-hand sides assigned to
	// named results.
	allowed := map[ast.Node]bool{}
	markAll := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m != nil {
				allowed[m] = true
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				markAll(r)
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && results[info.Uses[id]] {
						markAll(x.Rhs[i])
					}
				}
			} else if len(x.Rhs) == 1 && allResults(info, x.Lhs, results) {
				markAll(x.Rhs[0])
			}
		}
		return true
	})

	// Pass 2: flag allocating constructs outside the allowed set.
	// suppressed prevents double reports for nested forms (the composite
	// literal inside &T{...}, the inner adds of a concat chain).
	suppressed := map[ast.Node]bool{}
	flag := func(pos token.Pos, what string) {
		pass.Reportf(pos, "hot path allocates: %s; //sit:hotpath permits allocating only the function's results", what)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil || allowed[n] {
			return n != nil && !isFuncLit(n) // allowed subtrees need no checks, but closures still end the hot path
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			if !suppressed[x] {
				flag(x.Pos(), "closure")
			}
			return false // the literal's body runs outside this hot path
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := x.X.(*ast.CompositeLit); ok {
					flag(x.Pos(), "&composite literal (escapes)")
					suppressed[cl] = true
				}
			}
		case *ast.CompositeLit:
			if suppressed[x] {
				return true
			}
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				flag(x.Pos(), "slice literal")
			case *types.Map:
				flag(x.Pos(), "map literal")
			}
		case *ast.BinaryExpr:
			if suppressed[x] || x.Op != token.ADD {
				return true
			}
			if t := info.TypeOf(x); t != nil && isString(t) && info.Types[x].Value == nil {
				flag(x.Pos(), "string concatenation")
				suppressMoreAdds(x, suppressed)
			}
		case *ast.CallExpr:
			classifyCall(pass, x, flag)
		}
		return true
	})
}

// classifyCall flags allocating calls: the allocating builtins,
// string/byte-slice and interface conversions, and anything in fmt.
func classifyCall(pass *analysis.Pass, call *ast.CallExpr, flag func(token.Pos, string)) {
	info := pass.TypesInfo
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				flag(call.Pos(), b.Name())
			}
			return
		}
	}
	// Conversion: the "function" is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		target := tv.Type
		src := info.TypeOf(call.Args[0])
		switch {
		case isInterface(target) && src != nil && !isInterface(src):
			flag(call.Pos(), "conversion to interface "+target.String())
		case isString(target) && isByteOrRuneSlice(src):
			flag(call.Pos(), "conversion from "+src.String()+" to string")
		case isByteOrRuneSlice(target) && src != nil && isString(src):
			flag(call.Pos(), "conversion from string to "+target.String())
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			flag(call.Pos(), "call into fmt ("+fn.Name()+" boxes its arguments)")
		}
	}
}

// suppressMoreAdds marks the nested adds of a concat chain so a+b+c is
// reported once.
func suppressMoreAdds(x *ast.BinaryExpr, suppressed map[ast.Node]bool) {
	for _, side := range []ast.Expr{x.X, x.Y} {
		if be, ok := side.(*ast.BinaryExpr); ok && be.Op == token.ADD {
			suppressed[be] = true
			suppressMoreAdds(be, suppressed)
		}
	}
}

func allResults(info *types.Info, lhs []ast.Expr, results map[types.Object]bool) bool {
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok || !results[info.Uses[id]] {
			return false
		}
	}
	return len(lhs) > 0
}

func isFuncLit(n ast.Node) bool {
	_, ok := n.(*ast.FuncLit)
	return ok
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

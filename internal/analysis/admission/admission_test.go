package admission_test

import (
	"testing"

	"repro/internal/analysis/admission"
	"repro/internal/analysis/analyzertest"
)

func TestAdmission(t *testing.T) {
	a := admission.New(admission.Config{
		Registrars:    []string{"adm.Server.handle", "adm.Server.handleWS"},
		Admitters:     []string{"adm.Server.admitOpen", "adm.Server.admitRead", "adm.Server.admitMutate"},
		RawRegistrars: []string{"adm/web.Mux.Handle"},
	})
	analyzertest.Run(t, "testdata/src", "adm", a)
}

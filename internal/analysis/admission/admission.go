// Package admission enforces the server's front-door invariant: every
// handler registered on a route must pass through exactly one admitter —
// the auth/quota/rate-limit middleware chain — before any handler work.
//
// The analyzer is configured with three sets of functions, named
// "pkgpath.Recv.Method" (or "pkgpath.Func"):
//
//   - Registrars: the sanctioned route-registration helpers (Server.handle,
//     Server.handleWS). Every call must wrap its handler argument in an
//     admitter at the call site;
//   - Admitters: the admission wrappers (admitOpen, admitPeer, admitAdmin,
//     admitRead, admitMutate). An un-admitted route is a finding even when
//     it is "just" a health probe — admitOpen exists precisely so the
//     decision to skip auth is explicit and auditable;
//   - RawRegistrars: mux-level registration (http.ServeMux.Handle and
//     friends). Calling one directly bypasses the registrars entirely, so
//     any such call in a configured package is a finding.
//
// Functions marked "//sit:admission" are the registration plumbing itself
// (the registrar bodies, which necessarily touch the raw mux and pass
// handlers through untouched); the directive exempts a function's body,
// it never silences a route defined elsewhere.
package admission

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Config names the registrar, admitter and raw-registration functions.
type Config struct {
	// Packages are the import paths where the admission contract holds
	// (the HTTP serving layer). Empty means every package.
	Packages []string
	// Registrars are the route-registration helpers, "pkgpath.Recv.Method".
	Registrars []string
	// Admitters are the admission wrappers a registered handler must pass
	// through at the registration call site.
	Admitters []string
	// RawRegistrars are mux-level registration calls that bypass the
	// registrars; calling one outside //sit:admission plumbing is a finding.
	RawRegistrars []string
}

// New builds an admission analyzer for the given configuration.
func New(cfg Config) *analysis.Analyzer {
	pkgs := map[string]bool{}
	for _, p := range cfg.Packages {
		pkgs[p] = true
	}
	reg := map[string]bool{}
	for _, r := range cfg.Registrars {
		reg[r] = true
	}
	adm := map[string]bool{}
	for _, a := range cfg.Admitters {
		adm[a] = true
	}
	raw := map[string]bool{}
	for _, r := range cfg.RawRegistrars {
		raw[r] = true
	}
	return &analysis.Analyzer{
		Name: "admission",
		Doc:  "registered handlers must pass through the admission middleware chain",
		Run: func(pass *analysis.Pass) error {
			if len(pkgs) > 0 && !pkgs[analysis.BasePath(pass.Pkg.Path())] {
				return nil
			}
			return run(pass, reg, adm, raw)
		},
	}
}

func run(pass *analysis.Pass, registrars, admitters, rawRegistrars map[string]bool) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.HasDirective(fn.Doc, "admission") {
				continue
			}
			checkFunc(pass, fn, registrars, admitters, rawRegistrars)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, registrars, admitters, rawRegistrars map[string]bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(pass, call)
		if name == "" {
			return true
		}
		switch {
		case rawRegistrars[name]:
			pass.Reportf(call.Pos(), "route registered on the raw mux via %s, bypassing the admission chain; register through a sanctioned registrar", name)
		case registrars[name]:
			if !admitted(pass, call, admitters) {
				pass.Reportf(call.Pos(), "handler registered via %s without an admitter; wrap it in the auth/quota/rate-limit chain (admitOpen if the route is deliberately open)", name)
			}
		}
		return true
	})
}

// admitted reports whether any argument of the registrar call is, at the
// call site, a call to one of the admitters. Requiring the wrap at the
// registration site (not somewhere up the data flow) keeps the route table
// self-evidently safe to audit.
func admitted(pass *analysis.Pass, call *ast.CallExpr, admitters map[string]bool) bool {
	for _, arg := range call.Args {
		inner, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		if admitters[calleeName(pass, inner)] {
			return true
		}
	}
	return false
}

// calleeName resolves a call to "pkgpath.Recv.Method" / "pkgpath.Func", or
// "" for calls through function values and other statically unresolvable
// forms.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name := analysis.BasePath(fn.Pkg().Path())
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if rn := namedName(sig.Recv().Type()); rn != "" {
			name += "." + rn
		}
	}
	return name + "." + fn.Name()
}

func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// Package web is the raw-mux stand-in for the admission fixture: Mux.Handle
// is the configured raw registrar.
package web

type Handler func()

type Mux struct{ routes map[string]Handler }

func NewMux() *Mux { return &Mux{routes: map[string]Handler{}} }

func (m *Mux) Handle(pattern string, h Handler) { m.routes[pattern] = h }

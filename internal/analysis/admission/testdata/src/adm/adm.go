// Package adm exercises admission: routes registered with and without an
// admitter, raw-mux registration, and the //sit:admission plumbing
// exemption.
package adm

import "adm/web"

type Server struct{ mux *web.Mux }

func (s *Server) admitOpen(h web.Handler) web.Handler { return h }

func (s *Server) admitRead(h web.Handler) web.Handler { return h }

func (s *Server) gate(h web.Handler) web.Handler { return h }

// handle is the sanctioned registration plumbing: it necessarily touches
// the raw mux and passes already-admitted handlers through untouched.
//
//sit:admission
func (s *Server) handle(pattern string, h web.Handler) {
	s.mux.Handle(pattern, h)
}

func (s *Server) health()  {}
func (s *Server) metrics() {}
func (s *Server) create()  {}

func (s *Server) goodRoutes() {
	s.handle("GET /healthz", s.admitOpen(s.health))
	s.handle("GET /metrics", s.admitRead(s.metrics))
	s.handle("POST /v1/things", s.admitRead(s.gate(s.create)))
}

func (s *Server) badRoutes() {
	s.handle("GET /naked", s.metrics)                // want "handler registered via adm.Server.handle without an admitter"
	s.handle("POST /gated", s.gate(s.create))        // want "handler registered via adm.Server.handle without an admitter"
	s.mux.Handle("GET /raw", s.admitOpen(s.metrics)) // want "route registered on the raw mux via adm/web.Mux.Handle"
}

// Package adm exercises admission: routes registered with and without an
// admitter, raw-mux registration, and the //sit:admission plumbing
// exemption.
package adm

import "adm/web"

type Server struct{ mux *web.Mux }

func (s *Server) admitOpen(h web.Handler) web.Handler { return h }

func (s *Server) admitRead(h web.Handler) web.Handler { return h }

func (s *Server) admitMutate(h web.Handler) web.Handler { return h }

func (s *Server) gate(h web.Handler) web.Handler { return h }

// handle is the sanctioned registration plumbing: it necessarily touches
// the raw mux and passes already-admitted handlers through untouched.
//
//sit:admission
func (s *Server) handle(pattern string, h web.Handler) {
	s.mux.Handle(pattern, h)
}

// handleWS mirrors the workspace-scoped registrar: one data-plane route
// registered under two prefixes, handler already admitted by the caller.
//
//sit:admission
func (s *Server) handleWS(method, suffix string, h web.Handler) {
	s.mux.Handle(method+" /v1"+suffix, h)
	s.mux.Handle(method+" /v1/workspaces/{ws}"+suffix, h)
}

func (s *Server) health()  {}
func (s *Server) metrics() {}
func (s *Server) create()  {}
func (s *Server) query()   {}

func (s *Server) goodRoutes() {
	s.handle("GET /healthz", s.admitOpen(s.health))
	s.handle("GET /metrics", s.admitRead(s.metrics))
	s.handle("POST /v1/things", s.admitRead(s.gate(s.create)))
	s.handleWS("POST", "/query", s.admitRead(s.query))
	s.handleWS("POST", "/rows", s.admitMutate(s.create))
}

func (s *Server) badRoutes() {
	s.handle("GET /naked", s.metrics)                // want "handler registered via adm.Server.handle without an admitter"
	s.handle("POST /gated", s.gate(s.create))        // want "handler registered via adm.Server.handle without an admitter"
	s.handleWS("POST", "/query", s.query)            // want "handler registered via adm.Server.handleWS without an admitter"
	s.mux.Handle("GET /raw", s.admitOpen(s.metrics)) // want "route registered on the raw mux via adm/web.Mux.Handle"
}

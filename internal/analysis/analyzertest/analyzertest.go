// Package analyzertest runs an analyzer over fixture packages and checks
// its diagnostics against "// want" comments, in the manner of
// golang.org/x/tools/go/analysis/analysistest (which the offline build
// cannot depend on).
//
// Fixtures live under the analyzer's testdata/src/<path>/ directory, one
// package per directory; imports between fixture packages resolve within
// the same src root, and standard-library imports are type-checked from
// source. A fixture line expecting a diagnostic carries a trailing
//
//	// want "regexp"
//	// want "first" "second"
//	// want 12:"regexp"
//
// comment: several quoted regexps may follow one want, each naming one
// expected diagnostic on that line, and a regexp may be prefixed with a
// column number and colon to pin the diagnostic's column as well. The
// test fails on any unmatched expectation and on any unexpected
// diagnostic, so every fixture proves both true positives and
// non-findings.
//
// For analyzers that exchange cross-package facts, Run analyzes the
// fixture package's fixture-local imports first, in dependency order,
// threading each package's exported fact set to its dependents — the
// same propagation the real drivers perform — and checks want comments
// in those dependency packages too.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// TB is the subset of *testing.T the runner needs; tests of the runner
// itself substitute a recorder.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// loader type-checks fixture packages, resolving fixture-local imports
// under srcRoot and everything else through the source importer.
type loader struct {
	fset    *token.FileSet
	srcRoot string
	pkgs    map[string]*loaded
	std     types.Importer
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newLoader(srcRoot string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		srcRoot: srcRoot,
		pkgs:    map[string]*loaded{},
		std:     importer.ForCompiler(fset, "source", nil),
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*loaded, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, lp.err
	}
	lp := &loaded{}
	l.pkgs[path] = lp
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		lp.err = err
		return lp, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		lp.err = fmt.Errorf("analyzertest: no Go files in %s", dir)
		return lp, lp.err
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			lp.err = err
			return lp, err
		}
		lp.files = append(lp.files, f)
	}
	lp.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := &types.Config{Importer: l}
	lp.pkg, lp.err = conf.Check(path, l.fset, lp.files, lp.info)
	return lp, lp.err
}

// topo returns every loaded fixture package, dependencies first.
func (l *loader) topo() []string {
	visited := map[string]bool{}
	var order []string
	var visit func(path string)
	visit = func(path string) {
		if visited[path] {
			return
		}
		visited[path] = true
		lp := l.pkgs[path]
		if lp == nil || lp.pkg == nil {
			return
		}
		for _, imp := range lp.pkg.Imports() {
			if _, ok := l.pkgs[imp.Path()]; ok {
				visit(imp.Path())
			}
		}
		order = append(order, path)
	}
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		visit(p)
	}
	return order
}

// expectation is one // want entry: a message regexp, optionally pinned
// to a column.
type expectation struct {
	file    string
	line    int
	col     int // 0 means any column
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func parseWants(t TB, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					col := 0
					// Optional "N:" column prefix before the quoted regexp.
					if i := strings.IndexAny(rest, `:"`); i >= 0 && rest[i] == ':' {
						n, err := strconv.Atoi(rest[:i])
						if err != nil || n <= 0 {
							t.Fatalf("%s: malformed want column prefix in %q", pos, c.Text)
						}
						col = n
						rest = rest[i+1:]
					}
					if rest == "" || rest[0] != '"' {
						t.Fatalf("%s: malformed want comment %q", pos, c.Text)
					}
					lit, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
					}
					pattern, _ := strconv.Unquote(lit)
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, col: col, re: re, raw: pattern,
					})
					rest = strings.TrimSpace(rest[len(lit):])
				}
			}
		}
	}
	return wants
}

// Run loads the fixture package at srcRoot/<pkgPath> — analyzing its
// fixture-local imports first with facts flowing between packages — and
// checks the analyzer's diagnostics against every loaded fixture file's
// want comments.
func Run(t TB, srcRoot, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	l := newLoader(srcRoot)
	if _, err := l.load(pkgPath); err != nil {
		t.Fatalf("load fixture %s: %v", pkgPath, err)
	}

	facts := map[string]*analysis.FactSet{}
	var diags []analysis.Diagnostic
	var allFiles []*ast.File
	for _, path := range l.topo() {
		lp := l.pkgs[path]
		imported := analysis.NewFactSet()
		for _, imp := range lp.pkg.Imports() {
			if fs, ok := facts[imp.Path()]; ok {
				imported.Merge(fs)
			}
		}
		ds, exported, err := analysis.RunWithFacts([]*analysis.Analyzer{a}, l.fset, lp.files, lp.pkg, lp.info, imported)
		if err != nil {
			t.Fatalf("run %s over %s: %v", a.Name, path, err)
		}
		facts[path] = exported
		diags = append(diags, ds...)
		allFiles = append(allFiles, lp.files...)
	}
	wants := parseWants(t, l.fset, allFiles)

	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line &&
				(w.col == 0 || w.col == pos.Column) && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			if w.col > 0 {
				t.Errorf("%s:%d:%d: expected diagnostic matching %q, got none", w.file, w.line, w.col, w.raw)
			} else {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
			}
		}
	}
}

// Package analyzertest runs an analyzer over fixture packages and checks
// its diagnostics against "// want" comments, in the manner of
// golang.org/x/tools/go/analysis/analysistest (which the offline build
// cannot depend on).
//
// Fixtures live under the analyzer's testdata/src/<path>/ directory, one
// package per directory; imports between fixture packages resolve within
// the same src root, and standard-library imports are type-checked from
// source. A fixture line expecting a diagnostic carries a trailing
//
//	// want "regexp"
//
// comment (several quoted regexps may follow one want). The test fails on
// any unmatched expectation and on any unexpected diagnostic, so every
// fixture proves both true positives and non-findings.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// loader type-checks fixture packages, resolving fixture-local imports
// under srcRoot and everything else through the source importer.
type loader struct {
	fset    *token.FileSet
	srcRoot string
	pkgs    map[string]*loaded
	std     types.Importer
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newLoader(srcRoot string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		srcRoot: srcRoot,
		pkgs:    map[string]*loaded{},
		std:     importer.ForCompiler(fset, "source", nil),
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*loaded, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, lp.err
	}
	lp := &loaded{}
	l.pkgs[path] = lp
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		lp.err = err
		return lp, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		lp.err = fmt.Errorf("analyzertest: no Go files in %s", dir)
		return lp, lp.err
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			lp.err = err
			return lp, err
		}
		lp.files = append(lp.files, f)
	}
	lp.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := &types.Config{Importer: l}
	lp.pkg, lp.err = conf.Check(path, l.fset, lp.files, lp.info)
	return lp, lp.err
}

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' {
						t.Fatalf("%s: malformed want comment %q", pos, c.Text)
					}
					lit, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
					}
					pattern, _ := strconv.Unquote(lit)
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, raw: pattern,
					})
					rest = strings.TrimSpace(rest[len(lit):])
				}
			}
		}
	}
	return wants
}

// Run loads the fixture package at srcRoot/<pkgPath> and checks the
// analyzer's diagnostics against the fixture's want comments.
func Run(t *testing.T, srcRoot, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	l := newLoader(srcRoot)
	lp, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", pkgPath, err)
	}
	diags, err := analysis.RunAll([]*analysis.Analyzer{a}, l.fset, lp.files, lp.pkg, lp.info)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	wants := parseWants(t, l.fset, lp.files)

	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

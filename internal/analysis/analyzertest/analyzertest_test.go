package analyzertest

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeFixture lays out a srcRoot with the given path→content files.
func writeFixture(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		full := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// callReporter reports every call expression at the callee's position.
func callReporter() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "calls",
		Doc:  "reports each call expression",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						pass.Reportf(call.Pos(), "call here")
					}
					return true
				})
			}
			return nil
		},
	}
}

func TestMultipleWantsPerLine(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"multi/multi.go": `package multi

func f() {}

func g() { f(); f() } // want "call here" "call here"
`,
	})
	Run(t, root, "multi", callReporter())
}

func TestColumnPinnedWants(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"cols/cols.go": `package cols

func f() {}

func g() { f(); f() } // want 12:"call here" 17:"call here"
`,
	})
	Run(t, root, "cols", callReporter())
}

func TestColumnMismatchFails(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"badcol/badcol.go": `package badcol

func f() {}

func g() { f() } // want 99:"call here"
`,
	})
	sub := &recordingT{T: t}
	Run(sub, root, "badcol", callReporter())
	if !sub.failed {
		t.Fatal("column mismatch did not fail the fixture")
	}
	joined := strings.Join(sub.errors, "\n")
	if !strings.Contains(joined, "unexpected diagnostic") || !strings.Contains(joined, ":99:") {
		t.Fatalf("failure does not name both sides:\n%s", joined)
	}
}

type factOnFuncs struct {
	Name string `json:"name"`
}

func (*factOnFuncs) AFact() {}

// depFactAnalyzer exports a fact per exported function and reports
// cross-package calls to fact-carrying functions — exercising fact flow
// from a fixture dependency into the package under test.
func depFactAnalyzer() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:      "depfact",
		Doc:       "facts across fixture packages",
		FactTypes: []analysis.Fact{(*factOnFuncs)(nil)},
		Run: func(pass *analysis.Pass) error {
			scope := pass.Pkg.Scope()
			for _, name := range scope.Names() {
				if fn, ok := scope.Lookup(name).(*types.Func); ok && fn.Exported() {
					pass.ExportObjectFact(fn, &factOnFuncs{Name: name})
				}
			}
			for ident, obj := range pass.TypesInfo.Uses {
				var f factOnFuncs
				if obj.Pkg() != nil && obj.Pkg() != pass.Pkg && pass.ImportObjectFact(obj, &f) {
					pass.Reportf(ident.Pos(), "uses %s from %s", f.Name, analysis.BasePath(obj.Pkg().Path()))
				}
			}
			return nil
		},
	}
}

func TestFactsFlowBetweenFixturePackages(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"dep/dep.go": `package dep

func Provide() int { return 1 }
`,
		"top/top.go": `package top

import "dep"

func use() int {
	return dep.Provide() // want "uses Provide from dep"
}
`,
	})
	Run(t, root, "top", depFactAnalyzer())
}

func TestWantsInDependencyPackagesChecked(t *testing.T) {
	// A want comment in the dependency fixture is honored too: deleting
	// the diagnostic it names fails the run.
	root := writeFixture(t, map[string]string{
		"depw/depw.go": `package depw

func Helper() {} // want 99:"never reported"
`,
		"topw/topw.go": `package topw

import "depw"

func use() { depw.Helper() }
`,
	})
	sub := &recordingT{T: t}
	Run(sub, root, "topw", callReporter())
	if !sub.failed {
		t.Fatal("unmatched want in dependency fixture did not fail the run")
	}
	if joined := strings.Join(sub.errors, "\n"); !strings.Contains(joined, "never reported") {
		t.Fatalf("failure does not name the dependency want:\n%s", joined)
	}
}

// recordingT captures Errorf so a deliberately failing fixture can be
// asserted on without failing the real test.
type recordingT struct {
	*testing.T
	failed bool
	errors []string
}

func (r *recordingT) Errorf(format string, args ...any) {
	r.failed = true
	r.errors = append(r.errors, strings.TrimSpace(fmt.Sprintf(format, args...)))
}

// Package analysis is the repo's static-analysis framework: a deliberately
// small, standard-library-only core in the shape of
// golang.org/x/tools/go/analysis, carrying the project-specific analyzers
// under internal/analysis/... and the cmd/sit-vet vet tool that runs them.
//
// The paper's tool exists because the DDA's eyeballs cannot be trusted to
// catch assertion conflicts; this package exists because the compiler's
// eyeballs cannot be trusted to catch the server's concurrency, durability
// and error-handling invariants. Each analyzer codifies one invariant the
// review cycle has already caught real bugs against:
//
//   - lockguard: fields documented "guarded by <mu>" are only touched with
//     <mu> held, and never written under an RLock.
//   - errtype: errors are classified with errors.Is/errors.As, never by
//     comparing or substring-matching message text.
//   - journalorder: durable-state mutations in internal/server are
//     write-ahead journaled before they are applied.
//   - metriclabel: metric label values come from bounded-cardinality
//     sources, never from request-derived strings.
//   - lockio: no file or network I/O runs while an in-memory mutex is held.
//
// The framework is intentionally minimal: analyzers receive one
// type-checked package at a time (a Pass) and report position-tagged
// diagnostics. There is no cross-package fact store; every invariant here
// is checkable within one package given type information for its imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check: a name, a documentation string and a Run
// function applied to one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string
	// Doc is the analyzer's documentation: first line a one-sentence
	// summary, the rest the full contract it enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// pass.Report. The returned error aborts the whole run (reserve it for
	// internal failures, not findings).
	Run func(pass *Pass) error
	// FactTypes lists prototype values of every fact type the analyzer
	// exports or imports (pointer-to-struct implementing Fact). A non-empty
	// list tells the drivers the analyzer participates in cross-package
	// facts, so it must also run over dependency-only units to keep the
	// fact stream complete.
	FactTypes []Fact
}

// UsesFacts reports whether the analyzer exchanges cross-package facts.
func (a *Analyzer) UsesFacts() bool { return len(a.FactTypes) > 0 }

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives each diagnostic; installed by the driver.
	report func(Diagnostic)
	// imported holds facts from the package's dependencies; exported
	// collects facts this package's analyzers produce. Both installed by
	// the driver (nil outside fact-carrying runs).
	imported *FactSet
	exported *FactSet
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run applies the analyzer to a loaded package, invoking report for each
// diagnostic in source order (the order analyzers emit; drivers sort).
func (a *Analyzer) run(pass *Pass, report func(Diagnostic)) error {
	pass.Analyzer = a
	pass.report = report
	return a.Run(pass)
}

// RunAll applies every analyzer to the package described by fset/files/pkg/
// info and returns the diagnostics sorted by position. No facts flow in or
// out; single-package drivers and tests of fact-free analyzers use this.
func RunAll(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	diags, _, err := RunWithFacts(analyzers, fset, files, pkg, info, nil)
	return diags, err
}

// RunWithFacts applies every analyzer to the package, seeding each pass
// with the dependency facts in imported and returning the diagnostics
// (sorted by position) together with the package's exported fact set —
// everything the analyzers exported plus the imported set, so drivers
// propagate facts transitively by handing each package's output to its
// dependents.
func RunWithFacts(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, imported *FactSet) ([]Diagnostic, *FactSet, error) {
	exported := NewFactSet()
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, imported: imported, exported: exported}
		if err := a.run(pass, func(d Diagnostic) { diags = append(diags, d) }); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(diags)
	exported.Merge(imported)
	return diags, exported, nil
}

func sortDiagnostics(diags []Diagnostic) {
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && diags[j].Pos < diags[j-1].Pos; j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

package statecapture

import (
	"testing"

	"repro/internal/analysis/analyzertest"
)

func TestMissingLegs(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "sc", New(Config{Package: "sc", OpPrefix: "op"}))
}

func TestUnknownOpReference(t *testing.T) {
	analyzertest.Run(t, "testdata/src", "scbad", New(Config{Package: "scbad", OpPrefix: "op"}))
}

func TestCrossPackageCoverage(t *testing.T) {
	// ops declares and writes/replays; root claims capture and bootstrap
	// coverage. The missing bootstrap leg for OpBeta surfaces in the
	// anchor (root), pointing back at the declaring package.
	analyzertest.Run(t, "testdata/src", "scx/root", New(Config{Package: "scx/root", OpPrefix: "Op"}))
}

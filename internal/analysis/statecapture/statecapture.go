// Package statecapture verifies durability completeness: every journal
// operation constant must have all four legs of its lifecycle, or a
// crash, snapshot or follower bootstrap silently loses state.
//
// The four legs of an op:
//
//   - write — the op constant is passed to some journaling call
//     (st.journal(opX, …), q.persist(opX, …), j.Append(opX, …));
//   - replay — a `case opX:` appears in a function marked //sit:replay,
//     so recovery applies the record;
//   - capture — the op is listed in a //sit:captures directive on the
//     snapshot function, attesting the state the op mutates is included
//     in snapshots (which replace the journal prefix on compaction);
//   - bootstrap — the op is listed in a //sit:bootstrap directive on the
//     follower bootstrap path, attesting a freshly seeded follower
//     restores that state.
//
// Op constants are package-scoped string constants whose name starts
// with Config.OpPrefix. Every analyzed package exports what it observed
// as a package fact; the anchor package named by Config.Package merges
// its own observations with its dependencies' facts and reports any op
// with a missing leg at the constant's declaration. A //sit:captures or
// //sit:bootstrap argument that names no known op is reported too —
// coverage claimed for a nonexistent op is a stale directive.
package statecapture

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"unicode"

	"repro/internal/analysis"
)

// Config names the anchor package and the op constant prefix.
type Config struct {
	// Package is the anchor: the package (base import path) where the
	// merged coverage is checked and diagnostics are reported.
	Package string
	// OpPrefix is the prefix of journal-op constant names ("op" in the
	// server); a constant counts only if it is string-typed and the prefix
	// is followed by an upper-case rune, so opAddSchemas matches while
	// openMode and the standard library's int-typed opRead do not.
	OpPrefix string
}

// sameModule reports whether pkgPath lives under the same top-level
// module prefix as the anchor package. Packages outside it — the entire
// standard library in particular — are never in scope: their constants
// are not journal ops no matter what they are named.
func (cfg Config) sameModule(pkgPath string) bool {
	prefix := cfg.Package
	if i := strings.Index(prefix, "/"); i >= 0 {
		prefix = prefix[:i]
	}
	return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
}

// coverageFact is the package fact: which ops this package declares,
// which legs it observed, and which directive references it made.
type coverageFact struct {
	Ops  map[string]opInfo `json:"ops"`
	Refs []opRef           `json:"refs,omitempty"`
}

func (*coverageFact) AFact() {}

type opInfo struct {
	Decl      string `json:"decl,omitempty"` // file:line of the const declaration
	Write     bool   `json:"write,omitempty"`
	Replay    bool   `json:"replay,omitempty"`
	Capture   bool   `json:"capture,omitempty"`
	Bootstrap bool   `json:"bootstrap,omitempty"`
}

type opRef struct {
	Name      string `json:"name"`
	Directive string `json:"directive"`
	Pos       string `json:"pos"`
}

// New returns a statecapture analyzer for the given configuration.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:      "statecapture",
		Doc:       "verify every journal op is written, replayed, captured in snapshots and applied on bootstrap",
		FactTypes: []analysis.Fact{(*coverageFact)(nil)},
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg)
		},
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	// Out-of-module packages (std and any vendored deps) carry no journal
	// ops; skip them entirely rather than exporting empty facts.
	if !cfg.sameModule(analysis.BasePath(pass.Pkg.Path())) {
		return nil
	}
	own := &coverageFact{Ops: map[string]opInfo{}}
	declPos := map[string]token.Pos{} // local const decls
	refPos := map[int]token.Pos{}     // own.Refs index → position
	isOp := func(obj types.Object) bool {
		c, ok := obj.(*types.Const)
		if !ok || c.Pkg() == nil || c.Parent() != c.Pkg().Scope() {
			return false
		}
		if b, ok := c.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
			return false
		}
		if !cfg.sameModule(analysis.BasePath(c.Pkg().Path())) {
			return false
		}
		rest, found := strings.CutPrefix(c.Name(), cfg.OpPrefix)
		return found && rest != "" && unicode.IsUpper(rune(rest[0]))
	}

	// Local op declarations.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if isOp(obj) {
			own.Ops[name] = opInfo{Decl: posStr(pass.Fset, obj.Pos())}
			declPos[name] = obj.Pos()
		}
	}

	mark := func(name string, leg func(*opInfo)) {
		oi := own.Ops[name]
		leg(&oi)
		own.Ops[name] = oi
	}

	// Legs observed in this package's functions.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, d := range analysis.Directives(fd.Doc) {
				var leg func(*opInfo)
				switch d.Name {
				case "captures":
					leg = func(oi *opInfo) { oi.Capture = true }
				case "bootstrap":
					leg = func(oi *opInfo) { oi.Bootstrap = true }
				default:
					continue
				}
				for _, name := range strings.Fields(d.Args) {
					mark(name, leg)
					refPos[len(own.Refs)] = fd.Name.Pos()
					own.Refs = append(own.Refs, opRef{Name: name, Directive: d.Name, Pos: posStr(pass.Fset, fd.Name.Pos())})
				}
			}
			if fd.Body == nil {
				continue
			}
			if analysis.HasDirective(fd.Doc, "replay") {
				// Replay leg: case labels naming an op constant.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					cc, ok := n.(*ast.CaseClause)
					if !ok {
						return true
					}
					for _, e := range cc.List {
						if obj := exprConst(pass.TypesInfo, e); obj != nil && isOp(obj) {
							mark(obj.Name(), func(oi *opInfo) { oi.Replay = true })
						}
					}
					return true
				})
				continue
			}
			// Write leg: the op constant handed to any call outside replay
			// functions — st.journal(opX, …), q.persist(opX, …),
			// j.Append(opX, …) and the like.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, arg := range call.Args {
					if obj := exprConst(pass.TypesInfo, arg); obj != nil && isOp(obj) {
						mark(obj.Name(), func(oi *opInfo) { oi.Write = true })
					}
				}
				return true
			})
		}
	}

	if analysis.BasePath(pass.Pkg.Path()) != cfg.Package {
		if len(own.Ops) > 0 || len(own.Refs) > 0 {
			pass.ExportPackageFact(own)
		}
		return nil
	}

	// Anchor: merge dependency facts into the local view and check.
	merged := map[string]opInfo{}
	declPkg := map[string]string{}
	var refs []opRef
	refAt := map[int]token.Pos{}
	for _, rec := range pass.AllImportedFacts(analysis.PackageFactKind, (*coverageFact)(nil)) {
		var cf coverageFact
		if err := rec.Decode(&cf); err != nil {
			continue
		}
		for name, oi := range cf.Ops {
			m := merged[name]
			mergeInto(&m, oi)
			merged[name] = m
			if oi.Decl != "" {
				declPkg[name] = rec.Key
			}
		}
		refs = append(refs, cf.Refs...)
	}
	for name, oi := range own.Ops {
		m := merged[name]
		mergeInto(&m, oi)
		merged[name] = m
	}
	for i, r := range own.Refs {
		refAt[len(refs)] = refPos[i]
		refs = append(refs, r)
	}

	for i, r := range refs {
		// An op exists only if its constant declaration was seen; a
		// directive reference alone must not conjure one into existence.
		if merged[r.Name].Decl != "" {
			continue
		}
		if pos, ok := refAt[i]; ok {
			pass.Reportf(pos, "//sit:%s names unknown op %s: stale or misspelled coverage claim", r.Directive, r.Name)
		} else {
			pass.Reportf(pass.Files[0].Name.Pos(), "//sit:%s at %s names unknown op %s: stale or misspelled coverage claim", r.Directive, r.Pos, r.Name)
		}
	}

	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		oi := merged[name]
		if oi.Decl == "" {
			continue // reference to a nonexistent op, reported above
		}
		var missing []string
		if !oi.Write {
			missing = append(missing, "a journal write site")
		}
		if !oi.Replay {
			missing = append(missing, "a case in a //sit:replay function")
		}
		if !oi.Capture {
			missing = append(missing, "//sit:captures coverage in the snapshot path")
		}
		if !oi.Bootstrap {
			missing = append(missing, "//sit:bootstrap coverage in the follower seed path")
		}
		if len(missing) == 0 {
			continue
		}
		msg := fmt.Sprintf("journal op %s is missing %s: state written under this op would be lost across that leg", name, strings.Join(missing, ", "))
		if pos, ok := declPos[name]; ok {
			pass.Reportf(pos, "%s", msg)
		} else {
			pass.Reportf(importPos(pass, declPkg[name]), "%s (declared at %s)", msg, oi.Decl)
		}
	}
	return nil
}

func mergeInto(dst *opInfo, src opInfo) {
	if src.Decl != "" {
		dst.Decl = src.Decl
	}
	dst.Write = dst.Write || src.Write
	dst.Replay = dst.Replay || src.Replay
	dst.Capture = dst.Capture || src.Capture
	dst.Bootstrap = dst.Bootstrap || src.Bootstrap
}

// exprConst resolves an identifier or pkg-qualified selector to the
// constant it names.
func exprConst(info *types.Info, e ast.Expr) *types.Const {
	switch x := e.(type) {
	case *ast.Ident:
		c, _ := info.Uses[x].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := info.Uses[x.Sel].(*types.Const)
		return c
	}
	return nil
}

// importPos locates the import of pkgPath in the anchor's files, falling
// back to the first file's package clause.
func importPos(pass *analysis.Pass, pkgPath string) token.Pos {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == pkgPath {
				return imp.Pos()
			}
		}
	}
	return pass.Files[0].Name.Pos()
}

func posStr(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

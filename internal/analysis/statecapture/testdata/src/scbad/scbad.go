package scbad

const opReal = "real"

func journal(op string, rec any) {}

func mutate() { journal(opReal, nil) }

// apply replays journal records.
//
//sit:replay
func apply(op string) {
	switch op {
	case opReal:
	}
}

// capture claims coverage for an op that does not exist.
//
//sit:captures opReal opVanished
func capture() {} // want "//sit:captures names unknown op opVanished: stale or misspelled coverage claim"

//sit:bootstrap opReal
func bootstrap() {}

package sc

const (
	opGood        = "good"
	opNoWrite     = "no_write"     // want "journal op opNoWrite is missing a journal write site"
	opNoReplay    = "no_replay"    // want "journal op opNoReplay is missing a case in a //sit:replay function"
	opNoCapture   = "no_capture"   // want "journal op opNoCapture is missing //sit:captures coverage in the snapshot path"
	opNoBootstrap = "no_bootstrap" // want "journal op opNoBootstrap is missing //sit:bootstrap coverage in the follower seed path"
)

// openMode has the prefix letters but not an op name shape; it needs no
// lifecycle and produces no diagnostics.
const openMode = "rw"

func journal(op string, rec any) {}

func mutate() {
	journal(opGood, nil)
	journal(opNoReplay, nil)
	journal(opNoCapture, nil)
	journal(opNoBootstrap, nil)
	_ = openMode
}

// apply replays journal records on recovery.
//
//sit:replay
func apply(op string) {
	switch op {
	case opGood, opNoWrite, opNoCapture, opNoBootstrap:
	}
}

// capture snapshots the state every listed op mutates.
//
//sit:captures opGood opNoWrite opNoReplay opNoBootstrap
func capture() {}

// bootstrap seeds a follower with the state every listed op mutates.
//
//sit:bootstrap opGood opNoWrite opNoReplay opNoCapture
func bootstrap() {}

package ops

const (
	OpAlpha = "alpha"
	OpBeta  = "beta"
)

func journal(op string, rec any) {}

func Mutate() {
	journal(OpAlpha, nil)
	journal(OpBeta, nil)
}

// Apply replays journal records.
//
//sit:replay
func Apply(op string) {
	switch op {
	case OpAlpha, OpBeta:
	}
}

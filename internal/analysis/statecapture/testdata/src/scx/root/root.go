package root

import "scx/ops" // want "journal op OpBeta is missing //sit:bootstrap coverage in the follower seed path: state written under this op would be lost across that leg \\(declared at ops.go:5\\)"

func Use() { ops.Mutate() }

// capture snapshots both ops' state.
//
//sit:captures OpAlpha OpBeta
func capture() {}

// bootstrap seeds a follower, but OpBeta's state was forgotten here.
//
//sit:bootstrap OpAlpha
func bootstrap() {}

package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

type testFact struct {
	Note string `json:"note"`
}

func (*testFact) AFact() {}

func typecheck(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs: map[*ast.Ident]types.Object{},
		Uses: map[*ast.Ident]types.Object{},
	}
	conf := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("example.com/p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

func TestFactRoundTripThroughEncoding(t *testing.T) {
	fset, files, pkg, info := typecheck(t, `package p
type T struct{}
func (t *T) M() {}
func F() {}
`)
	exporter := &Analyzer{
		Name:      "exp",
		Doc:       "exports facts",
		FactTypes: []Fact{(*testFact)(nil)},
		Run: func(pass *Pass) error {
			pass.ExportObjectFact(pkg.Scope().Lookup("F"), &testFact{Note: "func"})
			pass.ExportPackageFact(&testFact{Note: "pkg"})
			return nil
		},
	}
	_, exported, err := RunWithFacts([]*Analyzer{exporter}, fset, files, pkg, info, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := exported.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFactSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Len() != 2 {
		t.Fatalf("decoded %d facts, want 2", decoded.Len())
	}

	// A downstream pass with the decoded set imports both facts back.
	var got []string
	importer := &Analyzer{
		Name:      "exp", // facts are namespaced per analyzer name
		Doc:       "imports facts",
		FactTypes: []Fact{(*testFact)(nil)},
		Run: func(pass *Pass) error {
			var f testFact
			if pass.ImportObjectFact(pkg.Scope().Lookup("F"), &f) {
				got = append(got, "obj:"+f.Note)
			}
			if pass.ImportPackageFact("example.com/p", &f) {
				got = append(got, "pkg:"+f.Note)
			}
			if pass.ImportObjectFact(pkg.Scope().Lookup("T"), &f) {
				got = append(got, "unexpected")
			}
			return nil
		},
	}
	if _, _, err := RunWithFacts([]*Analyzer{importer}, fset, files, pkg, info, decoded); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "obj:func" || got[1] != "pkg:pkg" {
		t.Fatalf("imported facts = %v", got)
	}
}

func TestRunWithFactsPropagatesImportsTransitively(t *testing.T) {
	fset, files, pkg, info := typecheck(t, `package p; func F() {}`)
	upstream := NewFactSet()
	upstream.Add(FactRecord{Analyzer: "a", Kind: PackageFactKind, Key: "example.com/dep", Type: "testFact", Data: []byte(`{"note":"dep"}`)})
	noop := &Analyzer{Name: "a", Doc: "noop", Run: func(*Pass) error { return nil }}
	_, exported, err := RunWithFacts([]*Analyzer{noop}, fset, files, pkg, info, upstream)
	if err != nil {
		t.Fatal(err)
	}
	if exported.Len() != 1 {
		t.Fatalf("exported set lost the imported fact: %d records", exported.Len())
	}
}

func TestObjectKey(t *testing.T) {
	_, _, pkg, _ := typecheck(t, `package p
type T struct{}
func (t *T) M() {}
func F() {}
var V int
`)
	scope := pkg.Scope()
	cases := []struct {
		obj  types.Object
		want string
	}{
		{scope.Lookup("F"), "example.com/p.F"},
		{scope.Lookup("V"), "example.com/p.V"},
		{scope.Lookup("T").Type().(*types.Named).Method(0), "example.com/p.T.M"},
	}
	for _, c := range cases {
		if got := ObjectKey(c.obj); got != c.want {
			t.Errorf("ObjectKey(%v) = %q, want %q", c.obj, got, c.want)
		}
	}
}

func TestBasePath(t *testing.T) {
	if got := BasePath("repro/internal/server [repro/internal/server.test]"); got != "repro/internal/server" {
		t.Fatalf("BasePath test variant = %q", got)
	}
	if got := BasePath("repro/internal/server"); got != "repro/internal/server" {
		t.Fatalf("BasePath plain = %q", got)
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Directive is one "//sit:<name> <args>" comment. Directives are the
// analyzers' annotation language: they declare contracts (which mutex a
// caller must hold, which parameters are metric labels, which functions
// return bounded label values) — they never suppress findings.
type Directive struct {
	Name string
	Args string
	Pos  token.Pos
}

// Directives extracts the //sit: directives from a comment group.
func Directives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//sit:")
		if !ok {
			continue
		}
		name, args, _ := strings.Cut(text, " ")
		out = append(out, Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()})
	}
	return out
}

// HasDirective reports whether the comment group carries //sit:<name>.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	for _, d := range Directives(doc) {
		if d.Name == name {
			return true
		}
	}
	return false
}

var guardedByRE = regexp.MustCompile(`(?i)guarded by (\w+)`)

// GuardedBy reports the mutex named by a "guarded by <mu>" phrase in the
// field's doc or line comment, if any. The phrase is the contract lockguard
// enforces: every access to the field must hold <mu> (a sibling field of
// the same struct), and writes must hold it exclusively.
func GuardedBy(field *ast.Field) (mu string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// FuncName returns the name of a function declaration including its
// receiver type, in the form "Recv.Name" (or just "Name" for functions).
func FuncName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

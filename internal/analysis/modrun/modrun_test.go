package modrun

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

type exportedFact struct {
	Name string `json:"name"`
}

func (*exportedFact) AFact() {}

// crossPkgAnalyzer exports a fact for every exported function and, when a
// called function carries one, reports the call — so a diagnostic in a
// package that only *calls* the function proves the fact crossed the
// package boundary.
func crossPkgAnalyzer() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:      "xfact",
		Doc:       "test analyzer: facts across packages",
		FactTypes: []analysis.Fact{(*exportedFact)(nil)},
		Run: func(pass *analysis.Pass) error {
			scope := pass.Pkg.Scope()
			for _, name := range scope.Names() {
				obj := scope.Lookup(name)
				if obj.Exported() && strings.HasPrefix(name, "Tracked") {
					pass.ExportObjectFact(obj, &exportedFact{Name: name})
				}
			}
			for ident, obj := range pass.TypesInfo.Uses {
				var f exportedFact
				if obj.Pkg() != nil && obj.Pkg() != pass.Pkg && pass.ImportObjectFact(obj, &f) {
					pass.Reportf(ident.Pos(), "call to tracked function %s", f.Name)
				}
			}
			return nil
		},
	}
}

// writeModule lays out a two-package module: pkg b imports pkg a and
// calls a fact-carrying function.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":      "module example.com/m\n\ngo 1.22\n",
		"a/a.go":      "package a\n\nfunc TrackedThing() int { return 1 }\n\nfunc Plain() int { return 2 }\n",
		"b/b.go":      "package b\n\nimport \"example.com/m/a\"\n\nfunc Use() int { return a.TrackedThing() + a.Plain() }\n",
		"b/b_test.go": "package b\n\nimport (\n\t\"testing\"\n\n\t\"example.com/m/a\"\n)\n\nfunc TestUse(t *testing.T) {\n\tif a.TrackedThing() == 0 {\n\t\tt.Fatal(\"zero\")\n\t}\n}\n",
	}
	for name, content := range files {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func requireGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
}

func TestRunPropagatesFactsAcrossPackages(t *testing.T) {
	requireGo(t)
	dir := writeModule(t)
	var buf bytes.Buffer
	n, err := Run(&buf, []*analysis.Analyzer{crossPkgAnalyzer()}, Options{
		Dir:      dir,
		Patterns: []string{"./..."},
		ToolID:   "test-build",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n == 0 || !strings.Contains(out, "call to tracked function TrackedThing") {
		t.Fatalf("fact did not cross from a to b:\n%s", out)
	}
	// The production call in b.go and the test-file call in b_test.go must
	// both be flagged: test variants are analyzed, and the fact reached
	// them too.
	if !strings.Contains(out, "b.go:") || !strings.Contains(out, "b_test.go:") {
		t.Fatalf("missing production or test-file diagnostic:\n%s", out)
	}
	// a.Plain carries no fact; only Tracked calls are reported.
	if strings.Contains(out, "Plain") {
		t.Fatalf("untracked function reported:\n%s", out)
	}
}

func TestRunCachesResultsBetweenRuns(t *testing.T) {
	requireGo(t)
	dir := writeModule(t)
	cache := filepath.Join(t.TempDir(), "cache.json")
	opts := Options{Dir: dir, Patterns: []string{"./..."}, ToolID: "test-build", CachePath: cache}

	var first bytes.Buffer
	n1, err := Run(&first, []*analysis.Analyzer{crossPkgAnalyzer()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cache)
	if err != nil {
		t.Fatalf("cache not written: %v", err)
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil {
		t.Fatal(err)
	}
	if len(cf.Packages) == 0 {
		t.Fatal("cache holds no packages")
	}
	if _, ok := cf.Packages["example.com/m/a"]; !ok {
		t.Fatalf("cache missing package a: %v", keys(cf.Packages))
	}

	var second bytes.Buffer
	n2, err := Run(&second, []*analysis.Analyzer{crossPkgAnalyzer()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || first.String() != second.String() {
		t.Fatalf("cached run differs:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}

	// A cache written by a different tool build is discarded, not reused:
	// the run still succeeds and still reports everything.
	var third bytes.Buffer
	stale := opts
	stale.ToolID = "other-build"
	n3, err := Run(&third, []*analysis.Analyzer{crossPkgAnalyzer()}, stale)
	if err != nil {
		t.Fatal(err)
	}
	if n3 != n1 {
		t.Fatalf("stale-cache run reported %d findings, want %d", n3, n1)
	}
}

func TestRunInvalidatesCacheOnSourceChange(t *testing.T) {
	requireGo(t)
	dir := writeModule(t)
	cache := filepath.Join(t.TempDir(), "cache.json")
	opts := Options{Dir: dir, Patterns: []string{"./..."}, ToolID: "test-build", CachePath: cache}

	var first bytes.Buffer
	if _, err := Run(&first, []*analysis.Analyzer{crossPkgAnalyzer()}, opts); err != nil {
		t.Fatal(err)
	}

	// Add a second tracked call in b; the cached entry for b must not be
	// served.
	bPath := filepath.Join(dir, "b", "b.go")
	src, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	updated := strings.Replace(string(src), "a.TrackedThing() + a.Plain()", "a.TrackedThing() + a.TrackedThing()", 1)
	if err := os.WriteFile(bPath, []byte(updated), 0o666); err != nil {
		t.Fatal(err)
	}

	var second bytes.Buffer
	if _, err := Run(&second, []*analysis.Analyzer{crossPkgAnalyzer()}, opts); err != nil {
		t.Fatal(err)
	}
	if c1, c2 := strings.Count(first.String(), "b.go:"), strings.Count(second.String(), "b.go:"); c2 != c1+1 {
		t.Fatalf("edit not picked up: %d then %d b.go findings\n%s", c1, c2, second.String())
	}
}

func keys(m map[string]*cacheEntry) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

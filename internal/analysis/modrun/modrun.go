// Package modrun is sit-vet's whole-module driver: it loads every package
// named by the patterns — including test variants, which `go vet
// -vettool` never hands to the tool — through `go list -export -deps
// -test`, type-checks each against the export data the go command already
// built, and runs the analyzer suite over the module's packages in
// dependency order with facts flowing from each package to its
// dependents.
//
// Where the unit driver receives one compilation unit per process and
// threads facts through .vetx files, this driver sees the whole graph in
// one process: the fact set a package exports (its own plus everything
// inherited) is handed directly to its dependents. Results are cached
// across runs in a single JSON file keyed by a Merkle hash of the tool
// build, the package's source bytes and its dependencies' fact sets, so
// an unchanged package costs one hash instead of a re-analysis; a cache
// written by a different tool build or format version is discarded
// wholesale, never reused.
package modrun

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// listPackage is the subset of `go list -json` this driver consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Imports    []string
	ImportMap  map[string]string
	ForTest    string
	Module     *struct{ Path string }
}

// Diagnostic is one rendered finding: position, message and analyzer.
type Diagnostic struct {
	Pos      string `json:"pos"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

// cacheFile is the cross-run result cache: per-package Merkle hash, the
// facts the package exported and the diagnostics it produced.
type cacheFile struct {
	Version  string                 `json:"version"`
	ToolID   string                 `json:"toolID"`
	Packages map[string]*cacheEntry `json:"packages"`
}

type cacheEntry struct {
	Hash  string                `json:"hash"`
	Facts []analysis.FactRecord `json:"facts,omitempty"`
	Diags []Diagnostic          `json:"diags,omitempty"`
}

const cacheVersion = "sit-vet-modcache/1"

// Options configures a module run.
type Options struct {
	// Dir is the directory to run `go list` from (the module root or any
	// directory inside it). Empty means the current directory.
	Dir string
	// Patterns are the package patterns ("./..." and friends).
	Patterns []string
	// CachePath, when non-empty, is the cross-run result cache file. A
	// missing or stale cache is recomputed, never trusted.
	CachePath string
	// ToolID keys the cache to one tool build (the sit-vet binary hash).
	ToolID string
	// Tests includes _test.go files by analyzing test variants (default
	// behavior; disable for a faster production-only pass).
	NoTests bool
}

// Run executes the analyzers over the module, printing diagnostics to w
// ("file:line:col: message [analyzer]") and returning how many were
// reported. An error means the run itself failed, not that findings
// exist.
func Run(w io.Writer, analyzers []*analysis.Analyzer, opts Options) (int, error) {
	pkgs, err := load(opts)
	if err != nil {
		return 0, err
	}
	byPath := map[string]*listPackage{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}

	order, err := topoOrder(pkgs, byPath)
	if err != nil {
		return 0, err
	}

	cache := loadCache(opts.CachePath, opts.ToolID)
	next := &cacheFile{Version: cacheVersion, ToolID: opts.ToolID, Packages: map[string]*cacheEntry{}}

	r := &runner{
		byPath:    byPath,
		analyzers: analyzers,
		facts:     map[string]*analysis.FactSet{},
		hashes:    map[string]string{},
		cache:     cache,
		next:      next,
		toolID:    opts.ToolID,
	}
	var all []Diagnostic
	for _, path := range order {
		p := byPath[path]
		if !r.analyzable(p) {
			continue
		}
		diags, err := r.analyze(p)
		if err != nil {
			return 0, err
		}
		all = append(all, diags...)
	}
	if opts.CachePath != "" {
		saveCache(opts.CachePath, next)
	}

	// A base package and its test variant analyze the same non-test
	// files; report each finding once.
	seen := map[Diagnostic]bool{}
	var out []Diagnostic
	for _, d := range all {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return posLess(out[i].Pos, out[j].Pos)
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	for _, d := range out {
		fmt.Fprintf(w, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	return len(out), nil
}

// load shells out to `go list` for the package graph.
func load(opts Options) ([]*listPackage, error) {
	args := []string{"list", "-e", "-export", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Standard,Export,Imports,ImportMap,ForTest,Module,Error"}
	if !opts.NoTests {
		args = append(args, "-test")
	}
	args = append(args, opts.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("modrun: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("modrun: parse go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

type runner struct {
	byPath    map[string]*listPackage
	analyzers []*analysis.Analyzer
	facts     map[string]*analysis.FactSet // exported fact set per analyzed path
	hashes    map[string]string            // Merkle hash per analyzed path
	cache     *cacheFile
	next      *cacheFile
	toolID    string
}

// analyzable: module packages only — never the standard library, and
// never the synthesized ".test" main package (generated source).
func (r *runner) analyzable(p *listPackage) bool {
	if p.Standard || p.Module == nil || p.Export == "" {
		return false
	}
	return !strings.HasSuffix(p.ImportPath, ".test")
}

// depsOf resolves a package's direct imports through its ImportMap.
func (r *runner) depsOf(p *listPackage) []string {
	seen := map[string]bool{}
	var out []string
	for _, imp := range p.Imports {
		if m, ok := p.ImportMap[imp]; ok {
			imp = m
		}
		if !seen[imp] {
			seen[imp] = true
			out = append(out, imp)
		}
	}
	return out
}

func (r *runner) analyze(p *listPackage) ([]Diagnostic, error) {
	imported := analysis.NewFactSet()
	for _, dep := range r.depsOf(p) {
		if fs, ok := r.facts[dep]; ok {
			imported.Merge(fs)
		}
	}
	hash, err := r.packageHash(p, imported)
	if err != nil {
		return nil, err
	}
	r.hashes[p.ImportPath] = hash
	if ent, ok := r.cache.Packages[p.ImportPath]; ok && ent.Hash == hash {
		fs := analysis.NewFactSet()
		for _, rec := range ent.Facts {
			fs.Add(rec)
		}
		r.facts[p.ImportPath] = fs
		r.next.Packages[p.ImportPath] = ent
		return ent.Diags, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("modrun: %w", err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if m, ok := p.ImportMap[path]; ok {
			path = m
		}
		dep, ok := r.byPath[path]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(dep.Export)
	}
	tc := &types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tc.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("modrun: typecheck %s: %w", p.ImportPath, err)
	}
	rawDiags, exported, err := analysis.RunWithFacts(r.analyzers, fset, files, pkg, info, imported)
	if err != nil {
		return nil, fmt.Errorf("modrun: %s: %w", p.ImportPath, err)
	}
	r.facts[p.ImportPath] = exported

	var diags []Diagnostic
	for _, d := range rawDiags {
		diags = append(diags, Diagnostic{Pos: renderPos(fset.Position(d.Pos)), Message: d.Message, Analyzer: d.Analyzer})
	}
	ent := &cacheEntry{Hash: hash, Facts: exported.Records(), Diags: diags}
	r.next.Packages[p.ImportPath] = ent
	return diags, nil
}

// packageHash is the cache key: tool build, source bytes, and the fact
// sets and hashes of the dependencies — a change anywhere upstream
// invalidates every dependent.
func (r *runner) packageHash(p *listPackage, imported *analysis.FactSet) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "tool %s\npkg %s\n", r.toolID, p.ImportPath)
	for _, name := range p.GoFiles {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(p.Dir, name)
		}
		data, err := os.ReadFile(full)
		if err != nil {
			return "", fmt.Errorf("modrun: hash %s: %w", full, err)
		}
		fmt.Fprintf(h, "file %s %d\n", name, len(data))
		h.Write(data)
	}
	for _, dep := range r.depsOf(p) {
		if dh, ok := r.hashes[dep]; ok {
			fmt.Fprintf(h, "dep %s %s\n", dep, dh)
		} else if d, ok := r.byPath[dep]; ok && d.Export != "" {
			// Outside the module (standard library): the export file name
			// is content-addressed by the build cache.
			fmt.Fprintf(h, "ext %s %s\n", dep, filepath.Base(d.Export))
		}
	}
	if data, err := imported.EncodeJSON(); err == nil {
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func renderPos(pos token.Position) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	return pos.String()
}

// posLess orders "file:line:col" strings by file, then numerically.
func posLess(a, b string) bool {
	af, al, ac := splitPos(a)
	bf, bl, bc := splitPos(b)
	if af != bf {
		return af < bf
	}
	if al != bl {
		return al < bl
	}
	return ac < bc
}

func splitPos(s string) (file string, line, col int) {
	parts := strings.Split(s, ":")
	if len(parts) < 3 {
		return s, 0, 0
	}
	file = strings.Join(parts[:len(parts)-2], ":")
	fmt.Sscanf(parts[len(parts)-2], "%d", &line)
	fmt.Sscanf(parts[len(parts)-1], "%d", &col)
	return file, line, col
}

// loadCache reads the cross-run cache; any mismatch in format version or
// tool build discards it (stale results are recomputed, never reused).
func loadCache(path, toolID string) *cacheFile {
	empty := &cacheFile{Version: cacheVersion, ToolID: toolID, Packages: map[string]*cacheEntry{}}
	if path == "" {
		return empty
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return empty
	}
	var c cacheFile
	if err := json.Unmarshal(data, &c); err != nil || c.Version != cacheVersion || c.ToolID != toolID || c.Packages == nil {
		return empty
	}
	return &c
}

func saveCache(path string, c *cacheFile) {
	data, err := json.Marshal(c)
	if err != nil {
		return
	}
	if dir := filepath.Dir(path); dir != "" {
		os.MkdirAll(dir, 0o755)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return
	}
	os.Rename(tmp, path)
}

// topoOrder sorts the packages dependencies-first.
func topoOrder(pkgs []*listPackage, byPath map[string]*listPackage) ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		p, ok := byPath[path]
		if !ok {
			return nil
		}
		switch color[path] {
		case gray:
			return fmt.Errorf("modrun: import cycle through %s", path)
		case black:
			return nil
		}
		color[path] = gray
		for _, imp := range p.Imports {
			if m, ok := p.ImportMap[imp]; ok {
				imp = m
			}
			if err := visit(imp); err != nil {
				return err
			}
		}
		color[path] = black
		order = append(order, path)
		return nil
	}
	// Deterministic entry order.
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

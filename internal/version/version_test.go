package version

import (
	"strings"
	"testing"
)

func TestString(t *testing.T) {
	old := Version
	defer func() { Version = old }()

	Version = "v9.9.9"
	got := String("sit-server")
	if !strings.HasPrefix(got, "sit-server version v9.9.9 (go") {
		t.Errorf("String() = %q", got)
	}
}

func TestDefaultIsDev(t *testing.T) {
	if Version != "dev" {
		t.Skip("version stamped by ldflags; nothing to check")
	}
	if !strings.Contains(String("sit"), "sit version dev") {
		t.Errorf("String() = %q", String("sit"))
	}
}

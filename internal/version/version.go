// Package version holds the build version shared by every binary of the
// reproduction. The Version variable is meant to be set at link time:
//
//	go build -ldflags "-X repro/internal/version.Version=v1.2.3" ./cmd/...
//
// so that one flag stamps sit, sit-batch, sit-translate and sit-server
// alike. An unstamped build reports "dev".
package version

import "runtime"

// Version is the build version, overridable via -ldflags -X.
var Version = "dev"

// String renders the one-line version banner a binary prints for -version:
// the program name, the stamped version and the Go runtime that built it.
func String(program string) string {
	return program + " version " + Version + " (" + runtime.Version() + ")"
}

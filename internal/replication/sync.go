package replication

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/journal"
)

// Target is the follower side of a replication stream: the consumer that
// owns the replica's journal and in-memory state. The server implements it
// on top of its recovery (//sit:replay) paths; tests implement it in a few
// lines. Implementations must journal each frame before applying it — the
// same write-ahead discipline mutations follow on the leader.
type Target interface {
	// AppliedSeq returns the replica's last applied sequence number for the
	// workspace, creating an empty replica if the workspace is new.
	AppliedSeq(ws string) (uint64, error)
	// Bootstrap replaces the replica wholesale with a verified snapshot —
	// the catch-up path when the leader compacted past the replica.
	Bootstrap(ws string, snap Snapshot) error
	// ApplyFrame journals one raw frame line and applies its record. A
	// journal.ErrDuplicateSeq refusal is harmless re-delivery; any other
	// error aborts the batch.
	ApplyFrame(ws string, line []byte, rec Record) error
}

// Record aliases the journal's record type so Target implementations
// outside the server don't import the journal package for one name.
type Record = journal.Record

// Progress reports what one SyncWorkspace round did.
type Progress struct {
	// Applied counts records applied this round (duplicates excluded).
	Applied int
	// Bytes counts the raw frame bytes applied this round.
	Bytes int64
	// AppliedSeq is the replica's sequence number after the round.
	AppliedSeq uint64
	// LeaderSeq is the leader's sequence number when the batch was cut;
	// LeaderSeq - AppliedSeq is the replica's lag in records.
	LeaderSeq uint64
	// LeaderOffset is the leader journal's byte length when the batch was
	// cut, for byte-lag accounting.
	LeaderOffset int64
	// Bootstrapped reports that the round shipped a full snapshot (first
	// contact, compaction fallback, or divergence repair).
	Bootstrapped bool
}

// SyncWorkspace advances one workspace replica by one round: fetch the tail
// after the replica's position (long-polling up to wait when already caught
// up) and apply it frame by frame. It transparently falls back to snapshot
// bootstrap in three cases: the leader compacted past the replica
// (ErrCompacted), the stream skips ahead of the replica
// (journal.ErrSeqGap — the replica's journal lost history), or the leader's
// sequence runs behind the replica's (the leader lost acknowledged records
// in a crash, so the histories diverged and the replica must be rebuilt).
func SyncWorkspace(ctx context.Context, c *Client, t Target, ws string, wait time.Duration) (Progress, error) {
	var p Progress
	applied, err := t.AppliedSeq(ws)
	if err != nil {
		return p, fmt.Errorf("replication: %s: %w", ws, err)
	}
	p.AppliedSeq = applied

	frames, err := c.Records(ctx, ws, applied, wait)
	if errors.Is(err, ErrCompacted) {
		if p, err = bootstrap(ctx, c, t, ws, p); err != nil {
			return p, err
		}
		frames, err = c.Records(ctx, ws, p.AppliedSeq, 0)
	}
	if err != nil {
		return p, err
	}
	if frames.LeaderSeq < p.AppliedSeq {
		// The leader answers for fewer records than the replica holds: the
		// leader crashed and lost unsynced-but-streamed records, so the two
		// histories have diverged. Rebuild from the leader's truth.
		if p, err = bootstrap(ctx, c, t, ws, p); err != nil {
			return p, err
		}
		return p, nil
	}
	p.LeaderSeq = frames.LeaderSeq
	p.LeaderOffset = frames.LeaderOffset

	off := 0
	for _, rec := range frames.Records {
		// Re-slice the raw line for this record; Records and Lines were
		// built from the same buffer in lockstep.
		n := frameLen(frames.Lines[off:])
		line := frames.Lines[off : off+n]
		off += n
		err := t.ApplyFrame(ws, line, rec)
		switch {
		case errors.Is(err, journal.ErrDuplicateSeq):
			continue // harmless re-delivery after a reconnect
		case errors.Is(err, journal.ErrSeqGap):
			// The replica's journal is behind the stream (local history was
			// lost); a snapshot resynchronizes it.
			return bootstrap(ctx, c, t, ws, p)
		case err != nil:
			return p, fmt.Errorf("replication: %s: apply record %d: %w", ws, rec.Seq, err)
		}
		p.Applied++
		p.Bytes += int64(n)
		p.AppliedSeq = rec.Seq
	}
	return p, nil
}

// bootstrap ships a full snapshot into the target and updates the progress
// to the snapshot's position.
func bootstrap(ctx context.Context, c *Client, t Target, ws string, p Progress) (Progress, error) {
	snap, err := c.Snapshot(ctx, ws)
	if err != nil {
		return p, err
	}
	if err := t.Bootstrap(ws, snap); err != nil {
		return p, fmt.Errorf("replication: %s: bootstrap: %w", ws, err)
	}
	p.Bootstrapped = true
	p.AppliedSeq = snap.Seq
	if p.LeaderSeq < snap.Seq {
		p.LeaderSeq = snap.Seq
	}
	return p, nil
}

// frameLen returns the length of the first frame line in buf, including its
// newline. The caller guarantees buf starts at a frame boundary and holds
// at least one complete line (Client.Records verified the framing).
func frameLen(buf []byte) int {
	for i, b := range buf {
		if b == '\n' {
			return i + 1
		}
	}
	return len(buf)
}

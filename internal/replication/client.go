package replication

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/journal"
)

// Stream-classification errors. Callers branch on them with errors.Is.
var (
	// ErrCompacted reports that the leader compacted past the requested
	// sequence number (HTTP 410): the follower must re-bootstrap from a
	// snapshot.
	ErrCompacted = errors.New("replication: leader compacted past requested sequence")
	// ErrNotLeader reports that the remote end refused because it is not
	// serving as a leader (HTTP 421).
	ErrNotLeader = errors.New("replication: remote server is not the leader")
	// ErrNoWorkspace reports that the leader has no such workspace (HTTP
	// 404) — it was deleted; the follower drops its replica.
	ErrNoWorkspace = errors.New("replication: workspace not found on leader")
)

// Frames is one batch of the record stream: the raw journal bytes (what the
// follower appends) alongside their parsed records, plus the leader's
// position when the batch was cut.
type Frames struct {
	// Lines holds the concatenated raw frame lines, CRC-verified.
	Lines []byte
	// Records are the parsed lines, in order.
	Records []journal.Record
	// LeaderSeq is the leader journal's sequence number at response time.
	LeaderSeq uint64
	// Horizon is the leader's compaction horizon at response time.
	Horizon uint64
	// LeaderOffset is the leader journal's byte length at response time (0
	// when the leader predates the header).
	LeaderOffset int64
}

// Client talks to a leader's replication API.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the leader at base (scheme://host[:port],
// no trailing path). A nil hc uses http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Base returns the leader URL the client was built with.
func (c *Client) Base() string { return c.base }

// classify maps an error response to a typed error, consuming the body.
func classify(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
	switch resp.StatusCode {
	case http.StatusGone:
		return ErrCompacted
	case http.StatusMisdirectedRequest:
		return ErrNotLeader
	case http.StatusNotFound:
		return ErrNoWorkspace
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("replication: leader returned %d: %s", resp.StatusCode, msg)
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("replication: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replication: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, classify(resp)
	}
	return resp, nil
}

// Workspaces lists the leader's workspaces and their journal positions.
func (c *Client) Workspaces(ctx context.Context) ([]WorkspaceStatus, error) {
	resp, err := c.get(ctx, PathPrefix)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var list ListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, fmt.Errorf("replication: decode workspace list: %w", err)
	}
	return list.Workspaces, nil
}

// Snapshot fetches and checksum-verifies a workspace snapshot.
func (c *Client) Snapshot(ctx context.Context, ws string) (Snapshot, error) {
	resp, err := c.get(ctx, PathPrefix+"/"+url.PathEscape(ws)+"/snapshot")
	if err != nil {
		return Snapshot{}, err
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return Snapshot{}, fmt.Errorf("replication: decode snapshot: %w", err)
	}
	if err := snap.Verify(); err != nil {
		return Snapshot{}, err
	}
	return snap, nil
}

// Records fetches the journal tail after sequence number from. When the
// leader has nothing newer and wait is positive, the leader long-polls up
// to wait for a fresh append before answering; an empty batch is a valid
// answer (the follower is caught up). ErrCompacted means from is behind the
// leader's compaction horizon and a Snapshot round is needed instead.
func (c *Client) Records(ctx context.Context, ws string, from uint64, wait time.Duration) (Frames, error) {
	q := url.Values{"from": {strconv.FormatUint(from, 10)}}
	if wait > 0 {
		q.Set("wait", strconv.FormatInt(wait.Milliseconds(), 10))
	}
	resp, err := c.get(ctx, PathPrefix+"/"+url.PathEscape(ws)+"/records?"+q.Encode())
	if err != nil {
		return Frames{}, err
	}
	defer resp.Body.Close()
	var out Frames
	if out.LeaderSeq, err = strconv.ParseUint(resp.Header.Get(HeaderSeq), 10, 64); err != nil {
		return Frames{}, fmt.Errorf("replication: bad %s header: %w", HeaderSeq, err)
	}
	if out.Horizon, err = strconv.ParseUint(resp.Header.Get(HeaderHorizon), 10, 64); err != nil {
		return Frames{}, fmt.Errorf("replication: bad %s header: %w", HeaderHorizon, err)
	}
	out.LeaderOffset, _ = strconv.ParseInt(resp.Header.Get(HeaderOffset), 10, 64)
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return Frames{}, fmt.Errorf("replication: read record stream: %w", err)
	}
	// Verify every frame before handing any of it on: a corrupted line in
	// the middle must not let the prefix through as a shorter valid batch,
	// or the follower would silently apply a truncated view.
	for off := 0; off < len(body); {
		nl := bytes.IndexByte(body[off:], '\n')
		if nl < 0 {
			return Frames{}, fmt.Errorf("replication: truncated record stream (no newline after byte %d)", off)
		}
		rec, err := journal.ParseFrame(body[off : off+nl+1])
		if err != nil {
			return Frames{}, fmt.Errorf("replication: record stream: %w", err)
		}
		out.Records = append(out.Records, rec)
		off += nl + 1
	}
	out.Lines = body
	return out, nil
}

// Package replication implements journal-streaming replication for the
// integration server: a leader exposes each workspace's write-ahead journal
// as an HTTP stream (a snapshot plus CRC-framed tail records addressed by
// sequence number), and a follower pulls that stream and applies it through
// the server's recovery paths, converging on a byte-identical journal and
// store state.
//
// The wire format IS the journal's on-disk format: the leader ships the
// literal framed lines from its journal file, and the follower appends them
// verbatim. The per-line CRC32 that guards the journal against torn writes
// doubles as the wire-integrity check, and byte-identical replica journals
// fall out by construction rather than by careful re-encoding.
//
// The package deliberately knows nothing about the server: the follower
// side is expressed as the Target interface, which the server implements on
// top of its //sit:replay recovery paths.
package replication

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Wire paths and headers. The record stream's metadata travels in headers
// because the body is the raw journal tail, not JSON.
const (
	// PathPrefix roots the leader-side replication API.
	PathPrefix = "/v1/replication/workspaces"
	// HeaderSeq carries the leader journal's current sequence number on a
	// records response; the follower's lag is HeaderSeq minus its own.
	HeaderSeq = "X-Sit-Seq"
	// HeaderHorizon carries the leader's compaction horizon (the snapshot's
	// sequence number). A follower behind it cannot catch up from records
	// and must re-bootstrap from a snapshot.
	HeaderHorizon = "X-Sit-Horizon"
	// HeaderOffset carries the leader journal's byte length on a records
	// response; the follower's byte lag is HeaderOffset minus its own
	// journal offset (comparable because the journals are byte-identical).
	HeaderOffset = "X-Sit-Offset"
)

// WorkspaceStatus is one workspace's replication position on the leader.
type WorkspaceStatus struct {
	Name string `json:"name"`
	// Seq is the workspace journal's last assigned sequence number.
	Seq uint64 `json:"seq"`
	// Horizon is the compaction horizon: records at or below it exist only
	// in the snapshot.
	Horizon uint64 `json:"horizon"`
}

// ListResponse is the body of GET /v1/replication/workspaces.
type ListResponse struct {
	Workspaces []WorkspaceStatus `json:"workspaces"`
}

// Snapshot is the body of GET /v1/replication/workspaces/{ws}/snapshot: an
// opaque state capture at a sequence number, checksummed end to end.
type Snapshot struct {
	Seq uint64 `json:"seq"`
	// CRC32 is the IEEE checksum of State's exact bytes, as eight hex
	// digits — the same framing discipline as journal lines.
	CRC32 string          `json:"crc32"`
	State json.RawMessage `json:"state"`
}

// ChecksumState renders the snapshot checksum for state.
func ChecksumState(state []byte) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(state))
}

// Verify checks the snapshot's state against its checksum.
func (s Snapshot) Verify() error {
	if got := ChecksumState(s.State); got != s.CRC32 {
		return fmt.Errorf("replication: snapshot checksum %s does not match state (%s)", s.CRC32, got)
	}
	return nil
}

package replication

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/journal"
)

// fakeLeader serves the replication API from an in-memory log.
type fakeLeader struct {
	name    string
	lines   [][]byte // framed journal lines, seq = index+1
	horizon uint64
	state   []byte // snapshot state at horizon
}

func (l *fakeLeader) seq() uint64 { return uint64(len(l.lines)) }

// append frames one more record onto the fake log.
func (l *fakeLeader) append(t *testing.T, op string, data string) {
	t.Helper()
	rec := journal.Record{Seq: l.seq() + 1, Op: op, Data: json.RawMessage(data)}
	line, err := journal.FrameRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	l.lines = append(l.lines, line)
}

// compact moves the horizon forward, discarding the covered lines.
func (l *fakeLeader) compact(upto uint64, state string) {
	l.horizon = upto
	l.state = []byte(state)
}

func (l *fakeLeader) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathPrefix, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(ListResponse{Workspaces: []WorkspaceStatus{
			{Name: l.name, Seq: l.seq(), Horizon: l.horizon},
		}})
	})
	mux.HandleFunc(PathPrefix+"/"+l.name+"/snapshot", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(Snapshot{Seq: l.horizon, CRC32: ChecksumState(l.state), State: l.state})
	})
	mux.HandleFunc(PathPrefix+"/"+l.name+"/records", func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		if from < l.horizon {
			w.WriteHeader(http.StatusGone)
			return
		}
		w.Header().Set(HeaderSeq, strconv.FormatUint(l.seq(), 10))
		w.Header().Set(HeaderHorizon, strconv.FormatUint(l.horizon, 10))
		for i := from; i < l.seq(); i++ {
			w.Write(l.lines[i])
		}
	})
	return mux
}

// fakeTarget records applies into an in-memory replica.
type fakeTarget struct {
	applied    uint64
	bootstraps int
	ops        []string
	state      []byte
	failApply  error // returned by ApplyFrame once, then cleared
}

func (t *fakeTarget) AppliedSeq(ws string) (uint64, error) { return t.applied, nil }

func (t *fakeTarget) Bootstrap(ws string, snap Snapshot) error {
	t.bootstraps++
	t.applied = snap.Seq
	t.state = snap.State
	t.ops = nil
	return nil
}

func (t *fakeTarget) ApplyFrame(ws string, line []byte, rec Record) error {
	if t.failApply != nil {
		err := t.failApply
		t.failApply = nil
		return err
	}
	if rec.Seq <= t.applied {
		return fmt.Errorf("%w: %d", journal.ErrDuplicateSeq, rec.Seq)
	}
	if rec.Seq != t.applied+1 {
		return fmt.Errorf("%w: %d", journal.ErrSeqGap, rec.Seq)
	}
	if !strings.HasSuffix(string(line), "\n") {
		return fmt.Errorf("frame line missing newline: %q", line)
	}
	t.applied = rec.Seq
	t.ops = append(t.ops, rec.Op)
	return nil
}

func startLeader(t *testing.T, l *fakeLeader) *Client {
	t.Helper()
	srv := httptest.NewServer(l.handler())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL, srv.Client())
}

func TestSyncTailsFromZero(t *testing.T) {
	leader := &fakeLeader{name: "default"}
	leader.append(t, "add_schemas", `{"n":1}`)
	leader.append(t, "assert", `{"n":2}`)
	c := startLeader(t, leader)

	tgt := &fakeTarget{}
	p, err := SyncWorkspace(context.Background(), c, tgt, "default", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Applied != 2 || p.AppliedSeq != 2 || p.LeaderSeq != 2 || p.Bootstrapped {
		t.Fatalf("progress = %+v, want 2 applied through seq 2", p)
	}
	if len(tgt.ops) != 2 || tgt.ops[0] != "add_schemas" || tgt.ops[1] != "assert" {
		t.Fatalf("ops = %v", tgt.ops)
	}
	if p.Bytes == 0 {
		t.Fatal("no bytes counted")
	}

	// Caught up: the next round applies nothing.
	p, err = SyncWorkspace(context.Background(), c, tgt, "default", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Applied != 0 || p.AppliedSeq != 2 {
		t.Fatalf("caught-up progress = %+v", p)
	}
}

func TestSyncResumesAfterDisconnect(t *testing.T) {
	leader := &fakeLeader{name: "default"}
	leader.append(t, "a", `{}`)
	leader.append(t, "b", `{}`)
	c := startLeader(t, leader)

	tgt := &fakeTarget{applied: 1} // record 1 already applied pre-disconnect
	p, err := SyncWorkspace(context.Background(), c, tgt, "default", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Applied != 1 || p.AppliedSeq != 2 || tgt.bootstraps != 0 {
		t.Fatalf("progress = %+v bootstraps = %d, want 1 applied, 0 bootstraps", p, tgt.bootstraps)
	}
}

func TestSyncReSnapshotsAfterCompaction(t *testing.T) {
	leader := &fakeLeader{name: "default"}
	for i := 0; i < 6; i++ {
		leader.append(t, "op", `{}`)
	}
	leader.compact(4, `{"compacted":true}`)
	c := startLeader(t, leader)

	// Replica at 2, leader horizon at 4: records 3..4 are gone, so the
	// round must bootstrap from the snapshot and then tail 5..6.
	tgt := &fakeTarget{applied: 2}
	p, err := SyncWorkspace(context.Background(), c, tgt, "default", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Bootstrapped || tgt.bootstraps != 1 {
		t.Fatalf("progress = %+v bootstraps = %d, want a bootstrap", p, tgt.bootstraps)
	}
	if p.AppliedSeq != 6 || p.Applied != 2 {
		t.Fatalf("progress = %+v, want seq 6 with 2 records after the snapshot", p)
	}
	if string(tgt.state) != `{"compacted":true}` {
		t.Fatalf("state = %s", tgt.state)
	}
}

func TestSyncReSnapshotsOnDivergence(t *testing.T) {
	// The leader restarted after losing acknowledged records: it is at seq
	// 1 while the replica is at 3. The replica must rebuild.
	leader := &fakeLeader{name: "default"}
	leader.append(t, "op", `{}`)
	leader.compact(1, `{"rebuilt":true}`)
	c := startLeader(t, leader)

	tgt := &fakeTarget{applied: 3}
	p, err := SyncWorkspace(context.Background(), c, tgt, "default", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Bootstrapped || p.AppliedSeq != 1 {
		t.Fatalf("progress = %+v, want bootstrap down to seq 1", p)
	}
	if string(tgt.state) != `{"rebuilt":true}` {
		t.Fatalf("state = %s", tgt.state)
	}
}

func TestSyncReSnapshotsOnLocalGap(t *testing.T) {
	leader := &fakeLeader{name: "default"}
	leader.append(t, "a", `{}`)
	leader.append(t, "b", `{}`)
	leader.compact(0, `{"full":true}`) // snapshot exists but nothing compacted
	c := startLeader(t, leader)

	// The target reports seq 0 but refuses the first frame with a gap
	// (its journal lost history behind its reported position).
	tgt := &fakeTarget{failApply: fmt.Errorf("%w: injected", journal.ErrSeqGap)}
	p, err := SyncWorkspace(context.Background(), c, tgt, "default", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Bootstrapped || tgt.bootstraps != 1 {
		t.Fatalf("progress = %+v bootstraps = %d, want a bootstrap", p, tgt.bootstraps)
	}
}

func TestSyncSkipsDuplicates(t *testing.T) {
	// A leader that over-delivers: asked for records after seq 1, it
	// re-sends record 1 too — the shape of re-delivery after a reconnect.
	var lines [][]byte
	for seq := uint64(1); seq <= 2; seq++ {
		line, err := journal.FrameRecord(journal.Record{Seq: seq, Op: "op"})
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderSeq, "2")
		w.Header().Set(HeaderHorizon, "0")
		for _, line := range lines {
			w.Write(line)
		}
	}))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())

	tgt := &fakeTarget{applied: 1}
	p, err := SyncWorkspace(context.Background(), c, tgt, "default", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Applied != 1 || p.AppliedSeq != 2 || p.Bootstrapped || tgt.bootstraps != 0 {
		t.Fatalf("progress = %+v bootstraps = %d, want the duplicate skipped and seq 2 applied", p, tgt.bootstraps)
	}
}

func TestClientRejectsCorruptStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderSeq, "1")
		w.Header().Set(HeaderHorizon, "0")
		line, _ := journal.FrameRecord(journal.Record{Seq: 1, Op: "op"})
		line[12] ^= 0xff // corrupt in flight
		w.Write(line)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	if _, err := c.Records(context.Background(), "default", 0, 0); err == nil {
		t.Fatal("corrupt stream accepted")
	}
}

func TestClientRejectsBadSnapshotChecksum(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(Snapshot{Seq: 3, CRC32: "00000000", State: json.RawMessage(`{"x":1}`)})
	}))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	if _, err := c.Snapshot(context.Background(), "default"); err == nil {
		t.Fatal("bad snapshot checksum accepted")
	}
}

func TestClientClassifiesStatuses(t *testing.T) {
	for _, tc := range []struct {
		status int
		want   error
	}{
		{http.StatusGone, ErrCompacted},
		{http.StatusMisdirectedRequest, ErrNotLeader},
		{http.StatusNotFound, ErrNoWorkspace},
	} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(tc.status)
		}))
		c := NewClient(srv.URL, srv.Client())
		_, err := c.Records(context.Background(), "default", 0, 0)
		srv.Close()
		if !errors.Is(err, tc.want) {
			t.Errorf("status %d: err = %v, want %v", tc.status, err, tc.want)
		}
	}
}

// Package attrequiv implements the attribute equivalence theory of Larson,
// Navathe and Elmasri ("Attribute Equivalence for Schema Integration",
// IEEE TSE 1987), which the paper cites as the full foundation behind its
// simplified binary equivalent/non-equivalent decision. Two attributes are
// characterized by their value domains and properties (uniqueness, whether
// a value is mandatory); comparing the characterizations yields one of five
// relations between the attributes — EQUAL, CONTAINED-IN, CONTAINS,
// OVERLAP, DISJOINT — mirroring the five object-class assertions. The
// interactive tool can present these classifications as evidence when the
// DDA reviews candidate equivalences, and the resemblance package can
// weight them.
package attrequiv

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is the domain relationship between two attributes.
type Relation int

const (
	// Unknown means the specifications do not determine a relation.
	Unknown Relation = iota
	// Equal: the value domains are identical.
	Equal
	// ContainedIn: the first attribute's domain is a proper subset of
	// the second's.
	ContainedIn
	// Contains: the first attribute's domain properly contains the
	// second's.
	Contains
	// Overlap: the domains intersect but neither contains the other.
	Overlap
	// Disjoint: the domains do not intersect.
	Disjoint
)

// String names the relation as the theory does.
func (r Relation) String() string {
	switch r {
	case Equal:
		return "EQUAL"
	case ContainedIn:
		return "CONTAINED-IN"
	case Contains:
		return "CONTAINS"
	case Overlap:
		return "OVERLAP"
	case Disjoint:
		return "DISJOINT"
	default:
		return "UNKNOWN"
	}
}

// Inverse swaps the relation's sides.
func (r Relation) Inverse() Relation {
	switch r {
	case ContainedIn:
		return Contains
	case Contains:
		return ContainedIn
	default:
		return r
	}
}

// Degree maps the relation to a [0,1] equivalence strength usable as a
// resemblance weight: EQUAL is full equivalence, containment and overlap
// are partial, disjoint domains rule equivalence out.
func (r Relation) Degree() float64 {
	switch r {
	case Equal:
		return 1
	case ContainedIn, Contains:
		return 0.75
	case Overlap:
		return 0.5
	case Disjoint:
		return 0
	default:
		return 0.25
	}
}

// DomainSpec describes an attribute's value domain. The zero value (just a
// Type) means "all values of the type". Constraints narrow it: an
// enumerated value set, a numeric range, or a string length bound.
type DomainSpec struct {
	// Type is the base domain ("char", "int", "real", "date", ...).
	Type string
	// Values enumerates the legal values, when finite.
	Values []string
	// HasRange indicates Min/Max constrain a numeric domain.
	HasRange bool
	Min, Max float64
	// MaxLen bounds the length of string values (0 = unbounded).
	MaxLen int
}

// normalizeType canonicalizes the base type for comparison.
func normalizeType(t string) string {
	switch strings.ToLower(strings.TrimSpace(t)) {
	case "int", "integer", "smallint", "bigint":
		return "int"
	case "real", "float", "double", "decimal", "numeric":
		return "real"
	case "char", "varchar", "string", "text":
		return "char"
	case "date", "time", "datetime", "timestamp":
		return "date"
	case "bool", "boolean":
		return "bool"
	default:
		return strings.ToLower(strings.TrimSpace(t))
	}
}

// numericType reports whether values of the type are ordered numbers.
func numericType(t string) bool { return t == "int" || t == "real" }

// Compare classifies the relationship between two domain specifications.
func Compare(a, b DomainSpec) Relation {
	ta, tb := normalizeType(a.Type), normalizeType(b.Type)
	if ta != tb {
		// int is embeddable in real; all other base-type mismatches
		// are disjoint domains.
		if (ta == "int" && tb == "real") || (ta == "real" && tb == "int") {
			if ta == "int" {
				return combineWithTypeEmbedding(a, b, ContainedIn)
			}
			return combineWithTypeEmbedding(a, b, Contains)
		}
		return Disjoint
	}

	switch {
	case len(a.Values) > 0 && len(b.Values) > 0:
		return compareSets(a.Values, b.Values)
	case len(a.Values) > 0 && len(b.Values) == 0:
		// A finite set against a wider specification.
		if b.HasRange && numericType(tb) {
			return setVsRange(a.Values, b)
		}
		return ContainedIn // finite set inside the (larger) type domain
	case len(b.Values) > 0:
		return Compare(b, a).Inverse()
	case a.HasRange && b.HasRange:
		return compareRanges(a, b)
	case a.HasRange:
		return ContainedIn // a range inside the unconstrained type
	case b.HasRange:
		return Contains
	case a.MaxLen > 0 || b.MaxLen > 0:
		return compareLengths(a.MaxLen, b.MaxLen)
	default:
		return Equal
	}
}

// combineWithTypeEmbedding handles int ⊂ real: the embedding gives the base
// relation; further constraints can only keep or refine it, which we report
// conservatively as the embedding relation (or Overlap when both sides are
// constrained).
func combineWithTypeEmbedding(a, b DomainSpec, base Relation) Relation {
	if constrained(a) || constrained(b) {
		return Overlap
	}
	return base
}

func constrained(d DomainSpec) bool {
	return len(d.Values) > 0 || d.HasRange || d.MaxLen > 0
}

func compareSets(av, bv []string) Relation {
	as, bs := toSet(av), toSet(bv)
	inter := 0
	for v := range as {
		if bs[v] {
			inter++
		}
	}
	switch {
	case inter == 0:
		return Disjoint
	case inter == len(as) && inter == len(bs):
		return Equal
	case inter == len(as):
		return ContainedIn
	case inter == len(bs):
		return Contains
	default:
		return Overlap
	}
}

func toSet(vals []string) map[string]bool {
	s := make(map[string]bool, len(vals))
	for _, v := range vals {
		s[strings.TrimSpace(v)] = true
	}
	return s
}

func compareRanges(a, b DomainSpec) Relation {
	if a.Min > a.Max || b.Min > b.Max {
		return Unknown
	}
	switch {
	case a.Max < b.Min || b.Max < a.Min:
		return Disjoint
	case a.Min == b.Min && a.Max == b.Max:
		return Equal
	case a.Min >= b.Min && a.Max <= b.Max:
		return ContainedIn
	case b.Min >= a.Min && b.Max <= a.Max:
		return Contains
	default:
		return Overlap
	}
}

func setVsRange(vals []string, b DomainSpec) Relation {
	in, out := 0, 0
	for _, v := range vals {
		f, err := parseNumber(v)
		if err != nil {
			out++
			continue
		}
		if f >= b.Min && f <= b.Max {
			in++
		} else {
			out++
		}
	}
	switch {
	case in == 0:
		return Disjoint
	case out == 0:
		return ContainedIn // every enumerated value inside the range
	default:
		return Overlap
	}
}

func parseNumber(s string) (float64, error) {
	var f float64
	_, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &f)
	return f, err
}

func compareLengths(la, lb int) Relation {
	switch {
	case la == lb:
		return Equal
	case la == 0:
		return Contains // unbounded contains bounded
	case lb == 0:
		return ContainedIn
	case la < lb:
		return ContainedIn
	default:
		return Contains
	}
}

// Characteristics collects everything the theory uses about one attribute.
type Characteristics struct {
	Domain DomainSpec
	// Unique is the key property: values identify class members.
	Unique bool
	// Mandatory means every member has a value (participation lower
	// bound 1 in the theory's terms).
	Mandatory bool
}

// Classification is the result of comparing two attributes: the domain
// relation plus the evidence lines the tool can display to the DDA.
type Classification struct {
	Relation Relation
	Evidence []string
}

// Classify compares two attribute characterizations.
func Classify(a, b Characteristics) Classification {
	rel := Compare(a.Domain, b.Domain)
	var ev []string
	ev = append(ev, fmt.Sprintf("domains: %s", rel))
	if a.Unique == b.Unique {
		ev = append(ev, fmt.Sprintf("uniqueness agrees (%s)", yesNo(a.Unique)))
	} else {
		ev = append(ev, "uniqueness differs: one side is a key, the other is not")
	}
	if a.Mandatory == b.Mandatory {
		ev = append(ev, fmt.Sprintf("participation agrees (mandatory=%s)", yesNo(a.Mandatory)))
	} else {
		ev = append(ev, "participation differs: one side is mandatory, the other optional")
	}
	sort.Strings(ev[1:])
	return Classification{Relation: rel, Evidence: ev}
}

// Score folds a classification into one [0,1] strength: the domain degree,
// discounted when uniqueness or participation disagree.
func (c Classification) Score(a, b Characteristics) float64 {
	s := c.Relation.Degree()
	if a.Unique != b.Unique {
		s *= 0.8
	}
	if a.Mandatory != b.Mandatory {
		s *= 0.9
	}
	return s
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

package attrequiv

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRelationStrings(t *testing.T) {
	cases := map[Relation]string{
		Equal:       "EQUAL",
		ContainedIn: "CONTAINED-IN",
		Contains:    "CONTAINS",
		Overlap:     "OVERLAP",
		Disjoint:    "DISJOINT",
		Unknown:     "UNKNOWN",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}

func TestRelationInverse(t *testing.T) {
	if ContainedIn.Inverse() != Contains || Contains.Inverse() != ContainedIn {
		t.Error("containment inverse wrong")
	}
	for _, r := range []Relation{Equal, Overlap, Disjoint, Unknown} {
		if r.Inverse() != r {
			t.Errorf("%v should be self-inverse", r)
		}
	}
}

func TestRelationDegreeOrdering(t *testing.T) {
	if !(Equal.Degree() > ContainedIn.Degree() &&
		ContainedIn.Degree() > Overlap.Degree() &&
		Overlap.Degree() > Disjoint.Degree()) {
		t.Error("degree ordering broken")
	}
	if Disjoint.Degree() != 0 || Equal.Degree() != 1 {
		t.Error("degree endpoints wrong")
	}
}

func TestCompareTypes(t *testing.T) {
	if Compare(DomainSpec{Type: "char"}, DomainSpec{Type: "CHAR"}) != Equal {
		t.Error("same type should be Equal")
	}
	if Compare(DomainSpec{Type: "char"}, DomainSpec{Type: "date"}) != Disjoint {
		t.Error("different base types are Disjoint")
	}
	if Compare(DomainSpec{Type: "int"}, DomainSpec{Type: "real"}) != ContainedIn {
		t.Error("int embeds in real")
	}
	if Compare(DomainSpec{Type: "real"}, DomainSpec{Type: "int"}) != Contains {
		t.Error("real contains int")
	}
	if Compare(DomainSpec{Type: "varchar"}, DomainSpec{Type: "text"}) != Equal {
		t.Error("type normalization failed")
	}
}

func TestCompareEnumerations(t *testing.T) {
	ab := DomainSpec{Type: "char", Values: []string{"a", "b"}}
	abc := DomainSpec{Type: "char", Values: []string{"a", "b", "c"}}
	bc := DomainSpec{Type: "char", Values: []string{"b", "c"}}
	xy := DomainSpec{Type: "char", Values: []string{"x", "y"}}

	if Compare(ab, ab) != Equal {
		t.Error("identical sets")
	}
	if Compare(ab, abc) != ContainedIn {
		t.Error("subset")
	}
	if Compare(abc, ab) != Contains {
		t.Error("superset")
	}
	if Compare(ab, bc) != Overlap {
		t.Error("overlap")
	}
	if Compare(ab, xy) != Disjoint {
		t.Error("disjoint")
	}
	// Finite set against the unconstrained type.
	if Compare(ab, DomainSpec{Type: "char"}) != ContainedIn {
		t.Error("set inside type domain")
	}
	if Compare(DomainSpec{Type: "char"}, ab) != Contains {
		t.Error("type domain contains set")
	}
}

func TestCompareRanges(t *testing.T) {
	r := func(lo, hi float64) DomainSpec {
		return DomainSpec{Type: "int", HasRange: true, Min: lo, Max: hi}
	}
	if Compare(r(0, 10), r(0, 10)) != Equal {
		t.Error("equal ranges")
	}
	if Compare(r(2, 5), r(0, 10)) != ContainedIn {
		t.Error("nested ranges")
	}
	if Compare(r(0, 10), r(2, 5)) != Contains {
		t.Error("containing range")
	}
	if Compare(r(0, 5), r(3, 9)) != Overlap {
		t.Error("overlapping ranges")
	}
	if Compare(r(0, 2), r(5, 9)) != Disjoint {
		t.Error("disjoint ranges")
	}
	if Compare(r(0, 10), DomainSpec{Type: "int"}) != ContainedIn {
		t.Error("range inside unconstrained type")
	}
	if Compare(r(5, 1), r(0, 10)) != Unknown {
		t.Error("inverted range is Unknown")
	}
}

func TestCompareSetVsRange(t *testing.T) {
	set := DomainSpec{Type: "int", Values: []string{"1", "2", "3"}}
	if got := Compare(set, DomainSpec{Type: "int", HasRange: true, Min: 0, Max: 10}); got != ContainedIn {
		t.Errorf("set in range = %v", got)
	}
	if got := Compare(set, DomainSpec{Type: "int", HasRange: true, Min: 2, Max: 10}); got != Overlap {
		t.Errorf("set straddling range = %v", got)
	}
	if got := Compare(set, DomainSpec{Type: "int", HasRange: true, Min: 7, Max: 10}); got != Disjoint {
		t.Errorf("set outside range = %v", got)
	}
	// Reversed orientation inverts.
	if got := Compare(DomainSpec{Type: "int", HasRange: true, Min: 0, Max: 10}, set); got != Contains {
		t.Errorf("range vs set = %v", got)
	}
}

func TestCompareLengths(t *testing.T) {
	l := func(n int) DomainSpec { return DomainSpec{Type: "char", MaxLen: n} }
	if Compare(l(10), l(10)) != Equal {
		t.Error("equal lengths")
	}
	if Compare(l(10), l(40)) != ContainedIn {
		t.Error("shorter in longer")
	}
	if Compare(l(40), l(10)) != Contains {
		t.Error("longer contains shorter")
	}
	if Compare(l(10), DomainSpec{Type: "char"}) != ContainedIn {
		t.Error("bounded in unbounded")
	}
}

func TestCompareIntRealConstrained(t *testing.T) {
	a := DomainSpec{Type: "int", HasRange: true, Min: 0, Max: 5}
	b := DomainSpec{Type: "real"}
	if got := Compare(a, b); got != Overlap {
		t.Errorf("constrained cross-type = %v (conservative Overlap expected)", got)
	}
}

// TestCompareInversionProperty: Compare(b, a) must be the inverse of
// Compare(a, b) for every generated pair.
func TestCompareInversionProperty(t *testing.T) {
	mk := func(sel, lo, hi uint8) DomainSpec {
		types := []string{"int", "char"}
		d := DomainSpec{Type: types[int(sel)%2]}
		switch (sel / 2) % 3 {
		case 0: // unconstrained
		case 1:
			l, h := float64(lo%20), float64(hi%20)
			if l > h {
				l, h = h, l
			}
			if d.Type == "int" {
				d.HasRange, d.Min, d.Max = true, l, h
			} else {
				d.MaxLen = int(lo%20) + 1
			}
		case 2:
			vals := []string{"1", "2", "5", "9", "12"}
			n := int(lo)%len(vals) + 1
			d.Values = vals[:n]
		}
		return d
	}
	f := func(s1, l1, h1, s2, l2, h2 uint8) bool {
		a, b := mk(s1, l1, h1), mk(s2, l2, h2)
		return Compare(b, a) == Compare(a, b).Inverse()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClassify(t *testing.T) {
	a := Characteristics{Domain: DomainSpec{Type: "char"}, Unique: true, Mandatory: true}
	b := Characteristics{Domain: DomainSpec{Type: "char"}, Unique: true, Mandatory: true}
	c := Classify(a, b)
	if c.Relation != Equal {
		t.Errorf("relation = %v", c.Relation)
	}
	joined := strings.Join(c.Evidence, "\n")
	if !strings.Contains(joined, "uniqueness agrees") || !strings.Contains(joined, "participation agrees") {
		t.Errorf("evidence = %q", joined)
	}
	if got := c.Score(a, b); got != 1 {
		t.Errorf("score = %v", got)
	}

	b.Unique = false
	b.Mandatory = false
	c2 := Classify(a, b)
	joined = strings.Join(c2.Evidence, "\n")
	if !strings.Contains(joined, "uniqueness differs") || !strings.Contains(joined, "participation differs") {
		t.Errorf("evidence = %q", joined)
	}
	if got := c2.Score(a, b); got >= 1 || got <= 0 {
		t.Errorf("discounted score = %v", got)
	}
}

func TestClassifyDisjointScoresZero(t *testing.T) {
	a := Characteristics{Domain: DomainSpec{Type: "char"}}
	b := Characteristics{Domain: DomainSpec{Type: "date"}}
	c := Classify(a, b)
	if c.Relation != Disjoint || c.Score(a, b) != 0 {
		t.Errorf("classification = %+v score = %v", c, c.Score(a, b))
	}
}

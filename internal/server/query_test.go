package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/instance"
	"repro/internal/journal"
)

// saveTestIntegration persists the paper integration under a name over HTTP.
func saveTestIntegration(t testing.TB, client *http.Client, base, name string) IntegrationInfo {
	t.Helper()
	var info IntegrationInfo
	req := integrationsRequest{Name: name, Schema1: "sc1", Schema2: "sc2"}
	if status := doJSON(t, client, "POST", base+"/v1/integrations", req, &info); status != http.StatusCreated {
		t.Fatalf("save integration: status %d", status)
	}
	return info
}

// loadTestRows inserts rows over HTTP.
func loadTestRows(t testing.TB, client *http.Client, base, schema, structure string, rows []instance.Row) {
	t.Helper()
	req := rowsRequest{Schema: schema, Structure: structure, Rows: rows}
	if status := doJSON(t, client, "POST", base+"/v1/rows", req, nil); status != http.StatusCreated {
		t.Fatalf("load rows into %s.%s: status %d", schema, structure, status)
	}
}

func paperStudentRows(t testing.TB, client *http.Client, base string) {
	t.Helper()
	loadTestRows(t, client, base, "sc1", "Student", []instance.Row{
		{"Name": "Amy", "GPA": "3.9"},
		{"Name": "Bob", "GPA": "2.9"},
	})
	loadTestRows(t, client, base, "sc2", "Grad_student", []instance.Row{
		{"Name": "Amy", "GPA": "3.9", "Support_type": "RA"},
		{"Name": "Carol", "GPA": "3.7", "Support_type": "TA"},
	})
}

func TestFederatedQueryEndToEnd(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	populatePaperWorkspace(t, client, ts.URL)

	info := saveTestIntegration(t, client, ts.URL, "paper")
	if info.Schema != "INT_sc1_sc2" || len(info.Components) != 2 {
		t.Fatalf("integration info = %+v", info)
	}

	var list struct {
		Integrations []IntegrationInfo `json:"integrations"`
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/integrations", nil, &list); status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	if len(list.Integrations) != 1 || list.Integrations[0].Name != "paper" {
		t.Fatalf("integrations = %+v", list.Integrations)
	}

	var got struct {
		Name     string `json:"name"`
		DDL      string `json:"ddl"`
		Mappings any    `json:"mappings"`
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/integrations/paper", nil, &got); status != http.StatusOK {
		t.Fatalf("get status %d", status)
	}
	if got.Name != "paper" || got.DDL == "" || got.Mappings == nil {
		t.Fatalf("integration get = %+v", got)
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/integrations/nope", nil, nil); status != http.StatusNotFound {
		t.Fatalf("missing integration status %d", status)
	}

	paperStudentRows(t, client, ts.URL)

	// Global schema design context: an integrated query fans out to the
	// components and executes; Amy is known to both databases and merges.
	var resp queryResponse
	q := queryRequest{Integration: "paper", Query: queryJSON{
		Schema: "INT_sc1_sc2", Object: "Student", Project: []string{"D_Name"},
	}}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/query", q, &resp); status != http.StatusOK {
		t.Fatalf("query status %d", status)
	}
	if resp.Direction != DirIntegratedToComponents || !resp.Executed {
		t.Fatalf("response = %+v", resp)
	}
	if len(resp.Queries) == 0 || len(resp.Rendered) != len(resp.Queries) {
		t.Fatalf("queries = %v rendered = %v", resp.Queries, resp.Rendered)
	}
	names := map[string]bool{}
	for _, row := range resp.Rows {
		names[row["D_Name"]] = true
	}
	if len(resp.Rows) != 3 || !names["Amy"] || !names["Bob"] || !names["Carol"] {
		t.Fatalf("rows = %v", resp.Rows)
	}

	// Logical database design context: a view query lifts to the integrated
	// schema. No integrated rows are loaded yet, so only the translation
	// comes back.
	view := queryRequest{Integration: "paper", Query: queryJSON{
		Schema: "sc1", Object: "Student", Project: []string{"Name"},
		Where: []predicateJSON{{Attr: "GPA", Op: ">", Value: "3.5"}},
	}}
	resp = queryResponse{}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/query", view, &resp); status != http.StatusOK {
		t.Fatalf("view query status %d", status)
	}
	if resp.Direction != DirViewToIntegrated || resp.Executed || len(resp.Notes) == 0 {
		t.Fatalf("view response = %+v", resp)
	}
	if len(resp.Queries) != 1 || resp.Queries[0].Schema != "INT_sc1_sc2" {
		t.Fatalf("view rewrite = %+v", resp.Queries)
	}

	// With integrated rows loaded the view query executes, columns renamed
	// back to the view's names.
	loadTestRows(t, client, ts.URL, "INT_sc1_sc2", "Student", []instance.Row{
		{"D_Name": "Zed", "D_GPA": "3.8"},
		{"D_Name": "Yan", "D_GPA": "2.1"},
	})
	resp = queryResponse{}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/query", view, &resp); status != http.StatusOK {
		t.Fatalf("view query status %d", status)
	}
	if !resp.Executed || len(resp.Rows) != 1 || resp.Rows[0]["Name"] != "Zed" {
		t.Fatalf("executed view response = %+v", resp)
	}

	// Error paths: unknown integration 404, bad direction 400.
	bad := queryRequest{Integration: "nope", Query: queryJSON{Schema: "sc1", Object: "Student"}}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/query", bad, nil); status != http.StatusNotFound {
		t.Fatalf("unknown integration status %d", status)
	}
	bad = queryRequest{Integration: "paper", Direction: "sideways",
		Query: queryJSON{Schema: "sc1", Object: "Student"}}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/query", bad, nil); status != http.StatusBadRequest {
		t.Fatalf("bad direction status %d", status)
	}
}

func TestRowsPostValidation(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	populatePaperWorkspace(t, client, ts.URL)

	// Unknown schema.
	req := rowsRequest{Schema: "zz", Structure: "X", Rows: []instance.Row{{"A": "1"}}}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/rows", req, nil); status != http.StatusNotFound {
		t.Fatalf("unknown schema status %d", status)
	}
	// Unknown attribute.
	req = rowsRequest{Schema: "sc1", Structure: "Student", Rows: []instance.Row{{"Nope": "1"}}}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/rows", req, nil); status != http.StatusBadRequest {
		t.Fatalf("unknown attribute status %d", status)
	}
	// Duplicate key within the batch: nothing may land.
	req = rowsRequest{Schema: "sc1", Structure: "Student", Rows: []instance.Row{
		{"Name": "Amy"}, {"Name": "Amy"},
	}}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/rows", req, nil); status != http.StatusBadRequest {
		t.Fatalf("duplicate key status %d", status)
	}
	req = rowsRequest{Schema: "sc1", Structure: "Student", Rows: []instance.Row{{"Name": "Amy"}}}
	var out struct {
		Total int `json:"total"`
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/rows", req, &out); status != http.StatusCreated {
		t.Fatalf("insert status %d", status)
	}
	if out.Total != 1 {
		t.Fatalf("total after failed batch = %d", out.Total)
	}
}

// TestFederationCrashRecovery is the acceptance test for mapping-table
// durability: saved integrations and loaded rows must survive a SIGKILL-style
// crash (no drain, no sync, no final snapshot) via journal replay, and the
// query route must keep answering from the rebuilt state.
func TestFederationCrashRecovery(t *testing.T) {
	dir := t.TempDir()

	srv, _ := openDurable(t, dir, journal.Hooks{})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	populatePaperWorkspace(t, client, ts.URL)
	saveTestIntegration(t, client, ts.URL, "paper")
	paperStudentRows(t, client, ts.URL)

	// Crash: the data directory is all that survives.
	ts.Close()
	srv.Kill()

	srv2, report := openDurable(t, dir, journal.Hooks{})
	if report.RecoveredWorkspaces != 1 || report.ReplayedRecords == 0 {
		t.Fatalf("recovery report = %+v", report)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client2 := ts2.Client()

	var list struct {
		Integrations []IntegrationInfo `json:"integrations"`
	}
	if status := doJSON(t, client2, "GET", ts2.URL+"/v1/integrations", nil, &list); status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	if len(list.Integrations) != 1 || list.Integrations[0].Name != "paper" {
		t.Fatalf("integrations after crash = %+v", list.Integrations)
	}

	var resp queryResponse
	q := queryRequest{Integration: "paper", Query: queryJSON{
		Schema: "INT_sc1_sc2", Object: "Student", Project: []string{"D_Name"},
	}}
	if status := doJSON(t, client2, "POST", ts2.URL+"/v1/query", q, &resp); status != http.StatusOK {
		t.Fatalf("query after crash status %d", status)
	}
	if !resp.Executed || len(resp.Rows) != 3 {
		t.Fatalf("query after crash = %+v", resp)
	}

	// The rebuilt instance stores still enforce keys: re-inserting a
	// replayed key must fail, proving the rows really were replayed into
	// live stores and not just listed.
	req := rowsRequest{Schema: "sc1", Structure: "Student", Rows: []instance.Row{{"Name": "Amy"}}}
	if status := doJSON(t, client2, "POST", ts2.URL+"/v1/rows", req, nil); status != http.StatusBadRequest {
		t.Fatalf("duplicate key after crash status %d", status)
	}

	// A compaction folds the federation state into the snapshot; a second
	// crash then recovers from the snapshot path instead of pure replay.
	if err := srv2.Compact(); err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	srv2.Kill()

	srv3, report3 := openDurable(t, dir, journal.Hooks{})
	if report3.RecoveredWorkspaces != 1 {
		t.Fatalf("second recovery report = %+v", report3)
	}
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	client3 := ts3.Client()
	resp = queryResponse{}
	if status := doJSON(t, client3, "POST", ts3.URL+"/v1/query", q, &resp); status != http.StatusOK {
		t.Fatalf("query after snapshot recovery status %d", status)
	}
	if !resp.Executed || len(resp.Rows) != 3 {
		t.Fatalf("query after snapshot recovery = %+v", resp)
	}
}

func TestSchemasPostFormats(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()

	// Explicit SQL source through the JSON envelope.
	var out struct {
		Added  []string `json:"added"`
		Format string   `json:"format"`
		Notes  []string `json:"notes"`
	}
	req := schemasRequest{
		Source: "CREATE TABLE T (Id INT PRIMARY KEY, Label VARCHAR(10));",
		Format: "sql", Name: "reldb",
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas", req, &out); status != http.StatusCreated {
		t.Fatalf("sql upload status %d", status)
	}
	if out.Format != "sql" || len(out.Added) != 1 || out.Added[0] != "reldb" {
		t.Fatalf("sql upload = %+v", out)
	}

	// Sniffed hierarchical source.
	out = struct {
		Added  []string `json:"added"`
		Format string   `json:"format"`
		Notes  []string `json:"notes"`
	}{}
	req = schemasRequest{Source: "hierarchy h\nsegment Root {\n field K char key\n}\n"}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas", req, &out); status != http.StatusCreated {
		t.Fatalf("hierarchical upload status %d", status)
	}
	if out.Format != "hierarchical" || len(out.Added) != 1 {
		t.Fatalf("hierarchical upload = %+v", out)
	}

	// Sniffed Avro via the JSON envelope's source field.
	avro := `{"type":"record","name":"Point","fields":[{"name":"id","type":"int"},{"name":"x","type":"double"}]}`
	out.Format = ""
	if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas", schemasRequest{Source: avro}, &out); status != http.StatusCreated {
		t.Fatalf("avro upload status %d", status)
	}
	if out.Format != "avro" {
		t.Fatalf("avro sniffed as %q", out.Format)
	}

	// Unknown explicit format is a 400.
	req = schemasRequest{Source: "whatever", Format: "cobol"}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas", req, nil); status != http.StatusBadRequest {
		t.Fatalf("unknown format status %d", status)
	}

	// More than one body form is a 400.
	req = schemasRequest{DDL: "schema s\n", Source: "CREATE TABLE T (Id INT PRIMARY KEY);"}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas", req, nil); status != http.StatusBadRequest {
		t.Fatalf("two bodies status %d", status)
	}
}

func TestSchemasPostRawFormatParam(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()

	// A raw text body with ?format=jsonschema&name=... goes through the
	// registry like the JSON envelope does.
	body := `{"$schema":"https://json-schema.org/draft/2020-12/schema","title":"Shop",
	  "type":"object","properties":{"name":{"type":"string","x-key":true}}}`
	req, err := http.NewRequest("POST", ts.URL+"/v1/schemas?format=jsonschema", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	res, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("raw jsonschema upload status %d", res.StatusCode)
	}
}

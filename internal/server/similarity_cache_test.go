package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/ecr"
	"repro/internal/resemblance"
)

// cacheSchemas builds two small schemas with overlapping attribute names
// for the cache-correctness tests.
func cacheSchemas(t *testing.T) (*ecr.Schema, *ecr.Schema) {
	t.Helper()
	mk := func(name string, objs map[string][]string) *ecr.Schema {
		s := ecr.NewSchema(name)
		for _, obj := range []string{"Student", "Department", "Course"} {
			attrs, ok := objs[obj]
			if !ok {
				continue
			}
			o := &ecr.ObjectClass{Name: obj, Kind: ecr.KindEntity}
			for i, a := range attrs {
				o.Attributes = append(o.Attributes, ecr.Attribute{Name: a, Domain: "char", Key: i == 0})
			}
			if err := s.AddObject(o); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	s1 := mk("u1", map[string][]string{
		"Student":    {"Name", "GPA"},
		"Department": {"Dname", "College"},
	})
	s2 := mk("u2", map[string][]string{
		"Student": {"SName", "Level"},
		"Course":  {"Cname", "Credits"},
	})
	return s1, s2
}

// freshDense recomputes the ranking from scratch on the store's live
// workspace state — the reference the cached path must always match.
func freshDense(st *Store, schema1, schema2 string, rel bool) []resemblance.Pair {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s1, s2 := st.ws.Schema(schema1), st.ws.Schema(schema2)
	if rel {
		return resemblance.RankRelationships(s1, s2, st.ws.Registry())
	}
	return resemblance.RankObjects(s1, s2, st.ws.Registry())
}

func requireSameRanking(t *testing.T, label string, got, want []resemblance.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d differs:\n got  %+v\n want %+v", label, i, got[i], want[i])
		}
	}
}

// TestRankedPairsCacheCorrectness mutates the store through every path
// that must invalidate (or must not invalidate) rankings and checks each
// read against a fresh dense recompute.
func TestRankedPairsCacheCorrectness(t *testing.T) {
	s1, s2 := cacheSchemas(t)
	st := NewStore()
	if _, err := st.AddSchemas([]*ecr.Schema{s1, s2}); err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		t.Helper()
		got, err := st.RankedPairs("u1", "u2", false)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		requireSameRanking(t, label, got, freshDense(st, "u1", "u2", false))
	}

	check("initial")
	check("cached-initial") // second read comes from cache

	if err := st.DeclareEquivalence("u1", "Student.Name", "u2", "Student.SName"); err != nil {
		t.Fatal(err)
	}
	check("after-declare")

	if err := st.DeclareEquivalence("u1", "Department.Dname", "u2", "Course.Cname"); err != nil {
		t.Fatal(err)
	}
	check("after-second-declare")

	// Assertions bump the store generation but must NOT drop the ranking
	// cache: the ranking after an assertion still matches dense, via a hit.
	hitsBefore, _ := st.SimilarityCacheStats()
	if _, _, err := st.Assert("u1", "Student", 1, "u2", "Student", false); err != nil {
		t.Fatal(err)
	}
	check("after-assert")
	if hitsAfter, _ := st.SimilarityCacheStats(); hitsAfter <= hitsBefore {
		t.Fatal("assertion invalidated the similarity cache (expected a hit)")
	}

	// Schema replacement: remove u2 and add a namesake lacking SName. The
	// stale equivalence must stop counting, exactly as dense computes it.
	if _, err := st.RemoveSchema("u2"); err != nil {
		t.Fatal(err)
	}
	s2v2 := ecr.NewSchema("u2")
	if err := s2v2.AddObject(&ecr.ObjectClass{
		Name: "Student", Kind: ecr.KindEntity,
		Attributes: []ecr.Attribute{
			{Name: "Ident", Domain: "char", Key: true},
			{Name: "Level", Domain: "char"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddSchemas([]*ecr.Schema{s2v2}); err != nil {
		t.Fatal(err)
	}
	check("after-schema-replace")
	got, err := st.RankedPairs("u1", "u2", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		if p.Equivalent != 0 {
			t.Fatalf("stale equivalence survived schema replace: %+v", p)
		}
	}
}

// TestMatrixEndpointAndCaching exercises GET /v1/matrix end to end and the
// cache counters it feeds.
func TestMatrixEndpointAndCaching(t *testing.T) {
	s1, s2 := cacheSchemas(t)
	srv := New(Config{})
	if _, err := srv.Store().AddSchemas([]*ecr.Schema{s1, s2}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Store().DeclareEquivalence("u1", "Student.Name", "u2", "Student.SName"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string, want int) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Matrix json.RawMessage `json:"matrix"`
		}
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
		if want != http.StatusOK {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Matrix
	}

	raw := get("/v1/matrix?schema1=u1&schema2=u2", http.StatusOK)
	var m struct {
		Schema1 string   `json:"schema1"`
		Schema2 string   `json:"schema2"`
		Rows    []string `json:"rows"`
		Cols    []string `json:"cols"`
		Counts  [][]int  `json:"counts"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Schema1 != "u1" || m.Schema2 != "u2" {
		t.Fatalf("matrix names %s×%s", m.Schema1, m.Schema2)
	}
	if len(m.Rows) != 2 || len(m.Cols) != 2 {
		t.Fatalf("matrix shape %dx%d, want 2x2", len(m.Rows), len(m.Cols))
	}
	// Student×Student shares one equivalence; every other cell is 0.
	found := false
	for i, r := range m.Rows {
		for j, c := range m.Cols {
			want := 0
			if r == "Student" && c == "Student" {
				want = 1
				found = true
			}
			if m.Counts[i][j] != want {
				t.Fatalf("counts[%s][%s] = %d, want %d", r, c, m.Counts[i][j], want)
			}
		}
	}
	if !found {
		t.Fatal("Student row/col missing")
	}

	get("/v1/matrix?schema1=u1&schema2=ghost", http.StatusNotFound)
	get("/v1/matrix?schema1=u1", http.StatusBadRequest)
	get("/v1/matrix?schema1=u1&schema2=u2&kind=bogus", http.StatusBadRequest)

	// A repeat read is a cache hit, visible in /metrics.
	get("/v1/matrix?schema1=u1&schema2=u2", http.StatusOK)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Hits   uint64 `json:"similarity_cache_hits"`
		Misses uint64 `json:"similarity_cache_misses"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Hits == 0 {
		t.Fatal("metrics report no similarity cache hits after a repeat read")
	}
	if snap.Misses == 0 {
		t.Fatal("metrics report no similarity cache misses despite a cold read")
	}
}

// TestConcurrentRankedPairsAndDeclares hammers cached reads against
// equivalence declarations under -race, then verifies the final ranking
// matches a fresh dense recompute.
func TestConcurrentRankedPairsAndDeclares(t *testing.T) {
	s1 := ecr.NewSchema("c1")
	s2 := ecr.NewSchema("c2")
	const objs = 8
	for i := 0; i < objs; i++ {
		for s, schema := range []*ecr.Schema{s1, s2} {
			o := &ecr.ObjectClass{Name: fmt.Sprintf("O%d", i), Kind: ecr.KindEntity}
			for a := 0; a < 4; a++ {
				o.Attributes = append(o.Attributes, ecr.Attribute{
					Name: fmt.Sprintf("A%d_%d", s, a), Domain: "char", Key: a == 0,
				})
			}
			if err := schema.AddObject(o); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := NewStore()
	if _, err := st.AddSchemas([]*ecr.Schema{s1, s2}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(rel bool) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.RankedPairs("c1", "c2", rel); err != nil {
					t.Error(err)
					return
				}
				if _, err := st.Matrix("c1", "c2", rel); err != nil {
					t.Error(err)
					return
				}
			}
		}(r%2 == 1)
	}
	for i := 0; i < objs; i++ {
		for a := 0; a < 4; a++ {
			err := st.DeclareEquivalence("c1",
				fmt.Sprintf("O%d.A0_%d", i, a),
				"c2", fmt.Sprintf("O%d.A1_%d", (i+a)%objs, a))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	got, err := st.RankedPairs("c1", "c2", false)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRanking(t, "final", got, freshDense(st, "c1", "c2", false))
}

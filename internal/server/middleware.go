package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the status code a handler writes so logging and
// metrics middleware can report it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with the per-route plumbing: request-scoped
// timeout, structured logging and request metrics. route is the mux
// pattern the handler is registered under, used as the metrics label so no
// unbounded path cardinality leaks into the counters.
//
//sit:metriclabel route
func instrument(route string, logger *slog.Logger, metrics *Metrics, timeout time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		rec := &statusRecorder{ResponseWriter: w}
		func() {
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				if metrics != nil {
					metrics.ObservePanic()
				}
				if logger != nil {
					logger.Error("panic in handler",
						"route", route,
						"panic", fmt.Sprint(v),
						"stack", string(debug.Stack()),
					)
				}
				// If the handler already started the response we can
				// only drop the connection; otherwise answer 500.
				if rec.status == 0 {
					writeError(rec, http.StatusInternalServerError,
						fmt.Errorf("internal server error"))
				}
			}()
			next.ServeHTTP(rec, r)
		}()
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		elapsed := time.Since(start)
		if metrics != nil {
			metrics.ObserveRequest(route, rec.status)
		}
		if logger != nil {
			logger.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", rec.status,
				"durationMs", float64(elapsed.Microseconds())/1000,
				"remote", r.RemoteAddr,
			)
		}
	})
}

package server

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Observe(500 * time.Microsecond) // <= 1ms
	h.Observe(3 * time.Millisecond)   // <= 5ms
	h.Observe(time.Minute)            // +inf
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Errorf("count = %d", snap.Count)
	}
	if len(snap.Buckets) != len(latencyBuckets)+1 {
		t.Fatalf("buckets = %d", len(snap.Buckets))
	}
	if snap.Buckets[0].LE != "1ms" || snap.Buckets[0].Count != 1 {
		t.Errorf("bucket 0 = %+v", snap.Buckets[0])
	}
	if snap.Buckets[1].LE != "5ms" || snap.Buckets[1].Count != 2 {
		t.Errorf("bucket 1 = %+v", snap.Buckets[1])
	}
	last := snap.Buckets[len(snap.Buckets)-1]
	if last.LE != "inf" || last.Count != 3 {
		t.Errorf("last bucket = %+v", last)
	}
	// Cumulative counts never decrease.
	for i := 1; i < len(snap.Buckets); i++ {
		if snap.Buckets[i].Count < snap.Buckets[i-1].Count {
			t.Errorf("bucket %d not cumulative: %+v", i, snap.Buckets)
		}
	}
}

func TestBucketLabels(t *testing.T) {
	want := []string{"1ms", "5ms", "25ms", "100ms", "500ms", "2500ms", "10s"}
	for i, b := range latencyBuckets {
		if got := formatBound(b); got != want[i] {
			t.Errorf("formatBound(%v) = %q, want %q", b, got, want[i])
		}
	}
}

func TestMetricsRequestsAndJobs(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest("GET /healthz", 200)
	m.ObserveRequest("GET /healthz", 204)
	m.ObserveRequest("POST /v1/schemas", 400)
	m.ObserveRequest("POST /v1/schemas", 503)
	m.ObserveJob(DefaultWorkspace, JobQueued)
	m.ObserveJob(DefaultWorkspace, JobRunning)
	m.ObserveJob(DefaultWorkspace, JobDone)
	m.SetQueueDepthFunc(func() int { return 7 })
	m.SetWorkspaceCountFunc(func() int { return 3 })

	snap := m.Snapshot()
	if snap.Requests["GET /healthz"]["2xx"] != 2 {
		t.Errorf("healthz 2xx = %v", snap.Requests)
	}
	if snap.Requests["POST /v1/schemas"]["4xx"] != 1 || snap.Requests["POST /v1/schemas"]["5xx"] != 1 {
		t.Errorf("schemas counts = %v", snap.Requests)
	}
	if snap.Jobs["done"] != 1 || snap.Jobs["queued"] != 1 {
		t.Errorf("jobs = %v", snap.Jobs)
	}
	if snap.QueueDepth != 7 {
		t.Errorf("queueDepth = %d", snap.QueueDepth)
	}
	if snap.WorkspacesActive != 3 {
		t.Errorf("workspacesActive = %d", snap.WorkspacesActive)
	}
	if snap.Workspaces[DefaultWorkspace].JobsFinished != 1 {
		t.Errorf("workspace counters = %+v", snap.Workspaces)
	}
	if snap.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", snap.UptimeSeconds)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.ObserveRequest("GET /x", 200)
				m.ObserveJob(DefaultWorkspace, JobDone)
				m.IntegrationLatency.Observe(time.Millisecond)
				_ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := m.Snapshot()
	if snap.Requests["GET /x"]["2xx"] != 800 || snap.Jobs["done"] != 800 || snap.IntegrationLatency.Count != 800 {
		t.Errorf("snapshot = %+v", snap)
	}
}

package server

import (
	"fmt"
	"sort"

	"repro/internal/ecr"
	"repro/internal/instance"
	"repro/internal/mapping"
)

// Query translation directions (QueryResult.Direction and the /query
// request's direction field).
const (
	DirViewToIntegrated       = "view_to_integrated"
	DirIntegratedToComponents = "integrated_to_components"
)

// savedIntegration is one persisted integration result: the materialized
// integrated schema plus the component-to-integrated mapping table, saved
// under a name so queries can be translated through it long after the
// integration ran. Both pieces are journaled verbatim (saveIntegrationRec),
// so replay installs exactly what was saved without re-running the
// integration.
type savedIntegration struct {
	name             string
	schema1, schema2 string
	schema           *ecr.Schema
	table            *mapping.Table
}

// IntegrationInfo summarizes one saved integration for listings.
type IntegrationInfo struct {
	Name string `json:"name"`
	// Schema is the integrated schema's name (queries against it fan out to
	// the components).
	Schema     string   `json:"schema"`
	Components []string `json:"components"`
	Objects    int      `json:"objects"`
	Attrs      int      `json:"attrs"`
}

func (si *savedIntegration) info() IntegrationInfo {
	return IntegrationInfo{
		Name:       si.name,
		Schema:     si.schema.Name,
		Components: si.table.Components,
		Objects:    len(si.table.Objects),
		Attrs:      len(si.table.Attrs),
	}
}

// SaveIntegration integrates the two named schemas and persists the result —
// integrated schema plus mapping table — under the given name. Saving the
// same name again overwrites it (last write wins, on replay too). The
// integration itself runs outside the lock through the generation-cached
// Integrate; only the save is journaled.
func (st *Store) SaveIntegration(name, schema1, schema2 string) (IntegrationInfo, error) {
	if name == "" {
		return IntegrationInfo{}, fmt.Errorf("server: integration needs a name")
	}
	res, err := st.Integrate(schema1, schema2)
	if err != nil {
		return IntegrationInfo{}, err
	}
	schemaJSON, err := ecr.EncodeJSON(res.Schema)
	if err != nil {
		return IntegrationInfo{}, err
	}
	tableJSON, err := mapping.EncodeJSON(res.Mappings)
	if err != nil {
		return IntegrationInfo{}, err
	}
	rec := saveIntegrationRec{
		Name: name, Schema1: schema1, Schema2: schema2,
		Schema: schemaJSON, Table: tableJSON,
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	// Decode what will be journaled before journaling it: the installed
	// state is the record's own decoding, so a journaled save always
	// replays to exactly this state.
	si, err := decodeSavedIntegration(rec)
	if err != nil {
		return IntegrationInfo{}, err
	}
	if err := st.journal(opSaveIntegration, rec); err != nil {
		return IntegrationInfo{}, err
	}
	st.integrations[name] = si
	return si.info(), nil
}

// decodeSavedIntegration materializes a journaled save record.
func decodeSavedIntegration(rec saveIntegrationRec) (*savedIntegration, error) {
	s, err := ecr.DecodeJSON(rec.Schema)
	if err != nil {
		return nil, fmt.Errorf("server: integration %q schema: %w", rec.Name, err)
	}
	t, err := mapping.DecodeJSON(rec.Table)
	if err != nil {
		return nil, fmt.Errorf("server: integration %q mappings: %w", rec.Name, err)
	}
	return &savedIntegration{
		name: rec.Name, schema1: rec.Schema1, schema2: rec.Schema2,
		schema: s, table: t,
	}, nil
}

// applySaveIntegration is the journal-replay entrypoint for a save record.
func (st *Store) applySaveIntegration(rec saveIntegrationRec) error {
	si, err := decodeSavedIntegration(rec)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.integrations[rec.Name] = si
	return nil
}

// Integrations lists the saved integrations sorted by name.
func (st *Store) Integrations() []IntegrationInfo {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]IntegrationInfo, 0, len(st.integrations))
	for _, name := range st.integrationNamesLocked() {
		out = append(out, st.integrations[name].info())
	}
	return out
}

// integrationNamesLocked returns the saved integration names sorted.
//
//sit:rlocked mu
func (st *Store) integrationNamesLocked() []string {
	names := make([]string, 0, len(st.integrations))
	for name := range st.integrations {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Integration returns a saved integration's schema (cloned) and mapping
// table. The table is shared and must be treated as read-only.
func (st *Store) Integration(name string) (*ecr.Schema, *mapping.Table, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	si := st.integrations[name]
	if si == nil {
		return nil, nil, fmt.Errorf("server: integration %q %w", name, ErrNotFound)
	}
	return si.schema.Clone(), si.table, nil
}

// LoadRows inserts a batch of rows into the instance store of the named
// schema — a component schema of the workspace, or the materialized schema
// of a saved integration (resolved in that order). The batch is validated,
// then journaled, then applied, so a journaled batch always replays; total
// is the structure's row count after the insert.
func (st *Store) LoadRows(schemaName, structure string, rows []instance.Row) (total int, err error) {
	if len(rows) == 0 {
		return 0, fmt.Errorf("server: no rows in request")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	is, err := st.instanceForLocked(schemaName)
	if err != nil {
		return 0, err
	}
	if err := is.ValidateRows(structure, rows); err != nil {
		return 0, err
	}
	rec := loadRowsRec{Schema: schemaName, Structure: structure, Rows: rows}
	if err := st.journal(opLoadRows, rec); err != nil {
		return 0, err
	}
	if err := is.InsertAll(structure, rows); err != nil {
		return 0, err // unreachable after ValidateRows
	}
	st.rowLog = append(st.rowLog, rec)
	return is.Count(structure), nil
}

// applyLoadRows is the journal-replay entrypoint for a row batch.
func (st *Store) applyLoadRows(rec loadRowsRec) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.applyLoadRowsLocked(rec)
}

//sit:locked mu
func (st *Store) applyLoadRowsLocked(rec loadRowsRec) error {
	is, err := st.instanceForLocked(rec.Schema)
	if err != nil {
		return err
	}
	if err := is.InsertAll(rec.Structure, rec.Rows); err != nil {
		return err
	}
	st.rowLog = append(st.rowLog, rec)
	return nil
}

// instanceForLocked resolves (creating on first touch) the instance store
// for a schema name: an existing store, a workspace component schema, or a
// saved integration's materialized schema, in that order.
//
//sit:locked mu
func (st *Store) instanceForLocked(schemaName string) (*instance.Store, error) {
	if is := st.instances[schemaName]; is != nil {
		return is, nil
	}
	var schema *ecr.Schema
	if s := st.ws.Schema(schemaName); s != nil {
		schema = s.Clone()
	} else {
		for _, si := range st.integrations {
			if si.schema.Name == schemaName {
				schema = si.schema.Clone()
				break
			}
		}
	}
	if schema == nil {
		return nil, fmt.Errorf("server: schema %q %w (neither a component schema nor a saved integration's schema)", schemaName, ErrNotFound)
	}
	is, err := instance.NewStore(schema)
	if err != nil {
		return nil, err
	}
	st.instances[schemaName] = is
	return is, nil
}

// pruneFederationLocked drops the instance store and row batches of a
// removed schema, so the remove record prunes the same state on replay that
// it pruned live. Saved integrations are materialized copies and survive
// their components.
//
//sit:locked mu
func (st *Store) pruneFederationLocked(name string) {
	delete(st.instances, name)
	var kept []loadRowsRec
	for _, r := range st.rowLog {
		if r.Schema != name {
			kept = append(kept, r)
		}
	}
	st.rowLog = kept
}

// QueryResult is the outcome of translating (and, when the instance data is
// loaded, executing) one federated query through a saved mapping table.
type QueryResult struct {
	Direction string
	// Queries are the rewritten queries: one against the integrated schema
	// (view_to_integrated), or one per contributing component
	// (integrated_to_components).
	Queries []mapping.Query
	// Skipped reports components that could not answer (missing attributes).
	Skipped []string
	// Rows holds the merged results when Executed; nil otherwise.
	Rows []instance.Row
	// Executed reports whether the rewritten queries ran against loaded
	// instance stores, or the translation alone is returned (see Notes).
	Executed bool
	Notes    []string
}

// TranslateQuery rewrites a query through a saved integration's mapping
// table — the paper's request translation made operational over HTTP. The
// direction defaults by the query's schema: a query phrased against the
// integrated schema fans out to the components (global schema design
// context); anything else is treated as a component view and lifted to the
// integrated schema (logical database design context). When the instance
// stores the rewritten queries need are loaded, the queries also execute
// and the merged rows come back.
func (st *Store) TranslateQuery(integration string, q mapping.Query, direction string) (*QueryResult, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	si := st.integrations[integration]
	if si == nil {
		return nil, fmt.Errorf("server: integration %q %w", integration, ErrNotFound)
	}
	if direction == "" {
		if q.Schema == si.table.Integrated {
			direction = DirIntegratedToComponents
		} else {
			direction = DirViewToIntegrated
		}
	}
	res := &QueryResult{Direction: direction}
	switch direction {
	case DirViewToIntegrated:
		rewritten, err := mapping.ViewToIntegrated(q, si.table)
		if err != nil {
			return nil, err
		}
		res.Queries = []mapping.Query{rewritten}
		is := st.instances[si.table.Integrated]
		if is == nil {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"no rows loaded for integrated schema %q; returning the translation only", si.table.Integrated))
			return res, nil
		}
		exec, err := instance.NewViewExecutor(is, si.table)
		if err != nil {
			return nil, err
		}
		rows, err := exec.Query(q)
		if err != nil {
			return nil, err
		}
		res.Rows, res.Executed = rows, true
	case DirIntegratedToComponents:
		subs, skipped, err := mapping.IntegratedToComponents(q, si.table, si.schema)
		if err != nil {
			return nil, err
		}
		res.Queries, res.Skipped = subs, skipped
		// Execute only when at least one component has rows loaded; a
		// component with no rows still answers (emptily) through a fresh
		// store over its schema, but a component whose schema is gone
		// cannot, and then only the translation is returned.
		components := map[string]*instance.Store{}
		loaded := 0
		for _, name := range si.table.Components {
			if is := st.instances[name]; is != nil {
				components[name] = is
				loaded++
				continue
			}
			if s := st.ws.Schema(name); s != nil {
				if is, err := instance.NewStore(s.Clone()); err == nil {
					components[name] = is
					continue
				}
			}
			res.Notes = append(res.Notes, fmt.Sprintf(
				"component %q has no instance store; returning the translation only", name))
		}
		if loaded == 0 || len(res.Notes) > 0 {
			if len(res.Notes) == 0 {
				res.Notes = append(res.Notes, "no component rows loaded; returning the translation only")
			}
			return res, nil
		}
		fed, err := instance.NewFederation(si.schema, si.table, components)
		if err != nil {
			return nil, err
		}
		rows, _, err := fed.Query(q)
		if err != nil {
			return nil, err
		}
		res.Rows, res.Executed = rows, true
	default:
		return nil, fmt.Errorf("server: unknown direction %q (want %s or %s)",
			direction, DirViewToIntegrated, DirIntegratedToComponents)
	}
	return res, nil
}

// federationSnapshotLocked renders the federation state for a snapshot: the
// saved integrations re-materialized to their record form, plus the row-
// batch log (recovery rebuilds the instance stores by replaying it).
//
//sit:locked mu
func (st *Store) federationSnapshotLocked() ([]saveIntegrationRec, []loadRowsRec, error) {
	var ints []saveIntegrationRec
	for _, name := range st.integrationNamesLocked() {
		si := st.integrations[name]
		schemaJSON, err := ecr.EncodeJSON(si.schema)
		if err != nil {
			return nil, nil, err
		}
		tableJSON, err := mapping.EncodeJSON(si.table)
		if err != nil {
			return nil, nil, err
		}
		ints = append(ints, saveIntegrationRec{
			Name: si.name, Schema1: si.schema1, Schema2: si.schema2,
			Schema: schemaJSON, Table: tableJSON,
		})
	}
	return ints, append([]loadRowsRec(nil), st.rowLog...), nil
}

// restoreFederation reinstalls snapshot federation state: the saved
// integrations verbatim, then the instance stores rebuilt by replaying the
// row-batch log (recovery and replica bootstrap).
func (st *Store) restoreFederation(ints []saveIntegrationRec, rows []loadRowsRec) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, rec := range ints {
		si, err := decodeSavedIntegration(rec)
		if err != nil {
			return fmt.Errorf("restore integration %q: %w", rec.Name, err)
		}
		st.integrations[rec.Name] = si
	}
	for _, rec := range rows {
		if err := st.applyLoadRowsLocked(rec); err != nil {
			return fmt.Errorf("restore rows for %s.%s: %w", rec.Schema, rec.Structure, err)
		}
	}
	return nil
}

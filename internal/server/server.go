package server

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Server. The zero value is usable: sensible
// defaults are filled in by New.
type Config struct {
	// Workers is the per-workspace job-queue worker pool size (default 4).
	Workers int
	// QueueCapacity bounds the number of queued-but-unstarted jobs per
	// workspace (default 64); submissions beyond it are rejected with 503.
	QueueCapacity int
	// RequestTimeout bounds each HTTP request's context (default 30s).
	RequestTimeout time.Duration
	// JobTimeout bounds each job's execution context (default 5m).
	JobTimeout time.Duration
	// ShutdownGrace bounds the drain on graceful shutdown (default 10s).
	ShutdownGrace time.Duration
	// MaxWorkspaces caps how many workspaces may exist at once, counting
	// the default one (default 64). Recovery never refuses workspaces that
	// already exist on disk; the cap applies to creations.
	MaxWorkspaces int
	// Logger receives structured request and lifecycle logs; nil
	// disables logging.
	Logger *slog.Logger
	// Store optionally seeds the default workspace with a pre-populated
	// store (for example from a loaded workspace file); nil starts empty.
	// Ignored by Open, where the data directory is authoritative.
	Store *Store
	// Follow, when set, starts the server as a read-only follower
	// replicating the given leader's journals. Followers must be durable
	// (built with Open): the replicated stream IS a journal. Mutations are
	// refused with 421 and a Location pointing at the leader; POST
	// /v1/promote turns the follower into a leader.
	Follow *FollowerConfig
	// Limits bounds per-workspace and per-key resource consumption
	// (quotas and token-bucket rates). The zero value disables admission
	// control. API keys are installed separately via SetKeysFile.
	Limits Limits
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.MaxWorkspaces <= 0 {
		c.MaxWorkspaces = 64
	}
	return c
}

// Server ties the workspace manager, the metrics registry and the HTTP mux
// together. Each workspace carries its own store, job queue and (on
// durable servers) journal; the server owns only the shared plumbing.
type Server struct {
	cfg     Config
	manager *Manager
	metrics *Metrics
	mux     *http.ServeMux
	log     *slog.Logger

	// dcfg, when set, makes every workspace durable: each gets its own
	// journal under dcfg.Dir/<name>/. Set by Open before any workspace is
	// built.
	dcfg *DurabilityConfig

	// seed, when set, becomes the default workspace's store on first
	// build (consumed exactly once).
	seed *Store

	// follow holds the live follower machinery while the server is a
	// follower; nil means leader. Readers load it lock-free on every
	// request; promotion swaps it to nil exactly once, serialized by the
	// promoting claim flag (no lock is held across the transition's
	// journal re-arming).
	follow    atomic.Pointer[followState]
	promoting atomic.Bool
	// promoted latches true once a follower has been promoted, so
	// workspaces built afterwards arm as journaling leaders even though
	// cfg.Follow is still set.
	promoted atomic.Bool

	// limits is cfg.Limits with defaults applied (set once in newServer).
	limits Limits

	// API-key state. fileKeys holds the set loaded from the -keys file;
	// replKeys holds the set that arrived through the journal (replay or
	// replication). effectiveKeys picks by role; nil both means auth off.
	fileKeys atomic.Pointer[keySet]
	replKeys atomic.Pointer[keySet]

	keyMu sync.Mutex
	// keysPath remembers the -keys file for ReloadKeys/SIGHUP.
	keysPath string // guarded by keyMu
	// keysJournaled is the canonical JSON of the last journaled (or
	// replayed) key set, the journalKeys dedupe check; keyEntries is the
	// same set in entry form, for snapshots.
	keysJournaled string        // guarded by keyMu
	keyEntries    []apiKeyEntry // guarded by keyMu

	mu       sync.Mutex
	listener net.Listener
	httpSrv  *http.Server
}

// New builds a ready-to-serve memory-only Server (not yet listening) with
// the default workspace created.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := newServer(cfg, nil)
	s.seed = cfg.Store
	if _, err := s.manager.Create(DefaultWorkspace); err != nil {
		// Unreachable: the manager is empty and the name is valid.
		panic(err)
	}
	return s
}

// newServer wires the shared pieces (manager, metrics, routes) without
// creating any workspace; Open populates the manager from disk instead.
func newServer(cfg Config, dcfg *DurabilityConfig) *Server {
	s := &Server{
		cfg:     cfg,
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		log:     cfg.Logger,
		dcfg:    dcfg,
		limits:  cfg.Limits.withDefaults(),
	}
	s.manager = NewManager(cfg.MaxWorkspaces, s.buildWorkspace, s.destroyWorkspace)
	s.metrics.SetQueueDepthFunc(s.manager.TotalQueueDepth)
	s.metrics.SetSimilarityStatsFunc(s.manager.TotalSimilarityStats)
	s.metrics.SetClosureStatsFunc(s.manager.TotalClosureStats)
	s.metrics.SetWorkspaceCountFunc(s.manager.Len)
	s.metrics.SetReplicationFunc(s.replicationSnapshot)
	s.routes()
	return s
}

// newWorkspaceFrom assembles a workspace around an existing store: its own
// job queue (own job-ID sequence) whose executor runs against that store,
// wired into the shared metrics under the workspace's name, plus its
// admission state — a rate-limit bucket always, and the schema/job quotas
// unless the workspace is being built as a follower replica (replicated
// records the leader accepted must always apply; promotion arms the
// quotas then).
func (s *Server) newWorkspaceFrom(name string, st *Store) *Workspace {
	ws := &Workspace{name: name, created: time.Now().UTC(), store: st}
	ws.queue = NewQueue(s.cfg.Workers, s.cfg.QueueCapacity, s.cfg.JobTimeout,
		func(ctx context.Context, req JobRequest) (*IntegrationResult, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return s.runIntegration(ws, req)
		})
	ws.queue.SetObserver(func(j Job) { s.metrics.ObserveJob(name, j.State) })
	if s.limits.WorkspaceRate > 0 {
		ws.bucket = newBucket(s.limits.WorkspaceRate, s.limits.WorkspaceBurst)
	}
	if !s.followerAtBuild() {
		st.SetMaxSchemas(s.limits.MaxSchemas)
		ws.queue.SetMaxJobs(s.limits.MaxJobs)
	}
	return ws
}

// followerAtBuild reports whether a workspace being built right now should
// arm as a follower replica: the server was configured as a follower and
// has not been promoted since. (cfg.Follow alone is wrong after a
// promotion — workspaces created on the new leader must journal.)
func (s *Server) followerAtBuild() bool {
	return s.cfg.Follow != nil && !s.promoted.Load()
}

// buildWorkspace provisions a brand-new workspace (Manager.Create hook):
// an empty store — or the configured seed for the first default — plus, on
// durable servers, a fresh journal directory.
func (s *Server) buildWorkspace(name string) (*Workspace, error) {
	st := NewStore()
	if name == DefaultWorkspace && s.seed != nil {
		st = s.seed
		s.seed = nil
	}
	ws := s.newWorkspaceFrom(name, st)
	if s.dcfg != nil {
		if err := s.openWorkspaceJournal(ws); err != nil {
			ws.queue.Kill()
			return nil, err
		}
	}
	return ws, nil
}

// destroyWorkspace releases a deleted workspace's resources: the queue is
// torn down (in-flight jobs are awaited, buffered ones canceled), the
// journal closed, and the data subdirectory removed. Runs outside the
// manager lock.
func (s *Server) destroyWorkspace(ws *Workspace) {
	ws.queue.Kill()
	if ws.persist != nil {
		ws.persist.stopLoop()
		ws.persist.j.CloseAbrupt()
		if err := removeWorkspaceDir(s.dcfg.Dir, ws.name); err != nil && s.log != nil {
			s.log.Error("remove workspace data", "workspace", ws.name, "error", err)
		}
	}
	s.metrics.ForgetWorkspace(ws.name)
	if s.log != nil {
		s.log.Info("workspace deleted", "workspace", ws.name)
	}
}

// Workspaces exposes the workspace manager (tests, in-process embedding).
func (s *Server) Workspaces() *Manager { return s.manager }

// defaultWS returns the default workspace, which exists for the server's
// whole lifetime.
func (s *Server) defaultWS() *Workspace {
	ws, err := s.manager.Get(DefaultWorkspace)
	if err != nil {
		panic("server: default workspace missing")
	}
	return ws
}

// Store exposes the default workspace's store (tests, in-process
// embedding, CLI preloads).
func (s *Server) Store() *Store { return s.defaultWS().store }

// Metrics exposes the metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// handle registers a route with the standard middleware stack. pattern
// doubles as the request-metrics label, so it must be a mux pattern. The
// handler must already be wrapped in an admitter — routes() is checked by
// the admission analyzer; this function is the sanctioned mux door.
//
//sit:admission
//sit:metriclabel pattern
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, instrument(pattern, s.log, s.metrics, s.cfg.RequestTimeout, h))
}

// handleWS registers one data-plane route twice: under the workspace
// prefix (/v1/workspaces/{ws}/...) and unprefixed (/v1/...) as an alias
// for the default workspace, so pre-workspace clients keep working. The
// handler must already be admitted (admitRead/admitMutate resolve the
// workspace and run the auth/rate/quota chain).
//
//sit:admission
//sit:metriclabel method suffix
func (s *Server) handleWS(method, suffix string, h http.HandlerFunc) {
	s.handle(method+" /v1"+suffix, h)
	s.handle(method+" /v1/workspaces/{ws}"+suffix, h)
}

func (s *Server) routes() {
	// Every handler passes through exactly one admitter (the admission
	// analyzer enforces it): admitOpen for probes, admitPeer for the
	// server-to-server stream, admitAdmin for the control plane, and
	// admitRead/admitMutate for the data plane — which authenticate,
	// resolve the workspace, charge the per-key and per-workspace token
	// buckets and (mutations) apply the follower gate and journal quota
	// before any handler work runs.
	s.handle("GET /healthz", s.admitOpen(s.handleHealthz))
	s.handle("GET /metrics", s.admitAdmin(s.handleMetrics))

	// Workspace lifecycle. Creation and deletion are mutations: on a
	// follower the workspace set mirrors the leader's, so both redirect.
	s.handle("GET /v1/workspaces", s.admitAdmin(s.handleWorkspacesList))
	s.handle("POST /v1/workspaces", s.admitAdmin(s.gate(s.handleWorkspacesPost)))
	s.handle("GET /v1/workspaces/{ws}", s.admitRead(s.handleWorkspaceGet))
	s.handle("DELETE /v1/workspaces/{ws}", s.admitAdmin(s.gate(s.handleWorkspaceDelete)))

	// Data plane, workspace-scoped with unprefixed default aliases.
	// Mutating routes redirect on a follower (inside admitMutate); reads —
	// including /integrate, which computes over the replicated state
	// without mutating it — serve from the replica.
	s.handleWS("POST", "/schemas", s.admitMutate(s.handleSchemasPost))
	s.handleWS("GET", "/schemas", s.admitRead(s.handleSchemasList))
	s.handleWS("GET", "/schemas/{name}", s.admitRead(s.handleSchemaGet))
	s.handleWS("DELETE", "/schemas/{name}", s.admitMutate(s.handleSchemaDelete))

	s.handleWS("POST", "/equivalences", s.admitMutate(s.handleEquivalencesPost))
	s.handleWS("GET", "/equivalences", s.admitRead(s.handleEquivalencesList))

	s.handleWS("GET", "/resemblance", s.admitRead(s.handleResemblance))
	s.handleWS("GET", "/matrix", s.admitRead(s.handleMatrix))
	s.handleWS("GET", "/suggestions", s.admitRead(s.handleSuggestions))

	s.handleWS("POST", "/assertions", s.admitMutate(s.handleAssertionsPost))
	s.handleWS("GET", "/assertions", s.admitRead(s.handleAssertionsList))
	s.handleWS("DELETE", "/assertions", s.admitMutate(s.handleAssertionsDelete))
	s.handleWS("GET", "/assertions/explain", s.admitRead(s.handleAssertionExplain))

	s.handleWS("POST", "/integrate", s.admitRead(s.handleIntegrate))
	s.handleWS("POST", "/integrations", s.admitMutate(s.handleIntegrationsPost))
	s.handleWS("GET", "/integrations", s.admitRead(s.handleIntegrationsList))
	s.handleWS("GET", "/integrations/{name}", s.admitRead(s.handleIntegrationGet))
	s.handleWS("POST", "/rows", s.admitMutate(s.handleRowsPost))
	s.handleWS("POST", "/query", s.admitRead(s.handleQueryPost))
	s.handleWS("POST", "/jobs", s.admitMutate(s.handleJobsPost))
	s.handleWS("GET", "/jobs", s.admitRead(s.handleJobsList))
	s.handleWS("GET", "/jobs/{id}", s.admitRead(s.handleJobGet))

	s.handleWS("GET", "/quota", s.admitRead(s.handleQuotaGet))

	// Replication: the leader-side stream API plus follower promotion.
	// The stream routes are role-agnostic (a follower can feed another
	// follower); they only require a durable server.
	s.handle("GET /v1/replication/workspaces", s.admitPeer(s.handleReplWorkspaces))
	s.handle("GET /v1/replication/workspaces/{ws}/snapshot", s.admitPeer(s.handleReplSnapshot))
	s.handle("GET /v1/replication/workspaces/{ws}/records", s.admitPeer(s.handleReplRecords))
	s.handle("POST /v1/promote", s.admitAdmin(s.handlePromote))
}

// Handler returns the full HTTP handler (httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr ("host:port"; port 0 picks a free one) and serves
// in the background, returning the bound address. Pair with Shutdown.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.mu.Lock()
	s.listener = ln
	s.httpSrv = srv
	s.mu.Unlock()
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			if s.log != nil {
				s.log.Error("serve", "error", err)
			}
		}
	}()
	if s.log != nil {
		s.log.Info("listening", "addr", ln.Addr().String())
	}
	return ln.Addr().String(), nil
}

// Shutdown stops the HTTP listener (draining in-flight requests) and then
// every workspace's job queue, bounded by the context (falling back to the
// configured grace period when the context has no deadline).
func (s *Server) Shutdown(ctx context.Context) error {
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ShutdownGrace)
		defer cancel()
	}
	var first error
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.mu.Unlock()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			first = err
		}
	}
	// Stop the follower apply loop (and wait it out) before compacting, so
	// every captured state is quiescent.
	if f := s.follow.Load(); f != nil {
		f.halt(true)
	}
	// Per workspace: compact before draining the queue, so jobs still
	// buffered are captured as queued in the snapshot (the drain below only
	// cancels them in memory) and are re-enqueued by the next process.
	for _, ws := range s.manager.List() {
		if ws.persist != nil {
			ws.persist.stopLoop()
			if err := s.compactWorkspace(ws); err != nil && first == nil {
				first = err
			}
		}
		if err := ws.queue.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		if ws.persist != nil {
			if err := ws.persist.j.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if s.log != nil {
		s.log.Info("shut down", "error", first)
	}
	return first
}

// Run serves on addr until the context is canceled (typically by SIGTERM
// via signal.NotifyContext), then shuts down gracefully.
func (s *Server) Run(ctx context.Context, addr string) error {
	if _, err := s.Start(addr); err != nil {
		return err
	}
	<-ctx.Done()
	// The parent context is already canceled; shut down on a fresh one
	// bounded by the grace period.
	return s.Shutdown(context.Background())
}

// Addr returns the bound address after Start, or "".
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

package server

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"
)

// Config parameterizes a Server. The zero value is usable: sensible
// defaults are filled in by New.
type Config struct {
	// Workers is the job-queue worker pool size (default 4).
	Workers int
	// QueueCapacity bounds the number of queued-but-unstarted jobs
	// (default 64); submissions beyond it are rejected with 503.
	QueueCapacity int
	// RequestTimeout bounds each HTTP request's context (default 30s).
	RequestTimeout time.Duration
	// JobTimeout bounds each job's execution context (default 5m).
	JobTimeout time.Duration
	// ShutdownGrace bounds the drain on graceful shutdown (default 10s).
	ShutdownGrace time.Duration
	// Logger receives structured request and lifecycle logs; nil
	// disables logging.
	Logger *slog.Logger
	// Store optionally supplies a pre-populated store (for example from
	// a loaded workspace); nil starts empty.
	Store *Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.Store == nil {
		c.Store = NewStore()
	}
	return c
}

// Server ties the store, the job queue, the metrics registry and the HTTP
// mux together.
type Server struct {
	cfg     Config
	store   *Store
	queue   *Queue
	metrics *Metrics
	mux     *http.ServeMux
	log     *slog.Logger

	// persist is the durability layer (journal + compaction loop); nil
	// for a memory-only server. Set by Open via attachJournal.
	persist *persister

	mu       sync.Mutex
	listener net.Listener
	httpSrv  *http.Server
}

// New builds a ready-to-serve Server (not yet listening).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   cfg.Store,
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
		log:     cfg.Logger,
	}
	s.queue = NewQueue(cfg.Workers, cfg.QueueCapacity, cfg.JobTimeout,
		func(ctx context.Context, req JobRequest) (*IntegrationResult, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return s.runIntegration(req)
		})
	s.metrics.SetQueueDepthFunc(s.queue.Depth)
	s.metrics.SetSimilarityStatsFunc(s.store.SimilarityCacheStats)
	s.queue.SetObserver(func(j Job) { s.metrics.ObserveJob(j.State) })
	s.routes()
	return s
}

// Store exposes the underlying store (tests, in-process embedding).
func (s *Server) Store() *Store { return s.store }

// Metrics exposes the metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// handle registers a route with the standard middleware stack.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, instrument(pattern, s.log, s.metrics, s.cfg.RequestTimeout, h))
}

func (s *Server) routes() {
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /metrics", s.handleMetrics)

	s.handle("POST /v1/schemas", s.handleSchemasPost)
	s.handle("GET /v1/schemas", s.handleSchemasList)
	s.handle("GET /v1/schemas/{name}", s.handleSchemaGet)
	s.handle("DELETE /v1/schemas/{name}", s.handleSchemaDelete)

	s.handle("POST /v1/equivalences", s.handleEquivalencesPost)
	s.handle("GET /v1/equivalences", s.handleEquivalencesList)

	s.handle("GET /v1/resemblance", s.handleResemblance)
	s.handle("GET /v1/matrix", s.handleMatrix)
	s.handle("GET /v1/suggestions", s.handleSuggestions)

	s.handle("POST /v1/assertions", s.handleAssertionsPost)
	s.handle("GET /v1/assertions", s.handleAssertionsList)

	s.handle("POST /v1/integrate", s.handleIntegrate)
	s.handle("POST /v1/jobs", s.handleJobsPost)
	s.handle("GET /v1/jobs", s.handleJobsList)
	s.handle("GET /v1/jobs/{id}", s.handleJobGet)
}

// Handler returns the full HTTP handler (httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr ("host:port"; port 0 picks a free one) and serves
// in the background, returning the bound address. Pair with Shutdown.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.mu.Lock()
	s.listener = ln
	s.httpSrv = srv
	s.mu.Unlock()
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			if s.log != nil {
				s.log.Error("serve", "error", err)
			}
		}
	}()
	if s.log != nil {
		s.log.Info("listening", "addr", ln.Addr().String())
	}
	return ln.Addr().String(), nil
}

// Shutdown stops the HTTP listener (draining in-flight requests) and then
// the job queue, bounded by the context (falling back to the configured
// grace period when the context has no deadline).
func (s *Server) Shutdown(ctx context.Context) error {
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ShutdownGrace)
		defer cancel()
	}
	var first error
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.mu.Unlock()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			first = err
		}
	}
	// Compact before draining the queue: jobs still buffered are captured
	// as queued in the snapshot (the drain below only cancels them in
	// memory), so they are re-enqueued by the next process.
	if s.persist != nil {
		s.persist.stopLoop()
		if err := s.Compact(); err != nil && first == nil {
			first = err
		}
	}
	if err := s.queue.Shutdown(ctx); err != nil && first == nil {
		first = err
	}
	if s.persist != nil {
		if err := s.persist.j.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.log != nil {
		s.log.Info("shut down", "error", first)
	}
	return first
}

// Run serves on addr until the context is canceled (typically by SIGTERM
// via signal.NotifyContext), then shuts down gracefully.
func (s *Server) Run(ctx context.Context, addr string) error {
	if _, err := s.Start(addr); err != nil {
		return err
	}
	<-ctx.Done()
	// The parent context is already canceled; shut down on a fresh one
	// bounded by the grace period.
	return s.Shutdown(context.Background())
}

// Addr returns the bound address after Start, or "".
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

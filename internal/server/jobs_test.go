package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// waitTerminal polls the queue until the job reaches a terminal state.
func waitTerminal(t testing.TB, q *Queue, id string) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		job, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if job.State.Terminal() {
			return job
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Job{}
}

func okExecutor(ctx context.Context, req JobRequest) (*IntegrationResult, error) {
	return &IntegrationResult{Name: req.Schema1 + "+" + req.Schema2}, nil
}

func TestQueueRunsJobs(t *testing.T) {
	q := NewQueue(2, 8, 0, okExecutor)
	defer q.Shutdown(context.Background())

	job, err := q.Submit(JobRequest{Type: "integrate", Schema1: "a", Schema2: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobQueued || job.ID == "" {
		t.Errorf("submitted job = %+v", job)
	}
	done := waitTerminal(t, q, job.ID)
	if done.State != JobDone || done.Result == nil || done.Result.Name != "a+b" {
		t.Errorf("job = %+v", done)
	}
	if done.Started == nil || done.Finished == nil {
		t.Error("missing timestamps")
	}
}

func TestQueueJobFailure(t *testing.T) {
	q := NewQueue(1, 4, 0, func(ctx context.Context, req JobRequest) (*IntegrationResult, error) {
		return nil, fmt.Errorf("boom")
	})
	defer q.Shutdown(context.Background())
	job, err := q.Submit(JobRequest{Type: "spec", Spec: "x"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, q, job.ID)
	if done.State != JobFailed || done.Error != "boom" {
		t.Errorf("job = %+v", done)
	}
}

func TestQueueValidatesRequests(t *testing.T) {
	q := NewQueue(1, 4, 0, okExecutor)
	defer q.Shutdown(context.Background())
	for _, req := range []JobRequest{
		{Type: "bogus"},
		{Type: "integrate", Schema1: "a"},
		{Type: "spec"},
	} {
		if _, err := q.Submit(req); err == nil {
			t.Errorf("Submit(%+v) succeeded", req)
		}
	}
}

func TestQueueFullRejects(t *testing.T) {
	block := make(chan struct{})
	q := NewQueue(1, 1, 0, func(ctx context.Context, req JobRequest) (*IntegrationResult, error) {
		<-block
		return &IntegrationResult{}, nil
	})
	defer func() {
		close(block)
		q.Shutdown(context.Background())
	}()

	// One job occupies the worker, one fills the buffer; submissions keep
	// failing until the buffered job is picked up, so only check that a
	// burst eventually hits the "queue is full" error.
	var fullErr error
	for i := 0; i < 10 && fullErr == nil; i++ {
		_, err := q.Submit(JobRequest{Type: "spec", Spec: "x"})
		if err != nil {
			fullErr = err
		}
	}
	if fullErr == nil {
		t.Fatal("burst never filled the queue")
	}
}

func TestQueueShutdownDrains(t *testing.T) {
	q := NewQueue(2, 16, 0, okExecutor)
	var ids []string
	for i := 0; i < 10; i++ {
		job, err := q.Submit(JobRequest{Type: "integrate", Schema1: "a", Schema2: "b"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		job, _ := q.Get(id)
		if !job.State.Terminal() {
			t.Errorf("job %s not terminal after shutdown: %s", id, job.State)
		}
	}
	if _, err := q.Submit(JobRequest{Type: "spec", Spec: "x"}); err == nil {
		t.Error("submit succeeded after shutdown")
	}
	// A second shutdown is a no-op.
	if err := q.Shutdown(context.Background()); err != nil {
		t.Error(err)
	}
}

func TestQueueShutdownDeadlineCancels(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	q := NewQueue(1, 8, 0, func(ctx context.Context, req JobRequest) (*IntegrationResult, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return &IntegrationResult{}, nil
	})
	var ids []string
	for i := 0; i < 5; i++ {
		job, err := q.Submit(JobRequest{Type: "spec", Spec: "x"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Shutdown(ctx); err == nil {
		t.Error("expected a deadline error from the cut-short drain")
	}
	// Every job must still be terminal: the running one finishes when its
	// context is canceled; the buffered ones are marked canceled.
	for _, id := range ids {
		job, _ := q.Get(id)
		if !job.State.Terminal() {
			t.Errorf("job %s not terminal after forced shutdown: %s", id, job.State)
		}
	}
}

// TestQueueFullSetsRetryAfter checks that a 503 from a full queue carries
// a Retry-After estimate derived from the backlog and the observed mean
// integration latency.
func TestQueueFullSetsRetryAfter(t *testing.T) {
	srv := New(Config{Workers: 1})
	// Swap in a single-worker, single-slot queue whose job blocks, so the
	// backlog is under test control.
	block := make(chan struct{})
	ws := srv.defaultWS()
	old := ws.queue
	ws.queue = NewQueue(1, 1, 0, func(ctx context.Context, req JobRequest) (*IntegrationResult, error) {
		select {
		case <-block:
			return &IntegrationResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	defer func() {
		close(block)
		ws.queue.Shutdown(context.Background())
		old.Shutdown(context.Background())
	}()
	// Seed a known latency profile: mean 10s.
	srv.metrics.IntegrationLatency.Observe(10 * time.Second)

	req := JobRequest{Type: "integrate", Schema1: "a", Schema2: "b"}
	if _, err := ws.queue.Submit(req); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pull job-1 off the buffer, then fill the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if job, _ := ws.queue.Get("job-1"); job.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job-1 never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := ws.queue.Submit(req); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	// Depth 2 (one running, one buffered) x 10s mean / 1 worker = 20s.
	if got := resp.Header.Get("Retry-After"); got != "20" {
		t.Errorf("Retry-After = %q, want \"20\"", got)
	}
}

func TestQueueDepthAndObserver(t *testing.T) {
	var mu sync.Mutex
	seen := map[JobState]int{}
	q := NewQueue(2, 8, 0, okExecutor)
	q.SetObserver(func(j Job) {
		mu.Lock()
		seen[j.State]++
		mu.Unlock()
	})
	job, err := q.Submit(JobRequest{Type: "spec", Spec: "x"})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, job.ID)
	if err := q.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if q.Depth() != 0 {
		t.Errorf("depth = %d after drain", q.Depth())
	}
	mu.Lock()
	defer mu.Unlock()
	if seen[JobQueued] != 1 || seen[JobRunning] != 1 || seen[JobDone] != 1 {
		t.Errorf("observer saw %v", seen)
	}
	list := q.List()
	if len(list) != 1 || list[0].ID != job.ID {
		t.Errorf("List = %+v", list)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"testing"

	"repro/internal/ecr"
	"repro/internal/paperex"
)

// testServer returns a quiet server and its httptest wrapper.
func testServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Workers: 2, QueueCapacity: 16})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	return srv, ts
}

// doJSON posts v as JSON and decodes the response body into out (when
// non-nil), returning the status code.
func doJSON(t testing.TB, client *http.Client, method, url string, v, out any) int {
	t.Helper()
	var body io.Reader
	if v != nil {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func uploadPaperSchemas(t testing.TB, client *http.Client, base string) {
	t.Helper()
	ddl, err := os.ReadFile("../../testdata/paper.ecr")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Added []string `json:"added"`
	}
	status := doJSON(t, client, "POST", base+"/v1/schemas", map[string]string{"ddl": string(ddl)}, &out)
	if status != http.StatusCreated || len(out.Added) != 2 {
		t.Fatalf("upload: status %d, added %v", status, out.Added)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	var out map[string]string
	if status := doJSON(t, ts.Client(), "GET", ts.URL+"/healthz", nil, &out); status != 200 {
		t.Fatalf("status = %d", status)
	}
	if out["status"] != "ok" || out["version"] == "" {
		t.Errorf("healthz = %v", out)
	}
}

func TestSchemasEndpoints(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	// Upload one more as ECR JSON.
	extra := paperex.Sc3()
	schemaJSON, err := ecr.EncodeJSON(extra)
	if err != nil {
		t.Fatal(err)
	}
	status := doJSON(t, client, "POST", ts.URL+"/v1/schemas",
		map[string]json.RawMessage{"schema": schemaJSON}, nil)
	if status != http.StatusCreated {
		t.Fatalf("JSON upload status = %d", status)
	}

	// Plain-text DDL upload.
	req, err := http.NewRequest("POST", ts.URL+"/v1/schemas",
		strings.NewReader("schema tiny\nentity T {\n attr Id: int key\n}\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("text/plain upload status = %d", resp.StatusCode)
	}

	var list struct {
		Schemas []SchemaStats `json:"schemas"`
	}
	doJSON(t, client, "GET", ts.URL+"/v1/schemas", nil, &list)
	if len(list.Schemas) != 4 {
		t.Errorf("schemas = %+v", list.Schemas)
	}

	var got struct {
		Name string `json:"name"`
		DDL  string `json:"ddl"`
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/schemas/sc1", nil, &got); status != 200 {
		t.Fatalf("get sc1 status = %d", status)
	}
	if got.Name != "sc1" || !strings.Contains(got.DDL, "entity Student") {
		t.Errorf("get sc1 = %+v", got)
	}

	if status := doJSON(t, client, "GET", ts.URL+"/v1/schemas/ghost", nil, nil); status != http.StatusNotFound {
		t.Errorf("missing schema status = %d", status)
	}
	if status := doJSON(t, client, "DELETE", ts.URL+"/v1/schemas/tiny", nil, nil); status != 200 {
		t.Errorf("delete status = %d", status)
	}
	if status := doJSON(t, client, "DELETE", ts.URL+"/v1/schemas/tiny", nil, nil); status != http.StatusNotFound {
		t.Errorf("double delete status = %d", status)
	}

	// Error shapes: both fields, neither field, bad DDL, unknown field.
	for _, body := range []any{
		map[string]string{},
		map[string]string{"ddl": "schema broken {"},
		map[string]string{"bogus": "x"},
	} {
		if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas", body, nil); status != http.StatusBadRequest {
			t.Errorf("POST %v status = %d", body, status)
		}
	}
}

func TestEquivalenceAndResemblanceEndpoints(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	eq := equivalenceRequest{Schema1: "sc1", Attr1: "Student.Name", Schema2: "sc2", Attr2: "Grad_student.Name"}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/equivalences", eq, nil); status != http.StatusCreated {
		t.Fatalf("declare status = %d", status)
	}
	var classes struct {
		Classes [][]ecr.AttrRef `json:"classes"`
	}
	doJSON(t, client, "GET", ts.URL+"/v1/equivalences", nil, &classes)
	if len(classes.Classes) != 1 || len(classes.Classes[0]) != 2 {
		t.Errorf("classes = %+v", classes.Classes)
	}

	eq.Schema2 = "ghost"
	if status := doJSON(t, client, "POST", ts.URL+"/v1/equivalences", eq, nil); status != http.StatusNotFound {
		t.Errorf("unknown schema status = %d", status)
	}

	var pairs struct {
		Pairs []json.RawMessage `json:"pairs"`
	}
	status := doJSON(t, client, "GET",
		ts.URL+"/v1/resemblance?schema1=sc1&schema2=sc2&kind=objects", nil, &pairs)
	if status != 200 || len(pairs.Pairs) == 0 {
		t.Errorf("resemblance status=%d pairs=%d", status, len(pairs.Pairs))
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/resemblance?schema1=sc1", nil, nil); status != http.StatusBadRequest {
		t.Errorf("missing params status = %d", status)
	}
	if status := doJSON(t, client, "GET",
		ts.URL+"/v1/resemblance?schema1=sc1&schema2=sc2&kind=bogus", nil, nil); status != http.StatusBadRequest {
		t.Errorf("bad kind status = %d", status)
	}

	var sugg struct {
		Suggestions []json.RawMessage `json:"suggestions"`
	}
	status = doJSON(t, client, "GET",
		ts.URL+"/v1/suggestions?schema1=sc1&schema2=sc2&threshold=0.9", nil, &sugg)
	if status != 200 || len(sugg.Suggestions) == 0 {
		t.Errorf("suggestions status=%d n=%d", status, len(sugg.Suggestions))
	}
	if status := doJSON(t, client, "GET",
		ts.URL+"/v1/suggestions?schema1=sc1&schema2=sc2&threshold=oops", nil, nil); status != http.StatusBadRequest {
		t.Errorf("bad threshold status = %d", status)
	}
}

func TestAssertionEndpoints(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	post := func(req assertionRequest) (int, assertionResponse) {
		var resp assertionResponse
		status := doJSON(t, client, "POST", ts.URL+"/v1/assertions", req, &resp)
		return status, resp
	}
	status, resp := post(assertionRequest{Schema1: "sc1", Object1: "Student", Code: 3, Schema2: "sc2", Object2: "Grad_student"})
	if status != http.StatusCreated || !resp.Consistent {
		t.Fatalf("assert: %d %+v", status, resp)
	}
	// Contradicting the held assertion yields 409 with the conflict text.
	status, resp = post(assertionRequest{Schema1: "sc1", Object1: "Student", Code: 0, Schema2: "sc2", Object2: "Grad_student"})
	if status != http.StatusConflict || resp.Consistent || len(resp.Conflicts) == 0 {
		t.Fatalf("conflict: %d %+v", status, resp)
	}
	status, _ = post(assertionRequest{Schema1: "sc1", Object1: "Ghost", Code: 1, Schema2: "sc2", Object2: "Faculty"})
	if status != http.StatusBadRequest {
		t.Errorf("unknown object status = %d", status)
	}

	rel := assertionRequest{Schema1: "sc1", Object1: "Majors", Code: 1, Schema2: "sc2", Object2: "Stud_major", Relationship: true}
	if status, _ := post(rel); status != http.StatusCreated {
		t.Errorf("relationship assert status = %d", status)
	}

	var listed struct {
		Assertions []struct {
			Statement string `json:"statement"`
			Derived   bool   `json:"derived"`
		} `json:"assertions"`
	}
	doJSON(t, client, "GET", ts.URL+"/v1/assertions?schema1=sc1&schema2=sc2", nil, &listed)
	if len(listed.Assertions) != 1 || !strings.Contains(listed.Assertions[0].Statement, "Student") {
		t.Errorf("assertions = %+v", listed.Assertions)
	}
}

func TestIntegrateSyncEndpoint(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	spec, err := os.ReadFile("../../testdata/paper.spec")
	if err != nil {
		t.Fatal(err)
	}
	var result IntegrationResult
	status := doJSON(t, client, "POST", ts.URL+"/v1/integrate",
		JobRequest{Type: "spec", Spec: string(spec)}, &result)
	if status != 200 {
		t.Fatalf("integrate status = %d", status)
	}
	if result.Name != "INT_sc1_sc2" || !strings.Contains(result.DDL, "E_Department") {
		t.Errorf("result = %s / %s", result.Name, result.DDL)
	}
	if len(result.Report) == 0 || len(result.Clusters) == 0 || result.Mappings == nil {
		t.Errorf("result missing report/clusters/mappings: %+v", result)
	}

	if status := doJSON(t, client, "POST", ts.URL+"/v1/integrate",
		JobRequest{Type: "bogus"}, nil); status != http.StatusBadRequest {
		t.Errorf("bad type status = %d", status)
	}
	// The type field defaults to "integrate" on the sync endpoint, so a
	// bare schema pair works as the manual documents.
	var bare IntegrationResult
	if status := doJSON(t, client, "POST", ts.URL+"/v1/integrate",
		JobRequest{Schema1: "sc1", Schema2: "sc2"}, &bare); status != 200 {
		t.Errorf("bare pair status = %d", status)
	} else if !strings.Contains(bare.DDL, "schema INT_sc1_sc2") {
		t.Errorf("bare pair DDL = %s", bare.DDL)
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/integrate",
		JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "ghost"}, nil); status != http.StatusNotFound {
		t.Errorf("unknown schema status = %d", status)
	}

	// The integration latency histogram observed the run.
	var metrics MetricsSnapshot
	doJSON(t, client, "GET", ts.URL+"/metrics", nil, &metrics)
	if metrics.IntegrationLatency.Count == 0 {
		t.Error("integration latency not observed")
	}
	if metrics.Requests["POST /v1/integrate"]["2xx"] != 2 {
		t.Errorf("request metrics = %v", metrics.Requests)
	}
}

func TestJobsEndpoints(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	var job Job
	status := doJSON(t, client, "POST", ts.URL+"/v1/jobs",
		JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}, &job)
	if status != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: %d %+v", status, job)
	}

	// Poll until terminal.
	for i := 0; i < 500; i++ {
		if doJSON(t, client, "GET", ts.URL+"/v1/jobs/"+job.ID, nil, &job); job.State.Terminal() {
			break
		}
	}
	if job.State != JobDone || job.Result == nil || job.Result.Name != "INT_sc1_sc2" {
		t.Fatalf("job = %+v", job)
	}

	var list struct {
		Jobs []Job `json:"jobs"`
	}
	doJSON(t, client, "GET", ts.URL+"/v1/jobs", nil, &list)
	if len(list.Jobs) != 1 {
		t.Errorf("jobs = %+v", list.Jobs)
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/jobs/ghost", nil, nil); status != http.StatusNotFound {
		t.Errorf("missing job status = %d", status)
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/jobs", JobRequest{Type: "nope"}, nil); status != http.StatusBadRequest {
		t.Errorf("bad job status = %d", status)
	}

	// A failing job surfaces its error in the job record, not over HTTP.
	doJSON(t, client, "POST", ts.URL+"/v1/jobs", JobRequest{Type: "spec", Spec: "schemas ghost1 ghost2"}, &job)
	for i := 0; i < 500; i++ {
		if doJSON(t, client, "GET", ts.URL+"/v1/jobs/"+job.ID, nil, &job); job.State.Terminal() {
			break
		}
	}
	if job.State != JobFailed || job.Error == "" {
		t.Errorf("failed job = %+v", job)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t)
	resp, err := ts.Client().Post(ts.URL+"/healthz", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestQueueFullOverHTTP(t *testing.T) {
	srv := New(Config{Workers: 1, QueueCapacity: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	// Slow jobs: a big spec run takes a moment; saturate with a burst and
	// expect at least one 503. Use many submissions to make the race
	// deterministic enough.
	spec := "schemas sc1 sc2\nassert Department 1 Department"
	got503 := false
	for i := 0; i < 200 && !got503; i++ {
		status := doJSON(t, client, "POST", ts.URL+"/v1/jobs", JobRequest{Type: "spec", Spec: spec}, nil)
		switch status {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			got503 = true
		default:
			t.Fatalf("unexpected status %d", status)
		}
	}
	if !got503 {
		t.Skip("queue never filled; timing dependent")
	}
}

// TestErrStatusIgnoresHostileNames: status codes are classified by typed
// errors, so a schema name that embeds classifier-looking text ("journal:",
// "not found") must not steer a missing-schema 404 into anything else.
func TestErrStatusIgnoresHostileNames(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	for _, name := range []string{"journal: evil", "looks not found-ish"} {
		req := equivalenceRequest{Schema1: name, Attr1: "X.Y", Schema2: name, Attr2: "X.Y"}
		if status := doJSON(t, client, "POST", ts.URL+"/v1/equivalences", req, nil); status != http.StatusNotFound {
			t.Errorf("equivalence on missing schema %q: status %d, want 404", name, status)
		}
		u := ts.URL + "/v1/resemblance?schema1=" + url.QueryEscape(name) + "&schema2=" + url.QueryEscape(name)
		if status := doJSON(t, client, "GET", u, nil, nil); status != http.StatusNotFound {
			t.Errorf("resemblance on missing schema %q: status %d, want 404", name, status)
		}
	}
}

package server

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// JobState is a job's lifecycle position. Queued and Running are
// transient; Done, Failed and Canceled are terminal.
type JobState string

// The job states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobRequest is the payload of one integration job. Exactly one of two
// forms is used: Spec carries a self-contained batch specification
// (batch.ParseSpec format); otherwise Schema1/Schema2 name a pair to
// integrate from the workspace's declared equivalences and assertions.
type JobRequest struct {
	// Type is "integrate" (workspace pair) or "spec" (batch spec).
	Type    string `json:"type"`
	Schema1 string `json:"schema1,omitempty"`
	Schema2 string `json:"schema2,omitempty"`
	Spec    string `json:"spec,omitempty"`
}

// Validate checks the request shape before it is queued.
func (r JobRequest) Validate() error {
	switch r.Type {
	case "integrate":
		if r.Schema1 == "" || r.Schema2 == "" {
			return fmt.Errorf("server: integrate job needs schema1 and schema2")
		}
	case "spec":
		if r.Spec == "" {
			return fmt.Errorf("server: spec job needs a spec body")
		}
	default:
		return fmt.Errorf("server: unknown job type %q (want integrate or spec)", r.Type)
	}
	return nil
}

// Job is one queued integration. Snapshot copies are handed out by the
// queue; the worker goroutine owns the live record.
type Job struct {
	ID      string     `json:"id"`
	Request JobRequest `json:"request"`
	State   JobState   `json:"state"`
	// Error explains a failed job.
	Error string `json:"error,omitempty"`
	// Result is set when State is done.
	Result *IntegrationResult `json:"result,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// JobExecutor runs one job's work, returning the integration outcome.
type JobExecutor func(ctx context.Context, req JobRequest) (*IntegrationResult, error)

// Queue is a bounded asynchronous job queue over a fixed worker pool.
// Submit enqueues (rejecting when the buffer is full), workers drain in
// FIFO order, and Shutdown stops intake, cancels the workers' context and
// waits for in-flight jobs. Jobs still queued at shutdown become canceled.
type Queue struct {
	exec    JobExecutor
	jobs    chan *Job
	timeout time.Duration

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	byID   map[string]*Job
	order  []string
	nextID int
	closed bool
	// depth is the number of jobs submitted but not yet terminal.
	depth int

	// observe, when set, is called after every state transition with a
	// snapshot (metrics hook).
	observe func(Job)
}

// NewQueue starts a queue with the given worker count and buffer capacity.
// timeout bounds each job's execution; 0 means no per-job limit.
func NewQueue(workers, capacity int, timeout time.Duration, exec JobExecutor) *Queue {
	if workers < 1 {
		workers = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		exec:    exec,
		jobs:    make(chan *Job, capacity),
		timeout: timeout,
		cancel:  cancel,
		byID:    map[string]*Job{},
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker(ctx)
	}
	return q
}

// SetObserver installs a state-transition hook (call before serving).
func (q *Queue) SetObserver(fn func(Job)) { q.observe = fn }

// Submit validates and enqueues a job, returning its snapshot. It fails
// when the queue buffer is full or the queue is shut down.
func (q *Queue) Submit(req JobRequest) (Job, error) {
	if err := req.Validate(); err != nil {
		return Job{}, err
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return Job{}, fmt.Errorf("server: queue is shut down")
	}
	q.nextID++
	job := &Job{
		ID:      fmt.Sprintf("job-%d", q.nextID),
		Request: req,
		State:   JobQueued,
		Created: time.Now().UTC(),
	}
	select {
	case q.jobs <- job:
	default:
		q.nextID-- // not enqueued; reuse the ID
		q.mu.Unlock()
		return Job{}, fmt.Errorf("server: job queue is full (capacity %d)", cap(q.jobs))
	}
	q.byID[job.ID] = job
	q.order = append(q.order, job.ID)
	q.depth++
	snap := *job
	q.mu.Unlock()
	q.notify(snap)
	return snap, nil
}

// Get returns a snapshot of the identified job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.byID[id]
	if !ok {
		return Job{}, false
	}
	return *job, true
}

// List returns snapshots of every job in submission order.
func (q *Queue) List() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.byID[id])
	}
	return out
}

// Depth returns the number of non-terminal jobs (queued + running).
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

func (q *Queue) notify(snap Job) {
	if q.observe != nil {
		q.observe(snap)
	}
}

// transition updates a job under the lock and reports the snapshot.
func (q *Queue) transition(job *Job, fn func(*Job)) {
	q.mu.Lock()
	fn(job)
	if job.State.Terminal() {
		q.depth--
	}
	snap := *job
	q.mu.Unlock()
	q.notify(snap)
}

func (q *Queue) worker(ctx context.Context) {
	defer q.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case job, ok := <-q.jobs:
			if !ok {
				return
			}
			q.runOne(ctx, job)
		}
	}
}

func (q *Queue) runOne(ctx context.Context, job *Job) {
	if ctx.Err() != nil {
		q.transition(job, func(j *Job) {
			j.State = JobCanceled
			j.Error = "queue shut down before the job ran"
			now := time.Now().UTC()
			j.Finished = &now
		})
		return
	}
	q.transition(job, func(j *Job) {
		j.State = JobRunning
		now := time.Now().UTC()
		j.Started = &now
	})
	runCtx := ctx
	if q.timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, q.timeout)
		defer cancel()
	}
	res, err := q.exec(runCtx, job.Request)
	q.transition(job, func(j *Job) {
		now := time.Now().UTC()
		j.Finished = &now
		if err != nil {
			j.State = JobFailed
			j.Error = err.Error()
			return
		}
		j.State = JobDone
		j.Result = res
	})
}

// Shutdown stops intake and waits for the workers to drain in-flight work,
// up to the context deadline; jobs never started are marked canceled. It
// returns the context's error when the deadline cuts the wait short.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		q.cancel() // force workers to stop at the next checkpoint
		<-done
	}
	// Anything still buffered never ran.
	for job := range q.jobs {
		q.transition(job, func(j *Job) {
			j.State = JobCanceled
			j.Error = "queue shut down before the job ran"
			now := time.Now().UTC()
			j.Finished = &now
		})
	}
	q.cancel()
	return err
}

package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// The queue's rejection reasons. Handlers classify them with errors.Is —
// never by message text, which can embed user-controlled input.
var (
	errQueueFull   = errors.New("job queue is full")
	errQueueClosed = errors.New("queue is shut down")
)

// JobState is a job's lifecycle position. Queued and Running are
// transient; Done, Failed, Canceled and Interrupted are terminal.
type JobState string

// The job states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
	// JobInterrupted marks a job that was running when the process died
	// (or was torn down); the work may or may not have completed, so the
	// job is safe to resubmit — integration is idempotent.
	JobInterrupted JobState = "interrupted"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled || s == JobInterrupted
}

// Retryable reports whether resubmitting the job's request makes sense.
func (s JobState) Retryable() bool { return s == JobInterrupted || s == JobCanceled }

// JobRequest is the payload of one integration job. Exactly one of two
// forms is used: Spec carries a self-contained batch specification
// (batch.ParseSpec format); otherwise Schema1/Schema2 name a pair to
// integrate from the workspace's declared equivalences and assertions.
type JobRequest struct {
	// Type is "integrate" (workspace pair) or "spec" (batch spec).
	Type    string `json:"type"`
	Schema1 string `json:"schema1,omitempty"`
	Schema2 string `json:"schema2,omitempty"`
	Spec    string `json:"spec,omitempty"`
}

// Validate checks the request shape before it is queued.
func (r JobRequest) Validate() error {
	switch r.Type {
	case "integrate":
		if r.Schema1 == "" || r.Schema2 == "" {
			return fmt.Errorf("server: integrate job needs schema1 and schema2")
		}
	case "spec":
		if r.Spec == "" {
			return fmt.Errorf("server: spec job needs a spec body")
		}
	default:
		return fmt.Errorf("server: unknown job type %q (want integrate or spec)", r.Type)
	}
	return nil
}

// Job is one queued integration. Snapshot copies are handed out by the
// queue; the worker goroutine owns the live record.
type Job struct {
	ID      string     `json:"id"`
	Request JobRequest `json:"request"`
	State   JobState   `json:"state"`
	// Error explains a failed job.
	Error string `json:"error,omitempty"`
	// Result is set when State is done.
	Result *IntegrationResult `json:"result,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// JobExecutor runs one job's work, returning the integration outcome.
type JobExecutor func(ctx context.Context, req JobRequest) (*IntegrationResult, error)

// Queue is a bounded asynchronous job queue over a fixed worker pool.
// Submit enqueues (rejecting when the buffer is full), workers drain in
// FIFO order, and Shutdown stops intake, cancels the workers' context and
// waits for in-flight jobs. Jobs still queued at shutdown become canceled.
type Queue struct {
	exec    JobExecutor
	jobs    chan *Job
	timeout time.Duration

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	byID   map[string]*Job // guarded by mu
	order  []string        // guarded by mu
	nextID int             // guarded by mu
	closed bool            // guarded by mu
	// depth is the number of jobs submitted but not yet terminal.
	depth int // guarded by mu

	// observe, when set, is called after every state transition with a
	// snapshot (metrics hook). The callback itself runs outside the lock.
	observe func(Job) // guarded by mu

	// persist, when set, journals submissions (write-ahead, before the
	// job enters the buffer) and start/finish transitions. Cancellations
	// caused by queue teardown are deliberately not journaled: a job whose
	// log ends at "submitted" is re-enqueued by the next process, one
	// whose log ends at "started" comes back as interrupted.
	persist func(op string, v any) error // guarded by mu
	// persistErr receives journal failures on paths that cannot reject
	// (state transitions); nil drops them.
	persistErr func(error) // guarded by mu
	// maxJobs, when positive, caps queued+running jobs — the tenant's quota
	// envelope (429), distinct from the buffer capacity (503, transient).
	// Replica queues leave it 0: replicated records must always apply.
	maxJobs int // guarded by mu
}

// NewQueue starts a queue with the given worker count and buffer capacity.
// timeout bounds each job's execution; 0 means no per-job limit.
func NewQueue(workers, capacity int, timeout time.Duration, exec JobExecutor) *Queue {
	if workers < 1 {
		workers = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		exec:    exec,
		jobs:    make(chan *Job, capacity),
		timeout: timeout,
		cancel:  cancel,
		byID:    map[string]*Job{},
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker(ctx)
	}
	return q
}

// SetObserver installs a state-transition hook. Workers may already be
// draining restored jobs when the hook is wired, so the write takes the
// lock like any other.
func (q *Queue) SetObserver(fn func(Job)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.observe = fn
}

// SetPersist installs the journaling hooks (call before serving). onErr
// receives journal failures from state transitions, which cannot be
// rejected; submission failures are returned to the submitter instead.
func (q *Queue) SetPersist(fn func(op string, v any) error, onErr func(error)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.persist = fn
	q.persistErr = onErr
}

// SetMaxJobs installs the queued+running quota (0 = unlimited). Call
// before the queue is shared, or from the promotion path where replica
// queues become writable.
func (q *Queue) SetMaxJobs(max int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.maxJobs = max
}

// Submit validates and enqueues a job, returning its snapshot. It fails
// when the workspace's job quota or the queue buffer is full, or the queue
// is shut down.
func (q *Queue) Submit(req JobRequest) (Job, error) {
	if err := req.Validate(); err != nil {
		return Job{}, err
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return Job{}, fmt.Errorf("server: %w", errQueueClosed)
	}
	// The quota rejects before journaling for the same reason the buffer
	// check does: a refused job must never reach the log.
	if depth, max := q.depth, q.maxJobs; max > 0 && depth >= max {
		q.mu.Unlock()
		return Job{}, fmt.Errorf("server: job %w: %d jobs queued or running (max %d)", ErrQuota, depth, max)
	}
	// Reject a full buffer before journaling, so a rejected job never
	// reaches the log (and would not be resurrected on restart). Workers
	// only drain the buffer, so the room observed here cannot vanish
	// before the send below.
	if len(q.jobs) == cap(q.jobs) {
		q.mu.Unlock()
		return Job{}, fmt.Errorf("server: %w (capacity %d)", errQueueFull, cap(q.jobs))
	}
	q.nextID++
	job := &Job{
		ID:      fmt.Sprintf("job-%d", q.nextID),
		Request: req,
		State:   JobQueued,
		Created: time.Now().UTC(),
	}
	if q.persist != nil {
		if err := q.persist(opJobSubmit, jobSubmitRec{ID: job.ID, Request: req, Created: job.Created}); err != nil {
			// The ID is burned, never reused: if the journal could not roll
			// the failed record back (it is sticky-broken then), a reused ID
			// would collide with that record on replay.
			q.mu.Unlock()
			return Job{}, fmt.Errorf("server: job not accepted, journal unavailable: %w", err)
		}
	}
	select {
	case q.jobs <- job:
	default:
		// Unreachable: capacity was checked under the lock above. The ID is
		// burned here too — its submit record may already be journaled.
		q.mu.Unlock()
		return Job{}, fmt.Errorf("server: %w (capacity %d)", errQueueFull, cap(q.jobs))
	}
	q.byID[job.ID] = job
	q.order = append(q.order, job.ID)
	q.depth++
	snap := *job
	q.mu.Unlock()
	q.notify(snap)
	return snap, nil
}

// Get returns a snapshot of the identified job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.byID[id]
	if !ok {
		return Job{}, false
	}
	return *job, true
}

// List returns snapshots of every job in submission order.
func (q *Queue) List() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, *q.byID[id])
	}
	return out
}

// Depth returns the number of non-terminal jobs (queued + running).
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// notify reports a transition to the observer. The hook is captured under
// the lock but invoked outside it: the observer feeds the metrics
// registry, which takes its own lock.
func (q *Queue) notify(snap Job) {
	q.mu.Lock()
	fn := q.observe
	q.mu.Unlock()
	if fn != nil {
		fn(snap)
	}
}

// transition updates a job under the lock, journals it under persistOp
// (when set and a journal is attached) and reports the snapshot. Holding
// the lock across the journal append keeps the log order identical to the
// in-memory order.
func (q *Queue) transition(job *Job, persistOp string, fn func(*Job)) {
	q.mu.Lock()
	fn(job)
	if job.State.Terminal() {
		q.depth--
	}
	snap := *job
	if persistOp != "" && q.persist != nil {
		var rec any
		switch persistOp {
		case opJobStart:
			rec = jobStartRec{ID: snap.ID, Started: *snap.Started}
		case opJobFinish:
			rec = jobFinishRec{ID: snap.ID, State: snap.State, Error: snap.Error,
				Result: snap.Result, Finished: *snap.Finished}
		}
		if err := q.persist(persistOp, rec); err != nil && q.persistErr != nil {
			q.persistErr(err)
		}
	}
	q.mu.Unlock()
	q.notify(snap)
}

func (q *Queue) worker(ctx context.Context) {
	defer q.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case job, ok := <-q.jobs:
			if !ok {
				return
			}
			q.runOne(ctx, job)
		}
	}
}

func (q *Queue) runOne(ctx context.Context, job *Job) {
	if ctx.Err() != nil {
		// Queue torn down before the job ran. With a journal attached the
		// job stays "queued" on disk (no terminal record) and the next
		// process re-enqueues it; in memory it reads canceled.
		q.transition(job, "", func(j *Job) {
			j.State = JobCanceled
			j.Error = "queue shut down before the job ran"
			now := time.Now().UTC()
			j.Finished = &now
		})
		return
	}
	q.transition(job, opJobStart, func(j *Job) {
		j.State = JobRunning
		now := time.Now().UTC()
		j.Started = &now
	})
	runCtx := ctx
	if q.timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, q.timeout)
		defer cancel()
	}
	res, err := q.exec(runCtx, job.Request)
	if err != nil && ctx.Err() != nil {
		// The queue's own context died mid-run (shutdown or Kill), not the
		// per-job timeout. Journaling no finish record leaves the log at
		// "started", which replays as interrupted — exactly what happened.
		q.transition(job, "", func(j *Job) {
			j.State = JobInterrupted
			j.Error = "job interrupted by shutdown; resubmit to retry"
			now := time.Now().UTC()
			j.Finished = &now
		})
		return
	}
	q.transition(job, opJobFinish, func(j *Job) {
		now := time.Now().UTC()
		j.Finished = &now
		if err != nil {
			j.State = JobFailed
			j.Error = err.Error()
			return
		}
		j.State = JobDone
		j.Result = res
	})
}

// Shutdown stops intake and waits for the workers to drain in-flight work,
// up to the context deadline; jobs never started are marked canceled. It
// returns the context's error when the deadline cuts the wait short.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		q.cancel() // force workers to stop at the next checkpoint
		<-done
	}
	// Anything still buffered never ran. The journal keeps these at
	// "submitted" — no terminal record is written — so a durable queue's
	// leftovers are re-enqueued by the next process; in memory they read
	// canceled either way.
	for job := range q.jobs {
		q.transition(job, "", func(j *Job) {
			j.State = JobCanceled
			j.Error = "queue shut down before the job ran"
			now := time.Now().UTC()
			j.Finished = &now
		})
	}
	q.cancel()
	return err
}

// Kill tears the queue down without draining: intake closes and the worker
// context is canceled immediately. Used by Server.Kill to simulate a
// crash; jobs in flight become interrupted in memory and stay "started" in
// the journal.
func (q *Queue) Kill() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.jobs)
	}
	q.mu.Unlock()
	q.cancel()
	q.wg.Wait()
}

// Restore seeds the queue with jobs recovered from the journal, before the
// queue is exposed to traffic. Queued (and running — i.e. interrupted mid-
// flight) jobs are re-enqueued or marked interrupted; terminal jobs keep
// their recorded state. nextID continues the recovered ID sequence.
func (q *Queue) Restore(jobs []Job, nextID int) (requeued, interrupted int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if nextID > q.nextID {
		q.nextID = nextID
	}
	for i := range jobs {
		job := jobs[i] // private copy; the queue owns the live record
		switch job.State {
		case JobQueued:
			select {
			case q.jobs <- &job:
				q.depth++
				requeued++
			default:
				// The recovered backlog exceeds this process's buffer.
				job.State = JobInterrupted
				job.Error = "job recovered but the queue buffer is smaller than the backlog; resubmit to retry"
				now := time.Now().UTC()
				job.Finished = &now
				interrupted++
			}
		case JobRunning:
			job.State = JobInterrupted
			job.Error = "job interrupted by server restart; resubmit to retry"
			now := time.Now().UTC()
			job.Finished = &now
			interrupted++
		}
		q.byID[job.ID] = &job
		q.order = append(q.order, job.ID)
	}
	return requeued, interrupted
}

// snapshotState returns every job plus the ID counter for compaction.
func (q *Queue) snapshotState() ([]Job, int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	jobs := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		jobs = append(jobs, *q.byID[id])
	}
	return jobs, q.nextID
}

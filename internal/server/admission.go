package server

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Admission-control errors. Handlers and clients classify them with
// errors.Is, never by message text.
var (
	// ErrQuota marks a request rejected because a per-workspace quota
	// (schemas, jobs, journaled bytes) is exhausted; mapped to 429.
	ErrQuota = errors.New("quota exceeded")
	// ErrRateLimited marks a request rejected by a token bucket; mapped
	// to 429 with a Retry-After computed from the bucket's actual deficit.
	ErrRateLimited = errors.New("rate limited")
	// ErrBodyTooLarge marks a request body that overflowed the configured
	// cap; mapped to 413.
	ErrBodyTooLarge = errors.New("request body too large")
)

// Limits bounds what one workspace (and one API key) may consume. The zero
// value of every field means "unlimited", so a zero Limits disables
// admission control entirely and the server behaves exactly as before.
type Limits struct {
	// MaxSchemas caps how many schemas a workspace may hold at once.
	MaxSchemas int
	// MaxJobs caps a workspace's queued-plus-running jobs. Distinct from
	// the queue's buffer capacity: the buffer answers 503 (transient — the
	// workers will drain it), the quota answers 429 (the tenant's envelope
	// is full).
	MaxJobs int
	// MaxJournalBytes caps a workspace's journal file length. Checked in
	// the admission middleware before any handler work; compaction shrinks
	// the journal, so a workspace over quota recovers on its own once
	// traffic stops.
	MaxJournalBytes int64
	// MaxBodyBytes caps every mutation request body (default 4 MiB);
	// overflow is 413 with ErrBodyTooLarge.
	MaxBodyBytes int64
	// WorkspaceRate is the steady per-workspace request rate (tokens per
	// second) across the whole data plane; 0 disables workspace rate
	// limiting.
	WorkspaceRate float64
	// WorkspaceBurst is the workspace bucket's capacity (default
	// max(1, 2*WorkspaceRate)).
	WorkspaceBurst int
	// KeyRate is the steady per-API-key request rate; 0 disables per-key
	// rate limiting. Meaningful only when a keys file is installed.
	KeyRate float64
	// KeyBurst is the per-key bucket's capacity (default max(1, 2*KeyRate)).
	KeyBurst int
}

func (l Limits) withDefaults() Limits {
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = maxBodyBytes
	}
	if l.WorkspaceRate > 0 && l.WorkspaceBurst <= 0 {
		l.WorkspaceBurst = defaultBurst(l.WorkspaceRate)
	}
	if l.KeyRate > 0 && l.KeyBurst <= 0 {
		l.KeyBurst = defaultBurst(l.KeyRate)
	}
	return l
}

func defaultBurst(rate float64) int {
	b := int(math.Ceil(2 * rate))
	if b < 1 {
		b = 1
	}
	return b
}

// Retry-After bounds. Every 429/503 the server writes carries a
// Retry-After inside [minRetryAfterSeconds, maxRetryAfterSeconds]: the
// floor keeps a freshly started server (empty latency histogram, tiny
// bucket deficit) from telling clients to retry in 0 seconds — an
// invitation to hammer — and the ceiling keeps a deep backlog from telling
// them to go away for hours.
const (
	minRetryAfterSeconds = 1
	maxRetryAfterSeconds = 300
)

// clampRetryAfter bounds a Retry-After estimate to the sane window.
func clampRetryAfter(secs int) int {
	if secs < minRetryAfterSeconds {
		return minRetryAfterSeconds
	}
	if secs > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	return secs
}

// bucket is a token bucket over the monotonic clock: tokens accrue at
// rate per second up to burst, and each admitted request spends one.
// Refill happens lazily on take, so an idle bucket costs nothing.
type bucket struct {
	rate  float64
	burst float64

	mu     sync.Mutex
	tokens float64   // guarded by mu
	last   time.Time // guarded by mu
}

func newBucket(rate float64, burst int) *bucket {
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take spends one token if available. On refusal it reports how long the
// caller must wait for one token to accrue — the actual deficit, which is
// what an honest Retry-After is made of. now must come from time.Now():
// the arithmetic runs on Go's monotonic clock reading, so wall-clock jumps
// never mint or burn tokens.
//
// Every admitted request passes through here; BenchmarkBucketTake asserts
// zero allocations and hotalloc enforces it at vet time.
//
//sit:hotpath
func (b *bucket) take(now time.Time) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
			b.tokens = math.Min(b.burst, b.tokens+elapsed*b.rate)
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// rateLimitedBody is the static 429 payload: the rejection path runs
// before any handler work and allocates next to nothing.
const rateLimitedBody = `{"error":"rate limited; retry after the Retry-After delay"}` + "\n"

// writeRateLimited answers 429 with a Retry-After derived from the
// bucket's actual deficit. The body is a constant: rejections under
// overload must not cost encoder allocations.
func writeRateLimited(w http.ResponseWriter, wait time.Duration) {
	secs := clampRetryAfter(int(math.Ceil(wait.Seconds())))
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Retry-After", strconv.Itoa(secs))
	w.WriteHeader(http.StatusTooManyRequests)
	_, _ = io.WriteString(w, rateLimitedBody)
}

// --- admitters ---
//
// Every route the server registers passes through exactly one of these
// wrappers (the admission sit-vet analyzer enforces it). They run inside
// instrument (metrics/logging/timeout) and ahead of all handler work, so a
// rejected request never touches a store, a queue or a journal.

// wsHandler is a workspace-scoped handler, invoked with the resolved
// workspace after admission.
type wsHandler func(*Workspace, http.ResponseWriter, *http.Request)

// admitOpen marks a route deliberately unauthenticated and unlimited
// (health probes). The explicit wrapper keeps the route table auditable:
// an unwrapped handler is an analyzer finding, an admitOpen one is a
// decision.
func (s *Server) admitOpen(h http.HandlerFunc) http.HandlerFunc { return h }

// admitPeer guards the server-to-server replication stream: admin-scoped
// auth, but no rate limiting — the stream is flow-controlled by long
// polling, and throttling it would manufacture replication lag.
func (s *Server) admitPeer(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if _, ok := s.authorize(w, r, scopeAdmin, ""); !ok {
			return
		}
		h(w, r)
	}
}

// admitAdmin guards control-plane routes (workspace lifecycle, metrics,
// promotion): admin-scoped auth plus the per-key bucket.
func (s *Server) admitAdmin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key, ok := s.authorize(w, r, scopeAdmin, "")
		if !ok {
			return
		}
		if !s.allowKey(key, w) {
			return
		}
		h(w, r)
	}
}

// admitRead admits a data-plane read: authenticate (data scope, against
// the route's workspace), resolve the workspace, then charge the per-key
// and per-workspace buckets.
func (s *Server) admitRead(h wsHandler) http.HandlerFunc {
	return s.admitWorkspace(false, h)
}

// admitMutate admits a data-plane mutation: everything admitRead does,
// then the follower write gate and the journal-byte quota. Body decoding
// (and the body-size cap) stays in the handlers, which know each route's
// content type; the cap itself comes from s.limits via decodeBody.
func (s *Server) admitMutate(h wsHandler) http.HandlerFunc {
	return s.admitWorkspace(true, h)
}

func (s *Server) admitWorkspace(mutate bool, h wsHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("ws")
		if name == "" {
			name = DefaultWorkspace
		}
		key, ok := s.authorize(w, r, scopeData, name)
		if !ok {
			return
		}
		ws, err := s.manager.Get(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		if !s.allowKey(key, w) {
			return
		}
		if b := ws.bucket; b != nil {
			if ok, wait := b.take(time.Now()); !ok {
				s.metrics.ObserveRateLimited()
				writeRateLimited(w, wait)
				return
			}
		}
		if mutate {
			// The follower gate outranks quotas: a mutation this server
			// will not apply belongs at the leader, whatever the local
			// journal's length says.
			if s.redirectToLeader(w, r) {
				return
			}
			if max := s.limits.MaxJournalBytes; max > 0 && ws.persist != nil {
				if used := ws.persist.j.Offset(); used >= max {
					s.metrics.ObserveQuotaRejection()
					writeError(w, http.StatusTooManyRequests, fmt.Errorf(
						"server: workspace %q journal %w: %d of %d bytes used; delete data or wait for compaction",
						name, ErrQuota, used, max))
					return
				}
			}
		}
		h(ws, w, r)
	}
}

// allowKey charges the per-key token bucket (nil key: auth is disabled or
// the key set carries no per-key rate).
func (s *Server) allowKey(k *keyAuth, w http.ResponseWriter) bool {
	if k == nil || k.bucket == nil {
		return true
	}
	ok, wait := k.bucket.take(time.Now())
	if !ok {
		s.metrics.ObserveRateLimited()
		writeRateLimited(w, wait)
		return false
	}
	return true
}

// --- quota usage endpoint ---

// QuotaReport is the GET /v1/workspaces/{ws}/quota response: the effective
// limits (0 = unlimited) next to the workspace's live usage.
type QuotaReport struct {
	Workspace string      `json:"workspace"`
	Limits    QuotaLimits `json:"limits"`
	Usage     QuotaUsage  `json:"usage"`
}

// QuotaLimits is the limits half of a QuotaReport.
type QuotaLimits struct {
	MaxSchemas      int     `json:"maxSchemas"`
	MaxJobs         int     `json:"maxJobs"`
	MaxJournalBytes int64   `json:"maxJournalBytes"`
	MaxBodyBytes    int64   `json:"maxBodyBytes"`
	RatePerSecond   float64 `json:"ratePerSecond"`
	Burst           int     `json:"burst"`
}

// QuotaUsage is the usage half of a QuotaReport. JournalBytes is the
// journal's current file length — the same number the admission check
// reads, and byte-exact across crash recovery because it is recomputed
// from the file on open.
type QuotaUsage struct {
	Schemas      int   `json:"schemas"`
	Jobs         int   `json:"jobs"`
	JournalBytes int64 `json:"journalBytes"`
}

func (s *Server) handleQuotaGet(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	rep := QuotaReport{
		Workspace: ws.name,
		Limits: QuotaLimits{
			MaxSchemas:      s.limits.MaxSchemas,
			MaxJobs:         s.limits.MaxJobs,
			MaxJournalBytes: s.limits.MaxJournalBytes,
			MaxBodyBytes:    s.limits.MaxBodyBytes,
			RatePerSecond:   s.limits.WorkspaceRate,
			Burst:           s.limits.WorkspaceBurst,
		},
		Usage: QuotaUsage{
			Schemas: len(ws.store.SchemaNames()),
			Jobs:    ws.queue.Depth(),
		},
	}
	if ws.persist != nil {
		rep.Usage.JournalBytes = ws.persist.j.Offset()
	}
	writeJSON(w, http.StatusOK, rep)
}

package server

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// API-key scopes. A data key reaches the data plane of the workspaces it
// lists; an admin key reaches everything (lifecycle, metrics, replication,
// promotion, and every workspace's data plane).
const (
	scopeData  = "data"
	scopeAdmin = "admin"
)

// minKeyLen rejects trivially guessable tokens at load time.
const minKeyLen = 8

// Auth errors, classified with errors.Is.
var (
	// ErrUnauthorized marks requests with a missing or unknown API key (401).
	ErrUnauthorized = errors.New("unauthorized")
	// ErrForbidden marks authenticated requests whose key lacks the scope
	// or workspace (403).
	ErrForbidden = errors.New("forbidden")
)

// apiKeyEntry is one key in the replicated wire form: the SHA-256 of the
// token (hex), never the token itself — the journal and snapshots carry
// only hashes, so replicating the key set never ships a secret.
type apiKeyEntry struct {
	Hash  string `json:"hash"`
	Scope string `json:"scope"`
	// Workspaces lists the data-plane workspaces the key reaches; the
	// single entry "*" means all. Ignored for admin keys.
	Workspaces []string `json:"workspaces,omitempty"`
}

// setKeysRec is the journaled op_set_keys payload: the full key set,
// replacing whatever was installed before (last record wins on replay).
type setKeysRec struct {
	Keys []apiKeyEntry `json:"keys"`
}

// keyAuth is one loaded key, ready for request checks.
type keyAuth struct {
	hash       []byte // raw SHA-256 of the token
	scope      string
	all        bool            // data key valid for every workspace
	workspaces map[string]bool // nil unless scope is data and !all
	// bucket rate-limits this key across all its requests; nil when
	// Limits.KeyRate is unset.
	bucket *bucket
}

// keySet is an immutable loaded key table. Reloads swap whole sets
// atomically (Server.fileKeys / Server.replKeys), so requests never see a
// half-loaded table — but also means per-key bucket state resets on
// reload, which is the honest behavior for a changed key file.
type keySet struct {
	byHash map[string]*keyAuth
	// wire is the canonical replicated form, preserving file order.
	wire []apiKeyEntry
}

// buildKeySet compiles wire entries into a lookup table, attaching per-key
// buckets from the limits.
func buildKeySet(entries []apiKeyEntry, limits Limits) (*keySet, error) {
	ks := &keySet{byHash: make(map[string]*keyAuth, len(entries)), wire: entries}
	for i, e := range entries {
		raw, err := hex.DecodeString(e.Hash)
		if err != nil || len(raw) != sha256.Size {
			return nil, fmt.Errorf("key %d: hash is not a hex SHA-256", i+1)
		}
		if _, dup := ks.byHash[e.Hash]; dup {
			return nil, fmt.Errorf("key %d: duplicate key", i+1)
		}
		k := &keyAuth{hash: raw, scope: e.Scope}
		switch e.Scope {
		case scopeAdmin:
			k.all = true
		case scopeData:
			k.workspaces = map[string]bool{}
			for _, ws := range e.Workspaces {
				if ws == "*" {
					k.all = true
					continue
				}
				k.workspaces[ws] = true
			}
			if !k.all && len(k.workspaces) == 0 {
				return nil, fmt.Errorf("key %d: data key lists no workspaces", i+1)
			}
		default:
			return nil, fmt.Errorf("key %d: unknown scope %q (want %s or %s)", i+1, e.Scope, scopeData, scopeAdmin)
		}
		if limits.KeyRate > 0 {
			k.bucket = newBucket(limits.KeyRate, limits.KeyBurst)
		}
		ks.byHash[e.Hash] = k
	}
	return ks, nil
}

// parseKeysFile parses the -keys file format: one key per line,
//
//	<token> admin
//	<token> data <ws1,ws2,...|*>
//
// with blank lines and #-comments ignored. Tokens are hashed immediately;
// the plaintext never outlives this function.
func parseKeysFile(data []byte, limits Limits) (*keySet, error) {
	var entries []apiKeyEntry
	sc := bufio.NewScanner(bytes.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: want \"<token> <scope> [workspaces]\"", lineNo)
		}
		token, scope := fields[0], fields[1]
		if len(token) < minKeyLen {
			return nil, fmt.Errorf("line %d: token shorter than %d characters", lineNo, minKeyLen)
		}
		sum := sha256.Sum256([]byte(token))
		e := apiKeyEntry{Hash: hex.EncodeToString(sum[:]), Scope: scope}
		switch scope {
		case scopeAdmin:
			if len(fields) > 2 {
				return nil, fmt.Errorf("line %d: admin keys take no workspace list", lineNo)
			}
		case scopeData:
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: data keys need a workspace list (or *)", lineNo)
			}
			e.Workspaces = strings.Split(fields[2], ",")
		default:
			return nil, fmt.Errorf("line %d: unknown scope %q (want %s or %s)", lineNo, scope, scopeData, scopeAdmin)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("keys file defines no keys; delete the flag to disable auth")
	}
	return buildKeySet(entries, limits)
}

// requestToken extracts the presented API key: "Authorization: Bearer
// <token>" or the X-Api-Key header.
func requestToken(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(tok)
		}
		return ""
	}
	return r.Header.Get("X-Api-Key")
}

// effectiveKeys resolves which key set guards requests right now. A
// follower trusts the leader's journaled keys first — the fleet must agree
// on who may read — falling back to its own file before the first sync. A
// leader trusts its file (the journal echoes it out to followers).
func (s *Server) effectiveKeys() *keySet {
	repl, file := s.replKeys.Load(), s.fileKeys.Load()
	if s.follow.Load() != nil {
		if repl != nil {
			return repl
		}
		return file
	}
	if file != nil {
		return file
	}
	return repl
}

// authorize authenticates and authorizes a request. scope is the minimum
// scope; workspace (data scope only) is the workspace the request
// addresses. It returns the key (nil when auth is disabled) and whether
// the request may proceed; on refusal the 401/403 has been written. The
// hash comparison is constant-time: the map lookup keys on the hash of the
// *presented* token, so its timing reveals nothing about stored secrets,
// and the final compare never short-circuits.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request, scope, workspace string) (*keyAuth, bool) {
	ks := s.effectiveKeys()
	if ks == nil {
		return nil, true // no keys installed: auth disabled
	}
	token := requestToken(r)
	if token == "" {
		s.metrics.ObserveAuthFailure()
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, http.StatusUnauthorized,
			fmt.Errorf("server: %w: send an API key as \"Authorization: Bearer <key>\" or X-Api-Key", ErrUnauthorized))
		return nil, false
	}
	sum := sha256.Sum256([]byte(token))
	k := ks.byHash[hex.EncodeToString(sum[:])]
	if k == nil || subtle.ConstantTimeCompare(k.hash, sum[:]) != 1 {
		s.metrics.ObserveAuthFailure()
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, http.StatusUnauthorized, fmt.Errorf("server: %w: unknown API key", ErrUnauthorized))
		return nil, false
	}
	if scope == scopeAdmin && k.scope != scopeAdmin {
		s.metrics.ObserveAuthFailure()
		writeError(w, http.StatusForbidden, fmt.Errorf("server: %w: this route needs an admin key", ErrForbidden))
		return k, false
	}
	if scope == scopeData && k.scope == scopeData && workspace != "" && !k.all && !k.workspaces[workspace] {
		s.metrics.ObserveAuthFailure()
		writeError(w, http.StatusForbidden, fmt.Errorf("server: %w: key does not cover this workspace", ErrForbidden))
		return k, false
	}
	return k, true
}

// SetKeysFile loads (or reloads) the API-key file at path, installs it as
// the server's key set, and remembers the path for ReloadKeys. On a
// durable leader the new set is journaled (op_set_keys on the default
// workspace's journal), so followers replicate and enforce the same keys.
func (s *Server) SetKeysFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("server: read keys file: %w", err)
	}
	ks, err := parseKeysFile(data, s.limits)
	if err != nil {
		return fmt.Errorf("server: keys file %s: %w", path, err)
	}
	s.keyMu.Lock()
	s.keysPath = path
	s.keyMu.Unlock()
	s.fileKeys.Store(ks)
	s.journalKeys(ks)
	if s.log != nil {
		s.log.Info("api keys loaded", "path", path, "keys", len(ks.wire))
	}
	return nil
}

// ReloadKeys re-reads the keys file SetKeysFile installed — the SIGHUP
// handler's entry point. A parse error leaves the previous key set in
// force.
func (s *Server) ReloadKeys() error {
	s.keyMu.Lock()
	path := s.keysPath
	s.keyMu.Unlock()
	if path == "" {
		return fmt.Errorf("server: no keys file configured")
	}
	return s.SetKeysFile(path)
}

// journalKeys appends the key set to the default workspace's journal when
// it differs from the last journaled set. Leaders only: a follower's key
// set arrives through the stream it replicates. The dedupe check runs
// under keyMu but the append deliberately does not — journal I/O under an
// in-memory lock is a lockio finding — so two concurrent reloads can at
// worst journal the same set twice, and replay is last-record-wins.
func (s *Server) journalKeys(ks *keySet) {
	if s.dcfg == nil || s.follow.Load() != nil {
		return
	}
	ws, err := s.manager.Get(DefaultWorkspace)
	if err != nil || ws.persist == nil {
		return
	}
	wire, err := json.Marshal(setKeysRec{Keys: ks.wire})
	if err != nil {
		return
	}
	s.keyMu.Lock()
	if s.keysJournaled == string(wire) {
		s.keyMu.Unlock()
		return
	}
	s.keysJournaled = string(wire)
	s.keyEntries = ks.wire
	s.keyMu.Unlock()
	if _, err := ws.persist.j.Append(opSetKeys, setKeysRec{Keys: ks.wire}); err != nil && s.log != nil {
		s.log.Error("journal api keys", "error", err)
	}
}

// applyJournaledKeys installs a key set that arrived through the journal:
// recovery replay, a follower's replication stream, or a snapshot
// bootstrap. Entries are already hashes; nothing is re-journaled.
//
//sit:replay
func (s *Server) applyJournaledKeys(entries []apiKeyEntry) error {
	ks, err := buildKeySet(entries, s.limits)
	if err != nil {
		return fmt.Errorf("journaled key set: %w", err)
	}
	wire, err := json.Marshal(setKeysRec{Keys: entries})
	if err != nil {
		return err
	}
	s.replKeys.Store(ks)
	s.keyMu.Lock()
	s.keysJournaled = string(wire)
	s.keyEntries = entries
	s.keyMu.Unlock()
	return nil
}

// snapshotKeys returns the journaled key entries for inclusion in the
// named workspace's snapshot. Only the default workspace carries them (the
// key set rides its journal); nil otherwise.
func (s *Server) snapshotKeys(name string) []apiKeyEntry {
	if name != DefaultWorkspace {
		return nil
	}
	s.keyMu.Lock()
	defer s.keyMu.Unlock()
	return s.keyEntries
}

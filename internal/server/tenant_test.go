package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ecr"
	"repro/internal/errtest"
	"repro/internal/journal"
	"repro/internal/paperex"
)

func TestValidateWorkspaceName(t *testing.T) {
	accept := []string{
		"a", "default", "team-1", "Team_2", "a.b.c", "x" + strings.Repeat("y", 62),
		"0numeric", "UPPER", "mixed-Case_1.2",
	}
	for _, name := range accept {
		if err := ValidateWorkspaceName(name); err != nil {
			t.Errorf("ValidateWorkspaceName(%q) = %v, want nil", name, err)
		}
	}
	reject := []struct {
		name, why string
	}{
		{"", "empty"},
		{strings.Repeat("x", MaxWorkspaceNameLen+1), "too long"},
		{"a/b", "path separator"},
		{`a\b`, "backslash"},
		{"..", "dot-dot"},
		{"a..b", "embedded dot-dot"},
		{"../etc", "traversal"},
		{".hidden", "leading dot"},
		{"-flag", "leading dash"},
		{"sp ace", "space"},
		{"tab\tname", "tab"},
		{"unié", "non-ASCII"},
		{"semi;colon", "punctuation"},
		{"null\x00byte", "NUL"},
	}
	for _, tc := range reject {
		if err := ValidateWorkspaceName(tc.name); err == nil {
			t.Errorf("ValidateWorkspaceName(%q) accepted (%s)", tc.name, tc.why)
		}
	}
}

// uploadPaperSchemasAt uploads the paper's two schemas under an API root
// that already carries the workspace prefix (uploadPaperSchemas assumes the
// unprefixed legacy routes).
func uploadPaperSchemasAt(t testing.TB, client *http.Client, root string) {
	t.Helper()
	ddl, err := os.ReadFile("../../testdata/paper.ecr")
	if err != nil {
		t.Fatal(err)
	}
	if status := doJSON(t, client, "POST", root+"/schemas", map[string]string{"ddl": string(ddl)}, nil); status != http.StatusCreated {
		t.Fatalf("upload under %s: status %d", root, status)
	}
}

// populatePaperWorkspaceAt replays the paper's running example under a
// workspace-prefixed API root.
func populatePaperWorkspaceAt(t testing.TB, client *http.Client, root string) {
	t.Helper()
	uploadPaperSchemasAt(t, client, root)
	for _, pair := range [][2]string{
		{"Student.Name", "Grad_student.Name"},
		{"Student.Name", "Faculty.Name"},
		{"Student.GPA", "Grad_student.GPA"},
		{"Department.Dname", "Department.Dname"},
		{"Majors.Since", "Stud_major.Since"},
	} {
		req := equivalenceRequest{Schema1: "sc1", Attr1: pair[0], Schema2: "sc2", Attr2: pair[1]}
		if status := doJSON(t, client, "POST", root+"/equivalences", req, nil); status != http.StatusCreated {
			t.Fatalf("declare %v under %s: status %d", pair, root, status)
		}
	}
	for _, a := range paperAssertions() {
		if status := doJSON(t, client, "POST", root+"/assertions", a, nil); status != http.StatusCreated {
			t.Fatalf("assert %+v under %s: status %d", a, root, status)
		}
	}
}

// request performs a request and returns the response (status plus headers;
// doJSON drops the headers).
func request(t testing.TB, client *http.Client, method, url string, v any) *http.Response {
	t.Helper()
	var body *bytes.Reader
	var req *http.Request
	var err error
	if v != nil {
		data, merr := json.Marshal(v)
		if merr != nil {
			t.Fatal(merr)
		}
		body = bytes.NewReader(data)
		req, err = http.NewRequest(method, url, body)
	} else {
		req, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestWorkspaceLifecycleHTTP(t *testing.T) {
	srv := New(Config{Workers: 1, MaxWorkspaces: 3})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	client := ts.Client()

	// Create: 201 with a Location header.
	resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: "alpha"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/workspaces/alpha" {
		t.Errorf("Location = %q", loc)
	}

	// Duplicate: 409. Invalid name: 400. Over cap (default + alpha + one
	// more = 3): the fourth is 403.
	if resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: "alpha"}); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create status = %d, want 409", resp.StatusCode)
	}
	if resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: "../oops"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid-name status = %d, want 400", resp.StatusCode)
	}
	if resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: "beta"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("third create status = %d", resp.StatusCode)
	}
	if resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: "gamma"}); resp.StatusCode != http.StatusForbidden {
		t.Errorf("over-cap status = %d, want 403", resp.StatusCode)
	}

	// List is name-sorted and includes the default.
	var list struct {
		Workspaces []workspaceInfo `json:"workspaces"`
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/workspaces", nil, &list); status != http.StatusOK {
		t.Fatalf("list status = %d", status)
	}
	var names []string
	for _, ws := range list.Workspaces {
		names = append(names, ws.Name)
	}
	if want := []string{"alpha", "beta", "default"}; fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("list = %v, want %v", names, want)
	}

	// Get: known 200, unknown 404.
	var info workspaceInfo
	if status := doJSON(t, client, "GET", ts.URL+"/v1/workspaces/alpha", nil, &info); status != http.StatusOK || info.Name != "alpha" {
		t.Errorf("get alpha = %d %+v", status, info)
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/workspaces/nope", nil, nil); status != http.StatusNotFound {
		t.Errorf("get unknown status = %d, want 404", status)
	}

	// Delete: default refused with 400, unknown 404, real one 200 and its
	// routes 404 afterwards (freeing a cap slot).
	if resp := request(t, client, "DELETE", ts.URL+"/v1/workspaces/default", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("delete default status = %d, want 400", resp.StatusCode)
	}
	if resp := request(t, client, "DELETE", ts.URL+"/v1/workspaces/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete unknown status = %d, want 404", resp.StatusCode)
	}
	if resp := request(t, client, "DELETE", ts.URL+"/v1/workspaces/beta", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("delete beta status = %d", resp.StatusCode)
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/workspaces/beta/schemas", nil, nil); status != http.StatusNotFound {
		t.Errorf("deleted workspace data plane status = %d, want 404", status)
	}
	if resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: "gamma"}); resp.StatusCode != http.StatusCreated {
		t.Errorf("create after delete status = %d, want 201 (slot freed)", resp.StatusCode)
	}
}

// TestWorkspaceIsolation uploads same-named schemas with different shapes
// into two workspaces and checks neither sees the other's data — and that
// the unprefixed routes keep addressing the default workspace.
func TestWorkspaceIsolation(t *testing.T) {
	srv, ts := testServer(t)
	client := ts.Client()

	for _, name := range []string{"red", "blue"} {
		if resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: name}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d", name, resp.StatusCode)
		}
	}
	redDDL := "schema mine\nentity Red {\n attr Id: int key\n}\n"
	blueDDL := "schema mine\nentity Blue {\n attr Id: int key\n attr Hue: char\n}\n"
	if status := doJSON(t, client, "POST", ts.URL+"/v1/workspaces/red/schemas", map[string]string{"ddl": redDDL}, nil); status != http.StatusCreated {
		t.Fatalf("red upload: %d", status)
	}
	// The same schema name uploads cleanly in another workspace: no shared
	// namespace, no conflict.
	if status := doJSON(t, client, "POST", ts.URL+"/v1/workspaces/blue/schemas", map[string]string{"ddl": blueDDL}, nil); status != http.StatusCreated {
		t.Fatalf("blue upload: %d", status)
	}

	var got struct {
		DDL string `json:"ddl"`
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/workspaces/red/schemas/mine", nil, &got); status != http.StatusOK {
		t.Fatalf("red get: %d", status)
	}
	if !strings.Contains(got.DDL, "Red") || strings.Contains(got.DDL, "Blue") {
		t.Errorf("red schema bled: %s", got.DDL)
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/workspaces/blue/schemas/mine", nil, &got); status != http.StatusOK {
		t.Fatalf("blue get: %d", status)
	}
	if !strings.Contains(got.DDL, "Blue") || strings.Contains(got.DDL, "Red") {
		t.Errorf("blue schema bled: %s", got.DDL)
	}

	// The default workspace saw none of it, and the unprefixed alias reads
	// the default workspace.
	if names := srv.Store().SchemaNames(); len(names) != 0 {
		t.Errorf("default workspace schemas = %v, want none", names)
	}
	if status := doJSON(t, client, "GET", ts.URL+"/v1/schemas/mine", nil, nil); status != http.StatusNotFound {
		t.Errorf("unprefixed get of tenant schema = %d, want 404", status)
	}
}

// TestConcurrentIntegrationIndependentLocks pins the sharding guarantee:
// one workspace's store can sit write-locked indefinitely while another
// workspace's integration completes. Under the old architecture both ran
// behind one global RWMutex and this test would deadlock-timeout.
func TestConcurrentIntegrationIndependentLocks(t *testing.T) {
	srv, ts := testServer(t)
	client := ts.Client()

	if resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: "busy"}); resp.StatusCode != http.StatusCreated {
		t.Fatal("create busy")
	}
	uploadPaperSchemasAt(t, client, ts.URL+"/v1/workspaces/busy")

	// Write-lock the DEFAULT workspace's store and hold it.
	st := srv.Store()
	st.mu.Lock()
	defer st.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		var res IntegrationResult
		status := doJSON(t, client, "POST", ts.URL+"/v1/workspaces/busy/integrate",
			JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}, &res)
		if status != http.StatusOK {
			done <- fmt.Errorf("integrate status = %d", status)
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("integration in workspace busy blocked behind another workspace's lock")
	}
}

// TestWorkspaceHammer drives N workspaces concurrently through their whole
// life — create, upload, equivalence, assertion, integrate, verify, delete —
// under -race, asserting no cross-tenant bleed.
func TestWorkspaceHammer(t *testing.T) {
	srv := New(Config{Workers: 2, QueueCapacity: 16, MaxWorkspaces: 32})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	client := ts.Client()

	const tenants = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, tenants*rounds)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := fmt.Sprintf("tenant-%d-%d", i, r)
				base := ts.URL + "/v1/workspaces/" + name
				if resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: name}); resp.StatusCode != http.StatusCreated {
					errs <- fmt.Errorf("%s: create %d", name, resp.StatusCode)
					return
				}
				uploadPaperSchemasAt(t, client, base)
				marker := fmt.Sprintf("schema only%d\nentity Mark%d {\n attr Id: int key\n}\n", i, i)
				if status := doJSON(t, client, "POST", base+"/schemas", map[string]string{"ddl": marker}, nil); status != http.StatusCreated {
					errs <- fmt.Errorf("%s: marker upload %d", name, status)
					return
				}
				req := equivalenceRequest{Schema1: "sc1", Attr1: "Student.Name", Schema2: "sc2", Attr2: "Grad_student.Name"}
				if status := doJSON(t, client, "POST", base+"/equivalences", req, nil); status != http.StatusCreated {
					errs <- fmt.Errorf("%s: equivalence %d", name, status)
					return
				}
				a := assertionRequest{Schema1: "sc1", Object1: "Student", Code: 3, Schema2: "sc2", Object2: "Grad_student"}
				if status := doJSON(t, client, "POST", base+"/assertions", a, nil); status != http.StatusCreated {
					errs <- fmt.Errorf("%s: assertion %d", name, status)
					return
				}
				var res IntegrationResult
				if status := doJSON(t, client, "POST", base+"/integrate",
					JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}, &res); status != http.StatusOK {
					errs <- fmt.Errorf("%s: integrate %d", name, status)
					return
				}
				// No bleed: exactly our three schemas, including our own
				// marker and nobody else's.
				var list struct {
					Schemas []SchemaStats `json:"schemas"`
				}
				if status := doJSON(t, client, "GET", base+"/schemas", nil, &list); status != http.StatusOK {
					errs <- fmt.Errorf("%s: list %d", name, status)
					return
				}
				seen := map[string]bool{}
				for _, s := range list.Schemas {
					seen[s.Name] = true
				}
				if len(seen) != 3 || !seen["sc1"] || !seen["sc2"] || !seen[fmt.Sprintf("only%d", i)] {
					errs <- fmt.Errorf("%s: schema set bled: %v", name, seen)
					return
				}
				if resp := request(t, client, "DELETE", ts.URL+"/v1/workspaces/"+name, nil); resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: delete %d", name, resp.StatusCode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Only the default workspace remains, untouched.
	if n := srv.Workspaces().Len(); n != 1 {
		t.Errorf("workspaces after hammer = %d, want 1", n)
	}
	if names := srv.Store().SchemaNames(); len(names) != 0 {
		t.Errorf("default workspace schemas after hammer = %v", names)
	}
}

// TestJobLocationHeader pins the satellite fix: a job submitted through a
// workspace-scoped route gets a workspace-scoped Location, while the legacy
// unprefixed route keeps the legacy form.
func TestJobLocationHeader(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	if resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: "w1"}); resp.StatusCode != http.StatusCreated {
		t.Fatal("create w1")
	}
	req := JobRequest{Type: "integrate", Schema1: "a", Schema2: "b"}

	resp := request(t, client, "POST", ts.URL+"/v1/workspaces/w1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scoped submit status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/workspaces/w1/jobs/job-1" {
		t.Errorf("scoped Location = %q, want /v1/workspaces/w1/jobs/job-1", loc)
	}

	resp = request(t, client, "POST", ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("legacy submit status = %d", resp.StatusCode)
	}
	// The default workspace has its own job-ID sequence: this is ITS job-1.
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/job-1" {
		t.Errorf("legacy Location = %q, want /v1/jobs/job-1", loc)
	}
}

// TestMetricsWorkspaceCardinality checks the label bound: only the top
// maxWorkspaceLabels workspaces by traffic keep their own entry, the tail
// folds into "other", totals are conserved, and ForgetWorkspace moves a
// deleted tenant's counters into "other" too.
func TestMetricsWorkspaceCardinality(t *testing.T) {
	m := NewMetrics()
	const tenants = maxWorkspaceLabels + 4
	var total uint64
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("ws%02d", i)
		for j := 0; j <= i; j++ {
			m.ObserveIntegration(name)
			total++
		}
	}
	snap := m.Snapshot()
	if len(snap.Workspaces) != maxWorkspaceLabels+1 {
		t.Fatalf("labels = %d, want %d named + other", len(snap.Workspaces), maxWorkspaceLabels)
	}
	// The busiest tenant keeps its label; the quietest folds.
	top := fmt.Sprintf("ws%02d", tenants-1)
	if snap.Workspaces[top].Integrations != uint64(tenants) {
		t.Errorf("top workspace = %+v", snap.Workspaces[top])
	}
	if _, ok := snap.Workspaces["ws00"]; ok {
		t.Error("quietest workspace kept its label past the cardinality bound")
	}
	var sum uint64
	for _, c := range snap.Workspaces {
		sum += c.Integrations
	}
	if sum != total {
		t.Errorf("integrations across labels = %d, want %d (folding must conserve totals)", sum, total)
	}

	m.ForgetWorkspace(top)
	snap = m.Snapshot()
	if _, ok := snap.Workspaces[top]; ok {
		t.Error("forgotten workspace still labeled")
	}
	sum = 0
	for _, c := range snap.Workspaces {
		sum += c.Integrations
	}
	if sum != total {
		t.Errorf("integrations after forget = %d, want %d", sum, total)
	}
	if snap.Workspaces["other"].Integrations < uint64(tenants) {
		t.Errorf("other after forget = %+v, should hold the forgotten tenant's count", snap.Workspaces["other"])
	}
}

// TestMultiWorkspaceCrashRecovery is the multi-tenant durability
// acceptance test: several workspaces, each with its own journal, crash
// hard, and every one of them — schemas, equivalences, assertions, finished
// jobs — recovers independently, while a workspace deleted before the crash
// stays gone.
func TestMultiWorkspaceCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	want := goldenPaperDDL(t)

	srv, _ := openDurable(t, dir, journal.Hooks{})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	for _, name := range []string{"alpha", "beta", "doomed"} {
		if resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: name}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d", name, resp.StatusCode)
		}
	}

	// alpha: the full paper example plus a finished integration job.
	alpha := ts.URL + "/v1/workspaces/alpha"
	populatePaperWorkspaceAt(t, client, alpha)
	var job Job
	if status := doJSON(t, client, "POST", alpha+"/jobs",
		JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}, &job); status != http.StatusAccepted {
		t.Fatalf("alpha job submit: %d", status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !job.State.Terminal() && time.Now().Before(deadline) {
		doJSON(t, client, "GET", alpha+"/jobs/"+job.ID, nil, &job)
	}
	if job.State != JobDone {
		t.Fatalf("alpha job = %+v", job)
	}

	// beta: one small schema of its own. default: a different one.
	if status := doJSON(t, client, "POST", ts.URL+"/v1/workspaces/beta/schemas",
		map[string]string{"ddl": "schema betaonly\nentity B {\n attr Id: int key\n}\n"}, nil); status != http.StatusCreated {
		t.Fatalf("beta upload: %d", status)
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas",
		map[string]string{"ddl": "schema defonly\nentity D {\n attr Id: int key\n}\n"}, nil); status != http.StatusCreated {
		t.Fatalf("default upload: %d", status)
	}
	// doomed: populated, then deleted before the crash.
	if status := doJSON(t, client, "POST", ts.URL+"/v1/workspaces/doomed/schemas",
		map[string]string{"ddl": "schema gone\nentity G {\n attr Id: int key\n}\n"}, nil); status != http.StatusCreated {
		t.Fatalf("doomed upload: %d", status)
	}
	if resp := request(t, client, "DELETE", ts.URL+"/v1/workspaces/doomed", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete doomed: %d", resp.StatusCode)
	}

	ts.Close()
	srv.Kill()

	srv2, report := openDurable(t, dir, journal.Hooks{})
	defer srv2.Shutdown(context.Background())
	if report.RecoveredWorkspaces != 3 {
		t.Fatalf("recovered %d workspaces, want alpha+beta+default: %+v", report.RecoveredWorkspaces, report)
	}
	var recoveredNames []string
	for _, wr := range report.Workspaces {
		recoveredNames = append(recoveredNames, wr.Name)
	}
	if fmt.Sprint(recoveredNames) != fmt.Sprint([]string{"alpha", "beta", "default"}) {
		t.Fatalf("recovered workspaces = %v", recoveredNames)
	}

	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client2 := ts2.Client()

	// alpha came back whole: the job with its result, and the workspace
	// still integrates to the golden schema.
	alpha2 := ts2.URL + "/v1/workspaces/alpha"
	var recovered Job
	if status := doJSON(t, client2, "GET", alpha2+"/jobs/"+job.ID, nil, &recovered); status != http.StatusOK {
		t.Fatalf("alpha recovered job: %d", status)
	}
	if recovered.State != JobDone || recovered.Result == nil || recovered.Result.DDL != want {
		t.Fatalf("alpha recovered job = %+v", recovered)
	}
	var res IntegrationResult
	if status := doJSON(t, client2, "POST", alpha2+"/integrate",
		JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}, &res); status != http.StatusOK {
		t.Fatalf("alpha integrate after recovery: %d", status)
	}
	if res.DDL != want {
		t.Errorf("alpha integration drifted after recovery")
	}

	// beta and default each recovered exactly their own schema.
	if status := doJSON(t, client2, "GET", ts2.URL+"/v1/workspaces/beta/schemas/betaonly", nil, nil); status != http.StatusOK {
		t.Errorf("beta schema after recovery: %d", status)
	}
	if status := doJSON(t, client2, "GET", ts2.URL+"/v1/schemas/defonly", nil, nil); status != http.StatusOK {
		t.Errorf("default schema after recovery: %d", status)
	}
	if status := doJSON(t, client2, "GET", ts2.URL+"/v1/workspaces/beta/schemas/defonly", nil, nil); status != http.StatusNotFound {
		t.Errorf("default schema visible in beta after recovery")
	}

	// The deleted workspace stayed deleted.
	if status := doJSON(t, client2, "GET", ts2.URL+"/v1/workspaces/doomed", nil, nil); status != http.StatusNotFound {
		t.Errorf("deleted workspace resurrected by recovery")
	}
}

// TestLegacyLayoutMigration pins the upgrade path: a data directory written
// by the pre-workspace single-tenant server (journal.jsonl/snapshot.json at
// the top level) is migrated into the default workspace's subdirectory with
// nothing lost — and a directory in a mixed state is refused with an
// actionable error instead of guessing.
func TestLegacyLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	// Forge a legacy single-tenant journal holding one schema.
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ecr.EncodeJSON(paperex.Sc1())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(opAddSchemas, addSchemasRec{Schemas: []json.RawMessage{raw}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	srv, report := openDurable(t, dir, journal.Hooks{})
	if !report.MigratedLegacyLayout {
		t.Error("legacy layout not reported as migrated")
	}
	if report.RecoveredWorkspaces != 1 || report.Schemas != 1 {
		t.Fatalf("report after migration = %+v", report)
	}
	if srv.Store().Schema("sc1") == nil {
		t.Error("legacy schema lost in migration")
	}
	if _, err := os.Stat(filepath.Join(dir, "journal.jsonl")); !os.IsNotExist(err) {
		t.Error("top-level legacy journal still present after migration")
	}
	if _, err := os.Stat(filepath.Join(dir, DefaultWorkspace, "journal.jsonl")); err != nil {
		t.Errorf("migrated journal missing: %v", err)
	}
	// The migration holds across a crash and restart.
	srv.Kill()
	srv2, report2 := openDurable(t, dir, journal.Hooks{})
	if report2.MigratedLegacyLayout {
		t.Error("second start re-reported a migration")
	}
	if report2.Schemas != 1 {
		t.Fatalf("second start report = %+v", report2)
	}
	srv2.Kill()

	// Mixed state: both a top-level legacy journal AND a default/ directory.
	// Refuse, tell the operator what to do, touch nothing.
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), []byte{}, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Config{}, DurabilityConfig{Dir: dir})
	if err == nil {
		t.Fatal("mixed legacy/workspace layout accepted")
	}
	for _, hint := range []string{"legacy", DefaultWorkspace, "move"} {
		if !errtest.Contains(err, hint) {
			t.Errorf("mixed-state error %q does not mention %q", err, hint)
		}
	}
}

// TestConcurrentCreateDeleteSameName hammers POST and DELETE of one
// workspace name from racing goroutines on a durable server. Every
// response must be one of the sanctioned outcomes, no ".trash-*" staging
// directory may survive (a delete that loses the race must still complete
// its teardown), and the final state must be consistent: the HTTP view and
// the on-disk layout agree, and the name remains usable.
func TestConcurrentCreateDeleteSameName(t *testing.T) {
	dir := t.TempDir()
	srv, _ := openDurable(t, dir, journal.Hooks{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	client := ts.Client()

	const name = "contested"
	const workers = 8
	const rounds = 25
	var wg sync.WaitGroup
	bad := make(chan error, workers*rounds)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if i%2 == 0 {
					resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: name})
					if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
						bad <- fmt.Errorf("create %s: %d", name, resp.StatusCode)
						return
					}
				} else {
					resp := request(t, client, "DELETE", ts.URL+"/v1/workspaces/"+name, nil)
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						bad <- fmt.Errorf("delete %s: %d", name, resp.StatusCode)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(bad)
	for err := range bad {
		t.Error(err)
	}

	// The HTTP view and the directory tree agree, and no teardown leaked
	// its trash staging directory.
	resp := request(t, client, "GET", ts.URL+"/v1/workspaces/"+name, nil)
	exists := resp.StatusCode == http.StatusOK
	if !exists && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("final GET %s: %d", name, resp.StatusCode)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	dirExists := false
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".trash-") {
			t.Errorf("leaked staging directory %s", e.Name())
		}
		if e.Name() == name {
			dirExists = true
		}
	}
	if exists != dirExists {
		t.Fatalf("workspace %s: HTTP says exists=%v, directory says %v", name, exists, dirExists)
	}

	// The name is still usable: make sure it exists, then prove the
	// workspace accepts and persists data.
	if !exists {
		if resp := request(t, client, "POST", ts.URL+"/v1/workspaces", workspaceRequest{Name: name}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create after hammer: %d", resp.StatusCode)
		}
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/workspaces/"+name+"/schemas",
		map[string]string{"ddl": "schema survivor\nentity S {\n attr Id: int key\n}\n"}, nil); status != http.StatusCreated {
		t.Fatalf("upload after hammer: %d", status)
	}
	if _, err := os.Stat(filepath.Join(dir, name, "journal.jsonl")); err != nil {
		t.Fatalf("workspace journal after hammer: %v", err)
	}
}

// Package server exposes the schema-integration pipeline over HTTP/JSON:
// schema upload (ECR DDL or JSON), attribute equivalences, resemblance
// ranking, dictionary suggestions, assertions with immediate closure, and
// integration — synchronously for small requests and through an async job
// queue backed by a bounded worker pool for heavy ones. The package adds
// the production plumbing the interactive tool never needed: a concurrency-
// safe store over session.Workspace, structured request logging, metrics,
// request timeouts and graceful shutdown.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/assertion"
	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/ecr"
	"repro/internal/equivalence"
	"repro/internal/instance"
	"repro/internal/integrate"
	"repro/internal/resemblance"
	"repro/internal/session"
)

// Store is the concurrency-safe layer over a session.Workspace. The
// workspace itself is single-user by design (the interactive tool owns its
// terminal); the store guards every access with an RWMutex so that HTTP
// handlers and job-queue workers can share one workspace.
//
// Integration results are cached per schema pair, tagged with a generation
// counter that every mutation bumps: a result computed against an older
// generation is returned to its requester but never cached, so readers can
// integrate outside the lock without serializing behind each other.
type Store struct {
	mu  sync.RWMutex
	ws  *session.Workspace // guarded by mu
	gen uint64             // guarded by mu
	// results caches integrations keyed by sorted pair, valid for the
	// generation at which they were computed.
	results map[string]cachedResult // guarded by mu
	// schemaGen counts schema additions and removals only. Together with
	// the registry's version counter it stamps similarity-cache entries:
	// assertions bump gen but neither of these, so rankings stay cached
	// across assertion traffic.
	schemaGen uint64 // guarded by mu
	// simMu guards simCache (its own mutex so cached similarity reads
	// don't contend with the workspace lock more than needed; lock order
	// is always st.mu before simMu).
	simMu    sync.Mutex
	simCache map[simKey]simEntry // guarded by simMu
	// simHits/simMisses count similarity-cache outcomes for /metrics.
	simHits, simMisses atomic.Uint64
	// cloMu guards cloCache, the versioned closure-result cache: assertion
	// listings are stamped with the engine's version counter and the
	// schema generation, so repeated reads of an unchanged matrix are
	// served without re-copying entries (lock order: st.mu before cloMu).
	cloMu    sync.Mutex
	cloCache map[cloKey]cloEntry // guarded by cloMu
	// cloHits/cloMisses count closure-cache outcomes; closureDerived and
	// closureConflicts count entries derived and conflicts reported by
	// assertion operations, all for /metrics.
	cloHits, cloMisses               atomic.Uint64
	closureDerived, closureConflicts atomic.Uint64
	// persist, when set, journals every mutation before it is applied
	// (write-ahead): mutations are pre-validated, then journaled, then
	// applied, so an operation the journal rejected never reaches memory
	// and an operation in the journal always replays cleanly.
	persist func(op string, v any) error // guarded by mu
	// maxSchemas, when positive, caps how many schemas the store may hold.
	// Checked before journaling, so a quota rejection never reaches the log;
	// replica stores leave it 0 — replicated records must always apply.
	maxSchemas int // guarded by mu

	// Federation state: saved integration results (the materialized
	// integrated schema plus its mapping table), the instance stores holding
	// loaded rows, and the ordered log of accepted row batches. The row log —
	// not the stores — is what snapshots carry; an instance store is rebuilt
	// by replaying its batches. Saves and row loads journal write-ahead like
	// every other mutation, so mapping tables and rows survive a crash and
	// replicate to followers.
	integrations map[string]*savedIntegration // guarded by mu
	instances    map[string]*instance.Store   // guarded by mu
	rowLog       []loadRowsRec                // guarded by mu
}

type cachedResult struct {
	gen uint64
	res *integrate.Result
}

// simKey identifies one cached similarity query: the ordered schema pair,
// the structure kind, and whether the ranking or the full count matrix was
// asked for.
type simKey struct {
	schema1, schema2 string
	rel              bool
	matrix           bool
}

// simEntry is one cached similarity result, valid while the registry
// version and schema generation it was computed under remain current.
type simEntry struct {
	regVersion uint64
	schemaGen  uint64
	pairs      []resemblance.Pair
	matrix     *equivalence.Matrix
}

// cloKey identifies one cached closure listing: the ordered schema pair and
// the structure kind.
type cloKey struct {
	schema1, schema2 string
	rel              bool
}

// cloEntry is one cached assertion listing, valid while the engine version
// and schema generation it was computed under remain current.
type cloEntry struct {
	version   uint64
	schemaGen uint64
	entries   []assertion.Entry
}

// ErrNotFound marks lookups of named structures that do not exist; handlers
// map it to 404 with errors.Is rather than by matching message text (the
// messages embed user-controlled names).
var ErrNotFound = errors.New("not found")

// NewStore returns a store over an empty workspace.
func NewStore() *Store {
	return NewStoreFrom(session.NewWorkspace())
}

// NewStoreFrom wraps an existing workspace (for example one loaded from a
// saved JSON file). The caller must not touch the workspace afterwards.
func NewStoreFrom(ws *session.Workspace) *Store {
	return &Store{
		ws:           ws,
		results:      map[string]cachedResult{},
		simCache:     map[simKey]simEntry{},
		cloCache:     map[cloKey]cloEntry{},
		integrations: map[string]*savedIntegration{},
		instances:    map[string]*instance.Store{},
	}
}

// Replace swaps the store's workspace wholesale — the replica-bootstrap
// path, where a snapshot shipped from the leader supersedes everything the
// store held. All caches are invalidated. The caller must not touch the
// workspace afterwards.
func (st *Store) Replace(ws *session.Workspace) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ws = ws
	// The snapshot supersedes the federation state too; the bootstrap path
	// reinstalls the snapshot's copy via restoreFederation right after.
	st.integrations = map[string]*savedIntegration{}
	st.instances = map[string]*instance.Store{}
	st.rowLog = nil
	st.schemaGen++
	st.touch()
}

// SetPersist installs the write-ahead hook (nil disables journaling).
// Call before the store is shared; replay during recovery runs with the
// hook unset so replayed operations are not re-journaled.
func (st *Store) SetPersist(fn func(op string, v any) error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.persist = fn
}

// journal write-aheads one mutation; callers hold the write lock and have
// already validated that the operation will apply cleanly.
//
//sit:locked mu
func (st *Store) journal(op string, v any) error {
	if st.persist == nil {
		return nil
	}
	return st.persist(op, v)
}

func resultKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

// touch invalidates cached results; callers hold the write lock.
// Integration results are dropped wholesale; similarity entries are swept
// only when their version stamps no longer match, so assertion traffic
// (which changes neither the registry nor the schema set) leaves them hot.
//
//sit:locked mu
func (st *Store) touch() {
	st.gen++
	st.results = map[string]cachedResult{}
	regV := st.ws.Registry().Version()
	st.simMu.Lock()
	for k, e := range st.simCache {
		if e.regVersion != regV || e.schemaGen != st.schemaGen {
			delete(st.simCache, k)
		}
	}
	st.simMu.Unlock()
	// Closure entries from an older schema generation can never validate
	// again; same-generation entries self-invalidate against the engine
	// version at lookup time (and are overwritten in place), so they are
	// left alone here.
	st.cloMu.Lock()
	for k, e := range st.cloCache {
		if e.schemaGen != st.schemaGen {
			delete(st.cloCache, k)
		}
	}
	st.cloMu.Unlock()
}

// simLookup consults the similarity cache; callers hold st.mu (read or
// write), so the version stamps cannot move underneath the comparison.
//
// A cache hit must cost a map probe, not garbage: this sits under every
// integration's inner loop.
//
//sit:rlocked mu
//sit:hotpath
func (st *Store) simLookup(key simKey) (simEntry, bool) {
	regV := st.ws.Registry().Version()
	st.simMu.Lock()
	e, ok := st.simCache[key]
	st.simMu.Unlock()
	if ok && e.regVersion == regV && e.schemaGen == st.schemaGen {
		st.simHits.Add(1)
		return e, true
	}
	st.simMisses.Add(1)
	return simEntry{}, false
}

// simStore records a freshly computed result; callers hold st.mu, so the
// stamps match the state the result was computed under.
//
//sit:rlocked mu
//sit:hotpath
func (st *Store) simStore(key simKey, e simEntry) {
	e.regVersion = st.ws.Registry().Version()
	e.schemaGen = st.schemaGen
	st.simMu.Lock()
	st.simCache[key] = e
	st.simMu.Unlock()
}

// SimilarityCacheStats reports cumulative similarity-cache hits and misses.
func (st *Store) SimilarityCacheStats() (hits, misses uint64) {
	return st.simHits.Load(), st.simMisses.Load()
}

// SetMaxSchemas installs the schema-count quota (0 = unlimited). Call
// before the store is shared, or from the promotion path where replicated
// stores become writable.
func (st *Store) SetMaxSchemas(max int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.maxSchemas = max
}

// AddSchemas validates and registers the given schemas, all or none.
func (st *Store) AddSchemas(schemas []*ecr.Schema) ([]string, error) {
	if len(schemas) == 0 {
		return nil, fmt.Errorf("server: no schemas in request")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	seen := map[string]bool{}
	for _, s := range schemas {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if seen[s.Name] || st.ws.Schema(s.Name) != nil {
			return nil, fmt.Errorf("server: schema %q already defined", s.Name)
		}
		seen[s.Name] = true
	}
	if have := len(st.ws.Schemas()); st.maxSchemas > 0 && have+len(schemas) > st.maxSchemas {
		return nil, fmt.Errorf("server: schema %w: workspace holds %d of %d and the request adds %d",
			ErrQuota, have, st.maxSchemas, len(schemas))
	}
	if st.persist != nil {
		rec := addSchemasRec{}
		for _, s := range schemas {
			data, err := ecr.EncodeJSON(s)
			if err != nil {
				return nil, err
			}
			rec.Schemas = append(rec.Schemas, json.RawMessage(data))
		}
		if err := st.journal(opAddSchemas, rec); err != nil {
			return nil, err
		}
	}
	var names []string
	for _, s := range schemas {
		if err := st.ws.AddSchema(s); err != nil {
			return nil, err // unreachable after the pre-checks above
		}
		names = append(names, s.Name)
	}
	st.schemaGen++
	st.touch()
	return names, nil
}

// AddSchemasDDL parses ECR DDL (one or more "schema" blocks) and registers
// every schema it defines.
func (st *Store) AddSchemasDDL(src string) ([]string, error) {
	schemas, err := ecr.ParseSchemas(src)
	if err != nil {
		return nil, err
	}
	return st.AddSchemas(schemas)
}

// SchemaNames lists the defined schemas in definition order.
func (st *Store) SchemaNames() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var names []string
	for _, s := range st.ws.Schemas() {
		names = append(names, s.Name)
	}
	return names
}

// SchemaStats summarizes one schema for listings.
type SchemaStats struct {
	Name          string `json:"name"`
	Entities      int    `json:"entities"`
	Categories    int    `json:"categories"`
	Relationships int    `json:"relationships"`
	Attributes    int    `json:"attributes"`
}

// Schemas lists per-schema summaries in definition order.
func (st *Store) Schemas() []SchemaStats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []SchemaStats
	for _, s := range st.ws.Schemas() {
		stats := s.Stats()
		out = append(out, SchemaStats{
			Name:          s.Name,
			Entities:      stats.Entities,
			Categories:    stats.Categories,
			Relationships: stats.Relationships,
			Attributes:    stats.Attributes,
		})
	}
	return out
}

// Schema returns a deep clone of the named schema, or nil. The clone is the
// caller's to serialize without further locking.
func (st *Store) Schema(name string) *ecr.Schema {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if s := st.ws.Schema(name); s != nil {
		return s.Clone()
	}
	return nil
}

// RemoveSchema deletes the named schema and its assertions. found is false
// when no such schema exists; err reports a durability failure (the schema
// is kept).
func (st *Store) RemoveSchema(name string) (found bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.ws.Schema(name) == nil {
		return false, nil
	}
	if err := st.journal(opRemoveSchema, removeSchemaRec{Name: name}); err != nil {
		return true, err
	}
	st.ws.RemoveSchema(name)
	st.pruneFederationLocked(name)
	st.schemaGen++
	st.touch()
	return true, nil
}

// DeclareEquivalence resolves "object.attribute" references against the two
// named schemas and places the attributes in one equivalence class.
func (st *Store) DeclareEquivalence(schema1, ref1, schema2, ref2 string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	s1, s2 := st.ws.Schema(schema1), st.ws.Schema(schema2)
	if s1 == nil {
		return fmt.Errorf("server: schema %q %w", schema1, ErrNotFound)
	}
	if s2 == nil {
		return fmt.Errorf("server: schema %q %w", schema2, ErrNotFound)
	}
	a, err := core.ResolveAttr(s1, ref1)
	if err != nil {
		return err
	}
	b, err := core.ResolveAttr(s2, ref2)
	if err != nil {
		return err
	}
	// Registry.Declare's only failure mode is a same-object pair; check it
	// here so the journaled record is guaranteed to replay.
	if a.Schema == b.Schema && a.Object == b.Object {
		return fmt.Errorf("equivalence: %s and %s belong to the same object class", a, b)
	}
	if err := st.journal(opDeclareEquiv, declareEquivRec{
		Schema1: schema1, Attr1: ref1, Schema2: schema2, Attr2: ref2,
	}); err != nil {
		return err
	}
	if err := st.ws.Registry().Declare(a, b); err != nil {
		return err // unreachable after the pre-check above
	}
	st.touch()
	return nil
}

// EquivalenceClasses returns the declared classes (each sorted), sorted by
// their first member.
func (st *Store) EquivalenceClasses() [][]ecr.AttrRef {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.ws.Registry().Classes()
}

// schemaPair fetches both schemas of a pair under the read lock.
//
//sit:rlocked mu
func (st *Store) schemaPair(schema1, schema2 string) (*ecr.Schema, *ecr.Schema, error) {
	s1, s2 := st.ws.Schema(schema1), st.ws.Schema(schema2)
	if s1 == nil {
		return nil, nil, fmt.Errorf("server: schema %q %w", schema1, ErrNotFound)
	}
	if s2 == nil {
		return nil, nil, fmt.Errorf("server: schema %q %w", schema2, ErrNotFound)
	}
	return s1, s2, nil
}

// RankedPairs returns the resemblance-ranked object-class (or, with rel,
// relationship-set) pairs of the two schemas. Results are computed on the
// workspace's sparse similarity engine and memoized until an equivalence
// declaration or a schema change invalidates them; callers must not mutate
// the returned slice.
func (st *Store) RankedPairs(schema1, schema2 string, rel bool) ([]resemblance.Pair, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s1, s2, err := st.schemaPair(schema1, schema2)
	if err != nil {
		return nil, err
	}
	key := simKey{schema1: schema1, schema2: schema2, rel: rel}
	if e, ok := st.simLookup(key); ok {
		return e.pairs, nil
	}
	var pairs []resemblance.Pair
	if rel {
		pairs = st.ws.RankRelationships(s1, s2)
	} else {
		pairs = st.ws.RankObjects(s1, s2)
	}
	st.simStore(key, simEntry{pairs: pairs})
	return pairs, nil
}

// Matrix returns the attribute-equivalence count matrix of the two schemas
// — the ACS over object classes, or with rel the OCS over relationship
// sets. Cached like RankedPairs; callers must not mutate the result.
func (st *Store) Matrix(schema1, schema2 string, rel bool) (*equivalence.Matrix, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s1, s2, err := st.schemaPair(schema1, schema2)
	if err != nil {
		return nil, err
	}
	key := simKey{schema1: schema1, schema2: schema2, rel: rel, matrix: true}
	if e, ok := st.simLookup(key); ok {
		return e.matrix, nil
	}
	var m *equivalence.Matrix
	if rel {
		m = st.ws.Similarity().RelationshipMatrix(s1, s2)
	} else {
		m = st.ws.Similarity().ObjectMatrix(s1, s2)
	}
	st.simStore(key, simEntry{matrix: m})
	return m, nil
}

// Suggest runs the dictionary-based attribute equivalence suggestion pass
// at the given score threshold.
func (st *Store) Suggest(schema1, schema2 string, threshold float64) ([]resemblance.AttrCandidate, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("server: bad threshold %v (want 0 < t <= 1)", threshold)
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	s1, s2, err := st.schemaPair(schema1, schema2)
	if err != nil {
		return nil, err
	}
	return resemblance.SuggestEquivalences(s1, s2,
		resemblance.DefaultWeights(), dictionary.Builtin(), threshold), nil
}

// engineFor validates that both named structures exist and returns the
// pair's assertion engine; callers hold the write lock (the engine is
// created on first touch).
//
//sit:locked mu
func (st *Store) engineFor(schema1, object1, schema2, object2 string, rel bool) (*assertion.Engine, error) {
	s1, s2, err := st.schemaPair(schema1, schema2)
	if err != nil {
		return nil, err
	}
	if rel {
		if s1.Relationship(object1) == nil {
			return nil, fmt.Errorf("server: schema %s has no relationship set %q", s1.Name, object1)
		}
		if s2.Relationship(object2) == nil {
			return nil, fmt.Errorf("server: schema %s has no relationship set %q", s2.Name, object2)
		}
		return st.ws.RelationshipAssertions(schema1, schema2), nil
	}
	if s1.Object(object1) == nil {
		return nil, fmt.Errorf("server: schema %s has no object class %q", s1.Name, object1)
	}
	if s2.Object(object2) == nil {
		return nil, fmt.Errorf("server: schema %s has no object class %q", s2.Name, object2)
	}
	return st.ws.ObjectAssertions(schema1, schema2), nil
}

// Assert records an assertion between object classes (or, with rel,
// relationship sets) of the two schemas; the incremental engine closes the
// matrix as part of the operation. The closure result carries the entries
// this assertion derived and the matrix's conflicts; chains grounds each
// conflict in the DDA-specified assertions that imply it. A conflicted
// matrix keeps the assertion, as the interactive tool does, leaving
// resolution to a later Retract.
func (st *Store) Assert(schema1, object1 string, code int, schema2, object2 string, rel bool) (assertion.CloseResult, [][]string, error) {
	kind, err := assertion.KindFromCode(code)
	if err != nil {
		return assertion.CloseResult{}, nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	eng, err := st.engineFor(schema1, object1, schema2, object2, rel)
	if err != nil {
		return assertion.CloseResult{}, nil, err
	}
	if err := st.journal(opAssert, assertRec{
		Schema1: schema1, Object1: object1, Code: code,
		Schema2: schema2, Object2: object2, Rel: rel,
	}); err != nil {
		return assertion.CloseResult{}, nil, err
	}
	res := eng.AssertAndClose(
		assertion.ObjKey{Schema: schema1, Object: object1},
		assertion.ObjKey{Schema: schema2, Object: object2}, kind)
	st.closureDerived.Add(uint64(len(res.Derived)))
	st.closureConflicts.Add(uint64(len(res.Conflicts)))
	st.touch()
	return res, st.explainConflicts(eng, res.Conflicts), nil
}

// Retract removes the DDA-specified assertion between the two structures,
// dropping exactly the derived entries that lost their last support and
// re-deriving the ones that still follow from the rest of the matrix.
// Retracting a derived entry fails with an *assertion.DerivedError carrying
// the derivation chain; Found is false when no assertion was held.
func (st *Store) Retract(schema1, object1, schema2, object2 string, rel bool) (assertion.RetractResult, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	eng, err := st.engineFor(schema1, object1, schema2, object2, rel)
	if err != nil {
		return assertion.RetractResult{}, err
	}
	a := assertion.ObjKey{Schema: schema1, Object: object1}
	b := assertion.ObjKey{Schema: schema2, Object: object2}
	// Pre-validate so the journaled record always replays: an absent pair
	// or a derived entry never reaches the log.
	ent, ok := eng.Entry(a, b)
	if !ok {
		return assertion.RetractResult{}, nil
	}
	if ent.Derived {
		return assertion.RetractResult{}, &assertion.DerivedError{Entry: ent}
	}
	if err := st.journal(opRetract, retractRec{
		Schema1: schema1, Object1: object1,
		Schema2: schema2, Object2: object2, Rel: rel,
	}); err != nil {
		return assertion.RetractResult{}, err
	}
	res, err := eng.Retract(a, b)
	if err != nil {
		return assertion.RetractResult{}, err // unreachable after the pre-checks above
	}
	st.touch()
	return res, nil
}

// ExplainAssertion returns the chain of DDA-specified assertions implying
// the entry held between the two structures (the entry itself when it is
// specified). found is false when the pair holds no entry.
func (st *Store) ExplainAssertion(schema1, object1, schema2, object2 string, rel bool) (chain []string, found bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	eng, err := st.engineFor(schema1, object1, schema2, object2, rel)
	if err != nil {
		return nil, false, err
	}
	stmts, ok := eng.Explain(
		assertion.ObjKey{Schema: schema1, Object: object1},
		assertion.ObjKey{Schema: schema2, Object: object2})
	if !ok {
		return nil, false, nil
	}
	for _, s := range stmts {
		chain = append(chain, s.String())
	}
	return chain, true, nil
}

// explainConflicts grounds every conflict in its supporting specified
// assertions; callers hold the write lock.
//
//sit:locked mu
func (st *Store) explainConflicts(eng *assertion.Engine, conflicts []*assertion.Conflict) [][]string {
	if len(conflicts) == 0 {
		return nil
	}
	out := make([][]string, len(conflicts))
	for i, c := range conflicts {
		for _, s := range eng.ExplainConflict(c) {
			out[i] = append(out[i], s.String())
		}
	}
	return out
}

// Assertions lists the entries of the pair's assertion matrix. Listings are
// cached per (pair, kind) and stamped with the engine's version counter, so
// repeated reads of an unchanged matrix cost one map probe; callers must
// not mutate the result.
//
// The cached read is the steady state — assertion listings poll this from
// the UI and the replication tests — so the function body must not
// allocate (the miss path's garbage lives inside eng.Entries).
//
//sit:hotpath
func (st *Store) Assertions(schema1, schema2 string, rel bool) ([]assertion.Entry, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, _, err := st.schemaPair(schema1, schema2); err != nil {
		return nil, err
	}
	// ObjectAssertions/RelationshipAssertions create the empty engine on
	// first touch, hence the write lock.
	var eng *assertion.Engine
	if rel {
		eng = st.ws.RelationshipAssertions(schema1, schema2)
	} else {
		eng = st.ws.ObjectAssertions(schema1, schema2)
	}
	key := cloKey{schema1: schema1, schema2: schema2, rel: rel}
	st.cloMu.Lock()
	e, ok := st.cloCache[key]
	st.cloMu.Unlock()
	if ok && e.version == eng.Version() && e.schemaGen == st.schemaGen {
		st.cloHits.Add(1)
		return e.entries, nil
	}
	st.cloMisses.Add(1)
	entries := eng.Entries()
	st.cloMu.Lock()
	st.cloCache[key] = cloEntry{version: eng.Version(), schemaGen: st.schemaGen, entries: entries}
	st.cloMu.Unlock()
	return entries, nil
}

// ClosureStats reports the closure-cache and closure-operation counters:
// cache hits and misses, entries derived, and conflicts reported.
func (st *Store) ClosureStats() (hits, misses, derived, conflicts uint64) {
	return st.cloHits.Load(), st.cloMisses.Load(), st.closureDerived.Load(), st.closureConflicts.Load()
}

// Integrate runs (or returns the cached) integration of the pair using the
// workspace's declared equivalences and assertions. The computation happens
// outside the lock against cloned inputs, so long integrations of distinct
// pairs proceed concurrently; the result is cached only if no mutation
// landed meanwhile.
func (st *Store) Integrate(schema1, schema2 string) (*integrate.Result, error) {
	st.mu.Lock()
	key := resultKey(schema1, schema2)
	if c, ok := st.results[key]; ok && c.gen == st.gen {
		st.mu.Unlock()
		return c.res, nil
	}
	s1, s2, err := st.schemaPair(schema1, schema2)
	if err != nil {
		st.mu.Unlock()
		return nil, err
	}
	gen := st.gen
	var (
		reg  *equivalence.Registry = st.ws.Registry().Clone()
		objs *assertion.Set        = st.ws.ObjectAssertions(schema1, schema2).Clone()
		rels *assertion.Set        = st.ws.RelationshipAssertions(schema1, schema2).Clone()
	)
	st.mu.Unlock()

	res, err := integrate.Integrate(integrate.Input{
		S1: s1, S2: s2,
		Registry:      reg,
		Objects:       objs,
		Relationships: rels,
	})
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	if st.gen == gen {
		st.results[key] = cachedResult{gen: gen, res: res}
	}
	st.mu.Unlock()
	return res, nil
}

// RunSpec parses and executes a batch integration specification against the
// store's schemas — the one-shot path: the spec carries its own
// equivalences and assertions and leaves the workspace untouched.
func (st *Store) RunSpec(src string) (*integrate.Result, error) {
	spec, err := batch.ParseSpec(src)
	if err != nil {
		return nil, err
	}
	st.mu.RLock()
	schemas := append([]*ecr.Schema(nil), st.ws.Schemas()...)
	st.mu.RUnlock()
	// Schemas are immutable once registered, so batch.Run can proceed on
	// the snapshot without holding the lock.
	return batch.Run(schemas, spec)
}

// Generation returns the mutation counter (diagnostics and tests).
func (st *Store) Generation() uint64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.gen
}

package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/assertion"
	"repro/internal/journal"
)

func TestAssertionRetractEndpoint(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	post := assertionRequest{Schema1: "sc1", Object1: "Student", Code: 3, Schema2: "sc2", Object2: "Grad_student"}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/assertions", post, nil); status != http.StatusCreated {
		t.Fatalf("assert status = %d", status)
	}

	del := retractRequest{Schema1: "sc1", Object1: "Student", Schema2: "sc2", Object2: "Grad_student"}
	var resp retractResponse
	if status := doJSON(t, client, "DELETE", ts.URL+"/v1/assertions", del, &resp); status != http.StatusOK {
		t.Fatalf("retract status = %d", status)
	}
	if !resp.Found || !resp.Consistent || len(resp.Removed) != 1 {
		t.Errorf("retract response = %+v", resp)
	}

	// The pair is gone; a second delete is 404.
	if status := doJSON(t, client, "DELETE", ts.URL+"/v1/assertions", del, nil); status != http.StatusNotFound {
		t.Errorf("re-retract status = %d, want 404", status)
	}
	var listed struct {
		Assertions []struct {
			Statement string `json:"statement"`
		} `json:"assertions"`
	}
	doJSON(t, client, "GET", ts.URL+"/v1/assertions?schema1=sc1&schema2=sc2", nil, &listed)
	if len(listed.Assertions) != 0 {
		t.Errorf("assertions after retract = %+v", listed.Assertions)
	}
}

func TestAssertionExplainEndpoint(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	post := assertionRequest{Schema1: "sc1", Object1: "Student", Code: 3, Schema2: "sc2", Object2: "Grad_student"}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/assertions", post, nil); status != http.StatusCreated {
		t.Fatalf("assert status = %d", status)
	}

	var explained struct {
		ImpliedBy []string `json:"implied_by"`
	}
	status := doJSON(t, client, "GET",
		ts.URL+"/v1/assertions/explain?schema1=sc1&schema2=sc2&object1=Student&object2=Grad_student", nil, &explained)
	if status != http.StatusOK || len(explained.ImpliedBy) != 1 {
		t.Fatalf("explain: status=%d %+v", status, explained)
	}

	// A pair with no entry is 404; missing params are 400.
	if status := doJSON(t, client, "GET",
		ts.URL+"/v1/assertions/explain?schema1=sc1&schema2=sc2&object1=Department&object2=Faculty", nil, nil); status != http.StatusNotFound {
		t.Errorf("absent pair status = %d", status)
	}
	if status := doJSON(t, client, "GET",
		ts.URL+"/v1/assertions/explain?schema1=sc1&schema2=sc2", nil, nil); status != http.StatusBadRequest {
		t.Errorf("missing objects status = %d", status)
	}
}

// TestStoreRetractDerivedRejected drives the engine into holding a derived
// cross-schema entry (the HTTP API cannot specify the intra-schema legs
// such a derivation needs, so the legs are planted on the engine directly)
// and checks that Store.Retract refuses it with the typed error that maps
// to 409. The store is memory-only, so the direct engine pokes have no
// write-ahead contract to honor.
//
//sit:replay
func TestStoreRetractDerivedRejected(t *testing.T) {
	st := paperStore(t)
	eng, err := st.engineFor("sc1", "Student", "sc2", "Grad_student", false)
	if err != nil {
		t.Fatal(err)
	}
	student := assertion.ObjKey{Schema: "sc1", Object: "Student"}
	dept := assertion.ObjKey{Schema: "sc1", Object: "Department"}
	grad := assertion.ObjKey{Schema: "sc2", Object: "Grad_student"}
	if err := eng.Assert(student, dept, assertion.Equals); err != nil {
		t.Fatal(err)
	}
	if err := eng.Assert(dept, grad, assertion.Equals); err != nil {
		t.Fatal(err)
	}
	_, err = st.Retract("sc1", "Student", "sc2", "Grad_student", false)
	var derived *assertion.DerivedError
	if !errors.As(err, &derived) {
		t.Fatalf("want DerivedError, got %v", err)
	}
	if got := errStatus(err); got != http.StatusConflict {
		t.Errorf("errStatus(DerivedError) = %d, want 409", got)
	}
	// The rejected retract must not have journaled or changed anything.
	if ent, ok := eng.Entry(student, grad); !ok || !ent.Derived {
		t.Errorf("derived entry disturbed: %+v ok=%v", ent, ok)
	}
}

func TestStoreClosureCache(t *testing.T) {
	st := paperStore(t)
	assertPaperAssertions(t, st)

	hits0, misses0, derived0, _ := st.ClosureStats()
	if derived0 == 0 {
		t.Error("paper assertions derive entries; closure_derived_total = 0")
	}
	if _, err := st.Assertions("sc1", "sc2", false); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Assertions("sc1", "sc2", false); err != nil {
		t.Fatal(err)
	}
	hits, misses, _, _ := st.ClosureStats()
	if hits != hits0+1 || misses != misses0+1 {
		t.Errorf("after two listings: hits %d->%d misses %d->%d, want one of each",
			hits0, hits, misses0, misses)
	}

	// A mutation bumps the engine version, so the next listing misses.
	if _, _, err := st.Assert("sc1", "Department", 1, "sc2", "Faculty", false); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Assertions("sc1", "sc2", false); err != nil {
		t.Fatal(err)
	}
	_, misses2, _, _ := st.ClosureStats()
	if misses2 != misses+1 {
		t.Errorf("listing after mutation: misses %d->%d, want a fresh miss", misses, misses2)
	}

	// Removing a schema invalidates the cached listing outright.
	if _, err := st.RemoveSchema("sc1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Assertions("sc1", "sc2", false); err == nil {
		t.Error("listing for a removed schema should fail")
	}
}

func TestMetricsReportClosureCounters(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)
	for _, a := range paperAssertions() {
		if status := doJSON(t, client, "POST", ts.URL+"/v1/assertions", a, nil); status != http.StatusCreated {
			t.Fatalf("assert %+v: %d", a, status)
		}
	}
	doJSON(t, client, "GET", ts.URL+"/v1/assertions?schema1=sc1&schema2=sc2", nil, nil)
	doJSON(t, client, "GET", ts.URL+"/v1/assertions?schema1=sc1&schema2=sc2", nil, nil)

	var snap map[string]any
	if status := doJSON(t, client, "GET", ts.URL+"/metrics", nil, &snap); status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	for _, key := range []string{
		"closure_cache_hits", "closure_cache_misses",
		"closure_derived_total", "closure_conflicts_total",
	} {
		if _, ok := snap[key]; !ok {
			t.Errorf("metrics snapshot missing %q", key)
		}
	}
	if hits, _ := snap["closure_cache_hits"].(float64); hits < 1 {
		t.Errorf("closure_cache_hits = %v, want >= 1 after repeated listing", snap["closure_cache_hits"])
	}
	if derived, _ := snap["closure_derived_total"].(float64); derived < 1 {
		t.Errorf("closure_derived_total = %v, want >= 1", snap["closure_derived_total"])
	}
}

// TestDurableRetractReplay checks that retractions journal and replay: a
// crash after an assert + retract recovers to a workspace without the
// assertion.
func TestDurableRetractReplay(t *testing.T) {
	dir := t.TempDir()
	srv, _ := openDurable(t, dir, journal.Hooks{})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	keep := assertionRequest{Schema1: "sc1", Object1: "Department", Code: 1, Schema2: "sc2", Object2: "Department"}
	drop := assertionRequest{Schema1: "sc1", Object1: "Student", Code: 3, Schema2: "sc2", Object2: "Grad_student"}
	for _, a := range []assertionRequest{keep, drop} {
		if status := doJSON(t, client, "POST", ts.URL+"/v1/assertions", a, nil); status != http.StatusCreated {
			t.Fatalf("assert %+v: %d", a, status)
		}
	}
	del := retractRequest{Schema1: "sc1", Object1: "Student", Schema2: "sc2", Object2: "Grad_student"}
	var resp retractResponse
	if status := doJSON(t, client, "DELETE", ts.URL+"/v1/assertions", del, &resp); status != http.StatusOK || !resp.Found {
		t.Fatalf("retract: %d %+v", status, resp)
	}

	ts.Close()
	srv.Kill()

	srv2, report := openDurable(t, dir, journal.Hooks{})
	if report.ReplayedRecords == 0 {
		t.Fatalf("nothing replayed: %+v", report)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Kill()
	var listed struct {
		Assertions []struct {
			Statement string `json:"statement"`
		} `json:"assertions"`
	}
	doJSON(t, ts2.Client(), "GET", ts2.URL+"/v1/assertions?schema1=sc1&schema2=sc2", nil, &listed)
	if len(listed.Assertions) != 1 || !strings.Contains(listed.Assertions[0].Statement, "Department") {
		t.Errorf("recovered assertions = %+v, want only the Department equality", listed.Assertions)
	}
}

package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// limitedServer returns a quiet server with the given limits and its
// httptest wrapper.
func limitedServer(t testing.TB, limits Limits) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Workers: 2, QueueCapacity: 16, Limits: limits})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	return srv, ts
}

// --- token bucket ---

func TestBucketTake(t *testing.T) {
	b := newBucket(10, 2) // 10 tokens/s, burst 2
	t0 := time.Now()

	// The bucket starts full: the burst admits immediately.
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(t0); !ok {
			t.Fatalf("take %d refused on a full bucket", i)
		}
	}
	// Empty: refusal reports the deficit, one token at 10/s = 100ms.
	ok, wait := b.take(t0)
	if ok {
		t.Fatal("take admitted on an empty bucket")
	}
	if wait <= 90*time.Millisecond || wait > 110*time.Millisecond {
		t.Fatalf("deficit wait = %v, want ~100ms", wait)
	}

	// 100ms later exactly one token has accrued.
	t1 := t0.Add(100 * time.Millisecond)
	if ok, _ := b.take(t1); !ok {
		t.Fatal("token did not accrue after the deficit elapsed")
	}
	if ok, _ := b.take(t1); ok {
		t.Fatal("second token minted from a single refill interval")
	}

	// A long idle stretch caps at the burst, never beyond.
	t2 := t1.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(t2); !ok {
			t.Fatalf("take %d refused after a long idle", i)
		}
	}
	if ok, _ := b.take(t2); ok {
		t.Fatal("bucket accrued beyond its burst")
	}
}

func TestBucketClockNeverRewinds(t *testing.T) {
	b := newBucket(1, 1)
	t0 := time.Now()
	if ok, _ := b.take(t0); !ok {
		t.Fatal("first take refused")
	}
	// A take with an earlier timestamp (goroutine scheduling skew) must
	// not mint tokens or panic; elapsed < 0 is ignored.
	if ok, _ := b.take(t0.Add(-time.Minute)); ok {
		t.Fatal("rewound clock minted a token")
	}
}

func TestClampRetryAfter(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-5, minRetryAfterSeconds},
		{0, minRetryAfterSeconds},
		{1, 1},
		{42, 42},
		{maxRetryAfterSeconds, maxRetryAfterSeconds},
		{100000, maxRetryAfterSeconds},
	} {
		if got := clampRetryAfter(tc.in); got != tc.want {
			t.Errorf("clampRetryAfter(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestLimitsWithDefaults(t *testing.T) {
	l := Limits{}.withDefaults()
	if l.MaxBodyBytes != maxBodyBytes {
		t.Errorf("MaxBodyBytes default = %d, want %d", l.MaxBodyBytes, maxBodyBytes)
	}
	if l.WorkspaceBurst != 0 || l.KeyBurst != 0 {
		t.Errorf("bursts armed without rates: %+v", l)
	}
	l = Limits{WorkspaceRate: 2.5, KeyRate: 0.2}.withDefaults()
	if l.WorkspaceBurst != 5 {
		t.Errorf("WorkspaceBurst = %d, want ceil(2*2.5) = 5", l.WorkspaceBurst)
	}
	if l.KeyBurst != 1 {
		t.Errorf("KeyBurst = %d, want floor of 1", l.KeyBurst)
	}
}

// retryAfterSeconds on a fresh server (no measured integration latency,
// empty queue) must still answer at least the floor — never 0.
func TestRetryAfterSecondsFloor(t *testing.T) {
	srv, _ := limitedServer(t, Limits{})
	ws, err := srv.manager.Get(DefaultWorkspace)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.retryAfterSeconds(ws); got < minRetryAfterSeconds {
		t.Fatalf("retryAfterSeconds on a fresh server = %d, want >= %d", got, minRetryAfterSeconds)
	}
}

// --- rate limiting over HTTP ---

func TestWorkspaceRateLimitHTTP(t *testing.T) {
	srv, ts := limitedServer(t, Limits{WorkspaceRate: 0.001, WorkspaceBurst: 2})
	client := ts.Client()

	codes := map[int]int{}
	var retryAfter string
	for i := 0; i < 5; i++ {
		resp, err := client.Get(ts.URL + "/v1/schemas")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes[resp.StatusCode]++
		if resp.StatusCode == http.StatusTooManyRequests {
			retryAfter = resp.Header.Get("Retry-After")
		}
	}
	if codes[http.StatusOK] != 2 || codes[http.StatusTooManyRequests] != 3 {
		t.Fatalf("status counts = %v, want 2x200 + 3x429", codes)
	}
	secs, err := strconv.Atoi(retryAfter)
	if err != nil || secs < minRetryAfterSeconds || secs > maxRetryAfterSeconds {
		t.Fatalf("429 Retry-After = %q, want an int in [%d, %d]",
			retryAfter, minRetryAfterSeconds, maxRetryAfterSeconds)
	}
	if got := srv.Metrics().Snapshot().Admission.RateLimitedTotal; got != 3 {
		t.Fatalf("rate_limited_total = %d, want 3", got)
	}

	// The health probe is admitOpen: never limited.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under rate limit = %d", resp.StatusCode)
	}
}

// Buckets are per workspace: exhausting one tenant's budget must not
// touch another's.
func TestRateLimitIsPerWorkspace(t *testing.T) {
	_, ts := limitedServer(t, Limits{WorkspaceRate: 0.001, WorkspaceBurst: 1})
	client := ts.Client()
	for _, name := range []string{"alpha", "beta"} {
		if status := doJSON(t, client, "POST", ts.URL+"/v1/workspaces",
			workspaceRequest{Name: name}, nil); status != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, status)
		}
	}
	// Drain alpha's single token, then verify beta still answers.
	for i, want := range []int{http.StatusOK, http.StatusTooManyRequests} {
		resp, err := client.Get(ts.URL + "/v1/workspaces/alpha/schemas")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("alpha request %d = %d, want %d", i, resp.StatusCode, want)
		}
	}
	resp, err := client.Get(ts.URL + "/v1/workspaces/beta/schemas")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta caught alpha's rate limit: %d", resp.StatusCode)
	}
}

// --- quotas ---

func TestSchemaQuota(t *testing.T) {
	srv, ts := limitedServer(t, Limits{MaxSchemas: 2})
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL) // two schemas: at quota

	status := doJSON(t, client, "POST", ts.URL+"/v1/schemas",
		map[string]string{"ddl": "schema extra\nentity E {\n attr Id: int key\n}\n"}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("upload beyond MaxSchemas = %d, want 429", status)
	}
	if got := srv.Metrics().Snapshot().Admission.QuotaRejectionsTotal; got != 1 {
		t.Fatalf("quota_rejections_total = %d, want 1", got)
	}

	// Deleting one frees the slot.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/schemas/sc1", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	status = doJSON(t, client, "POST", ts.URL+"/v1/schemas",
		map[string]string{"ddl": "schema extra\nentity E {\n attr Id: int key\n}\n"}, nil)
	if status != http.StatusCreated {
		t.Fatalf("upload after delete = %d, want 201", status)
	}
}

func TestJobQuota(t *testing.T) {
	// A queue whose worker blocks until released: the quota counts
	// queued-plus-running, so with MaxJobs 2 the third submit refuses.
	release := make(chan struct{})
	q := NewQueue(1, 16, time.Minute, func(ctx context.Context, req JobRequest) (*IntegrationResult, error) {
		<-release
		return &IntegrationResult{}, nil
	})
	defer q.Kill()
	defer close(release)
	q.SetMaxJobs(2)

	for i := 0; i < 2; i++ {
		if _, err := q.Submit(JobRequest{Type: "integrate", Schema1: "a", Schema2: "b"}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := q.Submit(JobRequest{Type: "integrate", Schema1: "a", Schema2: "b"})
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("third submit error = %v, want ErrQuota", err)
	}
}

func TestQuotaEndpoint(t *testing.T) {
	_, ts := limitedServer(t, Limits{MaxSchemas: 4, MaxJobs: 8, MaxBodyBytes: 1 << 20})
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	var rep QuotaReport
	if status := doJSON(t, client, "GET", ts.URL+"/v1/quota", nil, &rep); status != http.StatusOK {
		t.Fatalf("quota status = %d", status)
	}
	if rep.Workspace != DefaultWorkspace {
		t.Errorf("workspace = %q", rep.Workspace)
	}
	if rep.Limits.MaxSchemas != 4 || rep.Limits.MaxJobs != 8 || rep.Limits.MaxBodyBytes != 1<<20 {
		t.Errorf("limits = %+v", rep.Limits)
	}
	if rep.Usage.Schemas != 2 {
		t.Errorf("usage.schemas = %d, want 2", rep.Usage.Schemas)
	}
	if rep.Usage.JournalBytes != 0 {
		t.Errorf("memory-only server reports journal bytes: %d", rep.Usage.JournalBytes)
	}
}

// --- body caps ---

func TestBodyTooLarge(t *testing.T) {
	srv, ts := limitedServer(t, Limits{MaxBodyBytes: 256})
	client := ts.Client()

	big := strings.Repeat("x", 600)
	status := doJSON(t, client, "POST", ts.URL+"/v1/schemas", map[string]string{"ddl": big}, nil)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized JSON body = %d, want 413", status)
	}

	// The plain-text DDL path has its own reader; same cap, same 413.
	req, err := http.NewRequest("POST", ts.URL+"/v1/schemas", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized DDL body = %d, want 413", resp.StatusCode)
	}

	if got := srv.Metrics().Snapshot().Admission.BodyTooLargeTotal; got != 2 {
		t.Fatalf("body_too_large_total = %d, want 2", got)
	}

	// A body under the cap still works.
	status = doJSON(t, client, "POST", ts.URL+"/v1/schemas",
		map[string]string{"ddl": "schema s\nentity E {\n attr Id: int key\n}\n"}, nil)
	if status != http.StatusCreated {
		t.Fatalf("small body after cap = %d", status)
	}
}

// --- flood isolation ---

// TestFloodIsolation is the noisy-neighbor acceptance test: eight tenants
// share a server, one floods at ~50x the per-workspace rate, and the seven
// behaved tenants must see zero rejections and zero errors. Run under
// -race this also hammers the bucket/auth/metrics paths concurrently.
func TestFloodIsolation(t *testing.T) {
	const (
		tenants   = 8
		perTenant = 60 // requests each behaved tenant sends
		floodReqs = 1500
	)
	// Burst 120 covers each behaved tenant's whole run even if the race
	// detector serializes it into a burst; the flooder sends 1500.
	_, ts := limitedServer(t, Limits{WorkspaceRate: 100, WorkspaceBurst: 120})
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: tenants * 4}

	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("tenant%d", i)
		if status := doJSON(t, client, "POST", ts.URL+"/v1/workspaces",
			workspaceRequest{Name: names[i]}, nil); status != http.StatusCreated {
			t.Fatalf("create %s: status %d", names[i], status)
		}
	}

	get := func(ws string) int {
		resp, err := client.Get(ts.URL + "/v1/workspaces/" + ws + "/schemas")
		if err != nil {
			t.Error(err)
			return 0
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
				t.Errorf("429 without a valid Retry-After (%q)", resp.Header.Get("Retry-After"))
			}
		}
		return resp.StatusCode
	}

	var wg sync.WaitGroup
	behavedBad := make([]int, tenants-1) // non-200 counts per behaved tenant
	var flood429 int
	for i := 0; i < tenants-1; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for n := 0; n < perTenant; n++ {
				if get(names[id]) != http.StatusOK {
					behavedBad[id]++
				}
				time.Sleep(2 * time.Millisecond) // ~500/s offered, under burst
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < floodReqs; n++ { // no pacing: far beyond the budget
			if get(names[tenants-1]) == http.StatusTooManyRequests {
				flood429++
			}
		}
	}()
	wg.Wait()

	for id, bad := range behavedBad {
		if bad != 0 {
			t.Errorf("behaved tenant %d saw %d non-200 responses", id, bad)
		}
	}
	if flood429 == 0 {
		t.Error("flooding tenant was never rate-limited")
	}
}

// --- quota accounting across a crash ---

// TestQuotaSurvivesKill verifies admission state is rebuilt from the
// journal: schema counts (quota enforcement picks up where it left off)
// and journal-byte usage (byte-exact, recomputed from the file on open)
// survive an unclean death.
func TestQuotaSurvivesKill(t *testing.T) {
	dir := t.TempDir()
	limits := Limits{MaxSchemas: 2, MaxJournalBytes: 1 << 20}

	srv, _, err := Open(Config{Workers: 2, QueueCapacity: 16, Limits: limits},
		DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	var before QuotaReport
	if status := doJSON(t, client, "GET", ts.URL+"/v1/quota", nil, &before); status != http.StatusOK {
		t.Fatalf("quota status = %d", status)
	}
	if before.Usage.Schemas != 2 || before.Usage.JournalBytes == 0 {
		t.Fatalf("pre-kill usage = %+v", before.Usage)
	}

	// Crash: no drain, no snapshot. The journal is all that remains.
	ts.Close()
	srv.Kill()

	srv2, _, err := Open(Config{Workers: 2, QueueCapacity: 16, Limits: limits},
		DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Kill()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	client2 := ts2.Client()

	var after QuotaReport
	if status := doJSON(t, client2, "GET", ts2.URL+"/v1/quota", nil, &after); status != http.StatusOK {
		t.Fatalf("quota after restart = %d", status)
	}
	if after.Usage.Schemas != 2 {
		t.Fatalf("schemas after restart = %d, want 2", after.Usage.Schemas)
	}
	if after.Usage.JournalBytes != before.Usage.JournalBytes {
		t.Fatalf("journal bytes drifted across the kill: %d -> %d",
			before.Usage.JournalBytes, after.Usage.JournalBytes)
	}

	// The recovered count still enforces: a third schema is over quota.
	status := doJSON(t, client2, "POST", ts2.URL+"/v1/schemas",
		map[string]string{"ddl": "schema extra\nentity E {\n attr Id: int key\n}\n"}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("upload beyond recovered quota = %d, want 429", status)
	}
}

// TestJournalByteQuota fills a tiny journal budget and verifies mutations
// refuse with 429 + Retry-After while reads keep working.
func TestJournalByteQuota(t *testing.T) {
	dir := t.TempDir()
	srv, _, err := Open(Config{Workers: 2, QueueCapacity: 16, Limits: Limits{MaxJournalBytes: 64}},
		DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Kill()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// The first upload passes (journal still under 64 bytes) and pushes
	// the file over; the next mutation must refuse.
	uploadPaperSchemas(t, client, ts.URL)
	req := equivalenceRequest{Schema1: "sc1", Attr1: "Student.Name", Schema2: "sc2", Attr2: "Grad_student.Name"}
	status := doJSON(t, client, "POST", ts.URL+"/v1/equivalences", req, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("mutation over journal quota = %d, want 429", status)
	}
	// Reads stay up: overload of the write path never blocks the read path.
	if status := doJSON(t, client, "GET", ts.URL+"/v1/schemas", nil, nil); status != http.StatusOK {
		t.Fatalf("read under journal quota = %d", status)
	}
}

// --- limiter fast-path benchmarks (CI smoke runs these) ---

// BenchmarkBucketTake prices the limiter's hot path: one mutex'd refill
// and spend. Zero allocations.
func BenchmarkBucketTake(b *testing.B) {
	bk := newBucket(1e12, 1<<30)
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bk.take(now)
	}
}

// BenchmarkRateLimitedRejection prices a full server-side 429: admission
// refusal ahead of any handler work, static body, no JSON encoder.
func BenchmarkRateLimitedRejection(b *testing.B) {
	srv := New(Config{Workers: 1, QueueCapacity: 4, Limits: Limits{WorkspaceRate: 1e-9, WorkspaceBurst: 1}})
	defer srv.Shutdown(context.Background())
	h := srv.Handler()
	req := httptest.NewRequest("GET", "/v1/schemas", nil)
	// Drain the single token so every measured iteration is a rejection.
	h.ServeHTTP(httptest.NewRecorder(), req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := nullResponseWriter{h: make(http.Header, 4)}
		h.ServeHTTP(w, req)
	}
}

// BenchmarkAdmittedRead prices the happy path through the full admission
// chain (no keys, generous bucket) for comparison against the same route
// with admission disabled.
func BenchmarkAdmittedRead(b *testing.B) {
	for _, tc := range []struct {
		name   string
		limits Limits
	}{
		{"limits-off", Limits{}},
		{"limits-on", Limits{MaxSchemas: 100, WorkspaceRate: 1e12, WorkspaceBurst: 1 << 30}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			srv := New(Config{Workers: 1, QueueCapacity: 4, Limits: tc.limits})
			defer srv.Shutdown(context.Background())
			h := srv.Handler()
			req := httptest.NewRequest("GET", "/v1/schemas", nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := nullResponseWriter{h: make(http.Header, 4)}
				h.ServeHTTP(w, req)
			}
		})
	}
}

// nullResponseWriter discards the response; benchmarks measure the server,
// not a recorder's buffer growth.
type nullResponseWriter struct{ h http.Header }

func (w nullResponseWriter) Header() http.Header         { return w.h }
func (w nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w nullResponseWriter) WriteHeader(int)             {}

package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/ecr"
	"repro/internal/paperex"
)

// goldenPaperDDL computes the reference integration result for the paper's
// running example directly through the batch pipeline, the same golden
// outcome the repo's existing integration tests pin down.
func goldenPaperDDL(t testing.TB) string {
	t.Helper()
	specSrc, err := os.ReadFile("../../testdata/paper.spec")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := batch.ParseSpec(string(specSrc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := batch.Run([]*ecr.Schema{paperex.Sc1(), paperex.Sc2()}, spec)
	if err != nil {
		t.Fatal(err)
	}
	return ecr.FormatSchema(res.Schema)
}

// TestEndToEndPaperExample replays the paper's running example through the
// HTTP API — upload, equivalences, assertions, async integration job — and
// checks the result against the golden batch outcome.
func TestEndToEndPaperExample(t *testing.T) {
	_, ts := testServer(t)
	client := ts.Client()

	// 1. Upload the Figure 3/4 schemas as DDL.
	uploadPaperSchemas(t, client, ts.URL)

	// 2. Declare the five attribute equivalences of Screen 7.
	for _, pair := range [][2]string{
		{"Student.Name", "Grad_student.Name"},
		{"Student.Name", "Faculty.Name"},
		{"Student.GPA", "Grad_student.GPA"},
		{"Department.Dname", "Department.Dname"},
		{"Majors.Since", "Stud_major.Since"},
	} {
		req := equivalenceRequest{Schema1: "sc1", Attr1: pair[0], Schema2: "sc2", Attr2: pair[1]}
		if status := doJSON(t, client, "POST", ts.URL+"/v1/equivalences", req, nil); status != http.StatusCreated {
			t.Fatalf("declare %v: status %d", pair, status)
		}
	}

	// 3. Consult the ranked pairs as the Assertion Collection screen does:
	// Student/Grad_student must lead with the paper's 0.5000 ratio.
	var pairs struct {
		Pairs []struct {
			Object1 string  `json:"Object1"`
			Object2 string  `json:"Object2"`
			Ratio   float64 `json:"Ratio"`
		} `json:"pairs"`
	}
	doJSON(t, client, "GET", ts.URL+"/v1/resemblance?schema1=sc1&schema2=sc2", nil, &pairs)
	if len(pairs.Pairs) == 0 || pairs.Pairs[0].Ratio != 0.5 {
		t.Fatalf("ranked pairs = %+v", pairs.Pairs)
	}

	// 4. State the running example's assertions.
	for _, a := range []assertionRequest{
		{Schema1: "sc1", Object1: "Department", Code: 1, Schema2: "sc2", Object2: "Department"},
		{Schema1: "sc1", Object1: "Student", Code: 3, Schema2: "sc2", Object2: "Grad_student"},
		{Schema1: "sc1", Object1: "Student", Code: 4, Schema2: "sc2", Object2: "Faculty"},
		{Schema1: "sc1", Object1: "Majors", Code: 1, Schema2: "sc2", Object2: "Stud_major", Relationship: true},
	} {
		var resp assertionResponse
		if status := doJSON(t, client, "POST", ts.URL+"/v1/assertions", a, &resp); status != http.StatusCreated || !resp.Consistent {
			t.Fatalf("assert %+v: status %d resp %+v", a, status, resp)
		}
	}

	// 5. Submit the integration as an async job and poll to completion.
	var job Job
	status := doJSON(t, client, "POST", ts.URL+"/v1/jobs",
		JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}, &job)
	if status != http.StatusAccepted {
		t.Fatalf("job submit status = %d", status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !job.State.Terminal() && time.Now().Before(deadline) {
		doJSON(t, client, "GET", ts.URL+"/v1/jobs/"+job.ID, nil, &job)
	}
	if job.State != JobDone || job.Result == nil {
		t.Fatalf("job = %+v", job)
	}

	// 6. The integrated schema matches the golden batch result.
	if want := goldenPaperDDL(t); job.Result.DDL != want {
		t.Errorf("integrated DDL drifted from golden:\n%s\nwant:\n%s", job.Result.DDL, want)
	}
	if job.Result.Name != "INT_sc1_sc2" {
		t.Errorf("name = %q", job.Result.Name)
	}

	// 7. The sync endpoint agrees with the job result.
	var syncRes IntegrationResult
	if status := doJSON(t, client, "POST", ts.URL+"/v1/integrate",
		JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}, &syncRes); status != 200 {
		t.Fatalf("sync integrate status = %d", status)
	}
	if syncRes.DDL != job.Result.DDL {
		t.Error("sync and job results disagree")
	}
}

// TestConcurrentUploadsAndJobs hammers the service from many goroutines:
// parallel schema uploads and integration jobs, verifying every job
// reaches a terminal state with the correct result. With -race this is the
// acceptance gate for the concurrent store and worker pool.
func TestConcurrentUploadsAndJobs(t *testing.T) {
	srv := New(Config{Workers: 4, QueueCapacity: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	const (
		uploaders  = 4
		submitters = 4
		perWorker  = 10
	)
	want := goldenPaperDDL(t)
	jobIDs := make(chan string, submitters*perWorker)
	var wg sync.WaitGroup

	for g := 0; g < uploaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("up_%d_%d", g, i)
				ddl := fmt.Sprintf("schema %s\nentity Thing {\n attr Id: int key\n attr Label: char\n}\n", name)
				if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas",
					map[string]string{"ddl": ddl}, nil); status != http.StatusCreated {
					t.Errorf("upload %s: status %d", name, status)
					return
				}
				// Interleave reads to widen the race surface.
				doJSON(t, client, "GET", ts.URL+"/v1/schemas", nil, nil)
			}
		}(g)
	}
	specSrc, err := os.ReadFile("../../testdata/paper.spec")
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var job Job
				status := doJSON(t, client, "POST", ts.URL+"/v1/jobs",
					JobRequest{Type: "spec", Spec: string(specSrc)}, &job)
				if status != http.StatusAccepted {
					t.Errorf("job submit status = %d", status)
					return
				}
				jobIDs <- job.ID
			}
		}()
	}
	wg.Wait()
	close(jobIDs)

	deadline := time.Now().Add(30 * time.Second)
	count := 0
	for id := range jobIDs {
		count++
		var job Job
		for {
			doJSON(t, client, "GET", ts.URL+"/v1/jobs/"+id, nil, &job)
			if job.State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, job.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if job.State != JobDone || job.Result == nil {
			t.Fatalf("job %s = %+v", id, job)
		}
		if job.Result.DDL != want {
			t.Errorf("job %s result drifted from golden", id)
		}
	}
	if count != submitters*perWorker {
		t.Fatalf("collected %d jobs, want %d", count, submitters*perWorker)
	}

	// Queue depth settled back to zero and the metrics saw every job.
	var metrics MetricsSnapshot
	doJSON(t, client, "GET", ts.URL+"/metrics", nil, &metrics)
	if metrics.QueueDepth != 0 {
		t.Errorf("queueDepth = %d", metrics.QueueDepth)
	}
	if metrics.Jobs["done"] != uint64(submitters*perWorker) {
		t.Errorf("jobs done = %d", metrics.Jobs["done"])
	}
	if metrics.IntegrationLatency.Count != uint64(submitters*perWorker) {
		t.Errorf("latency count = %d", metrics.IntegrationLatency.Count)
	}
}

// TestServerStartShutdown exercises the real listener lifecycle: start on
// an ephemeral port, serve a request, shut down gracefully, and verify the
// listener is gone.
func TestServerStartShutdown(t *testing.T) {
	srv := New(Config{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() != addr {
		t.Errorf("Addr() = %q, want %q", srv.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestServerRunStopsOnContextCancel drives Run the way cmd/sit-server does
// (SIGTERM becomes a context cancellation).
func TestServerRunStopsOnContextCancel(t *testing.T) {
	srv := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, "127.0.0.1:0") }()

	// Wait for the listener, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Addr() == "" {
		t.Fatal("server never started listening")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

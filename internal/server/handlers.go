package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"time"

	"repro/internal/ecr"
	"repro/internal/integrate"
	"repro/internal/journal"
	"repro/internal/mapping"
	"repro/internal/version"
)

// maxBodyBytes bounds request bodies; component schemas are text, so 4 MiB
// is generous.
const maxBodyBytes = 4 << 20

// IntegrationResult is the JSON form of an integrate.Result, shared by the
// synchronous endpoint and the job queue.
type IntegrationResult struct {
	Name string `json:"name"`
	// Schema is the integrated schema in the ECR JSON encoding.
	Schema json.RawMessage `json:"schema"`
	// DDL is the same schema in ECR DDL, for human eyes.
	DDL string `json:"ddl"`
	// Clusters lists the integrated groups, largest first.
	Clusters [][]string `json:"clusters,omitempty"`
	// Report logs the integration decisions in order.
	Report []string `json:"report,omitempty"`
	// Mappings is the component-to-integrated mapping table in the shared
	// data-dictionary JSON format.
	Mappings  json.RawMessage `json:"mappings,omitempty"`
	ElapsedMs float64         `json:"elapsedMs"`
}

func newIntegrationResult(res *integrate.Result, elapsed time.Duration) (*IntegrationResult, error) {
	schemaJSON, err := ecr.EncodeJSON(res.Schema)
	if err != nil {
		return nil, err
	}
	mappingsJSON, err := mapping.EncodeJSON(res.Mappings)
	if err != nil {
		return nil, err
	}
	out := &IntegrationResult{
		Name:      res.Schema.Name,
		Schema:    schemaJSON,
		DDL:       ecr.FormatSchema(res.Schema),
		Report:    res.Report,
		Mappings:  mappingsJSON,
		ElapsedMs: float64(elapsed.Microseconds()) / 1000,
	}
	for _, cluster := range res.Clusters {
		var names []string
		for _, k := range cluster {
			names = append(names, k.String())
		}
		out.Clusters = append(out.Clusters, names)
	}
	return out, nil
}

// --- JSON plumbing ---

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// errStatus maps a pipeline error onto an HTTP status: durability failures
// are 503 (the request was valid; the journal could not record it), missing
// structures are 404, everything else is the caller's fault. Classification
// goes through typed errors, never message text — the messages embed
// user-controlled names that could otherwise steer the status.
func errStatus(err error) int {
	if journal.IsError(err) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, ErrNotFound) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// --- health and metrics ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  "ok",
		"version": version.Version,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// --- schemas ---

// schemasRequest uploads component schemas: either DDL text (one or more
// "schema" blocks) or one schema in the ECR JSON encoding.
type schemasRequest struct {
	DDL    string          `json:"ddl,omitempty"`
	Schema json.RawMessage `json:"schema,omitempty"`
}

func (s *Server) handleSchemasPost(w http.ResponseWriter, r *http.Request) {
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var req schemasRequest
	if ct == "text/plain" || ct == "application/x-ecr-ddl" {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req.DDL = string(body)
	} else if !decodeBody(w, r, &req) {
		return
	}

	var (
		added []string
		err   error
	)
	switch {
	case req.DDL != "" && req.Schema != nil:
		err = fmt.Errorf("request has both ddl and schema; send one")
	case req.DDL != "":
		added, err = s.store.AddSchemasDDL(req.DDL)
	case req.Schema != nil:
		var schema *ecr.Schema
		schema, err = ecr.DecodeJSON(req.Schema)
		if err == nil {
			added, err = s.store.AddSchemas([]*ecr.Schema{schema})
		}
	default:
		err = fmt.Errorf("request needs a ddl or schema field")
	}
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"added": added})
}

func (s *Server) handleSchemasList(w http.ResponseWriter, r *http.Request) {
	list := s.store.Schemas()
	if list == nil {
		list = []SchemaStats{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"schemas": list})
}

func (s *Server) handleSchemaGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	schema := s.store.Schema(name)
	if schema == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("schema %q not found", name))
		return
	}
	schemaJSON, err := ecr.EncodeJSON(schema)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":   schema.Name,
		"schema": json.RawMessage(schemaJSON),
		"ddl":    ecr.FormatSchema(schema),
	})
}

func (s *Server) handleSchemaDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	found, err := s.store.RemoveSchema(name)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("schema %q not found", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

// --- equivalences ---

// equivalenceRequest declares two "object.attribute" references, each
// resolved against its named schema, attribute-equivalent.
type equivalenceRequest struct {
	Schema1 string `json:"schema1"`
	Attr1   string `json:"attr1"`
	Schema2 string `json:"schema2"`
	Attr2   string `json:"attr2"`
}

func (s *Server) handleEquivalencesPost(w http.ResponseWriter, r *http.Request) {
	var req equivalenceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.store.DeclareEquivalence(req.Schema1, req.Attr1, req.Schema2, req.Attr2); err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"declared": true})
}

func (s *Server) handleEquivalencesList(w http.ResponseWriter, r *http.Request) {
	classes := s.store.EquivalenceClasses()
	if classes == nil {
		classes = [][]ecr.AttrRef{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"classes": classes})
}

// --- resemblance and suggestions ---

func pairParams(r *http.Request) (s1, s2 string, rel bool, err error) {
	q := r.URL.Query()
	s1, s2 = q.Get("schema1"), q.Get("schema2")
	if s1 == "" || s2 == "" {
		return "", "", false, fmt.Errorf("schema1 and schema2 query parameters are required")
	}
	switch kind := q.Get("kind"); kind {
	case "", "objects":
	case "relationships":
		rel = true
	default:
		return "", "", false, fmt.Errorf("bad kind %q (want objects or relationships)", kind)
	}
	return s1, s2, rel, nil
}

func (s *Server) handleResemblance(w http.ResponseWriter, r *http.Request) {
	s1, s2, rel, err := pairParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pairs, err := s.store.RankedPairs(s1, s2, rel)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"pairs": pairs})
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	s1, s2, rel, err := pairParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.store.Matrix(s1, s2, rel)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"matrix": m})
}

func (s *Server) handleSuggestions(w http.ResponseWriter, r *http.Request) {
	s1, s2, _, err := pairParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	threshold := 0.5
	if raw := r.URL.Query().Get("threshold"); raw != "" {
		threshold, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad threshold %q", raw))
			return
		}
	}
	cands, err := s.store.Suggest(s1, s2, threshold)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"suggestions": cands})
}

// --- assertions ---

// assertionRequest states one assertion between structures of two schemas,
// using the tool's numeric codes (1 equals, 2 contained-in, 3 contains, 4
// disjoint-integrable, 5 may-be, 0 disjoint-nonintegrable).
type assertionRequest struct {
	Schema1 string `json:"schema1"`
	Object1 string `json:"object1"`
	Code    int    `json:"code"`
	Schema2 string `json:"schema2"`
	Object2 string `json:"object2"`
	// Relationship selects the relationship-set matrix.
	Relationship bool `json:"relationship,omitempty"`
}

// assertionResponse reports the immediate closure of the matrix after the
// new assertion.
type assertionResponse struct {
	Consistent bool     `json:"consistent"`
	Derived    []string `json:"derived,omitempty"`
	Conflicts  []string `json:"conflicts,omitempty"`
}

func (s *Server) handleAssertionsPost(w http.ResponseWriter, r *http.Request) {
	var req assertionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.store.Assert(req.Schema1, req.Object1, req.Code, req.Schema2, req.Object2, req.Relationship)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	resp := assertionResponse{Consistent: res.Consistent()}
	for _, d := range res.Derived {
		resp.Derived = append(resp.Derived, d.Statement.String())
	}
	for _, c := range res.Conflicts {
		resp.Conflicts = append(resp.Conflicts, c.Error())
	}
	status := http.StatusCreated
	if !resp.Consistent {
		status = http.StatusConflict
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleAssertionsList(w http.ResponseWriter, r *http.Request) {
	s1, s2, rel, err := pairParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	entries, err := s.store.Assertions(s1, s2, rel)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	type entryJSON struct {
		Statement string `json:"statement"`
		Derived   bool   `json:"derived"`
	}
	out := []entryJSON{}
	for _, e := range entries {
		out = append(out, entryJSON{Statement: e.Statement.String(), Derived: e.Derived})
	}
	writeJSON(w, http.StatusOK, map[string]any{"assertions": out})
}

// --- integration: sync endpoint and job queue ---

// runIntegration executes one integration request against the store,
// timing it into the latency histogram.
func (s *Server) runIntegration(req JobRequest) (*IntegrationResult, error) {
	start := time.Now()
	var (
		res *integrate.Result
		err error
	)
	switch req.Type {
	case "integrate":
		res, err = s.store.Integrate(req.Schema1, req.Schema2)
	case "spec":
		res, err = s.store.RunSpec(req.Spec)
	default:
		err = fmt.Errorf("server: unknown job type %q", req.Type)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	s.metrics.IntegrationLatency.Observe(elapsed)
	return newIntegrationResult(res, elapsed)
}

func (s *Server) handleIntegrate(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Type == "" {
		req.Type = "integrate"
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	result, err := s.runIntegration(req)
	if err != nil {
		var ierr *integrate.Error
		if errors.As(err, &ierr) {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, result)
}

// retryAfterSeconds estimates how long a rejected submitter should back
// off before the queue has room: the current backlog divided across the
// worker pool, paced by the mean observed integration latency (1s when the
// histogram is still empty), clamped to [1s, 300s].
func (s *Server) retryAfterSeconds() int {
	mean := s.metrics.IntegrationLatency.Mean()
	if mean <= 0 {
		mean = 1
	}
	depth := s.queue.Depth()
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	secs := int(mean*float64(depth)/float64(workers) + 0.5)
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

func (s *Server) handleJobsPost(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !decodeBody(w, r, &req) {
		return
	}
	job, err := s.queue.Submit(req)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, errQueueFull):
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		case errors.Is(err, errQueueClosed), journal.IsError(err):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	jobs := s.queue.List()
	if jobs == nil {
		jobs = []Job{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q not found", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

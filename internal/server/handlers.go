package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/assertion"
	"repro/internal/ecr"
	"repro/internal/integrate"
	"repro/internal/journal"
	"repro/internal/mapping"
	"repro/internal/translate"
	"repro/internal/version"
)

// maxBodyBytes bounds request bodies; component schemas are text, so 4 MiB
// is generous.
const maxBodyBytes = 4 << 20

// IntegrationResult is the JSON form of an integrate.Result, shared by the
// synchronous endpoint and the job queue.
type IntegrationResult struct {
	Name string `json:"name"`
	// Schema is the integrated schema in the ECR JSON encoding.
	Schema json.RawMessage `json:"schema"`
	// DDL is the same schema in ECR DDL, for human eyes.
	DDL string `json:"ddl"`
	// Clusters lists the integrated groups, largest first.
	Clusters [][]string `json:"clusters,omitempty"`
	// Report logs the integration decisions in order.
	Report []string `json:"report,omitempty"`
	// Mappings is the component-to-integrated mapping table in the shared
	// data-dictionary JSON format.
	Mappings  json.RawMessage `json:"mappings,omitempty"`
	ElapsedMs float64         `json:"elapsedMs"`
}

func newIntegrationResult(res *integrate.Result, elapsed time.Duration) (*IntegrationResult, error) {
	schemaJSON, err := ecr.EncodeJSON(res.Schema)
	if err != nil {
		return nil, err
	}
	mappingsJSON, err := mapping.EncodeJSON(res.Mappings)
	if err != nil {
		return nil, err
	}
	out := &IntegrationResult{
		Name:      res.Schema.Name,
		Schema:    schemaJSON,
		DDL:       ecr.FormatSchema(res.Schema),
		Report:    res.Report,
		Mappings:  mappingsJSON,
		ElapsedMs: float64(elapsed.Microseconds()) / 1000,
	}
	for _, cluster := range res.Clusters {
		var names []string
		for _, k := range cluster {
			names = append(names, k.String())
		}
		out.Clusters = append(out.Clusters, names)
	}
	return out, nil
}

// --- JSON plumbing ---

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders an error body. Every 429 and 503 the server writes
// carries a Retry-After: paths that can estimate one (queue backlog, bucket
// deficit) set the header before coming here, and this fallback guarantees
// the floor for the rest — a backoff hint of "0" or none at all invites an
// immediate retry storm.
func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", strconv.Itoa(minRetryAfterSeconds))
		}
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// errStatus maps a pipeline error onto an HTTP status: durability failures
// are 503 (the request was valid; the journal could not record it), missing
// structures are 404, exhausted quotas are 429, oversized bodies are 413,
// everything else is the caller's fault. Classification goes through typed
// errors, never message text — the messages embed user-controlled names
// that could otherwise steer the status.
func errStatus(err error) int {
	var derived *assertion.DerivedError
	switch {
	case journal.IsError(err):
		return http.StatusServiceUnavailable
	case errors.As(err, &derived):
		// Retracting a derived entry conflicts with its supports.
		return http.StatusConflict
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrBodyTooLarge):
		return http.StatusRequestEntityTooLarge
	default:
		return http.StatusBadRequest
	}
}

// bodyLimit is the mutation-body cap for this server.
func (s *Server) bodyLimit() int64 {
	if s.limits.MaxBodyBytes > 0 {
		return s.limits.MaxBodyBytes
	}
	return maxBodyBytes
}

// mapBodyError classifies a body-read failure, converting MaxBytesReader
// overflow into the typed 413 error (and counting it).
func (s *Server) mapBodyError(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.metrics.ObserveBodyTooLarge()
		return fmt.Errorf("server: %w: limit is %d bytes", ErrBodyTooLarge, mbe.Limit)
	}
	return err
}

// decodeBody decodes a JSON request body under the configured size cap.
// Overflow is 413 with ErrBodyTooLarge; the cap cuts the read off at the
// limit, so an oversized upload is never buffered in full.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.bodyLimit()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		err = s.mapBodyError(err)
		if errors.Is(err, ErrBodyTooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		}
		return false
	}
	return true
}

// --- health and metrics ---

// handleHealthz reports liveness plus the replication role. A follower also
// reports its per-workspace lag, and ?max-lag=N (records) turns the check
// into a load-balancer gate: a follower lagging beyond N on any workspace —
// or one that has not completed a sync round yet — answers 503, so stale
// replicas drop out of a read pool without external lag plumbing.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status":  "ok",
		"version": version.Version,
		"role":    s.role(),
	}
	status := http.StatusOK
	if f := s.follow.Load(); f != nil {
		lag := f.lagSnapshot()
		resp["leader"] = f.leader
		resp["replication"] = lag
		if raw := r.URL.Query().Get("max-lag"); raw != "" {
			maxLag, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad max-lag %q", raw))
				return
			}
			if len(lag) == 0 {
				status = http.StatusServiceUnavailable
				resp["status"] = "syncing"
			}
			for _, l := range lag {
				if l.LagRecords > maxLag {
					status = http.StatusServiceUnavailable
					resp["status"] = "lagging"
					break
				}
			}
		}
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// --- workspace lifecycle ---

// workspaceInfo summarizes one workspace for listings and GETs.
type workspaceInfo struct {
	Name       string    `json:"name"`
	Created    time.Time `json:"created"`
	Schemas    int       `json:"schemas"`
	QueueDepth int       `json:"queueDepth"`
}

func newWorkspaceInfo(ws *Workspace) workspaceInfo {
	return workspaceInfo{
		Name:       ws.name,
		Created:    ws.created,
		Schemas:    len(ws.store.SchemaNames()),
		QueueDepth: ws.queue.Depth(),
	}
}

// workspacePath is the canonical URL of a workspace's API root.
func workspacePath(name string) string {
	return "/v1/workspaces/" + url.PathEscape(name)
}

func (s *Server) handleWorkspacesList(w http.ResponseWriter, r *http.Request) {
	out := []workspaceInfo{}
	for _, ws := range s.manager.List() {
		out = append(out, newWorkspaceInfo(ws))
	}
	writeJSON(w, http.StatusOK, map[string]any{"workspaces": out})
}

// workspaceRequest creates a named workspace.
type workspaceRequest struct {
	Name string `json:"name"`
}

func (s *Server) handleWorkspacesPost(w http.ResponseWriter, r *http.Request) {
	var req workspaceRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ws, err := s.manager.Create(req.Name)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrWorkspaceExists):
			status = http.StatusConflict
		case errors.Is(err, ErrWorkspaceCap):
			status = http.StatusForbidden
		case journal.IsError(err):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	w.Header().Set("Location", workspacePath(ws.name))
	writeJSON(w, http.StatusCreated, newWorkspaceInfo(ws))
}

func (s *Server) handleWorkspaceGet(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, newWorkspaceInfo(ws))
}

func (s *Server) handleWorkspaceDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("ws")
	if err := s.manager.Delete(name); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

// --- schemas ---

// schemasRequest uploads component schemas. Legacy fields: ddl (one or more
// ECR DDL "schema" blocks) or schema (one schema in the ECR JSON encoding).
// The general path is source + format: source text in any registered
// frontend language (dictionary, sql, hierarchical, avro, jsonschema); an
// empty format is sniffed. name is the fallback schema name for formats
// that do not carry one in-text.
type schemasRequest struct {
	DDL    string          `json:"ddl,omitempty"`
	Schema json.RawMessage `json:"schema,omitempty"`
	Source string          `json:"source,omitempty"`
	Format string          `json:"format,omitempty"`
	Name   string          `json:"name,omitempty"`
}

func (s *Server) handleSchemasPost(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var req schemasRequest
	if ct == "text/plain" || ct == "application/x-ecr-ddl" {
		// Raw text bodies go straight to the registry; ?format= and ?name=
		// stand in for the JSON envelope's fields.
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.bodyLimit()))
		if err != nil {
			err = s.mapBodyError(err)
			writeError(w, errStatus(err), err)
			return
		}
		req.Source = string(body)
		req.Format = r.URL.Query().Get("format")
		req.Name = r.URL.Query().Get("name")
	} else if !s.decodeBody(w, r, &req) {
		return
	}

	// Resolve the three body forms to (source, format) for the registry.
	// The legacy ddl and schema fields are both dictionary-format sources.
	var src []byte
	format := req.Format
	fields := 0
	if req.DDL != "" {
		fields++
		src, format = []byte(req.DDL), "dictionary"
	}
	if req.Schema != nil {
		fields++
		src, format = req.Schema, "dictionary"
	}
	if req.Source != "" {
		fields++
		src = []byte(req.Source)
	}
	if fields != 1 {
		var err error
		if fields == 0 {
			err = fmt.Errorf("request needs a ddl, schema or source field")
		} else {
			err = fmt.Errorf("request has more than one of ddl, schema and source; send one")
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}

	res, used, err := translate.Parse(format, req.Name, src)
	var added []string
	if err == nil {
		added, err = ws.store.AddSchemas(res.Schemas)
	}
	if err != nil {
		if errors.Is(err, ErrQuota) {
			s.metrics.ObserveQuotaRejection()
		}
		writeError(w, errStatus(err), err)
		return
	}
	s.metrics.ObserveSchemaParse(boundedFormat(used))
	writeJSON(w, http.StatusCreated, map[string]any{
		"added":  added,
		"format": used,
		"notes":  res.Notes,
	})
}

func (s *Server) handleSchemasList(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	list := ws.store.Schemas()
	if list == nil {
		list = []SchemaStats{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"schemas": list})
}

func (s *Server) handleSchemaGet(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	schema := ws.store.Schema(name)
	if schema == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("schema %q not found", name))
		return
	}
	schemaJSON, err := ecr.EncodeJSON(schema)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":   schema.Name,
		"schema": json.RawMessage(schemaJSON),
		"ddl":    ecr.FormatSchema(schema),
	})
}

func (s *Server) handleSchemaDelete(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	found, err := ws.store.RemoveSchema(name)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("schema %q not found", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

// --- equivalences ---

// equivalenceRequest declares two "object.attribute" references, each
// resolved against its named schema, attribute-equivalent.
type equivalenceRequest struct {
	Schema1 string `json:"schema1"`
	Attr1   string `json:"attr1"`
	Schema2 string `json:"schema2"`
	Attr2   string `json:"attr2"`
}

func (s *Server) handleEquivalencesPost(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	var req equivalenceRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := ws.store.DeclareEquivalence(req.Schema1, req.Attr1, req.Schema2, req.Attr2); err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"declared": true})
}

func (s *Server) handleEquivalencesList(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	classes := ws.store.EquivalenceClasses()
	if classes == nil {
		classes = [][]ecr.AttrRef{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"classes": classes})
}

// --- resemblance and suggestions ---

func pairParams(r *http.Request) (s1, s2 string, rel bool, err error) {
	q := r.URL.Query()
	s1, s2 = q.Get("schema1"), q.Get("schema2")
	if s1 == "" || s2 == "" {
		return "", "", false, fmt.Errorf("schema1 and schema2 query parameters are required")
	}
	switch kind := q.Get("kind"); kind {
	case "", "objects":
	case "relationships":
		rel = true
	default:
		return "", "", false, fmt.Errorf("bad kind %q (want objects or relationships)", kind)
	}
	return s1, s2, rel, nil
}

func (s *Server) handleResemblance(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	s1, s2, rel, err := pairParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pairs, err := ws.store.RankedPairs(s1, s2, rel)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"pairs": pairs})
}

func (s *Server) handleMatrix(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	s1, s2, rel, err := pairParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := ws.store.Matrix(s1, s2, rel)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"matrix": m})
}

func (s *Server) handleSuggestions(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	s1, s2, _, err := pairParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	threshold := 0.5
	if raw := r.URL.Query().Get("threshold"); raw != "" {
		threshold, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad threshold %q", raw))
			return
		}
	}
	cands, err := ws.store.Suggest(s1, s2, threshold)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"suggestions": cands})
}

// --- assertions ---

// assertionRequest states one assertion between structures of two schemas,
// using the tool's numeric codes (1 equals, 2 contained-in, 3 contains, 4
// disjoint-integrable, 5 may-be, 0 disjoint-nonintegrable).
type assertionRequest struct {
	Schema1 string `json:"schema1"`
	Object1 string `json:"object1"`
	Code    int    `json:"code"`
	Schema2 string `json:"schema2"`
	Object2 string `json:"object2"`
	// Relationship selects the relationship-set matrix.
	Relationship bool `json:"relationship,omitempty"`
}

// conflictJSON reports one contradiction plus the chain of DDA-specified
// assertions that jointly imply it (the conflict-explanation API).
type conflictJSON struct {
	Conflict string   `json:"conflict"`
	Implies  []string `json:"implied_by,omitempty"`
}

// assertionResponse reports the incremental closure of the matrix after the
// new assertion: the entries this operation derived and the standing
// conflicts, each grounded in its supporting assertions.
type assertionResponse struct {
	Consistent bool           `json:"consistent"`
	Derived    []string       `json:"derived,omitempty"`
	Conflicts  []string       `json:"conflicts,omitempty"`
	Explained  []conflictJSON `json:"conflict_chains,omitempty"`
}

func (s *Server) handleAssertionsPost(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	var req assertionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	res, chains, err := ws.store.Assert(req.Schema1, req.Object1, req.Code, req.Schema2, req.Object2, req.Relationship)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	resp := assertionResponse{Consistent: res.Consistent()}
	for _, d := range res.Derived {
		resp.Derived = append(resp.Derived, d.Statement.String())
	}
	for i, c := range res.Conflicts {
		resp.Conflicts = append(resp.Conflicts, c.Error())
		cj := conflictJSON{Conflict: c.Error()}
		if i < len(chains) {
			cj.Implies = chains[i]
		}
		resp.Explained = append(resp.Explained, cj)
	}
	status := http.StatusCreated
	if !resp.Consistent {
		status = http.StatusConflict
	}
	writeJSON(w, status, resp)
}

// retractRequest names the assertion to remove; the shape mirrors
// assertionRequest without a code.
type retractRequest struct {
	Schema1      string `json:"schema1"`
	Object1      string `json:"object1"`
	Schema2      string `json:"schema2"`
	Object2      string `json:"object2"`
	Relationship bool   `json:"relationship,omitempty"`
}

// retractResponse reports what the retraction did: the statements that left
// the matrix and the derived entries that survived (or reappeared) through
// an alternative derivation.
type retractResponse struct {
	Found      bool     `json:"found"`
	Consistent bool     `json:"consistent"`
	Removed    []string `json:"removed,omitempty"`
	Rederived  []string `json:"rederived,omitempty"`
	Conflicts  []string `json:"conflicts,omitempty"`
}

func (s *Server) handleAssertionsDelete(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	var req retractRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	res, err := ws.store.Retract(req.Schema1, req.Object1, req.Schema2, req.Object2, req.Relationship)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	if !res.Found {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: no assertion held between %s.%s and %s.%s",
			req.Schema1, req.Object1, req.Schema2, req.Object2))
		return
	}
	resp := retractResponse{Found: true, Consistent: len(res.Conflicts) == 0}
	for _, st := range res.Removed {
		resp.Removed = append(resp.Removed, st.String())
	}
	for _, e := range res.Rederived {
		resp.Rederived = append(resp.Rederived, e.Statement.String())
	}
	for _, c := range res.Conflicts {
		resp.Conflicts = append(resp.Conflicts, c.Error())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAssertionExplain serves the conflict-explanation API's read side:
// the chain of DDA-specified assertions implying the entry held for a pair.
func (s *Server) handleAssertionExplain(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	s1, s2, rel, err := pairParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	o1 := r.URL.Query().Get("object1")
	o2 := r.URL.Query().Get("object2")
	if o1 == "" || o2 == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: object1 and object2 query parameters required"))
		return
	}
	chain, found, err := ws.store.ExplainAssertion(s1, o1, s2, o2, rel)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: no assertion held between %s.%s and %s.%s", s1, o1, s2, o2))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"implied_by": chain})
}

func (s *Server) handleAssertionsList(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	s1, s2, rel, err := pairParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	entries, err := ws.store.Assertions(s1, s2, rel)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	type entryJSON struct {
		Statement string `json:"statement"`
		Derived   bool   `json:"derived"`
	}
	out := []entryJSON{}
	for _, e := range entries {
		out = append(out, entryJSON{Statement: e.Statement.String(), Derived: e.Derived})
	}
	writeJSON(w, http.StatusOK, map[string]any{"assertions": out})
}

// --- integration: sync endpoint and job queue ---

// runIntegration executes one integration request against the workspace's
// store, timing it into the shared latency histogram and counting it under
// the workspace's name.
func (s *Server) runIntegration(ws *Workspace, req JobRequest) (*IntegrationResult, error) {
	start := time.Now()
	var (
		res *integrate.Result
		err error
	)
	switch req.Type {
	case "integrate":
		res, err = ws.store.Integrate(req.Schema1, req.Schema2)
	case "spec":
		res, err = ws.store.RunSpec(req.Spec)
	default:
		err = fmt.Errorf("server: unknown job type %q", req.Type)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	s.metrics.IntegrationLatency.Observe(elapsed)
	s.metrics.ObserveIntegration(ws.name)
	return newIntegrationResult(res, elapsed)
}

func (s *Server) handleIntegrate(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Type == "" {
		req.Type = "integrate"
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	result, err := s.runIntegration(ws, req)
	if err != nil {
		var ierr *integrate.Error
		if errors.As(err, &ierr) {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, result)
}

// fallbackJobSeconds paces the backlog estimate when the latency histogram
// is still empty (a fresh server has measured nothing yet): assume one
// second per queued job rather than zero, which would compute a useless
// "Retry-After: 0".
const fallbackJobSeconds = 1.0

// retryAfterSeconds estimates how long a rejected submitter should back
// off before the workspace's queue has room: the current backlog divided
// across the worker pool, paced by the mean observed integration latency
// (fallbackJobSeconds when unmeasured), clamped to
// [minRetryAfterSeconds, maxRetryAfterSeconds].
func (s *Server) retryAfterSeconds(ws *Workspace) int {
	mean := s.metrics.IntegrationLatency.Mean()
	if mean <= 0 {
		mean = fallbackJobSeconds
	}
	depth := ws.queue.Depth()
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	return clampRetryAfter(int(mean*float64(depth)/float64(workers) + 0.5))
}

// jobPath is the URL a submitted job can be polled at. Jobs are namespaced
// per workspace: a submit through the workspace-scoped route points into
// that workspace, one through the unprefixed alias keeps the legacy
// unprefixed form (both address the same default-workspace job).
func jobPath(r *http.Request, id string) string {
	if ws := r.PathValue("ws"); ws != "" {
		return workspacePath(ws) + "/jobs/" + id
	}
	return "/v1/jobs/" + id
}

func (s *Server) handleJobsPost(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	job, err := ws.queue.Submit(req)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrQuota):
			// The tenant's own envelope is full — unlike a full buffer this
			// clears only when the tenant's jobs finish, so the same backlog
			// estimate paces the retry.
			status = http.StatusTooManyRequests
			s.metrics.ObserveQuotaRejection()
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(ws)))
		case errors.Is(err, errQueueFull):
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(ws)))
		case errors.Is(err, errQueueClosed), journal.IsError(err):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	w.Header().Set("Location", jobPath(r, job.ID))
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleJobsList(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	jobs := ws.jobsView()
	if jobs == nil {
		jobs = []Job{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *Server) handleJobGet(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := ws.jobView(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %q not found", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ecr"
	"repro/internal/journal"
)

// openDurable opens a durable server over dir with test-sized pools.
func openDurable(t testing.TB, dir string, hooks journal.Hooks) (*Server, *RecoveryReport) {
	t.Helper()
	srv, report, err := Open(Config{Workers: 2, QueueCapacity: 16},
		DurabilityConfig{Dir: dir, Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	return srv, report
}

// populatePaperWorkspace drives the paper's running example through the
// HTTP API: schema upload, the five equivalences, the four assertions.
func populatePaperWorkspace(t testing.TB, client *http.Client, base string) {
	t.Helper()
	uploadPaperSchemas(t, client, base)
	for _, pair := range [][2]string{
		{"Student.Name", "Grad_student.Name"},
		{"Student.Name", "Faculty.Name"},
		{"Student.GPA", "Grad_student.GPA"},
		{"Department.Dname", "Department.Dname"},
		{"Majors.Since", "Stud_major.Since"},
	} {
		req := equivalenceRequest{Schema1: "sc1", Attr1: pair[0], Schema2: "sc2", Attr2: pair[1]}
		if status := doJSON(t, client, "POST", base+"/v1/equivalences", req, nil); status != http.StatusCreated {
			t.Fatalf("declare %v: status %d", pair, status)
		}
	}
	for _, a := range paperAssertions() {
		if status := doJSON(t, client, "POST", base+"/v1/assertions", a, nil); status != http.StatusCreated {
			t.Fatalf("assert %+v: status %d", a, status)
		}
	}
}

func paperAssertions() []assertionRequest {
	return []assertionRequest{
		{Schema1: "sc1", Object1: "Department", Code: 1, Schema2: "sc2", Object2: "Department"},
		{Schema1: "sc1", Object1: "Student", Code: 3, Schema2: "sc2", Object2: "Grad_student"},
		{Schema1: "sc1", Object1: "Student", Code: 4, Schema2: "sc2", Object2: "Faculty"},
		{Schema1: "sc1", Object1: "Majors", Code: 1, Schema2: "sc2", Object2: "Stud_major", Relationship: true},
	}
}

// TestCrashRecoveryEndToEnd is the durability acceptance test: populate the
// paper's running example over HTTP, run an integration job, crash the
// process (no drain, no sync, no final snapshot), restart from the same
// data directory and verify the rebuilt workspace produces the golden
// result and the finished job survived with its output.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	want := goldenPaperDDL(t)

	srv, report := openDurable(t, dir, journal.Hooks{})
	if report.RecoveredWorkspaces != 0 || report.ReplayedRecords != 0 {
		t.Fatalf("fresh dir reported recovery: %+v", report)
	}
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	populatePaperWorkspace(t, client, ts.URL)

	var job Job
	if status := doJSON(t, client, "POST", ts.URL+"/v1/jobs",
		JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}, &job); status != http.StatusAccepted {
		t.Fatalf("job submit status = %d", status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !job.State.Terminal() && time.Now().Before(deadline) {
		doJSON(t, client, "GET", ts.URL+"/v1/jobs/"+job.ID, nil, &job)
	}
	if job.State != JobDone || job.Result == nil || job.Result.DDL != want {
		t.Fatalf("job before crash = %+v", job)
	}

	// Crash. No graceful anything: the data directory is all that remains.
	ts.Close()
	srv.Kill()

	srv2, report2 := openDurable(t, dir, journal.Hooks{})
	if report2.RecoveredWorkspaces != 1 || report2.Schemas != 2 {
		t.Fatalf("recovery report = %+v", report2)
	}
	if report2.ReplayedRecords == 0 {
		t.Fatalf("nothing replayed: %+v", report2)
	}
	if report2.RecoveredJobs != 1 || report2.RequeuedJobs != 0 || report2.InterruptedJobs != 0 {
		t.Fatalf("job recovery = %+v", report2)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	client2 := ts2.Client()

	// The finished job is still addressable, result intact.
	var recovered Job
	if status := doJSON(t, client2, "GET", ts2.URL+"/v1/jobs/"+job.ID, nil, &recovered); status != http.StatusOK {
		t.Fatalf("recovered job status = %d", status)
	}
	if recovered.State != JobDone || recovered.Result == nil || recovered.Result.DDL != want {
		t.Fatalf("recovered job = %+v", recovered)
	}

	// The replayed workspace integrates to the golden schema.
	var res IntegrationResult
	if status := doJSON(t, client2, "POST", ts2.URL+"/v1/integrate",
		JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}, &res); status != http.StatusOK {
		t.Fatalf("integrate after recovery status = %d", status)
	}
	if res.DDL != want {
		t.Errorf("integrated DDL after recovery drifted from golden:\n%s\nwant:\n%s", res.DDL, want)
	}

	// /metrics exposes the journal section on a durable server.
	var metrics MetricsSnapshot
	doJSON(t, client2, "GET", ts2.URL+"/metrics", nil, &metrics)
	if metrics.Journal == nil {
		t.Fatal("durable server has no journal metrics")
	}
	if metrics.Journal.RecoveredWorkspaces != 1 || metrics.Journal.RecoveredJobs != 1 {
		t.Errorf("journal metrics = %+v", metrics.Journal)
	}

	// Graceful shutdown compacts; a third start replays nothing.
	ts2.Close()
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv3, report3 := openDurable(t, dir, journal.Hooks{})
	defer srv3.Shutdown(context.Background())
	if report3.SnapshotSeq == 0 || report3.ReplayedRecords != 0 {
		t.Fatalf("post-compaction report = %+v", report3)
	}
	if report3.Schemas != 2 || report3.RecoveredJobs != 1 {
		t.Fatalf("post-compaction state = %+v", report3)
	}
	got, err := srv3.Store().Integrate("sc1", "sc2")
	if err != nil {
		t.Fatal(err)
	}
	if ecr.FormatSchema(got.Schema) != want {
		t.Error("snapshot-restored workspace drifted from golden")
	}
}

// TestCrashRecoveryTornTail appends a torn (newline-less, half-written)
// record to the journal, as a crash mid-append would leave it, and checks
// recovery drops it without losing the committed state.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	srv, _ := openDurable(t, dir, journal.Hooks{})
	ts := httptest.NewServer(srv.Handler())
	populatePaperWorkspace(t, ts.Client(), ts.URL)
	ts.Close()
	srv.Kill()

	f, err := os.OpenFile(filepath.Join(dir, DefaultWorkspace, "journal.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"op":"half-writ`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2, report := openDurable(t, dir, journal.Hooks{})
	defer srv2.Shutdown(context.Background())
	if report.DroppedBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", report)
	}
	if report.Schemas != 2 {
		t.Fatalf("recovery report = %+v", report)
	}
	res, err := srv2.Store().Integrate("sc1", "sc2")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ecr.FormatSchema(res.Schema), goldenPaperDDL(t); got != want {
		t.Errorf("DDL after torn-tail recovery drifted:\n%s\nwant:\n%s", got, want)
	}
}

// TestCrashRecoveryTruncatedFinalRecord cuts the journal mid-way through
// its real final record (a crash between write and fsync): that record is
// lost, everything before it survives, and re-issuing the lost operation
// restores the full state.
func TestCrashRecoveryTruncatedFinalRecord(t *testing.T) {
	dir := t.TempDir()
	srv, _ := openDurable(t, dir, journal.Hooks{})
	ts := httptest.NewServer(srv.Handler())
	populatePaperWorkspace(t, ts.Client(), ts.URL)
	ts.Close()
	srv.Kill()

	path := filepath.Join(dir, DefaultWorkspace, "journal.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 8 {
		t.Fatalf("journal too small: %d bytes", len(data))
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, report := openDurable(t, dir, journal.Hooks{})
	defer srv2.Shutdown(context.Background())
	if report.DroppedBytes == 0 {
		t.Fatalf("truncated record not detected: %+v", report)
	}

	// The last journaled operation — the relationship assertion — was cut;
	// re-issue it and the workspace is whole again.
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	asserts := paperAssertions()
	last := asserts[len(asserts)-1]
	if status := doJSON(t, ts2.Client(), "POST", ts2.URL+"/v1/assertions", last, nil); status != http.StatusCreated {
		t.Fatalf("re-assert status = %d", status)
	}
	res, err := srv2.Store().Integrate("sc1", "sc2")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ecr.FormatSchema(res.Schema), goldenPaperDDL(t); got != want {
		t.Errorf("DDL after truncated-record recovery drifted:\n%s\nwant:\n%s", got, want)
	}
}

// TestJournalFullDegradesTo503 fills the "disk" under the journal:
// mutations are refused with 503 (never half-applied), reads keep working,
// and once space returns the server resumes — with the refused operations
// absent from the log on restart.
func TestJournalFullDegradesTo503(t *testing.T) {
	dir := t.TempDir()
	var full atomic.Bool
	hooks := journal.Hooks{BeforeAppend: func(line []byte) (int, error) {
		if full.Load() {
			return 0, errors.New("no space left on device")
		}
		return len(line), nil
	}}
	srv, _ := openDurable(t, dir, hooks)
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	full.Store(true)
	ddl := "schema refused\nentity T {\n attr Id: int key\n}\n"
	if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas",
		map[string]string{"ddl": ddl}, nil); status != http.StatusServiceUnavailable {
		t.Errorf("schema upload on full disk: status %d, want 503", status)
	}
	req := equivalenceRequest{Schema1: "sc1", Attr1: "Student.Name", Schema2: "sc2", Attr2: "Grad_student.Name"}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/equivalences", req, nil); status != http.StatusServiceUnavailable {
		t.Errorf("equivalence on full disk: status %d, want 503", status)
	}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/jobs",
		JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}, nil); status != http.StatusServiceUnavailable {
		t.Errorf("job submit on full disk: status %d, want 503", status)
	}
	// Reads are unaffected.
	if status := doJSON(t, client, "GET", ts.URL+"/v1/schemas", nil, nil); status != http.StatusOK {
		t.Errorf("schema list on full disk: status %d", status)
	}

	full.Store(false)
	ddl = "schema tiny\nentity T {\n attr Id: int key\n}\n"
	if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas",
		map[string]string{"ddl": ddl}, nil); status != http.StatusCreated {
		t.Fatalf("schema upload after space returned: status %d", status)
	}

	ts.Close()
	srv.Kill()
	srv2, report := openDurable(t, dir, journal.Hooks{})
	defer srv2.Shutdown(context.Background())
	if report.Schemas != 3 {
		t.Fatalf("recovered %d schemas, want sc1+sc2+tiny: %+v", report.Schemas, report)
	}
	if srv2.Store().Schema("refused") != nil {
		t.Error("operation refused on full disk resurrected after restart")
	}
	if len(srv2.Store().EquivalenceClasses()) != 0 {
		t.Error("refused equivalence resurrected after restart")
	}
}

// TestFsyncFailureDoesNotResurrectRejectedOps pins the rollback contract
// end to end: operations rejected with 503 because their fsync failed must
// leave no trace in the journal — the client's retry succeeds (no
// duplicate-schema collision, no reused job ID) and a restart replays
// exactly the acknowledged state.
func TestFsyncFailureDoesNotResurrectRejectedOps(t *testing.T) {
	dir := t.TempDir()
	var fail atomic.Bool
	hooks := journal.Hooks{BeforeSync: func() error {
		if fail.Load() {
			return errors.New("injected fsync failure")
		}
		return nil
	}}
	srv, _ := openDurable(t, dir, hooks)
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	uploadPaperSchemas(t, client, ts.URL)

	fail.Store(true)
	ddl := "schema tiny\nentity T {\n attr Id: int key\n}\n"
	if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas",
		map[string]string{"ddl": ddl}, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("schema upload with failing fsync: status %d, want 503", status)
	}
	jobReq := JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}
	if status := doJSON(t, client, "POST", ts.URL+"/v1/jobs", jobReq, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("job submit with failing fsync: status %d, want 503", status)
	}

	// Storage heals; the client retries both. The schema must not collide
	// with a ghost of the rejected record, and the job must not reuse the
	// burned ID.
	fail.Store(false)
	if status := doJSON(t, client, "POST", ts.URL+"/v1/schemas",
		map[string]string{"ddl": ddl}, nil); status != http.StatusCreated {
		t.Fatalf("schema retry after fsync healed: status %d, want 201", status)
	}
	var job Job
	if status := doJSON(t, client, "POST", ts.URL+"/v1/jobs", jobReq, &job); status != http.StatusAccepted {
		t.Fatalf("job retry after fsync healed: status %d", status)
	}
	if job.ID != "job-2" {
		t.Errorf("retried job ID = %s, want job-2 (job-1 was burned by the failed persist)", job.ID)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !job.State.Terminal() && time.Now().Before(deadline) {
		doJSON(t, client, "GET", ts.URL+"/v1/jobs/"+job.ID, nil, &job)
	}
	if !job.State.Terminal() {
		t.Fatal("retried job never finished")
	}

	ts.Close()
	srv.Kill()
	srv2, report := openDurable(t, dir, journal.Hooks{})
	defer srv2.Shutdown(context.Background())
	if report.Schemas != 3 {
		t.Fatalf("recovered %d schemas, want sc1+sc2+tiny: %+v", report.Schemas, report)
	}
	if report.RecoveredJobs != 1 {
		t.Fatalf("recovered %d jobs, want only the acknowledged one: %+v", report.RecoveredJobs, report)
	}
	if _, ok := srv2.defaultWS().queue.Get("job-1"); ok {
		t.Error("job rejected on fsync failure resurrected after restart")
	}
	if _, ok := srv2.defaultWS().queue.Get("job-2"); !ok {
		t.Error("acknowledged job lost after restart")
	}
}

// TestReplayedJobSubmitAlreadyInSnapshotIsSkipped reproduces the
// compaction race: a job submitted while Compact runs lands in the
// captured queue state AND keeps its submit record in the rewritten
// journal (its sequence number is above the snapshot cutoff). Replay must
// not turn that into two copies of the job.
func TestReplayedJobSubmitAlreadyInSnapshotIsSkipped(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{Type: "integrate", Schema1: "sc1", Schema2: "sc2"}
	created := time.Now().UTC()
	if _, err := j.Append(opJobSubmit, jobSubmitRec{ID: "job-1", Request: req, Created: created}); err != nil {
		t.Fatal(err)
	}
	// Snapshot the queue as Compact would have captured it — with the
	// freshly submitted job — against a cutoff below the submit record's
	// sequence number, so the record survives the rewrite too.
	state, err := json.Marshal(persistedState{
		Jobs:      []Job{{ID: "job-1", Request: req, State: JobQueued, Created: created}},
		NextJobID: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(state, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	srv, report := openDurable(t, dir, journal.Hooks{})
	defer srv.Shutdown(context.Background())
	if report.RecoveredJobs != 1 || report.RequeuedJobs != 1 {
		t.Fatalf("recovery report = %+v, want exactly one copy of job-1", report)
	}
	count := 0
	for _, job := range srv.defaultWS().queue.List() {
		if job.ID == "job-1" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("job-1 appears %d times after replay, want 1", count)
	}
}

// TestQueueShutdownPersistsQueuedJobs pins the satellite guarantee: jobs
// still buffered when the queue is torn down keep their submit-only journal
// trace, so a restart re-enqueues them, while the job caught running comes
// back interrupted.
func TestQueueShutdownPersistsQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	persist := func(op string, v any) error {
		_, err := j.Append(op, v)
		return err
	}
	block := make(chan struct{})
	defer close(block)
	q := NewQueue(1, 8, 0, func(ctx context.Context, req JobRequest) (*IntegrationResult, error) {
		select {
		case <-block:
			return &IntegrationResult{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	q.SetPersist(persist, nil)

	req := JobRequest{Type: "integrate", Schema1: "a", Schema2: "b"}
	for i := 0; i < 3; i++ {
		if _, err := q.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the single worker to pick up job-1 (its start record is
	// written before Get can observe the running state).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if job, _ := q.Get("job-1"); job.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job-1 never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_ = q.Shutdown(ctx) // deadline forces the cancel path
	if job, _ := q.Get("job-1"); job.State != JobInterrupted {
		t.Fatalf("job-1 after forced shutdown = %+v", job)
	}
	for _, id := range []string{"job-2", "job-3"} {
		if job, _ := q.Get(id); job.State != JobCanceled {
			t.Fatalf("%s after forced shutdown = %+v", id, job)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": replay the journal and seed a fresh queue from it.
	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var jobs []Job
	byID := map[string]int{}
	nextID := 0
	st := NewStore()
	for _, rec := range j2.Records() {
		if err := applyRecord(st, rec, byID, &jobs, &nextID, nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}

	q2 := NewQueue(1, 8, 0, okExecutor)
	defer q2.Shutdown(context.Background())
	requeued, interrupted := q2.Restore(jobs, nextID)
	if requeued != 2 || interrupted != 1 {
		t.Fatalf("Restore = (%d requeued, %d interrupted), want (2, 1)", requeued, interrupted)
	}
	if job, _ := q2.Get("job-1"); job.State != JobInterrupted || !job.State.Retryable() {
		t.Errorf("job-1 after restore = %+v", job)
	}
	for _, id := range []string{"job-2", "job-3"} {
		if job := waitTerminal(t, q2, id); job.State != JobDone {
			t.Errorf("%s after restore = %+v", id, job)
		}
	}
	// The ID sequence continues past the recovered jobs.
	job, err := q2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-4" {
		t.Errorf("next ID after restore = %s, want job-4", job.ID)
	}
}

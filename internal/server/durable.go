package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ecr"
	"repro/internal/journal"
	"repro/internal/session"
)

// The journaled operations. Store mutations are written ahead of being
// applied; job records trace each job's lifecycle (a job whose trace stops
// at "submitted" is re-enqueued on recovery, one stopped at "started"
// comes back interrupted).
const (
	opAddSchemas   = "add_schemas"
	opRemoveSchema = "remove_schema"
	opDeclareEquiv = "declare_equiv"
	opAssert       = "assert"
	opJobSubmit    = "job_submit"
	opJobStart     = "job_start"
	opJobFinish    = "job_finish"
)

type addSchemasRec struct {
	// Schemas carries each schema in the ECR JSON encoding.
	Schemas []json.RawMessage `json:"schemas"`
}

type removeSchemaRec struct {
	Name string `json:"name"`
}

type declareEquivRec struct {
	Schema1 string `json:"schema1"`
	Attr1   string `json:"attr1"`
	Schema2 string `json:"schema2"`
	Attr2   string `json:"attr2"`
}

type assertRec struct {
	Schema1 string `json:"schema1"`
	Object1 string `json:"object1"`
	Code    int    `json:"code"`
	Schema2 string `json:"schema2"`
	Object2 string `json:"object2"`
	Rel     bool   `json:"rel,omitempty"`
}

type jobSubmitRec struct {
	ID      string     `json:"id"`
	Request JobRequest `json:"request"`
	Created time.Time  `json:"created"`
}

type jobStartRec struct {
	ID      string    `json:"id"`
	Started time.Time `json:"started"`
}

type jobFinishRec struct {
	ID       string             `json:"id"`
	State    JobState           `json:"state"`
	Error    string             `json:"error,omitempty"`
	Result   *IntegrationResult `json:"result,omitempty"`
	Finished time.Time          `json:"finished"`
}

// persistedState is the snapshot body: the full workspace (in the saved-
// workspace encoding the interactive tool also uses) plus the job table.
type persistedState struct {
	Workspace json.RawMessage `json:"workspace,omitempty"`
	Jobs      []Job           `json:"jobs,omitempty"`
	NextJobID int             `json:"nextJobId"`
}

// DurabilityConfig parameterizes the server's journal.
type DurabilityConfig struct {
	// Dir is the data directory (journal + snapshot). Required.
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync journal.SyncPolicy
	// SyncInterval spaces fsyncs under journal.SyncInterval.
	SyncInterval time.Duration
	// SnapshotEvery compacts the journal into a fresh snapshot after this
	// many appended records (default 256).
	SnapshotEvery int
	// Hooks injects faults (tests only).
	Hooks journal.Hooks
}

// RecoveryReport summarizes what Open rebuilt from the data directory.
type RecoveryReport struct {
	// SnapshotSeq is the sequence number the loaded snapshot covered (0
	// when none existed).
	SnapshotSeq uint64 `json:"snapshotSeq"`
	// ReplayedRecords counts journal records applied on top.
	ReplayedRecords int `json:"replayedRecords"`
	// DroppedBytes counts torn/corrupt tail bytes discarded.
	DroppedBytes int64 `json:"droppedBytes"`
	// RecoveredWorkspaces is 1 when any state was rebuilt (the server
	// holds one workspace; the metric is future-proofed for sharding).
	RecoveredWorkspaces int `json:"recoveredWorkspaces"`
	// Schemas counts schemas in the rebuilt workspace.
	Schemas int `json:"schemas"`
	// RecoveredJobs counts job records rebuilt into the job table.
	RecoveredJobs int `json:"recoveredJobs"`
	// RequeuedJobs were queued at crash time and run again now.
	RequeuedJobs int `json:"requeuedJobs"`
	// InterruptedJobs were running at crash time; they are terminal with
	// a retryable error.
	InterruptedJobs int `json:"interruptedJobs"`
}

// Open builds a durable Server: it opens (or creates) the data directory's
// journal, rebuilds the workspace and job table from snapshot + journal
// tail, re-enqueues jobs that were still queued, marks jobs that were
// running as interrupted, and returns the server with write-ahead
// journaling armed on every mutating path.
func Open(cfg Config, dcfg DurabilityConfig) (*Server, *RecoveryReport, error) {
	if dcfg.Dir == "" {
		return nil, nil, fmt.Errorf("server: durability needs a data directory")
	}
	if dcfg.SnapshotEvery <= 0 {
		dcfg.SnapshotEvery = 256
	}
	j, err := journal.Open(dcfg.Dir, journal.Options{
		Sync: dcfg.Sync, SyncInterval: dcfg.SyncInterval, Hooks: dcfg.Hooks,
	})
	if err != nil {
		return nil, nil, err
	}

	report := &RecoveryReport{}
	ws := session.NewWorkspace()
	var jobs []Job
	byID := map[string]int{}
	nextID := 0
	if state, seq, ok := j.Snapshot(); ok {
		var ps persistedState
		if err := json.Unmarshal(state, &ps); err != nil {
			j.Close()
			return nil, nil, fmt.Errorf("server: decode snapshot state: %w", err)
		}
		if len(ps.Workspace) > 0 {
			if ws, err = session.Unmarshal(ps.Workspace); err != nil {
				j.Close()
				return nil, nil, fmt.Errorf("server: rebuild workspace from snapshot: %w", err)
			}
		}
		for _, job := range ps.Jobs {
			byID[job.ID] = len(jobs)
			jobs = append(jobs, job)
		}
		nextID = ps.NextJobID
		report.SnapshotSeq = seq
	}

	store := NewStoreFrom(ws)
	for _, rec := range j.Records() {
		if err := applyRecord(store, rec, byID, &jobs, &nextID); err != nil {
			j.Close()
			return nil, nil, fmt.Errorf("server: replay journal record %d (%s): %w", rec.Seq, rec.Op, err)
		}
		report.ReplayedRecords++
	}
	report.DroppedBytes = j.DroppedBytes()
	report.Schemas = len(store.SchemaNames())
	report.RecoveredJobs = len(jobs)
	if report.Schemas > 0 || len(jobs) > 0 {
		report.RecoveredWorkspaces = 1
	}

	cfg.Store = store
	s := New(cfg)
	s.attachJournal(j, dcfg, report, jobs, nextID)
	return s, report, nil
}

// applyRecord replays one journal record against the store being rebuilt
// (store journaling is not armed yet, so nothing is re-journaled).
func applyRecord(store *Store, rec journal.Record, byID map[string]int, jobs *[]Job, nextID *int) error {
	switch rec.Op {
	case opAddSchemas:
		var r addSchemasRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		schemas := make([]*ecr.Schema, 0, len(r.Schemas))
		for _, raw := range r.Schemas {
			s, err := ecr.DecodeJSON(raw)
			if err != nil {
				return err
			}
			schemas = append(schemas, s)
		}
		_, err := store.AddSchemas(schemas)
		return err
	case opRemoveSchema:
		var r removeSchemaRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		_, err := store.RemoveSchema(r.Name)
		return err
	case opDeclareEquiv:
		var r declareEquivRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		return store.DeclareEquivalence(r.Schema1, r.Attr1, r.Schema2, r.Attr2)
	case opAssert:
		var r assertRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		_, err := store.Assert(r.Schema1, r.Object1, r.Code, r.Schema2, r.Object2, r.Rel)
		return err
	case opJobSubmit:
		var r jobSubmitRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if _, ok := byID[r.ID]; ok {
			// The snapshot already holds this job: it was submitted while a
			// compaction ran, after the snapshot's cutoff sequence was read
			// but before the queue state was captured, so its submit record
			// survived the rewrite too. The snapshot's copy is at least as
			// fresh; replaying the submit again would duplicate the job.
			return nil
		}
		byID[r.ID] = len(*jobs)
		*jobs = append(*jobs, Job{ID: r.ID, Request: r.Request, State: JobQueued, Created: r.Created})
		if n, err := strconv.Atoi(strings.TrimPrefix(r.ID, "job-")); err == nil && n > *nextID {
			*nextID = n
		}
		return nil
	case opJobStart:
		var r jobStartRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if i, ok := byID[r.ID]; ok {
			(*jobs)[i].State = JobRunning
			(*jobs)[i].Started = &r.Started
		}
		return nil
	case opJobFinish:
		var r jobFinishRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if i, ok := byID[r.ID]; ok {
			(*jobs)[i].State = r.State
			(*jobs)[i].Error = r.Error
			(*jobs)[i].Result = r.Result
			(*jobs)[i].Finished = &r.Finished
		}
		return nil
	}
	return fmt.Errorf("unknown operation")
}

// persister owns the server side of the journal: the compaction loop and
// the shutdown/crash teardown.
type persister struct {
	j        *journal.Journal
	every    int
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// stopLoop halts the compaction loop and waits for it to exit; safe to
// call more than once (Shutdown and Kill both do).
func (p *persister) stopLoop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

func (s *Server) attachJournal(j *journal.Journal, dcfg DurabilityConfig, report *RecoveryReport, jobs []Job, nextID int) {
	p := &persister{j: j, every: dcfg.SnapshotEvery, stop: make(chan struct{}), done: make(chan struct{})}
	s.persist = p

	j.SetObserver(func(fsync time.Duration, err error) {
		s.metrics.ObserveJournalAppend(fsync, err)
	})
	appendFn := func(op string, v any) error {
		_, err := j.Append(op, v)
		return err
	}
	s.store.SetPersist(appendFn)
	s.queue.SetPersist(appendFn, func(err error) {
		if s.log != nil {
			s.log.Error("journal append", "error", err)
		}
	})

	// Seed the job table before the server sees traffic; requeued jobs
	// start executing (and journaling) immediately, which is why the
	// hooks above are armed first.
	report.RequeuedJobs, report.InterruptedJobs = s.queue.Restore(jobs, nextID)
	s.metrics.SetDurability(report.RecoveredWorkspaces, report.RecoveredJobs, func() float64 {
		return time.Since(j.SnapshotTime()).Seconds()
	})
	go p.loop(s)
}

// loop compacts the journal into a fresh snapshot whenever enough records
// have accumulated.
func (p *persister) loop(s *Server) {
	defer close(p.done)
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			if p.j.SinceCompact() >= uint64(p.every) {
				if err := s.Compact(); err != nil && s.log != nil {
					s.log.Error("compact", "error", err)
				}
			}
		}
	}
}

// Compact snapshots the full server state (workspace + job table) and
// truncates the journal to the records the snapshot does not cover. Safe
// to call concurrently with traffic: the store lock blocks store appends
// for the duration, and queue records appended mid-compaction carry higher
// sequence numbers, so the rewrite keeps them and replay — which is
// idempotent for job records — stays correct.
func (s *Server) Compact() error {
	if s.persist == nil {
		return nil
	}
	st := s.store
	st.mu.Lock()
	defer st.mu.Unlock()
	// Order matters: read the sequence number first, then capture state.
	// Every record at or below uptoSeq is fully reflected in the captured
	// state; records landing after the read are preserved by Compact.
	uptoSeq := s.persist.j.Seq()
	wsData, err := session.Marshal(st.ws)
	if err != nil {
		return err
	}
	jobs, nextID := s.queue.snapshotState()
	state, err := json.Marshal(persistedState{Workspace: wsData, Jobs: jobs, NextJobID: nextID})
	if err != nil {
		return err
	}
	if err := s.persist.j.Compact(state, uptoSeq); err != nil {
		return err
	}
	s.metrics.ObserveCompaction()
	return nil
}

// Journal exposes the underlying journal (tests, diagnostics); nil when
// the server is not durable.
func (s *Server) Journal() *journal.Journal {
	if s.persist == nil {
		return nil
	}
	return s.persist.j
}

// Kill tears the server down as a crash would: no drain, no final
// compaction, no journal sync. The data directory is left exactly as the
// write-ahead log put it — which is the point; tests restart from it.
func (s *Server) Kill() {
	s.mu.Lock()
	srv, ln := s.httpSrv, s.listener
	s.httpSrv, s.listener = nil, nil
	s.mu.Unlock()
	if srv != nil {
		srv.Close()
	} else if ln != nil {
		ln.Close()
	}
	if s.persist != nil {
		s.persist.stopLoop()
		// Close the journal fd first: any worker still finishing a job
		// fails its append harmlessly instead of writing past the "crash".
		s.persist.j.CloseAbrupt()
	}
	s.queue.Kill()
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ecr"
	"repro/internal/instance"
	"repro/internal/journal"
	"repro/internal/session"
)

// The journaled operations. Store mutations are written ahead of being
// applied; job records trace each job's lifecycle (a job whose trace stops
// at "submitted" is re-enqueued on recovery, one stopped at "started"
// comes back interrupted).
const (
	opAddSchemas   = "add_schemas"
	opRemoveSchema = "remove_schema"
	opDeclareEquiv = "declare_equiv"
	opAssert       = "assert"
	opRetract      = "retract"
	opJobSubmit    = "job_submit"
	opJobStart     = "job_start"
	opJobFinish    = "job_finish"
	// opSaveIntegration persists one integration result (materialized
	// schema + mapping table); opLoadRows persists one accepted instance-row
	// batch. Together they make the federated query layer durable.
	opSaveIntegration = "save_integration"
	opLoadRows        = "load_rows"
	// opSetKeys replaces the API-key set (hashes only, never tokens). It
	// rides the default workspace's journal so followers replicate and
	// enforce the same keys; last record wins on replay.
	opSetKeys = "set_keys"
)

// Per-workspace on-disk layout: each workspace keeps its own journal and
// snapshot under <data-dir>/<name>/. The per-directory format is identical
// to the old single-tenant layout, so migrating a legacy data directory is
// a pure file move (see migrateLegacyLayout). Dot-prefixed directory names
// are reserved for the server's own bookkeeping: ".migrate-*" stages a
// layout migration, ".trash-*" stages a workspace delete.
const (
	legacyJournalFile  = "journal.jsonl"
	legacySnapshotFile = "snapshot.json"
	migrateStagingDir  = ".migrate-" + DefaultWorkspace
	trashPrefix        = ".trash-"
)

type addSchemasRec struct {
	// Schemas carries each schema in the ECR JSON encoding.
	Schemas []json.RawMessage `json:"schemas"`
}

type removeSchemaRec struct {
	Name string `json:"name"`
}

type declareEquivRec struct {
	Schema1 string `json:"schema1"`
	Attr1   string `json:"attr1"`
	Schema2 string `json:"schema2"`
	Attr2   string `json:"attr2"`
}

type assertRec struct {
	Schema1 string `json:"schema1"`
	Object1 string `json:"object1"`
	Code    int    `json:"code"`
	Schema2 string `json:"schema2"`
	Object2 string `json:"object2"`
	Rel     bool   `json:"rel,omitempty"`
}

type retractRec struct {
	Schema1 string `json:"schema1"`
	Object1 string `json:"object1"`
	Schema2 string `json:"schema2"`
	Object2 string `json:"object2"`
	Rel     bool   `json:"rel,omitempty"`
}

// saveIntegrationRec persists one integration result under a name: the
// integrated schema and the mapping table, both materialized to JSON, so
// replay installs them verbatim without re-running the integration.
type saveIntegrationRec struct {
	Name    string          `json:"name"`
	Schema1 string          `json:"schema1"`
	Schema2 string          `json:"schema2"`
	Schema  json.RawMessage `json:"schema"`
	Table   json.RawMessage `json:"table"`
}

// loadRowsRec persists one accepted row batch; batches are validated before
// journaling, so replaying them in order always succeeds.
type loadRowsRec struct {
	Schema    string         `json:"schema"`
	Structure string         `json:"structure"`
	Rows      []instance.Row `json:"rows"`
}

type jobSubmitRec struct {
	ID      string     `json:"id"`
	Request JobRequest `json:"request"`
	Created time.Time  `json:"created"`
}

type jobStartRec struct {
	ID      string    `json:"id"`
	Started time.Time `json:"started"`
}

type jobFinishRec struct {
	ID       string             `json:"id"`
	State    JobState           `json:"state"`
	Error    string             `json:"error,omitempty"`
	Result   *IntegrationResult `json:"result,omitempty"`
	Finished time.Time          `json:"finished"`
}

// persistedState is the snapshot body: the full workspace (in the saved-
// workspace encoding the interactive tool also uses) plus the job table,
// the federation state (saved integrations and the row-batch log), and —
// default workspace only — the journaled API-key hashes, so a compacted
// journal (or a shipped snapshot) still carries the key set.
type persistedState struct {
	Workspace    json.RawMessage      `json:"workspace,omitempty"`
	Jobs         []Job                `json:"jobs,omitempty"`
	NextJobID    int                  `json:"nextJobId"`
	Keys         []apiKeyEntry        `json:"keys,omitempty"`
	Integrations []saveIntegrationRec `json:"integrations,omitempty"`
	Rows         []loadRowsRec        `json:"rows,omitempty"`
}

// DurabilityConfig parameterizes the server's journals.
type DurabilityConfig struct {
	// Dir is the data directory; each workspace journals into its own
	// subdirectory Dir/<name>/. Required.
	Dir string
	// Sync is the fsync policy (default SyncAlways).
	Sync journal.SyncPolicy
	// SyncInterval spaces fsyncs under journal.SyncInterval.
	SyncInterval time.Duration
	// SnapshotEvery compacts a workspace's journal into a fresh snapshot
	// after this many appended records (default 256).
	SnapshotEvery int
	// Hooks injects faults (tests only). Shared by every workspace journal.
	Hooks journal.Hooks
}

// WorkspaceRecovery reports what Open rebuilt for one workspace.
type WorkspaceRecovery struct {
	Name string `json:"name"`
	// SnapshotSeq is the sequence number the loaded snapshot covered (0
	// when none existed).
	SnapshotSeq uint64 `json:"snapshotSeq"`
	// ReplayedRecords counts journal records applied on top.
	ReplayedRecords int `json:"replayedRecords"`
	// DroppedBytes counts torn/corrupt tail bytes discarded.
	DroppedBytes int64 `json:"droppedBytes"`
	// Schemas counts schemas in the rebuilt workspace.
	Schemas int `json:"schemas"`
	// RecoveredJobs counts job records rebuilt into the job table.
	RecoveredJobs int `json:"recoveredJobs"`
	// RequeuedJobs were queued at crash time and run again now.
	RequeuedJobs int `json:"requeuedJobs"`
	// InterruptedJobs were running at crash time; they are terminal with
	// a retryable error.
	InterruptedJobs int `json:"interruptedJobs"`
}

// RecoveryReport summarizes what Open rebuilt from the data directory:
// per-workspace details plus aggregates over all of them.
type RecoveryReport struct {
	// Workspaces details each recovered workspace, sorted by name.
	Workspaces []WorkspaceRecovery `json:"workspaces,omitempty"`
	// MigratedLegacyLayout is true when a pre-workspace (single-tenant)
	// data directory was migrated into the default workspace's
	// subdirectory on this start.
	MigratedLegacyLayout bool `json:"migratedLegacyLayout,omitempty"`
	// SnapshotSeq is the highest snapshot sequence loaded in any workspace.
	SnapshotSeq uint64 `json:"snapshotSeq"`
	// ReplayedRecords counts journal records applied across all workspaces.
	ReplayedRecords int `json:"replayedRecords"`
	// DroppedBytes counts torn/corrupt tail bytes discarded across all
	// workspaces.
	DroppedBytes int64 `json:"droppedBytes"`
	// RecoveredWorkspaces counts workspaces that came back holding state
	// (schemas or jobs).
	RecoveredWorkspaces int `json:"recoveredWorkspaces"`
	// Schemas counts schemas across every rebuilt workspace.
	Schemas int `json:"schemas"`
	// RecoveredJobs counts job records rebuilt across every workspace.
	RecoveredJobs int `json:"recoveredJobs"`
	// RequeuedJobs were queued at crash time and run again now.
	RequeuedJobs int `json:"requeuedJobs"`
	// InterruptedJobs were running at crash time; they are terminal with
	// a retryable error.
	InterruptedJobs int `json:"interruptedJobs"`
}

func (r *RecoveryReport) absorb(wr WorkspaceRecovery) {
	r.Workspaces = append(r.Workspaces, wr)
	if wr.SnapshotSeq > r.SnapshotSeq {
		r.SnapshotSeq = wr.SnapshotSeq
	}
	r.ReplayedRecords += wr.ReplayedRecords
	r.DroppedBytes += wr.DroppedBytes
	r.Schemas += wr.Schemas
	r.RecoveredJobs += wr.RecoveredJobs
	r.RequeuedJobs += wr.RequeuedJobs
	r.InterruptedJobs += wr.InterruptedJobs
	if wr.Schemas > 0 || wr.RecoveredJobs > 0 {
		r.RecoveredWorkspaces++
	}
}

// Open builds a durable Server from a data directory: it migrates a legacy
// single-tenant layout into the default workspace if needed, then rebuilds
// every workspace subdirectory — each from its own snapshot + journal tail,
// re-enqueuing jobs that were still queued and marking jobs that were
// running as interrupted — and returns the server with write-ahead
// journaling armed on every workspace's mutating paths. cfg.Store is
// ignored: the data directory is authoritative.
func Open(cfg Config, dcfg DurabilityConfig) (*Server, *RecoveryReport, error) {
	if dcfg.Dir == "" {
		return nil, nil, fmt.Errorf("server: durability needs a data directory")
	}
	if dcfg.SnapshotEvery <= 0 {
		dcfg.SnapshotEvery = 256
	}
	if err := os.MkdirAll(dcfg.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("server: create data directory: %w", err)
	}

	report := &RecoveryReport{}
	migrated, err := migrateLegacyLayout(dcfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	report.MigratedLegacyLayout = migrated
	sweepTrash(dcfg.Dir)

	names, err := scanWorkspaceDirs(dcfg.Dir)
	if err != nil {
		return nil, nil, err
	}

	s := newServer(cfg.withDefaults(), &dcfg)
	for _, name := range names {
		ws, wr, err := s.recoverWorkspace(name)
		if err != nil {
			s.closeAllJournals()
			return nil, nil, fmt.Errorf("server: recover workspace %q: %w", name, err)
		}
		if err := s.manager.adopt(ws); err != nil {
			// Unreachable: directory names are unique.
			s.closeAllJournals()
			return nil, nil, err
		}
		report.absorb(wr)
	}
	if _, err := s.manager.Get(DefaultWorkspace); err != nil {
		if _, err := s.manager.Create(DefaultWorkspace); err != nil {
			s.closeAllJournals()
			return nil, nil, fmt.Errorf("server: create default workspace: %w", err)
		}
	}

	s.metrics.SetDurability(report.RecoveredWorkspaces, report.RecoveredJobs, s.oldestSnapshotAge)
	if s.cfg.Follow != nil {
		if err := s.startFollowing(); err != nil {
			s.closeAllJournals()
			return nil, nil, err
		}
	}
	return s, report, nil
}

// migrateLegacyLayout moves a pre-workspace data directory's top-level
// journal.jsonl/snapshot.json into the default workspace's subdirectory.
// The move is staged through .migrate-default and committed with one atomic
// rename, so a crash at any step leaves a state this function repairs on
// the next start. A directory holding both top-level legacy files and a
// default/ subdirectory is ambiguous and rejected with instructions rather
// than risk silently dropping either copy.
func migrateLegacyLayout(dir string) (bool, error) {
	legacy := false
	for _, f := range []string{legacyJournalFile, legacySnapshotFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err == nil {
			legacy = true
		}
	}
	staging := filepath.Join(dir, migrateStagingDir)
	_, stagingErr := os.Stat(staging)
	staged := stagingErr == nil
	if !legacy && !staged {
		return false, nil
	}
	target := filepath.Join(dir, DefaultWorkspace)
	if _, err := os.Stat(target); err == nil {
		return false, fmt.Errorf(
			"server: data directory %s holds both a legacy single-tenant journal (%s/%s at the top level) and a %q workspace directory; "+
				"keep one: move the top-level files aside (or delete them) to use the workspace layout, or remove the %q directory to migrate the legacy journal",
			dir, legacyJournalFile, legacySnapshotFile, DefaultWorkspace, DefaultWorkspace)
	}
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return false, fmt.Errorf("server: stage legacy migration: %w", err)
	}
	for _, f := range []string{legacyJournalFile, legacySnapshotFile} {
		err := os.Rename(filepath.Join(dir, f), filepath.Join(staging, f))
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return false, fmt.Errorf("server: stage legacy %s: %w", f, err)
		}
	}
	if err := os.Rename(staging, target); err != nil {
		return false, fmt.Errorf("server: commit legacy migration: %w", err)
	}
	return true, nil
}

// sweepTrash clears .trash-* directories left by deletes that crashed
// between the rename and the removal. Best-effort: a leftover trash dir is
// invisible to recovery either way.
func sweepTrash(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), trashPrefix) {
			os.RemoveAll(filepath.Join(dir, e.Name()))
		}
	}
}

// scanWorkspaceDirs lists the workspace subdirectories of the data
// directory, sorted by name. Dot-prefixed names are the server's own
// bookkeeping and skipped; any other name that fails validation is
// someone else's data and rejected with instructions.
func scanWorkspaceDirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: scan data directory: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		if err := ValidateWorkspaceName(e.Name()); err != nil {
			return nil, fmt.Errorf(
				"server: data directory entry %q is not a valid workspace name (%v); move it out of %s or rename it",
				e.Name(), err, dir)
		}
		names = append(names, e.Name())
	}
	return names, nil
}

// decodedState is a snapshot body decoded for recovery or replica
// bootstrap: the workspace, the job table (indexed by ID), the snapshot's
// API-key set (default workspace only; nil elsewhere), and the federation
// state (saved integrations plus the row-batch log).
type decodedState struct {
	ws           *session.Workspace
	jobs         []Job
	byID         map[string]int
	nextJobID    int
	keys         []apiKeyEntry
	integrations []saveIntegrationRec
	rows         []loadRowsRec
}

// decodePersistedState rebuilds a workspace and job table from a snapshot
// body (recovery, and replica bootstrap — the leader's snapshot wire format
// IS the snapshot file format).
func decodePersistedState(state []byte) (*decodedState, error) {
	dec := &decodedState{ws: session.NewWorkspace(), byID: map[string]int{}}
	var ps persistedState
	if err := json.Unmarshal(state, &ps); err != nil {
		return nil, fmt.Errorf("decode snapshot state: %w", err)
	}
	if len(ps.Workspace) > 0 {
		var err error
		if dec.ws, err = session.Unmarshal(ps.Workspace); err != nil {
			return nil, fmt.Errorf("rebuild workspace from snapshot: %w", err)
		}
	}
	for _, job := range ps.Jobs {
		dec.byID[job.ID] = len(dec.jobs)
		dec.jobs = append(dec.jobs, job)
	}
	dec.nextJobID = ps.NextJobID
	dec.keys = ps.Keys
	dec.integrations = ps.Integrations
	dec.rows = ps.Rows
	return dec, nil
}

// recoverWorkspace rebuilds one workspace from its subdirectory: snapshot
// first, then the journal tail, then the job table is restored into the
// fresh queue (re-enqueueing still-queued jobs) with journaling armed — or,
// on a follower, stashed as the replica state with the apply loop taking
// over where the journal ends.
//
//sit:replay
func (s *Server) recoverWorkspace(name string) (*Workspace, WorkspaceRecovery, error) {
	wr := WorkspaceRecovery{Name: name}
	j, err := journal.Open(filepath.Join(s.dcfg.Dir, name), journal.Options{
		Sync: s.dcfg.Sync, SyncInterval: s.dcfg.SyncInterval, Hooks: s.dcfg.Hooks,
	})
	if err != nil {
		return nil, wr, err
	}

	dec := &decodedState{ws: session.NewWorkspace(), byID: map[string]int{}}
	if state, seq, ok := j.Snapshot(); ok {
		if dec, err = decodePersistedState(state); err != nil {
			j.Close()
			return nil, wr, err
		}
		wr.SnapshotSeq = seq
	}

	// The key set rides the default workspace's journal only; a keys hook on
	// any other workspace would silently eat a corrupt record.
	var keysHook func([]apiKeyEntry) error
	if name == DefaultWorkspace {
		keysHook = s.applyJournaledKeys
		if len(dec.keys) > 0 {
			if err := s.applyJournaledKeys(dec.keys); err != nil {
				j.Close()
				return nil, wr, err
			}
		}
	}

	store := NewStoreFrom(dec.ws)
	if err := store.restoreFederation(dec.integrations, dec.rows); err != nil {
		j.Close()
		return nil, wr, fmt.Errorf("restore federation state: %w", err)
	}
	for _, rec := range j.Records() {
		if err := applyRecord(store, rec, dec.byID, &dec.jobs, &dec.nextJobID, keysHook); err != nil {
			j.Close()
			return nil, wr, fmt.Errorf("replay journal record %d (%s): %w", rec.Seq, rec.Op, err)
		}
		wr.ReplayedRecords++
	}
	wr.DroppedBytes = j.DroppedBytes()
	wr.Schemas = len(store.SchemaNames())
	wr.RecoveredJobs = len(dec.jobs)

	ws := s.newWorkspaceFrom(name, store)
	if s.followerAtBuild() {
		s.armReplica(ws, j, dec.jobs, dec.byID, dec.nextJobID)
	} else {
		wr.RequeuedJobs, wr.InterruptedJobs = s.armJournal(ws, j, dec.jobs, dec.nextJobID)
	}
	return ws, wr, nil
}

// applyRecord replays one journal record against the store being rebuilt
// (store journaling is not armed yet, so nothing is re-journaled). keys,
// when non-nil, receives op_set_keys payloads — wired only for the default
// workspace, whose journal carries the key set.
//
//sit:replay
func applyRecord(store *Store, rec journal.Record, byID map[string]int, jobs *[]Job, nextID *int, keys func([]apiKeyEntry) error) error {
	switch rec.Op {
	case opSetKeys:
		if keys == nil {
			return fmt.Errorf("set_keys record outside the default workspace's journal")
		}
		var r setKeysRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		return keys(r.Keys)
	case opAddSchemas:
		var r addSchemasRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		schemas := make([]*ecr.Schema, 0, len(r.Schemas))
		for _, raw := range r.Schemas {
			s, err := ecr.DecodeJSON(raw)
			if err != nil {
				return err
			}
			schemas = append(schemas, s)
		}
		_, err := store.AddSchemas(schemas)
		return err
	case opRemoveSchema:
		var r removeSchemaRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		_, err := store.RemoveSchema(r.Name)
		return err
	case opDeclareEquiv:
		var r declareEquivRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		return store.DeclareEquivalence(r.Schema1, r.Attr1, r.Schema2, r.Attr2)
	case opAssert:
		var r assertRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		_, _, err := store.Assert(r.Schema1, r.Object1, r.Code, r.Schema2, r.Object2, r.Rel)
		return err
	case opRetract:
		var r retractRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		_, err := store.Retract(r.Schema1, r.Object1, r.Schema2, r.Object2, r.Rel)
		return err
	case opSaveIntegration:
		var r saveIntegrationRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		return store.applySaveIntegration(r)
	case opLoadRows:
		var r loadRowsRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		return store.applyLoadRows(r)
	case opJobSubmit:
		var r jobSubmitRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if _, ok := byID[r.ID]; ok {
			// The snapshot already holds this job: it was submitted while a
			// compaction ran, after the snapshot's cutoff sequence was read
			// but before the queue state was captured, so its submit record
			// survived the rewrite too. The snapshot's copy is at least as
			// fresh; replaying the submit again would duplicate the job.
			return nil
		}
		byID[r.ID] = len(*jobs)
		*jobs = append(*jobs, Job{ID: r.ID, Request: r.Request, State: JobQueued, Created: r.Created})
		if n, err := strconv.Atoi(strings.TrimPrefix(r.ID, "job-")); err == nil && n > *nextID {
			*nextID = n
		}
		return nil
	case opJobStart:
		var r jobStartRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if i, ok := byID[r.ID]; ok {
			(*jobs)[i].State = JobRunning
			(*jobs)[i].Started = &r.Started
		}
		return nil
	case opJobFinish:
		var r jobFinishRec
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			return err
		}
		if i, ok := byID[r.ID]; ok {
			(*jobs)[i].State = r.State
			(*jobs)[i].Error = r.Error
			(*jobs)[i].Result = r.Result
			(*jobs)[i].Finished = &r.Finished
		}
		return nil
	}
	return fmt.Errorf("unknown operation")
}

// persister owns one workspace's side of its journal: the compaction loop
// and the shutdown/crash teardown.
type persister struct {
	j     *journal.Journal
	every int
	stop  chan struct{}
	done  chan struct{}
	// started records whether the compaction loop goroutine was launched.
	// Follower replicas hold a persister (the journal and teardown are the
	// same) but compact synchronously from the apply loop instead; their
	// loop starts only on promotion.
	started  atomic.Bool
	stopOnce sync.Once
}

// stopLoop halts the compaction loop and waits for it to exit; safe to
// call more than once (Shutdown, Delete and Kill all may). A loop that was
// never started (follower replicas) has nothing to wait for.
func (p *persister) stopLoop() {
	p.stopOnce.Do(func() { close(p.stop) })
	if p.started.Load() {
		<-p.done
	}
}

// openWorkspaceJournal provisions a brand-new workspace's journal directory
// (Create on a durable server) and arms journaling on it — or, on a
// follower (a workspace discovered on the leader), the replica state.
func (s *Server) openWorkspaceJournal(ws *Workspace) error {
	dir := filepath.Join(s.dcfg.Dir, ws.name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: create workspace directory: %w", err)
	}
	j, err := journal.Open(dir, journal.Options{
		Sync: s.dcfg.Sync, SyncInterval: s.dcfg.SyncInterval, Hooks: s.dcfg.Hooks,
	})
	if err != nil {
		return err
	}
	if s.followerAtBuild() {
		s.armReplica(ws, j, nil, map[string]int{}, 0)
	} else {
		s.armJournal(ws, j, nil, 0)
	}
	return nil
}

// armJournal wires a workspace's journal into its store and queue, restores
// the recovered job table (re-enqueueing still-queued jobs, which may start
// executing — and journaling — immediately, which is why the hooks are
// armed first), and starts the compaction loop.
func (s *Server) armJournal(ws *Workspace, j *journal.Journal, jobs []Job, nextID int) (requeued, interrupted int) {
	p := &persister{j: j, every: s.dcfg.SnapshotEvery, stop: make(chan struct{}), done: make(chan struct{})}
	ws.persist = p

	j.SetObserver(func(fsync time.Duration, err error) {
		s.metrics.ObserveJournalAppend(fsync, err)
	})
	appendFn := func(op string, v any) error {
		_, err := j.Append(op, v)
		return err
	}
	ws.store.SetPersist(appendFn)
	ws.queue.SetPersist(appendFn, func(err error) {
		if s.log != nil {
			s.log.Error("journal append", "workspace", ws.name, "error", err)
		}
	})
	requeued, interrupted = ws.queue.Restore(jobs, nextID)
	p.started.Store(true)
	go p.loop(s, ws)
	return requeued, interrupted
}

// loop compacts the workspace's journal into a fresh snapshot whenever
// enough records have accumulated.
func (p *persister) loop(s *Server, ws *Workspace) {
	defer close(p.done)
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			if p.j.SinceCompact() >= uint64(p.every) {
				if err := s.compactWorkspace(ws); err != nil && s.log != nil {
					s.log.Error("compact", "workspace", ws.name, "error", err)
				}
			}
		}
	}
}

// compactWorkspace snapshots one workspace's full state (schemas + job
// table) and truncates its journal to the records the snapshot does not
// cover. Safe to call concurrently with traffic: the state is captured
// atomically under the store lock, records appended after the capture
// carry higher sequence numbers, so the rewrite keeps them and replay —
// which is idempotent for job records — stays correct. The journal
// rewrite itself runs after the store lock is released: Compact fsyncs
// and rewrites files, and holding st.mu across that would stall every
// request on the workspace for the disk's milliseconds. Two captures
// racing to Compact resolve inside the journal, which refuses to publish
// a snapshot older than the one it already has.
func (s *Server) compactWorkspace(ws *Workspace) error {
	if ws.persist == nil {
		return nil
	}
	state, uptoSeq, err := s.captureState(ws)
	if err != nil {
		return err
	}
	if err := ws.persist.j.Compact(state, uptoSeq); err != nil {
		return err
	}
	s.metrics.ObserveCompaction()
	return nil
}

// captureState captures the workspace's full persisted state (schemas +
// job table, plus — default workspace only — the journaled key set)
// together with the journal sequence number it reflects — compaction's
// input, and also what the replication snapshot endpoint ships. On a
// replica the job table lives in the replica state instead of the queue.
//
// The //sit:captures list is this function's durability contract: every
// journal op whose effect is carried by the captured state. Adding an op
// without extending persistedState (and this list) fails `make vet`.
//
//sit:captures opAddSchemas opRemoveSchema opDeclareEquiv opAssert opRetract
//sit:captures opJobSubmit opJobStart opJobFinish
//sit:captures opSaveIntegration opLoadRows opSetKeys
func (s *Server) captureState(ws *Workspace) (state []byte, uptoSeq uint64, err error) {
	if rep := ws.replica.Load(); rep != nil {
		return rep.capture(s, ws)
	}
	st := ws.store
	st.mu.Lock()
	// Order matters: read the sequence number first, then capture state.
	// Every record at or below uptoSeq is fully reflected in the captured
	// state; records landing after the read are preserved by Compact.
	uptoSeq = ws.persist.j.Seq()
	wsData, err := session.Marshal(st.ws)
	if err != nil {
		st.mu.Unlock()
		return nil, 0, err
	}
	ints, rows, err := st.federationSnapshotLocked()
	if err != nil {
		st.mu.Unlock()
		return nil, 0, err
	}
	jobs, nextID := ws.queue.snapshotState()
	st.mu.Unlock()
	state, err = json.Marshal(persistedState{
		Workspace: wsData, Jobs: jobs, NextJobID: nextID, Keys: s.snapshotKeys(ws.name),
		Integrations: ints, Rows: rows,
	})
	if err != nil {
		return nil, 0, err
	}
	return state, uptoSeq, nil
}

// Compact snapshots every workspace, returning the first error.
func (s *Server) Compact() error {
	var first error
	for _, ws := range s.manager.List() {
		if err := s.compactWorkspace(ws); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// oldestSnapshotAge is the snapshot_age_seconds gauge: the age of the
// stalest snapshot across live workspaces.
func (s *Server) oldestSnapshotAge() float64 {
	var oldest float64
	for _, ws := range s.manager.List() {
		if ws.persist == nil {
			continue
		}
		if age := time.Since(ws.persist.j.SnapshotTime()).Seconds(); age > oldest {
			oldest = age
		}
	}
	return oldest
}

// closeAllJournals abruptly releases every workspace journal (Open error
// paths only — no compaction, no sync).
func (s *Server) closeAllJournals() {
	for _, ws := range s.manager.List() {
		if ws.persist != nil {
			ws.persist.stopLoop()
			ws.persist.j.CloseAbrupt()
		}
		ws.queue.Kill()
	}
}

// removeWorkspaceDir deletes a workspace's data subdirectory crash-safely:
// the directory is renamed into a dot-prefixed trash name first — atomic,
// and invisible to the recovery scan — then removed, so a crash mid-delete
// can never leave a half-deleted workspace that recovery would resurrect.
func removeWorkspaceDir(root, name string) error {
	dir := filepath.Join(root, name)
	trash := filepath.Join(root, trashPrefix+name)
	if err := os.RemoveAll(trash); err != nil {
		return err
	}
	if err := os.Rename(dir, trash); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	return os.RemoveAll(trash)
}

// Journal exposes the default workspace's journal (tests, diagnostics);
// nil when the server is not durable.
func (s *Server) Journal() *journal.Journal {
	ws, err := s.manager.Get(DefaultWorkspace)
	if err != nil || ws.persist == nil {
		return nil
	}
	return ws.persist.j
}

// Kill tears the server down as a crash would: no drain, no final
// compaction, no journal sync. Every workspace's data directory is left
// exactly as its write-ahead log put it — which is the point; tests
// restart from it.
func (s *Server) Kill() {
	s.mu.Lock()
	srv, ln := s.httpSrv, s.listener
	s.httpSrv, s.listener = nil, nil
	s.mu.Unlock()
	if srv != nil {
		srv.Close()
	} else if ln != nil {
		ln.Close()
	}
	// Signal the follower loop but do not wait: a crash doesn't drain. The
	// loop's in-flight applies fail harmlessly against the closed journals.
	if f := s.follow.Load(); f != nil {
		f.halt(false)
	}
	for _, ws := range s.manager.List() {
		if ws.persist != nil {
			ws.persist.stopLoop()
			// Close the journal fd first: any worker still finishing a job
			// fails its append harmlessly instead of writing past the
			// "crash".
			ws.persist.j.CloseAbrupt()
		}
		ws.queue.Kill()
	}
}

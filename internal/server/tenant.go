package server

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWorkspace is the tenant behind the unprefixed /v1/... routes:
// every pre-workspace client keeps talking to it without change. It exists
// from server start and cannot be deleted.
const DefaultWorkspace = "default"

// MaxWorkspaceNameLen bounds workspace names. Names become directory names
// under the data directory, so the cap keeps paths portable.
const MaxWorkspaceNameLen = 64

// Workspace lifecycle errors. Handlers classify them with errors.Is, never
// by message text.
var (
	// ErrWorkspaceExists rejects creating a name that is already taken.
	ErrWorkspaceExists = errors.New("workspace already exists")
	// ErrWorkspaceCap rejects creation beyond the configured maximum.
	ErrWorkspaceCap = errors.New("workspace cap reached")
	// ErrDefaultWorkspace rejects deleting the default workspace.
	ErrDefaultWorkspace = errors.New("the default workspace cannot be deleted")
)

// ValidateWorkspaceName enforces the naming rules: 1..MaxWorkspaceNameLen
// characters from [A-Za-z0-9._-], no path separators, no ".." sequence, and
// no leading "." or "-" (hidden directories are reserved for the server's
// own bookkeeping; a leading dash reads like a flag).
func ValidateWorkspaceName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("server: workspace name is empty")
	case len(name) > MaxWorkspaceNameLen:
		return fmt.Errorf("server: workspace name longer than %d characters", MaxWorkspaceNameLen)
	case strings.ContainsAny(name, "/\\"):
		return fmt.Errorf("server: workspace name %q contains a path separator", name)
	case strings.Contains(name, ".."):
		return fmt.Errorf("server: workspace name %q contains %q", name, "..")
	case name[0] == '.' || name[0] == '-':
		return fmt.Errorf("server: workspace name %q starts with %q", name, string(name[0]))
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("server: workspace name %q contains %q (allowed: letters, digits, '.', '_', '-')", name, string(r))
		}
	}
	return nil
}

// Workspace is one tenant of the server: a named store with its own
// RWMutex, generation counters and similarity/integration caches, its own
// job queue (and job-ID sequence), and — on durable servers — its own
// write-ahead journal under <data-dir>/<name>/. Two workspaces share no
// locks, so traffic for different tenants never serializes.
type Workspace struct {
	name    string
	created time.Time
	store   *Store
	queue   *Queue
	// persist is the workspace's durability layer (journal + compaction
	// loop); nil on memory-only servers.
	persist *persister
	// bucket rate-limits the workspace's data plane; nil when
	// Limits.WorkspaceRate is unset. The bucket carries its own lock.
	bucket *bucket
	// replica, while non-nil, marks the workspace as a follower replica:
	// its job table lives here (applied from the leader's stream, never
	// executed locally) and its store mutates only through the replication
	// apply path. Promote swaps it back to nil.
	replica atomic.Pointer[replicaState]
}

// Name returns the workspace's name.
func (ws *Workspace) Name() string { return ws.name }

// Created returns the workspace's creation (or recovery) time.
func (ws *Workspace) Created() time.Time { return ws.created }

// Store exposes the workspace's store (tests, in-process embedding).
func (ws *Workspace) Store() *Store { return ws.store }

// Manager owns the named workspaces: a concurrent map guarded by an
// RWMutex that covers only membership — every workspace's own traffic runs
// on the workspace's locks. build provisions a new workspace's resources
// (store, queue, journal), destroy releases them; destroy runs outside the
// manager lock so tearing one tenant down never stalls the others.
type Manager struct {
	max     int
	build   func(name string) (*Workspace, error)
	destroy func(*Workspace)

	mu sync.RWMutex
	// byName maps workspace names to live workspaces. A nil value is a
	// reservation: a Create in flight holds the name (and a slot under the
	// cap) while it provisions outside the lock.
	byName map[string]*Workspace // guarded by mu
}

// NewManager returns a manager enforcing the given workspace cap (counting
// the default workspace).
func NewManager(max int, build func(name string) (*Workspace, error), destroy func(*Workspace)) *Manager {
	return &Manager{
		max:     max,
		build:   build,
		destroy: destroy,
		byName:  map[string]*Workspace{},
	}
}

// Get returns the named workspace, or an ErrNotFound-classified error.
func (m *Manager) Get(name string) (*Workspace, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ws, ok := m.byName[name]
	if !ok || ws == nil {
		return nil, fmt.Errorf("server: workspace %q %w", name, ErrNotFound)
	}
	return ws, nil
}

// Create validates the name, enforces the cap, provisions the workspace
// and registers it. The name (and its slot under the cap) is reserved
// under the manager lock, but the build itself — a directory, an empty
// journal and an fsync on durable servers — runs outside it, so a slow
// disk never stalls lookups for other tenants. A concurrent Create of the
// same name sees the reservation and fails with ErrWorkspaceExists; a
// failed build releases the reservation.
func (m *Manager) Create(name string) (*Workspace, error) {
	if err := ValidateWorkspaceName(name); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if _, ok := m.byName[name]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("server: workspace %q: %w", name, ErrWorkspaceExists)
	}
	if m.max > 0 && len(m.byName) >= m.max {
		m.mu.Unlock()
		return nil, fmt.Errorf("server: %w (max %d)", ErrWorkspaceCap, m.max)
	}
	m.byName[name] = nil // reserve the name while building
	m.mu.Unlock()

	ws, err := m.build(name)

	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		delete(m.byName, name)
		return nil, err
	}
	m.byName[name] = ws
	return ws, nil
}

// adopt registers an already-provisioned workspace (recovery). It bypasses
// the cap — workspaces that exist on disk are never refused — but still
// rejects duplicate names.
func (m *Manager) adopt(ws *Workspace) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byName[ws.name]; ok {
		return fmt.Errorf("server: workspace %q: %w", ws.name, ErrWorkspaceExists)
	}
	m.byName[ws.name] = ws
	return nil
}

// Delete removes the named workspace and releases its resources (queue,
// journal, data subdirectory). The entry is downgraded to a reservation
// under the lock — new requests immediately 404, and a concurrent Create
// of the same name is refused rather than allowed to rebuild the data
// directory while the teardown is still renaming it into the trash. The
// teardown itself — which waits out in-flight jobs — runs outside the
// lock so other tenants keep moving; only when it finishes is the name
// released for reuse.
func (m *Manager) Delete(name string) error {
	if name == DefaultWorkspace {
		return fmt.Errorf("server: %w", ErrDefaultWorkspace)
	}
	m.mu.Lock()
	ws, ok := m.byName[name]
	ok = ok && ws != nil // a reservation is not yet a deletable workspace
	if ok {
		m.byName[name] = nil // hold the name until the teardown completes
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: workspace %q %w", name, ErrNotFound)
	}
	if m.destroy != nil {
		m.destroy(ws)
	}
	m.mu.Lock()
	delete(m.byName, name)
	m.mu.Unlock()
	return nil
}

// List returns the workspaces sorted by name.
func (m *Manager) List() []*Workspace {
	m.mu.RLock()
	out := make([]*Workspace, 0, len(m.byName))
	for _, ws := range m.byName {
		if ws != nil { // skip in-flight reservations
			out = append(out, ws)
		}
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len returns the number of live workspaces (the workspaces_active gauge).
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.byName)
}

// TotalQueueDepth sums the queue depth across every workspace.
func (m *Manager) TotalQueueDepth() int {
	total := 0
	for _, ws := range m.List() {
		total += ws.queue.Depth()
	}
	return total
}

// TotalSimilarityStats sums the similarity-cache counters across every
// workspace.
func (m *Manager) TotalSimilarityStats() (hits, misses uint64) {
	for _, ws := range m.List() {
		h, miss := ws.store.SimilarityCacheStats()
		hits += h
		misses += miss
	}
	return hits, misses
}

// TotalClosureStats sums the assertion-closure counters across every
// workspace.
func (m *Manager) TotalClosureStats() (hits, misses, derived, conflicts uint64) {
	for _, ws := range m.List() {
		h, miss, d, c := ws.store.ClosureStats()
		hits += h
		misses += miss
		derived += d
		conflicts += c
	}
	return hits, misses, derived, conflicts
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/replication"
	"repro/internal/session"
)

// FollowerConfig parameterizes follower mode (Config.Follow).
type FollowerConfig struct {
	// Leader is the leader's base URL (scheme://host:port). Required.
	Leader string
	// PollInterval paces the sync loop when it has nothing to apply
	// (default 100ms). The loop long-polls the leader's record stream, so
	// steady-state replication lag is bounded by network latency, not by
	// this interval.
	PollInterval time.Duration
	// Client overrides the HTTP client used against the leader (tests,
	// custom transports); nil uses http.DefaultClient.
	Client *http.Client
	// APIKey authenticates the stream requests against the leader (an
	// admin-scoped key) when the leader enforces API keys.
	APIKey string
}

// authedTransport injects the follower's API key into every leader call.
type authedTransport struct {
	key  string
	next http.RoundTripper
}

func (t authedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	r = r.Clone(r.Context())
	r.Header.Set("Authorization", "Bearer "+t.key)
	return t.next.RoundTrip(r)
}

// maxStreamWait caps how long the leader-side record stream long-polls
// before answering with an empty batch, keeping it safely inside the
// request timeout.
const maxStreamWait = 25 * time.Second

// followState is the live follower machinery: the sync loop's handles plus
// the replication counters /metrics and /healthz report. It is built once
// at Open and discarded (atomically, via Server.follow) on promotion.
type followState struct {
	leader string
	client *replication.Client
	poll   time.Duration

	// ctx cancels in-flight HTTP calls when the follower halts; stop wakes
	// the loop's sleeps; done closes when the loop has fully exited.
	ctx      context.Context
	cancel   context.CancelFunc
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	recordsApplied   atomic.Uint64
	bytesApplied     atomic.Uint64
	snapshotsFetched atomic.Uint64
	syncErrors       atomic.Uint64

	mu  sync.Mutex
	lag map[string]ReplicaLag // guarded by mu
}

// halt stops the sync loop; with wait it also blocks until the loop has
// exited (graceful shutdown and promotion want quiescence, Kill does not).
func (f *followState) halt(wait bool) {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.cancel()
	})
	if wait {
		<-f.done
	}
}

func (f *followState) setLag(ws string, l ReplicaLag) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lag[ws] = l
}

func (f *followState) dropLag(ws string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.lag, ws)
}

// lagSnapshot copies the per-workspace lag table.
func (f *followState) lagSnapshot() map[string]ReplicaLag {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]ReplicaLag, len(f.lag))
	for ws, l := range f.lag {
		out[ws] = l
	}
	return out
}

// replicaState is a follower workspace's applied state beyond the store:
// the job table as the leader's stream describes it (jobs here were run by
// the leader; the follower never executes them) and the last applied
// sequence number. The single apply loop is the only writer; reads (job
// listings, lag reports, snapshot capture) take the same lock, so a capture
// can never observe a half-applied record.
type replicaState struct {
	mu         sync.Mutex
	jobs       []Job          // guarded by mu
	byID       map[string]int // guarded by mu
	nextJobID  int            // guarded by mu
	appliedSeq uint64         // guarded by mu
}

// capture renders the replica's persisted state for compaction and for
// re-serving snapshots to downstream followers. Holding rep.mu across the
// whole capture (locking st.mu inside, the same order ApplyFrame uses)
// makes the state exact for appliedSeq: the apply loop cannot slip a
// record in between reading the sequence number and marshaling the store.
func (rep *replicaState) capture(s *Server, ws *Workspace) (state []byte, uptoSeq uint64, err error) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	uptoSeq = rep.appliedSeq
	st := ws.store
	st.mu.Lock()
	wsData, err := session.Marshal(st.ws)
	var ints []saveIntegrationRec
	var rows []loadRowsRec
	if err == nil {
		ints, rows, err = st.federationSnapshotLocked()
	}
	st.mu.Unlock()
	if err != nil {
		return nil, 0, err
	}
	jobs := append([]Job(nil), rep.jobs...)
	state, err = json.Marshal(persistedState{
		Workspace: wsData, Jobs: jobs, NextJobID: rep.nextJobID, Keys: s.snapshotKeys(ws.name),
		Integrations: ints, Rows: rows,
	})
	if err != nil {
		return nil, 0, err
	}
	return state, uptoSeq, nil
}

// jobsSnapshot copies the replica's job table.
func (rep *replicaState) jobsSnapshot() []Job {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return append([]Job(nil), rep.jobs...)
}

// jobGet looks a job up in the replica's table.
func (rep *replicaState) jobGet(id string) (Job, bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if i, ok := rep.byID[id]; ok {
		return rep.jobs[i], true
	}
	return Job{}, false
}

// jobsView returns the workspace's job table: the replica's applied table
// on a follower, the live queue's otherwise.
func (ws *Workspace) jobsView() []Job {
	if rep := ws.replica.Load(); rep != nil {
		return rep.jobsSnapshot()
	}
	return ws.queue.List()
}

// jobView looks one job up by ID, replica-aware like jobsView.
func (ws *Workspace) jobView(id string) (Job, bool) {
	if rep := ws.replica.Load(); rep != nil {
		return rep.jobGet(id)
	}
	return ws.queue.Get(id)
}

// armReplica wires a recovered (or freshly created) workspace as a follower
// replica: the journal is held by a persister for teardown and observation,
// but nothing journals through the store or queue — every append flows
// through the replication apply path — and the compaction loop stays
// parked (the sync loop compacts synchronously; promotion starts the loop).
func (s *Server) armReplica(ws *Workspace, j *journal.Journal, jobs []Job, byID map[string]int, nextID int) {
	ws.persist = &persister{j: j, every: s.dcfg.SnapshotEvery, stop: make(chan struct{}), done: make(chan struct{})}
	j.SetObserver(func(fsync time.Duration, err error) {
		s.metrics.ObserveJournalAppend(fsync, err)
	})
	ws.replica.Store(&replicaState{jobs: jobs, byID: byID, nextJobID: nextID, appliedSeq: j.Seq()})
}

// startFollowing validates the follower configuration and launches the sync
// loop. Open calls it after recovery, so the loop starts from whatever the
// local journals already hold and catches up from there.
func (s *Server) startFollowing() error {
	fc := s.cfg.Follow
	if fc.Leader == "" {
		return fmt.Errorf("server: follower mode needs a leader URL")
	}
	poll := fc.PollInterval
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	client := fc.Client
	if fc.APIKey != "" {
		base := http.DefaultTransport
		if client != nil && client.Transport != nil {
			base = client.Transport
		}
		authed := &http.Client{Transport: authedTransport{key: fc.APIKey, next: base}}
		if client != nil {
			authed.Timeout = client.Timeout
		}
		client = authed
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &followState{
		leader: strings.TrimRight(fc.Leader, "/"),
		client: replication.NewClient(fc.Leader, client),
		poll:   poll,
		ctx:    ctx,
		cancel: cancel,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		lag:    map[string]ReplicaLag{},
	}
	s.follow.Store(f)
	go s.followLoop(f)
	return nil
}

// followLoop drives rounds of syncRound until halted, sleeping the poll
// interval only when a round applied nothing without having long-polled
// (multi-workspace rounds) or failed (leader down, network partition).
func (s *Server) followLoop(f *followState) {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		applied, longPolled, err := s.syncRound(f)
		if err != nil {
			f.syncErrors.Add(1)
			if s.log != nil {
				s.log.Warn("replication sync", "leader", f.leader, "error", err)
			}
		}
		if err != nil || (applied == 0 && !longPolled) {
			select {
			case <-f.stop:
				return
			case <-time.After(f.poll):
			}
		}
	}
}

// syncRound reconciles the follower against the leader once: mirror the
// workspace set (create what the leader has, drop what it no longer does),
// then advance every workspace's replica by one SyncWorkspace round. With a
// single workspace the record fetch long-polls, so a quiet leader costs one
// held-open request per wait instead of a poll per interval.
func (s *Server) syncRound(f *followState) (applied int, longPolled bool, err error) {
	list, err := f.client.Workspaces(f.ctx)
	if err != nil {
		return 0, false, err
	}

	leaderHas := make(map[string]bool, len(list))
	wait := time.Duration(0)
	if len(list) == 1 {
		// One workspace: long-poll the record stream (50 poll intervals,
		// capped under the leader's request timeout) so a quiet leader costs
		// one held-open request instead of a poll per interval.
		longPolled = true
		wait = 50 * f.poll
		if wait > maxStreamWait/2 {
			wait = maxStreamWait / 2
		}
	}
	var firstErr error
	for _, stat := range list {
		leaderHas[stat.Name] = true
		if _, err := s.ensureReplicaWorkspace(stat.Name); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("workspace %q: %w", stat.Name, err)
			}
			continue
		}
		p, err := replication.SyncWorkspace(f.ctx, f.client, followerTarget{s}, stat.Name, wait)
		if err != nil {
			if errors.Is(err, replication.ErrNoWorkspace) {
				continue // deleted on the leader between the list and the sync
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		applied += p.Applied
		f.recordsApplied.Add(uint64(p.Applied))
		f.bytesApplied.Add(uint64(p.Bytes))
		if p.Bootstrapped {
			f.snapshotsFetched.Add(1)
		}
		s.recordLag(f, stat.Name, p)
		s.maybeCompactReplica(stat.Name)
	}

	// Drop local workspaces the leader no longer has. Delete refuses the
	// default workspace on its own; an empty default mirrors an empty leader
	// default either way.
	for _, ws := range s.manager.List() {
		if !leaderHas[ws.name] && ws.name != DefaultWorkspace {
			if err := s.manager.Delete(ws.name); err == nil {
				f.dropLag(ws.name)
			}
		}
	}
	return applied, longPolled, firstErr
}

// ensureReplicaWorkspace returns the named local workspace, creating it
// (with its replica armed, via the follower branch of buildWorkspace's
// journal hook) when the leader has it and the follower does not yet.
func (s *Server) ensureReplicaWorkspace(name string) (*Workspace, error) {
	ws, err := s.manager.Get(name)
	if err == nil {
		return ws, nil
	}
	ws, err = s.manager.Create(name)
	if errors.Is(err, ErrWorkspaceExists) {
		return s.manager.Get(name)
	}
	return ws, err
}

// recordLag updates the follower's per-workspace lag table from one sync
// round's progress.
func (s *Server) recordLag(f *followState, name string, p replication.Progress) {
	l := ReplicaLag{AppliedSeq: p.AppliedSeq, LeaderSeq: p.LeaderSeq}
	if p.LeaderSeq > p.AppliedSeq {
		l.LagRecords = p.LeaderSeq - p.AppliedSeq
	}
	if ws, err := s.manager.Get(name); err == nil && ws.persist != nil {
		if local := ws.persist.j.Offset(); p.LeaderOffset > local {
			l.LagBytes = p.LeaderOffset - local
		}
	}
	f.setLag(name, l)
}

// maybeCompactReplica compacts a replica workspace's journal when enough
// records accumulated. Runs synchronously from the sync loop — the replica
// has no compaction goroutine — so a capture never races an apply.
func (s *Server) maybeCompactReplica(name string) {
	ws, err := s.manager.Get(name)
	if err != nil || ws.persist == nil {
		return
	}
	if ws.persist.j.SinceCompact() < uint64(s.dcfg.SnapshotEvery) {
		return
	}
	if err := s.compactWorkspace(ws); err != nil && s.log != nil {
		s.log.Error("compact replica", "workspace", ws.name, "error", err)
	}
}

// followerTarget adapts the server to replication.Target: frames are
// journaled first (write-ahead, like every leader mutation) and then applied
// through the same replay path recovery uses.
type followerTarget struct {
	s *Server
}

func (t followerTarget) AppliedSeq(name string) (uint64, error) {
	ws, err := t.s.ensureReplicaWorkspace(name)
	if err != nil {
		return 0, err
	}
	rep := ws.replica.Load()
	if rep == nil {
		return 0, fmt.Errorf("workspace %q is not a replica", name)
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.appliedSeq, nil
}

// Bootstrap replaces the replica wholesale with a leader snapshot: the
// journal is reset first (durability before visibility — a crash between
// the two steps recovers the snapshot's consistent state), then the store
// and job table are swapped under the replica lock.
//
// The //sit:bootstrap list is the follower-seed contract: every journal
// op whose effect a freshly seeded follower restores from the shipped
// snapshot. An op missing here means a follower would silently diverge.
//
//sit:bootstrap opAddSchemas opRemoveSchema opDeclareEquiv opAssert opRetract
//sit:bootstrap opJobSubmit opJobStart opJobFinish
//sit:bootstrap opSaveIntegration opLoadRows opSetKeys
func (t followerTarget) Bootstrap(name string, snap replication.Snapshot) error {
	ws, err := t.s.ensureReplicaWorkspace(name)
	if err != nil {
		return err
	}
	rep := ws.replica.Load()
	if rep == nil || ws.persist == nil {
		return fmt.Errorf("workspace %q is not a replica", name)
	}
	dec, err := decodePersistedState(snap.State)
	if err != nil {
		return err
	}
	if err := ws.persist.j.ResetTo(snap.State, snap.Seq); err != nil {
		return err
	}
	if name == DefaultWorkspace && len(dec.keys) > 0 {
		if err := t.s.applyJournaledKeys(dec.keys); err != nil {
			return err
		}
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	ws.store.Replace(dec.ws)
	if err := ws.store.restoreFederation(dec.integrations, dec.rows); err != nil {
		return fmt.Errorf("restore federation state: %w", err)
	}
	rep.jobs, rep.byID, rep.nextJobID = dec.jobs, dec.byID, dec.nextJobID
	rep.appliedSeq = snap.Seq
	return nil
}

// ApplyFrame journals one raw frame (no locks held across the disk write)
// and then applies its record to the store and job table under the replica
// lock — the same order mutations commit on the leader.
//
//sit:replay
func (t followerTarget) ApplyFrame(name string, line []byte, rec replication.Record) error {
	ws, err := t.s.ensureReplicaWorkspace(name)
	if err != nil {
		return err
	}
	rep := ws.replica.Load()
	if rep == nil || ws.persist == nil {
		return fmt.Errorf("workspace %q is not a replica", name)
	}
	if _, err := ws.persist.j.AppendFrame(line); err != nil {
		return err
	}
	var keysHook func([]apiKeyEntry) error
	if name == DefaultWorkspace {
		keysHook = t.s.applyJournaledKeys
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if err := applyRecord(ws.store, rec, rep.byID, &rep.jobs, &rep.nextJobID, keysHook); err != nil {
		return fmt.Errorf("apply journaled record %d (%s): %w", rec.Seq, rec.Op, err)
	}
	rep.appliedSeq = rec.Seq
	return nil
}

// --- read-only gating ---

// redirectToLeader answers a mutation on a follower: 421 (Misdirected
// Request) with a Location pointing the client at the leader's copy of the
// same path, plus a Retry-After floor for clients that treat any rejection
// as "back off and retry here". Returns true when the request was consumed.
func (s *Server) redirectToLeader(w http.ResponseWriter, r *http.Request) bool {
	f := s.follow.Load()
	if f == nil {
		return false
	}
	w.Header().Set("Location", f.leader+r.URL.RequestURI())
	w.Header().Set("Retry-After", strconv.Itoa(minRetryAfterSeconds))
	writeError(w, http.StatusMisdirectedRequest,
		fmt.Errorf("this server is a read-only follower of %s; send writes to the leader", f.leader))
	return true
}

// gate wraps a mutating route so a follower refuses it with a redirect.
func (s *Server) gate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.redirectToLeader(w, r) {
			return
		}
		h(w, r)
	}
}

// role names the server's current replication role.
func (s *Server) role() string {
	if s.follow.Load() != nil {
		return "follower"
	}
	return "leader"
}

// replicationSnapshot renders the /metrics replication section.
func (s *Server) replicationSnapshot() *ReplicationSnapshot {
	f := s.follow.Load()
	if f == nil {
		return &ReplicationSnapshot{Role: "leader"}
	}
	return &ReplicationSnapshot{
		Role:             "follower",
		Leader:           f.leader,
		RecordsApplied:   f.recordsApplied.Load(),
		BytesApplied:     f.bytesApplied.Load(),
		SnapshotsFetched: f.snapshotsFetched.Load(),
		SyncErrors:       f.syncErrors.Load(),
		Workspaces:       f.lagSnapshot(),
	}
}

// --- leader-side stream API ---

// replWorkspace resolves a replication route's workspace and its journal.
func (s *Server) replWorkspace(w http.ResponseWriter, r *http.Request) (*Workspace, *journal.Journal, bool) {
	if s.dcfg == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("server is memory-only; replication needs a data directory"))
		return nil, nil, false
	}
	ws, err := s.manager.Get(r.PathValue("ws"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, nil, false
	}
	if ws.persist == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("workspace %q has no journal", ws.name))
		return nil, nil, false
	}
	return ws, ws.persist.j, true
}

func (s *Server) handleReplWorkspaces(w http.ResponseWriter, r *http.Request) {
	if s.dcfg == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("server is memory-only; replication needs a data directory"))
		return
	}
	out := replication.ListResponse{Workspaces: []replication.WorkspaceStatus{}}
	for _, ws := range s.manager.List() {
		if ws.persist == nil {
			continue
		}
		out.Workspaces = append(out.Workspaces, replication.WorkspaceStatus{
			Name:    ws.name,
			Seq:     ws.persist.j.Seq(),
			Horizon: ws.persist.j.CompactedThrough(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	ws, _, ok := s.replWorkspace(w, r)
	if !ok {
		return
	}
	state, seq, err := s.captureState(ws)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Encoded compact, not through writeJSON: indentation would rewrite the
	// State bytes in flight and the checksum is over the exact bytes.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(replication.Snapshot{
		Seq:   seq,
		CRC32: replication.ChecksumState(state),
		State: state,
	})
}

// handleReplRecords streams the journal tail after ?from as raw frame
// lines. When the follower is caught up and sent ?wait, the handler holds
// the request open until an append lands or the wait expires — long-polling
// keeps steady-state lag at network latency without a busy poll.
func (s *Server) handleReplRecords(w http.ResponseWriter, r *http.Request) {
	_, j, ok := s.replWorkspace(w, r)
	if !ok {
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad from parameter: %w", err))
		return
	}
	var wait time.Duration
	if raw := r.URL.Query().Get("wait"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait parameter %q", raw))
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > maxStreamWait {
		wait = maxStreamWait
	}
	if half := s.cfg.RequestTimeout / 2; s.cfg.RequestTimeout > 0 && wait > half {
		wait = half
	}
	deadline := time.Now().Add(wait)

	for {
		// Arm the change signal before reading the tail: an append landing
		// between the read and the select still wakes the wait.
		changed := j.Changed()
		data, horizon, last, err := j.TailSince(from)
		if err != nil {
			writeError(w, errStatus(err), err)
			return
		}
		if from < horizon {
			writeError(w, http.StatusGone,
				fmt.Errorf("records through %d were compacted away; fetch a snapshot", horizon))
			return
		}
		remaining := time.Until(deadline)
		if len(data) > 0 || remaining <= 0 {
			w.Header().Set(replication.HeaderSeq, strconv.FormatUint(last, 10))
			w.Header().Set(replication.HeaderHorizon, strconv.FormatUint(horizon, 10))
			w.Header().Set(replication.HeaderOffset, strconv.FormatInt(j.Offset(), 10))
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(data)
			return
		}
		timer := time.NewTimer(remaining)
		select {
		case <-changed:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			writeError(w, http.StatusRequestTimeout, r.Context().Err())
			return
		}
	}
}

// --- promotion ---

// handlePromote turns a follower into a leader: the sync loop is halted and
// waited out, then every replica workspace is re-armed for writes — the
// journal hooks onto the store and queue, the recovered job table restored
// (leader-queued jobs start executing here, leader-running jobs come back
// interrupted), the compaction loop started. Explicit and manual by design:
// the operator (or their failover tooling) decides when the old leader is
// really gone.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	// The claim flag serializes concurrent promotions without holding a
	// lock across the transition's journal re-arming. s.follow stays set
	// until every workspace is re-armed, so the write gate holds for the
	// whole transition.
	if !s.promoting.CompareAndSwap(false, true) {
		writeError(w, http.StatusConflict, fmt.Errorf("a promotion is already in progress"))
		return
	}
	defer s.promoting.Store(false)
	f := s.follow.Load()
	if f == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("already the leader"))
		return
	}
	f.halt(true)

	// Latch before re-arming: workspaces created from here on (and the
	// re-armed replicas below) are leader workspaces — they journal their own
	// mutations and enforce the write-plane quotas.
	s.promoted.Store(true)

	requeued, interrupted := 0, 0
	for _, ws := range s.manager.List() {
		rep := ws.replica.Load()
		if rep == nil || ws.persist == nil {
			continue
		}
		rep.mu.Lock()
		jobs := append([]Job(nil), rep.jobs...)
		nextID := rep.nextJobID
		rep.mu.Unlock()
		ws.replica.Store(nil)
		ws.store.SetMaxSchemas(s.limits.MaxSchemas)
		ws.queue.SetMaxJobs(s.limits.MaxJobs)
		rq, ir := s.armJournal(ws, ws.persist.j, jobs, nextID)
		requeued += rq
		interrupted += ir
	}
	s.follow.Store(nil)
	if s.log != nil {
		s.log.Info("promoted to leader", "previousLeader", f.leader,
			"requeuedJobs", requeued, "interruptedJobs", interrupted)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"role":            "leader",
		"previousLeader":  f.leader,
		"requeuedJobs":    requeued,
		"interruptedJobs": interrupted,
	})
}

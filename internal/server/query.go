package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/ecr"
	"repro/internal/instance"
	"repro/internal/integrate"
	"repro/internal/mapping"
	"repro/internal/translate"
)

// --- saved integrations ---

// integrationsRequest names an integration to run and persist: the paper's
// integrator output — integrated schema plus mapping table — saved so
// requests can be translated through it afterwards.
type integrationsRequest struct {
	Name    string `json:"name"`
	Schema1 string `json:"schema1"`
	Schema2 string `json:"schema2"`
}

func (s *Server) handleIntegrationsPost(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	var req integrationsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	info, err := ws.store.SaveIntegration(req.Name, req.Schema1, req.Schema2)
	if err != nil {
		var ierr *integrate.Error
		if errors.As(err, &ierr) {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleIntegrationsList(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	list := ws.store.Integrations()
	if list == nil {
		list = []IntegrationInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"integrations": list})
}

func (s *Server) handleIntegrationGet(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	schema, table, err := ws.store.Integration(name)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	schemaJSON, err := ecr.EncodeJSON(schema)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	tableJSON, err := mapping.EncodeJSON(table)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":     name,
		"schema":   json.RawMessage(schemaJSON),
		"ddl":      ecr.FormatSchema(schema),
		"mappings": json.RawMessage(tableJSON),
	})
}

// --- instance rows ---

// rowsRequest loads instance rows into one structure of a schema — a
// component schema, or the materialized schema of a saved integration.
type rowsRequest struct {
	Schema    string         `json:"schema"`
	Structure string         `json:"structure"`
	Rows      []instance.Row `json:"rows"`
}

func (s *Server) handleRowsPost(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	var req rowsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	total, err := ws.store.LoadRows(req.Schema, req.Structure, req.Rows)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"schema":    req.Schema,
		"structure": req.Structure,
		"inserted":  len(req.Rows),
		"total":     total,
	})
}

// --- query translation ---

// predicateJSON and queryJSON are the wire form of a mapping.Query.
type predicateJSON struct {
	Attr  string `json:"attr"`
	Op    string `json:"op"`
	Value string `json:"value"`
}

type queryJSON struct {
	Schema  string          `json:"schema"`
	Object  string          `json:"object"`
	Project []string        `json:"project,omitempty"`
	Where   []predicateJSON `json:"where,omitempty"`
}

func (q queryJSON) toQuery() mapping.Query {
	out := mapping.Query{Schema: q.Schema, Object: q.Object, Project: q.Project}
	for _, p := range q.Where {
		out.Where = append(out.Where, mapping.Predicate{Attr: p.Attr, Op: p.Op, Value: p.Value})
	}
	return out
}

func fromQuery(q mapping.Query) queryJSON {
	out := queryJSON{Schema: q.Schema, Object: q.Object, Project: q.Project}
	for _, p := range q.Where {
		out.Where = append(out.Where, predicateJSON{Attr: p.Attr, Op: p.Op, Value: p.Value})
	}
	return out
}

// queryRequest translates (and executes, when instance rows are loaded) one
// query through a saved integration's mapping table. An empty direction
// defaults by the query's schema: queries against the integrated schema fan
// out to the components, anything else is lifted view-to-integrated.
type queryRequest struct {
	Integration string    `json:"integration"`
	Direction   string    `json:"direction,omitempty"`
	Query       queryJSON `json:"query"`
}

// queryResponse returns the rewritten queries (structured and rendered),
// plus the merged rows when the instance stores were loaded to execute them.
type queryResponse struct {
	Integration string         `json:"integration"`
	Direction   string         `json:"direction"`
	Queries     []queryJSON    `json:"queries"`
	Rendered    []string       `json:"rendered"`
	Skipped     []string       `json:"skipped,omitempty"`
	Executed    bool           `json:"executed"`
	Rows        []instance.Row `json:"rows,omitempty"`
	Notes       []string       `json:"notes,omitempty"`
}

func (s *Server) handleQueryPost(ws *Workspace, w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	res, err := ws.store.TranslateQuery(req.Integration, req.Query.toQuery(), req.Direction)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	s.metrics.ObserveQueryTranslation(boundedDirection(res.Direction))
	resp := queryResponse{
		Integration: req.Integration,
		Direction:   res.Direction,
		Queries:     []queryJSON{},
		Rendered:    []string{},
		Skipped:     res.Skipped,
		Executed:    res.Executed,
		Rows:        res.Rows,
		Notes:       res.Notes,
	}
	for _, q := range res.Queries {
		resp.Queries = append(resp.Queries, fromQuery(q))
		resp.Rendered = append(resp.Rendered, q.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- bounded metric labels ---

// boundedFormat clamps a schema format to the registered frontend names, so
// the per-format parse counter cannot grow without bound.
//
//sit:boundedlabel
func boundedFormat(format string) string {
	for _, f := range translate.Formats() {
		if f == format {
			return format
		}
	}
	return "other"
}

// boundedDirection clamps a translation direction to the two defined
// directions.
//
//sit:boundedlabel
func boundedDirection(direction string) string {
	switch direction {
	case DirViewToIntegrated, DirIntegratedToComponents:
		return direction
	}
	return "other"
}

package server

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the integration latency
// histogram; the implicit last bucket is +Inf.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64 // guarded by mu
	sum    float64  // guarded by mu
	n      uint64   // guarded by mu
}

// NewHistogram returns a histogram over latencyBuckets.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(latencyBuckets, secs)
	h.counts[i]++
	h.sum += secs
	h.n++
}

// Mean returns the average observed duration in seconds, or 0 when the
// histogram is empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	// Buckets maps each upper bound (seconds; the final entry is +Inf,
	// rendered "inf") to the cumulative observation count at or under it.
	Buckets []BucketCount `json:"buckets"`
	Count   uint64        `json:"count"`
	SumSecs float64       `json:"sumSeconds"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot renders the histogram with cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Count: h.n, SumSecs: h.sum}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		le := "inf"
		if i < len(latencyBuckets) {
			le = formatBound(latencyBuckets[i])
		}
		snap.Buckets = append(snap.Buckets, BucketCount{LE: le, Count: cum})
	}
	return snap
}

func formatBound(b float64) string {
	if b >= 1 && b == float64(int64(b)) {
		return strconv.FormatInt(int64(b), 10) + "s"
	}
	return strconv.FormatInt(int64(b*1000), 10) + "ms"
}

// maxWorkspaceLabels bounds how many workspaces get their own entry in the
// /metrics per-workspace table; the rest fold into "other" so a server with
// many tenants cannot blow up the metric's label cardinality.
const maxWorkspaceLabels = 8

// WorkspaceCounters are one workspace's traffic counters.
type WorkspaceCounters struct {
	// JobsFinished counts jobs that reached a terminal state (done, failed
	// or canceled).
	JobsFinished uint64 `json:"jobsFinished"`
	// Integrations counts successful integration runs (sync and async).
	Integrations uint64 `json:"integrations"`
}

func (c WorkspaceCounters) traffic() uint64 { return c.JobsFinished + c.Integrations }

func (c *WorkspaceCounters) add(o WorkspaceCounters) {
	c.JobsFinished += o.JobsFinished
	c.Integrations += o.Integrations
}

// Metrics aggregates the server's operational counters: requests by route
// and status class, job lifecycle counts, queue depth and the integration
// latency histogram. Everything is hand-rolled over a mutex so the package
// needs nothing beyond the standard library.
type Metrics struct {
	mu       sync.Mutex
	started  time.Time                    // immutable after NewMetrics
	requests map[string]map[string]uint64 // guarded by mu; route -> status class -> count
	jobs     map[JobState]uint64          // guarded by mu
	panics   uint64                       // guarded by mu

	// schemaParses counts schema uploads by frontend format;
	// queryTranslations counts /query translations by direction. Both label
	// sets are clamped by the caller (boundedFormat/boundedDirection).
	schemaParses      map[string]uint64 // guarded by mu
	queryTranslations map[string]uint64 // guarded by mu

	// workspaces holds per-tenant counters for live workspaces (bounded by
	// the server's workspace cap); otherWS accumulates counters folded in
	// from deleted workspaces. Both guarded by mu.
	workspaces map[string]*WorkspaceCounters // guarded by mu
	otherWS    WorkspaceCounters             // guarded by mu
	// workspaceCount, when set, reports the live workspace count (the
	// workspaces_active gauge).
	workspaceCount func() int // guarded by mu

	// journal counters (durable servers only).
	durable             bool           // guarded by mu
	journalAppends      uint64         // guarded by mu
	journalErrors       uint64         // guarded by mu
	compactions         uint64         // guarded by mu
	recoveredWorkspaces int            // guarded by mu
	recoveredJobs       int            // guarded by mu
	snapshotAge         func() float64 // guarded by mu

	// IntegrationLatency times successful integration runs (sync and
	// job-queue alike). The pointer is immutable after NewMetrics; the
	// histogram carries its own lock.
	IntegrationLatency *Histogram
	// JournalFsync times the fsyncs the write-ahead journal performs.
	JournalFsync *Histogram

	// replication, when set, reports the server's replication role and
	// per-workspace lag for snapshots.
	replication func() *ReplicationSnapshot // guarded by mu
	// queueDepth, when set, reports the live queue depth for snapshots.
	queueDepth func() int // guarded by mu

	// Admission counters. Lock-free atomics: the rejection paths run ahead
	// of all handler work and must stay free of lock contention — a flood
	// of 429s bumping a shared mutex would be its own overload vector.
	authFailures    atomic.Uint64
	rateLimited     atomic.Uint64
	quotaRejections atomic.Uint64
	bodyTooLarge    atomic.Uint64
	// similarityStats, when set, reports the store's similarity-cache
	// hit and miss counters for snapshots.
	similarityStats func() (hits, misses uint64) // guarded by mu
	// closureStats, when set, reports the stores' assertion-closure
	// counters: listing-cache hits and misses plus cumulative derived
	// entries and conflicts from incremental closure.
	closureStats func() (hits, misses, derived, conflicts uint64) // guarded by mu
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		started:            time.Now().UTC(),
		requests:           map[string]map[string]uint64{},
		jobs:               map[JobState]uint64{},
		schemaParses:       map[string]uint64{},
		queryTranslations:  map[string]uint64{},
		workspaces:         map[string]*WorkspaceCounters{},
		IntegrationLatency: NewHistogram(),
		JournalFsync:       NewHistogram(),
	}
}

// SetQueueDepthFunc wires the live queue-depth gauge. The default
// workspace's gauge is wired during startup, but tenant workspaces are
// created while /metrics may be rendering, so the write must take the
// lock like any other.
func (m *Metrics) SetQueueDepthFunc(fn func() int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueDepth = fn
}

// SetSimilarityStatsFunc wires the similarity-cache counters.
func (m *Metrics) SetSimilarityStatsFunc(fn func() (hits, misses uint64)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.similarityStats = fn
}

// SetClosureStatsFunc wires the assertion-closure counters.
func (m *Metrics) SetClosureStatsFunc(fn func() (hits, misses, derived, conflicts uint64)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closureStats = fn
}

// SetReplicationFunc wires the replication role/lag reporter.
func (m *Metrics) SetReplicationFunc(fn func() *ReplicationSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replication = fn
}

// SetWorkspaceCountFunc wires the workspaces_active gauge.
func (m *Metrics) SetWorkspaceCountFunc(fn func() int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workspaceCount = fn
}

// workspace returns the named workspace's counters, creating them on first
// touch. The workspace-name label is bounded inside this registry: live
// entries cannot outnumber the server's workspace cap, ForgetWorkspace
// folds deleted tenants into "other", and snapshotWorkspacesLocked folds
// everything past the top maxWorkspaceLabels at render time.
//
//sit:locked mu
func (m *Metrics) workspace(ws string) *WorkspaceCounters {
	c := m.workspaces[ws]
	if c == nil {
		c = &WorkspaceCounters{}
		m.workspaces[ws] = c
	}
	return c
}

// ObserveIntegration counts one successful integration run under its
// workspace.
func (m *Metrics) ObserveIntegration(ws string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workspace(ws).Integrations++
}

// ForgetWorkspace folds a deleted workspace's counters into the "other"
// bucket so totals survive the tenant without the label lingering.
func (m *Metrics) ForgetWorkspace(ws string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c := m.workspaces[ws]; c != nil {
		m.otherWS.add(*c)
		delete(m.workspaces, ws)
	}
}

// ObserveRequest counts one served request under its route pattern and
// status class ("2xx", "4xx", ...). route must be the mux pattern the
// handler is registered under, never the request's raw path.
//
//sit:metriclabel route
func (m *Metrics) ObserveRequest(route string, status int) {
	class := statusClass(status)
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[route]
	if byStatus == nil {
		byStatus = map[string]uint64{}
		m.requests[route] = byStatus
	}
	byStatus[class]++
}

// ObserveJob counts one job state transition: globally by state, and —
// when the state is terminal — under the owning workspace's counters.
func (m *Metrics) ObserveJob(ws string, state JobState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[state]++
	switch state {
	case JobDone, JobFailed, JobCanceled:
		m.workspace(ws).JobsFinished++
	}
}

// ObserveSchemaParse counts one schema upload by the frontend format that
// parsed it. format must already be clamped (boundedFormat).
//
//sit:metriclabel format
func (m *Metrics) ObserveSchemaParse(format string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.schemaParses[format]++
}

// ObserveQueryTranslation counts one /query translation by direction.
// direction must already be clamped (boundedDirection).
//
//sit:metriclabel direction
func (m *Metrics) ObserveQueryTranslation(direction string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queryTranslations[direction]++
}

// ObserveAuthFailure counts one request refused 401/403 by API-key auth.
func (m *Metrics) ObserveAuthFailure() { m.authFailures.Add(1) }

// ObserveRateLimited counts one request refused 429 by a token bucket.
func (m *Metrics) ObserveRateLimited() { m.rateLimited.Add(1) }

// ObserveQuotaRejection counts one request refused because a workspace
// quota (schemas, jobs, journal bytes) was exhausted.
func (m *Metrics) ObserveQuotaRejection() { m.quotaRejections.Add(1) }

// ObserveBodyTooLarge counts one request body refused 413 over the cap.
func (m *Metrics) ObserveBodyTooLarge() { m.bodyTooLarge.Add(1) }

// ObservePanic counts one recovered handler panic.
func (m *Metrics) ObservePanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

// ObserveJournalAppend counts one journal append attempt, timing its fsync
// (zero when the sync policy skipped it).
func (m *Metrics) ObserveJournalAppend(fsync time.Duration, err error) {
	m.mu.Lock()
	if err != nil {
		m.journalErrors++
	} else {
		m.journalAppends++
	}
	m.mu.Unlock()
	if fsync > 0 {
		m.JournalFsync.Observe(fsync)
	}
}

// ObserveCompaction counts one successful snapshot compaction.
func (m *Metrics) ObserveCompaction() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compactions++
}

// SetDurability marks the registry durable, recording the recovery counts
// and wiring the snapshot-age gauge.
func (m *Metrics) SetDurability(recoveredWorkspaces, recoveredJobs int, age func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.durable = true
	m.recoveredWorkspaces = recoveredWorkspaces
	m.recoveredJobs = recoveredJobs
	m.snapshotAge = age
}

// snapshotWorkspacesLocked renders the per-workspace counters with bounded
// cardinality: the top maxWorkspaceLabels workspaces by traffic keep their
// label; the rest — plus everything ForgetWorkspace already folded — merge
// into "other". Caller holds m.mu.
func (m *Metrics) snapshotWorkspacesLocked() map[string]WorkspaceCounters {
	if len(m.workspaces) == 0 && m.otherWS.traffic() == 0 {
		return nil
	}
	names := make([]string, 0, len(m.workspaces))
	for name := range m.workspaces {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ti, tj := m.workspaces[names[i]].traffic(), m.workspaces[names[j]].traffic()
		if ti != tj {
			return ti > tj
		}
		return names[i] < names[j]
	})
	out := make(map[string]WorkspaceCounters, maxWorkspaceLabels+1)
	other := m.otherWS
	for i, name := range names {
		if i < maxWorkspaceLabels {
			out[name] = *m.workspaces[name]
		} else {
			other.add(*m.workspaces[name])
		}
	}
	if other.traffic() > 0 {
		folded := other
		if prev, ok := out["other"]; ok {
			folded.add(prev)
		}
		out["other"] = folded
	}
	return out
}

func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	UptimeSeconds      float64                      `json:"uptimeSeconds"`
	Requests           map[string]map[string]uint64 `json:"requestsByRoute"`
	Jobs               map[string]uint64            `json:"jobs"`
	QueueDepth         int                          `json:"queueDepth"`
	PanicsTotal        uint64                       `json:"panicsTotal"`
	IntegrationLatency HistogramSnapshot            `json:"integrationLatency"`
	// WorkspacesActive gauges the live workspace count.
	WorkspacesActive int `json:"workspaces_active"`
	// Workspaces carries per-tenant traffic counters, cardinality-bounded:
	// the top maxWorkspaceLabels workspaces by traffic keep their own label;
	// everything else (and every deleted workspace) aggregates as "other".
	Workspaces map[string]WorkspaceCounters `json:"workspaces,omitempty"`
	// Similarity-cache counters (ranked pairs and count matrices memoized
	// per schema pair in the store).
	SimilarityCacheHits   uint64 `json:"similarity_cache_hits"`
	SimilarityCacheMisses uint64 `json:"similarity_cache_misses"`
	// Assertion-closure counters: listing-cache hits/misses plus the
	// cumulative derived entries and conflicts produced by incremental
	// closure across all workspaces.
	ClosureCacheHits      uint64 `json:"closure_cache_hits"`
	ClosureCacheMisses    uint64 `json:"closure_cache_misses"`
	ClosureDerivedTotal   uint64 `json:"closure_derived_total"`
	ClosureConflictsTotal uint64 `json:"closure_conflicts_total"`
	// SchemaParses counts schema uploads by frontend format (dictionary,
	// sql, hierarchical, avro, jsonschema).
	SchemaParses map[string]uint64 `json:"schema_parses,omitempty"`
	// QueryTranslations counts federated query translations by direction.
	QueryTranslations map[string]uint64 `json:"query_translations,omitempty"`
	// Admission reports the admission-control rejection counters.
	Admission AdmissionSnapshot `json:"admission"`
	// Journal is present only on durable servers (started with a data dir).
	Journal *JournalSnapshot `json:"journal,omitempty"`
	// Replication reports the server's role and, on followers, stream
	// counters and per-workspace lag.
	Replication *ReplicationSnapshot `json:"replication,omitempty"`
}

// ReplicaLag is one workspace's replication position relative to the
// leader, as of the follower's last sync round.
type ReplicaLag struct {
	// AppliedSeq is the replica's last applied sequence number.
	AppliedSeq uint64 `json:"applied_seq"`
	// LeaderSeq is the leader's sequence number when last observed.
	LeaderSeq uint64 `json:"leader_seq"`
	// LagRecords is LeaderSeq - AppliedSeq (0 when caught up).
	LagRecords uint64 `json:"lag_records"`
	// LagBytes is the leader journal's byte length minus the replica's —
	// comparable directly because the journals are byte-identical.
	LagBytes int64 `json:"lag_bytes"`
}

// ReplicationSnapshot is the replication section of the /metrics response.
type ReplicationSnapshot struct {
	// Role is "leader" or "follower".
	Role string `json:"role"`
	// Leader is the leader's URL (followers only).
	Leader string `json:"leader,omitempty"`
	// RecordsApplied counts journal records applied from the stream.
	RecordsApplied uint64 `json:"records_applied,omitempty"`
	// BytesApplied counts raw frame bytes applied from the stream.
	BytesApplied uint64 `json:"bytes_applied,omitempty"`
	// SnapshotsFetched counts full snapshot bootstraps (first contact,
	// compaction fallback, divergence repair).
	SnapshotsFetched uint64 `json:"snapshots_fetched,omitempty"`
	// SyncErrors counts failed sync rounds (leader down, stream errors).
	SyncErrors uint64 `json:"sync_errors,omitempty"`
	// Workspaces is the per-workspace lag table (followers only).
	Workspaces map[string]ReplicaLag `json:"workspaces,omitempty"`
}

// AdmissionSnapshot is the admission-control section of the /metrics
// response: how many requests the front door turned away, and why.
type AdmissionSnapshot struct {
	AuthFailuresTotal    uint64 `json:"auth_failures_total"`
	RateLimitedTotal     uint64 `json:"rate_limited_total"`
	QuotaRejectionsTotal uint64 `json:"quota_rejections_total"`
	BodyTooLargeTotal    uint64 `json:"body_too_large_total"`
}

// JournalSnapshot is the durability section of the /metrics response.
type JournalSnapshot struct {
	AppendsTotal        uint64            `json:"journal_appends_total"`
	ErrorsTotal         uint64            `json:"journal_errors_total"`
	CompactionsTotal    uint64            `json:"compactions_total"`
	FsyncSeconds        HistogramSnapshot `json:"journal_fsync_seconds"`
	SnapshotAgeSeconds  float64           `json:"snapshot_age_seconds"`
	RecoveredWorkspaces int               `json:"recovered_workspaces"`
	RecoveredJobs       int               `json:"recovered_jobs"`
}

// Snapshot renders every metric at once.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	requests := make(map[string]map[string]uint64, len(m.requests))
	for route, byStatus := range m.requests {
		cp := make(map[string]uint64, len(byStatus))
		for class, n := range byStatus {
			cp[class] = n
		}
		requests[route] = cp
	}
	jobs := make(map[string]uint64, len(m.jobs))
	for state, n := range m.jobs {
		jobs[string(state)] = n
	}
	var parses map[string]uint64
	if len(m.schemaParses) > 0 {
		parses = make(map[string]uint64, len(m.schemaParses))
		for format, n := range m.schemaParses {
			parses[format] = n
		}
	}
	var translations map[string]uint64
	if len(m.queryTranslations) > 0 {
		translations = make(map[string]uint64, len(m.queryTranslations))
		for dir, n := range m.queryTranslations {
			translations[dir] = n
		}
	}
	started := m.started
	replFn := m.replication
	depthFn := m.queueDepth
	simFn := m.similarityStats
	cloFn := m.closureStats
	countFn := m.workspaceCount
	panics := m.panics
	wsSnap := m.snapshotWorkspacesLocked()
	var journal *JournalSnapshot
	var ageFn func() float64
	if m.durable {
		journal = &JournalSnapshot{
			AppendsTotal:        m.journalAppends,
			ErrorsTotal:         m.journalErrors,
			CompactionsTotal:    m.compactions,
			RecoveredWorkspaces: m.recoveredWorkspaces,
			RecoveredJobs:       m.recoveredJobs,
		}
		ageFn = m.snapshotAge
	}
	m.mu.Unlock()

	snap := MetricsSnapshot{
		UptimeSeconds:      time.Since(started).Seconds(),
		Requests:           requests,
		Jobs:               jobs,
		PanicsTotal:        panics,
		IntegrationLatency: m.IntegrationLatency.Snapshot(),
		Workspaces:         wsSnap,
		SchemaParses:       parses,
		QueryTranslations:  translations,
		Admission: AdmissionSnapshot{
			AuthFailuresTotal:    m.authFailures.Load(),
			RateLimitedTotal:     m.rateLimited.Load(),
			QuotaRejectionsTotal: m.quotaRejections.Load(),
			BodyTooLargeTotal:    m.bodyTooLarge.Load(),
		},
	}
	if depthFn != nil {
		snap.QueueDepth = depthFn()
	}
	if countFn != nil {
		snap.WorkspacesActive = countFn()
	}
	if simFn != nil {
		snap.SimilarityCacheHits, snap.SimilarityCacheMisses = simFn()
	}
	if cloFn != nil {
		snap.ClosureCacheHits, snap.ClosureCacheMisses,
			snap.ClosureDerivedTotal, snap.ClosureConflictsTotal = cloFn()
	}
	if journal != nil {
		journal.FsyncSeconds = m.JournalFsync.Snapshot()
		if ageFn != nil {
			journal.SnapshotAgeSeconds = ageFn()
		}
		snap.Journal = journal
	}
	if replFn != nil {
		snap.Replication = replFn()
	}
	return snap
}

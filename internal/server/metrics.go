package server

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the integration latency
// histogram; the implicit last bucket is +Inf.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	sum    float64
	n      uint64
}

// NewHistogram returns a histogram over latencyBuckets.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(latencyBuckets, secs)
	h.counts[i]++
	h.sum += secs
	h.n++
}

// Mean returns the average observed duration in seconds, or 0 when the
// histogram is empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	// Buckets maps each upper bound (seconds; the final entry is +Inf,
	// rendered "inf") to the cumulative observation count at or under it.
	Buckets []BucketCount `json:"buckets"`
	Count   uint64        `json:"count"`
	SumSecs float64       `json:"sumSeconds"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot renders the histogram with cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Count: h.n, SumSecs: h.sum}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		le := "inf"
		if i < len(latencyBuckets) {
			le = formatBound(latencyBuckets[i])
		}
		snap.Buckets = append(snap.Buckets, BucketCount{LE: le, Count: cum})
	}
	return snap
}

func formatBound(b float64) string {
	if b >= 1 && b == float64(int64(b)) {
		return strconv.FormatInt(int64(b), 10) + "s"
	}
	return strconv.FormatInt(int64(b*1000), 10) + "ms"
}

// Metrics aggregates the server's operational counters: requests by route
// and status class, job lifecycle counts, queue depth and the integration
// latency histogram. Everything is hand-rolled over a mutex so the package
// needs nothing beyond the standard library.
type Metrics struct {
	mu       sync.Mutex
	started  time.Time
	requests map[string]map[string]uint64 // route -> status class -> count
	jobs     map[JobState]uint64
	panics   uint64

	// journal counters (durable servers only).
	durable             bool
	journalAppends      uint64
	journalErrors       uint64
	compactions         uint64
	recoveredWorkspaces int
	recoveredJobs       int
	snapshotAge         func() float64

	// IntegrationLatency times successful integration runs (sync and
	// job-queue alike).
	IntegrationLatency *Histogram
	// JournalFsync times the fsyncs the write-ahead journal performs.
	JournalFsync *Histogram

	// queueDepth, when set, reports the live queue depth for snapshots.
	queueDepth func() int
	// similarityStats, when set, reports the store's similarity-cache
	// hit and miss counters for snapshots.
	similarityStats func() (hits, misses uint64)
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		started:            time.Now().UTC(),
		requests:           map[string]map[string]uint64{},
		jobs:               map[JobState]uint64{},
		IntegrationLatency: NewHistogram(),
		JournalFsync:       NewHistogram(),
	}
}

// SetQueueDepthFunc wires the live queue-depth gauge.
func (m *Metrics) SetQueueDepthFunc(fn func() int) { m.queueDepth = fn }

// SetSimilarityStatsFunc wires the similarity-cache counters.
func (m *Metrics) SetSimilarityStatsFunc(fn func() (hits, misses uint64)) {
	m.similarityStats = fn
}

// ObserveRequest counts one served request under its route pattern and
// status class ("2xx", "4xx", ...).
func (m *Metrics) ObserveRequest(route string, status int) {
	class := statusClass(status)
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[route]
	if byStatus == nil {
		byStatus = map[string]uint64{}
		m.requests[route] = byStatus
	}
	byStatus[class]++
}

// ObserveJob counts one job state transition.
func (m *Metrics) ObserveJob(state JobState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[state]++
}

// ObservePanic counts one recovered handler panic.
func (m *Metrics) ObservePanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

// ObserveJournalAppend counts one journal append attempt, timing its fsync
// (zero when the sync policy skipped it).
func (m *Metrics) ObserveJournalAppend(fsync time.Duration, err error) {
	m.mu.Lock()
	if err != nil {
		m.journalErrors++
	} else {
		m.journalAppends++
	}
	m.mu.Unlock()
	if fsync > 0 {
		m.JournalFsync.Observe(fsync)
	}
}

// ObserveCompaction counts one successful snapshot compaction.
func (m *Metrics) ObserveCompaction() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compactions++
}

// SetDurability marks the registry durable, recording the recovery counts
// and wiring the snapshot-age gauge.
func (m *Metrics) SetDurability(recoveredWorkspaces, recoveredJobs int, age func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.durable = true
	m.recoveredWorkspaces = recoveredWorkspaces
	m.recoveredJobs = recoveredJobs
	m.snapshotAge = age
}

func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	UptimeSeconds      float64                      `json:"uptimeSeconds"`
	Requests           map[string]map[string]uint64 `json:"requestsByRoute"`
	Jobs               map[string]uint64            `json:"jobs"`
	QueueDepth         int                          `json:"queueDepth"`
	PanicsTotal        uint64                       `json:"panicsTotal"`
	IntegrationLatency HistogramSnapshot            `json:"integrationLatency"`
	// Similarity-cache counters (ranked pairs and count matrices memoized
	// per schema pair in the store).
	SimilarityCacheHits   uint64 `json:"similarity_cache_hits"`
	SimilarityCacheMisses uint64 `json:"similarity_cache_misses"`
	// Journal is present only on durable servers (started with a data dir).
	Journal *JournalSnapshot `json:"journal,omitempty"`
}

// JournalSnapshot is the durability section of the /metrics response.
type JournalSnapshot struct {
	AppendsTotal        uint64            `json:"journal_appends_total"`
	ErrorsTotal         uint64            `json:"journal_errors_total"`
	CompactionsTotal    uint64            `json:"compactions_total"`
	FsyncSeconds        HistogramSnapshot `json:"journal_fsync_seconds"`
	SnapshotAgeSeconds  float64           `json:"snapshot_age_seconds"`
	RecoveredWorkspaces int               `json:"recovered_workspaces"`
	RecoveredJobs       int               `json:"recovered_jobs"`
}

// Snapshot renders every metric at once.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	requests := make(map[string]map[string]uint64, len(m.requests))
	for route, byStatus := range m.requests {
		cp := make(map[string]uint64, len(byStatus))
		for class, n := range byStatus {
			cp[class] = n
		}
		requests[route] = cp
	}
	jobs := make(map[string]uint64, len(m.jobs))
	for state, n := range m.jobs {
		jobs[string(state)] = n
	}
	started := m.started
	depthFn := m.queueDepth
	simFn := m.similarityStats
	panics := m.panics
	var journal *JournalSnapshot
	var ageFn func() float64
	if m.durable {
		journal = &JournalSnapshot{
			AppendsTotal:        m.journalAppends,
			ErrorsTotal:         m.journalErrors,
			CompactionsTotal:    m.compactions,
			RecoveredWorkspaces: m.recoveredWorkspaces,
			RecoveredJobs:       m.recoveredJobs,
		}
		ageFn = m.snapshotAge
	}
	m.mu.Unlock()

	snap := MetricsSnapshot{
		UptimeSeconds:      time.Since(started).Seconds(),
		Requests:           requests,
		Jobs:               jobs,
		PanicsTotal:        panics,
		IntegrationLatency: m.IntegrationLatency.Snapshot(),
	}
	if depthFn != nil {
		snap.QueueDepth = depthFn()
	}
	if simFn != nil {
		snap.SimilarityCacheHits, snap.SimilarityCacheMisses = simFn()
	}
	if journal != nil {
		journal.FsyncSeconds = m.JournalFsync.Snapshot()
		if ageFn != nil {
			journal.SnapshotAgeSeconds = ageFn()
		}
		snap.Journal = journal
	}
	return snap
}
